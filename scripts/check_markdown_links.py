#!/usr/bin/env python3
"""Checks intra-repo markdown links in README/docs for dangling targets.

For every ``[text](target)`` link in the given markdown files:

* external targets (http/https/mailto) are ignored — CI must not depend
  on the outside world;
* relative file targets must exist on disk (resolved against the file
  that contains the link);
* ``#anchor`` fragments must match a heading in the target file, using
  GitHub's slugification (lowercase, spaces to dashes, punctuation
  dropped). A bare ``#anchor`` checks the containing file itself.

Exit 1 on the first pass listing every dangling reference, 0 when all
files are clean.

Usage: check_markdown_links.py FILE [FILE...]
"""
import os
import re
import sys

LINK = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
IMAGE = re.compile(r"\!\[[^\]]*\]\(([^)\s]+)\)")
HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE = re.compile(r"```.*?```", re.DOTALL)
EXTERNAL = ("http://", "https://", "mailto:")


def github_slug(heading):
    """GitHub's anchor slug: lowercase, strip punctuation, dash spaces."""
    text = heading.strip().lower()
    text = re.sub(r"[`*_]", "", text)           # inline markup
    text = re.sub(r"[^\w\- ]", "", text)        # punctuation
    return text.replace(" ", "-")


def anchors_of(path):
    with open(path, encoding="utf-8") as handle:
        content = CODE_FENCE.sub("", handle.read())
    return {github_slug(m.group(1)) for m in HEADING.finditer(content)}


def check(path):
    """Returns a list of dangling-link descriptions for one file."""
    with open(path, encoding="utf-8") as handle:
        content = CODE_FENCE.sub("", handle.read())
    problems = []
    base = os.path.dirname(os.path.abspath(path))
    for pattern in (LINK, IMAGE):
        for match in pattern.finditer(content):
            target = match.group(1)
            if target.startswith(EXTERNAL):
                continue
            file_part, _, anchor = target.partition("#")
            resolved = os.path.abspath(path) if not file_part else \
                os.path.normpath(os.path.join(base, file_part))
            if not os.path.exists(resolved):
                problems.append(f"{path}: dangling link target '{target}'")
                continue
            if anchor and resolved.endswith(".md"):
                if github_slug(anchor) not in anchors_of(resolved):
                    problems.append(
                        f"{path}: anchor '#{anchor}' not found in "
                        f"{os.path.relpath(resolved)}")
    return problems


def main(argv):
    if len(argv) < 2:
        print(__doc__)
        return 2
    problems = []
    for path in argv[1:]:
        if not os.path.exists(path):
            problems.append(f"{path}: file does not exist")
            continue
        problems.extend(check(path))
    for problem in problems:
        print(f"FAIL {problem}")
    checked = len(argv) - 1
    print(f"{checked} file(s) checked, {len(problems)} dangling reference(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
