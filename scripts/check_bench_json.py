#!/usr/bin/env python3
"""Validates BENCH_*.json records emitted by the figure benches.

Every bench invoked with --json PATH writes one record. This checker is
the machine-readable contract: it fails (exit 1) if a file does not
parse, misses a required key, or carries a malformed scale/series
section. CI runs it over every bench's --quick output.

Usage: check_bench_json.py FILE [FILE...]
"""
import json
import sys

REQUIRED_TOP_LEVEL = {
    "bench": str,
    "schema_version": int,
    "scale": dict,
    "seed": int,
    "threads": int,
    "timing": dict,
    "wall_clock_seconds": (int, float),
    "wall_clock_ms": (int, float),
    "peak_rss_bytes": int,
    "series": list,
}
REQUIRED_SCALE = {
    "nodes": int,
    "runs": int,
    "paper": bool,
    "quick": bool,
}
REQUIRED_TIMING = {
    "mode": str,
    "ticks_per_cycle": int,
    "latency": str,
}
TIMING_MODES = {"cyclesync", "jittered"}
LATENCY_KINDS = {"none", "fixed", "uniform", "exponential"}
REQUIRED_SERIES_ENTRY = {
    "label": str,
    "kind": str,
}
# Kinds with a typed schema beyond label/kind: every named key must be a
# list, and all lists in the group must have equal (non-zero) length.
# The network-condition benches (degraded_links, partition_heal) emit
# these; a series of any other kind passes on the generic checks alone.
PARALLEL_ARRAY_KINDS = {
    "loss_sweep": ["loss_percent", "avg_miss_percent", "complete_percent",
                   "avg_messages"],
    "bandwidth_sweep": ["egress_messages_per_tick", "avg_spread_ticks",
                        "avg_miss_percent", "queued_sends"],
    "partition_heal": ["cycle", "side0_pct", "side1_pct"],
    # realnet cross-validation (bench/realnet_coverage + run_local_cluster)
    "coverage_ref": ["round", "coverage_percent"],
    "realnet_coverage": ["round", "real_coverage_percent"],
    "realnet_vs_sim": ["round", "real_coverage_percent",
                       "sim_coverage_percent", "abs_delta_percent"],
    # sustained multi-message traffic (bench/sustained_traffic)
    "throughput": ["publish_rate_per_cycle", "delivered_per_node_per_cycle",
                   "msgs_per_sec_per_node", "redundancy_ratio",
                   "completed_percent", "tracked_in_flight_max"],
    "latency_percentiles": ["publish_rate_per_cycle", "p50_ticks",
                            "p99_ticks", "mean_ticks"],
    # sharded-engine scaling (bench/scale_sweep --engine-threads)
    "thread_scaling": ["threads", "node_cycles_per_sec", "speedup_vs_1",
                       "peak_rss_bytes"],
    # search workloads over the frozen overlays (bench/search_workload)
    "search_sweep": ["ttl", "hit_rate_percent", "cache_hit_percent",
                     "avg_hops_to_hit", "messages_per_query"],
}
# Parallel-array kinds that compare dissemination strategies and must
# carry a string 'strategy' key. Engine-level kinds (thread_scaling) run
# below the strategy layer and are exempt.
STRATEGY_KINDS = set(PARALLEL_ARRAY_KINDS) - {"thread_scaling"}


def check_timing(path, timing, where):
    """Validates one timing-model metadata object (top-level or series)."""
    for key, kind in REQUIRED_TIMING.items():
        if key not in timing:
            return fail(path, f"missing required key '{where}.{key}'")
        if not isinstance(timing[key], kind):
            return fail(path, f"key '{where}.{key}' has type "
                              f"{type(timing[key]).__name__}")
    if timing["mode"] not in TIMING_MODES:
        return fail(path, f"{where}.mode '{timing['mode']}' not in "
                          f"{sorted(TIMING_MODES)}")
    if timing["ticks_per_cycle"] < 1:
        return fail(path, f"{where}.ticks_per_cycle must be >= 1, got "
                          f"{timing['ticks_per_cycle']}")
    if timing["latency"] not in LATENCY_KINDS:
        return fail(path, f"{where}.latency '{timing['latency']}' not in "
                          f"{sorted(LATENCY_KINDS)}")
    return True


def fail(path, message):
    print(f"FAIL {path}: {message}")
    return False


def check_thread_scaling(path, entry, i):
    """Semantic checks on one thread_scaling series (arrays already
    validated as equal-length non-empty lists)."""
    threads = entry["threads"]
    if any(not isinstance(t, int) or t < 1 for t in threads):
        return fail(path, f"series[{i}] threads must be positive integers: "
                          f"{threads}")
    if any(b <= a for a, b in zip(threads, threads[1:])):
        return fail(path, f"series[{i}] threads must be strictly "
                          f"increasing: {threads}")
    if threads[0] != 1:
        return fail(path, f"series[{i}] thread axis must start at 1 "
                          f"(the speedup baseline), got {threads[0]}")
    rates = entry["node_cycles_per_sec"]
    if any(not isinstance(r, (int, float)) or r <= 0 for r in rates):
        return fail(path, f"series[{i}] node_cycles_per_sec must be "
                          f"positive: {rates}")
    speedups = entry["speedup_vs_1"]
    if abs(speedups[0] - 1.0) > 1e-9:
        return fail(path, f"series[{i}] speedup_vs_1[0] must be 1.0 "
                          f"(it is its own baseline), got {speedups[0]}")
    if any(not isinstance(s, (int, float)) or s <= 0 for s in speedups):
        return fail(path, f"series[{i}] speedup_vs_1 must be positive: "
                          f"{speedups}")
    return True


def check(path):
    try:
        with open(path, encoding="utf-8") as handle:
            record = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        return fail(path, f"does not parse: {error}")

    if not isinstance(record, dict):
        return fail(path, "top level is not an object")
    for key, kind in REQUIRED_TOP_LEVEL.items():
        if key not in record:
            return fail(path, f"missing required key '{key}'")
        if not isinstance(record[key], kind):
            return fail(path, f"key '{key}' has type "
                              f"{type(record[key]).__name__}")
    for key, kind in REQUIRED_SCALE.items():
        if key not in record["scale"]:
            return fail(path, f"missing required key 'scale.{key}'")
        if not isinstance(record["scale"][key], kind):
            return fail(path, f"key 'scale.{key}' has type "
                              f"{type(record['scale'][key]).__name__}")
    if record["threads"] < 1:
        return fail(path, f"threads must be >= 1, got {record['threads']}")
    if not check_timing(path, record["timing"], "timing"):
        return False
    if record["wall_clock_seconds"] < 0:
        return fail(path, "wall_clock_seconds is negative")
    if record["wall_clock_ms"] < 0:
        return fail(path, "wall_clock_ms is negative")
    # The two clocks are the same stopwatch in different units.
    if abs(record["wall_clock_ms"] - record["wall_clock_seconds"] * 1000.0) \
            > max(1.0, record["wall_clock_ms"] * 0.01):
        return fail(path, "wall_clock_ms disagrees with wall_clock_seconds")
    if record["peak_rss_bytes"] < 0:
        return fail(path, "peak_rss_bytes is negative")
    if not record["series"]:
        return fail(path, "series is empty")
    for i, entry in enumerate(record["series"]):
        if not isinstance(entry, dict):
            return fail(path, f"series[{i}] is not an object")
        for key, kind in REQUIRED_SERIES_ENTRY.items():
            if key not in entry or not isinstance(entry[key], kind):
                return fail(path, f"series[{i}] missing/typed key '{key}'")
        # Benches comparing timing models attach per-series metadata too;
        # when present it must be as well-formed as the top-level object.
        if "timing" in entry:
            if not isinstance(entry["timing"], dict):
                return fail(path, f"series[{i}].timing is not an object")
            if not check_timing(path, entry["timing"], f"series[{i}].timing"):
                return False
        arrays = PARALLEL_ARRAY_KINDS.get(entry["kind"])
        if arrays is not None:
            if entry["kind"] in STRATEGY_KINDS and (
                    "strategy" not in entry or
                    not isinstance(entry["strategy"], str)):
                return fail(path, f"series[{i}] ({entry['kind']}) misses "
                                  f"string key 'strategy'")
            lengths = set()
            for key in arrays:
                if key not in entry or not isinstance(entry[key], list):
                    return fail(path, f"series[{i}] ({entry['kind']}) "
                                      f"misses list key '{key}'")
                lengths.add(len(entry[key]))
            if len(lengths) != 1 or 0 in lengths:
                return fail(path, f"series[{i}] ({entry['kind']}) parallel "
                                  f"arrays disagree in length: {lengths}")
        if entry["kind"] == "thread_scaling":
            if not check_thread_scaling(path, entry, i):
                return False
    # Benches emitting per-timing-mode scaling sweeps (timing_sensitivity
    # --engine-threads) must label each one distinctly, or consumers
    # cannot tell the modes apart.
    scaling_labels = [entry["label"] for entry in record["series"]
                      if entry.get("kind") == "thread_scaling"]
    if len(scaling_labels) != len(set(scaling_labels)):
        return fail(path, f"duplicate thread_scaling labels: "
                          f"{sorted(scaling_labels)}")
    print(f"OK   {path}: bench={record['bench']} "
          f"series={len(record['series'])} "
          f"threads={record['threads']} "
          f"wall_clock={record['wall_clock_seconds']:.2f}s "
          f"peak_rss={record['peak_rss_bytes'] / (1 << 20):.0f}MiB")
    return True


def main(argv):
    if len(argv) < 2:
        print(__doc__)
        return 2
    results = [check(path) for path in argv[1:]]
    print(f"{sum(results)}/{len(results)} records valid")
    return 0 if all(results) else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
