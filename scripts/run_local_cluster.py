#!/usr/bin/env python3
"""Launches a real vs07_node cluster on localhost and cross-validates it.

Spawns N vs07_node processes (one seed + N-1 joiners) bound to ephemeral
127.0.0.1 ports, waits for every node to bootstrap and warm up, publishes
`--publishes` messages via RingCast round-robin across origins, and
collects every node's first-delivery hop over the control sockets. From
those it builds the real coverage-vs-round curve and validates it:

  1. every publish must reach 100% of the cluster (RingCast full
     delivery on a lossless local network), and
  2. the curve must agree, round by round, with the in-process
     simulator's lossyWan reference (bench/realnet_coverage on the same
     population seed) within --tolerance percentage points.

With --json PATH it emits a bench-schema record (validated by
scripts/check_bench_json.py) carrying the real curve, the sim curve, and
their per-round deltas.

Exit codes: 0 = pass, 1 = validation failure or node crash, 2 = cannot
run here (binary missing, sockets unavailable).

Usage:
  scripts/run_local_cluster.py --nodes 16 --quick \
      --bin build/vs07_node --sim-bench build/realnet_coverage
"""
import argparse
import json
import os
import re
import shutil
import socket
import subprocess
import sys
import tempfile
import time

READY_RE = re.compile(r"VS07_READY id=(\d+) udp=(\d+) control=(\d+)")


class Node:
    def __init__(self, node_id, proc, udp_port, control_port, log_path):
        self.id = node_id
        self.proc = proc
        self.udp_port = udp_port
        self.control_port = control_port
        self.log_path = log_path


def launch_node(binary, node_id, args, extra, log_dir):
    log_path = os.path.join(log_dir, f"node{node_id}.log")
    log = open(log_path, "w", encoding="utf-8")
    cmd = [binary, "--id", str(node_id), "--nodes", str(args.nodes),
           "--seed", str(args.seed), "--cycle-ms", str(args.cycle_ms),
           "--warmup-cycles", str(args.warmup_cycles),
           "--strategy", args.strategy, "--fanout", str(args.fanout),
           "--listen", "0.0.0.0:0", "--control", "0.0.0.0:0"] + extra
    proc = subprocess.Popen(cmd, stdout=subprocess.PIPE, stderr=log,
                            text=True)
    deadline = time.monotonic() + 10.0
    line = ""
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if line:
            break
        if proc.poll() is not None:
            break
    match = READY_RE.match(line.strip()) if line else None
    if not match:
        proc.kill()
        raise RuntimeError(
            f"node {node_id} printed no VS07_READY line "
            f"(see {log_path}); got {line!r}")
    return Node(node_id, proc, int(match.group(2)), int(match.group(3)),
                log_path)


def control(node, command, timeout=5.0):
    """One command over a fresh control connection; returns parsed JSON."""
    with socket.create_connection(("127.0.0.1", node.control_port),
                                  timeout=timeout) as conn:
        conn.sendall((command + "\n").encode())
        buf = b""
        while b"\n" not in buf:
            chunk = conn.recv(4096)
            if not chunk:
                break
            buf += chunk
    reply = buf.decode().strip()
    if not reply:
        raise RuntimeError(f"node {node.id}: empty reply to {command!r}")
    return json.loads(reply)


def wait_all(nodes, predicate, what, timeout_s):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        statuses = [control(n, "status") for n in nodes]
        if all(predicate(s) for s in statuses):
            return statuses
        time.sleep(0.1)
    pending = [n.id for n, s in zip(nodes, statuses)
               if not predicate(s)]
    raise RuntimeError(f"timed out waiting for {what}: nodes {pending}")


def coverage_curve(hops_per_publish, nodes):
    """Cumulative coverage %, averaged over publishes; index = round."""
    max_hop = max((max(h.values()) for h in hops_per_publish if h),
                  default=0)
    curve = []
    for rnd in range(max_hop + 1):
        total = 0.0
        for hops in hops_per_publish:
            total += 100.0 * sum(1 for h in hops.values() if h <= rnd) / nodes
        curve.append(total / len(hops_per_publish))
    return curve


def sim_reference(args):
    """Runs bench/realnet_coverage on the same population; returns curve."""
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        ref_path = tmp.name
    try:
        cmd = [args.sim_bench, "--nodes", str(args.nodes),
               "--seed", str(args.seed), "--runs", str(args.sim_runs),
               "--loss", str(args.sim_loss),
               "--latency", args.sim_latency, "--threads", "2",
               "--json", ref_path]
        result = subprocess.run(cmd, capture_output=True, text=True,
                                timeout=300)
        if result.returncode != 0:
            raise RuntimeError(
                f"sim reference failed ({result.returncode}):\n"
                f"{result.stdout}\n{result.stderr}")
        with open(ref_path, encoding="utf-8") as handle:
            record = json.load(handle)
        series = record["series"][0]
        return series["coverage_percent"]
    finally:
        os.unlink(ref_path)


def emit_record(args, real_curve, sim_curve, deltas, statuses, publishes,
                delivery_percent, wall_seconds):
    rounds = list(range(len(real_curve)))
    record = {
        "bench": "realnet_cluster",
        "schema_version": 1,
        "scale": {"nodes": args.nodes, "runs": publishes,
                  "paper": False, "quick": args.quick},
        "seed": args.seed,
        "threads": 1,
        # The cluster's wall-clock analogue of the sim's jittered timers.
        "timing": {"mode": "jittered", "ticks_per_cycle": 8,
                   "latency": "none"},
        "wall_clock_seconds": wall_seconds,
        "wall_clock_ms": wall_seconds * 1000.0,
        "peak_rss_bytes": max(s["peak_rss_bytes"] for s in statuses),
        "cycle_ms": args.cycle_ms,
        "delivery_percent": delivery_percent,
        "datagrams_sent": sum(s["datagrams_sent"] for s in statuses),
        "fallback_sent": sum(s["fallback_sent"] for s in statuses),
        "dropped_malformed": sum(s["dropped_malformed"] for s in statuses),
        "series": [
            {"label": f"real {args.strategy} coverage vs round "
                      f"({args.nodes} processes)",
             "kind": "realnet_coverage",
             "strategy": args.strategy,
             "round": rounds,
             "real_coverage_percent": real_curve},
            {"label": "real vs sim (lossyWan reference)",
             "kind": "realnet_vs_sim",
             "strategy": args.strategy,
             "tolerance_percent": args.tolerance,
             "round": rounds,
             "real_coverage_percent": real_curve,
             "sim_coverage_percent": sim_curve[:len(rounds)],
             "abs_delta_percent": deltas},
        ],
    }
    with open(args.json, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print(f"JSON record written to {args.json}")


def pad(curve, length):
    return curve + [curve[-1]] * (length - len(curve)) if curve else [0.0]


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--nodes", type=int, default=16)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--publishes", type=int, default=0,
                        help="messages to publish (default: one per node)")
    parser.add_argument("--cycle-ms", type=int, default=50)
    parser.add_argument("--warmup-cycles", type=int, default=10)
    parser.add_argument("--converge-cycles", type=int, default=60,
                        help="gossip cycles every node must run before the "
                             "first publish; the VICINITY ring needs ~40 "
                             "cycles at 16 nodes, and an unconverged ring "
                             "drags the mid-wave rounds well below the sim "
                             "reference")
    parser.add_argument("--strategy", default="ringcast")
    parser.add_argument("--fanout", type=int, default=3)
    parser.add_argument("--quick", action="store_true",
                        help="smoke scale: fewer publishes, shorter settle")
    parser.add_argument("--bin", default="build/vs07_node")
    parser.add_argument("--sim-bench", default="build/realnet_coverage")
    parser.add_argument("--sim-runs", type=int, default=64)
    parser.add_argument("--sim-loss", type=float, default=0.0,
                        help="per-link loss%% for the sim reference; the "
                             "loopback cluster is lossless, so the default "
                             "compares like with like (raise it to watch "
                             "push-only RingCast strand nodes in the sim)")
    parser.add_argument("--sim-latency", default="uniform",
                        choices=["uniform", "wan"],
                        help="sim latency model; 'uniform' (default, fixed "
                             "1 tick per link) matches loopback's hop "
                             "semantics — under 'wan' the first copy often "
                             "arrives via a longer-hop path, so the sim's "
                             "hop curve reads slower")
    parser.add_argument("--tolerance", type=float, default=5.0,
                        help="max |real - sim| per round, percentage points")
    parser.add_argument("--settle-s", type=float, default=0.0,
                        help="wait after the last publish before collecting "
                             "reports (default: 40 cycles)")
    parser.add_argument("--json", default="",
                        help="write a bench-schema JSON record here")
    parser.add_argument("--keep-logs", default="",
                        help="directory for per-node logs (default: temp, "
                             "removed on success)")
    args = parser.parse_args()

    if not os.path.exists(args.bin):
        print(f"SKIP: {args.bin} not built")
        return 2
    if args.publishes <= 0:
        # The per-round tolerance needs a decent sample: 8 publishes put
        # ~3.5pp of noise on the mid-wave rounds, 32 brings it under 2pp.
        args.publishes = 32 if args.quick else max(2 * args.nodes, 32)
    settle_s = args.settle_s or (40 * args.cycle_ms / 1000.0)

    # Sockets may be unavailable in sandboxes; probe before launching N.
    try:
        probe = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        probe.bind(("127.0.0.1", 0))
        probe.close()
    except OSError as error:
        print(f"SKIP: loopback sockets unavailable ({error})")
        return 2

    log_dir = args.keep_logs or tempfile.mkdtemp(prefix="vs07_cluster_")
    os.makedirs(log_dir, exist_ok=True)
    started = time.monotonic()
    nodes = []
    failures = []
    try:
        seed_node = launch_node(args.bin, 0, args, ["--is-seed"], log_dir)
        nodes.append(seed_node)
        seed_peer = f"127.0.0.1:{seed_node.udp_port}"
        for node_id in range(1, args.nodes):
            nodes.append(launch_node(args.bin, node_id, args,
                                     ["--seed-peer", seed_peer], log_dir))
        print(f"{args.nodes} nodes up (seed udp {seed_node.udp_port}), "
              f"waiting for bootstrap...")

        wait_all(nodes, lambda s: s["state"] == "joined", "bootstrap", 30.0)
        # Warm up: every node must have gossiped enough cycles for the
        # CYCLON/VICINITY views (and the ring) to converge.
        min_cycles = args.warmup_cycles + args.converge_cycles
        statuses = wait_all(nodes, lambda s: s["cycles"] >= min_cycles,
                            f"{min_cycles} gossip cycles",
                            30.0 + min_cycles * args.cycle_ms / 1000.0)
        ring_ok = sum(1 for s in statuses if s.get("ring_converged"))
        print(f"overlay warm ({min_cycles}+ cycles each, ring converged "
              f"on {ring_ok}/{args.nodes} nodes), publishing "
              f"{args.publishes} messages...")

        data_ids = []
        for publish in range(args.publishes):
            origin = nodes[publish % len(nodes)]
            reply = control(origin, "publish")
            if "data_id" not in reply:
                raise RuntimeError(f"publish via node {origin.id}: {reply}")
            data_ids.append(reply["data_id"])
            # Stagger so concurrent waves don't saturate loopback buffers.
            time.sleep(3 * args.cycle_ms / 1000.0)
        time.sleep(settle_s)

        hops_per_publish = []
        missing = []
        for data_id in data_ids:
            hops = {}
            for node in nodes:
                report = control(node, f"report {data_id}")
                if report.get("delivered"):
                    hops[node.id] = report["hop"]
                else:
                    missing.append((data_id, node.id))
            hops_per_publish.append(hops)
        delivered = sum(len(h) for h in hops_per_publish)
        expected = args.publishes * args.nodes
        delivery_percent = 100.0 * delivered / expected
        print(f"delivery: {delivered}/{expected} ({delivery_percent:.2f}%)")
        if missing:
            failures.append(
                f"{len(missing)} missed deliveries, e.g. "
                f"{missing[:5]} (dataId, nodeId)")

        real_curve = coverage_curve(hops_per_publish, args.nodes)
        print("real  coverage/round: "
              + " ".join(f"{c:6.2f}" for c in real_curve))

        print(f"running sim reference ({args.sim_bench}, "
              f"{args.sim_runs} runs)...")
        sim_curve = sim_reference(args)
        rounds = max(len(real_curve), len(sim_curve))
        real_padded = pad(real_curve, rounds)
        sim_padded = pad(sim_curve, rounds)
        print("sim   coverage/round: "
              + " ".join(f"{c:6.2f}" for c in sim_padded))
        deltas = [abs(r - s) for r, s in zip(real_padded, sim_padded)]
        print("delta coverage/round: "
              + " ".join(f"{d:6.2f}" for d in deltas))
        bad_rounds = [i for i, d in enumerate(deltas) if d > args.tolerance]
        if bad_rounds:
            failures.append(
                f"real/sim curves disagree beyond {args.tolerance}pp at "
                f"rounds {bad_rounds}")

        statuses = [control(n, "status") for n in nodes]
        if args.json:
            emit_record(args, real_padded, sim_padded, deltas, statuses,
                        args.publishes, delivery_percent,
                        time.monotonic() - started)
    except Exception as error:  # noqa: BLE001 - report, then teardown
        failures.append(str(error))
    finally:
        for node in nodes:
            try:
                control(node, "quit", timeout=2.0)
            except Exception:
                node.proc.kill()
        for node in nodes:
            try:
                node.proc.wait(timeout=5)
            except subprocess.TimeoutExpired:
                node.proc.kill()

    if failures:
        print(f"FAIL ({len(failures)}):")
        for failure in failures:
            print(f"  - {failure}")
        print(f"node logs kept in {log_dir}")
        return 1
    print(f"PASS: {args.nodes}-process cluster, 100% delivery, curve within "
          f"{args.tolerance}pp of the sim reference")
    if not args.keep_logs:
        shutil.rmtree(log_dir, ignore_errors=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
