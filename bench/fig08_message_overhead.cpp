// Regenerates Fig. 8 — total messages sent per dissemination, split into
// messages reaching "virgin" (not-yet-notified) nodes and redundant
// messages to already-notified nodes, as a function of the fanout.
//
// Expected shape (paper, 10k nodes): total ≈ F × N_hit, of which ≈ N_hit
// are virgin and (F-1) × N_hit redundant. The two protocols' stacks are
// practically identical except at low fanout, where RANDCAST does not
// reach everyone (smaller N_hit).
#include <cstdio>

#include "analysis/experiment.hpp"
#include "bench_common.hpp"
#include "common/table.hpp"

namespace {

using namespace vs07;
using cast::Strategy;

void printProtocol(const char* name,
                   const std::vector<analysis::EffectivenessPoint>& points,
                   bool csv) {
  std::printf("--- %s: messages per dissemination (averaged) ---\n", name);
  Table table({"fanout", "total", "to_virgin", "to_notified", "virgin_share"});
  for (const auto& p : points) {
    const double share =
        p.avgMessagesTotal > 0 ? p.avgVirgin / p.avgMessagesTotal : 0.0;
    table.addRow({std::to_string(p.fanout), fmt(p.avgMessagesTotal, 0),
                  fmt(p.avgVirgin, 0), fmt(p.avgRedundant, 0),
                  fmt(share, 3)});
  }
  std::fputs((csv ? table.renderCsv() : table.render()).c_str(), stdout);
  std::printf("\n");
}

int run(const bench::Scale& scale) {
  bench::printHeader(
      "Fig. 8: message overhead split (virgin vs redundant) vs fanout",
      "total = F x N_hit; N_hit virgin + (F-1) x N_hit redundant; "
      "protocols identical except at low F where RandCast reaches fewer "
      "nodes",
      scale);

  bench::JsonReport report("fig08_message_overhead", scale);
  const auto scenario = bench::buildStatic(scale);
  auto sweep = bench::makeSweep(scale);

  const auto fanouts = bench::fullFanoutAxis();
  const auto rand = sweep.sweepEffectiveness(
      scenario, Strategy::kRandCast, fanouts, scale.runs, scale.seed + 1);
  const auto ring = sweep.sweepEffectiveness(
      scenario, Strategy::kRingCast, fanouts, scale.runs, scale.seed + 2);

  printProtocol("RANDCAST", rand, scale.csv);
  printProtocol("RINGCAST", ring, scale.csv);

  report.addSeries(bench::effectivenessSeries("randcast", rand));
  report.addSeries(bench::effectivenessSeries("ringcast", ring));
  report.write(scale);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto parser = bench::makeParser(
      "Fig. 8 of Voulgaris & van Steen (Middleware 2007): messages to "
      "virgin vs already-notified nodes, per fanout, static network.");
  const auto args = parser.parseOrExit(argc, argv);
  if (!args) return 0;
  return run(bench::resolveScale(*args, /*quickNodes=*/2'500,
                                 /*quickRuns=*/25,
                                 bench::DefaultScale::kPaper));
}
