// Link-level degradation sweep: every strategy under per-link loss and
// per-node egress bandwidth caps (sim/network_model).
//
// The paper's evaluation kills whole nodes; real deployments mostly
// suffer *link* trouble. Two axes, all five strategies:
//
//   1. Per-link Bernoulli loss. The paper's §5 claim in link terms: the
//      ring's two deterministic d-links give every node redundant
//      delivery paths, so RINGCAST rides out loss rates at which a
//      purely probabilistic strategy (RANDCAST at the same fanout)
//      leaves nodes unserved — and pull recovery (§8 PUSHPULL) repairs
//      whatever loss still breaks through.
//   2. Egress bandwidth caps with FIFO queueing: overload turns into
//      *delay* (wave stretch in ticks), not silent infinite capacity.
//      Flooding pays the steepest queueing price — exactly why fanout
//      dissemination exists.
//
// Each (strategy, condition) cell builds its own scenario seeded from
// the cell identity (deriveStreamSeed) and runs on the worker pool;
// cells merge in canonical order, so the tables and JSON series are
// bit-identical for any --threads value.
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/scenario.hpp"
#include "bench_common.hpp"
#include "cast/strategy.hpp"
#include "common/table.hpp"

namespace {

using namespace vs07;
using cast::Strategy;

const std::vector<Strategy>& allStrategies() {
  static const std::vector<Strategy> kAll = {
      Strategy::kFlood, Strategy::kRandCast, Strategy::kRingCast,
      Strategy::kMultiRing, Strategy::kPushPull};
  return kAll;
}

struct CellResult {
  double avgMissPercent = 0.0;
  double completePercent = 0.0;
  double avgMessages = 0.0;
  double avgSpreadTicks = 0.0;
  std::uint64_t droppedByLoss = 0;
  std::uint64_t queuedSends = 0;
  std::uint64_t maxQueueDelay = 0;
};

/// Publishes scale.runs messages through one live session and averages.
CellResult runCell(const bench::Scale& scale, analysis::Scenario& scenario,
                   Strategy strategy, std::uint32_t fanout,
                   std::uint64_t sessionSeed, std::uint32_t settleCycles) {
  auto& live = scenario.liveSession({.strategy = strategy,
                                     .fanout = fanout,
                                     .seed = sessionSeed,
                                     .settleCycles = settleCycles});
  CellResult cell;
  std::uint32_t complete = 0;
  for (std::uint32_t run = 0; run < scale.runs; ++run) {
    const auto report = live.publishFromRandom();
    cell.avgMissPercent += report.missRatioPercent();
    cell.avgMessages += static_cast<double>(report.messagesTotal);
    cell.avgSpreadTicks += static_cast<double>(
        live.live().stats(live.lastDataId()).spreadTicks());
    complete += report.complete() ? 1 : 0;
  }
  cell.avgMissPercent /= scale.runs;
  cell.avgMessages /= scale.runs;
  cell.avgSpreadTicks /= scale.runs;
  cell.completePercent = 100.0 * complete / scale.runs;
  const auto* model = scenario.networkModel();
  if (model != nullptr) {
    cell.droppedByLoss = model->droppedByLoss();
    cell.queuedSends = model->queuedSends();
    cell.maxQueueDelay = model->maxQueueDelay();
  }
  return cell;
}

void lossSweep(const bench::Scale& scale, analysis::ParallelSweep& sweep,
               std::uint32_t fanout, bench::JsonReport& report) {
  const std::vector<double> lossPercent{0.0, 0.5, 1.0, 2.0, 5.0};
  const auto& strategies = allStrategies();
  std::printf("--- per-link Bernoulli loss, miss%% over %u runs "
              "(F=%u, settle 6 cycles) ---\n",
              scale.runs, fanout);

  std::vector<CellResult> cells(strategies.size() * lossPercent.size());
  sweep.pool().parallelFor(cells.size(), [&](std::size_t i) {
    const Strategy strategy = strategies[i / lossPercent.size()];
    const double loss = lossPercent[i % lossPercent.size()] / 100.0;
    const std::uint64_t cellSeed = deriveStreamSeed(scale.seed, 0x1055, i);
    // Links degrade only after the clean warm-up (the §7 methodology):
    // sustained loss *during* self-organisation starves CYCLON views —
    // a different failure mode than the dissemination robustness under
    // test here.
    auto scenario = analysis::Scenario::builder()
                        .nodes(scale.nodes)
                        .seed(cellSeed)
                        .timing(scale.timing)
                        .linkLoss(loss)
                        .conditionsFromCycle(
                            analysis::Scenario::Config{}.warmupCycles)
                        .build();
    cells[i] = runCell(scale, scenario, strategy, fanout,
                       deriveStreamSeed(cellSeed, 0x5e55, 1),
                       /*settleCycles=*/6);
  });

  std::vector<std::string> header{"strategy"};
  for (const double loss : lossPercent)
    header.push_back("loss " + fmt(loss, 1) + "%");
  Table table(header);
  for (std::size_t s = 0; s < strategies.size(); ++s) {
    std::vector<std::string> row{std::string(strategyName(strategies[s]))};
    Json losses = Json::array();
    Json misses = Json::array();
    Json completes = Json::array();
    Json messages = Json::array();
    for (std::size_t l = 0; l < lossPercent.size(); ++l) {
      const CellResult& cell = cells[s * lossPercent.size() + l];
      row.push_back(fmtLog(cell.avgMissPercent));
      losses.push(lossPercent[l]);
      misses.push(cell.avgMissPercent);
      completes.push(cell.completePercent);
      messages.push(cell.avgMessages);
    }
    table.addRow(std::move(row));
    report.addSeries(Json::object()
                         .set("label", std::string("loss:") +
                                           std::string(strategyName(
                                               strategies[s])))
                         .set("kind", "loss_sweep")
                         .set("strategy",
                              std::string(strategyName(strategies[s])))
                         .set("fanout", fanout)
                         .set("loss_percent", std::move(losses))
                         .set("avg_miss_percent", std::move(misses))
                         .set("complete_percent", std::move(completes))
                         .set("avg_messages", std::move(messages)));
  }
  std::fputs((scale.csv ? table.renderCsv() : table.render()).c_str(),
             stdout);
  std::printf(
      "\nd-link redundancy + pull recovery hold the deterministic "
      "strategies at (or near) zero miss while RandCast's misses grow "
      "with the loss rate.\n\n");
}

void bandwidthSweep(const bench::Scale& scale, analysis::ParallelSweep& sweep,
                    std::uint32_t fanout, bench::JsonReport& report) {
  // 0 = unlimited; the capped pipes force FIFO queueing. The axis runs
  // under jittered timers + fixed 1-tick links regardless of --timing:
  // queueing delay needs a clock that in-flight messages live on.
  const std::vector<std::uint32_t> egress{0, 8, 4, 2};
  const auto& strategies = allStrategies();
  const sim::TimingConfig timing =
      sim::TimingConfig::jitteredLatency(sim::LatencyModel::fixed(1));
  std::printf("--- egress bandwidth cap (messages/node/tick), wave spread "
              "in ticks | miss%% (settle 12 cycles) ---\n");

  std::vector<CellResult> cells(strategies.size() * egress.size());
  sweep.pool().parallelFor(cells.size(), [&](std::size_t i) {
    const Strategy strategy = strategies[i / egress.size()];
    const std::uint32_t cap = egress[i % egress.size()];
    const std::uint64_t cellSeed = deriveStreamSeed(scale.seed, 0xba2d, i);
    auto builder = analysis::Scenario::builder()
                       .nodes(scale.nodes)
                       .seed(cellSeed)
                       .timing(timing)
                       .conditionsFromCycle(
                            analysis::Scenario::Config{}.warmupCycles);
    if (cap > 0) builder.egressCap(cap);
    auto scenario = builder.build();
    cells[i] = runCell(scale, scenario, strategy, fanout,
                       deriveStreamSeed(cellSeed, 0x5e55, 1),
                       /*settleCycles=*/12);
  });

  std::vector<std::string> header{"strategy"};
  for (const std::uint32_t cap : egress)
    header.push_back(cap == 0 ? "unlimited" : "cap " + std::to_string(cap));
  Table table(header);
  for (std::size_t s = 0; s < strategies.size(); ++s) {
    std::vector<std::string> row{std::string(strategyName(strategies[s]))};
    Json caps = Json::array();
    Json spreads = Json::array();
    Json misses = Json::array();
    Json queued = Json::array();
    for (std::size_t e = 0; e < egress.size(); ++e) {
      const CellResult& cell = cells[s * egress.size() + e];
      row.push_back(fmt(cell.avgSpreadTicks, 1) + " | " +
                    fmtLog(cell.avgMissPercent));
      caps.push(egress[e]);
      spreads.push(cell.avgSpreadTicks);
      misses.push(cell.avgMissPercent);
      queued.push(cell.queuedSends);
    }
    table.addRow(std::move(row));
    report.addSeries(Json::object()
                         .set("label", std::string("bandwidth:") +
                                           std::string(strategyName(
                                               strategies[s])))
                         .set("kind", "bandwidth_sweep")
                         .set("strategy",
                              std::string(strategyName(strategies[s])))
                         .set("fanout", fanout)
                         .set("egress_messages_per_tick", std::move(caps))
                         .set("avg_spread_ticks", std::move(spreads))
                         .set("avg_miss_percent", std::move(misses))
                         .set("queued_sends", std::move(queued))
                         // This axis runs under its own timing model
                         // (jittered + fixed 1-tick links), not --timing.
                         .set("timing", bench::JsonReport::timingJson(timing)));
  }
  std::fputs((scale.csv ? table.renderCsv() : table.render()).c_str(),
             stdout);
  std::printf(
      "\ntighter pipes stretch every wave; flooding pays the steepest "
      "queueing price, fanout-bounded strategies degrade gracefully.\n");
}

int run(const bench::Scale& scale, std::uint32_t fanout) {
  bench::printHeader(
      "Degraded links: loss and bandwidth sweeps (beyond-paper stress)",
      "per-link loss: RINGCAST's redundant d-link paths deliver where "
      "pure RANDCAST misses; egress caps: overload becomes queueing "
      "delay, not silent capacity",
      scale);
  bench::JsonReport report("degraded_links", scale);
  report.setParam("fanout", fanout);
  auto sweep = bench::makeSweep(scale);
  lossSweep(scale, sweep, fanout, report);
  bandwidthSweep(scale, sweep, fanout, report);
  report.write(scale);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto parser = bench::makeParser(
      "Per-link loss and egress-bandwidth sweeps over all five "
      "dissemination strategies (live path, sim/network_model).");
  parser.option("fanout", "push fanout F for every strategy (default 3)");
  const auto args = parser.parseOrExit(argc, argv);
  if (!args) return 0;
  const auto scale = bench::resolveScale(*args, /*quickNodes=*/600,
                                         /*quickRuns=*/10);
  return run(scale, static_cast<std::uint32_t>(bench::argOrExit(
                 [&] { return args->getPositiveUint("fanout", 3); })));
}
