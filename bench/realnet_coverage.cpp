// Simulated reference curve for the real-socket runtime harness.
//
// scripts/run_local_cluster.py launches N vs07_node processes on
// localhost, publishes through RingCast, and collects each node's
// first-delivery hop over the control socket. This bench produces the
// curve those measurements are validated against: the same population
// (shared populationSeed), same strategy and fanout, run in-process
// under the lossyWan preset (latency clusters + per-link loss + light
// reordering under jittered timers — the adversarial stand-in for a
// real network). The metric is cumulative coverage per push round:
//
//   coverage[h] = avg over runs of (nodes first notified at hop <= h)
//                 / alive * 100
//
// which is exactly what the harness computes from the per-node hop
// reports, so the two curves are directly comparable (the harness
// asserts per-round agreement within a tolerance).
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/scenario.hpp"
#include "bench_common.hpp"
#include "cast/strategy.hpp"
#include "common/table.hpp"

namespace {

using namespace vs07;

/// Averaged cumulative coverage per push hop; index 0 = the origin.
std::vector<double> coverageCurve(cast::LiveSession& live,
                                  std::uint32_t runs,
                                  double* completePercent,
                                  double* avgLastHop) {
  std::vector<double> sum;       // per-hop cumulative coverage, summed
  std::vector<std::uint32_t> n;  // runs contributing at this hop
  std::uint32_t complete = 0;
  double lastHops = 0.0;
  for (std::uint32_t run = 0; run < runs; ++run) {
    const auto report = live.publishFromRandom();
    complete += report.complete() ? 1 : 0;
    lastHops += report.lastHop;
    double cumulative = 0.0;
    if (report.newlyNotifiedPerHop.size() > sum.size()) {
      sum.resize(report.newlyNotifiedPerHop.size(), 0.0);
      n.resize(report.newlyNotifiedPerHop.size(), 0);
    }
    for (std::size_t h = 0; h < sum.size(); ++h) {
      if (h < report.newlyNotifiedPerHop.size())
        cumulative += 100.0 *
                      static_cast<double>(report.newlyNotifiedPerHop[h]) /
                      static_cast<double>(report.aliveTotal);
      // Runs whose wave ended earlier hold their final coverage: the
      // curve is cumulative, a finished wave stays where it stopped.
      sum[h] += cumulative;
      ++n[h];
    }
  }
  std::vector<double> curve(sum.size());
  for (std::size_t h = 0; h < sum.size(); ++h) curve[h] = sum[h] / n[h];
  *completePercent = 100.0 * complete / runs;
  *avgLastHop = lastHops / runs;
  return curve;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser parser = bench::makeParser(
      "RingCast coverage-vs-round reference under the lossyWan preset "
      "(the sim half of the real-socket cross-validation)");
  parser.option("loss", "per-link loss rate in percent (default 1.0)")
      .option("settle", "engine cycles run after each publish so the "
                        "latency-delayed wave completes (default 12)")
      .option("latency", "wan | uniform (default wan). 'uniform' keeps "
                         "the lossyWan loss under jittered timers but "
                         "replaces the latency clusters with a uniform "
                         "1-3 tick delay on every link — homogeneous "
                         "links with a little jitter, which is what a "
                         "loopback cluster actually is (OS scheduling "
                         "jitter occasionally lets a hop-3 copy beat a "
                         "hop-2 copy). The wan clusters are far more "
                         "asymmetric, so their hop curve reads much "
                         "slower than the dissemination tree it built");
  const auto parsed = parser.parseOrExit(argc, argv);
  if (!parsed) return 0;
  bench::Scale scale = bench::resolveScale(*parsed, /*quickNodes=*/16,
                                           /*quickRuns=*/8);
  // The lossyWan preset fixes the timing model; reflect it in the record
  // instead of the CLI default.
  scale.timing = sim::TimingConfig::jittered();
  scale.timingName = "jittered";
  const double lossPercent = parsed->getDouble("loss", 1.0);
  const auto settleCycles =
      static_cast<std::uint32_t>(parsed->getPositiveUint("settle", 12));

  static const std::vector<std::string> kLatencyChoices = {"wan", "uniform"};
  const bool wanLatency =
      parsed->getChoice("latency", kLatencyChoices, 0) == 0;

  std::printf(
      "realnet_coverage: %u nodes, %u runs, loss %.2f%%, latency %s, "
      "seed %llu\n",
      scale.nodes, scale.runs, lossPercent, wanLatency ? "wan" : "uniform",
      static_cast<unsigned long long>(scale.seed));

  auto scenario =
      wanLatency
          ? analysis::Scenario::lossyWan(lossPercent / 100.0, scale.nodes,
                                         scale.seed)
          // lossyWan minus the latency clusters (and the reordering that
          // only matters under asymmetric latency): same population,
          // timers, loss. The uniform 1-3 tick link models a loopback
          // cluster — homogeneous links whose only asymmetry is OS
          // scheduling jitter (which occasionally lets a longer-hop
          // copy arrive first, softening the mid-wave rounds) — and
          // keeps delivery on the engine queue, a breadth-first wave
          // with honest hop tags. (A latency-free build would use the
          // synchronous ImmediateTransport, whose depth-first recursion
          // floods the network through the origin's *first* fanout
          // target and mis-tags the rest as duplicates.)
          : analysis::Scenario::builder()
                .nodes(scale.nodes)
                .seed(scale.seed)
                .timing(sim::TimingConfig::jittered())
                .latency(sim::LatencyModel::uniform(1, 3))
                .linkLoss(lossPercent / 100.0)
                .build();
  auto& live = scenario.liveSession(
      {.strategy = cast::Strategy::kRingCast,
       .fanout = 3,
       .seed = deriveStreamSeed(scale.seed, 0x5EA1, 0),
       .settleCycles = settleCycles});

  double completePercent = 0.0;
  double avgLastHop = 0.0;
  const std::vector<double> curve =
      coverageCurve(live, scale.runs, &completePercent, &avgLastHop);

  Table table({"round", "coverage %"});
  Json rounds = Json::array();
  Json coverage = Json::array();
  for (std::size_t h = 0; h < curve.size(); ++h) {
    table.addRow({std::to_string(h), fmt(curve[h], 2)});
    rounds.push(static_cast<std::uint64_t>(h));
    coverage.push(curve[h]);
  }
  std::fputs((scale.csv ? table.renderCsv() : table.render()).c_str(),
             stdout);
  std::printf("complete: %.1f%% of runs, avg last hop %.2f\n",
              completePercent, avgLastHop);

  bench::JsonReport report("realnet_coverage", scale);
  report.addSeries(Json::object()
                       .set("label", "ringcast coverage vs round (lossyWan)")
                       .set("kind", "coverage_ref")
                       .set("strategy", "ringcast")
                       .set("loss_percent", lossPercent)
                       .set("latency", wanLatency ? "wan" : "uniform")
                       .set("settle_cycles", settleCycles)
                       .set("complete_percent", completePercent)
                       .set("avg_last_hop", avgLastHop)
                       .set("round", std::move(rounds))
                       .set("coverage_percent", std::move(coverage)));
  report.write(scale);
  return 0;
}
