// Regenerates Fig. 11 — dissemination effectiveness vs fanout under
// continuous churn (0.2% of the population replaced per cycle; the rate
// Saroiu et al. measured on Gnutella at a 10s gossip period).
//
// Expected shape (paper): RINGCAST's miss ratio is lower than RANDCAST's
// for small fanouts (2..5) and slightly *worse* for F >= 6 (its misses
// concentrate on fresh joiners, see Fig. 13); neither protocol achieves
// complete disseminations except at extreme fanouts.
#include <cstdio>

#include "analysis/experiment.hpp"
#include "bench_common.hpp"
#include "common/table.hpp"

namespace {

using namespace vs07;
using cast::Strategy;

int run(const bench::Scale& scale, double churnRate) {
  bench::printHeader(
      "Fig. 11: effectiveness vs fanout under continuous churn",
      "RingCast better at F=2..5, slightly worse at F>=6 (misses are "
      "concentrated on fresh joiners); almost no complete disseminations",
      scale);

  bench::JsonReport report("fig11_churn_effectiveness", scale);
  report.setParam("churn_rate", churnRate);
  const auto scenario = bench::buildChurned(scale, churnRate, /*extraSeed=*/0);
  auto sweep = bench::makeSweep(scale);

  const auto fanouts = bench::fullFanoutAxis();
  const auto rand = sweep.sweepEffectiveness(
      scenario, Strategy::kRandCast, fanouts, scale.runs, scale.seed + 1);
  const auto ring = sweep.sweepEffectiveness(
      scenario, Strategy::kRingCast, fanouts, scale.runs, scale.seed + 2);

  std::printf("\n");
  Table table({"fanout", "randcast_miss%", "ringcast_miss%",
               "randcast_complete%", "ringcast_complete%"});
  for (std::size_t i = 0; i < fanouts.size(); ++i)
    table.addRow({std::to_string(fanouts[i]),
                  fmtLog(rand[i].avgMissPercent),
                  fmtLog(ring[i].avgMissPercent),
                  fmt(rand[i].completePercent, 1),
                  fmt(ring[i].completePercent, 1)});
  std::fputs((scale.csv ? table.renderCsv() : table.render()).c_str(),
             stdout);

  report.addSeries(bench::effectivenessSeries("randcast", rand));
  report.addSeries(bench::effectivenessSeries("ringcast", ring));
  report.write(scale);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto parser = bench::makeParser(
      "Fig. 11 of Voulgaris & van Steen (Middleware 2007): miss ratio and "
      "complete disseminations vs fanout under 0.2%/cycle churn.");
  parser.option("churn", "churn rate per cycle (default 0.002)");
  const auto args = parser.parseOrExit(argc, argv);
  if (!args) return 0;
  const auto scale = bench::resolveScale(*args, /*quickNodes=*/800,
                                         /*quickRuns=*/25,
                                         bench::DefaultScale::kPaper);
  return run(scale, bench::argOrExit(
                        [&] { return args->getDouble("churn", 0.002); }));
}
