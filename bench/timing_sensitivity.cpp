// Timing sensitivity — does the paper's cycle-synchronous evaluation
// model matter? §7 argues it does not ("nodes have independent,
// non-synchronized timers"; uniform delay does not change macroscopic
// behaviour) but the claim is only testable on a discrete-event core.
//
// This bench reproduces Fig. 6/7-style effectiveness and progress curves
// under three timing models and puts them side by side:
//   * cyclesync — the paper's model (PeerSim cycles, instant exchanges);
//   * jittered  — independent phase-shifted per-node gossip timers;
//   * latency   — jittered timers plus a uniform 1..4-tick delivery
//     latency on *all* traffic (gossip exchanges included, so delay
//     shapes overlay construction too).
// A live push wave is also published per model to measure its extent in
// simulated ticks (0 under synchronous delivery, >0 under latency).
//
// Expected shape: RINGCAST stays at 0% miss under cyclesync and jittered
// (determinism survives asynchrony); latency-laden gossip may leave the
// ring marginally less converged, and the wave acquires a nonzero
// duration — differences are statistical, not structural, which is
// exactly the §7 claim.
//
// --engine-threads N runs every model on the sharded engine with N
// workers (jittered/latency ride the windowed conservative-lookahead
// schedule) and appends a thread-scaling sweep *per timing mode*
// (series "<model>_thread_scaling"). Live waves are a sequential-engine
// feature and are skipped in sharded runs.
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/experiment.hpp"
#include "bench_common.hpp"
#include "common/table.hpp"
#include "sim/timing.hpp"

namespace {

using namespace vs07;
using cast::Strategy;

struct Model {
  std::string name;
  sim::TimingConfig config;
};

/// --timing picks one model; without it every model runs side by side.
std::vector<Model> selectModels(const CliArgs& args) {
  std::vector<Model> all;
  for (std::size_t i = 0; i < bench::timingChoices().size(); ++i)
    all.push_back({bench::timingChoices()[i], bench::timingPreset(i)});
  if (!args.has("timing")) return all;
  const std::size_t pick = args.getChoice("timing", bench::timingChoices(), 0);
  return {all[pick]};
}

int run(const bench::Scale& scale, const std::vector<Model>& models,
        std::uint32_t engineThreads) {
  bench::printHeader(
      "Timing sensitivity: effectiveness & progress across timing models",
      "§7 claims timing assumptions are immaterial: RingCast misses "
      "nothing under cyclesync and jittered timers; latency-laden gossip "
      "may soften the curves statistically, never structurally",
      scale);

  bench::JsonReport report("timing_sensitivity", scale);
  // The record's mandatory top-level timing object describes scale.timing
  // (the --timing selection, cyclesync by default); when several models
  // run side by side the per-series timing objects are authoritative, and
  // this param names the full set so consumers never have to guess.
  {
    Json names = Json::array();
    for (const auto& model : models) names.push(model.name);
    report.setParam("timing_models", std::move(names));
  }
  auto sweep = bench::makeSweep(scale);
  const std::vector<std::uint32_t> fanouts = {1, 2, 3, 4, 5, 6, 8, 10};

  // The effectiveness table grows two columns per model; assembled after
  // the model loop once the header is known.
  std::vector<std::string> effectivenessHeader = {"fanout"};
  std::vector<std::vector<std::string>> cells(fanouts.size());
  for (std::size_t i = 0; i < fanouts.size(); ++i)
    cells[i].push_back(std::to_string(fanouts[i]));

  Table waves({"timing", "publishes", "delivered%", "mean_spread_ticks",
               "mean_last_hop"});

  bool scalingOk = true;
  for (const auto& model : models) {
    bench::Stopwatch modelTimer;
    auto scenario = analysis::Scenario::builder()
                        .nodes(scale.nodes)
                        .seed(scale.seed)
                        .engineThreads(engineThreads)
                        .timing(model.config)
                        .build();

    // -- Fig. 6-style effectiveness over the frozen overlay ------------
    const auto rand = sweep.sweepEffectiveness(
        scenario, Strategy::kRandCast, fanouts, scale.runs, scale.seed + 1);
    const auto ring = sweep.sweepEffectiveness(
        scenario, Strategy::kRingCast, fanouts, scale.runs, scale.seed + 2);
    for (std::size_t i = 0; i < fanouts.size(); ++i) {
      cells[i].push_back(fmtLog(rand[i].avgMissPercent));
      cells[i].push_back(fmtLog(ring[i].avgMissPercent));
    }
    effectivenessHeader.push_back(model.name + "_rand_miss%");
    effectivenessHeader.push_back(model.name + "_ring_miss%");

    auto randSeries = bench::effectivenessSeries(model.name + "_randcast",
                                                 rand);
    randSeries.set("timing", bench::JsonReport::timingJson(model.config));
    report.addSeries(std::move(randSeries));
    auto ringSeries = bench::effectivenessSeries(model.name + "_ringcast",
                                                 ring);
    ringSeries.set("timing", bench::JsonReport::timingJson(model.config));
    report.addSeries(std::move(ringSeries));

    // -- Fig. 7-style progress at the paper's F = 3 --------------------
    const auto progress = sweep.measureProgress(
        scenario, Strategy::kRingCast, 3, scale.runs, scale.seed + 3);
    auto progressSeries =
        bench::progressSeries(model.name + "_ringcast_f3", progress);
    progressSeries.set("timing", bench::JsonReport::timingJson(model.config));
    report.addSeries(std::move(progressSeries));

    // -- per-mode thread scaling on the sharded engine -----------------
    if (engineThreads >= 1) {
      const std::uint32_t warmup = scale.quick ? 10 : 50;
      const std::uint32_t measured = scale.quick ? 3 : 10;
      scalingOk &= bench::runThreadScaling(
          {.nodes = scale.nodes,
           .warmupCycles = warmup,
           .measuredCycles = measured,
           .maxThreads = engineThreads,
           .seed = scale.seed,
           .timing = model.config,
           .label = model.name + "_thread_scaling"},
          report);
      // Live waves are a sequential-engine feature (LiveSession rides
      // the engine's event queue); skip them in sharded runs.
      std::printf("%s: sweeps + thread scaling in %.2fs (live waves "
                  "skipped: sharded run)\n",
                  model.name.c_str(), modelTimer.seconds());
      continue;
    }

    // -- one live wave per model: extent in simulated ticks ------------
    auto& live = scenario.liveSession(
        {.strategy = Strategy::kRingCast, .fanout = 3,
         .seed = scale.seed + 4});
    const std::uint32_t publishes = 3;
    double deliveredPct = 0.0;
    double meanSpread = 0.0;
    double meanLastHop = 0.0;
    // Only latency delivery leaves a wave in flight after publish();
    // synchronous models complete inside the call and need no settling.
    const std::uint32_t settleCycles =
        model.config.latency.kind == sim::LatencyModel::Kind::kNone ? 0 : 150;
    for (std::uint32_t p = 0; p < publishes; ++p) {
      live.publishFromRandom();
      if (settleCycles > 0) scenario.runCycles(settleCycles);
      const auto settled = live.report(live.lastDataId());
      const auto& stats = live.live().stats(live.lastDataId());
      deliveredPct += 100.0 * static_cast<double>(settled.notified) /
                      static_cast<double>(settled.aliveTotal);
      meanSpread += static_cast<double>(stats.spreadTicks());
      meanLastHop += static_cast<double>(settled.lastHop);
    }
    deliveredPct /= publishes;
    meanSpread /= publishes;
    meanLastHop /= publishes;
    waves.addRow({model.name, std::to_string(publishes),
                  fmt(deliveredPct, 2), fmt(meanSpread, 1),
                  fmt(meanLastHop, 1)});
    report.addSeries(
        Json::object()
            .set("label", model.name + "_live_wave")
            .set("kind", "live_wave")
            .set("timing", bench::JsonReport::timingJson(model.config))
            .set("publishes", publishes)
            .set("delivered_percent", deliveredPct)
            .set("mean_spread_ticks", meanSpread)
            .set("mean_last_hop", meanLastHop));

    std::printf("%s: sweeps + %u live waves in %.2fs\n", model.name.c_str(),
                publishes, modelTimer.seconds());
  }

  std::printf("\n--- miss ratio vs fanout, per timing model ---\n");
  Table effectiveness(std::move(effectivenessHeader));
  for (const auto& row : cells) effectiveness.addRow(row);
  std::fputs(
      (scale.csv ? effectiveness.renderCsv() : effectiveness.render())
          .c_str(),
      stdout);
  if (engineThreads == 0) {
    std::printf("\n--- live RingCast wave (F=3) per timing model ---\n");
    std::fputs((scale.csv ? waves.renderCsv() : waves.render()).c_str(),
               stdout);
  }

  report.write(scale);
  return scalingOk ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  auto parser = bench::makeParser(
      "Timing sensitivity of hybrid dissemination: Fig. 6/7-style curves "
      "under cyclesync vs jittered vs latency-laden timing (all three "
      "side by side unless --timing picks one).");
  parser.option("engine-threads",
                "run every model on the sharded engine with N workers "
                "(bit-identical for any N >= 1) and append a per-mode "
                "thread-scaling sweep; 0 = classic sequential engine "
                "(default)");
  const auto args = parser.parseOrExit(argc, argv);
  if (!args) return 0;
  const auto scale = bench::resolveScale(*args, /*quickNodes=*/1'000,
                                         /*quickRuns=*/10);
  const auto models = bench::argOrExit([&] { return selectModels(*args); });
  const auto engineThreads = static_cast<std::uint32_t>(bench::argOrExit(
      [&] {
        const std::uint64_t threads = args->getUint("engine-threads", 0);
        if (threads > 256)
          throw std::invalid_argument(
              "--engine-threads must be between 0 and 256");
        return threads;
      }));
  return run(scale, models, engineThreads);
}
