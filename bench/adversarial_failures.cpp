// Stress tests beyond the paper's random-failure model:
//
// 1. Failure *placement*: one contiguous ring arc vs the same number of
//    scattered random failures. The counter-intuitive result (which the
//    §5.1 partition discussion predicts once you see it): a localized
//    outage leaves the survivors' d-links path-connected — the ring minus
//    one arc is a chain, and RINGCAST completes over it even at F = 2.
//    Scattered failures are the *hard* case: they cut the ring into many
//    partitions whose bridging falls entirely to the r-links. RANDCAST is
//    indifferent to placement (it has no structure to destroy).
//
// 2. Heavy-tailed (Pareto) session churn vs the paper's geometric model
//    at matched mean lifetime. Real traces (Saroiu et al.) are heavy-
//    tailed: most sessions are short, so deaths concentrate on nodes
//    whose ring integration just finished, and the ring carries more
//    stale links at the same average turnover.
#include <cstdio>

#include "analysis/experiment.hpp"
#include "analysis/stack.hpp"
#include "bench_common.hpp"
#include "cast/selector.hpp"
#include "common/table.hpp"
#include "sim/churn.hpp"
#include "sim/failures.hpp"
#include "sim/session_churn.hpp"

namespace {

using namespace vs07;

void arcVsRandom(const bench::Scale& scale) {
  std::printf("--- random kill vs contiguous ring-arc kill (10%% dead), "
              "miss%% ---\n");
  Table table({"protocol", "fanout", "random_kill", "arc_kill"});
  for (const bool multiRing : {false, true}) {
    for (const std::uint32_t fanout : {2u, 3u, 5u}) {
      std::vector<std::string> row{
          multiRing ? "MultiRing(2)" : "RingCast", std::to_string(fanout)};
      for (const bool arc : {false, true}) {
        analysis::StackConfig config;
        config.nodes = scale.nodes;
        config.rings = multiRing ? 2 : 1;
        config.seed = scale.seed + fanout + (multiRing ? 100 : 0);
        analysis::ProtocolStack stack(config);
        stack.warmup();
        Rng killRng(config.seed ^ 0xA5C);
        if (arc)
          sim::killContiguousArc(stack.network(), 0.10, killRng);
        else
          sim::killRandomFraction(stack.network(), 0.10, killRng);
        const auto snapshot =
            multiRing ? stack.snapshotMultiRing() : stack.snapshotRing();
        const cast::RingCastSelector selector;
        const auto point = analysis::measureEffectiveness(
            snapshot, selector, fanout, scale.runs, config.seed + 7);
        row.push_back(fmtLog(point.avgMissPercent));
      }
      table.addRow(std::move(row));
    }
  }
  // RandCast baseline: indifferent to *where* the dead sit on the ring.
  for (const std::uint32_t fanout : {3u}) {
    std::vector<std::string> row{"RandCast", std::to_string(fanout)};
    for (const bool arc : {false, true}) {
      analysis::StackConfig config;
      config.nodes = scale.nodes;
      config.seed = scale.seed + 55;
      analysis::ProtocolStack stack(config);
      stack.warmup();
      Rng killRng(config.seed ^ 0xA5C);
      if (arc)
        sim::killContiguousArc(stack.network(), 0.10, killRng);
      else
        sim::killRandomFraction(stack.network(), 0.10, killRng);
      const cast::RandCastSelector selector;
      const auto point = analysis::measureEffectiveness(
          stack.snapshotRandom(), selector, fanout, scale.runs,
          config.seed + 7);
      row.push_back(fmtLog(point.avgMissPercent));
    }
    table.addRow(std::move(row));
  }
  std::fputs((scale.csv ? table.renderCsv() : table.render()).c_str(),
             stdout);
}

void churnModels(const bench::Scale& scale, double meanLifetime) {
  // Fixed cycle budget (3x the mean lifetime) instead of full turnover:
  // Pareto's longest initial sessions would otherwise dominate runtime
  // without changing the comparison.
  const auto budget = static_cast<std::uint64_t>(3 * meanLifetime);
  constexpr std::uint32_t kNetworks = 2;  // average out network-level noise
  std::printf("\n--- geometric vs heavy-tailed churn at mean lifetime %.0f "
              "cycles (%llu churn cycles, %u networks/model): RingCast "
              "miss%% ---\n",
              meanLifetime, static_cast<unsigned long long>(budget),
              kNetworks);
  Table table({"churn_model", "F=2", "F=3", "F=6", "young_miss_share%"});
  for (const bool pareto : {false, true}) {
    const std::uint32_t runs = std::max(50u, scale.runs);
    std::array<double, 3> missSum{};
    std::uint64_t young = 0;
    std::uint64_t total = 0;
    for (std::uint32_t net = 0; net < kNetworks; ++net) {
      analysis::StackConfig config;
      config.nodes = scale.nodes;
      config.seed = scale.seed + (pareto ? 1 : 2) + net * 1000;
      analysis::ProtocolStack stack(config);
      stack.warmup();

      std::unique_ptr<sim::Control> churn;
      if (pareto) {
        auto control = std::make_unique<sim::SessionChurnControl>(
            stack.network(), sim::paretoForMeanLifetime(meanLifetime, 1.5),
            config.seed + 3);
        control->addJoinHandler(stack.cyclon());
        control->addJoinHandler(stack.rings());
        churn = std::move(control);
      } else {
        auto control = std::make_unique<sim::ChurnControl>(
            stack.network(), 1.0 / meanLifetime, config.seed + 3);
        control->addJoinHandler(stack.cyclon());
        control->addJoinHandler(stack.rings());
        churn = std::move(control);
      }
      stack.engine().addControl(*churn);
      stack.engine().run(budget);

      const auto now = stack.engine().cycle();
      const cast::RingCastSelector selector;
      const std::array<std::uint32_t, 3> fanouts{2u, 3u, 6u};
      for (std::size_t i = 0; i < fanouts.size(); ++i) {
        const auto study = analysis::measureMissLifetimes(
            stack.snapshotRing(), selector, stack.network(), now,
            fanouts[i], runs, config.seed + fanouts[i]);
        missSum[i] += study.effectiveness.avgMissPercent;
        for (const auto& [lifetime, count] :
             study.missedLifetimes.sorted()) {
          total += count;
          young += lifetime <= 20 ? count : 0;
        }
      }
    }
    std::vector<std::string> row{pareto ? "pareto(a=1.5)" : "geometric"};
    for (const double sum : missSum) row.push_back(fmtLog(sum / kNetworks));
    row.push_back(total == 0 ? "-" : fmt(100.0 * young / total, 1));
    table.addRow(std::move(row));
  }
  std::fputs((scale.csv ? table.renderCsv() : table.render()).c_str(),
             stdout);
  std::printf(
      "\nheavy-tailed sessions leave the ring with more stale links at the "
      "same average turnover: deaths concentrate on recently-integrated "
      "nodes, and misses spread beyond fresh joiners (lower young share).\n");
}

int run(const bench::Scale& scale, double meanLifetime) {
  bench::printHeader(
      "Failure placement and realistic churn (beyond-paper stress)",
      "a localized arc outage leaves the ring path-connected (RingCast "
      "completes even at F=2); scattered failures are the hard case; "
      "heavy-tailed churn degrades the ring more than geometric churn at "
      "equal mean lifetime",
      scale);
  arcVsRandom(scale);
  churnModels(scale, meanLifetime);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto parser = bench::makeParser(
      "Adversarial contiguous-arc failures and Pareto session churn "
      "compared against the paper's random/geometric models.");
  parser.option("mean-lifetime",
                "mean session length in cycles for the churn comparison "
                "(default 500 = the paper's 0.2%/cycle intensity)");
  const auto args = parser.parse(argc, argv);
  if (!args) return 0;
  const auto scale = bench::resolveScale(*args, /*quickNodes=*/1'000,
                                         /*quickRuns=*/25);
  return run(scale, args->getDouble("mean-lifetime", 500.0));
}
