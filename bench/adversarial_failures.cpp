// Stress tests beyond the paper's random-failure model:
//
// 1. Failure *placement*: one contiguous ring arc vs the same number of
//    scattered random failures. The counter-intuitive result (which the
//    §5.1 partition discussion predicts once you see it): a localized
//    outage leaves the survivors' d-links path-connected — the ring minus
//    one arc is a chain, and RINGCAST completes over it even at F = 2.
//    Scattered failures are the *hard* case: they cut the ring into many
//    partitions whose bridging falls entirely to the r-links. RANDCAST is
//    indifferent to placement (it has no structure to destroy).
//
// 2. Heavy-tailed (Pareto) session churn vs the paper's geometric model
//    at matched mean lifetime. Real traces (Saroiu et al.) are heavy-
//    tailed: most sessions are short, so deaths concentrate on nodes
//    whose ring integration just finished, and the ring carries more
//    stale links at the same average turnover.
#include <array>
#include <cstdio>

#include "analysis/experiment.hpp"
#include "analysis/scenario.hpp"
#include "bench_common.hpp"
#include "common/table.hpp"
#include "sim/session_churn.hpp"

namespace {

using namespace vs07;
using cast::Strategy;

void arcVsRandom(const bench::Scale& scale, analysis::ParallelSweep& sweep,
                 bench::JsonReport& report) {
  std::printf("--- random kill vs contiguous ring-arc kill (10%% dead), "
              "miss%% ---\n");
  Table table({"protocol", "fanout", "random_kill", "arc_kill"});
  for (const bool multiRing : {false, true}) {
    for (const std::uint32_t fanout : {2u, 3u, 5u}) {
      std::vector<std::string> row{
          multiRing ? "MultiRing(2)" : "RingCast", std::to_string(fanout)};
      for (const bool arc : {false, true}) {
        const auto seed = scale.seed + fanout + (multiRing ? 100 : 0);
        auto scenario = analysis::Scenario::builder()
                            .nodes(scale.nodes)
                            .rings(multiRing ? 2 : 1)
                            .seed(seed)
                            .timing(scale.timing)
                            .build();
        if (arc)
          scenario.killContiguousArc(0.10);
        else
          scenario.killRandomFraction(0.10);
        const auto strategy =
            multiRing ? Strategy::kMultiRing : Strategy::kRingCast;
        const auto point = sweep.measureEffectiveness(
            scenario, strategy, fanout, scale.runs, seed + 7);
        row.push_back(fmtLog(point.avgMissPercent));
      }
      table.addRow(std::move(row));
    }
  }
  // RandCast baseline: indifferent to *where* the dead sit on the ring.
  for (const std::uint32_t fanout : {3u}) {
    std::vector<std::string> row{"RandCast", std::to_string(fanout)};
    for (const bool arc : {false, true}) {
      auto scenario = analysis::Scenario::paperStatic(
          scale.nodes, scale.seed + 55, scale.timing);
      if (arc)
        scenario.killContiguousArc(0.10);
      else
        scenario.killRandomFraction(0.10);
      const auto point = sweep.measureEffectiveness(
          scenario, Strategy::kRandCast, fanout, scale.runs,
          scale.seed + 55 + 7);
      row.push_back(fmtLog(point.avgMissPercent));
    }
    table.addRow(std::move(row));
  }
  std::fputs((scale.csv ? table.renderCsv() : table.render()).c_str(),
             stdout);
  report.addSeries(bench::tableSeries("arc_vs_random_kill", table));
}

void churnModels(const bench::Scale& scale, double meanLifetime,
                 analysis::ParallelSweep& sweep, bench::JsonReport& report) {
  // Fixed cycle budget (3x the mean lifetime) instead of full turnover:
  // Pareto's longest initial sessions would otherwise dominate runtime
  // without changing the comparison.
  const auto budget = static_cast<std::uint64_t>(3 * meanLifetime);
  constexpr std::uint32_t kNetworks = 2;  // average out network-level noise
  std::printf("\n--- geometric vs heavy-tailed churn at mean lifetime %.0f "
              "cycles (%llu churn cycles, %u networks/model): RingCast "
              "miss%% ---\n",
              meanLifetime, static_cast<unsigned long long>(budget),
              kNetworks);
  Table table({"churn_model", "F=2", "F=3", "F=6", "young_miss_share%"});
  for (const bool pareto : {false, true}) {
    const std::uint32_t runs = std::max(50u, scale.runs);
    std::array<double, 3> missSum{};
    std::uint64_t young = 0;
    std::uint64_t total = 0;
    for (std::uint32_t net = 0; net < kNetworks; ++net) {
      auto builder = analysis::Scenario::builder()
                         .nodes(scale.nodes)
                         .seed(scale.seed + (pareto ? 1 : 2) + net * 1000)
                         .timing(scale.timing);
      if (pareto)
        builder.sessionChurn(sim::paretoForMeanLifetime(meanLifetime, 1.5));
      else
        builder.churn(1.0 / meanLifetime);
      auto scenario = builder.build();
      scenario.runCycles(budget);

      const std::array<std::uint32_t, 3> fanouts{2u, 3u, 6u};
      for (std::size_t i = 0; i < fanouts.size(); ++i) {
        const auto study = sweep.measureMissLifetimes(
            scenario, Strategy::kRingCast, fanouts[i], runs,
            scenario.config().seed + fanouts[i]);
        missSum[i] += study.effectiveness.avgMissPercent;
        for (const auto& [lifetime, count] :
             study.missedLifetimes.sorted()) {
          total += count;
          young += lifetime <= 20 ? count : 0;
        }
      }
    }
    std::vector<std::string> row{pareto ? "pareto(a=1.5)" : "geometric"};
    for (const double sum : missSum) row.push_back(fmtLog(sum / kNetworks));
    row.push_back(total == 0 ? "-" : fmt(100.0 * young / total, 1));
    table.addRow(std::move(row));
  }
  std::fputs((scale.csv ? table.renderCsv() : table.render()).c_str(),
             stdout);
  report.addSeries(bench::tableSeries("churn_models", table));
  std::printf(
      "\nheavy-tailed sessions leave the ring with more stale links at the "
      "same average turnover: deaths concentrate on recently-integrated "
      "nodes, and misses spread beyond fresh joiners (lower young share).\n");
}

int run(const bench::Scale& scale, double meanLifetime) {
  bench::printHeader(
      "Failure placement and realistic churn (beyond-paper stress)",
      "a localized arc outage leaves the ring path-connected (RingCast "
      "completes even at F=2); scattered failures are the hard case; "
      "heavy-tailed churn degrades the ring more than geometric churn at "
      "equal mean lifetime",
      scale);
  bench::JsonReport report("adversarial_failures", scale);
  report.setParam("mean_lifetime", meanLifetime);
  auto sweep = bench::makeSweep(scale);
  arcVsRandom(scale, sweep, report);
  churnModels(scale, meanLifetime, sweep, report);
  report.write(scale);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto parser = bench::makeParser(
      "Adversarial contiguous-arc failures and Pareto session churn "
      "compared against the paper's random/geometric models.");
  parser.option("mean-lifetime",
                "mean session length in cycles for the churn comparison "
                "(default 500 = the paper's 0.2%/cycle intensity)");
  const auto args = parser.parseOrExit(argc, argv);
  if (!args) return 0;
  const auto scale = bench::resolveScale(*args, /*quickNodes=*/1'000,
                                         /*quickRuns=*/25);
  return run(scale, bench::argOrExit([&] {
               return args->getDouble("mean-lifetime", 500.0);
             }));
}
