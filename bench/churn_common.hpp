// Shared churn-phase harness for the Fig. 11/12/13 benches: star
// bootstrap, 100 warm-up cycles, then continuous artificial churn until
// the entire initial population has been replaced (§7.3), with a safety
// cap. Returns the frozen stack ready for snapshotting.
#pragma once

#include <cstdio>
#include <memory>

#include "analysis/stack.hpp"
#include "bench_common.hpp"

namespace vs07::bench {

struct ChurnedStack {
  std::unique_ptr<analysis::ProtocolStack> stack;
  std::uint64_t churnCycles = 0;
  std::uint64_t freezeCycle = 0;
};

/// Runs the paper's churn warm-up procedure. `rate` is the per-cycle
/// replacement fraction (paper: 0.002).
inline ChurnedStack buildChurnedStack(const Scale& scale, double rate,
                                      std::uint64_t extraSeed,
                                      std::uint64_t maxChurnCycles = 50'000) {
  analysis::StackConfig config;
  config.nodes = scale.nodes;
  config.seed = scale.seed + extraSeed;

  ChurnedStack result;
  Stopwatch timer;
  result.stack = std::make_unique<analysis::ProtocolStack>(config);
  result.stack->warmup();
  result.churnCycles =
      result.stack->runChurnUntilFullTurnover(rate, maxChurnCycles);
  result.freezeCycle = result.stack->engine().cycle();
  std::printf(
      "churn warm-up: %llu churn cycles at %.2f%%/cycle (initial population "
      "fully replaced: %s) in %.2fs\n",
      static_cast<unsigned long long>(result.churnCycles), rate * 100.0,
      result.stack->network().initialSurvivors() == 0 ? "yes" : "NO (cap hit)",
      timer.seconds());
  return result;
}

}  // namespace vs07::bench
