// Quantifies the paper's §8 future work — pull-based recovery on top of
// push dissemination:
//
//   "We expect it to significantly improve the efficiency of the protocol
//    in terms of reliability. However, additional issues have to be taken
//    into account, such as the pull frequency, the duration for which
//    nodes maintain old messages, the size of buffers on nodes ..."
//
// Setup: RINGCAST push at a low fanout over a network that just lost a
// fraction of its nodes (no overlay healing before the push, as in §7.2);
// then anti-entropy pulls run for a few cycles. Reported: miss ratio
// after the push wave and after each pull round, plus the pull traffic
// paid — the reliability/overhead trade of the §8 knobs.
#include <cstdio>

#include "bench_common.hpp"
#include "cast/live.hpp"
#include "common/table.hpp"
#include "gossip/cyclon.hpp"
#include "gossip/vicinity.hpp"
#include "net/transport.hpp"
#include "sim/bootstrap.hpp"
#include "sim/engine.hpp"
#include "sim/failures.hpp"
#include "sim/network.hpp"
#include "sim/router.hpp"

namespace {

using namespace vs07;

struct LiveStack {
  LiveStack(std::uint32_t n, cast::LiveCast::Params params,
            std::uint64_t seed)
      : network(n, seed),
        router(network),
        transport([this](NodeId to, const net::Message& m) {
          router.deliver(to, m);
        }),
        cyclon(network, transport, router, {20, 8}, seed + 1),
        vicinity(network, transport, router, cyclon, {}, seed + 2),
        live(network, transport, router, cyclon, &vicinity, params,
             seed + 3),
        engine(network, seed + 4) {
    engine.addProtocol(cyclon);
    engine.addProtocol(vicinity);
    engine.addProtocol(live);
    sim::bootstrapStar(network, cyclon);
    engine.run(100);
  }

  sim::Network network;
  sim::MessageRouter router;
  net::ImmediateTransport transport;
  gossip::Cyclon cyclon;
  gossip::Vicinity vicinity;
  cast::LiveCast live;
  sim::Engine engine;
};

int run(const bench::Scale& scale) {
  bench::printHeader(
      "Push+pull ablation (paper §8 future work)",
      "pull converts push misses into short delays; reliability rises "
      "with pull rounds at the cost of digest traffic; tiny buffers cap "
      "how far back pull can repair",
      scale);

  // Part 1: miss ratio vs pull rounds, for increasing failure volumes.
  std::printf("--- miss%% after the push wave and after k pull rounds "
              "(RingCast push, fanout 2, pull every cycle) ---\n");
  Table progress({"kill%", "push_only", "1_round", "2_rounds", "4_rounds",
                  "8_rounds", "pulls/node/round"});
  for (const double kill : {0.05, 0.10, 0.20}) {
    cast::LiveCast::Params params;
    params.fanout = 2;
    params.pullInterval = 1;
    LiveStack stack(scale.nodes, params,
                    scale.seed + static_cast<std::uint64_t>(kill * 100));
    Rng killRng(scale.seed ^ 0xFA11ED);
    sim::killRandomFraction(stack.network, kill, killRng);

    const auto id = stack.live.publish(stack.network.aliveIds().front());
    std::vector<std::string> row{fmt(kill * 100, 0),
                                 fmtLog(stack.live.missRatioPercentNow(id))};
    const auto pullsBefore = stack.live.pullRequestsSent();
    std::uint64_t cyclesRun = 0;
    for (const std::uint64_t upTo : {1u, 2u, 4u, 8u}) {
      stack.engine.run(upTo - cyclesRun);
      cyclesRun = upTo;
      row.push_back(fmtLog(stack.live.missRatioPercentNow(id)));
    }
    const double pullsPerNodeRound =
        static_cast<double>(stack.live.pullRequestsSent() - pullsBefore) /
        (static_cast<double>(stack.network.aliveCount()) * cyclesRun);
    row.push_back(fmt(pullsPerNodeRound, 2));
    progress.addRow(std::move(row));
  }
  std::fputs((scale.csv ? progress.renderCsv() : progress.render()).c_str(),
             stdout);

  // Part 2: the §8 knobs — pull frequency and buffer capacity.
  std::printf("\n--- pull frequency: miss%% after 8 cycles, 10%% dead, "
              "fanout 2 ---\n");
  Table frequency({"pull_every_k_cycles", "miss%_after_8_cycles",
                   "pull_requests_total"});
  for (const std::uint32_t interval : {0u, 1u, 2u, 4u, 8u}) {
    cast::LiveCast::Params params;
    params.fanout = 2;
    params.pullInterval = interval;
    LiveStack stack(scale.nodes, params, scale.seed + 77 + interval);
    Rng killRng(scale.seed ^ 0xFA11EDu);
    sim::killRandomFraction(stack.network, 0.10, killRng);
    const auto id = stack.live.publish(stack.network.aliveIds().front());
    stack.engine.run(8);
    frequency.addRow({interval == 0 ? "never (push only)"
                                    : std::to_string(interval),
                      fmtLog(stack.live.missRatioPercentNow(id)),
                      std::to_string(stack.live.pullRequestsSent())});
  }
  std::fputs((scale.csv ? frequency.renderCsv() : frequency.render()).c_str(),
             stdout);

  // Part 3: buffer capacity — how many subsequent publishes an old
  // message survives before latecomers can no longer fetch it.
  std::printf("\n--- buffer capacity: can a fresh joiner still pull message "
              "#1 after k more publishes? ---\n");
  Table buffers({"capacity", "publishes_after", "joiner_got_msg1"});
  for (const std::uint32_t capacity : {2u, 4u, 8u}) {
    for (const std::uint32_t extra : {1u, 3u, 7u}) {
      cast::LiveCast::Params params;
      params.fanout = 3;
      params.pullInterval = 1;
      params.bufferCapacity = capacity;
      params.pullBudget = 16;
      LiveStack stack(scale.nodes / 2, params,
                      scale.seed + 200 + capacity * 10 + extra);
      const auto first = stack.live.publish(0);
      for (std::uint32_t i = 0; i < extra; ++i) stack.live.publish(0);
      const NodeId joiner = stack.network.spawn(stack.engine.cycle());
      Rng rng(scale.seed + 5);
      NodeId introducer = joiner;
      while (introducer == joiner)
        introducer = stack.network.randomAlive(rng);
      stack.cyclon.onJoin(joiner, introducer);
      stack.vicinity.onJoin(joiner, introducer);
      stack.engine.run(10);
      buffers.addRow({std::to_string(capacity), std::to_string(extra),
                      stack.live.hasDelivered(first, joiner) ? "yes" : "no"});
    }
  }
  std::fputs((scale.csv ? buffers.renderCsv() : buffers.render()).c_str(),
             stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto parser = bench::makeParser(
      "Pull-based recovery ablation (paper §8 future work): reliability "
      "vs pull rounds, pull frequency, and buffer capacity.");
  const auto args = parser.parse(argc, argv);
  if (!args) return 0;
  return run(bench::resolveScale(*args, /*quickNodes=*/1'500,
                                 /*quickRuns=*/1));
}
