// Quantifies the paper's §8 future work — pull-based recovery on top of
// push dissemination:
//
//   "We expect it to significantly improve the efficiency of the protocol
//    in terms of reliability. However, additional issues have to be taken
//    into account, such as the pull frequency, the duration for which
//    nodes maintain old messages, the size of buffers on nodes ..."
//
// Setup: RINGCAST push at a low fanout over a network that just lost a
// fraction of its nodes (no overlay healing before the push, as in §7.2);
// then anti-entropy pulls run for a few cycles. Reported: miss ratio
// after the push wave and after each pull round, plus the pull traffic
// paid — the reliability/overhead trade of the §8 knobs.
#include <cstdio>

#include "analysis/scenario.hpp"
#include "bench_common.hpp"
#include "common/table.hpp"

namespace {

using namespace vs07;
using cast::Strategy;

/// A warmed-up scenario plus its push+pull live session.
struct Feed {
  analysis::Scenario scenario;
  cast::LiveSession& session;

  Feed(std::uint32_t nodes, cast::CastOptions options, std::uint64_t seed,
       sim::TimingConfig timing = {})
      : scenario(analysis::Scenario::builder()
                     .nodes(nodes)
                     .seed(seed)
                     .timing(timing)
                     .build()),
        session(scenario.liveSession(options)) {}
};

int run(const bench::Scale& scale) {
  bench::printHeader(
      "Push+pull ablation (paper §8 future work)",
      "pull converts push misses into short delays; reliability rises "
      "with pull rounds at the cost of digest traffic; tiny buffers cap "
      "how far back pull can repair",
      scale);

  bench::JsonReport report("pullcast_ablation", scale);

  // Part 1: miss ratio vs pull rounds, for increasing failure volumes.
  std::printf("--- miss%% after the push wave and after k pull rounds "
              "(RingCast push, fanout 2, pull every cycle) ---\n");
  Table progress({"kill%", "push_only", "1_round", "2_rounds", "4_rounds",
                  "8_rounds", "pulls/node/round"});
  for (const double kill : {0.05, 0.10, 0.20}) {
    Feed feed(scale.nodes,
              {.strategy = Strategy::kPushPull, .fanout = 2,
               .pullInterval = 1},
              scale.seed + static_cast<std::uint64_t>(kill * 100),
              scale.timing);
    feed.scenario.killRandomFraction(kill);

    const auto report =
        feed.session.publish(feed.scenario.network().aliveIds().front());
    const auto id = feed.session.lastDataId();
    std::vector<std::string> row{fmt(kill * 100, 0),
                                 fmtLog(report.missRatioPercent())};
    const auto pullsBefore = feed.session.live().pullRequestsSent();
    std::uint64_t cyclesRun = 0;
    for (const std::uint64_t upTo : {1u, 2u, 4u, 8u}) {
      feed.scenario.runCycles(upTo - cyclesRun);
      cyclesRun = upTo;
      row.push_back(fmtLog(feed.session.report(id).missRatioPercent()));
    }
    const double pullsPerNodeRound =
        static_cast<double>(feed.session.live().pullRequestsSent() -
                            pullsBefore) /
        (static_cast<double>(feed.scenario.network().aliveCount()) *
         cyclesRun);
    row.push_back(fmt(pullsPerNodeRound, 2));
    progress.addRow(std::move(row));
  }
  std::fputs((scale.csv ? progress.renderCsv() : progress.render()).c_str(),
             stdout);
  report.addSeries(bench::tableSeries("pull_rounds", progress));

  // Part 2: the §8 knobs — pull frequency and buffer capacity.
  std::printf("\n--- pull frequency: miss%% after 8 cycles, 10%% dead, "
              "fanout 2 ---\n");
  Table frequency({"pull_every_k_cycles", "miss%_after_8_cycles",
                   "pull_requests_total"});
  for (const std::uint32_t interval : {0u, 1u, 2u, 4u, 8u}) {
    // interval 0 = pure push; expressed as plain RINGCAST live push.
    cast::CastOptions options{.fanout = 2};
    options.strategy =
        interval == 0 ? Strategy::kRingCast : Strategy::kPushPull;
    if (interval > 0) options.pullInterval = interval;
    Feed feed(scale.nodes, options, scale.seed + 77 + interval,
              scale.timing);
    feed.scenario.killRandomFraction(0.10);
    feed.session.publish(feed.scenario.network().aliveIds().front());
    const auto id = feed.session.lastDataId();
    feed.scenario.runCycles(8);
    frequency.addRow({interval == 0 ? "never (push only)"
                                    : std::to_string(interval),
                      fmtLog(feed.session.report(id).missRatioPercent()),
                      std::to_string(feed.session.live().pullRequestsSent())});
  }
  std::fputs((scale.csv ? frequency.renderCsv() : frequency.render()).c_str(),
             stdout);
  report.addSeries(bench::tableSeries("pull_frequency", frequency));

  // Part 3: buffer capacity — how many subsequent publishes an old
  // message survives before latecomers can no longer fetch it.
  //
  // Always synchronous delivery here (only the timer mode is kept from
  // --timing): with buffers this tiny and several ids in flight, the §8
  // evict/re-forward rule is *supercritical* under asynchronous delivery
  // — each delivery of an evicted id spawns a fresh fanout-wide wave
  // faster than waves die out, so in-flight traffic grows without bound.
  // Synchronous cascades terminate, which is what this ablation needs.
  auto bufferTiming = scale.timing;
  bufferTiming.latency = sim::LatencyModel::none();
  std::printf("\n--- buffer capacity: can a fresh joiner still pull message "
              "#1 after k more publishes? ---\n");
  Table buffers({"capacity", "publishes_after", "joiner_got_msg1"});
  for (const std::uint32_t capacity : {2u, 4u, 8u}) {
    for (const std::uint32_t extra : {1u, 3u, 7u}) {
      Feed feed(scale.nodes / 2,
                {.strategy = Strategy::kPushPull, .fanout = 3,
                 .pullInterval = 1, .bufferCapacity = capacity,
                 .pullBudget = 16},
                scale.seed + 200 + capacity * 10 + extra, bufferTiming);
      feed.session.publish(0);
      const auto first = feed.session.lastDataId();
      for (std::uint32_t i = 0; i < extra; ++i) feed.session.publish(0);
      auto& network = feed.scenario.network();
      const NodeId joiner = network.spawn(feed.scenario.engine().cycle());
      Rng rng(scale.seed + 5);
      NodeId introducer = joiner;
      while (introducer == joiner) introducer = network.randomAlive(rng);
      feed.scenario.cyclon().onJoin(joiner, introducer);
      feed.scenario.rings().onJoin(joiner, introducer);
      feed.scenario.runCycles(10);
      buffers.addRow({std::to_string(capacity), std::to_string(extra),
                      feed.session.live().hasDelivered(first, joiner)
                          ? "yes"
                          : "no"});
    }
  }
  std::fputs((scale.csv ? buffers.renderCsv() : buffers.render()).c_str(),
             stdout);
  report.addSeries(bench::tableSeries("buffer_capacity", buffers));
  report.write(scale);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto parser = bench::makeParser(
      "Pull-based recovery ablation (paper §8 future work): reliability "
      "vs pull rounds, pull frequency, and buffer capacity.");
  const auto args = parser.parseOrExit(argc, argv);
  if (!args) return 0;
  return run(bench::resolveScale(*args, /*quickNodes=*/1'500,
                                 /*quickRuns=*/1));
}
