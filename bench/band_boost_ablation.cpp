// Two further §7.3/§8 ablations:
//
// 1. Harary-band d-links ("design gossiping protocols that form Harary
//    graphs of higher connectivity", §8): d-links = the `w` nearest ring
//    successors + predecessors, giving H(2w, n) at convergence. The
//    matrix over (band width x fanout) exposes the §5 design insight:
//    wider bands help only while the fanout leaves room for r-links —
//    once d-links swallow the whole fanout, dissemination degenerates to
//    pure determinism and a run of w dead nodes partitions it.
//
// 2. Joiner gossip boost ("new nodes can gossip at an arbitrarily higher
//    rate for the first few cycles", §7.3): young-node miss ratio under
//    churn with and without the boost.
#include <cstdio>

#include "analysis/experiment.hpp"
#include "analysis/scenario.hpp"
#include "bench_common.hpp"
#include "common/table.hpp"

namespace {

using namespace vs07;
using cast::Strategy;

void bandMatrix(const bench::Scale& scale, analysis::ParallelSweep& sweep,
                bench::JsonReport& report) {
  std::printf("--- Harary band: miss%% after a 20%% catastrophic failure "
              "(rows: band width; columns: fanout) ---\n");
  Table table({"band_width", "dlinks", "F=2", "F=4", "F=8", "F=12"});
  for (const std::uint32_t width : {1u, 2u, 3u}) {
    auto scenario = analysis::Scenario::paperCatastrophic(
        0.20, scale.nodes, scale.seed + width, scale.timing);
    const auto snapshot = scenario.snapshotBand(width);
    std::vector<std::string> row{std::to_string(width),
                                 std::to_string(2 * width)};
    for (const std::uint32_t fanout : {2u, 4u, 8u, 12u}) {
      // The hybrid rule over the band snapshot (RingCast semantics).
      const auto point = sweep.measureEffectiveness(
          snapshot, Strategy::kRingCast, fanout, scale.runs,
          scale.seed + width + fanout);
      row.push_back(fmtLog(point.avgMissPercent));
    }
    table.addRow(std::move(row));
  }
  std::fputs((scale.csv ? table.renderCsv() : table.render()).c_str(),
             stdout);
  report.addSeries(bench::tableSeries("harary_band_matrix", table));
  std::printf(
      "\nreading guide: below the diagonal (fanout <= 2*width) every "
      "forward is deterministic and wider bands *hurt*; above it they "
      "add coverage on top of the random bridges and help.\n");
}

void boostAblation(const bench::Scale& scale, double churnRate,
                   analysis::ParallelSweep& sweep,
                   bench::JsonReport& report) {
  std::printf("\n--- joiner gossip boost (%s): young-node misses under "
              "churn, RingCast F=3 ---\n",
              "\"gossip at a higher rate for the first few cycles\"");
  Table table({"boost", "miss%_overall", "misses_lifetime<=20",
               "misses_lifetime>20"});
  for (const std::uint32_t factor : {1u, 4u}) {
    bench::Scale churnScale = scale;
    churnScale.seed = scale.seed + factor;
    auto scenario = bench::buildChurned(churnScale, churnRate,
                                        /*extraSeed=*/factor);
    if (factor > 1)
      scenario.engine().setStepBoost(
          sim::joinerBoost(scenario.network(), factor, 20));
    // Let the boost act on the current joiner cohort, with churn still
    // running, then freeze and measure.
    scenario.runCycles(50);
    const auto study = sweep.measureMissLifetimes(
        scenario, Strategy::kRingCast, 3, std::max(50u, scale.runs),
        churnScale.seed + 9);
    std::uint64_t young = 0;
    std::uint64_t old = 0;
    for (const auto& [lifetime, count] : study.missedLifetimes.sorted())
      (lifetime <= 20 ? young : old) += count;
    table.addRow({factor == 1 ? "off" : std::to_string(factor) + "x",
                  fmtLog(study.effectiveness.avgMissPercent),
                  std::to_string(young), std::to_string(old)});
  }
  std::fputs((scale.csv ? table.renderCsv() : table.render()).c_str(),
             stdout);
  report.addSeries(bench::tableSeries("joiner_boost", table));
}

int run(const bench::Scale& scale, double churnRate) {
  bench::printHeader(
      "Harary-band + joiner-boost ablations (paper §7.3/§8 extensions)",
      "wider deterministic bands help only while fanout leaves room for "
      "r-links; boosting fresh joiners' gossip rate removes most "
      "young-node misses",
      scale);
  bench::JsonReport report("band_boost_ablation", scale);
  report.setParam("churn_rate", churnRate);
  auto sweep = bench::makeSweep(scale);
  bandMatrix(scale, sweep, report);
  boostAblation(scale, churnRate, sweep, report);
  report.write(scale);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto parser = bench::makeParser(
      "Ablations of the Harary-band d-link extension (§8) and the joiner "
      "gossip boost (§7.3).");
  parser.option("churn", "churn rate per cycle (default 0.005)");
  const auto args = parser.parseOrExit(argc, argv);
  if (!args) return 0;
  const auto scale = bench::resolveScale(*args, /*quickNodes=*/1'000,
                                         /*quickRuns=*/25);
  return run(scale, bench::argOrExit(
                        [&] { return args->getDouble("churn", 0.005); }));
}
