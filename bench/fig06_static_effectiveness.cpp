// Regenerates Fig. 6 — dissemination effectiveness vs fanout in a static
// failure-free network: (a) miss ratio (log scale in the paper), and
// (b) percentage of runs achieving complete dissemination.
//
// Expected shape (paper, 10k nodes, 100 runs/fanout):
//   * RANDCAST miss ratio decays ~exponentially with F (≈10% at F=2,
//     <0.1% by F=6); RINGCAST is exactly 0 for every F.
//   * RANDCAST complete disseminations transit steeply from 0% (F<=5)
//     to 100% (F>=11); RINGCAST sits at 100% everywhere.
#include <cstdio>

#include "analysis/experiment.hpp"
#include "bench_common.hpp"
#include "common/table.hpp"

namespace {

using namespace vs07;
using cast::Strategy;

int run(const bench::Scale& scale) {
  bench::printHeader(
      "Fig. 6: static failure-free effectiveness vs fanout",
      "RandCast miss ratio falls exponentially in F; RingCast misses "
      "nothing at any F; complete disseminations 0->100% around F=7..11 "
      "for RandCast, always 100% for RingCast",
      scale);

  bench::JsonReport report("fig06_static_effectiveness", scale);
  const auto scenario = bench::buildStatic(scale);
  auto sweep = bench::makeSweep(scale);

  bench::Stopwatch sweepTimer;
  const auto fanouts = bench::fullFanoutAxis();
  const auto rand = sweep.sweepEffectiveness(
      scenario, Strategy::kRandCast, fanouts, scale.runs, scale.seed + 1);
  const auto ring = sweep.sweepEffectiveness(
      scenario, Strategy::kRingCast, fanouts, scale.runs, scale.seed + 2);

  Table table({"fanout", "randcast_miss%", "ringcast_miss%",
               "randcast_complete%", "ringcast_complete%"});
  for (std::size_t i = 0; i < fanouts.size(); ++i)
    table.addRow({std::to_string(fanouts[i]),
                  fmtLog(rand[i].avgMissPercent),
                  fmtLog(ring[i].avgMissPercent),
                  fmt(rand[i].completePercent, 1),
                  fmt(ring[i].completePercent, 1)});
  std::fputs((scale.csv ? table.renderCsv() : table.render()).c_str(),
             stdout);
  std::printf("\nsweep: %zu fanouts x %u runs x 2 protocols in %.2fs\n",
              fanouts.size(), scale.runs, sweepTimer.seconds());

  report.addSeries(bench::effectivenessSeries("randcast", rand));
  report.addSeries(bench::effectivenessSeries("ringcast", ring));
  report.write(scale);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto parser = bench::makeParser(
      "Fig. 6 of Voulgaris & van Steen (Middleware 2007): miss ratio and "
      "complete-dissemination percentage vs fanout, static network.");
  const auto args = parser.parseOrExit(argc, argv);
  if (!args) return 0;
  return run(bench::resolveScale(*args, /*quickNodes=*/2'500,
                                 /*quickRuns=*/25,
                                 bench::DefaultScale::kPaper));
}
