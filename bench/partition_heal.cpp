// Partition-and-heal: per-side coverage of a message published *during*
// a network split, and recovery time after the split heals
// (sim/network_model's PartitionSchedule on the live path).
//
// The ring is split into two seq-contiguous halves right after warm-up;
// while the blackout lasts, all cross-half traffic — gossip and
// dissemination alike — is dropped. A message published on side 0 then
// shows the §5.1 story live:
//
//   * the publisher's side completes (the d-link chain of each half
//     stays connected — a ring split into arcs is still a chain per
//     side, so RINGCAST covers its own side deterministically);
//   * the far side stays dark for the whole split: no strategy crosses
//     a blackout;
//   * after healing, only the pull layer (§8 PUSHPULL) recovers: one
//     anti-entropy pull across the former boundary re-pushes the
//     message through the healed side, reaching 100% within a bounded
//     number of cycles. Push-only strategies never retransmit — their
//     far side stays at 0% forever, which is precisely why the paper
//     calls pull "expected to significantly improve reliability".
//
// One scenario per strategy, each seeded from its cell identity and run
// on the worker pool; series merge in canonical strategy order, so the
// output is bit-identical for any --threads value.
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/scenario.hpp"
#include "bench_common.hpp"
#include "cast/strategy.hpp"
#include "common/table.hpp"

namespace {

using namespace vs07;
using cast::Strategy;

struct HealResult {
  std::vector<double> side0;  ///< per-cycle coverage %, publisher's side
  std::vector<double> side1;  ///< per-cycle coverage %, far side
  bool healed = false;        ///< both sides reached 100%
  /// Cycles from the heal until full coverage (0 when never healed).
  std::uint64_t healCycles = 0;
  std::uint64_t droppedByPartition = 0;
};

HealResult runCell(const bench::Scale& scale, Strategy strategy,
                   std::uint64_t cellSeed, std::uint32_t splitCycles,
                   std::uint32_t healCapCycles) {
  const std::uint32_t warmup = analysis::Scenario::Config{}.warmupCycles;
  auto scenario = analysis::Scenario::builder()
                      .nodes(scale.nodes)
                      .seed(cellSeed)
                      .timing(scale.timing)
                      .partitionRingSplit(2, warmup, warmup + splitCycles)
                      .build();
  const auto& schedule = *scenario.networkModel()->partitions();
  auto& live = scenario.liveSession(
      {.strategy = strategy,
       .fanout = 3,
       .seed = deriveStreamSeed(cellSeed, 0x5e55, 1),
       .settleCycles = 0});

  // One cycle into the blackout, then publish from side 0, so the
  // origin's own sends already resolve inside the split.
  scenario.runCycles(1);
  live.publish(schedule.members(0).front());
  const std::uint64_t dataId = live.lastDataId();

  auto coverage = [&](std::uint32_t group) {
    std::uint64_t total = 0;
    std::uint64_t have = 0;
    for (const NodeId id : scenario.network().aliveIds()) {
      if (schedule.groupOf(id) != group) continue;
      ++total;
      if (live.live().hasDelivered(dataId, id)) ++have;
    }
    return total == 0 ? 0.0 : 100.0 * have / total;
  };

  HealResult result;
  for (std::uint32_t c = 1; c < splitCycles + healCapCycles; ++c) {
    scenario.runCycles(1);
    result.side0.push_back(coverage(0));
    result.side1.push_back(coverage(1));
    if (!result.healed && result.side0.back() == 100.0 &&
        result.side1.back() == 100.0) {
      result.healed = true;
      // Sample c is taken after engine cycle warmup+1+c and the last
      // blackout cycle is warmup+splitCycles, so the earliest sample
      // where side 1 can read 100% is c == splitCycles (cross traffic
      // is vetoed before that): healCycles >= 1 counts cycles since
      // the heal, and the guard only shields the unsigned arithmetic.
      result.healCycles = c >= splitCycles ? c - splitCycles + 1 : 1;
    }
  }
  result.droppedByPartition =
      scenario.networkModel()->droppedByPartition();
  return result;
}

int run(const bench::Scale& scale, std::uint32_t splitCycles,
        std::uint32_t healCapCycles) {
  bench::printHeader(
      "Partition heal: per-side coverage through a ring split "
      "(beyond-paper stress)",
      "each half's d-link chain completes its own side during the "
      "blackout; after healing only pull recovery (§8) backfills the "
      "dark side — push-only strategies never retransmit",
      scale);
  bench::JsonReport report("partition_heal", scale);
  report.setParam("split_cycles", splitCycles);
  report.setParam("heal_cap_cycles", healCapCycles);

  const std::vector<Strategy> strategies{
      Strategy::kRandCast, Strategy::kRingCast, Strategy::kPushPull};
  auto sweep = bench::makeSweep(scale);
  std::vector<HealResult> results(strategies.size());
  sweep.pool().parallelFor(strategies.size(), [&](std::size_t i) {
    results[i] = runCell(scale, strategies[i],
                         deriveStreamSeed(scale.seed, 0x5917, i),
                         splitCycles, healCapCycles);
  });

  Table table({"strategy", "side0 @split-end", "side1 @split-end",
               "side1 final", "healed", "cycles to heal",
               "partition drops"});
  for (std::size_t i = 0; i < strategies.size(); ++i) {
    const HealResult& r = results[i];
    // Sample c (0-based) is taken after engine cycle warmup+2+c; the
    // last blackout cycle is warmup+splitCycles, i.e. sample
    // splitCycles-2.
    const std::size_t splitEnd = splitCycles >= 2 ? splitCycles - 2 : 0;
    table.addRow({std::string(strategyName(strategies[i])),
                  fmt(r.side0[splitEnd], 1), fmt(r.side1[splitEnd], 1),
                  fmt(r.side1.back(), 1), r.healed ? "yes" : "NO",
                  r.healed ? std::to_string(r.healCycles) : "-",
                  std::to_string(r.droppedByPartition)});

    Json cycles = Json::array();
    Json side0 = Json::array();
    Json side1 = Json::array();
    for (std::size_t c = 0; c < r.side0.size(); ++c) {
      cycles.push(c + 1);
      side0.push(r.side0[c]);
      side1.push(r.side1[c]);
    }
    report.addSeries(
        Json::object()
            .set("label", std::string("heal:") +
                              std::string(strategyName(strategies[i])))
            .set("kind", "partition_heal")
            .set("strategy", std::string(strategyName(strategies[i])))
            .set("split_cycles", splitCycles)
            .set("cycle", std::move(cycles))
            .set("side0_pct", std::move(side0))
            .set("side1_pct", std::move(side1))
            .set("healed", r.healed)
            .set("heal_cycles", r.healCycles)
            .set("dropped_by_partition", r.droppedByPartition));
  }
  std::fputs((scale.csv ? table.renderCsv() : table.render()).c_str(),
             stdout);
  std::printf(
      "\nthe split halves stay internally complete (RingCast side0 = 100%% "
      "while RandCast leaves stragglers even on its own side); after the "
      "heal, PushPull's anti-entropy closes the dark side in a bounded "
      "number of cycles.\n");
  report.write(scale);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto parser = bench::makeParser(
      "Per-side coverage through a ring partition that heals "
      "(sim/network_model PartitionSchedule, live path).");
  parser.option("split-cycles",
                "blackout length in cycles after warm-up (default 25)")
      .option("heal-cycles",
              "post-heal observation window in cycles (default 60)");
  const auto args = parser.parseOrExit(argc, argv);
  if (!args) return 0;
  const auto scale = bench::resolveScale(*args, /*quickNodes=*/600,
                                         /*quickRuns=*/1);
  return run(scale,
             static_cast<std::uint32_t>(bench::argOrExit(
                 [&] { return args->getPositiveUint("split-cycles", 25); })),
             static_cast<std::uint32_t>(bench::argOrExit(
                 [&] { return args->getPositiveUint("heal-cycles", 60); })));
}
