// Verifies the paper's load-distribution claim (§2 metric 5, asserted in
// §7: "both protocols distribute the dissemination load uniformly on all
// participating nodes"): per-node messages forwarded and received over
// many disseminations, with a Gini coefficient as the inequality summary
// (0 = perfectly even). Contrast with the star overlay of §3, whose hub
// carries everything.
#include <cstdio>

#include "bench_common.hpp"
#include "cast/session.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "overlay/graph.hpp"

namespace {

using namespace vs07;
using cast::Strategy;

struct LoadTotals {
  std::vector<double> forwards;
  std::vector<double> received;
};

/// Publishes `runs` messages through one session and accumulates the
/// per-node load counters of every report, restricted to alive nodes.
LoadTotals accumulateLoad(cast::SnapshotSession session, std::uint32_t runs) {
  const auto& snapshot = session.overlay();
  LoadTotals totals;
  totals.forwards.assign(snapshot.totalIds(), 0.0);
  totals.received.assign(snapshot.totalIds(), 0.0);
  for (std::uint32_t r = 0; r < runs; ++r) {
    const auto report = session.publishFromRandom();
    for (NodeId id = 0; id < snapshot.totalIds(); ++id) {
      totals.forwards[id] += report.forwardsPerNode[id];
      totals.received[id] += report.receivedPerNode[id];
    }
  }
  LoadTotals alive;
  for (const NodeId id : snapshot.aliveIds()) {
    alive.forwards.push_back(totals.forwards[id]);
    alive.received.push_back(totals.received[id]);
  }
  return alive;
}

void addRows(Table& table, const char* name, const LoadTotals& load) {
  const auto f = summarize(load.forwards);
  const auto r = summarize(load.received);
  table.addRow({name, "forwarded", fmt(f.mean, 1), fmt(f.stddev, 1),
                fmt(f.min, 0), fmt(f.p99, 0), fmt(f.max, 0),
                fmt(giniCoefficient(load.forwards), 3)});
  table.addRow({name, "received", fmt(r.mean, 1), fmt(r.stddev, 1),
                fmt(r.min, 0), fmt(r.p99, 0), fmt(r.max, 0),
                fmt(giniCoefficient(load.received), 3)});
}

int run(const bench::Scale& scale, std::uint32_t fanout) {
  bench::printHeader(
      "Load distribution (paper §2/§7 claim)",
      "RandCast and RingCast spread forwarding load evenly (tiny Gini); a "
      "star overlay concentrates everything on its hub (Gini -> 1)",
      scale);

  bench::JsonReport report("load_distribution", scale);
  report.setParam("fanout", fanout);
  auto scenario = bench::buildStatic(scale);
  auto sessionFor = [&](Strategy strategy, std::uint64_t seed) {
    return scenario.snapshotSession({.strategy = strategy,
                                     .fanout = fanout,
                                     .seed = seed,
                                     .recordLoad = true});
  };

  Table table({"protocol", "metric", "mean", "stddev", "min", "p99", "max",
               "gini"});
  addRows(table, "RandCast",
          accumulateLoad(sessionFor(Strategy::kRandCast, scale.seed + 1),
                         scale.runs));
  addRows(table, "RingCast",
          accumulateLoad(sessionFor(Strategy::kRingCast, scale.seed + 2),
                         scale.runs));
  // Baseline with known skew: flooding on a star overlay.
  cast::SnapshotSession starFlood(
      cast::snapshotGraph(overlay::makeStar(scale.nodes, /*hub=*/0)),
      {.strategy = Strategy::kFlood,
       .fanout = fanout,
       .seed = scale.seed + 3,
       .recordLoad = true});
  addRows(table, "StarFlood", accumulateLoad(std::move(starFlood), scale.runs));

  std::fputs((scale.csv ? table.renderCsv() : table.render()).c_str(),
             stdout);
  std::printf("\nfanout %u, %u disseminations per protocol\n", fanout,
              scale.runs);

  report.addSeries(bench::tableSeries("load_summary", table));
  report.write(scale);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto parser = bench::makeParser(
      "Load distribution across nodes (paper §2 metric 5): per-node "
      "forwarded/received message counts and Gini coefficients.");
  parser.option("fanout", "fanout to run at (default 5)");
  const auto args = parser.parseOrExit(argc, argv);
  if (!args) return 0;
  const auto scale = bench::resolveScale(*args, /*quickNodes=*/2'000,
                                         /*quickRuns=*/50);
  return run(scale, static_cast<std::uint32_t>(bench::argOrExit(
                        [&] { return args->getPositiveUint("fanout", 5); })));
}
