// Verifies the paper's load-distribution claim (§2 metric 5, asserted in
// §7: "both protocols distribute the dissemination load uniformly on all
// participating nodes"): per-node messages forwarded and received over
// many disseminations, with a Gini coefficient as the inequality summary
// (0 = perfectly even). Contrast with the star overlay of §3, whose hub
// carries everything.
#include <cstdio>

#include "analysis/stack.hpp"
#include "bench_common.hpp"
#include "cast/disseminator.hpp"
#include "cast/selector.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "overlay/graph.hpp"

namespace {

using namespace vs07;

struct LoadTotals {
  std::vector<double> forwards;
  std::vector<double> received;
};

LoadTotals accumulateLoad(const cast::OverlaySnapshot& snapshot,
                          const cast::TargetSelector& selector,
                          std::uint32_t fanout, std::uint32_t runs,
                          std::uint64_t seed) {
  LoadTotals totals;
  totals.forwards.assign(snapshot.totalIds(), 0.0);
  totals.received.assign(snapshot.totalIds(), 0.0);
  Rng rng(seed);
  for (std::uint32_t r = 0; r < runs; ++r) {
    const NodeId origin =
        snapshot.aliveIds()[rng.below(snapshot.aliveIds().size())];
    cast::DisseminationParams params;
    params.fanout = fanout;
    params.seed = rng();
    params.recordLoad = true;
    const auto report = cast::disseminate(snapshot, selector, origin, params);
    for (NodeId id = 0; id < snapshot.totalIds(); ++id) {
      totals.forwards[id] += report.forwardsPerNode[id];
      totals.received[id] += report.receivedPerNode[id];
    }
  }
  // Restrict to alive nodes for the statistics.
  LoadTotals alive;
  for (const NodeId id : snapshot.aliveIds()) {
    alive.forwards.push_back(totals.forwards[id]);
    alive.received.push_back(totals.received[id]);
  }
  return alive;
}

void addRows(Table& table, const char* name, const LoadTotals& load) {
  const auto f = summarize(load.forwards);
  const auto r = summarize(load.received);
  table.addRow({name, "forwarded", fmt(f.mean, 1), fmt(f.stddev, 1),
                fmt(f.min, 0), fmt(f.p99, 0), fmt(f.max, 0),
                fmt(giniCoefficient(load.forwards), 3)});
  table.addRow({name, "received", fmt(r.mean, 1), fmt(r.stddev, 1),
                fmt(r.min, 0), fmt(r.p99, 0), fmt(r.max, 0),
                fmt(giniCoefficient(load.received), 3)});
}

int run(const bench::Scale& scale, std::uint32_t fanout) {
  bench::printHeader(
      "Load distribution (paper §2/§7 claim)",
      "RandCast and RingCast spread forwarding load evenly (tiny Gini); a "
      "star overlay concentrates everything on its hub (Gini -> 1)",
      scale);

  analysis::StackConfig config;
  config.nodes = scale.nodes;
  config.seed = scale.seed;
  analysis::ProtocolStack stack(config);
  stack.warmup();

  const cast::RandCastSelector randCast;
  const cast::RingCastSelector ringCast;
  const cast::FloodSelector flood;

  Table table({"protocol", "metric", "mean", "stddev", "min", "p99", "max",
               "gini"});
  addRows(table, "RandCast",
          accumulateLoad(stack.snapshotRandom(), randCast, fanout, scale.runs,
                         scale.seed + 1));
  addRows(table, "RingCast",
          accumulateLoad(stack.snapshotRing(), ringCast, fanout, scale.runs,
                         scale.seed + 2));
  // Baseline with known skew: flooding on a star overlay.
  const auto star =
      cast::snapshotGraph(overlay::makeStar(scale.nodes, /*hub=*/0));
  addRows(table, "StarFlood",
          accumulateLoad(star, flood, fanout, scale.runs, scale.seed + 3));

  std::fputs((scale.csv ? table.renderCsv() : table.render()).c_str(),
             stdout);
  std::printf("\nfanout %u, %u disseminations per protocol\n", fanout,
              scale.runs);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto parser = bench::makeParser(
      "Load distribution across nodes (paper §2 metric 5): per-node "
      "forwarded/received message counts and Gini coefficients.");
  parser.option("fanout", "fanout to run at (default 5)");
  const auto args = parser.parse(argc, argv);
  if (!args) return 0;
  const auto scale = bench::resolveScale(*args, /*quickNodes=*/2'000,
                                         /*quickRuns=*/50);
  return run(scale, static_cast<std::uint32_t>(args->getUint("fanout", 5)));
}
