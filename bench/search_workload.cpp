// Search workloads over the gossip overlays: replicated content placed
// on the warm RINGCAST overlay, then TTL-limited queries under three
// strategies — Ferretti-style TTL-gossip with local-knowledge caches,
// Gnutella-style flooding, and k random walks — swept over
// replication factor x TTL. The headline table is hit rate and message
// cost per query; the literature's ordering (flood >= ttl-gossip >=
// random walk on both axes) is enforced, not just printed.
//
// JSON series kind: "search_sweep" (scripts/check_bench_json.py).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "search/query.hpp"

namespace {

using namespace vs07;
using search::QueryOptions;
using search::SearchReport;
using search::SearchStrategy;

QueryOptions optionsFor(SearchStrategy strategy, std::uint32_t ttl,
                        std::uint32_t replication) {
  QueryOptions options = QueryOptions::ttlGossip(ttl, 2);
  options.strategy = strategy;
  if (strategy != SearchStrategy::kTtlGossip)
    options.cacheCapacity = 0;  // the baselines run cache-free
  options.replication = replication;
  return options;
}

int run(const bench::Scale& scale,
        const std::vector<SearchStrategy>& strategies,
        std::uint32_t engineThreads) {
  bench::printHeader("search_workload",
                     "query routing over the self-organised overlays "
                     "(TTL-gossip vs flood vs k random walks)",
                     scale);

  bench::Stopwatch warmupTimer;
  auto builder = analysis::Scenario::builder()
                     .nodes(scale.nodes)
                     .seed(scale.seed)
                     .timing(scale.timing);
  if (engineThreads > 0) builder.engineThreads(engineThreads);
  const auto scenario = builder.build();
  std::printf("warm-up: %u cycles over %u nodes (%s timing%s) in %.2fs\n\n",
              scenario.config().warmupCycles, scale.nodes,
              scale.timingName.c_str(),
              engineThreads > 0 ? ", sharded engine" : "",
              warmupTimer.seconds());

  const std::vector<std::uint32_t> replicationAxis = {2, 8, 32};
  const std::vector<std::uint32_t> ttlAxis =
      scale.quick ? std::vector<std::uint32_t>{2, 4, 6, 8}
                  : std::vector<std::uint32_t>{2, 4, 6, 8, 10};
  const auto queries = scale.runs;

  bench::JsonReport report("search_workload", scale);
  report.setParam("queries_per_point", Json(queries));

  // hitRates[strategy index][replication index][ttl index], for the
  // ordering check after the sweep.
  std::vector<std::vector<std::vector<double>>> hitRates(
      strategies.size(),
      std::vector<std::vector<double>>(replicationAxis.size()));

  if (scale.csv)
    std::printf("strategy,replication,ttl,hit_rate_percent,"
                "cache_hit_percent,avg_hops,msgs_per_query\n");
  for (std::size_t s = 0; s < strategies.size(); ++s) {
    const auto strategy = strategies[s];
    for (std::size_t r = 0; r < replicationAxis.size(); ++r) {
      const auto replication = replicationAxis[r];
      std::vector<SearchReport> sweep;
      if (!scale.csv)
        std::printf("%s, replication %u (%u queries/point):\n",
                    search::searchStrategyName(strategy), replication,
                    queries);
      for (const auto ttl : ttlAxis) {
        auto session =
            scenario.querySession(optionsFor(strategy, ttl, replication));
        sweep.push_back(session.run(queries));
        const auto& point = sweep.back();
        hitRates[s][r].push_back(point.hitRatePercent());
        if (scale.csv)
          std::printf("%s,%u,%u,%.2f,%.2f,%.2f,%.1f\n",
                      search::searchStrategyName(strategy), replication, ttl,
                      point.hitRatePercent(),
                      100.0 * point.cacheHitFraction(),
                      point.avgHopsToResolve(), point.messagesPerQuery());
        else
          std::printf("  ttl %2u: %6.2f%% hit (%5.2f%% via cache), "
                      "%5.2f hops to hit, %8.1f msgs/query\n",
                      ttl, point.hitRatePercent(),
                      100.0 * point.cacheHitFraction(),
                      point.avgHopsToResolve(), point.messagesPerQuery());
      }
      if (!scale.csv) std::printf("\n");
      report.addSeries(analysis::searchSweepSeries(
          std::string(search::searchStrategyName(strategy)) + "_r" +
              std::to_string(replication),
          sweep.front(), sweep));
    }
  }

  // The ordering the literature predicts, enforced pointwise on every
  // (replication, ttl) cell whenever all three strategies ran: flooding
  // covers a superset of the gossip frontier, which covers more ground
  // than k walkers.
  bool ok = true;
  if (strategies.size() == 3) {
    for (std::size_t r = 0; r < replicationAxis.size(); ++r)
      for (std::size_t t = 0; t < ttlAxis.size(); ++t) {
        const double flood = hitRates[1][r][t];
        const double gossip = hitRates[0][r][t];
        const double walk = hitRates[2][r][t];
        if (flood + 1e-9 < gossip || gossip + 1e-9 < walk) {
          std::fprintf(stderr,
                       "FAIL: hit-rate ordering violated at replication %u "
                       "ttl %u: flood %.2f%%, ttlgossip %.2f%%, "
                       "randomwalk %.2f%%\n",
                       replicationAxis[r], ttlAxis[t], flood, gossip, walk);
          ok = false;
        }
      }
    if (ok)
      std::printf("ordering check: flood >= ttlgossip >= randomwalk holds "
                  "on all %zu cells\n",
                  replicationAxis.size() * ttlAxis.size());
  }

  report.write(scale);
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  auto parser = bench::makeParser(
      "Search workload sweep: hit rate / cost of TTL-gossip (with "
      "local-knowledge caches), flood, and k-random-walk queries over the "
      "frozen RINGCAST overlay, per replication factor and TTL.");
  parser.option("search", "strategy to sweep: all | ttlgossip | flood | "
                          "randomwalk (default all)")
      .option("engine-threads", "build the overlay on the sharded engine "
                                "with this many workers (default 0 = "
                                "sequential engine; results are identical "
                                "for any count)");
  const auto args = parser.parseOrExit(argc, argv);
  if (!args) return 0;
  const auto scale = bench::resolveScale(*args, /*quickNodes=*/600,
                                         /*quickRuns=*/256);

  std::vector<std::string> searchVocabulary = {"all"};
  for (const auto& choice : vs07::search::searchStrategyChoices())
    searchVocabulary.push_back(choice);
  const auto searchChoice = bench::argOrExit(
      [&] { return args->getChoice("search", searchVocabulary, 0); });
  const auto engineThreads =
      static_cast<std::uint32_t>(bench::argOrExit([&] {
        const auto threads = args->getUint("engine-threads", 0);
        if (threads > 4096)
          throw std::invalid_argument("--engine-threads must be <= 4096");
        return threads;
      }));

  std::vector<SearchStrategy> strategies;
  if (searchChoice == 0)
    strategies = {SearchStrategy::kTtlGossip, SearchStrategy::kFlood,
                  SearchStrategy::kRandomWalk};
  else
    strategies = {static_cast<SearchStrategy>(searchChoice - 1)};
  return run(scale, strategies, engineThreads);
}
