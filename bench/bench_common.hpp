// Shared scaffolding for the figure benches: scale selection (quick
// default vs --paper), common CLI options, header printing so every
// bench output is self-describing, and the two Scenario shorthands
// (static and churned) every figure builds on.
#pragma once

#include <chrono>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "analysis/scenario.hpp"
#include "common/cli.hpp"

namespace vs07::bench {

/// Experiment scale resolved from the command line.
struct Scale {
  std::uint32_t nodes = 0;
  std::uint32_t runs = 0;
  std::uint64_t seed = 0;
  bool paper = false;
  bool csv = false;
};

/// Registers the options every figure bench shares.
inline CliParser makeParser(const std::string& description) {
  CliParser parser(description);
  parser.option("nodes", "population size (default: quick scale)")
      .option("runs", "disseminations per data point (default: quick scale)")
      .option("seed", "root random seed (default 42)")
      .option("paper", "run at the paper's full scale (10k nodes, 100 runs)",
              /*takesValue=*/false)
      .option("csv", "emit CSV instead of aligned tables",
              /*takesValue=*/false);
  return parser;
}

/// Resolves the scale: explicit flags beat --paper beats quick defaults.
inline Scale resolveScale(const CliArgs& args, std::uint32_t quickNodes,
                          std::uint32_t quickRuns) {
  Scale scale;
  scale.paper = args.getBool("paper");
  const std::uint32_t defaultNodes = scale.paper ? 10'000 : quickNodes;
  const std::uint32_t defaultRuns = scale.paper ? 100 : quickRuns;
  scale.nodes = static_cast<std::uint32_t>(args.getUint("nodes", defaultNodes));
  scale.runs = static_cast<std::uint32_t>(args.getUint("runs", defaultRuns));
  scale.seed = args.getUint("seed", 42);
  scale.csv = args.getBool("csv");
  return scale;
}

/// Prints the bench banner: what figure this regenerates and at what scale.
inline void printHeader(const std::string& figure, const std::string& paperNote,
                        const Scale& scale) {
  std::printf("=== %s ===\n", figure.c_str());
  std::printf("paper: %s\n", paperNote.c_str());
  std::printf("scale: %u nodes, %u runs/point, seed %llu%s\n\n",
              scale.nodes, scale.runs,
              static_cast<unsigned long long>(scale.seed),
              scale.paper ? " [--paper]" : " [quick; use --paper for 10k/100]");
}

/// Stopwatch for phase timing lines.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// The fanout axis of the paper's effectiveness figures (1..20).
inline std::vector<std::uint32_t> fullFanoutAxis() {
  std::vector<std::uint32_t> fanouts;
  for (std::uint32_t f = 1; f <= 20; ++f) fanouts.push_back(f);
  return fanouts;
}

/// A warmed-up static scenario at the bench scale, with a timing line.
inline analysis::Scenario buildStatic(const Scale& scale,
                                      std::uint64_t extraSeed = 0,
                                      std::uint32_t rings = 1) {
  Stopwatch timer;
  auto scenario = analysis::Scenario::builder()
                      .nodes(scale.nodes)
                      .seed(scale.seed + extraSeed)
                      .rings(rings)
                      .build();
  std::printf("warm-up: %u cycles over %u nodes in %.2fs\n\n",
              scenario.config().warmupCycles, scale.nodes, timer.seconds());
  return scenario;
}

/// The paper's §7.3 churn warm-up: build, warm up, churn at `rate` until
/// the entire initial population has been replaced (capped), with the
/// usual progress line. Use scenario.churnCycles() / engine().cycle()
/// for the churn-phase length and the freeze cycle.
inline analysis::Scenario buildChurned(const Scale& scale, double rate,
                                       std::uint64_t extraSeed,
                                       std::uint64_t maxChurnCycles = 50'000) {
  Stopwatch timer;
  auto scenario = analysis::Scenario::paperChurn(
      rate, scale.nodes, scale.seed + extraSeed, maxChurnCycles);
  std::printf(
      "churn warm-up: %llu churn cycles at %.2f%%/cycle (initial population "
      "fully replaced: %s) in %.2fs\n",
      static_cast<unsigned long long>(scenario.churnCycles()), rate * 100.0,
      scenario.network().initialSurvivors() == 0 ? "yes" : "NO (cap hit)",
      timer.seconds());
  return scenario;
}

}  // namespace vs07::bench
