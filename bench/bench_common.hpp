// Shared scaffolding for the figure benches: scale selection, the common
// CLI surface (--nodes/--runs/--seed/--paper/--quick/--csv/--threads/
// --json), header printing so every bench output is self-describing, the
// two Scenario shorthands (static and churned) every figure builds on,
// and the machine-readable BENCH_*.json record every bench emits when
// --json is given.
//
// Scale defaults: the paper-figure benches (fig06..fig13) default to the
// paper's full scale (10k nodes, 100 runs/point) now that the sweeps run
// in parallel; --quick drops to each bench's reduced smoke scale. The
// ablation/stress benches default to their quick scale; --paper raises
// them. Explicit --nodes/--runs always win.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "analysis/experiment.hpp"
#include "analysis/parallel_sweep.hpp"
#include "analysis/report_json.hpp"
#include "analysis/scenario.hpp"
#include "common/cli.hpp"
#include "common/histogram.hpp"
#include "common/json.hpp"
#include "common/resource.hpp"
#include "common/table.hpp"
#include "common/task_pool.hpp"
#include "sim/timing.hpp"

namespace vs07::bench {

/// The --timing vocabulary every bench shares. Index order matches
/// timingPreset(); "cyclesync" is the default (the paper's model).
inline const std::vector<std::string>& timingChoices() {
  static const std::vector<std::string> kChoices = {"cyclesync", "jittered",
                                                    "latency"};
  return kChoices;
}

/// The TimingConfig behind each --timing choice: the paper's cycle model,
/// independent phase-shifted timers, or jittered timers plus a uniform
/// 1..4-tick delivery latency on all simulated traffic.
inline sim::TimingConfig timingPreset(std::size_t choice) {
  switch (choice) {
    case 1:
      return sim::TimingConfig::jittered();
    case 2:
      return sim::TimingConfig::jitteredLatency(
          sim::LatencyModel::uniform(1, 4));
    default:
      return sim::TimingConfig::cycleSync();
  }
}

/// Experiment scale resolved from the command line.
struct Scale {
  std::uint32_t nodes = 0;
  std::uint32_t runs = 0;
  std::uint64_t seed = 0;
  std::uint32_t threads = 1;
  bool paper = false;
  bool quick = false;
  bool csv = false;
  std::string jsonPath;  ///< empty = no JSON record requested
  /// --timing: engine timing model scenarios are built with.
  sim::TimingConfig timing{};
  std::string timingName = "cyclesync";
};

/// Which scale a bench runs at when neither --paper nor --quick is given.
enum class DefaultScale { kQuick, kPaper };

/// Registers the options every figure bench shares.
inline CliParser makeParser(const std::string& description) {
  CliParser parser(description);
  parser.option("nodes", "population size (default: the bench's scale)")
      .option("runs", "disseminations per data point (default: the bench's "
                      "scale)")
      .option("seed", "root random seed (default 42)")
      .option("paper", "run at the paper's full scale (10k nodes, 100 runs)",
              /*takesValue=*/false)
      .option("quick", "run at the reduced smoke-test scale",
              /*takesValue=*/false)
      .option("csv", "emit CSV instead of aligned tables",
              /*takesValue=*/false)
      .option("threads", "worker threads for the sweeps (default: all "
                         "hardware cores; results are identical for any "
                         "thread count)")
      .option("json", "also write a machine-readable BENCH_*.json record "
                      "to this path")
      .option("timing", "engine timing model: cyclesync | jittered | "
                        "latency (default cyclesync, the paper's model)");
  return parser;
}

/// Resolves the scale: explicit flags beat --paper/--quick beat the
/// bench's default. Malformed values (--threads 0, non-numeric numbers)
/// print the parse error and exit 2, exactly like unknown options.
inline Scale resolveScale(const CliArgs& args, std::uint32_t quickNodes,
                          std::uint32_t quickRuns,
                          DefaultScale defaultScale = DefaultScale::kQuick) {
  try {
    Scale scale;
    scale.paper = args.getBool("paper");
    scale.quick = args.getBool("quick");
    if (scale.paper && scale.quick)
      throw std::invalid_argument(
          "--paper and --quick are mutually exclusive");
    const bool usePaper =
        scale.paper ||
        (defaultScale == DefaultScale::kPaper && !scale.quick);
    const std::uint32_t defaultNodes = usePaper ? 10'000 : quickNodes;
    const std::uint32_t defaultRuns = usePaper ? 100 : quickRuns;
    scale.nodes =
        static_cast<std::uint32_t>(args.getUint("nodes", defaultNodes));
    scale.runs =
        static_cast<std::uint32_t>(args.getUint("runs", defaultRuns));
    scale.seed = args.getUint("seed", 42);
    const std::uint64_t threads =
        args.getPositiveUint("threads", TaskPool::defaultThreads());
    // Explicit cap: a value like 2^32 would otherwise truncate to 0 and
    // silently bypass the zero rejection.
    if (threads > 4096)
      throw std::invalid_argument("--threads must be between 1 and 4096");
    scale.threads = static_cast<std::uint32_t>(threads);
    scale.csv = args.getBool("csv");
    scale.jsonPath = args.get("json").value_or("");
    const std::size_t timing =
        args.getChoice("timing", timingChoices(), /*fallbackIndex=*/0);
    scale.timing = timingPreset(timing);
    scale.timingName = timingChoices()[timing];
    return scale;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "%s\n", error.what());
    std::exit(2);
  }
}

/// The ParallelSweep every bench drives its runners through.
inline analysis::ParallelSweep makeSweep(const Scale& scale) {
  return analysis::ParallelSweep({.threads = scale.threads});
}

/// Runs a bench-specific argument getter (e.g. getDouble("churn", ...))
/// under the same print-and-exit-2 error path as resolveScale, so a
/// malformed value never escapes main() as an uncaught exception.
template <typename Fn>
auto argOrExit(Fn&& fn) -> decltype(fn()) {
  try {
    return fn();
  } catch (const std::exception& error) {
    std::fprintf(stderr, "%s\n", error.what());
    std::exit(2);
  }
}

/// Prints the bench banner: what figure this regenerates and at what scale.
inline void printHeader(const std::string& figure, const std::string& paperNote,
                        const Scale& scale) {
  std::printf("=== %s ===\n", figure.c_str());
  std::printf("paper: %s\n", paperNote.c_str());
  std::printf("scale: %u nodes, %u runs/point, seed %llu, %u thread%s%s\n\n",
              scale.nodes, scale.runs,
              static_cast<unsigned long long>(scale.seed), scale.threads,
              scale.threads == 1 ? "" : "s",
              scale.quick ? " [--quick]" : (scale.paper ? " [--paper]" : ""));
}

/// Stopwatch for phase timing lines.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// The fanout axis of the paper's effectiveness figures (1..20).
inline std::vector<std::uint32_t> fullFanoutAxis() {
  std::vector<std::uint32_t> fanouts;
  for (std::uint32_t f = 1; f <= 20; ++f) fanouts.push_back(f);
  return fanouts;
}

/// A warmed-up static scenario at the bench scale, with a timing line.
inline analysis::Scenario buildStatic(const Scale& scale,
                                      std::uint64_t extraSeed = 0,
                                      std::uint32_t rings = 1) {
  Stopwatch timer;
  auto scenario = analysis::Scenario::builder()
                      .nodes(scale.nodes)
                      .seed(scale.seed + extraSeed)
                      .rings(rings)
                      .timing(scale.timing)
                      .build();
  std::printf("warm-up: %u cycles over %u nodes (%s timing) in %.2fs\n\n",
              scenario.config().warmupCycles, scale.nodes,
              scale.timingName.c_str(), timer.seconds());
  return scenario;
}

/// The paper's §7.3 churn warm-up: build, warm up, churn at `rate` until
/// the entire initial population has been replaced (capped). `quiet`
/// suppresses the progress line (for parallel experiment builds); use
/// scenario.churnCycles() / engine().cycle() for the churn-phase length
/// and the freeze cycle.
inline analysis::Scenario buildChurned(const Scale& scale, double rate,
                                       std::uint64_t extraSeed,
                                       std::uint64_t maxChurnCycles = 50'000,
                                       bool quiet = false) {
  Stopwatch timer;
  auto scenario =
      analysis::Scenario::paperChurn(rate, scale.nodes, scale.seed + extraSeed,
                                     maxChurnCycles, scale.timing);
  if (!quiet)
    std::printf(
        "churn warm-up: %llu churn cycles at %.2f%%/cycle (initial population "
        "fully replaced: %s) in %.2fs\n",
        static_cast<unsigned long long>(scenario.churnCycles()), rate * 100.0,
        scenario.network().initialSurvivors() == 0 ? "yes" : "NO (cap hit)",
        timer.seconds());
  return scenario;
}

// -- the machine-readable BENCH_*.json record ----------------------------

/// Accumulates the bench's metric series and writes the JSON record
/// (schema: scripts/check_bench_json.py documents the required keys).
/// Wall-clock is measured from construction to write().
class JsonReport {
 public:
  JsonReport(std::string bench, const Scale& scale)
      : root_(Json::object()), series_(Json::array()) {
    root_.set("bench", std::move(bench))
        .set("schema_version", 1)
        .set("scale", Json::object()
                          .set("nodes", scale.nodes)
                          .set("runs", scale.runs)
                          .set("paper", scale.paper)
                          .set("quick", scale.quick))
        .set("seed", scale.seed)
        .set("threads", scale.threads)
        .set("timing", timingJson(scale.timing));
  }

  /// The timing-model metadata object (also used per-series by benches
  /// comparing several models in one record).
  static Json timingJson(const sim::TimingConfig& timing) {
    return Json::object()
        .set("mode", timing.modeName())
        .set("ticks_per_cycle", timing.ticksPerCycle)
        .set("latency", timing.latency.name());
  }

  /// Adds one named series object (whatever shape the bench measures).
  void addSeries(Json series) { series_.push(std::move(series)); }

  /// Attaches an arbitrary top-level key (e.g. churn parameters).
  void setParam(std::string key, Json value) {
    root_.set(std::move(key), std::move(value));
  }

  /// Writes the record to scale.jsonPath if --json was given; prints a
  /// confirmation line. No-op otherwise.
  void write(const Scale& scale) {
    if (scale.jsonPath.empty()) return;
    const double seconds = timer_.seconds();
    root_.set("wall_clock_seconds", seconds);
    root_.set("wall_clock_ms", seconds * 1000.0);
    root_.set("peak_rss_bytes", peakRssBytes());
    root_.set("series", std::move(series_));
    std::ofstream out(scale.jsonPath);
    if (!out) {
      std::fprintf(stderr, "cannot write JSON record to %s\n",
                   scale.jsonPath.c_str());
      std::exit(1);
    }
    out << root_.dump(2) << '\n';
    std::printf("\nJSON record written to %s\n", scale.jsonPath.c_str());
  }

 private:
  Stopwatch timer_;
  Json root_;
  Json series_;
};

// The series builders live in analysis/report_json.hpp (shared with the
// record-regression tests); re-exported here so benches keep their
// unqualified names.
using analysis::effectivenessSeries;
using analysis::histogramSeries;
using analysis::progressSeries;
using analysis::tableSeries;
using analysis::toJson;

// -- sharded-engine thread scaling (scale_sweep, timing_sensitivity) -----

/// One thread-scaling sweep: identical work at 1, 2, 4, ... maxThreads
/// workers under one timing model.
struct ThreadScalingOptions {
  std::uint32_t nodes = 0;
  std::uint32_t warmupCycles = 0;
  std::uint32_t measuredCycles = 0;
  std::uint32_t maxThreads = 0;
  std::uint64_t seed = 0;
  sim::TimingConfig timing{};
  /// Series label; benches sweeping several timing models prefix it with
  /// the model name (kind stays "thread_scaling").
  std::string label = "thread_scaling";
};

/// Runs the sweep, prints per-count lines, and appends a
/// "thread_scaling" series (threads / node_cycles_per_sec / speedup_vs_1
/// / peak_rss_bytes parallel arrays, plus the timing metadata) to
/// `report`. Returns false when either the cross-thread message-count
/// identity or the hardware-permitting >= 3x speedup floor is violated;
/// the floor is enforced only at >= 8 workers on machines with the cores
/// to back them and populations >= 1M that amortise barrier cost.
inline bool runThreadScaling(const ThreadScalingOptions& opt,
                             JsonReport& report) {
  std::vector<std::uint32_t> counts{1};
  while (counts.back() * 2 <= opt.maxThreads)
    counts.push_back(counts.back() * 2);
  if (counts.back() != opt.maxThreads) counts.push_back(opt.maxThreads);

  std::printf("thread scaling at %u nodes (%u measured cycles/point, "
              "%s timing, %s latency):\n",
              opt.nodes, opt.measuredCycles, opt.timing.modeName(),
              opt.timing.latency.name());
  struct ThreadPoint {
    std::uint32_t threads = 0;
    double nodeCyclesPerSec = 0.0;
    std::uint64_t messages = 0;
    std::uint64_t peakRssBytes = 0;
  };
  std::vector<ThreadPoint> points;
  for (const std::uint32_t threads : counts) {
    auto scenario = analysis::Scenario::builder()
                        .nodes(opt.nodes)
                        .seed(opt.seed)
                        .engineThreads(threads)
                        .warmupCycles(opt.warmupCycles)
                        .timing(opt.timing)
                        .build();
    scenario.runCycles(1);  // settle scratch/bucket capacities
    const std::uint64_t sentBefore = scenario.gossipMessagesSent();
    Stopwatch timer;
    scenario.runCycles(opt.measuredCycles);
    const double seconds = timer.seconds();
    ThreadPoint point;
    point.threads = threads;
    point.nodeCyclesPerSec =
        seconds > 0.0
            ? static_cast<double>(opt.nodes) * opt.measuredCycles / seconds
            : 0.0;
    point.messages = scenario.gossipMessagesSent() - sentBefore;
    point.peakRssBytes = peakRssBytes();
    std::printf("  %2u thread%s: %.0f node-cycles/s, %.2fx vs 1\n", threads,
                threads == 1 ? " " : "s", point.nodeCyclesPerSec,
                points.empty() ? 1.0
                               : point.nodeCyclesPerSec /
                                     points.front().nodeCyclesPerSec);
    points.push_back(point);
  }

  // The cheap determinism guard: identical gossip traffic at every
  // worker count (the full bit-identity lives in the ctest suites).
  bool ok = true;
  for (const auto& point : points)
    if (point.messages != points.front().messages) {
      std::fprintf(stderr,
                   "FAIL: %u threads sent %llu gossip messages, 1 thread "
                   "sent %llu — sharded determinism violated\n",
                   point.threads,
                   static_cast<unsigned long long>(point.messages),
                   static_cast<unsigned long long>(points.front().messages));
      ok = false;
    }

  // Speedup floor, hardware-aware: only meaningful when the machine has
  // the cores to back the workers and the population amortises barrier
  // cost (a 1-core CI container skips this, a dev box enforces it).
  const std::uint32_t hwThreads =
      static_cast<std::uint32_t>(TaskPool::defaultThreads());
  const ThreadPoint& top = points.back();
  const double speedup = points.front().nodeCyclesPerSec > 0.0
                             ? top.nodeCyclesPerSec /
                                   points.front().nodeCyclesPerSec
                             : 0.0;
  if (top.threads >= 8 && hwThreads >= top.threads &&
      opt.nodes >= 1'000'000) {
    if (speedup < 3.0) {
      std::fprintf(stderr,
                   "FAIL: %.2fx speedup at %u threads (>= 3x required on "
                   "%u-core hardware)\n",
                   speedup, top.threads, hwThreads);
      ok = false;
    }
  } else {
    std::printf("  (speedup floor not enforced: %u hardware cores, max %u "
                "workers, %u nodes)\n",
                hwThreads, top.threads, opt.nodes);
  }

  Json threadsAxis = Json::array();
  Json rate = Json::array();
  Json speedups = Json::array();
  Json rss = Json::array();
  for (const auto& point : points) {
    threadsAxis.push(point.threads);
    rate.push(point.nodeCyclesPerSec);
    speedups.push(points.front().nodeCyclesPerSec > 0.0
                      ? point.nodeCyclesPerSec /
                            points.front().nodeCyclesPerSec
                      : 0.0);
    rss.push(point.peakRssBytes);
  }
  report.addSeries(Json::object()
                       .set("label", opt.label)
                       .set("kind", "thread_scaling")
                       .set("timing", JsonReport::timingJson(opt.timing))
                       .set("nodes", opt.nodes)
                       .set("measured_cycles", opt.measuredCycles)
                       .set("hardware_threads", hwThreads)
                       .set("threads", std::move(threadsAxis))
                       .set("node_cycles_per_sec", std::move(rate))
                       .set("speedup_vs_1", std::move(speedups))
                       .set("peak_rss_bytes", std::move(rss)));
  std::printf("\n");
  return ok;
}

}  // namespace vs07::bench
