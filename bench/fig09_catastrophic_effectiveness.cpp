// Regenerates Fig. 9 — dissemination effectiveness after catastrophic
// failures killing 1%, 2%, 5%, and 10% of the nodes at once, with gossip
// stalled (no self-healing), as a function of the fanout.
//
// Expected shape (paper): RINGCAST beats RANDCAST at every failure
// volume; the gap narrows as the failure grows, but even at 10% dead
// RINGCAST's miss ratio stays about an order of magnitude lower, and its
// complete-dissemination percentage is far higher at small fanouts.
#include <cstdio>

#include "analysis/experiment.hpp"
#include "analysis/scenario.hpp"
#include "bench_common.hpp"
#include "common/table.hpp"

namespace {

using namespace vs07;
using cast::Strategy;

int run(const bench::Scale& scale) {
  bench::printHeader(
      "Fig. 9: effectiveness after catastrophic failure (1/2/5/10% dead)",
      "RingCast keeps ~an order of magnitude lower miss ratio; gap "
      "narrows as the failure volume grows; no healing allowed",
      scale);

  bench::JsonReport report("fig09_catastrophic_effectiveness", scale);
  auto sweep = bench::makeSweep(scale);
  const auto fanouts = bench::fullFanoutAxis();

  for (const double killPercent : {1.0, 2.0, 5.0, 10.0}) {
    // Fresh overlay per failure volume, as in the paper's §7.2 setup.
    const auto seed =
        scale.seed + static_cast<std::uint64_t>(killPercent * 10);
    auto scenario = analysis::Scenario::paperCatastrophic(
        killPercent / 100.0, scale.nodes, seed, scale.timing);

    const auto rand = sweep.sweepEffectiveness(
        scenario, Strategy::kRandCast, fanouts, scale.runs, seed + 1);
    const auto ring = sweep.sweepEffectiveness(
        scenario, Strategy::kRingCast, fanouts, scale.runs, seed + 2);
    const auto killLabel = std::to_string(static_cast<int>(killPercent));
    report.addSeries(
        bench::effectivenessSeries("randcast_kill" + killLabel + "%", rand));
    report.addSeries(
        bench::effectivenessSeries("ringcast_kill" + killLabel + "%", ring));

    std::printf("--- failed nodes: %.0f%% (alive: %u) ---\n", killPercent,
                scenario.network().aliveCount());
    Table table({"fanout", "randcast_miss%", "ringcast_miss%",
                 "randcast_complete%", "ringcast_complete%"});
    for (std::size_t i = 0; i < fanouts.size(); ++i)
      table.addRow({std::to_string(fanouts[i]),
                    fmtLog(rand[i].avgMissPercent),
                    fmtLog(ring[i].avgMissPercent),
                    fmt(rand[i].completePercent, 1),
                    fmt(ring[i].completePercent, 1)});
    std::fputs((scale.csv ? table.renderCsv() : table.render()).c_str(),
               stdout);
    std::printf("\n");
  }
  report.write(scale);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto parser = bench::makeParser(
      "Fig. 9 of Voulgaris & van Steen (Middleware 2007): miss ratio and "
      "complete disseminations vs fanout after catastrophic failures.");
  const auto args = parser.parseOrExit(argc, argv);
  if (!args) return 0;
  return run(bench::resolveScale(*args, /*quickNodes=*/2'500,
                                 /*quickRuns=*/20,
                                 bench::DefaultScale::kPaper));
}
