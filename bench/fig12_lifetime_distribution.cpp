// Regenerates Fig. 12 — the distribution of node lifetimes at freeze
// time, summed over several independent churn experiments (log-log in
// the paper).
//
// Expected shape (paper, 10k nodes, 0.2%/cycle): counts per lifetime are
// capped by the churn batch size (20 nodes/cycle at paper scale) for
// young lifetimes and fall off geometrically for old ones — a plateau
// followed by an exponential-looking tail on log-log axes.
#include <cstdio>

#include "analysis/experiment.hpp"
#include "bench_common.hpp"
#include "common/histogram.hpp"
#include "common/table.hpp"

namespace {

using namespace vs07;

int run(const bench::Scale& scale, double churnRate,
        std::uint32_t experiments) {
  bench::printHeader(
      "Fig. 12: distribution of node lifetimes under churn",
      "counts plateau at the per-cycle churn batch size for young nodes "
      "and decay geometrically for old ones (log-log)",
      scale);

  bench::JsonReport report("fig12_lifetime_distribution", scale);
  report.setParam("churn_rate", churnRate);
  report.setParam("experiments", experiments);

  // The churn warm-ups dominate here, and the experiments are mutually
  // independent — so they run across the pool (quiet builds) and merge
  // in experiment order.
  auto sweep = bench::makeSweep(scale);
  bench::Stopwatch warmTimer;
  std::vector<CountHistogram> perExperiment(experiments);
  sweep.pool().parallelFor(experiments, [&](std::size_t e) {
    const auto scenario =
        bench::buildChurned(scale, churnRate, 1000 + e,
                            /*maxChurnCycles=*/50'000, /*quiet=*/true);
    perExperiment[e] = analysis::lifetimeHistogram(scenario.network(),
                                                   scenario.engine().cycle());
  });
  std::printf("churn warm-up: %u independent networks at %.2f%%/cycle in "
              "%.2fs\n",
              experiments, churnRate * 100.0, warmTimer.seconds());

  CountHistogram aggregate;
  for (const auto& histogram : perExperiment) aggregate.merge(histogram);

  std::printf("\nlifetimes aggregated over %u experiment(s), %llu nodes\n\n",
              experiments,
              static_cast<unsigned long long>(aggregate.total()));
  const auto bins = logBins(aggregate);
  std::fputs("lifetime (cycles)    count (bar is log-scaled)\n", stdout);
  std::fputs(renderLogBins(bins).c_str(), stdout);

  if (scale.csv) {
    Table table({"lifetime", "count"});
    for (const auto& [lifetime, count] : aggregate.sorted())
      table.addRow({std::to_string(lifetime), std::to_string(count)});
    std::fputs(table.renderCsv().c_str(), stdout);
  }

  report.addSeries(bench::histogramSeries("lifetimes", aggregate));
  report.write(scale);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto parser = bench::makeParser(
      "Fig. 12 of Voulgaris & van Steen (Middleware 2007): node lifetime "
      "distribution after churn warm-up.");
  parser.option("churn", "churn rate per cycle (default 0.002)")
      .option("experiments", "independent churn networks to aggregate "
                             "(default 2; paper used 100)");
  const auto args = parser.parseOrExit(argc, argv);
  if (!args) return 0;
  const auto scale = bench::resolveScale(*args, /*quickNodes=*/800,
                                         /*quickRuns=*/1,
                                         bench::DefaultScale::kPaper);
  return run(scale,
             bench::argOrExit([&] { return args->getDouble("churn", 0.002); }),
             static_cast<std::uint32_t>(bench::argOrExit(
                 [&] { return args->getPositiveUint("experiments", 2); })));
}
