// Regenerates Fig. 13 — the distribution of lifetimes of nodes that were
// NOT notified during disseminations under churn, for fanouts 3 and 6,
// both protocols (log-log in the paper).
//
// Expected shape (paper): misses concentrate on nodes younger than
// ~20-30 cycles. RINGCAST misses *more* of the very young nodes than
// RANDCAST (it spends F-2 instead of F forwards on r-links, and joiners
// have no incoming d-links yet) but almost none of the older ones, where
// RANDCAST keeps missing at every age.
#include <cstdio>

#include "analysis/experiment.hpp"
#include "bench_common.hpp"
#include "common/histogram.hpp"
#include "common/table.hpp"

namespace {

using namespace vs07;
using cast::Strategy;

struct ProtocolMisses {
  CountHistogram fanout3;
  CountHistogram fanout6;
};

int run(const bench::Scale& scale, double churnRate,
        std::uint32_t experiments) {
  bench::printHeader(
      "Fig. 13: lifetimes of non-notified nodes under churn (F=3 and F=6)",
      "misses concentrate on nodes younger than ~20-30 cycles; RingCast "
      "misses more of the very young but nearly none of the old nodes; "
      "RandCast misses at every age",
      scale);

  bench::JsonReport report("fig13_nonnotified_lifetimes", scale);
  report.setParam("churn_rate", churnRate);
  report.setParam("experiments", experiments);

  // Each experiment (own churned network + 4 miss studies) is
  // independent, so experiments run across the pool and merge in
  // experiment order.
  auto sweep = bench::makeSweep(scale);
  bench::Stopwatch warmTimer;
  std::vector<ProtocolMisses> randPer(experiments);
  std::vector<ProtocolMisses> ringPer(experiments);
  sweep.pool().parallelFor(experiments, [&](std::size_t e) {
    const auto scenario =
        bench::buildChurned(scale, churnRate, 2000 + e,
                            /*maxChurnCycles=*/50'000, /*quiet=*/true);
    auto collect = [&](Strategy strategy, std::uint32_t fanout,
                       CountHistogram& into) {
      const auto study = analysis::measureMissLifetimes(
          scenario, strategy, fanout, scale.runs,
          scale.seed + e * 10 + fanout);
      into.merge(study.missedLifetimes);
    };
    collect(Strategy::kRandCast, 3, randPer[e].fanout3);
    collect(Strategy::kRandCast, 6, randPer[e].fanout6);
    collect(Strategy::kRingCast, 3, ringPer[e].fanout3);
    collect(Strategy::kRingCast, 6, ringPer[e].fanout6);
  });
  std::printf("churn warm-up + studies: %u independent networks at "
              "%.2f%%/cycle in %.2fs\n",
              experiments, churnRate * 100.0, warmTimer.seconds());

  ProtocolMisses rand;
  ProtocolMisses ring;
  for (std::uint32_t e = 0; e < experiments; ++e) {
    rand.fanout3.merge(randPer[e].fanout3);
    rand.fanout6.merge(randPer[e].fanout6);
    ring.fanout3.merge(ringPer[e].fanout3);
    ring.fanout6.merge(ringPer[e].fanout6);
  }

  auto printPair = [&](const char* title, const CountHistogram& randHist,
                       const CountHistogram& ringHist) {
    std::printf("\n--- %s: misses by lifetime bin ---\n", title);
    Table table({"lifetime_bin", "randcast_misses", "ringcast_misses"});
    // Render over the union of log bins of both histograms.
    CountHistogram unionHist;
    unionHist.merge(randHist);
    unionHist.merge(ringHist);
    for (const auto& bin : logBins(unionHist)) {
      std::uint64_t randCount = 0;
      std::uint64_t ringCount = 0;
      for (std::uint64_t v = bin.lo; v <= bin.hi; ++v) {
        randCount += randHist.count(v);
        ringCount += ringHist.count(v);
      }
      const std::string label = bin.lo == bin.hi
                                    ? std::to_string(bin.lo)
                                    : std::to_string(bin.lo) + "-" +
                                          std::to_string(bin.hi);
      table.addRow({label, std::to_string(randCount),
                    std::to_string(ringCount)});
    }
    std::fputs((scale.csv ? table.renderCsv() : table.render()).c_str(),
               stdout);
    std::printf("totals: randcast %llu, ringcast %llu\n",
                static_cast<unsigned long long>(randHist.total()),
                static_cast<unsigned long long>(ringHist.total()));
  };

  printPair("fanout 3", rand.fanout3, ring.fanout3);
  printPair("fanout 6", rand.fanout6, ring.fanout6);

  report.addSeries(bench::histogramSeries("randcast_f3", rand.fanout3));
  report.addSeries(bench::histogramSeries("randcast_f6", rand.fanout6));
  report.addSeries(bench::histogramSeries("ringcast_f3", ring.fanout3));
  report.addSeries(bench::histogramSeries("ringcast_f6", ring.fanout6));
  report.write(scale);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto parser = bench::makeParser(
      "Fig. 13 of Voulgaris & van Steen (Middleware 2007): lifetime "
      "distribution of non-notified nodes under churn, fanouts 3 and 6.");
  parser.option("churn", "churn rate per cycle (default 0.002)")
      .option("experiments", "independent churn networks to aggregate "
                             "(default 2; paper used 100)");
  const auto args = parser.parseOrExit(argc, argv);
  if (!args) return 0;
  const auto scale = bench::resolveScale(*args, /*quickNodes=*/800,
                                         /*quickRuns=*/50,
                                         bench::DefaultScale::kPaper);
  return run(scale,
             bench::argOrExit([&] { return args->getDouble("churn", 0.002); }),
             static_cast<std::uint32_t>(bench::argOrExit(
                 [&] { return args->getPositiveUint("experiments", 2); })));
}
