// Ablation of the §8 reliability extension: multi-ring RINGCAST. Nodes
// maintain k independent rings (different random id per ring); the d-link
// graph's connectivity grows with k, trading gossip maintenance traffic
// for failure resilience.
//
// Expected shape: at a fixed low fanout, the miss ratio after a severe
// catastrophic failure drops sharply as rings are added; in a fail-free
// network all variants are already complete (single ring suffices).
#include <cstdio>

#include "analysis/experiment.hpp"
#include "analysis/scenario.hpp"
#include "bench_common.hpp"
#include "common/table.hpp"

namespace {

using namespace vs07;
using cast::Strategy;

int run(const bench::Scale& scale, std::uint32_t fanout) {
  bench::printHeader(
      "Multi-ring RingCast ablation (paper §8 extension)",
      "more rings = higher d-link connectivity = lower miss ratio after "
      "catastrophic failures, at higher maintenance cost",
      scale);

  bench::JsonReport report("multiring_ablation", scale);
  report.setParam("fanout", fanout);
  auto sweep = bench::makeSweep(scale);

  Table table({"rings", "dlinks/node", "miss%_failfree", "miss%_kill5%",
               "miss%_kill10%", "miss%_kill20%"});

  for (const std::uint32_t rings : {1u, 2u, 3u}) {
    std::vector<std::string> row{std::to_string(rings)};
    bool first = true;
    for (const double kill : {0.0, 0.05, 0.10, 0.20}) {
      auto scenario = analysis::Scenario::builder()
                          .nodes(scale.nodes)
                          .rings(rings)
                          .seed(scale.seed + rings)
                          .timing(scale.timing)
                          .build();
      if (kill > 0.0) scenario.killRandomFraction(kill);
      const auto snapshot = scenario.snapshot(Strategy::kMultiRing);
      if (first) {
        // Average d-link out-degree (union of rings, deduplicated).
        std::uint64_t dlinks = 0;
        for (const NodeId id : snapshot.aliveIds())
          dlinks += snapshot.dlinks(id).size();
        row.push_back(
            fmt(static_cast<double>(dlinks) / snapshot.aliveCount(), 2));
        first = false;
      }
      const auto point = sweep.measureEffectiveness(
          snapshot, Strategy::kMultiRing, fanout, scale.runs,
          scale.seed + rings + 7);
      row.push_back(fmtLog(point.avgMissPercent));
    }
    table.addRow(std::move(row));
  }

  std::fputs((scale.csv ? table.renderCsv() : table.render()).c_str(),
             stdout);
  std::printf("\nfanout %u, %u runs per cell\n", fanout, scale.runs);

  report.addSeries(bench::tableSeries("multiring_miss", table));
  report.write(scale);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto parser = bench::makeParser(
      "Multi-ring RingCast ablation (§8): miss ratio vs ring count under "
      "catastrophic failures.");
  parser.option("fanout", "fanout to run at (default 2)");
  const auto args = parser.parseOrExit(argc, argv);
  if (!args) return 0;
  const auto scale = bench::resolveScale(*args, /*quickNodes=*/1'500,
                                         /*quickRuns=*/25);
  return run(scale, static_cast<std::uint32_t>(bench::argOrExit(
                        [&] { return args->getPositiveUint("fanout", 2); })));
}
