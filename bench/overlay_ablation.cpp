// Ablation over the deterministic flooding overlays of §3: spanning
// tree, star, bidirectional ring (= Harary-2), Harary graphs of higher
// connectivity, and clique. For each overlay: message cost of a complete
// flood, and miss ratio after killing a fraction of the nodes (flooding,
// no healing).
//
// Expected shape (§3's qualitative discussion):
//   * tree: minimal messages (N-1) but any interior failure loses a branch;
//   * star: 2 hops, hub failure loses everything;
//   * ring: cheap, survives any 1 failure, partitions at 2+;
//   * Harary(t): survives t-1 failures at proportional link cost;
//   * clique: bulletproof and absurdly expensive.
#include <cstdio>
#include <functional>

#include "analysis/experiment.hpp"
#include "bench_common.hpp"
#include "cast/snapshot.hpp"
#include "common/table.hpp"
#include "overlay/graph.hpp"

namespace {

using namespace vs07;
using cast::Strategy;

struct OverlayCase {
  std::string name;
  std::function<overlay::Graph(std::uint32_t, Rng&)> build;
};

int run(const bench::Scale& scale) {
  bench::printHeader(
      "Overlay ablation (paper §3): flooding cost and resilience",
      "tree = optimal messages but fragile; star = hub bottleneck; "
      "ring survives 1 failure; Harary(t) survives t-1; clique survives "
      "anything at O(N^2) cost",
      scale);
  bench::JsonReport report("overlay_ablation", scale);
  auto sweep = bench::makeSweep(scale);

  const std::vector<OverlayCase> cases = {
      {"tree", [](std::uint32_t n, Rng& rng) {
         return overlay::makeRandomTree(n, rng);
       }},
      {"star", [](std::uint32_t n, Rng&) { return overlay::makeStar(n); }},
      {"ring(H2)", [](std::uint32_t n, Rng&) { return overlay::makeRing(n); }},
      {"harary3", [](std::uint32_t n, Rng&) {
         return overlay::makeHarary(3, n);
       }},
      {"harary4", [](std::uint32_t n, Rng&) {
         return overlay::makeHarary(4, n);
       }},
      {"harary6", [](std::uint32_t n, Rng&) {
         return overlay::makeHarary(6, n);
       }},
  };

  Table table({"overlay", "links/node", "msgs_failfree", "miss%_kill1",
               "miss%_kill2", "miss%_kill1%", "miss%_kill5%"});

  for (const auto& testCase : cases) {
    Rng buildRng(scale.seed);
    const auto graph = testCase.build(scale.nodes, buildRng);
    const double linksPerNode =
        static_cast<double>(graph.edgeCount()) / graph.size();

    std::vector<std::string> row{testCase.name, fmt(linksPerNode, 1)};
    // Fail-free flood cost.
    const auto clean = sweep.measureEffectiveness(
        cast::snapshotGraph(graph), Strategy::kFlood, 1, scale.runs,
        scale.seed + 1);
    row.push_back(fmt(clean.avgMessagesTotal, 0));

    // Kill sweeps: absolute counts (1, 2 nodes) probe the Harary bound;
    // percentage kills probe large-scale damage.
    const std::vector<std::pair<std::string, std::uint32_t>> kills = {
        {"1", 1},
        {"2", 2},
        {"1%", scale.nodes / 100},
        {"5%", scale.nodes / 20}};
    for (const auto& [label, count] : kills) {
      (void)label;
      // Each repetition (kill pattern + flood) derives its own stream
      // from (seed + count, rep), so repetitions are independent cells:
      // they run across the pool and sum in repetition order.
      std::vector<double> missPerRep(scale.runs, 0.0);
      const std::uint32_t killCount = count;
      sweep.pool().parallelFor(scale.runs, [&](std::size_t rep) {
        Rng killRng(deriveStreamSeed(scale.seed + killCount, rep));
        std::vector<std::uint8_t> alive(scale.nodes, 1);
        for (std::uint32_t k = 0; k < killCount;) {
          const auto victim =
              static_cast<NodeId>(killRng.below(scale.nodes));
          if (alive[victim]) {
            alive[victim] = 0;
            ++k;
          }
        }
        const auto point = analysis::measureEffectiveness(
            cast::snapshotGraph(graph, alive), Strategy::kFlood, 1, 1,
            killRng());
        missPerRep[rep] = point.avgMissPercent;
      });
      double missSum = 0.0;
      for (const double miss : missPerRep) missSum += miss;
      row.push_back(fmtLog(missSum / scale.runs));
    }
    table.addRow(std::move(row));
  }

  std::fputs((scale.csv ? table.renderCsv() : table.render()).c_str(),
             stdout);
  std::printf(
      "\nNote: clique omitted from kill sweeps by default (O(N^2) links); "
      "its miss ratio is 0 for any failure not killing the origin.\n");

  report.addSeries(bench::tableSeries("overlay_resilience", table));
  report.write(scale);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto parser = bench::makeParser(
      "Ablation of §3's deterministic flooding overlays: message cost "
      "and failure resilience of tree/star/ring/Harary overlays.");
  const auto args = parser.parseOrExit(argc, argv);
  if (!args) return 0;
  return run(bench::resolveScale(*args, /*quickNodes=*/1'000,
                                 /*quickRuns=*/30));
}
