// Regenerates Fig. 10 — per-hop dissemination progress after a
// catastrophic failure killing 5% of the nodes (no healing), for fanouts
// 2, 3, 5, 10.
//
// Expected shape (paper): same anatomy as Fig. 7 (exponential spreading,
// then the tail), shifted up by the damage: RANDCAST's residue is larger,
// RINGCAST still drains almost everything, and the fanout-latency
// relation is preserved.
#include <cstdio>

#include "analysis/experiment.hpp"
#include "analysis/scenario.hpp"
#include "bench_common.hpp"
#include "common/table.hpp"

namespace {

using namespace vs07;
using cast::Strategy;

int run(const bench::Scale& scale) {
  bench::printHeader(
      "Fig. 10: per-hop progress after a 5% catastrophic failure",
      "same shape as Fig. 7 with a larger RandCast residue; RingCast "
      "still reaches almost everyone and finishes in fewer hops",
      scale);

  bench::JsonReport report("fig10_catastrophic_progress", scale);
  auto scenario = analysis::Scenario::paperCatastrophic(
      0.05, scale.nodes, scale.seed, scale.timing);
  std::printf("killed 5%%: %u nodes remain\n\n",
              scenario.network().aliveCount());
  auto sweep = bench::makeSweep(scale);

  for (const std::uint32_t fanout : {2u, 3u, 5u, 10u}) {
    const auto rand = sweep.measureProgress(
        scenario, Strategy::kRandCast, fanout, scale.runs,
        scale.seed + fanout);
    const auto ring = sweep.measureProgress(
        scenario, Strategy::kRingCast, fanout, scale.runs,
        scale.seed + 100 + fanout);
    report.addSeries(bench::progressSeries(
        "randcast_f" + std::to_string(fanout), rand));
    report.addSeries(bench::progressSeries(
        "ringcast_f" + std::to_string(fanout), ring));

    std::printf("--- fanout %u: %% nodes not reached yet after each hop ---\n",
                fanout);
    Table table({"hop", "randcast_mean%", "ringcast_mean%"});
    const std::size_t hops =
        std::max(rand.meanPctRemaining.size(), ring.meanPctRemaining.size());
    for (std::size_t hop = 0; hop < hops; ++hop) {
      auto cell = [&](const analysis::ProgressStats& s) -> std::string {
        if (hop >= s.meanPctRemaining.size())
          return fmtLog(s.meanPctRemaining.back());
        return fmtLog(s.meanPctRemaining[hop]);
      };
      table.addRow({std::to_string(hop), cell(rand), cell(ring)});
    }
    std::fputs((scale.csv ? table.renderCsv() : table.render()).c_str(),
               stdout);
    std::printf("\n");
  }
  report.write(scale);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto parser = bench::makeParser(
      "Fig. 10 of Voulgaris & van Steen (Middleware 2007): per-hop "
      "progress for fanouts 2/3/5/10 after killing 5% of the nodes.");
  const auto args = parser.parseOrExit(argc, argv);
  if (!args) return 0;
  return run(bench::resolveScale(*args, /*quickNodes=*/2'500,
                                 /*quickRuns=*/25,
                                 bench::DefaultScale::kPaper));
}
