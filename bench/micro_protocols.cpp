// Micro-benchmarks (google-benchmark) of the protocol operations: CYCLON
// shuffle cycles, VICINITY proximity cycles, target selection, overlay
// snapshotting, and end-to-end disseminations. These quantify the cost of
// the simulator itself — useful when scaling experiments up.
#include <benchmark/benchmark.h>

#include "analysis/scenario.hpp"
#include "cast/session.hpp"
#include "common/rng.hpp"
#include "net/codec.hpp"

namespace {

using namespace vs07;
using cast::Strategy;

analysis::Scenario warmScenario(std::uint32_t nodes) {
  return analysis::Scenario::paperStatic(nodes, /*seed=*/7);
}

void BM_GossipCycle(benchmark::State& state) {
  const auto nodes = static_cast<std::uint32_t>(state.range(0));
  auto scenario = warmScenario(nodes);
  for (auto _ : state) scenario.runCycles(1);
  state.SetItemsProcessed(state.iterations() * nodes * 2);  // 2 protocols
  state.counters["nodes"] = nodes;
}
BENCHMARK(BM_GossipCycle)->Arg(1'000)->Arg(10'000)->Unit(benchmark::kMillisecond);

void BM_RingCastDissemination(benchmark::State& state) {
  const auto nodes = static_cast<std::uint32_t>(state.range(0));
  const auto fanout = static_cast<std::uint32_t>(state.range(1));
  auto scenario = warmScenario(nodes);
  auto session = scenario.snapshotSession(
      {.strategy = Strategy::kRingCast, .fanout = fanout, .seed = 3});
  for (auto _ : state) {
    const auto report = session.publishFromRandom();
    benchmark::DoNotOptimize(report.notified);
  }
  state.SetItemsProcessed(state.iterations() * nodes);
  state.counters["fanout"] = fanout;
}
BENCHMARK(BM_RingCastDissemination)
    ->Args({10'000, 2})
    ->Args({10'000, 5})
    ->Args({10'000, 10})
    ->Unit(benchmark::kMillisecond);

void BM_RandCastDissemination(benchmark::State& state) {
  const auto nodes = static_cast<std::uint32_t>(state.range(0));
  auto scenario = warmScenario(nodes);
  auto session = scenario.snapshotSession(
      {.strategy = Strategy::kRandCast, .fanout = 5, .seed = 4});
  for (auto _ : state) {
    const auto report = session.publishFromRandom();
    benchmark::DoNotOptimize(report.notified);
  }
  state.SetItemsProcessed(state.iterations() * nodes);
}
BENCHMARK(BM_RandCastDissemination)->Arg(10'000)->Unit(benchmark::kMillisecond);

void BM_SnapshotBuild(benchmark::State& state) {
  const auto nodes = static_cast<std::uint32_t>(state.range(0));
  auto scenario = warmScenario(nodes);
  for (auto _ : state) {
    const auto snapshot = scenario.snapshot(Strategy::kRingCast);
    benchmark::DoNotOptimize(snapshot.aliveCount());
  }
  state.SetItemsProcessed(state.iterations() * nodes);
}
BENCHMARK(BM_SnapshotBuild)->Arg(10'000)->Unit(benchmark::kMillisecond);

void BM_TargetSelection(benchmark::State& state) {
  auto scenario = warmScenario(1'000);
  const auto snapshot = scenario.snapshot(Strategy::kRingCast);
  const auto& selector = cast::selectorFor(Strategy::kRingCast);
  Rng rng(5);
  std::vector<NodeId> targets;
  const auto& ids = snapshot.aliveIds();
  for (auto _ : state) {
    selector.selectTargets(snapshot, ids[rng.below(ids.size())], kNoNode, 5,
                           rng, targets);
    benchmark::DoNotOptimize(targets.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TargetSelection);

void BM_MessageCodec(benchmark::State& state) {
  net::Message msg;
  msg.kind = net::MessageKind::CyclonRequest;
  msg.from = 17;
  Rng rng(6);
  for (int i = 0; i < 8; ++i)
    msg.entries.push_back({static_cast<NodeId>(rng()),
                           static_cast<std::uint32_t>(rng.below(100)),
                           rng()});
  for (auto _ : state) {
    const auto bytes = net::encode(msg);
    const auto decoded = net::decode(bytes);
    benchmark::DoNotOptimize(decoded.entries.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MessageCodec);

}  // namespace

BENCHMARK_MAIN();
