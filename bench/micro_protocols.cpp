// Micro-benchmarks (google-benchmark) of the protocol operations: CYCLON
// shuffle cycles, VICINITY proximity cycles, target selection, overlay
// snapshotting, and end-to-end disseminations. These quantify the cost of
// the simulator itself — useful when scaling experiments up.
//
// Shares the bench-wide CLI surface: --quick restricts the run to the
// cheap benchmarks (for CI smoke), --json PATH writes the BENCH_*.json
// record, and --threads N is accepted for interface parity (each micro
// benchmark is single-threaded by nature). Every other option is passed
// through to google-benchmark.
#include <benchmark/benchmark.h>

#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/scenario.hpp"
#include "bench_common.hpp"
#include "cast/session.hpp"
#include "common/alloc_probe.hpp"
#include "common/rng.hpp"
#include "net/codec.hpp"

namespace {

using namespace vs07;
using cast::Strategy;

analysis::Scenario warmScenario(std::uint32_t nodes) {
  return analysis::Scenario::paperStatic(nodes, /*seed=*/7);
}

void BM_GossipCycle(benchmark::State& state) {
  const auto nodes = static_cast<std::uint32_t>(state.range(0));
  auto scenario = warmScenario(nodes);
  // One settle cycle brings scratch buffers and queues to their steady
  // capacity; the timed loop then measures the zero-allocation regime.
  scenario.runCycles(1);
  const std::uint64_t sentBefore = scenario.castTransport().sent();
  const vs07::AllocScope allocs;
  for (auto _ : state) scenario.runCycles(1);
  // Snapshot before touching state.counters: the counter map itself
  // allocates and must not pollute the measurement.
  const std::uint64_t allocDelta = allocs.allocations();
  const auto cycles = static_cast<double>(state.iterations());
  state.SetItemsProcessed(state.iterations() * nodes * 2);  // 2 protocols
  state.counters["nodes"] = nodes;
  // The hot-path invariant: steady-state gossip cycles allocate nothing.
  state.counters["allocs_per_cycle"] =
      static_cast<double>(allocDelta) / cycles;
  state.counters["msgs_per_cycle"] =
      static_cast<double>(scenario.castTransport().sent() - sentBefore) /
      cycles;
  state.counters["msgs_per_sec"] = benchmark::Counter(
      static_cast<double>(scenario.castTransport().sent() - sentBefore),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GossipCycle)->Arg(1'000)->Arg(10'000)->Unit(benchmark::kMillisecond);

void BM_ShardedGossipCycle(benchmark::State& state) {
  const auto nodes = static_cast<std::uint32_t>(state.range(0));
  const auto threads = static_cast<std::uint32_t>(state.range(1));
  auto scenario = analysis::Scenario::builder()
                      .nodes(nodes)
                      .seed(7)
                      .engineThreads(threads)
                      .build();
  scenario.runCycles(1);
  const std::uint64_t sentBefore = scenario.gossipMessagesSent();
  const vs07::AllocScope allocs;
  for (auto _ : state) scenario.runCycles(1);
  const std::uint64_t allocDelta = allocs.allocations();
  const auto cycles = static_cast<double>(state.iterations());
  state.SetItemsProcessed(state.iterations() * nodes * 2);
  state.counters["nodes"] = nodes;
  state.counters["engine_threads"] = threads;
  // The sharded engine inherits the hot-path invariant: once outbox
  // buckets and scratch reach steady capacity, a cycle — worklists,
  // steps, barrier exchange, canonical-order delivery — allocates
  // nothing, on any worker thread. main() turns a violation into a
  // nonzero exit (the ctest/CI gate).
  state.counters["allocs_per_cycle"] =
      static_cast<double>(allocDelta) / cycles;
  state.counters["msgs_per_cycle"] =
      static_cast<double>(scenario.gossipMessagesSent() - sentBefore) /
      cycles;
}
BENCHMARK(BM_ShardedGossipCycle)
    ->Args({1'000, 2})
    ->Args({10'000, 4})
    ->Unit(benchmark::kMillisecond);

void BM_ShardedGossipCycleLatency(benchmark::State& state) {
  const auto nodes = static_cast<std::uint32_t>(state.range(0));
  const auto threads = static_cast<std::uint32_t>(state.range(1));
  auto scenario = analysis::Scenario::builder()
                      .nodes(nodes)
                      .seed(7)
                      .engineThreads(threads)
                      .timing(sim::TimingConfig::jitteredLatency(
                          sim::LatencyModel::uniform(1, 4)))
                      .build();
  // The windowed schedule keeps latency-delayed traffic in per-shard
  // stores across cycles; a few settle cycles let the stores and due
  // queues reach their steady capacity before the timed loop.
  scenario.runCycles(3);
  const std::uint64_t sentBefore = scenario.gossipMessagesSent();
  const vs07::AllocScope allocs;
  for (auto _ : state) scenario.runCycles(1);
  const std::uint64_t allocDelta = allocs.allocations();
  const auto cycles = static_cast<double>(state.iterations());
  state.SetItemsProcessed(state.iterations() * nodes * 2);
  state.counters["nodes"] = nodes;
  state.counters["engine_threads"] = threads;
  // Same invariant as BM_ShardedGossipCycle, now for the windowed
  // (conservative-lookahead) schedule: window scans, per-shard due
  // queues, message-store check-in/out, and canonical-order delivery
  // all run allocation-free once warm. The name prefix keeps this
  // benchmark under main()'s zero-allocation gate.
  state.counters["allocs_per_cycle"] =
      static_cast<double>(allocDelta) / cycles;
  state.counters["msgs_per_cycle"] =
      static_cast<double>(scenario.gossipMessagesSent() - sentBefore) /
      cycles;
  state.counters["stored_in_flight"] =
      static_cast<double>(scenario.shardedEngine()->storedInFlight());
}
BENCHMARK(BM_ShardedGossipCycleLatency)
    ->Args({1'000, 2})
    ->Args({10'000, 4})
    ->Unit(benchmark::kMillisecond);

void BM_RingCastDissemination(benchmark::State& state) {
  const auto nodes = static_cast<std::uint32_t>(state.range(0));
  const auto fanout = static_cast<std::uint32_t>(state.range(1));
  auto scenario = warmScenario(nodes);
  auto session = scenario.snapshotSession(
      {.strategy = Strategy::kRingCast, .fanout = fanout, .seed = 3});
  for (auto _ : state) {
    const auto report = session.publishFromRandom();
    benchmark::DoNotOptimize(report.notified);
  }
  state.SetItemsProcessed(state.iterations() * nodes);
  state.counters["fanout"] = fanout;
}
BENCHMARK(BM_RingCastDissemination)
    ->Args({10'000, 2})
    ->Args({10'000, 5})
    ->Args({10'000, 10})
    ->Unit(benchmark::kMillisecond);

void BM_RandCastDissemination(benchmark::State& state) {
  const auto nodes = static_cast<std::uint32_t>(state.range(0));
  auto scenario = warmScenario(nodes);
  auto session = scenario.snapshotSession(
      {.strategy = Strategy::kRandCast, .fanout = 5, .seed = 4});
  for (auto _ : state) {
    const auto report = session.publishFromRandom();
    benchmark::DoNotOptimize(report.notified);
  }
  state.SetItemsProcessed(state.iterations() * nodes);
}
BENCHMARK(BM_RandCastDissemination)->Arg(10'000)->Unit(benchmark::kMillisecond);

void BM_SnapshotBuild(benchmark::State& state) {
  const auto nodes = static_cast<std::uint32_t>(state.range(0));
  auto scenario = warmScenario(nodes);
  for (auto _ : state) {
    const auto snapshot = scenario.snapshot(Strategy::kRingCast);
    benchmark::DoNotOptimize(snapshot.aliveCount());
  }
  state.SetItemsProcessed(state.iterations() * nodes);
}
BENCHMARK(BM_SnapshotBuild)->Arg(10'000)->Unit(benchmark::kMillisecond);

void BM_TargetSelection(benchmark::State& state) {
  auto scenario = warmScenario(1'000);
  const auto snapshot = scenario.snapshot(Strategy::kRingCast);
  const auto& selector = cast::selectorFor(Strategy::kRingCast);
  Rng rng(5);
  std::vector<NodeId> targets;
  const auto& ids = snapshot.aliveIds();
  for (auto _ : state) {
    selector.selectTargets(snapshot, ids[rng.below(ids.size())], kNoNode, 5,
                           rng, targets);
    benchmark::DoNotOptimize(targets.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TargetSelection);

void BM_MessageCodec(benchmark::State& state) {
  net::Message msg;
  msg.kind = net::MessageKind::CyclonRequest;
  msg.from = 17;
  Rng rng(6);
  for (int i = 0; i < 8; ++i)
    msg.entries.push_back({static_cast<NodeId>(rng()),
                           static_cast<std::uint32_t>(rng.below(100)),
                           rng()});
  for (auto _ : state) {
    const auto bytes = net::encode(msg);
    const auto decoded = net::decode(bytes);
    benchmark::DoNotOptimize(decoded.entries.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MessageCodec);

/// Console reporter that also captures every run for the JSON record.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  struct Captured {
    std::string name;
    double realTime = 0.0;
    double cpuTime = 0.0;
    std::string timeUnit;
    std::int64_t iterations = 0;
    std::vector<std::pair<std::string, double>> counters;
  };

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const auto& run : reports) {
      Captured captured{run.benchmark_name(), run.GetAdjustedRealTime(),
                        run.GetAdjustedCPUTime(),
                        benchmark::GetTimeUnitString(run.time_unit),
                        run.iterations,
                        {}};
      for (const auto& [name, counter] : run.counters)
        captured.counters.emplace_back(name, counter.value);
      captured_.push_back(std::move(captured));
    }
    ConsoleReporter::ReportRuns(reports);
  }

  const std::vector<Captured>& captured() const { return captured_; }

 private:
  std::vector<Captured> captured_;
};

[[noreturn]] void badValue(const char* what, const std::string& value) {
  std::fprintf(stderr, "bad %s: '%s'\n", what, value.c_str());
  std::exit(2);
}

std::uint32_t parseThreads(const std::string& value) {
  std::uint32_t threads = 0;
  const char* begin = value.c_str();
  const char* end = begin + value.size();
  const auto result = std::from_chars(begin, end, threads);
  if (result.ec != std::errc() || result.ptr != end || threads == 0)
    badValue("positive integer for --threads", value);
  return threads;
}

}  // namespace

int main(int argc, char** argv) {
  std::string jsonPath;
  std::uint32_t threads = vs07::TaskPool::defaultThreads();
  bool quick = false;

  // Strip the shared bench options; everything else goes to
  // google-benchmark untouched.
  std::vector<std::string> passthroughStore{argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto valueOf = [&](const std::string& flag) -> std::string {
      if (arg.size() > flag.size() && arg.compare(0, flag.size() + 1,
                                                  flag + "=") == 0)
        return arg.substr(flag.size() + 1);
      if (i + 1 >= argc) badValue(("value for " + flag).c_str(), "<missing>");
      return argv[++i];
    };
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--json" || arg.rfind("--json=", 0) == 0) {
      jsonPath = valueOf("--json");
    } else if (arg == "--threads" || arg.rfind("--threads=", 0) == 0) {
      threads = parseThreads(valueOf("--threads"));
    } else {
      passthroughStore.push_back(arg);
    }
  }
  if (quick)
    // The 10k-node scenarios take minutes to warm up; CI smoke exercises
    // the cheap benchmarks plus the 1k-node gossip cycles (sequential,
    // sharded lockstep, and sharded windowed-latency), whose
    // allocs_per_cycle counters guard the zero-allocation hot path.
    passthroughStore.push_back(
        "--benchmark_filter=BM_(MessageCodec|TargetSelection)"
        "|BM_GossipCycle/1000$|BM_ShardedGossipCycle(Latency)?/1000/2$");

  std::vector<char*> passthrough;
  for (auto& arg : passthroughStore)
    passthrough.push_back(arg.data());
  int passthroughArgc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&passthroughArgc, passthrough.data());

  // Scale metadata: nodes/runs are per-benchmark here (each BENCHMARK
  // sets its own Args), so the shared record carries 0 = not applicable
  // and the per-point data carries the real numbers. Seeds are fixed
  // per benchmark (see warmScenario etc.), so the root seed is 0 too.
  vs07::bench::Scale scale;
  scale.quick = quick;
  scale.threads = threads;
  scale.jsonPath = jsonPath;
  vs07::bench::JsonReport report("micro_protocols", scale);

  CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);

  using vs07::Json;
  Json points = Json::array();
  for (const auto& run : reporter.captured()) {
    Json point = Json::object()
                     .set("name", run.name)
                     .set("real_time", run.realTime)
                     .set("cpu_time", run.cpuTime)
                     .set("time_unit", run.timeUnit)
                     .set("iterations", run.iterations);
    if (!run.counters.empty()) {
      Json counters = Json::object();
      for (const auto& [name, value] : run.counters)
        counters.set(name, value);
      point.set("counters", std::move(counters));
    }
    points.push(std::move(point));
  }
  report.addSeries(Json::object()
                       .set("label", "microbenchmarks")
                       .set("kind", "micro")
                       .set("points", std::move(points)));
  report.write(scale);
  benchmark::Shutdown();

  // The zero-allocation assertion for the sharded engine: any steady-
  // state allocation on any worker thread fails the whole bench run.
  bool allocFree = true;
  for (const auto& run : reporter.captured()) {
    if (run.name.rfind("BM_ShardedGossipCycle", 0) != 0) continue;
    for (const auto& [name, value] : run.counters)
      if (name == "allocs_per_cycle" && value != 0.0) {
        std::fprintf(stderr,
                     "FAIL: %s allocated %.2f times/cycle in steady state "
                     "(sharded cycles must be allocation-free)\n",
                     run.name.c_str(), value);
        allocFree = false;
      }
  }
  return allocFree ? 0 : 1;
}
