// Steady-state dissemination under a sustained publish rate — the
// workload the paper never measures (every fig bench pushes exactly one
// message per experiment).
//
// A TrafficSource drives Poisson publishes through a LiveCast while the
// engine runs under jittered timers + uniform 1..4-tick delivery latency
// (percentiles need a clock that in-flight messages live on, so this
// bench always uses the latency model regardless of --timing). Three
// experiments:
//
//   1. Throughput: publish rate x buffer capacity x strategy ->
//      delivered msgs/node/cycle, redundancy ratio, and the tracked
//      in-flight high-water mark (LiveCast's bounded bookkeeping).
//   2. Delivery latency: per-delivery (deliver tick - publish tick)
//      percentiles (p50/p99) against the Mundinger et al. optimal-
//      makespan floor — ceil(log2 N) rounds for one message, and
//      M + ceil(log2 N) - 1 rounds for an M-message batch — the
//      theoretical line sustained gossip cannot beat.
//   3. Memory frontier: two equal traffic epochs (>= 1k messages each at
//      quick scale); the run *fails* unless tracked in-flight state
//      stays under Params::maxTrackedMessages and peak RSS is flat
//      between the epochs (bounded bookkeeping, not per-message leaks).
//
// Every (strategy, buffer, rate) cell builds its own scenario seeded
// from the cell identity (deriveStreamSeed) and runs on the worker
// pool; cells merge in canonical order, so tables and JSON series are
// bit-identical for any --threads value.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/scenario.hpp"
#include "bench_common.hpp"
#include "cast/live.hpp"
#include "cast/strategy.hpp"
#include "cast/traffic.hpp"
#include "common/resource.hpp"
#include "common/table.hpp"

namespace {

using namespace vs07;
using cast::Strategy;

/// Push-only RINGCAST vs push + §8 pull recovery.
const std::vector<Strategy>& trafficStrategies() {
  static const std::vector<Strategy> kStrategies = {Strategy::kRingCast,
                                                    Strategy::kPushPull};
  return kStrategies;
}

const sim::TimingConfig& trafficTiming() {
  static const sim::TimingConfig kTiming =
      sim::TimingConfig::jitteredLatency(sim::LatencyModel::uniform(1, 4));
  return kTiming;
}

/// ceil(log2 n): the per-message round floor of Mundinger et al.
std::uint32_t ceilLog2(std::uint64_t n) {
  std::uint32_t bits = 0;
  while ((std::uint64_t{1} << bits) < n) ++bits;
  return bits;
}

struct CellResult {
  double publishRate = 0.0;          ///< configured msgs/cycle
  std::uint64_t published = 0;
  double deliveredPerNodePerCycle = 0.0;
  double msgsPerSecPerNode = 0.0;    ///< wall-clock throughput
  double redundancyRatio = 0.0;
  double completedPercent = 0.0;
  std::uint64_t trackedInFlightMax = 0;
  double p50Ticks = 0.0;
  double p99Ticks = 0.0;
  double meanTicks = 0.0;
  cast::SteadyStateStats steady;
};

struct CellConfig {
  Strategy strategy = Strategy::kPushPull;
  std::uint32_t bufferCapacity = 256;
  double rate = 1.0;
  std::uint32_t trafficCycles = 60;
  std::uint32_t drainCycles = 10;
  std::uint32_t maxTracked = 512;
};

double percentile(std::vector<std::uint64_t>& values, double p) {
  if (values.empty()) return 0.0;
  const std::size_t k = static_cast<std::size_t>(
      p * static_cast<double>(values.size() - 1) / 100.0);
  std::nth_element(values.begin(),
                   values.begin() + static_cast<std::ptrdiff_t>(k),
                   values.end());
  return static_cast<double>(values[k]);
}

/// One sustained-traffic run: warm scenario, Poisson source at
/// cfg.rate for cfg.trafficCycles, then a publish-free drain so the last
/// waves land. Latencies come from the delivery hook (re-deliveries
/// after buffer eviction count too: the node really did re-learn late).
CellResult runCell(const bench::Scale& scale, const CellConfig& cfg,
                   std::uint64_t cellSeed) {
  auto scenario = analysis::Scenario::builder()
                      .nodes(scale.nodes)
                      .seed(cellSeed)
                      .timing(trafficTiming())
                      .build();
  auto& session = scenario.liveSession(
      {.strategy = cfg.strategy,
       .fanout = 3,
       .seed = deriveStreamSeed(cellSeed, 0x5e55, 1),
       .digestLength = 32,
       .bufferCapacity = cfg.bufferCapacity,
       .maxTrackedMessages = cfg.maxTracked,
       .completedLingerTicks = 8});
  auto& engine = scenario.engine();

  std::unordered_map<std::uint64_t, std::uint64_t> publishTick;
  std::vector<std::uint64_t> latencies;
  session.live().setDeliveryHook(
      [&](NodeId /*node*/, std::uint64_t dataId, std::uint32_t /*hop*/,
          bool /*viaPull*/) {
        const auto it = publishTick.find(dataId);
        if (it != publishTick.end())
          latencies.push_back(engine.tick() - it->second);
      });

  const std::uint64_t maxMessages = static_cast<std::uint64_t>(
      cfg.rate * static_cast<double>(cfg.trafficCycles));
  cast::TrafficSource traffic(
      engine, scenario.network(), session.live(),
      {.messagesPerCycle = cfg.rate, .poisson = true,
       .maxMessages = maxMessages},
      deriveStreamSeed(cellSeed, 0x7afc, 2));
  traffic.setPublishHook(
      [&](std::uint64_t dataId, NodeId /*origin*/, std::uint64_t tick) {
        publishTick.emplace(dataId, tick);
      });
  engine.addControl(traffic);

  bench::Stopwatch timer;
  engine.run(cfg.trafficCycles + cfg.drainCycles);
  const double seconds = timer.seconds();

  const auto steady = session.live().steadyStats();
  CellResult out;
  out.publishRate = cfg.rate;
  out.published = traffic.published();
  out.deliveredPerNodePerCycle =
      static_cast<double>(steady.firstDeliveries) /
      static_cast<double>(scale.nodes) /
      static_cast<double>(cfg.trafficCycles);
  out.msgsPerSecPerNode = seconds > 0.0
                              ? static_cast<double>(steady.firstDeliveries) /
                                    seconds / static_cast<double>(scale.nodes)
                              : 0.0;
  out.redundancyRatio = steady.redundancyRatio();
  const std::uint64_t doneCount =
      steady.retiredCompleted +
      [&] {
        std::uint64_t stillTrackedComplete = 0;
        for (std::uint64_t id = 1; id <= traffic.published(); ++id)
          if (session.live().isTracked(id) &&
              session.live().stats(id).completed())
            ++stillTrackedComplete;
        return stillTrackedComplete;
      }();
  out.completedPercent =
      traffic.published() > 0
          ? 100.0 * static_cast<double>(doneCount) /
                static_cast<double>(traffic.published())
          : 0.0;
  out.trackedInFlightMax = steady.peakTracked;
  out.steady = steady;
  out.p50Ticks = percentile(latencies, 50.0);
  out.p99Ticks = percentile(latencies, 99.0);
  if (!latencies.empty()) {
    double sum = 0.0;
    for (const std::uint64_t l : latencies) sum += static_cast<double>(l);
    out.meanTicks = sum / static_cast<double>(latencies.size());
  }
  return out;
}

void rateSweep(const bench::Scale& scale, analysis::ParallelSweep& sweep,
               bench::JsonReport& report) {
  // The eviction horizon (bufferCapacity / rate, in cycles) must clear
  // the full repair tail by a wide margin: once one still-needed id is
  // evicted, its pull-repair re-wave re-buffers it everywhere, evicting
  // *other* ids early — positive feedback straight into the documented
  // supercritical regime (endless re-waves). That failure mode is pinned
  // in tests (message_store_test), not swept here; the smallest horizon
  // below is 256/8 = 32 cycles against a ~5-cycle tail.
  const std::vector<double> rates{0.5, 2.0, 8.0};
  const std::vector<std::uint32_t> buffers{256, 1024};
  const auto& strategies = trafficStrategies();
  const std::uint32_t trafficCycles = std::max<std::uint32_t>(scale.runs, 20);
  std::printf("--- publish-rate sweep: delivered/node/cycle | p50/p99 "
              "latency ticks (%u traffic cycles/cell) ---\n",
              trafficCycles);

  const std::size_t perStrategy = buffers.size() * rates.size();
  std::vector<CellResult> cells(strategies.size() * perStrategy);
  sweep.pool().parallelFor(cells.size(), [&](std::size_t i) {
    CellConfig cfg;
    cfg.strategy = strategies[i / perStrategy];
    cfg.bufferCapacity = buffers[(i / rates.size()) % buffers.size()];
    cfg.rate = rates[i % rates.size()];
    cfg.trafficCycles = trafficCycles;
    bench::Stopwatch cellTimer;
    cells[i] = runCell(scale, cfg, deriveStreamSeed(scale.seed, 0x7ca1, i));
    std::fprintf(stderr, "  [%s buf=%u rate=%g] %.1fs\n",
                 strategyName(cfg.strategy).data(), cfg.bufferCapacity,
                 cfg.rate, cellTimer.seconds());
  });

  const std::uint32_t floorCycles = ceilLog2(scale.nodes);
  const std::uint64_t floorTicks =
      static_cast<std::uint64_t>(floorCycles) *
      trafficTiming().ticksPerCycle;

  std::vector<std::string> header{"strategy", "buffer"};
  for (const double rate : rates)
    header.push_back("rate " + fmt(rate, 1) + "/cyc");
  Table table(header);
  for (std::size_t s = 0; s < strategies.size(); ++s) {
    const std::string name{strategyName(strategies[s])};
    for (std::size_t b = 0; b < buffers.size(); ++b) {
      std::vector<std::string> row{name, std::to_string(buffers[b])};
      Json rateAxis = Json::array();
      Json delivered = Json::array();
      Json wallRate = Json::array();
      Json redundancy = Json::array();
      Json completed = Json::array();
      Json trackedMax = Json::array();
      Json p50 = Json::array();
      Json p99 = Json::array();
      Json mean = Json::array();
      for (std::size_t r = 0; r < rates.size(); ++r) {
        const CellResult& cell =
            cells[s * perStrategy + b * rates.size() + r];
        row.push_back(fmt(cell.deliveredPerNodePerCycle, 2) + " | " +
                      fmt(cell.p50Ticks, 0) + "/" + fmt(cell.p99Ticks, 0));
        rateAxis.push(cell.publishRate);
        delivered.push(cell.deliveredPerNodePerCycle);
        wallRate.push(cell.msgsPerSecPerNode);
        redundancy.push(cell.redundancyRatio);
        completed.push(cell.completedPercent);
        trackedMax.push(cell.trackedInFlightMax);
        p50.push(cell.p50Ticks);
        p99.push(cell.p99Ticks);
        mean.push(cell.meanTicks);
      }
      table.addRow(std::move(row));
      const std::string label =
          name + ":buf" + std::to_string(buffers[b]);
      report.addSeries(
          Json::object()
              .set("label", "throughput:" + label)
              .set("kind", "throughput")
              .set("strategy", name)
              .set("buffer_capacity", buffers[b])
              .set("timing", bench::JsonReport::timingJson(trafficTiming()))
              .set("publish_rate_per_cycle", rateAxis)
              .set("delivered_per_node_per_cycle", std::move(delivered))
              .set("msgs_per_sec_per_node", std::move(wallRate))
              .set("redundancy_ratio", std::move(redundancy))
              .set("completed_percent", std::move(completed))
              .set("tracked_in_flight_max", std::move(trackedMax)));
      report.addSeries(
          Json::object()
              .set("label", "latency:" + label)
              .set("kind", "latency_percentiles")
              .set("strategy", name)
              .set("buffer_capacity", buffers[b])
              .set("timing", bench::JsonReport::timingJson(trafficTiming()))
              .set("mundinger_floor_ticks", floorTicks)
              .set("publish_rate_per_cycle", std::move(rateAxis))
              .set("p50_ticks", std::move(p50))
              .set("p99_ticks", std::move(p99))
              .set("mean_ticks", std::move(mean)));
    }
  }
  std::fputs((scale.csv ? table.renderCsv() : table.render()).c_str(),
             stdout);

  // Per-strategy totals, folded with SteadyStateStats::merge in
  // canonical cell-index order — the same reduction discipline the
  // sharded engine applies to its per-shard counters.
  for (std::size_t s = 0; s < strategies.size(); ++s) {
    const std::string name{strategyName(strategies[s])};
    cast::SteadyStateStats agg;
    for (std::size_t i = 0; i < perStrategy; ++i)
      agg.merge(cells[s * perStrategy + i].steady);
    std::printf(
        "%s totals: %llu published, %llu first deliveries, redundancy "
        "%.2f, %llu completed + %llu aged out\n",
        name.c_str(), static_cast<unsigned long long>(agg.published),
        static_cast<unsigned long long>(agg.firstDeliveries),
        agg.redundancyRatio(),
        static_cast<unsigned long long>(agg.retiredCompleted),
        static_cast<unsigned long long>(agg.retiredAgedOut));
    report.addSeries(Json::object()
                         .set("label", "steady_aggregate:" + name)
                         .set("kind", "steady_aggregate")
                         .set("strategy", name)
                         .set("published", agg.published)
                         .set("first_deliveries", agg.firstDeliveries)
                         .set("redundant_deliveries", agg.redundantDeliveries)
                         .set("retired_completed", agg.retiredCompleted)
                         .set("retired_aged_out", agg.retiredAgedOut)
                         .set("redundancy_ratio", agg.redundancyRatio())
                         .set("peak_tracked_max", agg.peakTracked));
  }

  std::printf(
      "\nMundinger floor: one message cannot cover %u nodes in fewer than "
      "%u rounds (%llu ticks here); an M-message batch needs M + %u - 1 "
      "rounds. p50 should sit a small factor above the floor; p99 grows "
      "with rate as pull repairs the tail.\n\n",
      scale.nodes, floorCycles,
      static_cast<unsigned long long>(floorTicks), floorCycles);
}

/// The acceptance gate: two equal traffic epochs; tracked in-flight and
/// peak RSS must not scale with the message count. Returns false (and
/// the process exits 1) when the bound is violated.
bool memoryFrontier(const bench::Scale& scale, bench::JsonReport& report) {
  const std::uint32_t cap = 256;
  const std::uint64_t epochMessages =
      scale.paper ? 5000 : 1200;  // two epochs: >= 2k msgs at quick scale
  const double rate = 20.0;
  std::printf("--- memory frontier: 2 epochs x %llu msgs at %g/cycle, "
              "tracked cap %u ---\n",
              static_cast<unsigned long long>(epochMessages), rate, cap);

  const std::uint64_t cellSeed = deriveStreamSeed(scale.seed, 0x3e30, 0);
  auto scenario = analysis::Scenario::builder()
                      .nodes(scale.nodes)
                      .seed(cellSeed)
                      .timing(trafficTiming())
                      .build();
  auto& session = scenario.liveSession(
      {.strategy = Strategy::kPushPull,
       .fanout = 3,
       .seed = deriveStreamSeed(cellSeed, 0x5e55, 1),
       .digestLength = 32,
       .bufferCapacity = 1024,
       .maxTrackedMessages = cap,
       .completedLingerTicks = 8});
  auto& engine = scenario.engine();
  cast::TrafficSource traffic(
      engine, scenario.network(), session.live(),
      {.messagesPerCycle = rate, .poisson = true,
       .maxMessages = 2 * epochMessages},
      deriveStreamSeed(cellSeed, 0x7afc, 2));
  engine.addControl(traffic);

  const auto runEpoch = [&](std::uint64_t targetPublished) {
    engine.runUntil(
        [&] { return traffic.published() >= targetPublished; }, 100'000);
    engine.run(10);  // let the tail of the last waves land
  };

  runEpoch(epochMessages);
  const std::uint64_t rssEpoch1 = peakRssBytes();
  const auto steady1 = session.live().steadyStats();
  runEpoch(2 * epochMessages);
  const std::uint64_t rssEpoch2 = peakRssBytes();
  const auto steady2 = session.live().steadyStats();

  // Peak RSS is monotone; "flat" = the second epoch's extra messages add
  // almost nothing once steady state is reached. The slack absorbs
  // allocator noise, not per-message growth.
  const std::uint64_t rssSlack =
      std::max<std::uint64_t>(rssEpoch1 / 10, 32ull << 20);
  const bool rssFlat = rssEpoch2 <= rssEpoch1 + rssSlack;
  const bool trackedBounded = steady2.peakTracked <= cap;
  const bool bitmapBounded =
      steady2.peakTrackedBitmapBytes <=
      static_cast<std::uint64_t>(cap) * scale.nodes;
  const bool bounded = rssFlat && trackedBounded && bitmapBounded;

  std::printf(
      "epoch 1: %llu published, tracked peak %llu, bitmap peak %.1f MiB, "
      "peak RSS %.1f MiB\n",
      static_cast<unsigned long long>(steady1.published),
      static_cast<unsigned long long>(steady1.peakTracked),
      static_cast<double>(steady1.peakTrackedBitmapBytes) / (1 << 20),
      static_cast<double>(rssEpoch1) / (1 << 20));
  std::printf(
      "epoch 2: %llu published, tracked peak %llu (cap %u), bitmap peak "
      "%.1f MiB, peak RSS %.1f MiB -> %s\n",
      static_cast<unsigned long long>(steady2.published),
      static_cast<unsigned long long>(steady2.peakTracked), cap,
      static_cast<double>(steady2.peakTrackedBitmapBytes) / (1 << 20),
      static_cast<double>(rssEpoch2) / (1 << 20),
      bounded ? "bounded" : "UNBOUNDED (memory frontier violated)");
  std::printf(
      "retired: %llu completed + %llu aged out; redundancy %.2f\n\n",
      static_cast<unsigned long long>(steady2.retiredCompleted),
      static_cast<unsigned long long>(steady2.retiredAgedOut),
      steady2.redundancyRatio());

  report.addSeries(
      Json::object()
          .set("label", "memory_frontier")
          .set("kind", "memory_frontier")
          .set("strategy",
               std::string(strategyName(Strategy::kPushPull)))
          .set("timing", bench::JsonReport::timingJson(trafficTiming()))
          .set("tracked_cap", cap)
          .set("epoch_messages", epochMessages)
          .set("published_total", steady2.published)
          .set("tracked_in_flight_max", steady2.peakTracked)
          .set("tracked_bitmap_bytes_max", steady2.peakTrackedBitmapBytes)
          .set("peak_rss_bytes_epoch1", rssEpoch1)
          .set("peak_rss_bytes_epoch2", rssEpoch2)
          .set("retired_completed", steady2.retiredCompleted)
          .set("retired_aged_out", steady2.retiredAgedOut)
          .set("bounded", bounded));
  return bounded;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vs07;

  auto parser = bench::makeParser(
      "Steady-state dissemination under a sustained publish rate: "
      "throughput, latency percentiles, and the bounded memory frontier.");
  const auto parsed = parser.parseOrExit(argc, argv);
  if (!parsed) return 0;
  const CliArgs& args = *parsed;
  const bench::Scale scale = bench::resolveScale(args, /*quickNodes=*/1000,
                                                 /*quickRuns=*/60);

  bench::printHeader(
      "sustained_traffic — steady-state multi-message dissemination",
      "beyond the paper: Sanghavi et al. random-useful pull, Mundinger "
      "et al. makespan floor",
      scale);
  std::printf("(timing: jittered timers + uniform 1..4-tick latency, "
              "regardless of --timing: percentiles need a clock)\n\n");

  bench::JsonReport report("sustained_traffic", scale);
  auto sweep = bench::makeSweep(scale);

  rateSweep(scale, sweep, report);
  const bool bounded = memoryFrontier(scale, report);

  report.write(scale);
  if (!bounded) {
    std::fprintf(stderr,
                 "FAIL: sustained traffic exceeded the bounded memory "
                 "frontier\n");
    return 1;
  }
  return 0;
}
