// Regenerates Fig. 7 — dissemination progress hop by hop in a static
// failure-free network, for fanouts 2, 3, 5, 10: the percentage of nodes
// not yet reached after each hop (log scale in the paper).
//
// Expected shape (paper): the two protocols track each other for the
// first hops (exponential spreading) and split once ~80-90% of nodes are
// reached: RANDCAST flattens into a residue at low F while RINGCAST
// drains to zero, reaching the last node in fewer hops. Higher fanout
// compresses the whole curve.
#include <cstdio>

#include "analysis/experiment.hpp"
#include "bench_common.hpp"
#include "common/table.hpp"

namespace {

using namespace vs07;
using cast::Strategy;

int run(const bench::Scale& scale) {
  bench::printHeader(
      "Fig. 7: per-hop dissemination progress (static, failure-free)",
      "protocols track each other until ~80-90% coverage, then RingCast "
      "drains to 0 while RandCast leaves a residue at low F; higher F = "
      "fewer hops",
      scale);

  bench::JsonReport report("fig07_static_progress", scale);
  const auto scenario = bench::buildStatic(scale);
  auto sweep = bench::makeSweep(scale);

  for (const std::uint32_t fanout : {2u, 3u, 5u, 10u}) {
    const auto rand = sweep.measureProgress(
        scenario, Strategy::kRandCast, fanout, scale.runs,
        scale.seed + fanout);
    const auto ring = sweep.measureProgress(
        scenario, Strategy::kRingCast, fanout, scale.runs,
        scale.seed + 100 + fanout);
    report.addSeries(bench::progressSeries(
        "randcast_f" + std::to_string(fanout), rand));
    report.addSeries(bench::progressSeries(
        "ringcast_f" + std::to_string(fanout), ring));

    std::printf("--- fanout %u: %% nodes not reached yet after each hop ---\n",
                fanout);
    Table table({"hop", "randcast_mean%", "randcast_range", "ringcast_mean%",
                 "ringcast_range"});
    const std::size_t hops =
        std::max(rand.meanPctRemaining.size(), ring.meanPctRemaining.size());
    for (std::size_t hop = 0; hop < hops; ++hop) {
      auto cell = [&](const analysis::ProgressStats& s,
                      bool range) -> std::string {
        if (hop >= s.meanPctRemaining.size()) return range ? "-" : "0";
        if (!range) return fmtLog(s.meanPctRemaining[hop]);
        return "[" + fmtLog(s.minPctRemaining[hop]) + ".." +
               fmtLog(s.maxPctRemaining[hop]) + "]";
      };
      table.addRow({std::to_string(hop), cell(rand, false), cell(rand, true),
                    cell(ring, false), cell(ring, true)});
    }
    std::fputs((scale.csv ? table.renderCsv() : table.render()).c_str(),
               stdout);
    std::printf("\n");
  }
  report.write(scale);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto parser = bench::makeParser(
      "Fig. 7 of Voulgaris & van Steen (Middleware 2007): per-hop "
      "progress of disseminations for fanouts 2/3/5/10, static network.");
  const auto args = parser.parseOrExit(argc, argv);
  if (!args) return 0;
  return run(bench::resolveScale(*args, /*quickNodes=*/2'500,
                                 /*quickRuns=*/25,
                                 bench::DefaultScale::kPaper));
}
