// Scale sweep — the million-node proof of the flattened message hot path.
//
// Runs the static §7.1 scenario at 10k / 100k / 1M nodes and records, per
// population size:
//   * node-cycles/sec of steady-state gossip (CYCLON + VICINITY),
//   * heap allocations per gossip cycle (counting-allocator hook; 0 in
//     steady state — the invariant this bench guards),
//   * gossip messages per cycle,
//   * one RINGCAST dissemination over the converged overlay (miss ratio,
//     last hop, wall-clock),
//   * peak RSS after the point.
//
// The paper evaluates at 10k; the ROADMAP north-star is millions of
// users, and both Sanghavi et al. (dissemination overhead) and Bojja
// Venkatakrishnan & Viswanath (deterministic-structure benefits) show the
// interesting effects are large-N phenomena — so the sweep makes scale a
// measured, regression-guarded quantity instead of an aspiration.
//
// Scales: default and --paper run {10k, 100k, 1M}; --quick runs
// {10k, 100k} with a shorter warm-up (the CI smoke). An explicit --nodes N
// collapses the axis to that single population (e.g.
// `scale_sweep --nodes 1000000 --quick` is the fast million-node check).
//
// --engine-threads N runs every point on the sharded engine with N
// workers (results bit-identical to N=1 by construction) and appends a
// thread-scaling sweep at the largest population: node-cycles/s and
// speedup vs 1 worker at 1, 2, 4, ... N threads, with a cross-thread
// message-count identity check as a cheap determinism guard.
#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "cast/session.hpp"
#include "common/alloc_probe.hpp"

namespace {

using namespace vs07;
using cast::Strategy;

struct PointResult {
  std::uint32_t nodes = 0;
  std::uint32_t warmupCycles = 0;
  std::uint32_t measuredCycles = 0;
  double warmupSeconds = 0.0;
  double cycleSeconds = 0.0;
  double nodeCyclesPerSec = 0.0;
  double allocsPerCycle = 0.0;
  double messagesPerCycle = 0.0;
  double missPercent = 0.0;
  std::uint64_t lastHop = 0;
  double disseminateSeconds = 0.0;
  std::uint64_t peakRssBytes = 0;
};

PointResult runPoint(const bench::Scale& scale, std::uint32_t nodes,
                     std::uint32_t warmupCycles, std::uint32_t measuredCycles,
                     std::uint32_t engineThreads) {
  PointResult result;
  result.nodes = nodes;
  result.warmupCycles = warmupCycles;
  result.measuredCycles = measuredCycles;

  bench::Stopwatch buildTimer;
  auto scenario = analysis::Scenario::builder()
                      .nodes(nodes)
                      .seed(scale.seed)
                      .engineThreads(engineThreads)
                      .warmupCycles(warmupCycles)
                      .timing(scale.timing)
                      .build();
  result.warmupSeconds = buildTimer.seconds();
  std::printf("  warm-up: %u cycles in %.2fs\n", warmupCycles,
              result.warmupSeconds);

  // One settle cycle lets every scratch buffer, pool slot, and queue
  // reach its steady capacity; the measured window is then the
  // steady-state regime the zero-allocation invariant speaks about.
  scenario.runCycles(1);

  const std::uint64_t sentBefore = scenario.gossipMessagesSent();
  const AllocScope allocs;
  bench::Stopwatch cycleTimer;
  scenario.runCycles(measuredCycles);
  result.cycleSeconds = cycleTimer.seconds();
  result.allocsPerCycle =
      static_cast<double>(allocs.allocations()) / measuredCycles;
  result.messagesPerCycle =
      static_cast<double>(scenario.gossipMessagesSent() - sentBefore) /
      measuredCycles;
  result.nodeCyclesPerSec =
      result.cycleSeconds > 0.0
          ? static_cast<double>(nodes) * measuredCycles / result.cycleSeconds
          : 0.0;
  std::printf("  gossip: %.0f node-cycles/s, %.1f allocs/cycle, "
              "%.0f msgs/cycle\n",
              result.nodeCyclesPerSec, result.allocsPerCycle,
              result.messagesPerCycle);

  bench::Stopwatch castTimer;
  auto session = scenario.snapshotSession({.strategy = Strategy::kRingCast,
                                           .fanout = 3,
                                           .seed = scale.seed + nodes});
  const auto report = session.publishFromRandom();
  result.disseminateSeconds = castTimer.seconds();
  result.missPercent = report.missRatioPercent();
  result.lastHop = report.lastHop;
  result.peakRssBytes = peakRssBytes();
  std::printf("  ringcast F=3: %.4f%% miss, last hop %llu, %.2fs "
              "(snapshot+publish); peak RSS %.0f MiB\n",
              result.missPercent,
              static_cast<unsigned long long>(result.lastHop),
              result.disseminateSeconds,
              static_cast<double>(result.peakRssBytes) / (1024.0 * 1024.0));
  return result;
}

/// The sharded-engine scaling story at one population: identical work at
/// 1, 2, 4, ... `maxThreads` workers. Returns false when either the
/// cross-thread message-count identity or the (hardware-permitting)
/// speedup floor is violated.
bool threadScaling(const bench::Scale& scale, std::uint32_t nodes,
                   std::uint32_t warmupCycles, std::uint32_t measuredCycles,
                   std::uint32_t maxThreads, bench::JsonReport& report) {
  std::vector<std::uint32_t> counts{1};
  while (counts.back() * 2 <= maxThreads) counts.push_back(counts.back() * 2);
  if (counts.back() != maxThreads) counts.push_back(maxThreads);

  std::printf("thread scaling at %u nodes (%u measured cycles/point):\n",
              nodes, measuredCycles);
  struct ThreadPoint {
    std::uint32_t threads = 0;
    double nodeCyclesPerSec = 0.0;
    std::uint64_t messages = 0;
    std::uint64_t peakRssBytes = 0;
  };
  std::vector<ThreadPoint> points;
  for (const std::uint32_t threads : counts) {
    auto scenario = analysis::Scenario::builder()
                        .nodes(nodes)
                        .seed(scale.seed)
                        .engineThreads(threads)
                        .warmupCycles(warmupCycles)
                        .timing(scale.timing)
                        .build();
    scenario.runCycles(1);  // settle scratch/bucket capacities
    const std::uint64_t sentBefore = scenario.gossipMessagesSent();
    bench::Stopwatch timer;
    scenario.runCycles(measuredCycles);
    const double seconds = timer.seconds();
    ThreadPoint point;
    point.threads = threads;
    point.nodeCyclesPerSec =
        seconds > 0.0
            ? static_cast<double>(nodes) * measuredCycles / seconds
            : 0.0;
    point.messages = scenario.gossipMessagesSent() - sentBefore;
    point.peakRssBytes = peakRssBytes();
    std::printf("  %2u thread%s: %.0f node-cycles/s, %.2fx vs 1\n", threads,
                threads == 1 ? " " : "s", point.nodeCyclesPerSec,
                points.empty() ? 1.0
                               : point.nodeCyclesPerSec /
                                     points.front().nodeCyclesPerSec);
    points.push_back(point);
  }

  // The cheap determinism guard: identical gossip traffic at every
  // worker count (the full bit-identity lives in the ctest suites).
  bool ok = true;
  for (const auto& point : points)
    if (point.messages != points.front().messages) {
      std::fprintf(stderr,
                   "FAIL: %u threads sent %llu gossip messages, 1 thread "
                   "sent %llu — sharded determinism violated\n",
                   point.threads,
                   static_cast<unsigned long long>(point.messages),
                   static_cast<unsigned long long>(points.front().messages));
      ok = false;
    }

  // Speedup floor, hardware-aware: only meaningful when the machine has
  // the cores to back the workers and the population amortises barrier
  // cost (a 1-core CI container skips this, a dev box enforces it).
  const std::uint32_t hwThreads =
      static_cast<std::uint32_t>(TaskPool::defaultThreads());
  const ThreadPoint& top = points.back();
  const double speedup = points.front().nodeCyclesPerSec > 0.0
                             ? top.nodeCyclesPerSec /
                                   points.front().nodeCyclesPerSec
                             : 0.0;
  if (top.threads >= 8 && hwThreads >= top.threads && nodes >= 1'000'000) {
    if (speedup < 3.0) {
      std::fprintf(stderr,
                   "FAIL: %.2fx speedup at %u threads (>= 3x required on "
                   "%u-core hardware)\n",
                   speedup, top.threads, hwThreads);
      ok = false;
    }
  } else {
    std::printf("  (speedup floor not enforced: %u hardware cores, max %u "
                "workers, %u nodes)\n",
                hwThreads, top.threads, nodes);
  }

  Json threadsAxis = Json::array();
  Json rate = Json::array();
  Json speedups = Json::array();
  Json rss = Json::array();
  for (const auto& point : points) {
    threadsAxis.push(point.threads);
    rate.push(point.nodeCyclesPerSec);
    speedups.push(points.front().nodeCyclesPerSec > 0.0
                      ? point.nodeCyclesPerSec /
                            points.front().nodeCyclesPerSec
                      : 0.0);
    rss.push(point.peakRssBytes);
  }
  report.addSeries(Json::object()
                       .set("label", "thread_scaling")
                       .set("kind", "thread_scaling")
                       .set("nodes", nodes)
                       .set("measured_cycles", measuredCycles)
                       .set("hardware_threads", hwThreads)
                       .set("threads", std::move(threadsAxis))
                       .set("node_cycles_per_sec", std::move(rate))
                       .set("speedup_vs_1", std::move(speedups))
                       .set("peak_rss_bytes", std::move(rss)));
  std::printf("\n");
  return ok;
}

int run(const bench::Scale& scale, const std::vector<std::uint32_t>& axis,
        std::uint32_t engineThreads) {
  bench::printHeader(
      "Scale sweep: gossip throughput and allocation-free hot path",
      "beyond the paper's 10k evaluation: steady-state cycles must stay "
      "allocation-free and RINGCAST lossless as the population grows to 1M",
      scale);

  const std::uint32_t warmupCycles = scale.quick ? 10 : 50;
  const std::uint32_t measuredCycles = scale.quick ? 3 : 10;

  bench::JsonReport report("scale_sweep", scale);
  std::vector<PointResult> results;
  for (const std::uint32_t nodes : axis) {
    std::printf("%u nodes (%s engine):\n", nodes,
                engineThreads >= 1 ? "sharded" : "sequential");
    results.push_back(
        runPoint(scale, nodes, warmupCycles, measuredCycles, engineThreads));
    std::printf("\n");
  }

  bool scalingOk = true;
  if (engineThreads >= 1)
    scalingOk = threadScaling(scale, axis.back(), warmupCycles,
                              measuredCycles, engineThreads, report);

  Table table({"nodes", "node_cycles/s", "allocs/cycle", "msgs/cycle",
               "miss%", "last_hop", "peak_rss_mib"});
  for (const auto& r : results)
    table.addRow({std::to_string(r.nodes), fmt(r.nodeCyclesPerSec, 0),
                  fmt(r.allocsPerCycle, 1), fmt(r.messagesPerCycle, 0),
                  fmt(r.missPercent, 4), std::to_string(r.lastHop),
                  fmt(static_cast<double>(r.peakRssBytes) / (1024.0 * 1024.0),
                      1)});
  std::fputs((scale.csv ? table.renderCsv() : table.render()).c_str(),
             stdout);

  Json points = Json::array();
  for (const auto& r : results)
    points.push(Json::object()
                    .set("nodes", r.nodes)
                    .set("warmup_cycles", r.warmupCycles)
                    .set("measured_cycles", r.measuredCycles)
                    .set("warmup_seconds", r.warmupSeconds)
                    .set("node_cycles_per_sec", r.nodeCyclesPerSec)
                    .set("allocs_per_cycle", r.allocsPerCycle)
                    .set("messages_per_cycle", r.messagesPerCycle)
                    .set("ringcast_miss_percent", r.missPercent)
                    .set("ringcast_last_hop", r.lastHop)
                    .set("disseminate_seconds", r.disseminateSeconds)
                    .set("peak_rss_bytes", r.peakRssBytes));
  report.addSeries(Json::object()
                       .set("label", "scale")
                       .set("kind", "scale")
                       .set("points", std::move(points)));
  report.write(scale);
  return scalingOk ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  auto parser = bench::makeParser(
      "Scale sweep: steady-state gossip throughput, allocations/cycle, and "
      "RINGCAST dissemination at 10k / 100k / 1M nodes.");
  parser.option("engine-threads",
                "run all cycles on the sharded engine with N workers "
                "(bit-identical for any N >= 1) and append a thread-scaling "
                "sweep; 0 = classic sequential engine (default)");
  const auto args = parser.parseOrExit(argc, argv);
  if (!args) return 0;
  // The axis is the point of this bench, so --nodes collapses it to one
  // population instead of feeding resolveScale's default.
  const bool explicitNodes = args->get("nodes").has_value();
  const auto scale = bench::resolveScale(*args, /*quickNodes=*/100'000,
                                         /*quickRuns=*/1);
  const auto engineThreads = static_cast<std::uint32_t>(bench::argOrExit(
      [&] {
        const std::uint64_t threads = args->getUint("engine-threads", 0);
        if (threads > 256)
          throw std::invalid_argument(
              "--engine-threads must be between 0 and 256");
        return threads;
      }));
  if (engineThreads >= 1 && scale.timingName != "cyclesync") {
    std::fprintf(stderr,
                 "--engine-threads requires the cycle-synchronous timing "
                 "model (got --timing %s)\n",
                 scale.timingName.c_str());
    return 2;
  }
  std::vector<std::uint32_t> axis;
  if (explicitNodes)
    axis = {scale.nodes};
  else if (scale.quick)
    axis = {10'000, 100'000};
  else
    axis = {10'000, 100'000, 1'000'000};
  return run(scale, axis, engineThreads);
}
