// Scale sweep — the million-node proof of the flattened message hot path.
//
// Runs the static §7.1 scenario at 10k / 100k / 1M nodes and records, per
// population size:
//   * node-cycles/sec of steady-state gossip (CYCLON + VICINITY),
//   * heap allocations per gossip cycle (counting-allocator hook; 0 in
//     steady state — the invariant this bench guards),
//   * gossip messages per cycle,
//   * one RINGCAST dissemination over the converged overlay (miss ratio,
//     last hop, wall-clock),
//   * peak RSS after the point.
//
// The paper evaluates at 10k; the ROADMAP north-star is millions of
// users, and both Sanghavi et al. (dissemination overhead) and Bojja
// Venkatakrishnan & Viswanath (deterministic-structure benefits) show the
// interesting effects are large-N phenomena — so the sweep makes scale a
// measured, regression-guarded quantity instead of an aspiration.
//
// Scales: default and --paper run {10k, 100k, 1M}; --quick runs
// {10k, 100k} with a shorter warm-up (the CI smoke). An explicit --nodes N
// collapses the axis to that single population (e.g.
// `scale_sweep --nodes 1000000 --quick` is the fast million-node check).
//
// --engine-threads N runs every point on the sharded engine with N
// workers (results bit-identical to N=1 by construction) and appends a
// thread-scaling sweep at the largest population: node-cycles/s and
// speedup vs 1 worker at 1, 2, 4, ... N threads, with a cross-thread
// message-count identity check as a cheap determinism guard. All three
// --timing models shard: cyclesync runs the lockstep schedule, jittered
// and latency run the windowed (conservative-lookahead) schedule.
#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "cast/session.hpp"
#include "common/alloc_probe.hpp"

namespace {

using namespace vs07;
using cast::Strategy;

struct PointResult {
  std::uint32_t nodes = 0;
  std::uint32_t warmupCycles = 0;
  std::uint32_t measuredCycles = 0;
  double warmupSeconds = 0.0;
  double cycleSeconds = 0.0;
  double nodeCyclesPerSec = 0.0;
  double allocsPerCycle = 0.0;
  double messagesPerCycle = 0.0;
  double missPercent = 0.0;
  std::uint64_t lastHop = 0;
  double disseminateSeconds = 0.0;
  std::uint64_t peakRssBytes = 0;
};

PointResult runPoint(const bench::Scale& scale, std::uint32_t nodes,
                     std::uint32_t warmupCycles, std::uint32_t measuredCycles,
                     std::uint32_t engineThreads) {
  PointResult result;
  result.nodes = nodes;
  result.warmupCycles = warmupCycles;
  result.measuredCycles = measuredCycles;

  bench::Stopwatch buildTimer;
  auto scenario = analysis::Scenario::builder()
                      .nodes(nodes)
                      .seed(scale.seed)
                      .engineThreads(engineThreads)
                      .warmupCycles(warmupCycles)
                      .timing(scale.timing)
                      .build();
  result.warmupSeconds = buildTimer.seconds();
  std::printf("  warm-up: %u cycles in %.2fs\n", warmupCycles,
              result.warmupSeconds);

  // One settle cycle lets every scratch buffer, pool slot, and queue
  // reach its steady capacity; the measured window is then the
  // steady-state regime the zero-allocation invariant speaks about.
  scenario.runCycles(1);

  const std::uint64_t sentBefore = scenario.gossipMessagesSent();
  const AllocScope allocs;
  bench::Stopwatch cycleTimer;
  scenario.runCycles(measuredCycles);
  result.cycleSeconds = cycleTimer.seconds();
  result.allocsPerCycle =
      static_cast<double>(allocs.allocations()) / measuredCycles;
  result.messagesPerCycle =
      static_cast<double>(scenario.gossipMessagesSent() - sentBefore) /
      measuredCycles;
  result.nodeCyclesPerSec =
      result.cycleSeconds > 0.0
          ? static_cast<double>(nodes) * measuredCycles / result.cycleSeconds
          : 0.0;
  std::printf("  gossip: %.0f node-cycles/s, %.1f allocs/cycle, "
              "%.0f msgs/cycle\n",
              result.nodeCyclesPerSec, result.allocsPerCycle,
              result.messagesPerCycle);

  bench::Stopwatch castTimer;
  auto session = scenario.snapshotSession({.strategy = Strategy::kRingCast,
                                           .fanout = 3,
                                           .seed = scale.seed + nodes});
  const auto report = session.publishFromRandom();
  result.disseminateSeconds = castTimer.seconds();
  result.missPercent = report.missRatioPercent();
  result.lastHop = report.lastHop;
  result.peakRssBytes = peakRssBytes();
  std::printf("  ringcast F=3: %.4f%% miss, last hop %llu, %.2fs "
              "(snapshot+publish); peak RSS %.0f MiB\n",
              result.missPercent,
              static_cast<unsigned long long>(result.lastHop),
              result.disseminateSeconds,
              static_cast<double>(result.peakRssBytes) / (1024.0 * 1024.0));
  return result;
}

int run(const bench::Scale& scale, const std::vector<std::uint32_t>& axis,
        std::uint32_t engineThreads) {
  bench::printHeader(
      "Scale sweep: gossip throughput and allocation-free hot path",
      "beyond the paper's 10k evaluation: steady-state cycles must stay "
      "allocation-free and RINGCAST lossless as the population grows to 1M",
      scale);

  const std::uint32_t warmupCycles = scale.quick ? 10 : 50;
  const std::uint32_t measuredCycles = scale.quick ? 3 : 10;

  bench::JsonReport report("scale_sweep", scale);
  std::vector<PointResult> results;
  for (const std::uint32_t nodes : axis) {
    std::printf("%u nodes (%s engine):\n", nodes,
                engineThreads >= 1 ? "sharded" : "sequential");
    results.push_back(
        runPoint(scale, nodes, warmupCycles, measuredCycles, engineThreads));
    std::printf("\n");
  }

  bool scalingOk = true;
  if (engineThreads >= 1)
    scalingOk = bench::runThreadScaling({.nodes = axis.back(),
                                         .warmupCycles = warmupCycles,
                                         .measuredCycles = measuredCycles,
                                         .maxThreads = engineThreads,
                                         .seed = scale.seed,
                                         .timing = scale.timing},
                                        report);

  Table table({"nodes", "node_cycles/s", "allocs/cycle", "msgs/cycle",
               "miss%", "last_hop", "peak_rss_mib"});
  for (const auto& r : results)
    table.addRow({std::to_string(r.nodes), fmt(r.nodeCyclesPerSec, 0),
                  fmt(r.allocsPerCycle, 1), fmt(r.messagesPerCycle, 0),
                  fmt(r.missPercent, 4), std::to_string(r.lastHop),
                  fmt(static_cast<double>(r.peakRssBytes) / (1024.0 * 1024.0),
                      1)});
  std::fputs((scale.csv ? table.renderCsv() : table.render()).c_str(),
             stdout);

  Json points = Json::array();
  for (const auto& r : results)
    points.push(Json::object()
                    .set("nodes", r.nodes)
                    .set("warmup_cycles", r.warmupCycles)
                    .set("measured_cycles", r.measuredCycles)
                    .set("warmup_seconds", r.warmupSeconds)
                    .set("node_cycles_per_sec", r.nodeCyclesPerSec)
                    .set("allocs_per_cycle", r.allocsPerCycle)
                    .set("messages_per_cycle", r.messagesPerCycle)
                    .set("ringcast_miss_percent", r.missPercent)
                    .set("ringcast_last_hop", r.lastHop)
                    .set("disseminate_seconds", r.disseminateSeconds)
                    .set("peak_rss_bytes", r.peakRssBytes));
  report.addSeries(Json::object()
                       .set("label", "scale")
                       .set("kind", "scale")
                       .set("points", std::move(points)));
  report.write(scale);
  return scalingOk ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  auto parser = bench::makeParser(
      "Scale sweep: steady-state gossip throughput, allocations/cycle, and "
      "RINGCAST dissemination at 10k / 100k / 1M nodes.");
  parser.option("engine-threads",
                "run all cycles on the sharded engine with N workers "
                "(bit-identical for any N >= 1) and append a thread-scaling "
                "sweep; 0 = classic sequential engine (default)");
  const auto args = parser.parseOrExit(argc, argv);
  if (!args) return 0;
  // The axis is the point of this bench, so --nodes collapses it to one
  // population instead of feeding resolveScale's default.
  const bool explicitNodes = args->get("nodes").has_value();
  const auto scale = bench::resolveScale(*args, /*quickNodes=*/100'000,
                                         /*quickRuns=*/1);
  const auto engineThreads = static_cast<std::uint32_t>(bench::argOrExit(
      [&] {
        const std::uint64_t threads = args->getUint("engine-threads", 0);
        if (threads > 256)
          throw std::invalid_argument(
              "--engine-threads must be between 0 and 256");
        return threads;
      }));
  std::vector<std::uint32_t> axis;
  if (explicitNodes)
    axis = {scale.nodes};
  else if (scale.quick)
    axis = {10'000, 100'000};
  else
    axis = {10'000, 100'000, 1'000'000};
  return run(scale, axis, engineThreads);
}
