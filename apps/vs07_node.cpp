// vs07_node — one real node of the gossip overlay, run as a process.
//
// Runs the full protocol stack (CYCLON + VICINITY + LiveCast) over real
// UDP sockets on wall-clock timers (runtime::NodeProcess) and exposes a
// line-protocol control socket (runtime::ControlServer) for the cluster
// harness (scripts/run_local_cluster.py). On startup it prints a single
// parseable line:
//
//   VS07_READY id=<id> udp=<port> control=<port>
//
// so harnesses launching it with ephemeral ports (--listen 0.0.0.0:0)
// can discover what the kernel assigned. Control commands (one per line,
// one JSON line back): status | publish | report <dataId> | quit.
#include <poll.h>

#include <algorithm>
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "cast/strategy.hpp"
#include "common/cli.hpp"
#include "common/json.hpp"
#include "common/resource.hpp"
#include "runtime/control.hpp"
#include "runtime/node_process.hpp"
#include "runtime/peer_table.hpp"

namespace {

using namespace vs07;

const char* stateName(runtime::Bootstrap::State state) {
  switch (state) {
    case runtime::Bootstrap::State::kAnnouncing:
      return "announcing";
    case runtime::Bootstrap::State::kJoined:
      return "joined";
    case runtime::Bootstrap::State::kFailed:
      return "failed";
  }
  return "?";
}

// Whether the node's resolved d-links are the true ring neighbours —
// the population's profiles are deterministic (populationSeed), so each
// process can score its own ring locally.
bool ringConverged(const runtime::NodeProcess& node) {
  const auto& vicinity = node.vicinity();
  const NodeId self = node.selfId();
  const auto selfSeq = vicinity.profileOf(self);
  const std::uint32_t nodes = node.peers().nodeCount();
  NodeId idealSucc = kNoNode;
  NodeId idealPred = kNoNode;
  SequenceId bestCw = ~SequenceId{0};
  SequenceId bestCcw = ~SequenceId{0};
  for (NodeId other = 0; other < nodes; ++other) {
    if (other == self) continue;
    const SequenceId cw = vicinity.profileOf(other) - selfSeq;
    const SequenceId ccw = selfSeq - vicinity.profileOf(other);
    if (cw < bestCw) bestCw = cw, idealSucc = other;
    if (ccw < bestCcw) bestCcw = ccw, idealPred = other;
  }
  const auto links = vicinity.ringNeighbors(self);
  return links.successor == idealSucc && links.predecessor == idealPred;
}

Json statusJson(const runtime::NodeProcess& node) {
  Json j = Json::object();
  j.set("id", node.selfId());
  j.set("state", stateName(node.bootstrap().state()));
  j.set("cycles", node.cyclesRun());
  j.set("known_peers", node.peers().knownCount());
  j.set("cyclon_view", node.cyclon().view(node.selfId()).size());
  j.set("vicinity_view", node.vicinity().view(node.selfId()).size());
  j.set("ring_converged", ringConverged(node));
  j.set("deliveries", node.deliveries().size());
  const auto& t = node.transport();
  j.set("datagrams_sent", t.datagramsSent());
  j.set("datagrams_received", t.datagramsReceived());
  j.set("fallback_sent", t.fallbackSent());
  j.set("fallback_received", t.fallbackReceived());
  j.set("dropped_no_address", t.droppedNoAddress());
  j.set("dropped_malformed", t.droppedMalformed());
  j.set("dropped_backlog", t.droppedBacklog());
  j.set("dropped_send_error", t.droppedSendError());
  j.set("retried_sends", t.retriedSends());
  j.set("peak_rss_bytes", peakRssBytes());
  return j;
}

Json reportJson(const runtime::NodeProcess& node, std::uint64_t dataId) {
  Json j = Json::object();
  j.set("data_id", dataId);
  const auto* d = node.delivery(dataId);
  j.set("delivered", d != nullptr);
  if (d != nullptr) {
    j.set("hop", d->hop);
    j.set("via_pull", d->viaPull);
    j.set("at_ms", d->atMs);
  }
  return j;
}

Json errorJson(const std::string& message) {
  Json j = Json::object();
  j.set("error", message);
  return j;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser parser(
      "One real-socket gossip node (UDP transport + control socket)");
  parser.option("id", "this node's NodeId within the population")
      .option("nodes", "population size (must agree across the cluster)")
      .option("seed", "experiment root seed (must agree across the cluster)")
      .option("listen", "host:port for UDP+TCP gossip (port 0 = ephemeral)")
      .option("control", "host:port for the control socket (0 = ephemeral)")
      .option("seed-peer", "host:port of the bootstrap seed node")
      .option("is-seed", "run as the bootstrap seed (skips the ladder)",
              /*takesValue=*/false)
      .option("cycle-ms", "wall-clock milliseconds per gossip cycle")
      .option("warmup-cycles", "cycles to idle after joining before gossip")
      .option("strategy", "flood | randcast | ringcast | multiring | pushpull")
      .option("fanout", "push fanout F")
      .option("pull-interval", "pull heartbeat in own cycles (pushpull)")
      .option("view-length", "CYCLON/VICINITY view length")
      .option("shuffle-length", "CYCLON shuffle length");
  const auto parsed = parser.parseOrExit(argc, argv);
  if (!parsed) return 0;
  const CliArgs& args = *parsed;

  runtime::NodeProcess::Config config;
  config.selfId = static_cast<NodeId>(args.getUint("id", 0));
  config.nodes = static_cast<std::uint32_t>(args.getPositiveUint("nodes", 16));
  config.seed = args.getUint("seed", 1);
  config.port = args.getHostPort("listen", {"0.0.0.0", 0}).port;
  config.isSeed = args.getBool("is-seed", false);
  if (!config.isSeed) {
    const HostPort peer = args.getHostPort("seed-peer", {"", 0});
    config.seedAddr = runtime::parseAddress(peer.host, peer.port);
    if (!config.seedAddr.valid()) {
      std::fprintf(stderr,
                   "vs07_node: --seed-peer host:port is required unless "
                   "--is-seed (numeric IPv4 or 'localhost')\n");
      return 2;
    }
  }
  config.cycleMs =
      static_cast<std::uint32_t>(args.getPositiveUint("cycle-ms", 100));
  config.warmupCycles =
      static_cast<std::uint32_t>(args.getUint("warmup-cycles", 10));
  static const std::vector<std::string> kStrategies = {
      "flood", "randcast", "ringcast", "multiring", "pushpull"};
  config.strategy =
      static_cast<cast::Strategy>(args.getChoice("strategy", kStrategies, 2));
  config.fanout = static_cast<std::uint32_t>(args.getPositiveUint("fanout", 3));
  config.pullInterval =
      static_cast<std::uint32_t>(args.getUint("pull-interval", 1));
  config.viewLength =
      static_cast<std::uint32_t>(args.getPositiveUint("view-length", 20));
  config.shuffleLength =
      static_cast<std::uint32_t>(args.getPositiveUint("shuffle-length", 8));

  const std::uint16_t controlPort = args.getHostPort("control", {"", 0}).port;

  try {
    runtime::NodeProcess node(config);

    bool stop = false;
    runtime::ControlServer control(
        controlPort, [&](const std::string& line) -> std::string {
          if (line == "status") return statusJson(node).dump();
          if (line == "publish") {
            if (!node.joined())
              return errorJson("not joined yet").dump();
            Json j = Json::object();
            j.set("data_id", node.publish());
            return j.dump();
          }
          if (line.rfind("report ", 0) == 0) {
            try {
              return reportJson(node, std::stoull(line.substr(7))).dump();
            } catch (const std::exception&) {
              return errorJson("bad dataId").dump();
            }
          }
          if (line == "quit") {
            stop = true;
            Json j = Json::object();
            j.set("ok", true);
            return j.dump();
          }
          return errorJson("unknown command (status|publish|report <id>|quit)")
              .dump();
        });

    std::printf("VS07_READY id=%u udp=%u control=%u\n",
                static_cast<unsigned>(config.selfId),
                static_cast<unsigned>(node.transport().listenPort()),
                static_cast<unsigned>(control.listenPort()));
    std::fflush(stdout);

    std::vector<::pollfd> fds;
    while (!stop) {
      const std::uint64_t now = node.nowTick();
      const std::uint64_t deadline = node.nextEventMs();
      const int timeoutMs =
          deadline == UINT64_MAX
              ? 50
              : static_cast<int>(
                    deadline <= now
                        ? 0
                        : std::min<std::uint64_t>(deadline - now, 50));
      fds.clear();
      node.addPollFds(fds);
      control.addPollFds(fds);
      ::poll(fds.data(), static_cast<nfds_t>(fds.size()), timeoutMs);
      node.service();
      control.service();
      if (node.bootstrapFailed()) break;
    }
    if (node.bootstrapFailed()) {
      std::fprintf(stderr, "vs07_node: bootstrap failed (no WELCOME)\n");
      return 1;
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "vs07_node: %s\n", error.what());
    return 1;
  }
  return 0;
}
