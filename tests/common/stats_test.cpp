#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/expect.hpp"
#include "common/rng.hpp"

namespace vs07 {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 7: sum of squares = 32 -> 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  Rng rng(7);
  RunningStats whole;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform() * 10.0;
    whole.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(3.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);

  RunningStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStats, MergeAllFoldsInIndexOrder) {
  // mergeAll must equal the explicit left fold — that identity is what
  // makes per-shard reductions reproducible across thread counts.
  Rng rng(11);
  std::vector<RunningStats> parts(5);
  RunningStats whole;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform() * 100.0 - 50.0;
    whole.add(x);
    parts[static_cast<std::size_t>(i) % parts.size()].add(x);
  }
  RunningStats fold;
  for (const auto& part : parts) fold.merge(part);
  const RunningStats merged = mergeAll(parts);
  EXPECT_EQ(merged.count(), fold.count());
  EXPECT_DOUBLE_EQ(merged.mean(), fold.mean());
  EXPECT_DOUBLE_EQ(merged.variance(), fold.variance());
  EXPECT_DOUBLE_EQ(merged.min(), fold.min());
  EXPECT_DOUBLE_EQ(merged.max(), fold.max());
  // And it agrees with the streaming whole up to rounding.
  EXPECT_EQ(merged.count(), whole.count());
  EXPECT_NEAR(merged.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(merged.variance(), whole.variance(), 1e-9);
}

TEST(RunningStats, MergeIsAssociative) {
  // (a ⊕ b) ⊕ c vs a ⊕ (b ⊕ c): exact for counts/min/max, equal to
  // tight tolerance for the floating-point moments.
  Rng rng(23);
  RunningStats a, b, c;
  for (int i = 0; i < 300; ++i) a.add(rng.uniform());
  for (int i = 0; i < 170; ++i) b.add(rng.uniform() * 4.0);
  for (int i = 0; i < 90; ++i) c.add(rng.uniform() - 3.0);
  RunningStats left = a;
  left.merge(b);
  left.merge(c);
  RunningStats bc = b;
  bc.merge(c);
  RunningStats right = a;
  right.merge(bc);
  EXPECT_EQ(left.count(), right.count());
  EXPECT_DOUBLE_EQ(left.min(), right.min());
  EXPECT_DOUBLE_EQ(left.max(), right.max());
  EXPECT_NEAR(left.mean(), right.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), right.variance(), 1e-9);
}

TEST(RunningStats, MergeAllOfEmptySpanIsEmpty) {
  const RunningStats merged = mergeAll({});
  EXPECT_EQ(merged.count(), 0u);
  EXPECT_EQ(merged.mean(), 0.0);
}

TEST(Percentile, EmptyReturnsZero) {
  EXPECT_EQ(percentile({}, 50.0), 0.0);
}

TEST(Percentile, NearestRankSemantics) {
  const std::vector<double> xs{15, 20, 35, 40, 50};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 15.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 30.0), 20.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 40.0), 20.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 35.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 50.0);
}

TEST(Percentile, UnsortedInput) {
  const std::vector<double> xs{50, 15, 40, 20, 35};
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 35.0);
}

TEST(Percentile, OutOfRangeThrows) {
  const std::vector<double> xs{1.0};
  EXPECT_THROW(percentile(xs, -1.0), ContractViolation);
  EXPECT_THROW(percentile(xs, 101.0), ContractViolation);
}

TEST(Summarize, AllFieldsConsistent) {
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(i);
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.p50, 50.0);
  EXPECT_DOUBLE_EQ(s.p90, 90.0);
  EXPECT_DOUBLE_EQ(s.p99, 99.0);
}

TEST(Summarize, EmptySample) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Gini, PerfectEqualityIsZero) {
  const std::vector<double> xs{5, 5, 5, 5, 5};
  EXPECT_NEAR(giniCoefficient(xs), 0.0, 1e-12);
}

TEST(Gini, MaximalInequalityApproachesOne) {
  std::vector<double> xs(100, 0.0);
  xs.back() = 1000.0;
  EXPECT_NEAR(giniCoefficient(xs), 0.99, 1e-9);
}

TEST(Gini, KnownValue) {
  // For {1, 2, 3}: G = (2*(1*1+2*2+3*3))/(3*6) - 4/3 = 28/18 - 4/3 = 2/9.
  const std::vector<double> xs{1, 2, 3};
  EXPECT_NEAR(giniCoefficient(xs), 2.0 / 9.0, 1e-12);
}

TEST(Gini, DegenerateInputs) {
  EXPECT_EQ(giniCoefficient({}), 0.0);
  const std::vector<double> one{4.0};
  EXPECT_EQ(giniCoefficient(one), 0.0);
  const std::vector<double> zeros{0.0, 0.0, 0.0};
  EXPECT_EQ(giniCoefficient(zeros), 0.0);
}

TEST(Gini, NegativeValueThrows) {
  const std::vector<double> xs{1.0, -2.0};
  EXPECT_THROW(giniCoefficient(xs), ContractViolation);
}

TEST(Mean, Basics) {
  EXPECT_EQ(mean({}), 0.0);
  const std::vector<double> xs{1.0, 2.0, 6.0};
  EXPECT_DOUBLE_EQ(mean(xs), 3.0);
}

TEST(ToDoubles, ConvertsBothWidths) {
  const std::vector<std::uint64_t> xs64{1, 2, 3};
  const std::vector<std::uint32_t> xs32{4, 5};
  EXPECT_EQ(toDoubles(xs64), (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_EQ(toDoubles(xs32), (std::vector<double>{4.0, 5.0}));
}

}  // namespace
}  // namespace vs07
