// Determinism tests for the discrete-event scheduler: (dueTick,
// priority, seq) ordering, tie-breaks, re-entrant scheduling, the seq
// cutoff DelayedTransport leans on, and bit-identical replay.
#include "common/event_queue.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/expect.hpp"
#include "common/rng.hpp"

namespace vs07 {
namespace {

TEST(EventQueue, ExecutesInDueTickOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule(3, 0, [&] { order.push_back(3); });
  queue.schedule(1, 0, [&] { order.push_back(1); });
  queue.schedule(2, 0, [&] { order.push_back(2); });
  queue.advanceTo(5);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.now(), 5u);
}

TEST(EventQueue, PriorityBreaksTiesWithinATick) {
  EventQueue queue;
  std::vector<std::string> order;
  queue.schedule(1, 2, [&] { order.push_back("control"); });
  queue.schedule(1, 1, [&] { order.push_back("timer"); });
  queue.schedule(1, 0, [&] { order.push_back("delivery"); });
  queue.advanceTo(1);
  EXPECT_EQ(order,
            (std::vector<std::string>{"delivery", "timer", "control"}));
}

TEST(EventQueue, SeqMakesEqualKeysFifo) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    queue.schedule(4, 1, [&order, i] { order.push_back(i); });
  queue.advanceTo(4);
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, OnlyDueEventsRun) {
  EventQueue queue;
  int ran = 0;
  queue.schedule(2, 0, [&] { ++ran; });
  queue.schedule(7, 0, [&] { ++ran; });
  queue.advanceTo(2);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(queue.size(), 1u);
  EXPECT_EQ(queue.nextDueTick(), 7u);
}

TEST(EventQueue, ReentrantSchedulingAtCurrentTickRunsInSameAdvance) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule(1, 1, [&] {
    order.push_back(1);
    // Same tick, delivery priority (0): runs in this advance and jumps
    // ahead of the still pending timer event (priority 1) — within a
    // tick, deliveries always land before timers fire.
    queue.schedule(1, 0, [&] { order.push_back(3); });
  });
  queue.schedule(1, 1, [&] { order.push_back(2); });
  queue.advanceTo(1);
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));

  // Same-priority re-entrant events instead queue behind pending ones.
  order.clear();
  queue.schedule(2, 1, [&] {
    order.push_back(1);
    queue.schedule(2, 1, [&] { order.push_back(3); });
  });
  queue.schedule(2, 1, [&] { order.push_back(2); });
  queue.advanceTo(2);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SeqCutoffDefersReentrantEvents) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule(1, 0, [&] {
    order.push_back(1);
    queue.schedule(1, 0, [&] { order.push_back(2); });
  });
  queue.advanceTo(1, queue.nextSeq());
  EXPECT_EQ(order, (std::vector<int>{1}));  // the re-entrant event waits
  queue.advanceTo(2, queue.nextSeq());
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, DrainAllRunsEverythingAndAdvancesNow) {
  EventQueue queue;
  int ran = 0;
  queue.schedule(100, 0, [&] { ++ran; });
  queue.schedule(7, 0, [&] { ++ran; });
  queue.drainAll();
  EXPECT_EQ(ran, 2);
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.now(), 100u);
}

TEST(EventQueue, NullActionRejected) {
  EventQueue queue;
  EXPECT_THROW(queue.schedule(1, 0, nullptr), ContractViolation);
}

TEST(EventQueue, NextDueTickRequiresPendingEvents) {
  EventQueue queue;
  EXPECT_THROW(queue.nextDueTick(), ContractViolation);
}

/// Replay determinism: a randomised schedule (random due ticks and
/// priorities, re-entrant inserts) executes in exactly the same order
/// every time — the property every simulation suite builds on.
TEST(EventQueue, RandomisedScheduleReplaysBitIdentically) {
  auto run = [](std::uint64_t seed) {
    Rng rng(seed);
    EventQueue queue;
    std::vector<std::uint64_t> order;
    for (std::uint64_t i = 0; i < 500; ++i) {
      const auto due = rng.below(50);
      const auto priority = static_cast<std::uint8_t>(rng.below(3));
      queue.schedule(due, priority, [&order, &queue, &rng, i] {
        order.push_back(i);
        if (order.size() % 7 == 0)  // occasional re-entrant insert
          queue.schedule(queue.now() + rng.below(5), 0,
                         [&order, i] { order.push_back(1000 + i); });
      });
    }
    queue.drainAll();  // re-entrant tails drain in the same call
    return order;
  };
  const auto a = run(42);
  const auto b = run(42);
  const auto c = run(43);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // different seed: almost surely a different order
}

}  // namespace
}  // namespace vs07
