// Property tests for deriveStreamSeed, the (seed, lane, index) → RNG
// stream derivation the parallel experiment runners build on. Two
// properties matter:
//
//   * distinctness — across a large sampled grid of (seed, lane, index)
//     identities, no two derive the same stream seed (a collision would
//     silently correlate two supposedly independent cells);
//   * locality — a cell's stream depends only on its own identity, so
//     the presence, count, or ordering of other cells cannot change it.
#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_set>
#include <vector>

namespace vs07 {
namespace {

TEST(DeriveStreamSeed, IsPureAndConstexpr) {
  static_assert(deriveStreamSeed(1, 2, 3) == deriveStreamSeed(1, 2, 3));
  EXPECT_EQ(deriveStreamSeed(42, 7, 9), deriveStreamSeed(42, 7, 9));
}

TEST(DeriveStreamSeed, NoCollisionsOverDenseGrid) {
  // Every (lane, index) cell of several root seeds, including adversarial
  // roots (0, all-ones, near-duplicates).
  const std::vector<std::uint64_t> seeds = {
      0, 1, 2, 42, 43, 0xFFFFFFFFFFFFFFFFULL, 0x8000000000000000ULL,
      0xDEADBEEFCAFEBABEULL};
  std::unordered_set<std::uint64_t> seen;
  std::size_t total = 0;
  for (const std::uint64_t seed : seeds)
    for (std::uint64_t lane = 0; lane < 32; ++lane)
      for (std::uint64_t index = 0; index < 32; ++index) {
        EXPECT_TRUE(seen.insert(deriveStreamSeed(seed, lane, index)).second)
            << "collision at seed=" << seed << " lane=" << lane
            << " index=" << index;
        ++total;
      }
  EXPECT_EQ(seen.size(), total);
}

TEST(DeriveStreamSeed, NoCollisionsOverRandomSample) {
  Rng rng(2024);
  std::unordered_set<std::uint64_t> seen;
  for (int i = 0; i < 50'000; ++i) {
    const auto derived = deriveStreamSeed(rng(), rng.below(1 << 20),
                                          rng.below(1 << 20));
    EXPECT_TRUE(seen.insert(derived).second) << "collision at sample " << i;
  }
}

TEST(DeriveStreamSeed, LaneAndIndexAreNotInterchangeable) {
  // (lane, index) is an ordered identity; swapping the parts must land
  // in a different stream.
  EXPECT_NE(deriveStreamSeed(42, 3, 8), deriveStreamSeed(42, 8, 3));
  EXPECT_NE(deriveStreamSeed(42, 0, 1), deriveStreamSeed(42, 1, 0));
}

TEST(DeriveStreamSeed, StreamUnchangedByOtherCells) {
  // Locality restated at the Rng level: the stream of cell (5, 2) is a
  // pure function of its identity. Drawing any number of values from
  // other cells' streams (in any order) cannot perturb it.
  const auto seedA = deriveStreamSeed(42, 5, 2);
  Rng direct(seedA);
  const auto expected0 = direct();
  const auto expected1 = direct();

  // "Run" unrelated cells first, in two different orders.
  for (const std::uint64_t lane : {9u, 1u, 7u}) {
    Rng other(deriveStreamSeed(42, lane, 0));
    other();
    other();
  }
  Rng after(deriveStreamSeed(42, 5, 2));
  EXPECT_EQ(after(), expected0);
  EXPECT_EQ(after(), expected1);
}

TEST(DeriveStreamSeed, DistinctRootSeedsDecorrelate) {
  // The same cell under different root seeds gets a different stream.
  EXPECT_NE(deriveStreamSeed(1, 4, 4), deriveStreamSeed(2, 4, 4));
  EXPECT_NE(deriveStreamSeed(0, 0, 0), deriveStreamSeed(1, 0, 0));
}

}  // namespace
}  // namespace vs07
