// TaskPool unit tests: full coverage of the index space at any thread
// count, reuse across jobs, inline single-thread mode, and exception
// propagation out of worker lanes.
#include "common/task_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace vs07 {
namespace {

TEST(TaskPool, RunsEveryIndexExactlyOnce) {
  for (const std::uint32_t threads : {1u, 2u, 4u, 8u}) {
    TaskPool pool(threads);
    std::vector<std::atomic<int>> hits(257);
    pool.parallelFor(hits.size(),
                     [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
  }
}

TEST(TaskPool, ResultsByIndexAreOrderIndependent) {
  TaskPool pool(4);
  std::vector<std::uint64_t> out(1000);
  pool.parallelFor(out.size(), [&](std::size_t i) { out[i] = i * i; });
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(TaskPool, ReusableAcrossJobs) {
  TaskPool pool(3);
  std::atomic<std::uint64_t> sum{0};
  for (int job = 0; job < 20; ++job)
    pool.parallelFor(50, [&](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 20u * (49u * 50u / 2u));
}

TEST(TaskPool, ZeroAndOneCountAreFine) {
  TaskPool pool(4);
  int calls = 0;
  pool.parallelFor(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallelFor(1, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(TaskPool, SingleThreadRunsInline) {
  TaskPool pool(1);
  EXPECT_EQ(pool.threadCount(), 1u);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> ids(8);
  pool.parallelFor(ids.size(), [&](std::size_t i) {
    ids[i] = std::this_thread::get_id();
  });
  for (const auto id : ids) EXPECT_EQ(id, caller);
}

TEST(TaskPool, PropagatesExceptions) {
  for (const std::uint32_t threads : {1u, 4u}) {
    TaskPool pool(threads);
    EXPECT_THROW(pool.parallelFor(100,
                                  [&](std::size_t i) {
                                    if (i == 37)
                                      throw std::runtime_error("boom");
                                  }),
                 std::runtime_error);
    // The pool survives a throwing job.
    std::atomic<int> count{0};
    pool.parallelFor(10, [&](std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 10);
  }
}

TEST(TaskPool, DefaultThreadsIsPositive) {
  EXPECT_GE(TaskPool::defaultThreads(), 1u);
  TaskPool pool(0);  // 0 = hardware concurrency
  EXPECT_GE(pool.threadCount(), 1u);
}

}  // namespace
}  // namespace vs07
