#include "common/cli.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace vs07 {
namespace {

CliParser makeParser() {
  CliParser parser("test program");
  parser.option("nodes", "population size")
      .option("rate", "churn rate")
      .option("paper", "full scale", /*takesValue=*/false)
      .option("threads", "worker threads")
      .option("label", "free text");
  return parser;
}

std::optional<CliArgs> parse(std::initializer_list<const char*> argv) {
  std::vector<const char*> args{"prog"};
  args.insert(args.end(), argv.begin(), argv.end());
  return makeParser().parse(static_cast<int>(args.size()), args.data());
}

TEST(Cli, SeparateValueForm) {
  const auto args = parse({"--nodes", "500"});
  ASSERT_TRUE(args.has_value());
  EXPECT_EQ(args->getUint("nodes", 0), 500u);
}

TEST(Cli, EqualsValueForm) {
  const auto args = parse({"--nodes=250"});
  ASSERT_TRUE(args.has_value());
  EXPECT_EQ(args->getUint("nodes", 0), 250u);
}

TEST(Cli, BooleanFlag) {
  const auto args = parse({"--paper"});
  ASSERT_TRUE(args.has_value());
  EXPECT_TRUE(args->getBool("paper"));
  EXPECT_FALSE(args->getBool("missing"));
}

TEST(Cli, BooleanWithExplicitValue) {
  EXPECT_TRUE(parse({"--paper=true"})->getBool("paper"));
  EXPECT_FALSE(parse({"--paper=false"})->getBool("paper"));
  // Junk is rejected at parse time, before the experiment starts.
  EXPECT_THROW(parse({"--paper=banana"}), std::invalid_argument);
}

TEST(Cli, DefaultsWhenAbsent) {
  const auto args = parse({});
  ASSERT_TRUE(args.has_value());
  EXPECT_EQ(args->getUint("nodes", 77), 77u);
  EXPECT_DOUBLE_EQ(args->getDouble("rate", 0.5), 0.5);
  EXPECT_EQ(args->getInt("nodes", -4), -4);
}

TEST(Cli, DoubleParsing) {
  const auto args = parse({"--rate", "0.002"});
  EXPECT_DOUBLE_EQ(args->getDouble("rate", 1.0), 0.002);
}

TEST(Cli, NonNumericValuesRejectedStrictly) {
  // Anything short of a complete number is an error, not a silent
  // truncation: "12abc" must not run a 12-node experiment.
  EXPECT_THROW(parse({"--nodes", "abc"})->getUint("nodes", 0),
               std::invalid_argument);
  EXPECT_THROW(parse({"--nodes", "12abc"})->getUint("nodes", 0),
               std::invalid_argument);
  EXPECT_THROW(parse({"--nodes", "-5"})->getUint("nodes", 0),
               std::invalid_argument);
  EXPECT_THROW(parse({"--nodes", ""})->getUint("nodes", 0),
               std::invalid_argument);
  EXPECT_THROW(parse({"--rate", "0.1x"})->getDouble("rate", 0),
               std::invalid_argument);
}

TEST(Cli, NonNumericErrorNamesTheOption) {
  try {
    parse({"--threads", "two"})->getPositiveUint("threads", 1);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("--threads"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("two"), std::string::npos);
  }
}

TEST(Cli, PositiveUintRejectsZero) {
  // "--threads 0" must not spin up an experiment with no workers.
  EXPECT_THROW(parse({"--threads", "0"})->getPositiveUint("threads", 4),
               std::invalid_argument);
  EXPECT_THROW(parse({"--threads=0"})->getPositiveUint("threads", 4),
               std::invalid_argument);
}

TEST(Cli, PositiveUintAcceptsNormalValues) {
  EXPECT_EQ(parse({"--threads", "8"})->getPositiveUint("threads", 1), 8u);
  // Absent option falls back (the bench default: hardware concurrency).
  EXPECT_EQ(parse({})->getPositiveUint("threads", 6), 6u);
}

TEST(Cli, UnknownOptionThrows) {
  EXPECT_THROW(parse({"--bogus", "1"}), std::invalid_argument);
}

TEST(Cli, UnknownOptionIsReportedByName) {
  // A typo must be named in the error, never silently ignored.
  try {
    parse({"--bogus", "1"});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("--bogus"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("--help"), std::string::npos);
  }
}

TEST(Cli, UnknownOptionSuggestsClosestRegisteredOption) {
  try {
    parse({"--node", "5"});  // typo of --nodes
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("did you mean --nodes?"),
              std::string::npos);
  }
}

TEST(Cli, UnknownOptionFarFromEverythingGetsNoSuggestion) {
  try {
    parse({"--zzzzzzzzz"});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_EQ(std::string(e.what()).find("did you mean"), std::string::npos);
  }
}

TEST(Cli, UnknownFlagInEqualsFormRejected) {
  EXPECT_THROW(parse({"--bogus=7"}), std::invalid_argument);
}

TEST(Cli, MissingValueThrows) {
  EXPECT_THROW(parse({"--nodes"}), std::invalid_argument);
}

TEST(Cli, PositionalArgumentRejected) {
  EXPECT_THROW(parse({"stray"}), std::invalid_argument);
}

TEST(Cli, HasAndGet) {
  const auto args = parse({"--label", "hello world"});
  EXPECT_TRUE(args->has("label"));
  EXPECT_EQ(args->get("label").value(), "hello world");
  EXPECT_FALSE(args->has("rate"));
  EXPECT_FALSE(args->get("rate").has_value());
}

// -- getChoice: enumerated flags ----------------------------------------

const std::vector<std::string> kTimingChoices = {"cyclesync", "jittered",
                                                 "latency"};

TEST(Cli, GetChoiceMatchesExactValue) {
  CliParser parser("p");
  parser.option("timing", "timing model");
  std::vector<const char*> argv{"prog", "--timing", "jittered"};
  const auto args =
      parser.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(args->getChoice("timing", kTimingChoices, 0), 1u);
}

TEST(Cli, GetChoiceFallsBackWhenAbsent) {
  CliParser parser("p");
  parser.option("timing", "timing model");
  std::vector<const char*> argv{"prog"};
  const auto args =
      parser.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(args->getChoice("timing", kTimingChoices, 2), 2u);
}

TEST(Cli, GetChoiceTypoSuggestsClosestValue) {
  CliParser parser("p");
  parser.option("timing", "timing model");
  std::vector<const char*> argv{"prog", "--timing", "cyclsync"};
  const auto args =
      parser.parse(static_cast<int>(argv.size()), argv.data());
  try {
    args->getChoice("timing", kTimingChoices, 0);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("--timing"), std::string::npos);
    EXPECT_NE(what.find("did you mean 'cyclesync'?"), std::string::npos);
  }
}

TEST(Cli, GetChoiceFarValueListsChoicesWithoutSuggestion) {
  CliParser parser("p");
  parser.option("timing", "timing model");
  std::vector<const char*> argv{"prog", "--timing", "zzzzzzzzzz"};
  const auto args =
      parser.parse(static_cast<int>(argv.size()), argv.data());
  try {
    args->getChoice("timing", kTimingChoices, 0);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_EQ(what.find("did you mean"), std::string::npos);
    EXPECT_NE(what.find("cyclesync jittered latency"), std::string::npos);
  }
}

// The --search vocabulary of bench/search_workload, exercising the
// did-you-mean rules the timing choices never hit: case folding and
// unique-prefix completion.
const std::vector<std::string> kSearchChoices = {"ttlgossip", "flood",
                                                 "randomwalk"};

std::string searchChoiceFailure(const char* value) {
  CliParser parser("p");
  parser.option("search", "search strategy");
  std::vector<const char*> argv{"prog", "--search", value};
  const auto args = parser.parse(static_cast<int>(argv.size()), argv.data());
  try {
    args->getChoice("search", kSearchChoices, 0);
    ADD_FAILURE() << "expected std::invalid_argument for '" << value << "'";
    return {};
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
}

TEST(Cli, GetChoiceSuggestionIsCaseInsensitive) {
  // Shouting the right value is a near-miss, not an unrecognisable one.
  EXPECT_NE(searchChoiceFailure("FLOOD").find("did you mean 'flood'?"),
            std::string::npos);
  EXPECT_NE(searchChoiceFailure("RandomWalk").find("did you mean "
                                                   "'randomwalk'?"),
            std::string::npos);
}

TEST(Cli, GetChoiceCompletesUniquePrefixes) {
  // "rand" is 6 edits from "randomwalk" — only prefix completion can
  // rescue it. Ambiguous or too-short prefixes must stay suggestion-free.
  EXPECT_NE(searchChoiceFailure("rand").find("did you mean 'randomwalk'?"),
            std::string::npos);
  EXPECT_NE(searchChoiceFailure("ttl").find("did you mean 'ttlgossip'?"),
            std::string::npos);
  EXPECT_EQ(searchChoiceFailure("xyzzyxplugh").find("did you mean"),
            std::string::npos);
}

TEST(Cli, GetChoiceStillRejectsNearMissesLoudly) {
  // The suggestion never silently falls back: the error still names the
  // option and lists the full vocabulary.
  const auto what = searchChoiceFailure("flod");
  EXPECT_NE(what.find("--search"), std::string::npos);
  EXPECT_NE(what.find("did you mean 'flood'?"), std::string::npos);
  EXPECT_NE(what.find("ttlgossip flood randomwalk"), std::string::npos);
}

TEST(Cli, GetChoiceRejectsBadFallback) {
  CliParser parser("p");
  parser.option("timing", "timing model");
  std::vector<const char*> argv{"prog"};
  const auto args =
      parser.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_THROW(args->getChoice("timing", kTimingChoices, 3),
               std::invalid_argument);
  EXPECT_THROW(args->getChoice("timing", {}, 0), std::invalid_argument);
}

// -- getHostPort (the runtime's --listen/--seed-peer grammar) ------------

std::optional<CliArgs> parseListen(const char* value) {
  CliParser parser("p");
  parser.option("listen", "host:port");
  std::vector<const char*> argv{"prog", "--listen", value};
  return parser.parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, GetHostPortParsesHostAndPort) {
  const auto args = parseListen("127.0.0.1:9000");
  const HostPort hp = args->getHostPort("listen", {"", 0});
  EXPECT_EQ(hp, (HostPort{"127.0.0.1", 9000}));
}

TEST(Cli, GetHostPortReturnsFallbackWhenAbsent) {
  CliParser parser("p");
  parser.option("listen", "host:port");
  std::vector<const char*> argv{"prog"};
  const auto args =
      parser.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(args->getHostPort("listen", {"0.0.0.0", 0}),
            (HostPort{"0.0.0.0", 0}));
}

TEST(Cli, GetHostPortAcceptsPortZeroAndMax) {
  EXPECT_EQ(parseListen("0.0.0.0:0")->getHostPort("listen", {"", 1}).port, 0);
  EXPECT_EQ(parseListen("h:65535")->getHostPort("listen", {"", 1}).port,
            65535);
}

TEST(Cli, GetHostPortSplitsOnLastColon) {
  // Future-proofing for bracketed IPv6: the port is after the last colon.
  const HostPort hp =
      parseListen("[::1]:8080")->getHostPort("listen", {"", 0});
  EXPECT_EQ(hp.host, "[::1]");
  EXPECT_EQ(hp.port, 8080);
}

std::string hostPortFailure(const char* value) {
  try {
    (void)parseListen(value)->getHostPort("listen", {"", 0});
  } catch (const std::invalid_argument& error) {
    return error.what();
  }
  ADD_FAILURE() << "expected std::invalid_argument for " << value;
  return "";
}

TEST(Cli, GetHostPortDiagnosesLonePort) {
  EXPECT_NE(hostPortFailure("9000").find("did you mean '127.0.0.1:9000'"),
            std::string::npos);
}

TEST(Cli, GetHostPortDiagnosesMissingPort) {
  EXPECT_NE(hostPortFailure("myhost").find("did you mean 'myhost:9000'"),
            std::string::npos);
  EXPECT_NE(hostPortFailure("myhost:").find("empty port"),
            std::string::npos);
}

TEST(Cli, GetHostPortRejectsBadPorts) {
  EXPECT_NE(hostPortFailure("h:abc").find("not a number"),
            std::string::npos);
  EXPECT_NE(hostPortFailure("h:99999").find("above 65535"),
            std::string::npos);
  EXPECT_NE(hostPortFailure(":9000").find("empty host"), std::string::npos);
}

TEST(Cli, UsageListsOptions) {
  const auto usage = makeParser().usage("prog");
  EXPECT_NE(usage.find("--nodes"), std::string::npos);
  EXPECT_NE(usage.find("--paper"), std::string::npos);
  EXPECT_NE(usage.find("--help"), std::string::npos);
}

}  // namespace
}  // namespace vs07
