#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace vs07 {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDifferentStreams) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LT(equal, 3);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  const auto first = a();
  a();
  a.reseed(7);
  EXPECT_EQ(a(), first);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(99);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(13);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100'000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(kBuckets)];
  for (const int c : counts) {
    EXPECT_GT(c, kDraws / kBuckets * 0.9);
    EXPECT_LT(c, kDraws / kBuckets * 1.1);
  }
}

TEST(Rng, BetweenInclusiveBounds) {
  Rng rng(17);
  bool sawLo = false;
  bool sawHi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.between(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    sawLo |= v == -3;
    sawHi |= v == 3;
  }
  EXPECT_TRUE(sawLo);
  EXPECT_TRUE(sawHi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(19);
  double sum = 0.0;
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10'000, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(29);
  int hits = 0;
  constexpr int kTrials = 50'000;
  for (int i = 0; i < kTrials; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, 0.3, 0.02);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(31);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto shuffled = v;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(37);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[i] = i;
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // probability of identity is ~1/50!
}

TEST(Rng, SampleIndicesDistinctAndInRange) {
  Rng rng(41);
  for (int trial = 0; trial < 100; ++trial) {
    const auto sample = rng.sampleIndices(20, 7);
    ASSERT_EQ(sample.size(), 7u);
    std::set<std::size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 7u);
    for (const auto idx : sample) EXPECT_LT(idx, 20u);
  }
}

TEST(Rng, SampleIndicesWhenKExceedsN) {
  Rng rng(43);
  const auto sample = rng.sampleIndices(5, 100);
  EXPECT_EQ(sample.size(), 5u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(47);
  Rng child = parent.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (parent() == child());
  EXPECT_LT(equal, 3);
}

TEST(Mix64, DeterministicAndSpreading) {
  EXPECT_EQ(mix64(42), mix64(42));
  EXPECT_NE(mix64(42), mix64(43));
  // Low-entropy inputs should produce high-entropy outputs: all four
  // 16-bit quadrants of mix64(small) should be nonzero for most inputs.
  int degenerate = 0;
  for (std::uint64_t x = 0; x < 100; ++x) {
    const auto h = mix64(x);
    if ((h & 0xFFFF) == 0 || (h >> 48) == 0) ++degenerate;
  }
  EXPECT_LT(degenerate, 3);
}

}  // namespace
}  // namespace vs07
