// Unit tests for the minimal ordered JSON writer: escaping, number
// formatting (shortest round-trip doubles, NaN/Inf rejection), nesting,
// and key-order stability.
#include "common/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>

#include "common/expect.hpp"

namespace vs07 {
namespace {

TEST(Json, Scalars) {
  EXPECT_EQ(Json().dump(), "null");
  EXPECT_EQ(Json(nullptr).dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json(0).dump(), "0");
  EXPECT_EQ(Json(-17).dump(), "-17");
  EXPECT_EQ(Json(std::uint64_t{18446744073709551615ULL}).dump(),
            "18446744073709551615");
  EXPECT_EQ(Json(std::int64_t{-9223372036854775807LL}).dump(),
            "-9223372036854775807");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(Json("say \"hi\"").dump(), "\"say \\\"hi\\\"\"");
  EXPECT_EQ(Json("back\\slash").dump(), "\"back\\\\slash\"");
  EXPECT_EQ(Json("line\nbreak\ttab\rret").dump(),
            "\"line\\nbreak\\ttab\\rret\"");
  EXPECT_EQ(Json(std::string("\b\f")).dump(), "\"\\b\\f\"");
  // Control characters without shorthand use \u00XX.
  EXPECT_EQ(Json(std::string("\x01\x1f")).dump(), "\"\\u0001\\u001f\"");
  // UTF-8 passes through byte-for-byte.
  EXPECT_EQ(Json("miss‰ — naïve").dump(), "\"miss‰ — naïve\"");
}

TEST(Json, DoubleFormattingRoundTrips) {
  for (const double value :
       {0.0, -0.0, 1.0, -1.0, 0.1, 1.0 / 3.0, 96.92, 1e-300, -1e300,
        6.02214076e23, std::numeric_limits<double>::min(),
        std::numeric_limits<double>::max(),
        std::numeric_limits<double>::denorm_min()}) {
    const std::string text = Json::formatDouble(value);
    const double parsed = std::strtod(text.c_str(), nullptr);
    EXPECT_EQ(std::signbit(parsed), std::signbit(value)) << text;
    EXPECT_EQ(parsed, value) << text;
  }
}

TEST(Json, ZeroAndNegativeZero) {
  EXPECT_EQ(Json(0.0).dump(), "0");
  EXPECT_EQ(Json(-0.0).dump(), "-0");
}

TEST(Json, NanAndInfinityRejected) {
  EXPECT_THROW(Json(std::numeric_limits<double>::quiet_NaN()),
               ContractViolation);
  EXPECT_THROW(Json(std::numeric_limits<double>::infinity()),
               ContractViolation);
  EXPECT_THROW(Json(-std::numeric_limits<double>::infinity()),
               ContractViolation);
}

TEST(Json, ArraysAndNesting) {
  Json array = Json::array();
  array.push(1).push("two").push(Json::array().push(3.5)).push(nullptr);
  EXPECT_EQ(array.dump(), "[1,\"two\",[3.5],null]");
  EXPECT_EQ(array.size(), 4u);
  EXPECT_EQ(Json::array().dump(), "[]");
}

TEST(Json, ObjectsKeepInsertionOrder) {
  Json object = Json::object();
  object.set("zulu", 1).set("alpha", 2).set("mike", 3);
  EXPECT_EQ(object.dump(), "{\"zulu\":1,\"alpha\":2,\"mike\":3}");
}

TEST(Json, SetExistingKeyReplacesInPlace) {
  Json object = Json::object();
  object.set("b", 1).set("a", 2);
  object.set("b", 99);
  EXPECT_EQ(object.dump(), "{\"b\":99,\"a\":2}");
  EXPECT_EQ(object.size(), 2u);
}

TEST(Json, NestedComposition) {
  Json root = Json::object();
  root.set("scale",
           Json::object().set("nodes", 10'000).set("runs", 100))
      .set("series", Json::array().push(Json::object()
                                            .set("label", "randcast")
                                            .set("points",
                                                 Json::array().push(1.5))));
  EXPECT_EQ(root.dump(),
            "{\"scale\":{\"nodes\":10000,\"runs\":100},"
            "\"series\":[{\"label\":\"randcast\",\"points\":[1.5]}]}");
}

TEST(Json, PrettyPrinting) {
  Json root = Json::object();
  root.set("a", 1).set("b", Json::array().push(2));
  EXPECT_EQ(root.dump(2),
            "{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}");
}

TEST(Json, PushOnNonArrayRejected) {
  Json object = Json::object();
  EXPECT_THROW(object.push(1), ContractViolation);
  Json scalar(1);
  EXPECT_THROW(scalar.push(1), ContractViolation);
}

TEST(Json, SetOnNonObjectRejected) {
  Json array = Json::array();
  EXPECT_THROW(array.set("k", 1), ContractViolation);
}

TEST(Json, DumpIsStableAcrossCalls) {
  Json object = Json::object();
  object.set("x", 0.1).set("y", Json::array().push(-0.0));
  const auto first = object.dump();
  EXPECT_EQ(object.dump(), first);
  EXPECT_EQ(first, "{\"x\":0.1,\"y\":[-0]}");
}

}  // namespace
}  // namespace vs07
