#include "common/table.hpp"

#include <gtest/gtest.h>

#include "common/expect.hpp"

namespace vs07 {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t({"fanout", "miss"});
  t.addRow({"2", "10.81"});
  t.addRow({"10", "0.01"});
  const auto text = t.render();
  EXPECT_NE(text.find("fanout"), std::string::npos);
  EXPECT_NE(text.find("10.81"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, ColumnsAligned) {
  Table t({"a", "b"});
  t.addRow({"xxxx", "y"});
  const auto text = t.render();
  // Header line must be padded to the width of the widest cell.
  const auto firstLine = text.substr(0, text.find('\n'));
  EXPECT_EQ(firstLine.size(), std::string("xxxx  b").size());
}

TEST(Table, RowArityMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.addRow({"only-one"}), ContractViolation);
}

TEST(Table, EmptyHeaderThrows) {
  EXPECT_THROW(Table({}), ContractViolation);
}

TEST(Table, CsvOutput) {
  Table t({"x", "y"});
  t.addRow({"1", "2"});
  EXPECT_EQ(t.renderCsv(), "x,y\n1,2\n");
}

TEST(Fmt, FixedPrecision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(1.0, 0), "1");
}

TEST(FmtLog, SwitchesToScientificForSmallValues) {
  EXPECT_EQ(fmtLog(0.0), "0");
  EXPECT_EQ(fmtLog(12.5), "12.5000");
  const auto tiny = fmtLog(0.0001234);
  EXPECT_NE(tiny.find('e'), std::string::npos);
}

}  // namespace
}  // namespace vs07
