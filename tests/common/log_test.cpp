#include "common/log.hpp"

#include <gtest/gtest.h>

namespace vs07 {
namespace {

/// RAII guard restoring the global log level after each test.
class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(logLevel()) {}
  ~LogLevelGuard() { setLogLevel(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, LevelRoundTrips) {
  LogLevelGuard guard;
  for (const auto level : {LogLevel::Debug, LogLevel::Info, LogLevel::Warn,
                           LogLevel::Error, LogLevel::Off}) {
    setLogLevel(level);
    EXPECT_EQ(logLevel(), level);
  }
}

TEST(Log, EmittingBelowThresholdIsSafe) {
  LogLevelGuard guard;
  setLogLevel(LogLevel::Off);
  // Nothing observable to assert on stderr portably; the contract is
  // simply that suppressed logging does not crash or allocate the
  // message path lazily.
  logDebug("dropped");
  logInfo("dropped");
  logWarn("dropped");
  logError("dropped");
}

TEST(Log, EmittingAboveThresholdIsSafe) {
  LogLevelGuard guard;
  setLogLevel(LogLevel::Debug);
  logDebug("visible debug");
  logError("visible error");
}

}  // namespace
}  // namespace vs07
