#include "common/histogram.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace vs07 {
namespace {

TEST(CountHistogram, EmptyState) {
  CountHistogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.count(5), 0u);
  EXPECT_EQ(h.maxValue(), 0u);
}

TEST(CountHistogram, AddAndCount) {
  CountHistogram h;
  h.add(3);
  h.add(3);
  h.add(10, 5);
  EXPECT_EQ(h.count(3), 2u);
  EXPECT_EQ(h.count(10), 5u);
  EXPECT_EQ(h.count(4), 0u);
  EXPECT_EQ(h.total(), 7u);
  EXPECT_EQ(h.maxValue(), 10u);
}

TEST(CountHistogram, ZeroWeightIsNoop) {
  CountHistogram h;
  h.add(1, 0);
  EXPECT_TRUE(h.empty());
}

TEST(CountHistogram, MergeSumsCounts) {
  CountHistogram a;
  a.add(1, 2);
  a.add(2, 3);
  CountHistogram b;
  b.add(2, 1);
  b.add(5, 4);
  a.merge(b);
  EXPECT_EQ(a.count(1), 2u);
  EXPECT_EQ(a.count(2), 4u);
  EXPECT_EQ(a.count(5), 4u);
  EXPECT_EQ(a.total(), 10u);
}

TEST(CountHistogram, MergeAllEqualsStreamingWhole) {
  // Integer counts: folding per-shard histograms in index order must be
  // *exactly* the histogram of all samples streamed into one — and the
  // fold must be order-insensitive too (commutative on integers).
  std::vector<CountHistogram> parts(4);
  CountHistogram whole;
  for (std::uint64_t i = 0; i < 200; ++i) {
    const std::uint64_t value = (i * 37) % 23;
    whole.add(value);
    parts[i % parts.size()].add(value);
  }
  const CountHistogram merged = mergeAll(parts);
  EXPECT_EQ(merged.total(), whole.total());
  EXPECT_EQ(merged.sorted(), whole.sorted());

  std::vector<CountHistogram> reversed(parts.rbegin(), parts.rend());
  EXPECT_EQ(mergeAll(reversed).sorted(), whole.sorted());
}

TEST(CountHistogram, MergeIsAssociative) {
  CountHistogram a, b, c;
  a.add(1, 2);
  b.add(1, 5);
  b.add(9, 1);
  c.add(9, 3);
  CountHistogram left = a;
  left.merge(b);
  left.merge(c);
  CountHistogram bc = b;
  bc.merge(c);
  CountHistogram right = a;
  right.merge(bc);
  EXPECT_EQ(left.sorted(), right.sorted());
  EXPECT_EQ(left.total(), right.total());
}

TEST(CountHistogram, MergeAllOfEmptySpanIsEmpty) {
  EXPECT_TRUE(mergeAll({}).empty());
}

TEST(CountHistogram, SortedAscending) {
  CountHistogram h;
  h.add(9);
  h.add(1);
  h.add(5);
  const auto pairs = h.sorted();
  ASSERT_EQ(pairs.size(), 3u);
  EXPECT_EQ(pairs[0].first, 1u);
  EXPECT_EQ(pairs[1].first, 5u);
  EXPECT_EQ(pairs[2].first, 9u);
}

TEST(LogBins, EmptyHistogram) {
  CountHistogram h;
  EXPECT_TRUE(logBins(h).empty());
}

TEST(LogBins, ZeroGetsDedicatedBin) {
  CountHistogram h;
  h.add(0, 7);
  h.add(1, 2);
  const auto bins = logBins(h);
  ASSERT_GE(bins.size(), 2u);
  EXPECT_EQ(bins[0].lo, 0u);
  EXPECT_EQ(bins[0].hi, 0u);
  EXPECT_EQ(bins[0].count, 7u);
  EXPECT_EQ(bins[1].lo, 1u);
}

TEST(LogBins, BinsDouble) {
  CountHistogram h;
  for (std::uint64_t v = 1; v <= 64; ++v) h.add(v);
  const auto bins = logBins(h, 2.0);
  // Bins: [1,1] [2,3] [4,7] [8,15] [16,31] [32,63] [64,127].
  ASSERT_EQ(bins.size(), 7u);
  EXPECT_EQ(bins[0].count, 1u);
  EXPECT_EQ(bins[1].count, 2u);
  EXPECT_EQ(bins[2].count, 4u);
  EXPECT_EQ(bins[3].count, 8u);
  EXPECT_EQ(bins[4].count, 16u);
  EXPECT_EQ(bins[5].count, 32u);
  EXPECT_EQ(bins[6].count, 1u);
}

TEST(LogBins, TotalPreserved) {
  CountHistogram h;
  h.add(0, 3);
  h.add(7, 2);
  h.add(1000, 9);
  std::uint64_t sum = 0;
  for (const auto& bin : logBins(h)) sum += bin.count;
  EXPECT_EQ(sum, h.total());
}

TEST(LogBins, TrailingEmptyBinsTrimmed) {
  CountHistogram h;
  h.add(1);
  const auto bins = logBins(h);
  ASSERT_EQ(bins.size(), 1u);
  EXPECT_EQ(bins[0].count, 1u);
}

TEST(RenderLogBins, ProducesOneLinePerBin) {
  CountHistogram h;
  h.add(1, 10);
  h.add(5, 3);
  const auto bins = logBins(h);
  const auto text = renderLogBins(bins, 20);
  std::size_t lines = 0;
  for (const char c : text) lines += c == '\n';
  EXPECT_EQ(lines, bins.size());
}

}  // namespace
}  // namespace vs07
