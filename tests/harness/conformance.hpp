// Cross-model conformance harness — the one table that every
// determinism suite in this repo runs against.
//
// The sharded engine's headline guarantee is that a run is a pure
// function of (scenario config, timing model): the worker count must
// never show through. Before this header existed each suite re-derived
// that contract with its own copy-pasted thread loops; now a suite
// states *what* it measures and the harness supplies the table —
//
//   {CycleSync, jittered, jittered+latency} x --engine-threads {1, 2, 8}
//
// — asserting the measurement bit-identical across thread counts within
// each timing model. (Across timing models results legitimately differ:
// jitter reorders gossip, latency delays it. The contract is per-model.)
//
// Header-only on purpose: the build globs every tests/**/*.cpp into its
// own gtest binary, so shared fixtures must live in headers.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/scenario.hpp"
#include "sim/timing.hpp"

namespace vs07::harness {

/// The worker counts every conformance table runs: sequential-equivalent
/// baseline, the smallest genuinely parallel count, and an
/// oversubscribed one (8 workers over a few hundred nodes).
inline const std::vector<std::uint32_t>& conformanceThreadCounts() {
  static const std::vector<std::uint32_t> kCounts = {1, 2, 8};
  return kCounts;
}

/// One row of the timing table: a CLI-vocabulary name plus the preset it
/// stands for ("latency" = jittered timers + uniform(1,4) link delays,
/// matching bench_common's timingPreset).
struct TimingCase {
  const char* name;
  sim::TimingConfig timing;
};

/// The three execution models the engines support. CycleSync+latency is
/// a contract violation (latency needs the windowed schedule), so the
/// table is exactly these three.
inline const std::vector<TimingCase>& conformanceTimings() {
  static const std::vector<TimingCase> kCases = {
      {"cyclesync", sim::TimingConfig::cycleSync()},
      {"jittered", sim::TimingConfig::jittered()},
      {"latency",
       sim::TimingConfig::jitteredLatency(sim::LatencyModel::uniform(1, 4))},
  };
  return kCases;
}

/// Core assertion: `makeRecord(threads)` must return the same value for
/// every worker count in `threads`. The record type needs operator==
/// (defaulted is fine) and, for readable failures, operator<<.
template <typename MakeRecord>
void expectIdenticalAcrossThreads(const std::vector<std::uint32_t>& threads,
                                  MakeRecord&& makeRecord) {
  ASSERT_GE(threads.size(), 2u) << "conformance needs a baseline + a rerun";
  const auto base = makeRecord(threads.front());
  for (std::size_t i = 1; i < threads.size(); ++i) {
    SCOPED_TRACE(::testing::Message()
                 << "threads=" << threads[i] << " (baseline threads="
                 << threads.front() << ")");
    EXPECT_EQ(base, makeRecord(threads[i]));
  }
}

/// Same, over the standard {1, 2, 8} table.
template <typename MakeRecord>
void expectIdenticalAcrossThreads(MakeRecord&& makeRecord) {
  expectIdenticalAcrossThreads(conformanceThreadCounts(),
                               std::forward<MakeRecord>(makeRecord));
}

/// Full table: for each timing model, build a scenario per worker count
/// with `build(threads, timing)` and require `measure(scenario)`
/// bit-identical across the counts.
template <typename Build, typename Measure>
void expectScenarioConformance(Build&& build, Measure&& measure) {
  for (const auto& timingCase : conformanceTimings()) {
    SCOPED_TRACE(::testing::Message() << "timing=" << timingCase.name);
    expectIdenticalAcrossThreads([&](std::uint32_t threads) {
      const auto scenario = build(threads, timingCase.timing);
      return measure(scenario);
    });
  }
}

/// Every view entry of every node, flattened in a fixed order — the
/// byte-level fingerprint of the whole overlay state. Shared by the
/// sharded-determinism and search-conformance suites.
inline std::vector<std::uint64_t> overlayFingerprint(
    const analysis::Scenario& scenario) {
  std::vector<std::uint64_t> out;
  const auto total = scenario.network().totalCreated();
  for (NodeId n = 0; n < total; ++n) {
    for (const auto& e : scenario.cyclon().view(n).entries()) {
      out.push_back(e.node);
      out.push_back(e.age);
      out.push_back(e.profile);
    }
    out.push_back(~0ULL);  // view separator
    for (const auto& e : scenario.vicinity().view(n).entries()) {
      out.push_back(e.node);
      out.push_back(e.age);
      out.push_back(e.profile);
    }
    out.push_back(~0ULL);
  }
  return out;
}

}  // namespace vs07::harness
