// Integration tests asserting the paper's qualitative claims at reduced
// scale. Each test mirrors one claim of §7; the benches reproduce the full
// figures, these tests keep the claims true under CI.
#include <gtest/gtest.h>

#include "analysis/experiment.hpp"
#include "analysis/graph_analysis.hpp"
#include "analysis/scenario.hpp"
#include "cast/session.hpp"
#include "cast/strategy.hpp"

namespace vs07 {
namespace {

using analysis::measureEffectiveness;
using analysis::Scenario;
using cast::Strategy;

Scenario buildStack(std::uint32_t nodes, std::uint64_t seed,
                    std::uint32_t rings = 1) {
  return Scenario::builder().nodes(nodes).seed(seed).rings(rings).build();
}

// §7.1 / Fig. 6: RINGCAST achieves complete dissemination for *any*
// fanout in a static failure-free network.
TEST(PaperStatic, RingCastCompleteAtEveryFanout) {
  const auto stack = buildStack(800, 11);
  const auto snapshot = stack.snapshot(Strategy::kRingCast);
  for (const std::uint32_t fanout : {1u, 2u, 3u, 5u, 10u}) {
    const auto point = measureEffectiveness(snapshot, Strategy::kRingCast,
                                            fanout, 20, 100 + fanout);
    EXPECT_EQ(point.avgMissPercent, 0.0) << "fanout " << fanout;
    EXPECT_EQ(point.completePercent, 100.0) << "fanout " << fanout;
  }
}

// §7.1 at the paper's full scale, through the redesigned experiment API:
// a 10k-node static network built by one preset call, disseminated over
// by a SnapshotSession — RINGCAST at the paper's F=3 misses nothing.
TEST(PaperStatic, FullScaleRingCastZeroMissThroughSessionApi) {
  auto scenario = Scenario::paperStatic(/*nodes=*/10'000, /*seed=*/2007);
  auto session = scenario.snapshotSession(
      {.strategy = Strategy::kRingCast, .fanout = 3, .seed = 1});
  for (int publishes = 0; publishes < 5; ++publishes) {
    const auto report = session.publishFromRandom();
    EXPECT_EQ(report.missRatioPercent(), 0.0);
    EXPECT_TRUE(report.complete());
    EXPECT_EQ(report.notified, 10'000u);
  }
  // A correctly wired system routes every message: the unroutable
  // counter must never move in any supported configuration.
  EXPECT_EQ(scenario.router().droppedUnroutable(), 0u);
}

// Every simulated message reaches a registered handler in all three of
// the paper's evaluation settings — the router's unroutable counter is a
// wiring invariant, pinned here across gossip, churn, failures, and a
// live pull session.
TEST(PaperWiring, NoMessageIsEverUnroutable) {
  auto churned = Scenario::paperChurn(/*rate=*/0.005, /*nodes=*/400,
                                      /*seed=*/77, /*maxChurnCycles=*/4'000);
  churned.killRandomFraction(0.05);
  churned.runCycles(20);
  auto& live = churned.liveSession(
      {.strategy = Strategy::kPushPull, .fanout = 2, .settleCycles = 4});
  live.publishFromRandom();
  EXPECT_GT(churned.router().droppedDead(), 0u);  // churn really happened
  EXPECT_EQ(churned.router().droppedUnroutable(), 0u);
}

// §7.1 / Fig. 6: RANDCAST misses nodes at low fanout even without
// failures, and the miss ratio falls steeply with the fanout.
TEST(PaperStatic, RandCastMissesAtLowFanoutAndImprovesWithIt) {
  const auto stack = buildStack(800, 12);
  const auto snapshot = stack.snapshot(Strategy::kRandCast);
  const auto f2 =
      measureEffectiveness(snapshot, Strategy::kRandCast, 2, 30, 200);
  const auto f4 =
      measureEffectiveness(snapshot, Strategy::kRandCast, 4, 30, 201);
  const auto f8 =
      measureEffectiveness(snapshot, Strategy::kRandCast, 8, 30, 202);
  EXPECT_GT(f2.avgMissPercent, 2.0);   // paper: ~10% at F=2, 10k nodes
  EXPECT_LT(f4.avgMissPercent, f2.avgMissPercent);
  EXPECT_LT(f8.avgMissPercent, f4.avgMissPercent);
  EXPECT_EQ(f2.completePercent, 0.0);
}

// §7.1 / Fig. 8: message overhead is proportional to the fanout —
// total sends ≈ F × notified, virgin ≈ notified.
TEST(PaperStatic, MessageOverheadProportionalToFanout) {
  const auto stack = buildStack(600, 13);
  const auto snapshot = stack.snapshot(Strategy::kRingCast);
  for (const std::uint32_t fanout : {2u, 4u, 8u}) {
    const auto point = measureEffectiveness(snapshot, Strategy::kRingCast,
                                            fanout, 10, 300 + fanout);
    const double n = snapshot.aliveCount();
    EXPECT_NEAR(point.avgMessagesTotal, fanout * n, 0.05 * fanout * n)
        << "fanout " << fanout;
    EXPECT_NEAR(point.avgVirgin, n - 1, 1e-9);
  }
}

// §7.1 / Fig. 7: RINGCAST finishes in no more hops than RANDCAST misses
// allow — concretely, the two protocols track each other early and
// RINGCAST reaches the last node while RANDCAST still misses nodes.
TEST(PaperStatic, ProgressSeriesShapes) {
  const auto stack = buildStack(800, 14);
  const auto ring =
      analysis::measureProgress(stack, Strategy::kRingCast, 3, 15, 400);
  const auto rand =
      analysis::measureProgress(stack, Strategy::kRandCast, 3, 15, 401);
  // Early spreading is alike: after 3 hops both reach a similar share
  // (the probabilistic component dominates, §7.1).
  ASSERT_GT(ring.meanPctRemaining.size(), 3u);
  ASSERT_GT(rand.meanPctRemaining.size(), 3u);
  EXPECT_NEAR(ring.meanPctRemaining[2], rand.meanPctRemaining[2], 12.0);
  // The tail differs: RINGCAST ends at exactly zero; RANDCAST at F=3
  // leaves a residue.
  EXPECT_EQ(ring.meanPctRemaining.back(), 0.0);
  EXPECT_GT(rand.meanPctRemaining.back(), 0.0);
}

// §7.2 / Fig. 9: after a catastrophic failure (no healing), RINGCAST's
// miss ratio stays well below RANDCAST's at the same fanout.
TEST(PaperCatastrophic, RingCastBeatsRandCastAfterMassFailure) {
  auto stack = buildStack(1500, 15);
  stack.killRandomFraction(0.05);
  const auto ring =
      measureEffectiveness(stack, Strategy::kRingCast, 3, 30, 500);
  const auto rand =
      measureEffectiveness(stack, Strategy::kRandCast, 3, 30, 501);
  EXPECT_LT(ring.avgMissPercent, rand.avgMissPercent);
  EXPECT_GT(rand.avgMissPercent, 1.0);  // RANDCAST F=3 misses plenty
}

// §7.2: the bigger the failure, the closer the two protocols get, but
// RINGCAST keeps the edge even at 10% dead (paper: still an order of
// magnitude at 10k nodes).
TEST(PaperCatastrophic, GapNarrowsWithFailureVolumeButPersists) {
  double previousRingMiss = -1.0;
  for (const double kill : {0.02, 0.10}) {
    auto stack = buildStack(1500, 16);
    stack.killRandomFraction(kill);
    const auto ring =
        measureEffectiveness(stack, Strategy::kRingCast, 3, 30, 600);
    const auto rand =
        measureEffectiveness(stack, Strategy::kRandCast, 3, 30, 601);
    EXPECT_LE(ring.avgMissPercent, rand.avgMissPercent)
        << "kill fraction " << kill;
    EXPECT_GT(ring.avgMissPercent, previousRingMiss);
    previousRingMiss = ring.avgMissPercent;
  }
}

// §7.3 / Fig. 13: under churn, misses concentrate on young nodes; nodes
// past the warm-up age are almost always reached by RINGCAST.
TEST(PaperChurn, MissesConcentrateOnYoungNodes) {
  auto stack = buildStack(600, 17);
  const auto cycles = stack.runChurnUntilFullTurnover(0.01, 10'000);
  ASSERT_LT(cycles, 10'000u);  // full turnover reached
  const auto study = analysis::measureMissLifetimes(
      stack, Strategy::kRingCast, 3, 60, 700);

  if (study.missedLifetimes.total() == 0)
    GTEST_SKIP() << "no misses at this scale; nothing to classify";

  // Count misses of nodes younger vs older than ~ a view length of cycles.
  std::uint64_t youngMisses = 0;
  for (const auto& [lifetime, count] : study.missedLifetimes.sorted())
    if (lifetime <= 20) youngMisses += count;
  const double youngShare =
      static_cast<double>(youngMisses) /
      static_cast<double>(study.missedLifetimes.total());

  // Young nodes are a small fraction of the population (≈ 20 * churn
  // replacements / N), yet they must account for the majority of misses.
  EXPECT_GT(youngShare, 0.5);
}

// §7.3 / Fig. 11: under churn neither protocol achieves complete
// disseminations at moderate fanout, and RINGCAST has the lower miss
// ratio at low fanout.
TEST(PaperChurn, LowFanoutFavoursRingCast) {
  auto stack = buildStack(600, 18);
  stack.runChurnUntilFullTurnover(0.01, 10'000);
  const auto ring =
      measureEffectiveness(stack, Strategy::kRingCast, 3, 40, 800);
  const auto rand =
      measureEffectiveness(stack, Strategy::kRandCast, 3, 40, 801);
  EXPECT_LT(ring.avgMissPercent, rand.avgMissPercent);
}

// §8 extension: a second ring raises d-link connectivity and cuts misses
// after severe failures.
TEST(PaperExtensions, SecondRingImprovesFailureResilience) {
  const double killFraction = 0.15;
  std::uint64_t singleMisses = 0;
  std::uint64_t doubleMisses = 0;
  for (const std::uint32_t rings : {1u, 2u}) {
    auto stack = buildStack(800, 19, rings);
    stack.killRandomFraction(killFraction);
    const auto point =
        measureEffectiveness(stack, Strategy::kMultiRing, 2, 40, 900);
    (rings == 1 ? singleMisses : doubleMisses) = point.totalMisses;
  }
  EXPECT_GT(singleMisses, 0u);
  EXPECT_LT(doubleMisses, singleMisses);
}

// §5: the d-link graph alone (no r-links) must already be strongly
// connected after warm-up — that is the hybrid class's guarantee.
TEST(PaperStatic, RingDlinksAloneAreStronglyConnected) {
  const auto stack = buildStack(500, 20);
  const auto snapshot = stack.snapshot(Strategy::kRingCast);
  const auto adjacency = analysis::aliveAdjacency(
      snapshot, {.rlinks = false, .dlinks = true});
  EXPECT_EQ(analysis::stronglyConnectedComponentCount(adjacency), 1u);
}

}  // namespace
}  // namespace vs07
