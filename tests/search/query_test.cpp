// Unit coverage for the search subsystem: content placement, report
// bookkeeping, the local-knowledge cache, and the paper-quick strategy
// ordering (flood >= ttl-gossip >= random walk at equal TTL).
#include <algorithm>
#include <cstdint>
#include <set>

#include <gtest/gtest.h>

#include "analysis/scenario.hpp"
#include "cast/strategy.hpp"
#include "search/content.hpp"
#include "search/query.hpp"

namespace vs07::search {
namespace {

analysis::Scenario quickScenario(std::uint32_t nodes = 400,
                                 std::uint64_t seed = 42) {
  return analysis::Scenario::builder()
      .nodes(nodes)
      .seed(seed)
      .warmupCycles(50)
      .build();
}

TEST(ContentPlacement, PlacesEachItemOnDistinctAliveHolders) {
  const auto scenario = quickScenario();
  const auto overlay = scenario.snapshotRing();
  const ContentPlacement placement(overlay, /*items=*/32, /*replication=*/8,
                                   /*seed=*/7);
  ASSERT_EQ(placement.items(), 32u);
  ASSERT_EQ(placement.replication(), 8u);
  for (ItemId item = 0; item < placement.items(); ++item) {
    const auto holders = placement.holders(item);
    ASSERT_EQ(holders.size(), 8u) << "item=" << item;
    std::set<NodeId> distinct(holders.begin(), holders.end());
    EXPECT_EQ(distinct.size(), holders.size()) << "item=" << item;
    EXPECT_TRUE(std::is_sorted(holders.begin(), holders.end()));
    for (const NodeId holder : holders) {
      EXPECT_TRUE(overlay.isAlive(holder));
      EXPECT_TRUE(placement.holds(holder, item));
    }
  }
}

TEST(ContentPlacement, NodeToItemInversionMatchesHolderSets) {
  const auto overlay = quickScenario().snapshotRing();
  const ContentPlacement placement(overlay, 16, 4, 7);
  std::uint64_t fromItems = 0;
  std::uint64_t fromNodes = 0;
  for (ItemId item = 0; item < placement.items(); ++item)
    fromItems += placement.holders(item).size();
  for (NodeId node = 0; node < overlay.totalIds(); ++node) {
    for (const ItemId item : placement.itemsHeldBy(node)) {
      EXPECT_TRUE(placement.holds(node, item));
      ++fromNodes;
    }
  }
  EXPECT_EQ(fromItems, fromNodes);
  EXPECT_EQ(fromItems, 16u * 4u);
}

TEST(QuerySession, ReportBookkeepingIsConsistent) {
  const auto scenario = quickScenario();
  auto session = scenario.querySession(QueryOptions::ttlGossip(6, 2));
  const auto report = session.run(300);
  EXPECT_EQ(report.queries, 300u);
  EXPECT_LE(report.resolved, report.queries);
  EXPECT_LE(report.cacheResolved, report.resolved);
  EXPECT_LE(report.messagesToDead, report.messagesTotal);
  ASSERT_EQ(report.resolvedPerHop.size(), 7u);  // hops 0..ttl
  std::uint64_t perHopSum = 0;
  std::uint64_t hopWeighted = 0;
  for (std::size_t hop = 0; hop < report.resolvedPerHop.size(); ++hop) {
    perHopSum += report.resolvedPerHop[hop];
    hopWeighted += hop * report.resolvedPerHop[hop];
  }
  EXPECT_EQ(perHopSum, report.resolved);
  EXPECT_EQ(hopWeighted, report.hopsToResolveTotal);
  EXPECT_GT(report.resolved, 0u);  // 6 hops over a warm overlay finds *some*
}

TEST(QuerySession, RunsAreReproducibleFromFreshSessions) {
  const auto scenario = quickScenario();
  auto first = scenario.querySession(QueryOptions::ttlGossip());
  auto second = scenario.querySession(QueryOptions::ttlGossip());
  EXPECT_EQ(first.run(200), second.run(200));
}

TEST(QuerySession, AdvertisementSeedsLocalKnowledge) {
  const auto scenario = quickScenario();
  auto session = scenario.querySession(QueryOptions::ttlGossip());
  // Every alive node has overlay neighbours, and every node holds a few
  // items on average, so advertisement must have written entries.
  EXPECT_GT(session.cachedEntries(), 0u);
  auto bare = QueryOptions::ttlGossip();
  bare.advertiseToNeighbours = false;
  auto cold = scenario.querySession(bare);
  EXPECT_EQ(cold.cachedEntries(), 0u);
  // Cold caches still warm up from answer traffic.
  const auto report = cold.run(400);
  EXPECT_GT(report.cacheInsertions, 0u);
  EXPECT_GT(cold.cachedEntries(), 0u);
}

TEST(QuerySession, CacheResolutionsAreCountedSeparately) {
  const auto scenario = quickScenario();
  auto session = scenario.querySession(QueryOptions::ttlGossip(4, 2));
  const auto report = session.run(500);
  // With advertised knowledge on a replication-8 catalogue, a visible
  // share of resolutions comes from cache entries rather than copies.
  EXPECT_GT(report.cacheResolved, 0u);
  EXPECT_GT(report.cacheHitFraction(), 0.0);
}

TEST(QuerySession, StrategyNamesMatchTheChoiceList) {
  const auto& choices = searchStrategyChoices();
  ASSERT_EQ(choices.size(), 3u);
  EXPECT_EQ(choices[0], searchStrategyName(SearchStrategy::kTtlGossip));
  EXPECT_EQ(choices[1], searchStrategyName(SearchStrategy::kFlood));
  EXPECT_EQ(choices[2], searchStrategyName(SearchStrategy::kRandomWalk));
}

TEST(QuerySession, ScenarioBuilderWiresQueryOptionsThrough) {
  auto options = QueryOptions::ttlGossip(5, 3);
  options.items = 24;
  const auto scenario = analysis::Scenario::builder()
                            .nodes(300)
                            .seed(9)
                            .warmupCycles(40)
                            .query(options)
                            .build();
  auto session = scenario.querySession();  // config-driven overload
  EXPECT_EQ(session.options().ttl, 5u);
  EXPECT_EQ(session.options().fanout, 3u);
  EXPECT_EQ(session.options().items, 24u);
  const auto report = session.run(50);
  EXPECT_EQ(report.ttl, 5u);
  EXPECT_EQ(report.items, 24u);
}

TEST(QuerySession, StrategiesOrderAsTheLiteratureSays) {
  // The acceptance-bar ordering at paper-quick scale: flooding reaches
  // the most nodes per query, TTL-gossip trades some coverage for a
  // bounded fanout, and k random walks cover the least — so at equal TTL
  // the hit rates must order flood >= ttl-gossip >= random walk, and the
  // message bill must order the same way.
  const auto scenario = quickScenario(600);
  const std::uint32_t ttl = 6;
  auto gossip = scenario.querySession(QueryOptions::ttlGossip(ttl, 2));
  auto flood = scenario.querySession(QueryOptions::flood(ttl));
  auto walk = scenario.querySession(QueryOptions::randomWalk(4, ttl));
  const auto gossipReport = gossip.run(400);
  const auto floodReport = flood.run(400);
  const auto walkReport = walk.run(400);
  EXPECT_GE(floodReport.hitRatePercent(), gossipReport.hitRatePercent());
  EXPECT_GE(gossipReport.hitRatePercent(), walkReport.hitRatePercent());
  // Cost ordering is only claimed where it is structural: flooding pays
  // for every link of every visited node, gossip for at most fanout of
  // them. (Gossip-vs-walk cost flips with the cache: early resolutions
  // make cached gossip *cheaper* than 4 walkers at the same TTL.)
  EXPECT_GE(floodReport.messagesPerQuery(), gossipReport.messagesPerQuery());
  // And the flood baseline actually saturates on a warm 600-node overlay.
  EXPECT_GT(floodReport.hitRatePercent(), 99.0);
}

}  // namespace
}  // namespace vs07::search
