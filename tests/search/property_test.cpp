// Property-based pins for the query layer — invariants that hold by
// construction, checked against live scenarios rather than fixtures:
//
//   * flood resolves *everything* once TTL covers the overlay diameter
//     (on a strongly connected alive graph),
//   * k random walks never bill more than k * TTL messages per query,
//   * enabling the local-knowledge cache can only help: at equal
//     (ttl, fanout) budget the hit rate dominates and the message bill
//     does not grow (the cache never routes, it only resolves).
#include <cstdint>
#include <queue>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/graph_analysis.hpp"
#include "analysis/scenario.hpp"
#include "search/query.hpp"

namespace vs07::search {
namespace {

analysis::Scenario quickScenario() {
  return analysis::Scenario::builder()
      .nodes(400)
      .seed(42)
      .warmupCycles(50)
      .build();
}

/// Directed diameter of a dense-indexed adjacency (BFS from every node).
/// Requires strong connectivity — asserted by the caller.
std::uint32_t directedDiameter(
    const std::vector<std::vector<std::uint32_t>>& adjacency) {
  const auto n = adjacency.size();
  std::uint32_t diameter = 0;
  std::vector<std::uint32_t> dist(n);
  for (std::uint32_t source = 0; source < n; ++source) {
    std::fill(dist.begin(), dist.end(), ~std::uint32_t{0});
    std::queue<std::uint32_t> frontier;
    dist[source] = 0;
    frontier.push(source);
    while (!frontier.empty()) {
      const auto at = frontier.front();
      frontier.pop();
      for (const auto to : adjacency[at]) {
        if (dist[to] != ~std::uint32_t{0}) continue;
        dist[to] = dist[at] + 1;
        diameter = std::max(diameter, dist[to]);
        frontier.push(to);
      }
    }
  }
  return diameter;
}

TEST(SearchProperty, FloodResolvesEverythingOnceTtlCoversTheDiameter) {
  const auto scenario = quickScenario();
  const auto overlay = scenario.snapshotRing();
  const auto adjacency = analysis::aliveAdjacency(overlay);
  ASSERT_EQ(analysis::stronglyConnectedComponentCount(adjacency), 1u)
      << "warm static overlay must be strongly connected";
  const auto diameter = directedDiameter(adjacency);
  ASSERT_GE(diameter, 2u);  // non-trivial: flooding actually has to hop

  auto session = scenario.querySession(QueryOptions::flood(diameter));
  const auto report = session.run(300);
  EXPECT_EQ(report.resolved, report.queries)
      << "diameter=" << diameter << " " << report;
  EXPECT_EQ(report.cacheResolved, 0u);  // flood preset runs cache-free
}

TEST(SearchProperty, RandomWalkBudgetIsBounded) {
  const auto scenario = quickScenario();
  for (const std::uint32_t walkers : {1u, 4u, 8u}) {
    auto session =
        scenario.querySession(QueryOptions::randomWalk(walkers, /*ttl=*/6));
    const auto report = session.run(200);
    // Each walker takes at most one step per TTL tick, and each step is
    // exactly one message — absorbed walkers stop billing.
    EXPECT_LE(report.messagesTotal,
              report.queries * walkers * session.options().ttl)
        << "walkers=" << walkers;
    EXPECT_GT(report.messagesTotal, 0u);
  }
}

TEST(SearchProperty, CacheDominatesCacheFreeAtEqualBudget) {
  // The forwarding rng never consults the cache, so until the first
  // cache resolution a cached and a cache-free run of the same query are
  // step-identical. A cache entry can therefore only convert an
  // unresolved query into a resolved one (never the reverse), and an
  // early resolution only cancels forwarding that the cache-free run
  // still pays for. Hence at equal (ttl, fanout, seed):
  //   resolved(cache) >= resolved(no cache)
  //   messages(cache) <= messages(no cache)
  const auto scenario = quickScenario();
  for (const std::uint32_t ttl : {3u, 5u, 8u}) {
    auto cached = QueryOptions::ttlGossip(ttl, 2);
    auto cacheFree = cached;
    cacheFree.cacheCapacity = 0;
    auto withCache = scenario.querySession(cached);
    auto withoutCache = scenario.querySession(cacheFree);
    const auto cachedReport = withCache.run(400);
    const auto plainReport = withoutCache.run(400);
    EXPECT_GE(cachedReport.resolved, plainReport.resolved) << "ttl=" << ttl;
    EXPECT_LE(cachedReport.messagesTotal, plainReport.messagesTotal)
        << "ttl=" << ttl;
    // Identical workload composition: same origins, same items.
    EXPECT_EQ(cachedReport.queries, plainReport.queries);
  }
}

TEST(SearchProperty, HigherReplicationNeverHurtsTheFloodHitRate) {
  // More copies can only shorten the distance to the nearest holder, so
  // at a TTL below the diameter the flood hit rate is monotone in the
  // replication factor (same overlay, same origin/item streams).
  const auto scenario = quickScenario();
  double previous = -1.0;
  for (const std::uint32_t replication : {1u, 4u, 16u}) {
    auto options = QueryOptions::flood(/*ttl=*/2);
    options.replication = replication;
    auto session = scenario.querySession(options);
    const auto rate = session.run(400).hitRatePercent();
    EXPECT_GE(rate, previous) << "replication=" << replication;
    previous = rate;
  }
}

}  // namespace
}  // namespace vs07::search
