// The search workload under the cross-model conformance table: for each
// timing model {cyclesync, jittered, latency}, a full scenario built at
// --engine-threads 1, 2 and 8 must freeze bit-identical overlays and
// therefore produce bit-identical SearchReports for every strategy.
//
// This is the tentpole guarantee of the query subsystem: QuerySession is
// a pure function of (frozen overlay, options), so search results are
// exactly as reproducible as the sharded engine's overlay state.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/scenario.hpp"
#include "harness/conformance.hpp"
#include "search/query.hpp"

namespace vs07::search {
namespace {

/// Everything the workload measures, for one scenario: the overlay
/// fingerprint plus one report per strategy (caches exercised on the
/// gossip strategy, cache-free baselines alongside).
struct SearchRecord {
  std::vector<std::uint64_t> overlayState;
  SearchReport gossip;
  SearchReport flood;
  SearchReport walk;
  std::uint64_t gossipCachedEntries = 0;

  friend bool operator==(const SearchRecord&, const SearchRecord&) = default;
};

SearchRecord searchRecord(const analysis::Scenario& scenario) {
  SearchRecord record;
  record.overlayState = harness::overlayFingerprint(scenario);
  auto gossip = scenario.querySession(QueryOptions::ttlGossip(6, 2));
  record.gossip = gossip.run(200);
  record.gossipCachedEntries = gossip.cachedEntries();
  record.flood = scenario.querySession(QueryOptions::flood(6)).run(200);
  record.walk = scenario.querySession(QueryOptions::randomWalk(4, 6)).run(200);
  return record;
}

TEST(SearchConformance, ReportsBitIdenticalAcrossThreadCountsPerTiming) {
  harness::expectScenarioConformance(
      [](std::uint32_t threads, sim::TimingConfig timing) {
        return analysis::Scenario::builder()
            .nodes(400)
            .seed(42)
            .engineThreads(threads)
            .warmupCycles(50)
            .timing(timing)
            .build();
      },
      searchRecord);
}

TEST(SearchConformance, FailedOverlaySearchBitIdenticalAcrossThreadCounts) {
  // Same table after a §7.2-style failure burst: snapshots keep links
  // pointing at the dead nodes, so queries pay messagesToDead — and that
  // loss bookkeeping must be thread-invariant too.
  harness::expectScenarioConformance(
      [](std::uint32_t threads, sim::TimingConfig timing) {
        auto scenario = analysis::Scenario::builder()
                            .nodes(300)
                            .seed(7)
                            .engineThreads(threads)
                            .warmupCycles(40)
                            .timing(timing)
                            .build();
        scenario.killRandomFraction(0.2);
        return scenario;
      },
      [](const analysis::Scenario& scenario) {
        auto record = searchRecord(scenario);
        EXPECT_GT(record.gossip.messagesToDead + record.flood.messagesToDead,
                  0u)
            << "churn must leave dead links for queries to hit";
        return record;
      });
}

}  // namespace
}  // namespace vs07::search
