// Bit-identical regression pin for the search hit-rate curve.
//
// Recomputes a reduced-scale version of the bench/search_workload sweep
// — warm scenario, TTL axis per strategy, series shaping through
// analysis::searchSweepSeries — and compares the dumped JSON
// byte-for-byte against a golden file. Any change that disturbs rng
// consumption in placement, origin/item draws, or forwarding shows up
// here as a byte diff.
//
// Regenerating (only when a change is *supposed* to alter results):
//   VS07_REGEN_GOLDEN=1 ./search_hitrate_regression_test
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/report_json.hpp"
#include "analysis/scenario.hpp"
#include "common/json.hpp"
#include "search/query.hpp"

namespace vs07::search {
namespace {

std::string goldenPath(const std::string& name) {
  return std::string(VS07_TEST_DATA_DIR) + "/" + name;
}

std::string readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing golden file " << path
                         << " (regenerate with VS07_REGEN_GOLDEN=1)";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool regenRequested() {
  const char* regen = std::getenv("VS07_REGEN_GOLDEN");
  return regen != nullptr && regen[0] != '\0' && regen[0] != '0';
}

void checkAgainstGolden(const std::string& name, const std::string& bytes) {
  const auto path = goldenPath(name);
  if (regenRequested()) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << bytes;
    GTEST_SKIP() << "regenerated " << path;
  }
  const std::string golden = readFile(path);
  EXPECT_EQ(golden, bytes) << "series bytes diverged from " << path;
}

TEST(SearchRegression, HitRateCurveBitIdentical) {
  // Reduced-scale mirror of bench/search_workload --quick: one warm
  // static scenario, hit-rate-vs-TTL per strategy at replication 8.
  const auto scenario = analysis::Scenario::builder()
                            .nodes(400)
                            .seed(42)
                            .warmupCycles(50)
                            .build();
  const std::vector<std::uint32_t> ttlAxis = {2, 4, 6, 8};
  Json series = Json::array();
  for (const SearchStrategy strategy :
       {SearchStrategy::kTtlGossip, SearchStrategy::kFlood,
        SearchStrategy::kRandomWalk}) {
    std::vector<SearchReport> sweep;
    for (const std::uint32_t ttl : ttlAxis) {
      QueryOptions options = QueryOptions::ttlGossip(ttl, 2);
      options.strategy = strategy;
      if (strategy != SearchStrategy::kTtlGossip) options.cacheCapacity = 0;
      auto session = scenario.querySession(options);
      sweep.push_back(session.run(256));
    }
    series.push(analysis::searchSweepSeries(searchStrategyName(strategy),
                                            sweep.front(), sweep));
  }
  checkAgainstGolden("search_hitrate.golden.json", series.dump(2));
}

}  // namespace
}  // namespace vs07::search
