#include "pubsub/topic.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "cast/selector.hpp"
#include "common/expect.hpp"

namespace vs07::pubsub {
namespace {

TEST(TopicOverlay, SubscribersFormAWorkingOverlay) {
  sim::Network network(200, 1);
  TopicOverlay topic(network, "alerts", {}, 2);
  for (NodeId id = 0; id < 50; ++id) topic.subscribe(id);
  EXPECT_EQ(topic.subscriberCount(), 50u);
  topic.runCycles(80);

  const cast::RingCastSelector ringCast;
  const auto report = topic.publish(0, ringCast, 3, 7);
  EXPECT_EQ(report.aliveTotal, 50u);
  EXPECT_TRUE(report.complete());
}

TEST(TopicOverlay, NonSubscribersAreNeverNotified) {
  sim::Network network(100, 2);
  TopicOverlay topic(network, "updates", {}, 3);
  for (NodeId id = 0; id < 30; ++id) topic.subscribe(id);
  topic.runCycles(60);

  const cast::RingCastSelector ringCast;
  const auto report = topic.publish(5, ringCast, 3, 8);
  // The snapshot's alive set is exactly the subscriber set, so nothing
  // outside it can appear in the accounting.
  EXPECT_EQ(report.aliveTotal, 30u);
  const auto snapshot = topic.snapshot();
  for (NodeId id = 30; id < 100; ++id) EXPECT_FALSE(snapshot.isAlive(id));
}

TEST(TopicOverlay, DoubleSubscribeIsIdempotent) {
  sim::Network network(10, 3);
  TopicOverlay topic(network, "t", {}, 4);
  topic.subscribe(1);
  topic.subscribe(1);
  EXPECT_EQ(topic.subscriberCount(), 1u);
}

TEST(TopicOverlay, UnsubscribeShrinksTheOverlay) {
  sim::Network network(100, 4);
  TopicOverlay topic(network, "t", {}, 5);
  for (NodeId id = 0; id < 40; ++id) topic.subscribe(id);
  topic.runCycles(60);
  for (NodeId id = 0; id < 10; ++id) topic.unsubscribe(id);
  EXPECT_EQ(topic.subscriberCount(), 30u);
  EXPECT_FALSE(topic.isSubscribed(5));
  // Let the remaining subscribers heal their views.
  topic.runCycles(40);

  const cast::RingCastSelector ringCast;
  const auto report = topic.publish(20, ringCast, 3, 9);
  EXPECT_EQ(report.aliveTotal, 30u);
  EXPECT_TRUE(report.complete());
}

TEST(TopicOverlay, UnsubscribeUnknownIsNoop) {
  sim::Network network(10, 5);
  TopicOverlay topic(network, "t", {}, 6);
  topic.unsubscribe(3);  // never subscribed
  EXPECT_EQ(topic.subscriberCount(), 0u);
}

TEST(TopicOverlay, PublishRequiresSubscription) {
  sim::Network network(10, 6);
  TopicOverlay topic(network, "t", {}, 7);
  topic.subscribe(1);
  const cast::RingCastSelector ringCast;
  EXPECT_THROW(topic.publish(2, ringCast, 2, 1), ContractViolation);
}

TEST(TopicOverlay, DeadSubscribersAreSkipped) {
  sim::Network network(60, 7);
  TopicOverlay topic(network, "t", {}, 8);
  for (NodeId id = 0; id < 30; ++id) topic.subscribe(id);
  topic.runCycles(60);
  network.kill(3);
  network.kill(17);
  const auto snapshot = topic.snapshot();
  EXPECT_EQ(snapshot.aliveCount(), 28u);
  const cast::RingCastSelector ringCast;
  const auto report = topic.publish(0, ringCast, 4, 10);
  EXPECT_EQ(report.aliveTotal, 28u);
}

TEST(TopicOverlay, NetworkDeathPrunesTheSubscriberRoster) {
  // Regression: the roster only shrank on explicit unsubscribe(), so
  // network-dead subscribers accumulated forever — a slow leak under
  // churn, and subscribe()'s introducer draw degraded with every death.
  // The overlay now observes the network and prunes on kill.
  sim::Network network(120, 11);
  TopicOverlay topic(network, "t", {}, 12);
  for (NodeId id = 0; id < 40; ++id) topic.subscribe(id);
  topic.runCycles(60);

  network.kill(5);
  network.kill(17);
  network.kill(90);  // a non-subscriber death must not touch the roster
  EXPECT_EQ(topic.subscriberCount(), 38u);
  EXPECT_FALSE(topic.isSubscribed(5));
  EXPECT_FALSE(topic.isSubscribed(17));

  // A newcomer joining after heavy churn gets an *alive* introducer
  // (every roster entry is alive by construction now).
  for (NodeId id = 20; id < 36; ++id) network.kill(id);
  EXPECT_EQ(topic.subscriberCount(), 22u);
  topic.subscribe(40);
  EXPECT_TRUE(topic.isSubscribed(40));
  topic.runCycles(40);

  const cast::RingCastSelector ringCast;
  const auto report = topic.publish(0, ringCast, 3, 13);
  EXPECT_EQ(report.aliveTotal, 23u);
  EXPECT_TRUE(report.complete());
}

TEST(TopicOverlay, TwoTopicsAreIsolated) {
  sim::Network network(100, 8);
  TopicOverlay sports(network, "sports", {}, 9);
  TopicOverlay finance(network, "finance", {}, 10);
  for (NodeId id = 0; id < 30; ++id) sports.subscribe(id);
  for (NodeId id = 20; id < 60; ++id) finance.subscribe(id);
  sports.runCycles(60);
  finance.runCycles(60);

  // Sports views must never contain finance-only members (40..59).
  const auto sportsSnapshot = sports.snapshot();
  for (NodeId id = 0; id < 30; ++id)
    for (const NodeId link : sportsSnapshot.rlinks(id))
      EXPECT_LT(link, 30u);
}

TEST(PubSub, TopicRegistryCreatesOnDemand) {
  sim::Network network(50, 9);
  PubSub pubsub(network, 10);
  auto& a = pubsub.topic("alpha");
  auto& again = pubsub.topic("alpha");
  EXPECT_EQ(&a, &again);
  pubsub.topic("beta");
  const auto names = pubsub.topicNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_NE(std::find(names.begin(), names.end(), "alpha"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "beta"), names.end());
}

TEST(PubSub, StepDrivesAllTopics) {
  sim::Network network(80, 10);
  PubSub pubsub(network, 11);
  auto& alpha = pubsub.topic("alpha");
  auto& beta = pubsub.topic("beta");
  for (NodeId id = 0; id < 40; ++id) alpha.subscribe(id);
  for (NodeId id = 40; id < 80; ++id) beta.subscribe(id);

  sim::Engine engine(network, 12);
  engine.addProtocol(pubsub);
  engine.run(80);

  const cast::RingCastSelector ringCast;
  EXPECT_TRUE(alpha.publish(0, ringCast, 3, 1).complete());
  EXPECT_TRUE(beta.publish(40, ringCast, 3, 2).complete());
}

}  // namespace
}  // namespace vs07::pubsub
