// Parameterized property sweep over the dissemination engine: for every
// (protocol, fanout, failure volume) combination, the accounting
// invariants of a DisseminationReport must hold, plus the per-protocol
// guarantees the paper states (RINGCAST completeness in fail-free
// networks, fanout-proportional overhead).
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <tuple>

#include "analysis/scenario.hpp"
#include "cast/disseminator.hpp"
#include "cast/strategy.hpp"

namespace vs07::cast {
namespace {

using Param = std::tuple<Strategy, std::uint32_t /*fanout*/,
                         double /*killFraction*/>;

/// One warmed 2-ring stack shared across the whole sweep (read-only use):
/// rebuilding per parameter would dominate the suite's runtime.
class DisseminationProperties : public ::testing::TestWithParam<Param> {
 protected:
  static void SetUpTestSuite() {
    stack_ = new analysis::Scenario(
        analysis::Scenario::builder().nodes(600).rings(2).seed(1234).build());
  }

  static void TearDownTestSuite() {
    delete stack_;
    stack_ = nullptr;
  }

  /// Snapshot with the requested kill fraction applied on a *copy* of the
  /// alive mask (the shared stack itself is never mutated).
  OverlaySnapshot makeOverlay(Strategy strategy, double killFraction) {
    OverlaySnapshot base = stack_->snapshot(strategy);
    if (killFraction == 0.0) return base;
    // Re-derive an alive mask with victims cleared.
    std::vector<std::uint8_t> alive(base.totalIds(), 0);
    for (const NodeId id : base.aliveIds()) alive[id] = 1;
    Rng rng(99);
    auto toKill = static_cast<std::uint32_t>(killFraction *
                                             base.aliveCount());
    while (toKill > 0) {
      const auto victim = static_cast<NodeId>(rng.below(base.totalIds()));
      if (alive[victim]) {
        alive[victim] = 0;
        --toKill;
      }
    }
    std::vector<OverlaySnapshot::NodeLinks> links;
    links.reserve(base.totalIds());
    for (NodeId id = 0; id < base.totalIds(); ++id)
      links.push_back({{base.rlinks(id).begin(), base.rlinks(id).end()},
                       {base.dlinks(id).begin(), base.dlinks(id).end()}});
    return {std::move(links), std::move(alive)};
  }

  static analysis::Scenario* stack_;
};

analysis::Scenario* DisseminationProperties::stack_ = nullptr;

TEST_P(DisseminationProperties, ReportInvariantsHold) {
  const auto [strategy, fanout, killFraction] = GetParam();
  const auto overlay = makeOverlay(strategy, killFraction);

  Rng originRng(fanout * 7919 + static_cast<std::uint64_t>(killFraction * 100));
  for (int run = 0; run < 5; ++run) {
    DisseminationParams params;
    params.fanout = fanout;
    params.seed = originRng();
    params.recordLoad = true;
    const NodeId origin =
        overlay.aliveIds()[originRng.below(overlay.aliveIds().size())];
    const auto report = disseminate(overlay, selectorFor(strategy), origin,
                                    params);

    // Conservation: every message is exactly one of virgin/redundant/dead.
    EXPECT_EQ(report.messagesTotal, report.messagesVirgin +
                                        report.messagesRedundant +
                                        report.messagesToDead);
    // Population: every alive node is notified or missed, never both.
    EXPECT_EQ(report.notified + report.missed.size(), report.aliveTotal);
    // Virgin deliveries are exactly the non-origin notifications.
    EXPECT_EQ(report.messagesVirgin, report.notified - 1);
    // Hop series sums to the notified count and ends at the last hop.
    const auto hopSum = std::accumulate(report.newlyNotifiedPerHop.begin(),
                                        report.newlyNotifiedPerHop.end(),
                                        std::uint64_t{0});
    EXPECT_EQ(hopSum, report.notified);
    EXPECT_EQ(report.newlyNotifiedPerHop.size(),
              static_cast<std::size_t>(report.lastHop) + 1);
    // Load accounting mirrors the message counters.
    const auto forwards =
        std::accumulate(report.forwardsPerNode.begin(),
                        report.forwardsPerNode.end(), std::uint64_t{0});
    const auto received =
        std::accumulate(report.receivedPerNode.begin(),
                        report.receivedPerNode.end(), std::uint64_t{0});
    EXPECT_EQ(forwards, report.messagesTotal);
    EXPECT_EQ(received, report.messagesVirgin + report.messagesRedundant);
    // Only alive nodes ever forward or get counted as receivers.
    for (NodeId id = 0; id < overlay.totalIds(); ++id)
      if (!overlay.isAlive(id)) {
        EXPECT_EQ(report.forwardsPerNode[id], 0u);
        EXPECT_EQ(report.receivedPerNode[id], 0u);
      }
  }
}

TEST_P(DisseminationProperties, HybridProtocolsCompleteWhenFailFree) {
  const auto [strategy, fanout, killFraction] = GetParam();
  if (killFraction > 0.0) GTEST_SKIP() << "fail-free property only";
  if (strategy == Strategy::kRandCast) GTEST_SKIP() << "hybrid-only property";
  const auto overlay = makeOverlay(strategy, 0.0);
  DisseminationParams params;
  params.fanout = fanout;
  params.seed = 5;
  const auto report = disseminate(overlay, selectorFor(strategy),
                                  overlay.aliveIds()[0], params);
  EXPECT_TRUE(report.complete())
      << strategyName(strategy) << " fanout " << fanout;
}

TEST_P(DisseminationProperties, FanoutBoundsRespected) {
  const auto [strategy, fanout, killFraction] = GetParam();
  const auto overlay = makeOverlay(strategy, killFraction);
  Rng rng(3);
  std::vector<NodeId> targets;
  // The per-node forward count never exceeds fanout except for the
  // hybrid d-link floor (2 per ring) and flooding (unbounded by design).
  std::uint32_t dlinkFloor = 0;
  for (const NodeId id : overlay.aliveIds())
    dlinkFloor = std::max(
        dlinkFloor, static_cast<std::uint32_t>(overlay.dlinks(id).size()));
  for (int probe = 0; probe < 200; ++probe) {
    const NodeId self =
        overlay.aliveIds()[rng.below(overlay.aliveIds().size())];
    selectorFor(strategy).selectTargets(overlay, self, kNoNode, fanout, rng,
                                        targets);
    if (strategy == Strategy::kFlood) continue;
    EXPECT_LE(targets.size(),
              std::max<std::size_t>(fanout, dlinkFloor));
    for (const NodeId t : targets) EXPECT_NE(t, self);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DisseminationProperties,
    ::testing::Combine(
        ::testing::Values(Strategy::kRandCast, Strategy::kRingCast,
                          Strategy::kMultiRing, Strategy::kFlood),
        ::testing::Values(1u, 2u, 3u, 5u, 10u, 20u),
        ::testing::Values(0.0, 0.05, 0.25)),
    [](const ::testing::TestParamInfo<Param>& info) {
      // No structured bindings here: their commas are not protected from
      // the INSTANTIATE_TEST_SUITE_P macro's argument splitting.
      return std::string(strategyName(std::get<0>(info.param))) + "_F" +
             std::to_string(std::get<1>(info.param)) + "_kill" +
             std::to_string(static_cast<int>(std::get<2>(info.param) * 100));
    });

}  // namespace
}  // namespace vs07::cast
