// Sustained-traffic bookkeeping: the tracked-message cap, retirement to
// CompletedSummary, the SteadyStateStats aggregates, and the
// TrafficSource publish schedule. Together these pin the memory frontier
// LiveCast holds under a publish *rate*: O(maxTrackedMessages * N), not
// O(messages * N).
#include <gtest/gtest.h>

#include <numeric>

#include "cast/live.hpp"
#include "cast/traffic.hpp"
#include "common/expect.hpp"
#include "gossip/cyclon.hpp"
#include "gossip/vicinity.hpp"
#include "net/transport.hpp"
#include "sim/bootstrap.hpp"
#include "sim/engine.hpp"
#include "sim/network.hpp"
#include "sim/router.hpp"

namespace vs07::cast {
namespace {

/// Full live wiring (as live_test's harness) with the engine clock
/// attached, so linger-based retirement has a time base.
struct SteadyHarness {
  explicit SteadyHarness(std::uint32_t n, LiveCast::Params params = {},
                         std::uint64_t seed = 1)
      : network(n, seed),
        router(network),
        transport([this](NodeId to, const net::Message& m) {
          router.deliver(to, m);
        }),
        cyclon(network, transport, router, {20, 8}, seed + 1),
        vicinity(network, transport, router, cyclon, {}, seed + 2),
        live(network, transport, router, cyclon, &vicinity, params,
             seed + 3),
        engine(network, seed + 4) {
    live.attachClock(engine);
    engine.addProtocol(cyclon);
    engine.addProtocol(vicinity);
    engine.addProtocol(live);
    sim::bootstrapStar(network, cyclon);
    engine.run(60);
  }

  sim::Network network;
  sim::MessageRouter router;
  net::ImmediateTransport transport;
  gossip::Cyclon cyclon;
  gossip::Vicinity vicinity;
  LiveCast live;
  sim::Engine engine;
};

TEST(SteadyState, TrackedCapRetiresOldestIntoSummaries) {
  LiveCast::Params params;
  params.fanout = 3;
  params.maxTrackedMessages = 4;
  SteadyHarness h(60, params);

  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 10; ++i) ids.push_back(h.live.publish(0));

  // Only the newest 4 ids still carry full state; the 6 oldest retired.
  for (std::size_t i = 0; i < ids.size(); ++i)
    EXPECT_EQ(h.live.isTracked(ids[i]), i >= 6) << "id index " << i;
  EXPECT_THROW(h.live.stats(ids[0]), ContractViolation);
  EXPECT_THROW(h.live.missRatioPercentNow(ids[0]), ContractViolation);
  // Per-node knowledge is dropped at retirement.
  EXPECT_FALSE(h.live.hasDelivered(ids[0], 1));
  EXPECT_TRUE(h.live.hasDelivered(ids.back(), 1));

  const auto steady = h.live.steadyStats();
  EXPECT_EQ(steady.published, 10u);
  EXPECT_EQ(steady.retiredCompleted, 6u);
  EXPECT_EQ(steady.retiredAgedOut, 0u);
  EXPECT_EQ(steady.trackedNow, 4u);
  EXPECT_EQ(steady.peakTracked, 4u);
  // 4 bitmaps over 60 nodes, and never more than that.
  EXPECT_EQ(steady.trackedBitmapBytes, 4u * 60u);
  EXPECT_EQ(steady.peakTrackedBitmapBytes, 4u * 60u);
  // Every publish covered the whole population via push.
  EXPECT_EQ(steady.firstDeliveries, 10u * 60u);
  EXPECT_EQ(steady.pushDeliveries, 10u * 60u);
  EXPECT_EQ(steady.pullDeliveries, 0u);
}

TEST(SteadyState, SummariesPreserveTheRetiredCounters) {
  LiveCast::Params params;
  params.fanout = 3;
  params.maxTrackedMessages = 2;
  SteadyHarness h(40, params);

  const auto first = h.live.publish(0);
  const auto tracked = h.live.stats(first);  // copy before retirement
  h.live.publish(0);
  h.live.publish(0);  // pushes `first` out of the tracked set

  const CompletedSummary* summary = h.live.summary(first);
  ASSERT_NE(summary, nullptr);
  EXPECT_EQ(summary->dataId, first);
  EXPECT_EQ(summary->origin, 0u);
  EXPECT_TRUE(summary->completed);
  EXPECT_EQ(summary->delivered, 40u);
  EXPECT_EQ(summary->pushDelivered, tracked.pushDelivered);
  EXPECT_EQ(summary->messagesSent, tracked.messagesSent);
  EXPECT_EQ(summary->lastHop, tracked.lastHop);
  EXPECT_EQ(summary->newlyNotifiedPerHop, tracked.newlyNotifiedPerHop);
  EXPECT_EQ(std::accumulate(summary->newlyNotifiedPerHop.begin(),
                            summary->newlyNotifiedPerHop.end(),
                            std::uint64_t{0}),
            40u);
  // Unknown and still-tracked ids have no summary.
  EXPECT_EQ(h.live.summary(first + 99), nullptr);
  EXPECT_EQ(h.live.summary(h.live.publish(0)), nullptr);
}

TEST(SteadyState, SummaryRingIsBounded) {
  LiveCast::Params params;
  params.fanout = 3;
  params.maxTrackedMessages = 1;
  params.retainedSummaries = 2;
  SteadyHarness h(30, params);

  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 5; ++i) ids.push_back(h.live.publish(0));
  // ids[0..3] retired; the ring keeps only the newest two of them.
  EXPECT_EQ(h.live.summary(ids[0]), nullptr);
  EXPECT_EQ(h.live.summary(ids[1]), nullptr);
  EXPECT_NE(h.live.summary(ids[2]), nullptr);
  EXPECT_NE(h.live.summary(ids[3]), nullptr);
  EXPECT_EQ(h.live.steadyStats().retired(), 4u);
}

TEST(SteadyState, CompletedLingerRetiresWithoutCapPressure) {
  LiveCast::Params params;
  params.fanout = 3;
  params.pullInterval = 1;
  params.completedLingerTicks = 2;
  SteadyHarness h(50, params);

  const auto id = h.live.publish(0);
  EXPECT_TRUE(h.live.isTracked(id));  // completion alone does not retire
  h.engine.run(5);                    // well past the 2-tick linger
  // The sweep runs on the next publish, far below the cap.
  h.live.publish(0);
  EXPECT_FALSE(h.live.isTracked(id));
  const CompletedSummary* summary = h.live.summary(id);
  ASSERT_NE(summary, nullptr);
  EXPECT_TRUE(summary->completed);
  EXPECT_EQ(h.live.steadyStats().retiredCompleted, 1u);
}

TEST(SteadyState, RedundancyRatioCountsDuplicates) {
  LiveCast::Params params;
  params.fanout = 4;
  SteadyHarness h(80, params);
  h.live.publish(0);
  const auto steady = h.live.steadyStats();
  // Fanout 4 over 80 nodes pushes ~4x80 messages for 80 first
  // deliveries: a clear redundant remainder.
  EXPECT_EQ(steady.firstDeliveries, 80u);
  EXPECT_GT(steady.redundantDeliveries, 0u);
  EXPECT_NEAR(steady.redundancyRatio(),
              static_cast<double>(steady.redundantDeliveries) / 80.0,
              1e-12);
}

TEST(SteadyState, MergeFoldsCountersPeaksAndFrontiers) {
  SteadyStateStats a;
  a.published = 10;
  a.retiredCompleted = 6;
  a.retiredAgedOut = 1;
  a.firstDeliveries = 600;
  a.pushDeliveries = 550;
  a.pullDeliveries = 50;
  a.redundantDeliveries = 120;
  a.spreadTicksTotalRetired = 70;
  a.maxSpreadTicksRetired = 12;
  a.trackedNow = 3;
  a.peakTracked = 4;
  a.trackedBitmapBytes = 180;
  a.peakTrackedBitmapBytes = 240;

  SteadyStateStats b;
  b.published = 5;
  b.retiredCompleted = 2;
  b.retiredAgedOut = 2;
  b.firstDeliveries = 200;
  b.pushDeliveries = 200;
  b.redundantDeliveries = 40;
  b.spreadTicksTotalRetired = 30;
  b.maxSpreadTicksRetired = 20;
  b.trackedNow = 1;
  b.peakTracked = 2;
  b.trackedBitmapBytes = 60;
  b.peakTrackedBitmapBytes = 120;

  SteadyStateStats m = a;
  m.merge(b);
  // Counters add...
  EXPECT_EQ(m.published, 15u);
  EXPECT_EQ(m.retired(), 11u);
  EXPECT_EQ(m.firstDeliveries, 800u);
  EXPECT_EQ(m.pushDeliveries, 750u);
  EXPECT_EQ(m.pullDeliveries, 50u);
  EXPECT_EQ(m.redundantDeliveries, 160u);
  EXPECT_EQ(m.spreadTicksTotalRetired, 100u);
  // ...peaks take the max...
  EXPECT_EQ(m.maxSpreadTicksRetired, 20u);
  EXPECT_EQ(m.peakTracked, 4u);
  EXPECT_EQ(m.peakTrackedBitmapBytes, 240u);
  // ...and concurrent live frontiers add (the memory is held at once).
  EXPECT_EQ(m.trackedNow, 4u);
  EXPECT_EQ(m.trackedBitmapBytes, 240u);
  EXPECT_NEAR(m.redundancyRatio(), 160.0 / 800.0, 1e-12);
}

TEST(SteadyState, MergeOfInstanceStatsEqualsTheCombinedAccounting) {
  // Two independent populations vs their SteadyStateStats merged: the
  // published/delivery counters of the union are exactly the sums.
  LiveCast::Params params;
  params.fanout = 3;
  params.maxTrackedMessages = 2;
  SteadyHarness h1(40, params, /*seed=*/1);
  SteadyHarness h2(30, params, /*seed=*/2);
  for (int i = 0; i < 4; ++i) h1.live.publish(0);
  for (int i = 0; i < 3; ++i) h2.live.publish(0);

  SteadyStateStats merged = h1.live.steadyStats();
  merged.merge(h2.live.steadyStats());
  EXPECT_EQ(merged.published, 7u);
  EXPECT_EQ(merged.firstDeliveries, 4u * 40u + 3u * 30u);
  EXPECT_EQ(merged.trackedNow, 4u);           // 2 tracked per instance
  EXPECT_EQ(merged.trackedBitmapBytes, 2u * 40u + 2u * 30u);
  EXPECT_EQ(merged.retired(), (4u - 2u) + (3u - 2u));

  // Merge is associative and commutative on these integer fields.
  SteadyStateStats other = h2.live.steadyStats();
  other.merge(h1.live.steadyStats());
  EXPECT_EQ(merged.published, other.published);
  EXPECT_EQ(merged.firstDeliveries, other.firstDeliveries);
  EXPECT_EQ(merged.peakTracked, other.peakTracked);
  EXPECT_EQ(merged.trackedBitmapBytes, other.trackedBitmapBytes);
}

// -- TrafficSource -------------------------------------------------------

TEST(TrafficSource, FixedRateAccumulatesFractionalPublishes) {
  SteadyHarness h(30);
  TrafficSource traffic(h.engine, h.network, h.live,
                        {.messagesPerCycle = 0.5, .poisson = false},
                        /*seed=*/9);
  h.engine.addControl(traffic);
  h.engine.run(10);
  // 0.5 msgs/cycle accumulates to exactly one publish every 2nd cycle.
  EXPECT_EQ(traffic.published(), 5u);
  EXPECT_EQ(h.live.steadyStats().published, 5u);
}

TEST(TrafficSource, PoissonRateHitsTheMeanRoughly) {
  SteadyHarness h(30);
  TrafficSource traffic(h.engine, h.network, h.live,
                        {.messagesPerCycle = 2.0, .poisson = true},
                        /*seed=*/10);
  h.engine.addControl(traffic);
  h.engine.run(50);
  // Mean 100, sigma 10: a deterministic draw within ±4 sigma.
  EXPECT_GT(traffic.published(), 60u);
  EXPECT_LT(traffic.published(), 140u);
}

TEST(TrafficSource, MaxMessagesStopsTheSource) {
  SteadyHarness h(30);
  TrafficSource traffic(h.engine, h.network, h.live,
                        {.messagesPerCycle = 5.0, .maxMessages = 7},
                        /*seed=*/11);
  h.engine.addControl(traffic);
  h.engine.run(20);
  EXPECT_EQ(traffic.published(), 7u);
  EXPECT_EQ(traffic.scheduled(), 7u);
}

TEST(TrafficSource, PublishHookSeesEveryMessage) {
  SteadyHarness h(30);
  TrafficSource traffic(h.engine, h.network, h.live,
                        {.messagesPerCycle = 1.0, .poisson = false,
                         .maxMessages = 6},
                        /*seed=*/12);
  std::vector<std::uint64_t> ids;
  std::uint64_t lastTick = 0;
  traffic.setPublishHook(
      [&](std::uint64_t dataId, NodeId origin, std::uint64_t tick) {
        ids.push_back(dataId);
        EXPECT_TRUE(h.network.isAlive(origin));
        EXPECT_GE(tick, lastTick);  // hook fires in tick order
        lastTick = tick;
      });
  h.engine.addControl(traffic);
  h.engine.run(10);
  ASSERT_EQ(ids.size(), 6u);
  for (std::size_t i = 1; i < ids.size(); ++i)
    EXPECT_GT(ids[i], ids[i - 1]);  // ids are fresh and increasing
}

TEST(TrafficSource, PoissonSamplerIsDeterministicAndSane) {
  Rng a(7), b(7);
  for (int i = 0; i < 20; ++i)
    EXPECT_EQ(samplePoisson(a, 3.0), samplePoisson(b, 3.0));
  Rng zero(8);
  EXPECT_EQ(samplePoisson(zero, 0.0), 0u);
  // The chunked sampler handles means far beyond exp() underflow: the
  // draw stays near the mean instead of saturating or hanging.
  Rng big(9);
  double total = 0;
  for (int i = 0; i < 20; ++i) total += samplePoisson(big, 500.0);
  EXPECT_NEAR(total / 20.0, 500.0, 50.0);
}

}  // namespace
}  // namespace vs07::cast
