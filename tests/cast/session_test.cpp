// CastSession — the unified dissemination API. These tests pin the
// contract the redesign introduced: SnapshotSession and LiveSession
// speak the same Strategy plug-point and return the same DeliveryReport,
// with consistent accounting across both execution paths.
#include <gtest/gtest.h>

#include <numeric>

#include "analysis/scenario.hpp"
#include "cast/session.hpp"
#include "common/expect.hpp"
#include "overlay/graph.hpp"

namespace vs07::cast {
namespace {

using analysis::Scenario;

CastOptions ringOptions(std::uint32_t fanout = 3, std::uint64_t seed = 1) {
  return {.strategy = Strategy::kRingCast, .fanout = fanout, .seed = seed};
}

// -- SnapshotSession -----------------------------------------------------

TEST(SnapshotSession, FloodOverGraphMatchesKnownNumbers) {
  SnapshotSession session(snapshotGraph(overlay::makeRing(10)),
                          {.strategy = Strategy::kFlood, .fanout = 1});
  const auto report = session.publish(0);
  EXPECT_EQ(report.strategy, Strategy::kFlood);
  EXPECT_TRUE(report.complete());
  EXPECT_EQ(report.notified, 10u);
  EXPECT_EQ(report.pushDelivered, 10u);
  EXPECT_EQ(report.pullDelivered, 0u);
  EXPECT_EQ(report.lastHop, 5u);
  EXPECT_EQ(report.messagesVirgin, 9u);
}

TEST(SnapshotSession, RingCastCompletesOnWarmOverlay) {
  const auto scenario = Scenario::builder().nodes(300).seed(11).build();
  auto session = scenario.snapshotSession(ringOptions());
  const auto report = session.publish(0);
  EXPECT_EQ(report.strategy, Strategy::kRingCast);
  EXPECT_TRUE(report.complete());
  EXPECT_EQ(report.missRatioPercent(), 0.0);
  EXPECT_TRUE(report.missed.empty());
}

TEST(SnapshotSession, SuccessivePublishesDifferButReplayDeterministically) {
  const auto scenario = Scenario::builder().nodes(200).seed(12).build();
  auto a = scenario.snapshotSession(
      {.strategy = Strategy::kRandCast, .fanout = 2, .seed = 5});
  auto b = scenario.snapshotSession(
      {.strategy = Strategy::kRandCast, .fanout = 2, .seed = 5});
  const auto a1 = a.publish(0);
  const auto a2 = a.publish(0);
  const auto b1 = b.publish(0);
  // Same session seed: the publish sequence replays exactly.
  EXPECT_EQ(a1.messagesTotal, b1.messagesTotal);
  EXPECT_EQ(a1.newlyNotifiedPerHop, b1.newlyNotifiedPerHop);
  // Within one session, each publish draws fresh randomness.
  EXPECT_TRUE(a1.newlyNotifiedPerHop != a2.newlyNotifiedPerHop ||
              a1.messagesRedundant != a2.messagesRedundant);
}

TEST(SnapshotSession, PublishFromRandomPicksAliveOrigins) {
  auto alive = std::vector<std::uint8_t>(20, 1);
  for (NodeId id = 0; id < 10; ++id) alive[id] = 0;
  SnapshotSession session(
      snapshotGraph(overlay::makeClique(20), std::move(alive)),
      {.strategy = Strategy::kFlood, .fanout = 1, .seed = 3});
  for (int i = 0; i < 10; ++i) {
    const auto report = session.publishFromRandom();
    EXPECT_GE(report.origin, 10u);
  }
}

TEST(SnapshotSession, RecordsLoadOnRequest) {
  SnapshotSession session(snapshotGraph(overlay::makeHarary(4, 30)),
                          {.strategy = Strategy::kFlood, .fanout = 1,
                           .recordLoad = true});
  const auto report = session.publish(0);
  ASSERT_EQ(report.forwardsPerNode.size(), 30u);
  const auto forwards =
      std::accumulate(report.forwardsPerNode.begin(),
                      report.forwardsPerNode.end(), std::uint64_t{0});
  EXPECT_EQ(forwards, report.messagesTotal);
}

TEST(SnapshotSession, PushPullRejected) {
  EXPECT_THROW(SnapshotSession(snapshotGraph(overlay::makeRing(5)),
                               {.strategy = Strategy::kPushPull}),
               ContractViolation);
}

// -- LiveSession ---------------------------------------------------------

TEST(LiveSession, RingPushMatchesSnapshotCompleteness) {
  // The paper's static fail-free guarantee must hold on both execution
  // paths: live RINGCAST push covers everyone, like the frozen overlay.
  Scenario scenario = Scenario::builder().nodes(250).seed(13).build();
  auto& session = scenario.liveSession(ringOptions());
  const auto report = session.publish(0);
  EXPECT_EQ(report.strategy, Strategy::kRingCast);
  EXPECT_TRUE(report.complete());
  EXPECT_EQ(report.pushDelivered, 250u);
  EXPECT_EQ(report.pullDelivered, 0u);
  EXPECT_EQ(report.origin, 0u);
  // Message accounting is conserved on the immediate transport.
  EXPECT_EQ(report.messagesTotal, report.messagesVirgin +
                                      report.messagesRedundant +
                                      report.messagesToDead);
  // Per-hop series covers every push delivery and starts at the origin.
  const auto hopSum = std::accumulate(report.newlyNotifiedPerHop.begin(),
                                      report.newlyNotifiedPerHop.end(),
                                      std::uint64_t{0});
  EXPECT_EQ(hopSum, report.pushDelivered);
  ASSERT_FALSE(report.newlyNotifiedPerHop.empty());
  EXPECT_EQ(report.newlyNotifiedPerHop[0], 1u);
  EXPECT_GT(report.lastHop, 0u);
}

TEST(LiveSession, PullBackfillsMissesAfterFailures) {
  Scenario scenario = Scenario::builder().nodes(400).seed(14).build();
  auto& session = scenario.liveSession({.strategy = Strategy::kPushPull,
                                        .fanout = 2,
                                        .settleCycles = 0,
                                        .pullInterval = 1});
  scenario.killRandomFraction(0.15);

  const auto atPush = session.publish(scenario.network().aliveIds().front());
  const auto id = session.lastDataId();
  scenario.runCycles(6);
  const auto settled = session.report(id);

  EXPECT_GE(atPush.missed.size(), settled.missed.size());
  EXPECT_EQ(settled.missRatioPercent(), 0.0);
  EXPECT_EQ(settled.pushDelivered + settled.pullDelivered, settled.notified);
  if (!atPush.complete()) {
    EXPECT_GT(settled.pullDelivered, 0u);
    EXPECT_GT(settled.pullRequests, 0u);
  }
}

TEST(LiveSession, SettleCyclesFoldThePullPhaseIntoPublish) {
  Scenario scenario = Scenario::builder().nodes(400).seed(15).build();
  auto& session = scenario.liveSession({.strategy = Strategy::kPushPull,
                                        .fanout = 2,
                                        .settleCycles = 6,
                                        .pullInterval = 1});
  scenario.killRandomFraction(0.15);
  const auto report =
      session.publish(scenario.network().aliveIds().front());
  EXPECT_EQ(report.missRatioPercent(), 0.0);
}

TEST(LiveSession, RandCastIgnoresTheRing) {
  Scenario scenario = Scenario::builder().nodes(200).seed(16).build();
  auto& session = scenario.liveSession(
      {.strategy = Strategy::kRandCast, .fanout = 2, .seed = 9});
  const auto report = session.publish(0);
  EXPECT_EQ(report.strategy, Strategy::kRandCast);
  // F=2 random-only push on 200 nodes virtually never covers everyone
  // (RINGCAST would, deterministically).
  EXPECT_FALSE(report.complete());
}

TEST(LiveSession, MultiRingForwardsOverEveryRing) {
  Scenario scenario =
      Scenario::builder().nodes(200).rings(2).seed(17).build();
  auto& session = scenario.liveSession(
      {.strategy = Strategy::kMultiRing, .fanout = 2});
  const auto report = session.publish(0);
  // 2 rings = up to 4 d-links per node: even F=2 completes because the
  // hybrid rule forwards across *all* d-links (Fig. 5 / §8).
  EXPECT_TRUE(report.complete());
}

TEST(LiveSession, ReportToDeadCountsMessagesIntoTheOutage) {
  Scenario scenario = Scenario::builder().nodes(300).seed(18).build();
  auto& session = scenario.liveSession(ringOptions());
  scenario.killRandomFraction(0.10);
  const auto report =
      session.publish(scenario.network().aliveIds().front());
  EXPECT_GT(report.messagesToDead, 0u);
  EXPECT_EQ(report.aliveTotal, scenario.network().aliveCount());
}

TEST(LiveSession, LoadDeltaCoversOnlyThisPublish) {
  Scenario scenario = Scenario::builder().nodes(150).seed(19).build();
  auto& session = scenario.liveSession({.strategy = Strategy::kRingCast,
                                        .fanout = 3,
                                        .recordLoad = true});
  const auto first = session.publish(0);
  const auto second = session.publish(1);
  const auto sum = [](const std::vector<std::uint32_t>& v) {
    return std::accumulate(v.begin(), v.end(), std::uint64_t{0});
  };
  // Each report's forward delta accounts exactly its own message total.
  EXPECT_EQ(sum(first.forwardsPerNode), first.messagesTotal);
  EXPECT_EQ(sum(second.forwardsPerNode), second.messagesTotal);
}

TEST(LiveSession, UnknownDataIdRejected) {
  Scenario scenario = Scenario::builder().nodes(60).seed(20).build();
  auto& session = scenario.liveSession(ringOptions());
  EXPECT_THROW(session.report(123456), ContractViolation);
}

TEST(LiveSession, DelayedTransportSpreadsTheWaveOverCycles) {
  Scenario scenario = Scenario::builder()
                          .nodes(200)
                          .seed(21)
                          .delayedTransport(1, 3)
                          .build();
  auto& session = scenario.liveSession(ringOptions());
  const auto atPublish = session.publish(0);
  // Everything is still in flight right after publish...
  EXPECT_GT(atPublish.missRatioPercent(), 50.0);
  ASSERT_NE(scenario.delayedTransport(), nullptr);
  // ...and the engine's transport pump delivers it over the next cycles.
  scenario.runCycles(100);
  const auto settled = session.report(session.lastDataId());
  EXPECT_EQ(settled.missRatioPercent(), 0.0);
}

TEST(LiveSession, LossyTransportLosesMessagesButPullRepairs) {
  Scenario scenario = Scenario::builder()
                          .nodes(300)
                          .seed(22)
                          .lossyTransport(0.10)
                          .build();
  auto& session = scenario.liveSession({.strategy = Strategy::kPushPull,
                                        .fanout = 3,
                                        .pullInterval = 1});
  const auto atPush = session.publish(0);
  EXPECT_GT(atPush.missRatioPercent(), 0.0);  // 10% loss bites at F=3
  scenario.runCycles(8);
  const auto settled = session.report(session.lastDataId());
  EXPECT_LT(settled.missRatioPercent(), atPush.missRatioPercent());
}

}  // namespace
}  // namespace vs07::cast
