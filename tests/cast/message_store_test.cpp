// Dedicated MessageStore coverage: FIFO eviction at capacity, digest
// ordering, and the §8 forgetting semantics — "the duration for which
// nodes maintain old messages" is the buffer capacity, and once an id is
// evicted the node treats a re-reception as brand new: it delivers,
// re-buffers, and re-forwards it (src/cast/live.cpp, handleData).
#include <gtest/gtest.h>

#include "cast/live.hpp"
#include "common/expect.hpp"
#include "gossip/cyclon.hpp"
#include "gossip/vicinity.hpp"
#include "net/transport.hpp"
#include "sim/bootstrap.hpp"
#include "sim/engine.hpp"
#include "sim/network.hpp"
#include "sim/router.hpp"

namespace vs07::cast {
namespace {

TEST(MessageStore, FifoEvictionAtCapacity) {
  MessageStore store(4);
  for (std::uint64_t id = 1; id <= 4; ++id) store.remember(id);
  EXPECT_EQ(store.buffered().size(), 4u);

  // Each further remember evicts exactly the oldest surviving id.
  store.remember(5);
  EXPECT_FALSE(store.hasSeen(1));
  EXPECT_TRUE(store.hasSeen(2));
  store.remember(6);
  EXPECT_FALSE(store.hasSeen(2));
  EXPECT_TRUE(store.hasSeen(3));
  EXPECT_EQ(store.buffered().size(), 4u);
  EXPECT_EQ(store.buffered().front(), 3u);  // oldest first
  EXPECT_EQ(store.buffered().back(), 6u);
}

TEST(MessageStore, ReRememberingDoesNotRefreshFifoPosition) {
  // Eviction order is arrival order, not last-touch order (FIFO, not LRU).
  MessageStore store(2);
  store.remember(1);
  store.remember(2);
  store.remember(1);  // no-op: 1 keeps its original (oldest) slot
  store.remember(3);  // evicts 1, not 2
  EXPECT_FALSE(store.hasSeen(1));
  EXPECT_TRUE(store.hasSeen(2));
  EXPECT_TRUE(store.hasSeen(3));
}

TEST(MessageStore, DigestNewestLastAndBounded) {
  MessageStore store(8);
  for (std::uint64_t id = 10; id <= 15; ++id) store.remember(id);
  // Full digest preserves arrival order, newest last.
  EXPECT_EQ(store.digest(16),
            (std::vector<std::uint64_t>{10, 11, 12, 13, 14, 15}));
  // A bounded digest keeps the *newest* ids, still newest last.
  EXPECT_EQ(store.digest(3), (std::vector<std::uint64_t>{13, 14, 15}));
  EXPECT_EQ(store.digest(0), std::vector<std::uint64_t>{});
}

TEST(MessageStore, ZeroCapacityRejected) {
  EXPECT_THROW(MessageStore(0), ContractViolation);
}

TEST(MessageStore, ClearForgetsEverything) {
  MessageStore store(4);
  store.remember(1);
  store.clear();
  EXPECT_FALSE(store.hasSeen(1));
  EXPECT_TRUE(store.buffered().empty());
  EXPECT_TRUE(store.digest(4).empty());
}

TEST(MessageStore, EvictedIdIsSeenAsNewAgain) {
  MessageStore store(1);
  store.remember(1);
  store.remember(2);  // evicts 1
  EXPECT_FALSE(store.hasSeen(1));
  store.remember(1);  // accepted like a brand-new id
  EXPECT_TRUE(store.hasSeen(1));
  EXPECT_FALSE(store.hasSeen(2));
}

/// Minimal live wiring for the re-forwarding test below.
struct TinyLive {
  explicit TinyLive(std::uint32_t n, LiveCast::Params params)
      : network(n, /*seed=*/3),
        router(network),
        transport([this](NodeId to, const net::Message& m) {
          router.deliver(to, m);
        }),
        cyclon(network, transport, router, {20, 8}, 4),
        vicinity(network, transport, router, cyclon, {}, 5),
        live(network, transport, router, cyclon, &vicinity, params, 6),
        engine(network, 7) {
    engine.addProtocol(cyclon);
    engine.addProtocol(vicinity);
    sim::bootstrapStar(network, cyclon);
    engine.run(50);
  }

  sim::Network network;
  sim::MessageRouter router;
  net::ImmediateTransport transport;
  gossip::Cyclon cyclon;
  gossip::Vicinity vicinity;
  LiveCast live;
  sim::Engine engine;
};

TEST(MessageStore, EvictedMessageIsReForwardedOnReReception) {
  // §8 semantics end to end: with a 1-slot buffer, publishing message B
  // evicts message A everywhere; re-injecting A at one node makes that
  // node treat it as new — it forwards A again (push traffic grows by a
  // whole re-dissemination, not by zero as a duplicate would).
  LiveCast::Params params;
  params.fanout = 3;
  params.pullInterval = 0;  // isolate push behaviour
  params.bufferCapacity = 1;
  TinyLive h(50, params);

  const auto a = h.live.publish(0);
  const auto b = h.live.publish(0);
  ASSERT_NE(a, b);
  for (const NodeId id : h.network.aliveIds()) {
    EXPECT_FALSE(h.live.store(id).hasSeen(a)) << "node " << id;
  }

  const auto sentBefore = h.live.pushMessagesSent();
  net::Message again;
  again.kind = net::MessageKind::Data;
  again.from = 0;
  again.dataId = a;
  h.transport.send(/*to=*/1, std::move(again));

  // Node 1 re-buffered A and the re-forward cascaded through every node
  // whose buffer had also forgotten it.
  EXPECT_TRUE(h.live.store(1).hasSeen(a));
  EXPECT_GT(h.live.pushMessagesSent(), sentBefore + 1);
  // Delivery bookkeeping counts the wave as redundant, not as new
  // deliveries: every node already got A once.
  EXPECT_GT(h.live.stats(a).redundantDeliveries, 0u);
  EXPECT_EQ(h.live.stats(a).pushDelivered, 50u);
}

}  // namespace
}  // namespace vs07::cast
