// Dedicated MessageStore coverage: FIFO eviction at capacity, digest
// ordering, and the §8 forgetting semantics — "the duration for which
// nodes maintain old messages" is the buffer capacity, and once an id is
// evicted the node treats a re-reception as brand new: it delivers,
// re-buffers, and re-forwards it (src/cast/live.cpp, handleData).
#include <gtest/gtest.h>

#include "cast/live.hpp"
#include "common/expect.hpp"
#include "gossip/cyclon.hpp"
#include "gossip/vicinity.hpp"
#include "net/transport.hpp"
#include "sim/bootstrap.hpp"
#include "sim/engine.hpp"
#include "sim/network.hpp"
#include "sim/router.hpp"

namespace vs07::cast {
namespace {

TEST(MessageStore, FifoEvictionAtCapacity) {
  MessageStore store(4);
  for (std::uint64_t id = 1; id <= 4; ++id) store.remember(id);
  EXPECT_EQ(store.buffered().size(), 4u);

  // Each further remember evicts exactly the oldest surviving id.
  store.remember(5);
  EXPECT_FALSE(store.hasSeen(1));
  EXPECT_TRUE(store.hasSeen(2));
  store.remember(6);
  EXPECT_FALSE(store.hasSeen(2));
  EXPECT_TRUE(store.hasSeen(3));
  EXPECT_EQ(store.buffered().size(), 4u);
  EXPECT_EQ(store.buffered().front(), 3u);  // oldest first
  EXPECT_EQ(store.buffered().back(), 6u);
}

TEST(MessageStore, ReRememberingDoesNotRefreshFifoPosition) {
  // Eviction order is arrival order, not last-touch order (FIFO, not LRU).
  MessageStore store(2);
  store.remember(1);
  store.remember(2);
  store.remember(1);  // no-op: 1 keeps its original (oldest) slot
  store.remember(3);  // evicts 1, not 2
  EXPECT_FALSE(store.hasSeen(1));
  EXPECT_TRUE(store.hasSeen(2));
  EXPECT_TRUE(store.hasSeen(3));
}

TEST(MessageStore, DigestNewestLastAndBounded) {
  MessageStore store(8);
  for (std::uint64_t id = 10; id <= 15; ++id) store.remember(id);
  // Full digest preserves arrival order, newest last.
  EXPECT_EQ(store.digest(16),
            (std::vector<std::uint64_t>{10, 11, 12, 13, 14, 15}));
  // A bounded digest keeps the *newest* ids, still newest last.
  EXPECT_EQ(store.digest(3), (std::vector<std::uint64_t>{13, 14, 15}));
  EXPECT_EQ(store.digest(0), std::vector<std::uint64_t>{});
}

TEST(MessageStore, ZeroCapacityRejected) {
  EXPECT_THROW(MessageStore(0), ContractViolation);
}

TEST(MessageStore, ClearForgetsEverything) {
  MessageStore store(4);
  store.remember(1);
  store.clear();
  EXPECT_FALSE(store.hasSeen(1));
  EXPECT_TRUE(store.buffered().empty());
  EXPECT_TRUE(store.digest(4).empty());
}

TEST(MessageStore, EvictionIsSticky) {
  // hasEvicted() marks the moment "not buffered" stops meaning "never
  // received" — windowed pull digests keep their lower bound at 0 until
  // then, so a joiner can recover ids older than everything it holds.
  MessageStore store(2);
  EXPECT_FALSE(store.hasEvicted());
  store.remember(1);
  store.remember(2);
  EXPECT_FALSE(store.hasEvicted());  // full, but nothing lost yet
  store.remember(3);
  EXPECT_TRUE(store.hasEvicted());
  store.clear();
  EXPECT_FALSE(store.hasEvicted());
}

TEST(MessageStore, RecoveryHorizonIsTheMaxEvictedId) {
  // Eviction is FIFO by *arrival*: jumbled arrival order means the
  // evicted id can be larger than ids still held, so the horizon is the
  // max over everything evicted, not the oldest arrival.
  MessageStore store(2);
  EXPECT_EQ(store.recoveryHorizon(), 0u);
  store.remember(9);  // arrives first, evicted first
  store.remember(4);
  store.remember(5);  // evicts 9
  EXPECT_EQ(store.recoveryHorizon(), 9u);
  store.remember(6);  // evicts 4: horizon keeps the max, not the latest
  EXPECT_EQ(store.recoveryHorizon(), 9u);
  store.clear();
  EXPECT_EQ(store.recoveryHorizon(), 0u);
}

TEST(MessageStore, EvictedIdIsSeenAsNewAgain) {
  MessageStore store(1);
  store.remember(1);
  store.remember(2);  // evicts 1
  EXPECT_FALSE(store.hasSeen(1));
  store.remember(1);  // accepted like a brand-new id
  EXPECT_TRUE(store.hasSeen(1));
  EXPECT_FALSE(store.hasSeen(2));
}

TEST(MessageStore, WindowedSliceRotatesWithoutWrapping) {
  MessageStore store(8);
  for (std::uint64_t id = 10; id <= 15; ++id) store.remember(id);

  std::vector<std::uint64_t> out;
  // Successive windows walk the buffer oldest-first and never wrap: the
  // final slice is short, and positions past the end return empty (the
  // caller restarts at 0), so one slice never spans old and new ids.
  EXPECT_EQ(store.windowInto(0, 4, out), 4u);
  EXPECT_EQ(out, (std::vector<std::uint64_t>{10, 11, 12, 13}));
  EXPECT_EQ(store.windowInto(4, 4, out), 2u);
  EXPECT_EQ(out, (std::vector<std::uint64_t>{14, 15}));
  EXPECT_EQ(store.windowInto(6, 4, out), 0u);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(store.windowInto(99, 4, out), 0u);
  EXPECT_EQ(store.size(), 6u);
}

/// Minimal live wiring for the re-forwarding test below.
struct TinyLive {
  explicit TinyLive(std::uint32_t n, LiveCast::Params params)
      : network(n, /*seed=*/3),
        router(network),
        transport([this](NodeId to, const net::Message& m) {
          router.deliver(to, m);
        }),
        cyclon(network, transport, router, {20, 8}, 4),
        vicinity(network, transport, router, cyclon, {}, 5),
        live(network, transport, router, cyclon, &vicinity, params, 6),
        engine(network, 7) {
    engine.addProtocol(cyclon);
    engine.addProtocol(vicinity);
    sim::bootstrapStar(network, cyclon);
    engine.run(50);
  }

  sim::Network network;
  sim::MessageRouter router;
  net::ImmediateTransport transport;
  gossip::Cyclon cyclon;
  gossip::Vicinity vicinity;
  LiveCast live;
  sim::Engine engine;
};

TEST(MessageStore, EvictedMessageIsReForwardedOnReReception) {
  // §8 semantics end to end: with a 1-slot buffer, publishing message B
  // evicts message A everywhere; re-injecting A at one node makes that
  // node treat it as new — it forwards A again (push traffic grows by a
  // whole re-dissemination, not by zero as a duplicate would).
  LiveCast::Params params;
  params.fanout = 3;
  params.pullInterval = 0;  // isolate push behaviour
  params.bufferCapacity = 1;
  TinyLive h(50, params);

  const auto a = h.live.publish(0);
  const auto b = h.live.publish(0);
  ASSERT_NE(a, b);
  for (const NodeId id : h.network.aliveIds()) {
    EXPECT_FALSE(h.live.store(id).hasSeen(a)) << "node " << id;
  }

  const auto sentBefore = h.live.pushMessagesSent();
  net::Message again;
  again.kind = net::MessageKind::Data;
  again.from = 0;
  again.dataId = a;
  h.transport.send(/*to=*/1, std::move(again));

  // Node 1 re-buffered A and the re-forward cascaded through every node
  // whose buffer had also forgotten it.
  EXPECT_TRUE(h.live.store(1).hasSeen(a));
  EXPECT_GT(h.live.pushMessagesSent(), sentBefore + 1);
  // Delivery bookkeeping counts the wave as redundant, not as new
  // deliveries: every node already got A once.
  EXPECT_GT(h.live.stats(a).redundantDeliveries, 0u);
  EXPECT_EQ(h.live.stats(a).pushDelivered, 50u);
}

TEST(MessageStore, WindowedPullDoesNotResurrectEvictedIds) {
  // With identical post-eviction buffers everywhere, windowed digests
  // advertise [oldest-held, inf) — evicted ids sit *below* every window
  // and are beyond the recovery horizon. No pull answer may re-inject
  // them (re-injection would go supercritical: every re-delivery of a
  // forgotten id spawns a fresh fanout-wide wave, see the test above).
  LiveCast::Params params;
  params.fanout = 3;
  params.pullInterval = 1;
  params.bufferCapacity = 4;
  TinyLive h(50, params);
  h.engine.addProtocol(h.live);

  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 6; ++i) ids.push_back(h.live.publish(0));
  for (const NodeId node : h.network.aliveIds())
    ASSERT_FALSE(h.live.store(node).hasSeen(ids[0]));

  const auto pushBefore = h.live.pushMessagesSent();
  const auto pullsBefore = h.live.pullRequestsSent();
  h.engine.run(10);
  EXPECT_GT(h.live.pullRequestsSent(), pullsBefore);  // pulls did run
  EXPECT_EQ(h.live.pullAnswersSent(), 0u);  // nothing useful to serve
  EXPECT_EQ(h.live.pushMessagesSent(), pushBefore);  // no re-waves
  for (const NodeId node : h.network.aliveIds()) {
    EXPECT_FALSE(h.live.store(node).hasSeen(ids[0])) << "node " << node;
    EXPECT_FALSE(h.live.store(node).hasSeen(ids[1])) << "node " << node;
  }
}

TEST(MessageStore, RecoveryDeliveriesBelowTheHorizonAreDropped) {
  // The receiver-side half of the recovery horizon: a pull-layer Data
  // message (answer or recovery-wave forward) for an id the node already
  // evicted must be dropped, not re-buffered. Accepting it would evict
  // another id early — the positive feedback that winds sustained
  // traffic into supercritical re-wave storms. Plain push traffic keeps
  // §8's "evicted ids are new again" semantics (see the re-forwarding
  // test above).
  LiveCast::Params params;
  params.fanout = 3;
  params.pullInterval = 0;
  params.bufferCapacity = 1;
  TinyLive h(50, params);

  const auto a = h.live.publish(0);
  const auto b = h.live.publish(0);  // evicts `a` everywhere
  ASSERT_LT(a, b);
  ASSERT_GT(h.live.store(1).recoveryHorizon(), 0u);

  const auto pushBefore = h.live.pushMessagesSent();
  net::Message zombie;
  zombie.kind = net::MessageKind::Data;
  zombie.flags = net::kFlagPullAnswer;
  zombie.from = 0;
  zombie.dataId = a;
  h.transport.send(/*to=*/1, std::move(zombie));

  EXPECT_FALSE(h.live.store(1).hasSeen(a));  // not re-buffered
  EXPECT_EQ(h.live.pushMessagesSent(), pushBefore);  // no re-wave
  EXPECT_EQ(h.live.recoveryDropsBeyondHorizon(), 1u);
  // `b` sits above the horizon, so the drop branch must not touch it:
  // node 1 still holds it, and the repair lands in the ordinary
  // redundant path instead.
  const auto redundantBefore = h.live.stats(b).redundantDeliveries;
  net::Message repair;
  repair.kind = net::MessageKind::Data;
  repair.flags = net::kFlagPullAnswer;
  repair.from = 0;
  repair.dataId = b;
  h.transport.send(/*to=*/1, std::move(repair));
  EXPECT_EQ(h.live.recoveryDropsBeyondHorizon(), 1u);
  EXPECT_EQ(h.live.stats(b).redundantDeliveries, redundantBefore + 1);
}

TEST(MessageStore, WindowedPullBackfillsAJoinerUnderOneSharedBudget) {
  // A fresh joiner advertises an empty window [0, inf): everything its
  // peer buffers is a candidate, and one pull answer serves at most
  // pullBudget ids — one budget shared across ids, chosen uniformly among
  // the useful ones (random-useful, Sanghavi et al.), not newest-first.
  LiveCast::Params params;
  params.fanout = 3;
  params.pullInterval = 1;
  params.bufferCapacity = 32;
  params.digestLength = 8;
  params.pullBudget = 4;
  TinyLive h(60, params);
  h.engine.addProtocol(h.live);

  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 10; ++i) ids.push_back(h.live.publish(0));

  const NodeId joiner = h.network.spawn(h.engine.cycle());
  Rng rng(21);
  NodeId introducer = joiner;
  while (introducer == joiner) introducer = h.network.randomAlive(rng);
  h.cyclon.onJoin(joiner, introducer);
  h.vicinity.onJoin(joiner, introducer);

  const auto deliveredToJoiner = [&] {
    std::size_t count = 0;
    for (const auto id : ids)
      if (h.live.hasDelivered(id, joiner)) ++count;
    return count;
  };
  ASSERT_EQ(deliveredToJoiner(), 0u);
  h.engine.run(1);
  const auto afterOnePull = deliveredToJoiner();
  EXPECT_GT(afterOnePull, 0u);
  EXPECT_LE(afterOnePull, 4u);  // the budget caps one answer
  h.engine.run(12);
  EXPECT_EQ(deliveredToJoiner(), 10u);  // old gaps close, not just new
}

}  // namespace
}  // namespace vs07::cast
