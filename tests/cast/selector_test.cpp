#include "cast/selector.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "cast/snapshot.hpp"

namespace vs07::cast {
namespace {

/// Hand-built snapshot: node 0 with r-links {1..6} and d-links {7, 8};
/// nodes 1..8 linkless; all alive.
OverlaySnapshot makeSnapshot() {
  std::vector<OverlaySnapshot::NodeLinks> links(9);
  links[0].rlinks = {1, 2, 3, 4, 5, 6};
  links[0].dlinks = {7, 8};
  return {std::move(links), std::vector<std::uint8_t>(9, 1)};
}

bool contains(const std::vector<NodeId>& v, NodeId x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

bool allDistinct(const std::vector<NodeId>& v) {
  return std::set<NodeId>(v.begin(), v.end()).size() == v.size();
}

TEST(RandCastSelector, PicksExactlyFanoutDistinctRlinks) {
  const auto overlay = makeSnapshot();
  RandCastSelector selector;
  Rng rng(1);
  std::vector<NodeId> out;
  for (int trial = 0; trial < 100; ++trial) {
    selector.selectTargets(overlay, 0, kNoNode, 3, rng, out);
    ASSERT_EQ(out.size(), 3u);
    EXPECT_TRUE(allDistinct(out));
    for (const NodeId t : out) {
      EXPECT_GE(t, 1u);
      EXPECT_LE(t, 6u);  // never a d-link
    }
  }
}

TEST(RandCastSelector, ExcludesSender) {
  const auto overlay = makeSnapshot();
  RandCastSelector selector;
  Rng rng(2);
  std::vector<NodeId> out;
  for (int trial = 0; trial < 200; ++trial) {
    selector.selectTargets(overlay, 0, /*receivedFrom=*/3, 5, rng, out);
    EXPECT_FALSE(contains(out, 3));
  }
}

TEST(RandCastSelector, FanoutLargerThanViewTakesAll) {
  const auto overlay = makeSnapshot();
  RandCastSelector selector;
  Rng rng(3);
  std::vector<NodeId> out;
  selector.selectTargets(overlay, 0, kNoNode, 50, rng, out);
  EXPECT_EQ(out.size(), 6u);
  selector.selectTargets(overlay, 0, /*receivedFrom=*/1, 50, rng, out);
  EXPECT_EQ(out.size(), 5u);
}

TEST(RandCastSelector, UniformOverRlinks) {
  const auto overlay = makeSnapshot();
  RandCastSelector selector;
  Rng rng(4);
  std::vector<NodeId> out;
  std::map<NodeId, int> hits;
  constexpr int kTrials = 12'000;
  for (int trial = 0; trial < kTrials; ++trial) {
    selector.selectTargets(overlay, 0, kNoNode, 2, rng, out);
    for (const NodeId t : out) ++hits[t];
  }
  for (NodeId id = 1; id <= 6; ++id) {
    EXPECT_GT(hits[id], kTrials * 2 / 6 * 0.9) << "node " << id;
    EXPECT_LT(hits[id], kTrials * 2 / 6 * 1.1) << "node " << id;
  }
}

TEST(RingCastSelector, AlwaysIncludesBothRingNeighbors) {
  const auto overlay = makeSnapshot();
  RingCastSelector selector;
  Rng rng(5);
  std::vector<NodeId> out;
  for (std::uint32_t fanout = 2; fanout <= 6; ++fanout) {
    selector.selectTargets(overlay, 0, kNoNode, fanout, rng, out);
    EXPECT_TRUE(contains(out, 7));
    EXPECT_TRUE(contains(out, 8));
    EXPECT_EQ(out.size(), fanout);
    EXPECT_TRUE(allDistinct(out));
  }
}

TEST(RingCastSelector, FanoutOneStillSendsToBothNeighbors) {
  // Fig. 5: the deterministic component is unconditional; with F=1 the
  // target list is the two ring neighbours and nothing else.
  const auto overlay = makeSnapshot();
  RingCastSelector selector;
  Rng rng(6);
  std::vector<NodeId> out;
  selector.selectTargets(overlay, 0, kNoNode, 1, rng, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_TRUE(contains(out, 7));
  EXPECT_TRUE(contains(out, 8));
}

TEST(RingCastSelector, MessageFromRingNeighborGoesToOtherNeighbor) {
  const auto overlay = makeSnapshot();
  RingCastSelector selector;
  Rng rng(7);
  std::vector<NodeId> out;
  for (int trial = 0; trial < 50; ++trial) {
    selector.selectTargets(overlay, 0, /*receivedFrom=*/7, 3, rng, out);
    EXPECT_FALSE(contains(out, 7));
    EXPECT_TRUE(contains(out, 8));
    // F-1 random r-links fill the remainder.
    EXPECT_EQ(out.size(), 3u);
  }
}

TEST(RingCastSelector, RandomFillNeverDuplicatesDlinks) {
  // d-links that also appear among r-links must not be picked twice.
  std::vector<OverlaySnapshot::NodeLinks> links(5);
  links[0].rlinks = {1, 2, 3};
  links[0].dlinks = {1, 2};  // overlap with r-links
  OverlaySnapshot overlay{std::move(links), std::vector<std::uint8_t>(5, 1)};
  RingCastSelector selector;
  Rng rng(8);
  std::vector<NodeId> out;
  for (int trial = 0; trial < 100; ++trial) {
    selector.selectTargets(overlay, 0, kNoNode, 4, rng, out);
    EXPECT_TRUE(allDistinct(out));
    EXPECT_EQ(out.size(), 3u);  // {1,2} as d-links + only 3 as r-link
  }
}

TEST(RingCastSelector, SingleDlinkWhenNeighborsCoincide) {
  // Two-node ring: successor == predecessor; the snapshot stores it once.
  std::vector<OverlaySnapshot::NodeLinks> links(2);
  links[0].dlinks = {1};
  OverlaySnapshot overlay{std::move(links), std::vector<std::uint8_t>(2, 1)};
  RingCastSelector selector;
  Rng rng(9);
  std::vector<NodeId> out;
  selector.selectTargets(overlay, 0, kNoNode, 2, rng, out);
  EXPECT_EQ(out, std::vector<NodeId>{1});
}

TEST(FloodSelector, ForwardsAcrossEverythingExceptSender) {
  const auto overlay = makeSnapshot();
  FloodSelector selector;
  Rng rng(10);
  std::vector<NodeId> out;
  selector.selectTargets(overlay, 0, /*receivedFrom=*/4, 1, rng, out);
  // All 6 r-links + 2 d-links minus the sender = 7.
  EXPECT_EQ(out.size(), 7u);
  EXPECT_FALSE(contains(out, 4));
  EXPECT_TRUE(allDistinct(out));
}

TEST(FloodSelector, DedupsOverlappingLinkSets) {
  std::vector<OverlaySnapshot::NodeLinks> links(4);
  links[0].rlinks = {1, 2};
  links[0].dlinks = {2, 3};
  OverlaySnapshot overlay{std::move(links), std::vector<std::uint8_t>(4, 1)};
  FloodSelector selector;
  Rng rng(11);
  std::vector<NodeId> out;
  selector.selectTargets(overlay, 0, kNoNode, 1, rng, out);
  EXPECT_EQ(out.size(), 3u);
  EXPECT_TRUE(allDistinct(out));
}

TEST(Selectors, NamesAreStable) {
  EXPECT_EQ(RandCastSelector{}.name(), "RandCast");
  EXPECT_EQ(RingCastSelector{}.name(), "RingCast");
  EXPECT_EQ(FloodSelector{}.name(), "Flood");
  EXPECT_EQ(MultiRingCastSelector{}.name(), "MultiRingCast");
}

TEST(Selectors, EmptyLinksYieldNoTargets) {
  std::vector<OverlaySnapshot::NodeLinks> links(1);
  OverlaySnapshot overlay{std::move(links), std::vector<std::uint8_t>(1, 1)};
  Rng rng(12);
  std::vector<NodeId> out{99};  // must be cleared
  RingCastSelector ring;
  ring.selectTargets(overlay, 0, kNoNode, 5, rng, out);
  EXPECT_TRUE(out.empty());
  RandCastSelector rand;
  out = {99};
  rand.selectTargets(overlay, 0, kNoNode, 5, rng, out);
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace vs07::cast
