#include "cast/snapshot.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/scenario.hpp"
#include "common/expect.hpp"
#include "overlay/graph.hpp"

namespace vs07::cast {
namespace {

analysis::Scenario smallStack(std::uint32_t n, std::uint32_t rings = 1) {
  return analysis::Scenario::builder().nodes(n).rings(rings).seed(99).build();
}

TEST(Snapshot, GraphWrapUsesDlinks) {
  const auto graph = overlay::makeRing(6);
  const auto snapshot = snapshotGraph(graph);
  EXPECT_EQ(snapshot.totalIds(), 6u);
  EXPECT_EQ(snapshot.aliveCount(), 6u);
  for (NodeId id = 0; id < 6; ++id) {
    EXPECT_EQ(snapshot.dlinks(id).size(), 2u);
    EXPECT_TRUE(snapshot.rlinks(id).empty());
  }
}

TEST(Snapshot, GraphWrapWithAliveMask) {
  const auto graph = overlay::makeRing(6);
  std::vector<std::uint8_t> alive{1, 0, 1, 1, 0, 1};
  const auto snapshot = snapshotGraph(graph, alive);
  EXPECT_EQ(snapshot.aliveCount(), 4u);
  EXPECT_FALSE(snapshot.isAlive(1));
  EXPECT_TRUE(snapshot.isAlive(2));
  // Links to dead nodes are preserved on purpose.
  EXPECT_EQ(snapshot.dlinks(0).size(), 2u);
}

TEST(Snapshot, MaskSizeMismatchRejected) {
  const auto graph = overlay::makeRing(6);
  EXPECT_THROW(snapshotGraph(graph, std::vector<std::uint8_t>(5, 1)),
               ContractViolation);
}

TEST(Snapshot, RandomSnapshotMirrorsCyclonViews) {
  auto stack = smallStack(100);
  const auto snapshot = stack.snapshotRandom();
  for (const NodeId id : stack.network().aliveIds()) {
    const auto& view = stack.cyclon().view(id);
    ASSERT_EQ(snapshot.rlinks(id).size(), view.size());
    for (const auto& e : view.entries()) {
      const auto& rlinks = snapshot.rlinks(id);
      EXPECT_NE(std::find(rlinks.begin(), rlinks.end(), e.node),
                rlinks.end());
    }
    EXPECT_TRUE(snapshot.dlinks(id).empty());
  }
}

TEST(Snapshot, RingSnapshotHoldsSuccessorAndPredecessor) {
  auto stack = smallStack(100);
  const auto snapshot = stack.snapshotRing();
  for (const NodeId id : stack.network().aliveIds()) {
    const auto ring = stack.vicinity().ringNeighbors(id);
    const auto& dlinks = snapshot.dlinks(id);
    ASSERT_GE(dlinks.size(), 1u);
    ASSERT_LE(dlinks.size(), 2u);
    EXPECT_NE(std::find(dlinks.begin(), dlinks.end(), ring.successor),
              dlinks.end());
    EXPECT_NE(std::find(dlinks.begin(), dlinks.end(), ring.predecessor),
              dlinks.end());
  }
}

TEST(Snapshot, MultiRingSnapshotUnionsAllRings) {
  auto stack = smallStack(80, /*rings=*/3);
  const auto snapshot = stack.snapshotMultiRing();
  for (const NodeId id : stack.network().aliveIds()) {
    const auto& dlinks = snapshot.dlinks(id);
    // Up to 6 distinct neighbours over 3 rings; at least 2 once converged.
    EXPECT_GE(dlinks.size(), 2u);
    EXPECT_LE(dlinks.size(), 6u);
    for (const auto& ring : stack.rings().allRingNeighbors(id)) {
      EXPECT_NE(std::find(dlinks.begin(), dlinks.end(), ring.successor),
                dlinks.end());
      EXPECT_NE(std::find(dlinks.begin(), dlinks.end(), ring.predecessor),
                dlinks.end());
    }
  }
}

TEST(Snapshot, DeadNodesExcludedFromAliveIds) {
  auto stack = smallStack(50);
  stack.network().kill(7);
  stack.network().kill(9);
  const auto snapshot = stack.snapshotRing();
  EXPECT_EQ(snapshot.aliveCount(), 48u);
  const auto& ids = snapshot.aliveIds();
  EXPECT_EQ(std::find(ids.begin(), ids.end(), 7u), ids.end());
  EXPECT_FALSE(snapshot.isAlive(7));
}

TEST(Snapshot, StaleLinksToDeadNodesAreKept) {
  auto stack = smallStack(60);
  // Kill a node *after* freezing would be the usual order; here we kill
  // first and snapshot second without gossip, so links still point at it.
  const NodeId victim = stack.network().aliveIds().front();
  stack.network().kill(victim);
  const auto snapshot = stack.snapshotRing();
  std::uint64_t staleLinks = 0;
  for (const NodeId id : snapshot.aliveIds()) {
    staleLinks += std::count(snapshot.rlinks(id).begin(),
                             snapshot.rlinks(id).end(), victim);
    staleLinks += std::count(snapshot.dlinks(id).begin(),
                             snapshot.dlinks(id).end(), victim);
  }
  EXPECT_GT(staleLinks, 0u);
}

}  // namespace
}  // namespace vs07::cast
