#include "cast/live.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "common/expect.hpp"
#include "gossip/cyclon.hpp"
#include "gossip/vicinity.hpp"
#include "net/transport.hpp"
#include "sim/bootstrap.hpp"
#include "sim/churn.hpp"
#include "sim/engine.hpp"
#include "sim/failures.hpp"
#include "sim/network.hpp"
#include "sim/router.hpp"

namespace vs07::cast {
namespace {

/// Full live wiring: CYCLON + VICINITY + LiveCast on one router.
struct LiveHarness {
  explicit LiveHarness(std::uint32_t n, LiveCast::Params params = {},
                       std::uint64_t seed = 1, bool withRing = true)
      : network(n, seed),
        router(network),
        transport([this](NodeId to, const net::Message& m) {
          router.deliver(to, m);
        }),
        cyclon(network, transport, router, {20, 8}, seed + 1),
        vicinity(network, transport, router, cyclon, {}, seed + 2),
        live(network, transport, router, cyclon,
             withRing ? &vicinity : nullptr, params, seed + 3),
        engine(network, seed + 4) {
    engine.addProtocol(cyclon);
    engine.addProtocol(vicinity);
    engine.addProtocol(live);
    sim::bootstrapStar(network, cyclon);
    engine.run(100);
  }

  sim::Network network;
  sim::MessageRouter router;
  net::ImmediateTransport transport;
  gossip::Cyclon cyclon;
  gossip::Vicinity vicinity;
  LiveCast live;
  sim::Engine engine;
};

TEST(MessageStore, RemembersAndEvictsFifo) {
  MessageStore store(3);
  store.remember(1);
  store.remember(2);
  store.remember(3);
  EXPECT_TRUE(store.hasSeen(1));
  store.remember(4);  // evicts 1
  EXPECT_FALSE(store.hasSeen(1));
  EXPECT_TRUE(store.hasSeen(2));
  EXPECT_TRUE(store.hasSeen(4));
}

TEST(MessageStore, RememberIsIdempotent) {
  MessageStore store(2);
  store.remember(7);
  store.remember(7);
  store.remember(8);
  EXPECT_EQ(store.buffered().size(), 2u);
  EXPECT_TRUE(store.hasSeen(7));
}

TEST(MessageStore, DigestNewestLast) {
  MessageStore store(10);
  for (std::uint64_t id = 1; id <= 5; ++id) store.remember(id);
  EXPECT_EQ(store.digest(3), (std::vector<std::uint64_t>{3, 4, 5}));
  EXPECT_EQ(store.digest(99).size(), 5u);
}

TEST(MessageStore, ClearForgetsEverything) {
  MessageStore store(4);
  store.remember(1);
  store.clear();
  EXPECT_FALSE(store.hasSeen(1));
  EXPECT_TRUE(store.buffered().empty());
}

TEST(LiveCast, PushCompletesOnHealthyOverlay) {
  LiveHarness h(400);
  const auto id = h.live.publish(0);
  EXPECT_EQ(h.live.missRatioPercentNow(id), 0.0);
  const auto& stats = h.live.stats(id);
  EXPECT_EQ(stats.pushDelivered, 400u);
  EXPECT_EQ(stats.pullDelivered, 0u);
  // Overhead ≈ fanout × N, exactly as the frozen-path disseminator.
  EXPECT_NEAR(static_cast<double>(h.live.pushMessagesSent()),
              3.0 * 400, 0.05 * 3 * 400);
}

TEST(LiveCast, DeliveryFlagsQueryable) {
  LiveHarness h(100);
  const auto id = h.live.publish(5);
  for (const NodeId node : h.network.aliveIds())
    EXPECT_TRUE(h.live.hasDelivered(id, node));
  EXPECT_FALSE(h.live.hasDelivered(id + 1, 0));  // unknown message
}

TEST(LiveCast, PublishFromDeadNodeRejected) {
  LiveHarness h(50);
  h.network.kill(3);
  EXPECT_THROW(h.live.publish(3), ContractViolation);
}

TEST(LiveCast, DeepRingChainDoesNotOverflowStack) {
  // Fanout 1 over the ring: the message crawls node by node through the
  // whole population — thousands of sequential forwards must be handled
  // iteratively by the outbox trampoline, not by recursion.
  LiveCast::Params params;
  params.fanout = 1;
  params.pullInterval = 0;
  LiveHarness h(4000, params);
  const auto id = h.live.publish(0);
  EXPECT_EQ(h.live.missRatioPercentNow(id), 0.0);
}

TEST(LiveCast, PullRepairsCatastrophicMisses) {
  LiveCast::Params params;
  params.fanout = 2;
  params.pullInterval = 1;
  LiveHarness h(800, params);

  // Heavy failure right before publishing: push alone will miss nodes.
  Rng killRng(9);
  sim::killRandomFraction(h.network, 0.20, killRng);
  const auto id = h.live.publish(h.network.aliveIds().front());
  const double missAfterPush = h.live.missRatioPercentNow(id);

  // A few cycles of anti-entropy pulls close the gap completely.
  h.engine.run(10);
  const double missAfterPull = h.live.missRatioPercentNow(id);
  EXPECT_LE(missAfterPull, missAfterPush);
  EXPECT_EQ(missAfterPull, 0.0);
  EXPECT_GT(h.live.pullRequestsSent(), 0u);
  if (missAfterPush > 0.0) {
    EXPECT_GT(h.live.stats(id).pullDelivered, 0u);
  }
}

TEST(LiveCast, PullDisabledLeavesMisses) {
  LiveCast::Params params;
  params.fanout = 2;
  params.pullInterval = 0;  // pure push, the paper's main setting
  LiveHarness h(800, params, /*seed=*/2);
  Rng killRng(10);
  sim::killRandomFraction(h.network, 0.20, killRng);
  const auto id = h.live.publish(h.network.aliveIds().front());
  const double missAfterPush = h.live.missRatioPercentNow(id);
  h.engine.run(10);
  // Gossip may heal the overlay for *future* messages, but this message
  // is never re-disseminated without pull.
  EXPECT_EQ(h.live.missRatioPercentNow(id), missAfterPush);
  EXPECT_EQ(h.live.pullRequestsSent(), 0u);
}

TEST(LiveCast, PullIntervalThrottlesTraffic) {
  LiveCast::Params everyCycle;
  everyCycle.pullInterval = 1;
  LiveCast::Params everyFour;
  everyFour.pullInterval = 4;
  LiveHarness fast(200, everyCycle, /*seed=*/3);
  LiveHarness slow(200, everyFour, /*seed=*/3);
  const auto fastBefore = fast.live.pullRequestsSent();
  const auto slowBefore = slow.live.pullRequestsSent();
  fast.engine.run(20);
  slow.engine.run(20);
  const auto fastSent = fast.live.pullRequestsSent() - fastBefore;
  const auto slowSent = slow.live.pullRequestsSent() - slowBefore;
  EXPECT_NEAR(static_cast<double>(fastSent) / slowSent, 4.0, 0.5);
}

TEST(LiveCast, BufferEvictionLimitsRecoverability) {
  // §8: "the duration for which nodes maintain old messages, the size of
  // buffers" — once every node has buffered `capacity` newer messages,
  // an old message exists nowhere and can never be served to latecomers.
  LiveCast::Params params;
  params.fanout = 3;
  params.bufferCapacity = 4;
  params.pullInterval = 1;
  params.pullBudget = 16;
  LiveHarness h(300, params, /*seed=*/4);

  const auto first = h.live.publish(0);
  std::vector<std::uint64_t> later;
  for (int i = 0; i < 6; ++i) later.push_back(h.live.publish(0));

  // All pushes completed, so every buffer holds the newest 4 ids and the
  // first message is gone from the whole network.
  for (const NodeId node : h.network.aliveIds()) {
    EXPECT_FALSE(h.live.store(node).hasSeen(first)) << "node " << node;
    EXPECT_TRUE(h.live.store(node).hasSeen(later.back()));
  }

  // A fresh joiner can pull the retained messages but never the evicted
  // one: no node can serve what no node stores.
  const NodeId joiner = h.network.spawn(h.engine.cycle());
  Rng rng(5);
  NodeId introducer = joiner;
  while (introducer == joiner) introducer = h.network.randomAlive(rng);
  h.cyclon.onJoin(joiner, introducer);
  h.vicinity.onJoin(joiner, introducer);
  h.engine.run(10);

  EXPECT_TRUE(h.live.hasDelivered(later.back(), joiner));
  EXPECT_FALSE(h.live.hasDelivered(first, joiner));
}

TEST(LiveCast, RandCastModeWithoutRing) {
  LiveCast::Params params;
  params.fanout = 2;
  params.pullInterval = 0;
  LiveHarness h(600, params, /*seed=*/5, /*withRing=*/false);
  const auto id = h.live.publish(0);
  // Pure RANDCAST at F=2: a clear residue remains (Fig. 6 shape).
  EXPECT_GT(h.live.missRatioPercentNow(id), 1.0);
}

TEST(LiveCast, PullAlsoSpreadsBetweenPublishes) {
  // A node that receives a message via pull forwards it onwards: one
  // repaired node re-seeds its whole ring partition.
  LiveCast::Params params;
  params.fanout = 2;
  params.pullInterval = 1;
  LiveHarness h(500, params, /*seed=*/6);
  Rng killRng(12);
  sim::killRandomFraction(h.network, 0.25, killRng);
  const auto id = h.live.publish(h.network.aliveIds().front());
  const double before = h.live.missRatioPercentNow(id);
  h.engine.run(1);
  const double after = h.live.missRatioPercentNow(id);
  EXPECT_LE(after, before);
  if (before > 2.0) {
    // One pull round at interval 1 should already repair most misses.
    EXPECT_LT(after, before);
  }
}

TEST(LiveCast, PullRecoveryKeepsTheHopHistogramClean) {
  // Regression: a pull answer lands with hop 0, so a recovered node's
  // onward forwards used to pour fresh deliveries into
  // newlyNotifiedPerHop[1] and could bump lastHop — the origin-wave
  // histogram silently mixed in recovery re-waves. Recovery forwards are
  // now tagged (kFlagRecoveryWave) and count as pullDelivered only.
  LiveCast::Params params;
  params.fanout = 2;
  params.pullInterval = 1;
  LiveHarness h(800, params, /*seed=*/14);
  Rng killRng(15);
  sim::killRandomFraction(h.network, 0.25, killRng);

  const auto id = h.live.publish(h.network.aliveIds().front());
  const auto afterPush = h.live.stats(id);  // copy
  ASSERT_GT(h.live.missRatioPercentNow(id), 0.0)
      << "seed must leave push misses for pull to repair";

  h.engine.run(10);
  EXPECT_EQ(h.live.missRatioPercentNow(id), 0.0);
  const auto& repaired = h.live.stats(id);
  // Everything pull recovered — the answers and the re-wave forwards
  // they triggered — is pull bookkeeping; the push-wave histogram is
  // exactly what it was the moment the push finished.
  EXPECT_EQ(repaired.pushDelivered, afterPush.pushDelivered);
  EXPECT_GT(repaired.pullDelivered, 0u);
  EXPECT_EQ(repaired.newlyNotifiedPerHop, afterPush.newlyNotifiedPerHop);
  EXPECT_EQ(repaired.lastHop, afterPush.lastHop);
  const auto histogramSum =
      std::accumulate(repaired.newlyNotifiedPerHop.begin(),
                      repaired.newlyNotifiedPerHop.end(), std::uint64_t{0});
  EXPECT_EQ(histogramSum, repaired.pushDelivered);
  // The re-wave really happened: recovered nodes forwarded onwards.
  EXPECT_GT(h.live.recoveryForwardsSent(), 0u);
}

TEST(LiveCast, StatsForUnknownMessageRejected) {
  LiveHarness h(20, {}, /*seed=*/7);
  EXPECT_THROW(h.live.stats(42), ContractViolation);
  EXPECT_THROW(h.live.missRatioPercentNow(42), ContractViolation);
}

TEST(LiveCast, ChurnJoinersCatchUpThroughPull) {
  LiveCast::Params params;
  params.fanout = 3;
  params.pullInterval = 1;
  LiveHarness h(400, params, /*seed=*/8);

  const auto id = h.live.publish(0);
  EXPECT_EQ(h.live.missRatioPercentNow(id), 0.0);

  // Churn in fresh nodes; they missed the original push entirely...
  sim::ChurnControl churn(h.network, 0.02, 13);
  churn.addJoinHandler(h.cyclon);
  churn.addJoinHandler(h.vicinity);
  h.engine.addControl(churn);
  h.engine.run(15);
  // ...but anti-entropy catches them up: every node that has lived
  // through at least two full cycles (i.e. had a chance to pull) holds
  // the message. Only the newest joiners may still be catching up.
  const auto now = h.engine.cycle();
  for (const NodeId node : h.network.aliveIds())
    if (h.network.lifetime(node, now) >= 3) {
      EXPECT_TRUE(h.live.hasDelivered(id, node))
          << "node " << node << " lifetime "
          << h.network.lifetime(node, now);
    }
}

}  // namespace
}  // namespace vs07::cast
