#include "cast/disseminator.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "cast/snapshot.hpp"
#include "common/expect.hpp"
#include "overlay/graph.hpp"

namespace vs07::cast {
namespace {

DisseminationParams params(std::uint32_t fanout, std::uint64_t seed = 1,
                           bool recordLoad = false) {
  return {fanout, seed, recordLoad};
}

TEST(Disseminator, FloodOverRingReachesEveryoneInHalfRingHops) {
  const auto graph = overlay::makeRing(10);
  const auto snapshot = snapshotGraph(graph);
  const FloodSelector flood;
  const auto report = disseminate(snapshot, flood, 0, params(1));
  EXPECT_TRUE(report.complete());
  EXPECT_EQ(report.notified, 10u);
  EXPECT_EQ(report.missRatioPercent(), 0.0);
  // Two fronts meet after N/2 hops on an even ring.
  EXPECT_EQ(report.lastHop, 5u);
  // Each node forwards once except the origin (twice); the two fronts
  // cross, producing exactly two redundant deliveries on an even ring.
  EXPECT_EQ(report.messagesVirgin, 9u);
  EXPECT_EQ(report.messagesRedundant, 2u);
  EXPECT_EQ(report.messagesToDead, 0u);
}

TEST(Disseminator, FloodOverStarTakesTwoHops) {
  const auto graph = overlay::makeStar(20, /*hub=*/0);
  const auto snapshot = snapshotGraph(graph);
  const FloodSelector flood;
  // From a leaf: hop 1 notifies the hub, hop 2 the remaining 18 leaves.
  const auto report = disseminate(snapshot, flood, 5, params(1));
  EXPECT_TRUE(report.complete());
  EXPECT_EQ(report.lastHop, 2u);
  ASSERT_EQ(report.newlyNotifiedPerHop.size(), 3u);
  EXPECT_EQ(report.newlyNotifiedPerHop[0], 1u);
  EXPECT_EQ(report.newlyNotifiedPerHop[1], 1u);
  EXPECT_EQ(report.newlyNotifiedPerHop[2], 18u);
}

TEST(Disseminator, FloodOverCliqueIsOneHopButWasteful) {
  const auto graph = overlay::makeClique(8);
  const auto snapshot = snapshotGraph(graph);
  const FloodSelector flood;
  const auto report = disseminate(snapshot, flood, 0, params(1));
  EXPECT_TRUE(report.complete());
  EXPECT_EQ(report.lastHop, 1u);
  EXPECT_EQ(report.messagesVirgin, 7u);
  // Every notified node floods everyone else: 7 + 7*6 total sends.
  EXPECT_EQ(report.messagesTotal, 7u + 42u);
}

TEST(Disseminator, TreeFloodIsMessageOptimal) {
  Rng rng(7);
  const auto graph = overlay::makeRandomTree(50, rng);
  const auto snapshot = snapshotGraph(graph);
  const FloodSelector flood;
  const auto report = disseminate(snapshot, flood, 0, params(1));
  EXPECT_TRUE(report.complete());
  // §3: a tree disseminates with exactly N-1 point-to-point messages.
  EXPECT_EQ(report.messagesTotal, 49u);
  EXPECT_EQ(report.messagesRedundant, 0u);
}

TEST(Disseminator, DeadNodesAbsorbMessages) {
  auto alive = std::vector<std::uint8_t>(10, 1);
  alive[5] = 0;  // break the ring at node 5
  const auto graph = overlay::makeRing(10);
  const auto snapshot = snapshotGraph(graph, std::move(alive));
  const FloodSelector flood;
  const auto report = disseminate(snapshot, flood, 0, params(1));
  // One dead node on a ring does not partition it (Harary connectivity 2):
  // the other direction still covers everyone.
  EXPECT_TRUE(report.complete());
  EXPECT_EQ(report.aliveTotal, 9u);
  EXPECT_GE(report.messagesToDead, 1u);
}

TEST(Disseminator, TwoDeadNodesPartitionARing) {
  auto alive = std::vector<std::uint8_t>(10, 1);
  alive[3] = 0;
  alive[7] = 0;  // two non-adjacent failures split the ring (§5.1)
  const auto graph = overlay::makeRing(10);
  const auto snapshot = snapshotGraph(graph, std::move(alive));
  const FloodSelector flood;
  const auto report = disseminate(snapshot, flood, 0, params(1));
  EXPECT_FALSE(report.complete());
  // Nodes 4,5,6 are cut off from origin 0.
  EXPECT_EQ(report.missed.size(), 3u);
  EXPECT_GT(report.missRatioPercent(), 0.0);
}

TEST(Disseminator, OriginMustBeAlive) {
  auto alive = std::vector<std::uint8_t>(5, 1);
  alive[2] = 0;
  const auto snapshot = snapshotGraph(overlay::makeRing(5), std::move(alive));
  const FloodSelector flood;
  EXPECT_THROW(disseminate(snapshot, flood, 2, params(1)),
               ContractViolation);
}

TEST(Disseminator, ZeroFanoutRejected) {
  const auto snapshot = snapshotGraph(overlay::makeRing(5));
  const FloodSelector flood;
  EXPECT_THROW(disseminate(snapshot, flood, 0, params(0)),
               ContractViolation);
}

TEST(Disseminator, ReportAccountingInvariants) {
  const auto snapshot = snapshotGraph(overlay::makeHarary(4, 30));
  const FloodSelector flood;
  const auto report = disseminate(snapshot, flood, 3, params(1));
  EXPECT_EQ(report.messagesTotal, report.messagesVirgin +
                                      report.messagesRedundant +
                                      report.messagesToDead);
  EXPECT_EQ(report.notified + report.missed.size(), report.aliveTotal);
  const auto hopSum = std::accumulate(report.newlyNotifiedPerHop.begin(),
                                      report.newlyNotifiedPerHop.end(),
                                      std::uint64_t{0});
  EXPECT_EQ(hopSum, report.notified);
  // Virgin deliveries are everyone but the origin.
  EXPECT_EQ(report.messagesVirgin, report.notified - 1);
}

TEST(Disseminator, PercentNotReachedIsMonotone) {
  const auto snapshot = snapshotGraph(overlay::makeRing(30));
  const FloodSelector flood;
  const auto report = disseminate(snapshot, flood, 0, params(1));
  double previous = 100.0;
  for (std::uint32_t hop = 0; hop <= report.lastHop; ++hop) {
    const double current = report.percentNotReachedAfterHop(hop);
    EXPECT_LE(current, previous);
    previous = current;
  }
  EXPECT_EQ(report.percentNotReachedAfterHop(report.lastHop), 0.0);
}

TEST(Disseminator, LoadRecordingMatchesMessageTotals) {
  const auto snapshot = snapshotGraph(overlay::makeHarary(3, 24));
  const FloodSelector flood;
  const auto report =
      disseminate(snapshot, flood, 0, params(1, 1, /*recordLoad=*/true));
  ASSERT_EQ(report.forwardsPerNode.size(), snapshot.totalIds());
  const auto forwards =
      std::accumulate(report.forwardsPerNode.begin(),
                      report.forwardsPerNode.end(), std::uint64_t{0});
  const auto received =
      std::accumulate(report.receivedPerNode.begin(),
                      report.receivedPerNode.end(), std::uint64_t{0});
  EXPECT_EQ(forwards, report.messagesTotal);
  EXPECT_EQ(received, report.messagesVirgin + report.messagesRedundant);
}

TEST(Disseminator, LoadVectorsEmptyWhenNotRequested) {
  const auto snapshot = snapshotGraph(overlay::makeRing(5));
  const FloodSelector flood;
  const auto report = disseminate(snapshot, flood, 0, params(1));
  EXPECT_TRUE(report.forwardsPerNode.empty());
  EXPECT_TRUE(report.receivedPerNode.empty());
}

TEST(Disseminator, DeterministicUnderSeed) {
  // Random selector paths must replay exactly under the same seed.
  std::vector<OverlaySnapshot::NodeLinks> links(40);
  Rng build(3);
  for (NodeId id = 0; id < 40; ++id)
    for (int k = 0; k < 5; ++k)
      links[id].rlinks.push_back(
          static_cast<NodeId>((id + 1 + build.below(39)) % 40));
  const OverlaySnapshot snapshot{std::move(links),
                                 std::vector<std::uint8_t>(40, 1)};
  const RandCastSelector selector;
  const auto a = disseminate(snapshot, selector, 0, params(2, 77));
  const auto b = disseminate(snapshot, selector, 0, params(2, 77));
  const auto c = disseminate(snapshot, selector, 0, params(2, 78));
  EXPECT_EQ(a.notified, b.notified);
  EXPECT_EQ(a.messagesTotal, b.messagesTotal);
  EXPECT_EQ(a.newlyNotifiedPerHop, b.newlyNotifiedPerHop);
  // Different seed: almost surely a different trajectory.
  EXPECT_TRUE(a.messagesRedundant != c.messagesRedundant ||
              a.newlyNotifiedPerHop != c.newlyNotifiedPerHop ||
              a.notified != c.notified);
}

}  // namespace
}  // namespace vs07::cast
