// LiveCast over a DelayedTransport: the asynchronous delivery path.
// With per-message latency, a push wave spreads over several ticks and
// the outbox trampoline must interleave correctly with queued delivery.
#include <gtest/gtest.h>

#include "cast/live.hpp"
#include "gossip/cyclon.hpp"
#include "gossip/vicinity.hpp"
#include "net/transport.hpp"
#include "sim/bootstrap.hpp"
#include "sim/engine.hpp"
#include "sim/network.hpp"
#include "sim/router.hpp"

namespace vs07::cast {
namespace {

/// Wiring with a delayed transport; gossip warm-up runs with an
/// immediate transport first (converged views), then dissemination
/// happens over the delayed one.
struct DelayedHarness {
  explicit DelayedHarness(std::uint32_t n, std::uint64_t seed = 1)
      : network(n, seed),
        router(network),
        immediate([this](NodeId to, const net::Message& m) {
          router.deliver(to, m);
        }),
        delayed([this](NodeId to, const net::Message& m) {
          router.deliver(to, m);
        }, /*min=*/1, /*max=*/3, seed),
        cyclon(network, immediate, router, {20, 8}, seed + 1),
        vicinity(network, immediate, router, cyclon, {}, seed + 2),
        live(network, delayed, router, cyclon, &vicinity,
             {.fanout = 3, .pullInterval = 0}, seed + 3),
        engine(network, seed + 4) {
    engine.addProtocol(cyclon);
    engine.addProtocol(vicinity);
    sim::bootstrapStar(network, cyclon);
    engine.run(100);
  }

  sim::Network network;
  sim::MessageRouter router;
  net::ImmediateTransport immediate;
  net::DelayedTransport delayed;
  gossip::Cyclon cyclon;
  gossip::Vicinity vicinity;
  LiveCast live;
  sim::Engine engine;
};

TEST(LiveCastDelayed, PushSpreadsOverTicksAndCompletes) {
  DelayedHarness h(300);
  const auto id = h.live.publish(0);
  // Nothing delivered yet beyond the origin: all sends are in flight.
  EXPECT_GT(h.live.missRatioPercentNow(id), 90.0);
  EXPECT_GT(h.delayed.inFlight(), 0u);

  // Progress is monotone tick by tick, and the wave eventually covers
  // everyone (static fail-free network: RingCast semantics are exact).
  double previous = h.live.missRatioPercentNow(id);
  for (int tick = 0; tick < 200 && h.delayed.inFlight() > 0; ++tick) {
    h.delayed.tick();
    const double current = h.live.missRatioPercentNow(id);
    EXPECT_LE(current, previous);
    previous = current;
  }
  EXPECT_EQ(h.live.missRatioPercentNow(id), 0.0);
  EXPECT_EQ(h.live.stats(id).pushDelivered, 300u);
}

TEST(LiveCastDelayed, DrainFlushesTheWholeWave) {
  DelayedHarness h(200, /*seed=*/2);
  const auto id = h.live.publish(5);
  h.delayed.drain();
  EXPECT_EQ(h.live.missRatioPercentNow(id), 0.0);
  EXPECT_EQ(h.delayed.inFlight(), 0u);
}

TEST(LiveCastDelayed, TwoConcurrentWavesDoNotInterfere) {
  DelayedHarness h(200, /*seed=*/3);
  const auto a = h.live.publish(0);
  const auto b = h.live.publish(1);
  h.delayed.drain();
  EXPECT_EQ(h.live.missRatioPercentNow(a), 0.0);
  EXPECT_EQ(h.live.missRatioPercentNow(b), 0.0);
  EXPECT_EQ(h.live.stats(a).pushDelivered, 200u);
  EXPECT_EQ(h.live.stats(b).pushDelivered, 200u);
}

}  // namespace
}  // namespace vs07::cast
