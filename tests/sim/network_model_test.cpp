// sim/network_model unit suite: the stock LinkModels, the
// PartitionSchedule (windows, grouping, healing, the §5.1 arc
// compatibility with sim/failures), cluster latency, and the FIFO
// egress bandwidth cap.
#include "sim/network_model.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "sim/failures.hpp"
#include "sim/network.hpp"

namespace vs07::sim {
namespace {

TEST(BernoulliLossLink, DropsAtConfiguredRate) {
  BernoulliLossLink link(0.25);
  Rng rng(7);
  int dropped = 0;
  constexpr int kTrials = 20'000;
  for (int i = 0; i < kTrials; ++i) {
    LinkFate fate;
    link.apply(1, 2, 0, fate, rng);
    if (fate.copies == 0) ++dropped;
  }
  const double rate = static_cast<double>(dropped) / kTrials;
  EXPECT_NEAR(rate, 0.25, 0.02);
}

TEST(BernoulliLossLink, ZeroRateNeverDrops) {
  BernoulliLossLink link(0.0);
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    LinkFate fate;
    link.apply(1, 2, 0, fate, rng);
    EXPECT_EQ(fate.copies, 1u);
    EXPECT_EQ(fate.extraDelayTicks, 0u);
  }
}

TEST(GilbertElliottLink, LossesClusterInBursts) {
  // Sticky chain with a lossless Good state and a lossy Bad state: the
  // same overall loss events must arrive in runs, which independent
  // Bernoulli loss at the matched average would not produce.
  GilbertElliottLink::Params params;
  params.pGoodToBad = 0.02;
  params.pBadToGood = 0.2;
  params.lossGood = 0.0;
  params.lossBad = 1.0;
  GilbertElliottLink link(params);
  Rng rng(11);
  constexpr int kTrials = 50'000;
  int losses = 0;
  int bursts = 0;  // maximal runs of consecutive losses
  bool inBurst = false;
  for (int i = 0; i < kTrials; ++i) {
    LinkFate fate;
    link.apply(3, 4, 0, fate, rng);
    const bool lost = fate.copies == 0;
    losses += lost ? 1 : 0;
    if (lost && !inBurst) ++bursts;
    inBurst = lost;
  }
  ASSERT_GT(losses, 0);
  const double meanBurstLength = static_cast<double>(losses) / bursts;
  // Geometric dwell time in Bad: mean run length 1/pBadToGood = 5.
  EXPECT_GT(meanBurstLength, 3.0);
  EXPECT_EQ(link.trackedLinks(), 1u);
}

TEST(GilbertElliottLink, LinksHaveIndependentState) {
  GilbertElliottLink::Params params;
  params.pGoodToBad = 1.0;  // first crossing flips the link to Bad
  params.pBadToGood = 0.0;
  params.lossBad = 1.0;
  GilbertElliottLink link(params);
  Rng rng(3);
  LinkFate fate;
  link.apply(1, 2, 0, fate, rng);
  EXPECT_EQ(fate.copies, 0u);
  // The reverse direction is a distinct chain (asymmetric loss): it also
  // flips on its own first crossing, tracked separately.
  link.apply(2, 1, 0, fate = {}, rng);
  EXPECT_EQ(link.trackedLinks(), 2u);
}

TEST(DuplicateLink, AddsCopies) {
  DuplicateLink link(1.0);
  Rng rng(5);
  LinkFate fate;
  link.apply(1, 2, 0, fate, rng);
  EXPECT_EQ(fate.copies, 2u);
  // Dropped messages are not resurrected by duplication.
  LinkFate dead;
  dead.copies = 0;
  link.apply(1, 2, 0, dead, rng);
  EXPECT_EQ(dead.copies, 0u);
}

TEST(ReorderLink, AddsBoundedDelay) {
  ReorderLink link(1.0, 4);
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    LinkFate fate;
    link.apply(1, 2, 0, fate, rng);
    EXPECT_GE(fate.extraDelayTicks, 1u);
    EXPECT_LE(fate.extraDelayTicks, 4u);
  }
}

TEST(PartitionSchedule, WindowsActivateAndHeal) {
  Network network(10, 1);
  PartitionSchedule schedule = PartitionSchedule::splitRing(network, 2);
  schedule.addWindow(5, 10);
  schedule.addWindow(20, 25);
  EXPECT_FALSE(schedule.active(4));
  EXPECT_TRUE(schedule.active(5));
  EXPECT_TRUE(schedule.active(9));
  EXPECT_FALSE(schedule.active(10));  // healed
  EXPECT_TRUE(schedule.active(24));
  EXPECT_FALSE(schedule.active(25));

  const auto side0 = schedule.members(0);
  const auto side1 = schedule.members(1);
  ASSERT_FALSE(side0.empty());
  ASSERT_FALSE(side1.empty());
  const NodeId a = side0.front();
  const NodeId b = side1.front();
  EXPECT_TRUE(schedule.blocks(a, b, 7));
  EXPECT_TRUE(schedule.blocks(b, a, 7));
  EXPECT_FALSE(schedule.blocks(a, side0.back(), 7));  // same side flows
  EXPECT_FALSE(schedule.blocks(a, b, 12));            // healed gap
}

TEST(PartitionSchedule, SplitRingGroupsAreContiguousArcs) {
  Network network(101, 9);
  PartitionSchedule schedule = PartitionSchedule::splitRing(network, 4);
  const auto ring = ringOrder(network);
  // Walking the ring must cross each group boundary exactly once: group
  // ids along the ring are non-decreasing.
  std::uint32_t previous = 0;
  std::size_t jumps = 0;
  for (const NodeId node : ring) {
    const std::uint32_t g = schedule.groupOf(node);
    if (g != previous) {
      EXPECT_EQ(g, previous + 1);
      ++jumps;
      previous = g;
    }
  }
  EXPECT_EQ(jumps, 3u);
  // Near-equal sizes.
  for (std::uint32_t g = 0; g < 4; ++g) {
    const auto size = schedule.members(g).size();
    EXPECT_GE(size, ring.size() / 4);
    EXPECT_LE(size, ring.size() / 4 + 1);
  }
}

TEST(PartitionSchedule, JoinersHashIntoGroupsDeterministically) {
  Network network(10, 1);
  PartitionSchedule schedule = PartitionSchedule::splitRing(network, 2);
  const NodeId joiner = network.totalCreated() + 5;
  const std::uint32_t g = schedule.groupOf(joiner);
  EXPECT_LT(g, 2u);
  EXPECT_EQ(schedule.groupOf(joiner), g);  // stable
}

TEST(PartitionSchedule, SplitRingArcMatchesKillContiguousArc) {
  // The §5.1 fold-in: the arc the partition isolates is byte-for-byte
  // the arc sim/failures kills, because both consume the same single
  // draw over the same ring order.
  Network networkA(211, 77);
  Network networkB(211, 77);
  Rng rngA(123);
  Rng rngB(123);
  const std::vector<NodeId> killed = killContiguousArc(networkA, 0.3, rngA);
  PartitionSchedule schedule =
      PartitionSchedule::splitRingArc(networkB, 0.3, rngB);
  const std::vector<NodeId> isolated = schedule.members(1);
  EXPECT_EQ(std::set<NodeId>(killed.begin(), killed.end()),
            std::set<NodeId>(isolated.begin(), isolated.end()));
  EXPECT_EQ(killed.size(), std::llround(0.3 * 211));
}

TEST(ClusterLatency, IntraVersusInterDraws) {
  NetworkConditions conditions;
  conditions.clusterLatency = {2, LatencyModel::fixed(1),
                               LatencyModel::fixed(5)};
  Network network(16, 2);
  NetworkModel model(conditions, network, 1, 99);
  Rng rng(1);
  // Find one same-cluster and one cross-cluster pair.
  NodeId same = kNoNode;
  NodeId cross = kNoNode;
  for (NodeId n = 1; n < 16; ++n) {
    if (model.clusterOf(n) == model.clusterOf(0)) same = n;
    if (model.clusterOf(n) != model.clusterOf(0)) cross = n;
  }
  ASSERT_NE(same, kNoNode);
  ASSERT_NE(cross, kNoNode);
  const LatencyModel fallback = LatencyModel::fixed(9);
  EXPECT_EQ(model.latencyTicks(0, same, fallback, rng), 1u);
  EXPECT_EQ(model.latencyTicks(0, cross, fallback, rng), 5u);
}

TEST(ClusterLatency, DisabledFallsBackToGlobalModel) {
  Network network(4, 2);
  NetworkModel model(NetworkConditions{}, network, 1, 99);
  Rng rng(1);
  EXPECT_EQ(model.latencyTicks(0, 1, LatencyModel::fixed(9), rng), 9u);
  EXPECT_EQ(model.clusterOf(3), 0u);
}

TEST(BandwidthCap, FifoQueueingDelay) {
  NetworkConditions conditions;
  conditions.bandwidth.messagesPerTick = 2;
  Network network(4, 2);
  NetworkModel model(conditions, network, 1, 99);
  // Five sends in one tick through a 2/tick pipe: the first two depart
  // immediately, then FIFO queueing backs up in 1-tick steps.
  EXPECT_EQ(model.egressDelay(0, 10), 0u);
  EXPECT_EQ(model.egressDelay(0, 10), 0u);
  EXPECT_EQ(model.egressDelay(0, 10), 1u);
  EXPECT_EQ(model.egressDelay(0, 10), 1u);
  EXPECT_EQ(model.egressDelay(0, 10), 2u);
  // Another sender has its own queue.
  EXPECT_EQ(model.egressDelay(1, 10), 0u);
  // Idle time drains the backlog.
  EXPECT_EQ(model.egressDelay(0, 13), 0u);
  EXPECT_EQ(model.queuedSends(), 3u);
  EXPECT_EQ(model.queuedDelayTotal(), 4u);
  EXPECT_EQ(model.maxQueueDelay(), 2u);
}

TEST(BandwidthCap, UnlimitedByDefault) {
  Network network(4, 2);
  NetworkModel model(NetworkConditions{}, network, 1, 99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(model.egressDelay(0, 1), 0u);
  EXPECT_EQ(model.queuedSends(), 0u);
}

TEST(NetworkModel, ResolveAppliesPartitionBeforeLoss) {
  NetworkConditions conditions;
  conditions.lossRate = 1.0;  // everything the partition spares is lost
  Network network(10, 3);
  NetworkModel model(conditions, network, 1, 42);
  PartitionSchedule schedule = PartitionSchedule::splitRing(network, 2);
  schedule.addWindow(0, 100);
  const NodeId a = schedule.members(0).front();
  const NodeId b = schedule.members(1).front();
  model.setPartitions(std::move(schedule));

  EXPECT_EQ(model.resolve(a, b, 5).copies, 0u);
  EXPECT_EQ(model.droppedByPartition(), 1u);
  EXPECT_EQ(model.droppedByLoss(), 0u);
  const NodeId a2 = model.partitions()->members(0).back();
  EXPECT_EQ(model.resolve(a, a2, 5).copies, 0u);
  EXPECT_EQ(model.droppedByLoss(), 1u);
}

TEST(NetworkModel, ConditionsBuildTheDescribedChain) {
  NetworkConditions conditions;
  conditions.duplicateRate = 1.0;
  conditions.reorderRate = 1.0;
  conditions.reorderMaxTicks = 2;
  Network network(8, 3);
  NetworkModel model(conditions, network, 1, 42);
  const LinkFate fate = model.resolve(0, 1, 0);
  EXPECT_EQ(fate.copies, 2u);
  EXPECT_GE(fate.extraDelayTicks, 1u);
  EXPECT_LE(fate.extraDelayTicks, 2u);
  EXPECT_EQ(model.duplicated(), 1u);
  EXPECT_EQ(model.reordered(), 1u);
}

TEST(NetworkModel, DeterministicAcrossIdenticalRuns) {
  NetworkConditions conditions;
  conditions.lossRate = 0.3;
  conditions.duplicateRate = 0.1;
  Network networkA(32, 5);
  Network networkB(32, 5);
  NetworkModel a(conditions, networkA, 1, 1234);
  NetworkModel b(conditions, networkB, 1, 1234);
  for (std::uint64_t t = 0; t < 500; ++t) {
    const LinkFate fa = a.resolve(t % 32, (t * 7) % 32, t);
    const LinkFate fb = b.resolve(t % 32, (t * 7) % 32, t);
    EXPECT_EQ(fa.copies, fb.copies);
    EXPECT_EQ(fa.extraDelayTicks, fb.extraDelayTicks);
  }
  EXPECT_EQ(a.droppedByLoss(), b.droppedByLoss());
  EXPECT_EQ(a.duplicated(), b.duplicated());
}

}  // namespace
}  // namespace vs07::sim
