// Windowed (conservative-lookahead) execution of the ShardedEngine:
// jittered timers and latency-delayed traffic on per-shard event queues,
// asserted tick-exact and independent of the worker count.
#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/expect.hpp"
#include "harness/conformance.hpp"
#include "net/message.hpp"
#include "sim/network.hpp"
#include "sim/sharded_engine.hpp"
#include "sim/timing.hpp"

namespace vs07::sim {
namespace {

/// Tick-stamping cousin of the lockstep suite's RecordingProtocol: logs
/// every step and delivery together with the engine tick it executed at,
/// so tests can pin *when* the windowed schedule runs events, not just
/// in what order. Each step sends a deterministic two-message fan;
/// `reply` answers hop-0 messages (exercising in-window send cascades).
class TickRecordingProtocol final : public ShardedProtocol {
 public:
  TickRecordingProtocol(Network& network, const ShardedEngine& engine,
                        std::uint32_t capacity, bool reply)
      : network_(network), engine_(engine), reply_(reply) {
    deliveries.resize(capacity);
    draws.resize(capacity);
    stepTicks.resize(capacity);
    sendTick_.resize(capacity);
    sent_.resize(capacity, 0);
  }

  void onShardedAttach(std::uint32_t /*shardCount*/) {}

  void shardStep(NodeId self, ShardContext& ctx) override {
    draws[self].push_back(ctx.rng()());
    stepTicks[self].push_back(engine_.tick());
    const auto n = network_.totalCreated();
    const NodeId targets[2] = {(self + 1) % n, (self * 7 + 3) % n};
    for (const NodeId to : targets) {
      if (to == self) continue;
      net::Message& msg = ctx.messageScratch();
      msg.reset();
      msg.kind = net::MessageKind::Data;
      msg.from = self;
      msg.hop = 0;
      msg.dataId = static_cast<std::uint64_t>(self) * 1'000'000 + sent_[self];
      sendTick_[self].push_back(engine_.tick());
      ++sent_[self];
      ctx.transport().send(to, std::move(msg));
    }
  }

  bool shardDeliver(NodeId to, const net::Message& msg,
                    ShardContext& ctx) override {
    deliveries[to].push_back({msg.from, msg.dataId, engine_.tick()});
    if (reply_ && msg.hop == 0) {
      net::Message& reply = ctx.messageScratch();
      reply.reset();
      reply.kind = net::MessageKind::Data;
      reply.from = to;
      reply.hop = 1;
      reply.dataId = msg.dataId + 500'000'000ULL;
      ctx.transport().send(msg.from, std::move(reply));
    }
    return true;
  }

  /// Tick a hop-0 message was sent at, recoverable from its dataId.
  std::uint64_t sendTickOf(NodeId from, std::uint64_t dataId) const {
    return sendTick_[from][dataId % 1'000'000];
  }

  struct Delivery {
    NodeId from;
    std::uint64_t dataId;
    std::uint64_t tick;
    friend bool operator==(const Delivery&, const Delivery&) = default;
  };
  std::vector<std::vector<Delivery>> deliveries;
  std::vector<std::vector<std::uint64_t>> draws;
  std::vector<std::vector<std::uint64_t>> stepTicks;

  /// Total deliveries, summed over the per-node logs. (Shard threads
  /// write only their own nodes' logs; a shared counter would race.)
  std::uint64_t delivered() const {
    std::uint64_t total = 0;
    for (const auto& log : deliveries) total += log.size();
    return total;
  }

 private:
  Network& network_;
  const ShardedEngine& engine_;
  bool reply_;
  std::vector<std::vector<std::uint64_t>> sendTick_;
  std::vector<std::uint32_t> sent_;
};

struct Run {
  std::vector<std::vector<TickRecordingProtocol::Delivery>> deliveries;
  std::vector<std::vector<std::uint64_t>> draws;
  std::vector<std::vector<std::uint64_t>> stepTicks;
  std::uint64_t messagesSent;
  std::uint64_t droppedDead;
  std::size_t storedInFlight;

  friend bool operator==(const Run&, const Run&) = default;
};

Run runRecording(std::uint32_t threads, std::uint32_t nodes,
                 std::uint64_t cycles, TimingConfig timing,
                 bool reply = true) {
  Network network(nodes, /*seed=*/7);
  ShardedEngine engine(network, /*seed=*/99, threads, timing);
  TickRecordingProtocol protocol(network, engine, nodes, reply);
  engine.addProtocol(protocol);
  engine.run(cycles);
  return {std::move(protocol.deliveries), std::move(protocol.draws),
          std::move(protocol.stepTicks), engine.messagesSent(),
          engine.droppedDead(), engine.storedInFlight()};
}

TEST(ShardedWindow, ResultsIdenticalAcrossThreadCountsPerTimingModel) {
  // The full Run record — deliveries with ticks, rng draws, step ticks
  // and the engine counters — must be worker-count-invariant under every
  // timing model the conformance table carries, plus thread count 3 (an
  // uneven split of 97 nodes, which the standard {1, 2, 8} table lacks).
  for (const auto& timingCase : vs07::harness::conformanceTimings()) {
    SCOPED_TRACE(::testing::Message() << "timing=" << timingCase.name);
    vs07::harness::expectIdenticalAcrossThreads(
        {1, 2, 3, 8}, [&](std::uint32_t threads) {
          return runRecording(threads, 97, 4, timingCase.timing);
        });
  }
}

TEST(ShardedWindow, ImmediateDeliveryLandsOnTheSendTick) {
  // Lookahead 0 (no latency model): the per-tick degradation must still
  // deliver requests *and* their same-tick replies within the send tick.
  const auto run = runRecording(3, 64, 2, TimingConfig::jittered());
  ASSERT_GT(run.messagesSent, 0u);
  EXPECT_EQ(run.storedInFlight, 0u);
  Network network(64, 7);
  ShardedEngine engine(network, 99, 3, TimingConfig::jittered());
  TickRecordingProtocol protocol(network, engine, 64, /*reply=*/true);
  engine.addProtocol(protocol);
  engine.run(2);
  for (NodeId to = 0; to < 64; ++to)
    for (const auto& d : protocol.deliveries[to]) {
      const std::uint64_t sentAt =
          d.dataId < 500'000'000ULL
              ? protocol.sendTickOf(d.from, d.dataId)
              : 0;  // replies checked via hop-0 pairing below
      if (d.dataId < 500'000'000ULL)
        EXPECT_EQ(d.tick, sentAt) << "to=" << to << " from=" << d.from;
    }
}

TEST(ShardedWindow, FixedLatencyArrivesExactlyLater) {
  // fixed(3): every hop-0 message must arrive exactly 3 ticks after its
  // send tick — the windowed schedule is tick-exact, not approximate.
  Network network(64, 7);
  ShardedEngine engine(network, 99, 4,
                       TimingConfig::jitteredLatency(LatencyModel::fixed(3)));
  TickRecordingProtocol protocol(network, engine, 64, /*reply=*/false);
  engine.addProtocol(protocol);
  engine.run(3);
  std::uint64_t checked = 0;
  for (NodeId to = 0; to < 64; ++to)
    for (const auto& d : protocol.deliveries[to]) {
      EXPECT_EQ(d.tick, protocol.sendTickOf(d.from, d.dataId) + 3)
          << "to=" << to << " from=" << d.from;
      ++checked;
    }
  EXPECT_GT(checked, 0u);
}

TEST(ShardedWindow, InFlightTrafficCarriesOverCycleBoundaries) {
  // A latency floor longer than the cycle span keeps *everything* in
  // flight across the boundary: cycle 1 delivers nothing, later cycles
  // deliver cycle 1's sends, and nothing is lost in between.
  const auto timing =
      TimingConfig::jitteredLatency(LatencyModel::fixed(12),
                                    /*ticksPerCycle=*/8);
  Network network(48, 7);
  ShardedEngine engine(network, 99, 3, timing);
  TickRecordingProtocol protocol(network, engine, 48, /*reply=*/false);
  engine.addProtocol(protocol);
  engine.run(1);
  EXPECT_EQ(protocol.delivered(), 0u);
  EXPECT_EQ(engine.storedInFlight(), engine.messagesSent());
  engine.run(3);
  // Conservation: every send is delivered, dropped, or still stored.
  EXPECT_EQ(engine.messagesSent(),
            protocol.delivered() + engine.droppedDead() +
                engine.droppedUnroutable() + engine.storedInFlight());
  EXPECT_GT(protocol.delivered(), 0u);
}

TEST(ShardedWindow, TimersFireAtTheNodesPhaseOffset) {
  const auto timing = TimingConfig::jittered();  // span 8, no latency
  Network network(80, 7);
  ShardedEngine engine(network, 99, 5, timing);
  TickRecordingProtocol protocol(network, engine, 80, /*reply=*/false);
  engine.addProtocol(protocol);
  engine.run(2);
  const std::uint32_t span = timing.ticksPerCycle;
  bool phasesDiffer = false;
  for (NodeId n = 0; n < 80; ++n) {
    const std::uint32_t phase = engine.timerPhaseOf(n);
    ASSERT_LT(phase, span);
    ASSERT_EQ(protocol.stepTicks[n].size(), 2u);
    // Once per cycle, always at the node's own (pure-hash) offset.
    EXPECT_EQ(protocol.stepTicks[n][0], phase);
    EXPECT_EQ(protocol.stepTicks[n][1], span + phase);
    if (phase != engine.timerPhaseOf(0)) phasesDiffer = true;
  }
  EXPECT_TRUE(phasesDiffer);  // jitter actually spreads the timers
}

TEST(ShardedWindow, MessagesToDeadNodesAreDroppedAndCounted) {
  const auto timing =
      TimingConfig::jitteredLatency(LatencyModel::uniform(1, 4));
  Network network(32, 7);
  ShardedEngine engine(network, 99, 2, timing);
  TickRecordingProtocol protocol(network, engine, 32, /*reply=*/true);
  engine.addProtocol(protocol);
  network.kill(5);
  engine.run(3);
  EXPECT_GT(engine.droppedDead(), 0u);
  EXPECT_TRUE(protocol.deliveries[5].empty());
  EXPECT_EQ(engine.droppedUnroutable(), 0u);
}

TEST(ShardedWindow, CycleSyncWithLatencyIsAContractViolation) {
  Network network(4, 7);
  EXPECT_THROW(ShardedEngine(network, 2, 2,
                             TimingConfig{TimingMode::kCycleSync, 1,
                                          LatencyModel::fixed(2)}),
               ContractViolation);
}

}  // namespace
}  // namespace vs07::sim
