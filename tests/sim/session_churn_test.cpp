#include "sim/session_churn.hpp"

#include <gtest/gtest.h>

#include "common/expect.hpp"
#include "common/stats.hpp"
#include "sim/engine.hpp"
#include "sim/failures.hpp"
#include "sim/network.hpp"

namespace vs07::sim {
namespace {

TEST(SessionDistribution, SamplesRespectBounds) {
  SessionDistribution d;
  d.alpha = 1.5;
  d.minCycles = 10;
  d.maxCycles = 1000;
  Rng rng(1);
  for (int i = 0; i < 5000; ++i) {
    const auto s = d.sample(rng);
    EXPECT_GE(s, 10u);
    EXPECT_LE(s, 1000u);
  }
}

TEST(SessionDistribution, MeanApproximatelyMatched) {
  const auto d = paretoForMeanLifetime(120.0, 2.0);
  EXPECT_NEAR(d.mean(), 120.0, 1e-9);
  Rng rng(2);
  RunningStats stats;
  for (int i = 0; i < 200'000; ++i)
    stats.add(static_cast<double>(d.sample(rng)));
  // Truncation at maxCycles shaves a little off the mean; 10% slack.
  EXPECT_NEAR(stats.mean(), 120.0, 12.0);
}

TEST(SessionDistribution, HeavyTailHasShortModeAndLongOutliers) {
  const auto d = paretoForMeanLifetime(100.0, 1.5);
  Rng rng(3);
  int shorter = 0;
  int muchLonger = 0;
  constexpr int kDraws = 20'000;
  for (int i = 0; i < kDraws; ++i) {
    const auto s = d.sample(rng);
    shorter += s < 100;
    muchLonger += s > 500;
  }
  // Most sessions are below the mean; a non-negligible share is far
  // above — the signature of a heavy tail.
  EXPECT_GT(shorter, kDraws * 6 / 10);
  EXPECT_GT(muchLonger, kDraws / 100);
}

TEST(SessionDistribution, InvalidParametersRejected) {
  SessionDistribution d;
  d.alpha = 1.0;  // mean diverges
  Rng rng(4);
  EXPECT_THROW(d.sample(rng), ContractViolation);
  EXPECT_THROW(paretoForMeanLifetime(100.0, 1.0), ContractViolation);
}

class RecordingJoinHandler final : public JoinHandler {
 public:
  void onJoin(NodeId node, NodeId introducer) override {
    joins.emplace_back(node, introducer);
  }
  std::vector<std::pair<NodeId, NodeId>> joins;
};

TEST(SessionChurnControl, PopulationStaysConstant) {
  Network net(500, 5);
  Engine engine(net, 6);
  SessionChurnControl churn(net, paretoForMeanLifetime(50.0, 1.5), 7);
  engine.addControl(churn);
  engine.run(200);
  EXPECT_EQ(net.aliveCount(), 500u);
  EXPECT_GT(churn.totalRemoved(), 0u);
}

TEST(SessionChurnControl, TurnoverMatchesMeanLifetime) {
  // With mean session length L, the steady-state replacement rate is
  // ~N/L per cycle.
  constexpr double kMean = 40.0;
  Network net(1000, 8);
  Engine engine(net, 9);
  SessionChurnControl churn(net, paretoForMeanLifetime(kMean, 2.0), 10);
  engine.addControl(churn);
  engine.run(400);
  const double perCycle = static_cast<double>(churn.totalRemoved()) / 400.0;
  EXPECT_NEAR(perCycle, 1000.0 / kMean, 1000.0 / kMean * 0.4);
}

TEST(SessionChurnControl, JoinersGetIntroducers) {
  Network net(200, 11);
  Engine engine(net, 12);
  SessionChurnControl churn(net, paretoForMeanLifetime(30.0, 1.5), 13);
  RecordingJoinHandler handler;
  churn.addJoinHandler(handler);
  engine.addControl(churn);
  engine.run(100);
  ASSERT_GT(handler.joins.size(), 0u);
  for (const auto& [node, introducer] : handler.joins)
    EXPECT_NE(node, introducer);
}

TEST(SessionChurnControl, ToleratesExternalKills) {
  Network net(100, 14);
  Engine engine(net, 15);
  SessionChurnControl churn(net, paretoForMeanLifetime(20.0, 1.5), 16);
  engine.addControl(churn);
  engine.run(30);
  // Kill some nodes out-of-band; expiry entries for them must be skipped.
  Rng rng(17);
  killRandomFraction(net, 0.2, rng);
  engine.run(60);  // would throw on double-kill if not handled
  EXPECT_GT(net.aliveCount(), 0u);
}

TEST(KillContiguousArc, KillsAdjacentRingStretch) {
  Network net(100, 18);
  Rng rng(19);
  const auto killed = killContiguousArc(net, 0.2, rng);
  EXPECT_EQ(killed.size(), 20u);
  EXPECT_EQ(net.aliveCount(), 80u);

  // The killed set must be contiguous in sequence-id order: sort all
  // original nodes by seqId and find the dead ones as one circular run.
  std::vector<NodeId> ring;
  for (NodeId id = 0; id < 100; ++id) ring.push_back(id);
  std::sort(ring.begin(), ring.end(), [&](NodeId a, NodeId b) {
    return net.seqId(a) < net.seqId(b);
  });
  std::vector<int> deadAt;
  for (std::size_t i = 0; i < ring.size(); ++i)
    if (!net.isAlive(ring[i])) deadAt.push_back(static_cast<int>(i));
  ASSERT_EQ(deadAt.size(), 20u);
  // Count circular gaps between consecutive dead positions: a contiguous
  // arc has exactly one gap larger than 1.
  int gaps = 0;
  for (std::size_t i = 0; i < deadAt.size(); ++i) {
    const int next = deadAt[(i + 1) % deadAt.size()];
    const int step = (next - deadAt[i] + 100) % 100;
    gaps += step > 1;
  }
  EXPECT_EQ(gaps, 1);
}

TEST(KillContiguousArc, ZeroFractionIsNoop) {
  Network net(50, 20);
  Rng rng(21);
  EXPECT_TRUE(killContiguousArc(net, 0.0, rng).empty());
  EXPECT_EQ(net.aliveCount(), 50u);
}

}  // namespace
}  // namespace vs07::sim
