// Regression for the fold-in of sim/failures' §5.1 partitioned-ring
// helper into sim/network_model's PartitionSchedule: the old scenario —
// kill a contiguous ring arc, then measure RINGCAST coverage over the
// survivors — must reproduce *bit-identical* coverage series when the
// arc comes through the new PartitionSchedule API instead of the legacy
// killContiguousArc call. Both paths share one arc-selection primitive
// (contiguousRingArc: same ring order, same single rng draw), so any
// divergence here means the fold-in changed §5.1 semantics.
#include <gtest/gtest.h>

#include <vector>

#include "analysis/experiment.hpp"
#include "analysis/scenario.hpp"
#include "sim/failures.hpp"
#include "sim/network_model.hpp"

namespace vs07 {
namespace {

constexpr std::uint32_t kNodes = 500;
constexpr std::uint32_t kWarmup = 40;
constexpr double kArcFraction = 0.2;
constexpr std::uint64_t kSeed = 20260726;

analysis::Scenario buildBase() {
  return analysis::Scenario::builder()
      .nodes(kNodes)
      .seed(kSeed)
      .warmupCycles(kWarmup)
      .build();
}

TEST(PartitionFold, ArcKillCoverageSeriesBitIdenticalThroughNewApi) {
  // Legacy path: the free-standing §5.1 helper mutates the network.
  analysis::Scenario legacy = buildBase();
  Rng legacyRng(99);
  const std::vector<NodeId> killed =
      sim::killContiguousArc(legacy.network(), kArcFraction, legacyRng);
  ASSERT_FALSE(killed.empty());

  // New path: PartitionSchedule::splitRingArc names the same arc (same
  // rng draw); applying it as a permanent outage — killing the isolated
  // group *in arc order* — is the §5.1 scenario expressed through the
  // partition API.
  analysis::Scenario folded = buildBase();
  Rng foldedRng(99);
  const std::vector<NodeId> arc =
      sim::contiguousRingArc(folded.network(), kArcFraction, foldedRng);
  sim::PartitionSchedule schedule;
  {
    Rng scheduleRng(99);
    schedule = sim::PartitionSchedule::splitRingArc(folded.network(),
                                                    kArcFraction,
                                                    scheduleRng);
  }
  ASSERT_EQ(arc.size(), killed.size());
  for (std::size_t i = 0; i < arc.size(); ++i) {
    EXPECT_EQ(arc[i], killed[i]) << "arc position " << i;
    EXPECT_EQ(schedule.groupOf(arc[i]), 1u);
  }
  EXPECT_EQ(schedule.members(1).size(), arc.size());
  for (const NodeId victim : arc) folded.network().kill(victim);

  // Identical kill order ⇒ identical alive bookkeeping ⇒ the coverage
  // series of every strategy must match to the last bit.
  for (const cast::Strategy strategy :
       {cast::Strategy::kRingCast, cast::Strategy::kRandCast}) {
    const auto legacyProgress = analysis::measureProgress(
        legacy, strategy, /*fanout=*/3, /*runs=*/16, kSeed + 5);
    const auto foldedProgress = analysis::measureProgress(
        folded, strategy, /*fanout=*/3, /*runs=*/16, kSeed + 5);
    ASSERT_EQ(legacyProgress.meanPctRemaining.size(),
              foldedProgress.meanPctRemaining.size());
    for (std::size_t hop = 0; hop < legacyProgress.meanPctRemaining.size();
         ++hop) {
      EXPECT_EQ(legacyProgress.meanPctRemaining[hop],
                foldedProgress.meanPctRemaining[hop]);
      EXPECT_EQ(legacyProgress.minPctRemaining[hop],
                foldedProgress.minPctRemaining[hop]);
      EXPECT_EQ(legacyProgress.maxPctRemaining[hop],
                foldedProgress.maxPctRemaining[hop]);
    }

    const auto legacyPoint = analysis::measureEffectiveness(
        legacy, strategy, /*fanout=*/3, /*runs=*/16, kSeed + 9);
    const auto foldedPoint = analysis::measureEffectiveness(
        folded, strategy, /*fanout=*/3, /*runs=*/16, kSeed + 9);
    EXPECT_EQ(legacyPoint.avgMissPercent, foldedPoint.avgMissPercent);
    EXPECT_EQ(legacyPoint.completePercent, foldedPoint.completePercent);
    EXPECT_EQ(legacyPoint.avgMessagesTotal, foldedPoint.avgMessagesTotal);
    EXPECT_EQ(legacyPoint.totalMisses, foldedPoint.totalMisses);
  }

  // And the Scenario-level wrapper (which owns its own kill rng) stays
  // on the shared primitive too: its kill set is one contiguous ring run.
  analysis::Scenario wrapper = buildBase();
  const auto wrapperKilled = wrapper.killContiguousArc(kArcFraction);
  EXPECT_EQ(wrapperKilled.size(), killed.size());
}

}  // namespace
}  // namespace vs07
