#include <gtest/gtest.h>

#include <set>

#include "common/expect.hpp"
#include "sim/bootstrap.hpp"
#include "sim/churn.hpp"
#include "sim/engine.hpp"
#include "sim/failures.hpp"
#include "sim/network.hpp"

namespace vs07::sim {
namespace {

class RecordingJoinHandler final : public JoinHandler {
 public:
  void onJoin(NodeId node, NodeId introducer) override {
    joins.emplace_back(node, introducer);
  }
  std::vector<std::pair<NodeId, NodeId>> joins;
};

TEST(ChurnControl, PopulationSizeInvariant) {
  Network net(1000, 1);
  Engine engine(net, 2);
  ChurnControl churn(net, 0.002, 3);
  engine.addControl(churn);
  engine.run(50);
  EXPECT_EQ(net.aliveCount(), 1000u);
  // 0.2% of 1000 = 2 replacements per cycle.
  EXPECT_EQ(churn.totalRemoved(), 100u);
  EXPECT_EQ(churn.totalJoined(), 100u);
  EXPECT_EQ(net.totalCreated(), 1100u);
}

TEST(ChurnControl, JoinersGetAliveIntroducers) {
  Network net(500, 4);
  Engine engine(net, 5);
  ChurnControl churn(net, 0.01, 6);
  RecordingJoinHandler handler;
  churn.addJoinHandler(handler);
  engine.addControl(churn);
  engine.run(20);
  EXPECT_EQ(handler.joins.size(), 100u);  // 5 per cycle * 20
  for (const auto& [node, introducer] : handler.joins) {
    EXPECT_NE(node, introducer);
    // The introducer was alive at join time; it may have died since, but
    // it must never be the joiner itself or a never-created id.
    EXPECT_LT(introducer, net.totalCreated());
  }
}

TEST(ChurnControl, ZeroRateIsNoop) {
  Network net(100, 7);
  Engine engine(net, 8);
  ChurnControl churn(net, 0.0, 9);
  engine.addControl(churn);
  engine.run(10);
  EXPECT_EQ(churn.totalRemoved(), 0u);
  EXPECT_EQ(net.totalCreated(), 100u);
}

TEST(ChurnControl, RateValidation) {
  Network net(10, 10);
  EXPECT_THROW(ChurnControl(net, -0.1, 1), ContractViolation);
  EXPECT_THROW(ChurnControl(net, 1.0, 1), ContractViolation);
}

TEST(ChurnControl, EventuallyReplacesWholePopulation) {
  Network net(200, 11);
  Engine engine(net, 12);
  ChurnControl churn(net, 0.02, 13);  // 4 replacements per cycle
  engine.addControl(churn);
  const auto ran =
      engine.runUntil([&] { return net.initialSurvivors() == 0; },
                      /*max=*/20'000);
  EXPECT_LT(ran, 20'000u);
  EXPECT_EQ(net.initialSurvivors(), 0u);
  // Coupon collector: expect roughly N*H_N/4 ≈ 265 cycles; allow slack.
  EXPECT_GT(ran, 100u);
}

TEST(KillRandomFraction, KillsExactCount) {
  Network net(1000, 14);
  Rng rng(15);
  const auto killed = killRandomFraction(net, 0.05, rng);
  EXPECT_EQ(killed.size(), 50u);
  EXPECT_EQ(net.aliveCount(), 950u);
  std::set<NodeId> unique(killed.begin(), killed.end());
  EXPECT_EQ(unique.size(), 50u);
  for (const NodeId id : killed) EXPECT_FALSE(net.isAlive(id));
}

TEST(KillRandomFraction, ZeroAndFull) {
  Network net(10, 16);
  Rng rng(17);
  EXPECT_TRUE(killRandomFraction(net, 0.0, rng).empty());
  const auto killed = killRandomFraction(net, 1.0, rng);
  EXPECT_EQ(killed.size(), 10u);
  EXPECT_EQ(net.aliveCount(), 0u);
}

TEST(KillRandomCount, MoreThanAliveRejected) {
  Network net(5, 18);
  Rng rng(19);
  EXPECT_THROW(killRandomCount(net, 6, rng), ContractViolation);
}

TEST(BootstrapStar, EveryoneIntroducedToHub) {
  Network net(20, 20);
  RecordingJoinHandler handler;
  bootstrapStar(net, handler, /*hub=*/3);
  EXPECT_EQ(handler.joins.size(), 19u);
  for (const auto& [node, introducer] : handler.joins) {
    EXPECT_EQ(introducer, 3u);
    EXPECT_NE(node, 3u);
  }
}

TEST(BootstrapStar, DeadHubRejected) {
  Network net(5, 21);
  net.kill(0);
  RecordingJoinHandler handler;
  EXPECT_THROW(bootstrapStar(net, handler, 0), ContractViolation);
}

TEST(BootstrapRandom, EveryoneGetsDistinctContact) {
  Network net(50, 22);
  RecordingJoinHandler handler;
  Rng rng(23);
  bootstrapRandom(net, handler, rng);
  EXPECT_EQ(handler.joins.size(), 50u);
  for (const auto& [node, introducer] : handler.joins) {
    EXPECT_NE(node, introducer);
    EXPECT_TRUE(net.isAlive(introducer));
  }
}

}  // namespace
}  // namespace vs07::sim
