// Timing-model tests for the discrete-event engine: CycleSync replay
// determinism, JitteredPeriodic phase semantics (independent per-node
// timers inside a cycle, controls at the cycle boundary, churn joiners),
// engine-queue deliveries, and the scenario-level acceptance pin that
// RINGCAST stays complete under jittered timing.
#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "analysis/scenario.hpp"
#include "cast/strategy.hpp"
#include "common/expect.hpp"
#include "sim/latency_transport.hpp"
#include "sim/network.hpp"
#include "sim/timing.hpp"

namespace vs07::sim {
namespace {

/// Records (tick, node) for every step.
class TickRecorder final : public CycleProtocol {
 public:
  explicit TickRecorder(const Engine& engine) : engine_(&engine) {}
  void step(NodeId self) override {
    log.emplace_back(engine_->tick(), self);
  }
  std::vector<std::pair<std::uint64_t, NodeId>> log;

 private:
  const Engine* engine_;
};

class TickControl final : public Control {
 public:
  explicit TickControl(const Engine& engine) : engine_(&engine) {}
  void execute(std::uint64_t cycle) override {
    log.emplace_back(engine_->tick(), cycle);
  }
  std::vector<std::pair<std::uint64_t, std::uint64_t>> log;

 private:
  const Engine* engine_;
};

TEST(EngineTiming, CycleSyncReplaysBitIdentically) {
  auto run = [](std::uint64_t seed) {
    Network net(40, 11);
    Engine engine(net, seed);
    TickRecorder recorder(engine);
    engine.addProtocol(recorder);
    engine.run(6);
    return recorder.log;
  };
  const auto a = run(5);
  const auto b = run(5);
  const auto c = run(6);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(EngineTiming, CycleSyncAdvancesOneTickPerCycle) {
  Network net(10, 12);
  Engine engine(net, 13);
  TickRecorder recorder(engine);
  engine.addProtocol(recorder);
  engine.run(3);
  EXPECT_EQ(engine.cycle(), 3u);
  for (const auto& [tick, node] : recorder.log) EXPECT_LT(tick, 3u);
}

TEST(EngineTiming, JitteredEveryAliveNodeStepsOncePerCycle) {
  Network net(30, 14);
  Engine engine(net, 15, TimingConfig::jittered(8));
  TickRecorder recorder(engine);
  engine.addProtocol(recorder);
  engine.run(4);
  ASSERT_EQ(recorder.log.size(), 30u * 4u);
  // Each cycle spans 8 ticks; count per-node steps per cycle.
  for (std::uint64_t cycle = 0; cycle < 4; ++cycle) {
    std::vector<int> steps(30, 0);
    for (const auto& [tick, node] : recorder.log)
      if (tick / 8 == cycle) ++steps[node];
    for (NodeId id = 0; id < 30; ++id) EXPECT_EQ(steps[id], 1) << id;
  }
}

TEST(EngineTiming, JitteredPhasesSpreadStepsAcrossTicks) {
  Network net(64, 16);
  Engine engine(net, 17, TimingConfig::jittered(8));
  TickRecorder recorder(engine);
  engine.addProtocol(recorder);
  engine.run(1);
  std::set<std::uint64_t> ticks;
  for (const auto& [tick, node] : recorder.log) ticks.insert(tick);
  // 64 nodes across 8 phases: every phase occupied with overwhelming
  // probability, and certainly more than one.
  EXPECT_GT(ticks.size(), 1u);
  EXPECT_LE(ticks.size(), 8u);
}

TEST(EngineTiming, JitteredNodeKeepsItsPhaseAcrossCycles) {
  Network net(20, 18);
  Engine engine(net, 19, TimingConfig::jittered(8));
  TickRecorder recorder(engine);
  engine.addProtocol(recorder);
  engine.run(3);
  // A periodic timer: each node's step ticks are congruent mod 8.
  std::vector<std::set<std::uint64_t>> phases(20);
  for (const auto& [tick, node] : recorder.log)
    phases[node].insert(tick % 8);
  for (NodeId id = 0; id < 20; ++id) EXPECT_EQ(phases[id].size(), 1u) << id;
}

TEST(EngineTiming, JitteredControlsCloseTheCycleAfterAllSteps) {
  Network net(25, 20);
  Engine engine(net, 21, TimingConfig::jittered(8));
  TickRecorder recorder(engine);
  TickControl control(engine);
  engine.addProtocol(recorder);
  engine.addControl(control);
  engine.run(2);
  ASSERT_EQ(control.log.size(), 2u);
  // Controls run on the cycle's last tick, after every timer of that
  // cycle (timers have phases <= 7 and lower priority beats them there).
  EXPECT_EQ(control.log[0], (std::pair<std::uint64_t, std::uint64_t>{7, 1}));
  EXPECT_EQ(control.log[1], (std::pair<std::uint64_t, std::uint64_t>{15, 2}));
  for (const auto& [tick, node] : recorder.log) EXPECT_LE(tick, 15u);
}

TEST(EngineTiming, JitteredReplaysBitIdentically) {
  auto run = [](std::uint64_t seed) {
    Network net(40, 22);
    Engine engine(net, seed, TimingConfig::jittered(8));
    TickRecorder recorder(engine);
    engine.addProtocol(recorder);
    engine.run(5);
    return recorder.log;
  };
  const auto a = run(5);
  const auto b = run(5);
  const auto c = run(99);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // phases differ: almost surely a different schedule
}

/// Control that spawns one node per cycle: joiners must receive a timer
/// phase from the engine's membership observer and start next cycle.
class SpawnerControl final : public Control {
 public:
  explicit SpawnerControl(Network& net) : net_(&net) {}
  void execute(std::uint64_t cycle) override { net_->spawn(cycle); }

 private:
  Network* net_;
};

TEST(EngineTiming, JitteredChurnJoinersGetTimersNextCycle) {
  Network net(10, 23);
  Engine engine(net, 24, TimingConfig::jittered(8));
  TickRecorder recorder(engine);
  SpawnerControl spawner(net);
  engine.addProtocol(recorder);
  engine.addControl(spawner);
  engine.run(4);
  // Node 10 spawned at end of cycle 1 -> steps in cycles 2, 3, 4 only.
  int steps = 0;
  for (const auto& [tick, node] : recorder.log)
    if (node == 10) {
      ++steps;
      EXPECT_GE(tick / 8, 1u);
    }
  EXPECT_EQ(steps, 3);
}

TEST(EngineTiming, ScheduledDeliveriesRunAtTheirDueTick) {
  Network net(5, 25);
  Engine engine(net, 26, TimingConfig::jittered(4));
  std::vector<std::uint64_t> deliveredAt;
  // Schedule from inside the run via a control so tick() is live.
  class Scheduler final : public Control {
   public:
    Scheduler(Engine& engine, std::vector<std::uint64_t>& log)
        : engine_(&engine), log_(&log) {}
    void execute(std::uint64_t cycle) override {
      if (cycle == 1)
        engine_->scheduleDelivery(5, [this] {
          log_->push_back(engine_->tick());
        });
    }

   private:
    Engine* engine_;
    std::vector<std::uint64_t>* log_;
  } scheduler(engine, deliveredAt);
  engine.addControl(scheduler);
  engine.run(4);
  // Scheduled at tick 3 (cycle 1's last tick) + 5 => due tick 8.
  ASSERT_EQ(deliveredAt.size(), 1u);
  EXPECT_EQ(deliveredAt[0], 8u);
  EXPECT_EQ(engine.pendingDeliveries(), 0u);
}

TEST(EngineTiming, LatencyTransportDeliversThroughTheEngineQueue) {
  Network net(4, 27);
  Engine engine(net, 28, TimingConfig::jittered(4));
  std::vector<std::pair<NodeId, std::uint64_t>> deliveries;
  LatencyTransport transport(
      engine,
      [&](NodeId to, const net::Message& m) {
        deliveries.emplace_back(to, m.dataId);
      },
      LatencyModel::fixed(2), /*seed=*/1);
  net::Message msg;
  msg.kind = net::MessageKind::Data;
  msg.from = 0;
  msg.dataId = 7;
  transport.send(2, std::move(msg));
  EXPECT_EQ(transport.inFlight(), 1u);
  EXPECT_TRUE(deliveries.empty());
  engine.run(1);  // 4 ticks > 2-tick latency
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0], (std::pair<NodeId, std::uint64_t>{2, 7}));
  EXPECT_EQ(transport.inFlight(), 0u);
}

TEST(EngineTiming, LatencyModelValidatesItsParameters) {
  EXPECT_THROW(LatencyModel::uniform(4, 1), ContractViolation);
  EXPECT_THROW(LatencyModel::exponential(0.0, 8), ContractViolation);
  EXPECT_THROW(LatencyModel::exponential(2.0, 0), ContractViolation);
}

TEST(EngineTiming, UniformMeanComputedInDouble) {
  // (minTicks + maxTicks) summed in uint32 would wrap for bounds near
  // the top of the range; the mean must come out exact regardless.
  const auto wide = LatencyModel::uniform(3'000'000'000u, 4'000'000'000u);
  EXPECT_DOUBLE_EQ(wide.meanTicks, 3.5e9);
  const auto degenerate = LatencyModel::uniform(4'000'000'000u,
                                                4'000'000'000u);
  EXPECT_DOUBLE_EQ(degenerate.meanTicks, 4e9);
  const auto small = LatencyModel::uniform(1, 4);
  EXPECT_DOUBLE_EQ(small.meanTicks, 2.5);
}

TEST(EngineTiming, MinLatencyTicksIsTheConservativeLookahead) {
  // minLatencyTicks() is the windowed sharded engine's lookahead: the
  // smallest delay any draw can return. kNone delivers synchronously
  // (lookahead 0 — per-tick windows); kExponential clamps draws up to
  // its floor of 1.
  EXPECT_EQ(LatencyModel::none().minLatencyTicks(), 0u);
  EXPECT_EQ(LatencyModel::fixed(0).minLatencyTicks(), 0u);
  EXPECT_EQ(LatencyModel::fixed(3).minLatencyTicks(), 3u);
  EXPECT_EQ(LatencyModel::uniform(0, 4).minLatencyTicks(), 0u);
  EXPECT_EQ(LatencyModel::uniform(2, 9).minLatencyTicks(), 2u);
  EXPECT_EQ(LatencyModel::exponential(4.0, 100).minLatencyTicks(), 1u);
  // No draw can undershoot the advertised lookahead.
  Rng rng(99);
  const auto model = LatencyModel::uniform(2, 9);
  for (int i = 0; i < 1000; ++i)
    EXPECT_GE(model.draw(rng), model.minLatencyTicks());
}

// -- scenario-level pins (the ISSUE acceptance criteria) -----------------

TEST(EngineTiming, JitteredStaticRingCastStillComplete) {
  auto scenario = analysis::Scenario::builder()
                      .nodes(400)
                      .seed(31)
                      .jitteredTiming()
                      .build();
  auto session = scenario.snapshotSession(
      {.strategy = cast::Strategy::kRingCast, .fanout = 3});
  const auto report = session.publishFromRandom();
  EXPECT_EQ(report.missRatioPercent(), 0.0);
  EXPECT_EQ(scenario.router().droppedUnroutable(), 0u);
}

TEST(EngineTiming, LatencyLadenLiveWaveCompletesAndIsTickStamped) {
  auto scenario = analysis::Scenario::builder()
                      .nodes(300)
                      .seed(32)
                      .jitteredTiming()
                      .latency(sim::LatencyModel::uniform(1, 4))
                      .build();
  auto& live = scenario.liveSession(
      {.strategy = cast::Strategy::kRingCast, .fanout = 3});
  const auto first = live.publishFromRandom();
  // The wave is still in flight right after publish: deliveries are
  // events on the engine queue, not synchronous calls.
  EXPECT_LT(first.notified, 300u);
  scenario.runCycles(300);
  const auto settled = live.report(live.lastDataId());
  EXPECT_EQ(settled.notified, 300u);
  const auto& stats = live.live().stats(live.lastDataId());
  EXPECT_GT(stats.spreadTicks(), 0u);
  EXPECT_EQ(scenario.router().droppedUnroutable(), 0u);
}

}  // namespace
}  // namespace vs07::sim
