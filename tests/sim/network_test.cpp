#include "sim/network.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "common/expect.hpp"

namespace vs07::sim {
namespace {

TEST(Network, InitialPopulationAllAlive) {
  Network net(100, 1);
  EXPECT_EQ(net.totalCreated(), 100u);
  EXPECT_EQ(net.aliveCount(), 100u);
  EXPECT_EQ(net.initialSurvivors(), 100u);
  for (NodeId id = 0; id < 100; ++id) {
    EXPECT_TRUE(net.isAlive(id));
    EXPECT_EQ(net.joinCycle(id), 0u);
  }
}

TEST(Network, SequenceIdsLookRandom) {
  Network net(1000, 2);
  std::set<SequenceId> ids;
  for (NodeId id = 0; id < 1000; ++id) ids.insert(net.seqId(id));
  EXPECT_EQ(ids.size(), 1000u);  // 64-bit collisions would be a bug here
}

TEST(Network, SeedDeterminesSequenceIds) {
  Network a(50, 7);
  Network b(50, 7);
  Network c(50, 8);
  bool anyDiffer = false;
  for (NodeId id = 0; id < 50; ++id) {
    EXPECT_EQ(a.seqId(id), b.seqId(id));
    anyDiffer |= a.seqId(id) != c.seqId(id);
  }
  EXPECT_TRUE(anyDiffer);
}

TEST(Network, KillUpdatesAliveSet) {
  Network net(10, 3);
  net.kill(4);
  EXPECT_FALSE(net.isAlive(4));
  EXPECT_EQ(net.aliveCount(), 9u);
  EXPECT_EQ(net.initialSurvivors(), 9u);
  const auto& alive = net.aliveIds();
  EXPECT_EQ(alive.size(), 9u);
  EXPECT_EQ(std::find(alive.begin(), alive.end(), 4), alive.end());
}

TEST(Network, DoubleKillIsContractViolation) {
  Network net(5, 4);
  net.kill(2);
  EXPECT_THROW(net.kill(2), ContractViolation);
}

TEST(Network, SpawnCreatesFreshIdNeverReused) {
  Network net(5, 5);
  net.kill(0);
  const NodeId fresh = net.spawn(/*atCycle=*/17);
  EXPECT_EQ(fresh, 5u);  // dense: next id, never a reused slot
  EXPECT_TRUE(net.isAlive(fresh));
  EXPECT_FALSE(net.isAlive(0));
  EXPECT_EQ(net.joinCycle(fresh), 17u);
  EXPECT_EQ(net.totalCreated(), 6u);
  EXPECT_EQ(net.aliveCount(), 5u);
}

TEST(Network, SpawnDoesNotAffectInitialSurvivors) {
  Network net(4, 6);
  net.spawn(1);
  EXPECT_EQ(net.initialSurvivors(), 4u);
  net.kill(5u - 1);  // the spawned node (id 4)
  EXPECT_EQ(net.initialSurvivors(), 4u);
  net.kill(0);
  EXPECT_EQ(net.initialSurvivors(), 3u);
}

TEST(Network, LifetimeCountsFromJoin) {
  Network net(2, 7);
  const NodeId fresh = net.spawn(10);
  EXPECT_EQ(net.lifetime(fresh, 10), 0u);
  EXPECT_EQ(net.lifetime(fresh, 35), 25u);
  EXPECT_EQ(net.lifetime(0, 35), 35u);
}

TEST(Network, RandomAliveOnlyReturnsAlive) {
  Network net(20, 8);
  for (NodeId id = 0; id < 15; ++id) net.kill(id);
  Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    const NodeId pick = net.randomAlive(rng);
    EXPECT_TRUE(net.isAlive(pick));
    EXPECT_GE(pick, 15u);
  }
}

class RecordingObserver final : public MembershipObserver {
 public:
  void onSpawn(NodeId node) override { spawned.push_back(node); }
  void onKill(NodeId node) override { killed.push_back(node); }
  std::vector<NodeId> spawned;
  std::vector<NodeId> killed;
};

TEST(Network, ObserverSeesExistingAndFutureNodes) {
  Network net(3, 10);
  RecordingObserver obs;
  net.addObserver(obs);
  EXPECT_EQ(obs.spawned.size(), 3u);  // announced retroactively
  net.spawn(1);
  EXPECT_EQ(obs.spawned.size(), 4u);
  EXPECT_EQ(obs.spawned.back(), 3u);
  net.kill(1);
  ASSERT_EQ(obs.killed.size(), 1u);
  EXPECT_EQ(obs.killed[0], 1u);
}

/// Appends every notification to a shared log — pins the *interleaving*
/// of spawn/kill callbacks, which the event core's slot bookkeeping
/// (timer phases, per-node stores) relies on.
class SequenceObserver final : public MembershipObserver {
 public:
  SequenceObserver(std::vector<std::string>& log, std::string tag)
      : log_(&log), tag_(std::move(tag)) {}
  void onSpawn(NodeId node) override {
    log_->push_back(tag_ + ":spawn:" + std::to_string(node));
  }
  void onKill(NodeId node) override {
    log_->push_back(tag_ + ":kill:" + std::to_string(node));
  }

 private:
  std::vector<std::string>* log_;
  std::string tag_;
};

TEST(Network, RemoveObserverStopsNotifications) {
  Network net(2, 20);
  RecordingObserver kept;
  RecordingObserver removed;
  net.addObserver(kept);
  net.addObserver(removed);
  net.removeObserver(removed);
  const std::size_t seen = removed.spawned.size();
  net.spawn(1);
  net.kill(0);
  EXPECT_EQ(removed.spawned.size(), seen);
  EXPECT_TRUE(removed.killed.empty());
  EXPECT_EQ(kept.spawned.size(), 3u);
  EXPECT_EQ(kept.killed.size(), 1u);
  // Removing an observer that was never registered is a harmless no-op
  // (destructors call this unconditionally).
  net.removeObserver(removed);
}

TEST(Network, ObserversNotifiedInRegistrationOrderPerEvent) {
  Network net(2, 20);
  std::vector<std::string> log;
  SequenceObserver a(log, "a");
  SequenceObserver b(log, "b");
  net.addObserver(a);
  net.addObserver(b);
  log.clear();  // drop the retroactive announcements
  net.kill(0);
  net.spawn(1);
  EXPECT_EQ(log, (std::vector<std::string>{"a:kill:0", "b:kill:0",
                                           "a:spawn:2", "b:spawn:2"}));
}

TEST(Network, SameCycleKillThenSpawnKeepsSlotSemantics) {
  // The churn controls kill and spawn inside one control execution; the
  // replacement must be a *fresh* slot announced strictly after the kill
  // (ids are never reused, so per-node state keyed by id stays valid).
  Network net(5, 21);
  std::vector<std::string> log;
  SequenceObserver obs(log, "o");
  net.addObserver(obs);
  log.clear();
  net.kill(3);
  const NodeId fresh = net.spawn(/*atCycle=*/9);
  EXPECT_EQ(fresh, 5u);
  EXPECT_EQ(log, (std::vector<std::string>{"o:kill:3", "o:spawn:5"}));
  EXPECT_FALSE(net.isAlive(3));
  EXPECT_TRUE(net.isAlive(fresh));
  EXPECT_EQ(net.aliveCount(), 5u);
}

TEST(Network, SameCycleSpawnThenKillOfTheSpawnedNode) {
  // The opposite interleaving: a node can be born and die within one
  // cycle (heavy session churn); observers see it in exact call order.
  Network net(3, 22);
  std::vector<std::string> log;
  SequenceObserver obs(log, "o");
  net.addObserver(obs);
  log.clear();
  const NodeId fresh = net.spawn(4);
  net.kill(fresh);
  EXPECT_EQ(log, (std::vector<std::string>{"o:spawn:3", "o:kill:3"}));
  EXPECT_EQ(net.aliveCount(), 3u);
  EXPECT_EQ(net.totalCreated(), 4u);
}

TEST(Network, LateObserverIsToldAboutDeadSlotsToo) {
  // addObserver announces the whole id space, dead ids included:
  // protocols size their dense per-node arrays from these calls, and a
  // dead slot still needs a slot (stale view entries point at it).
  Network net(4, 23);
  net.kill(1);
  RecordingObserver obs;
  net.addObserver(obs);
  EXPECT_EQ(obs.spawned, (std::vector<NodeId>{0, 1, 2, 3}));
  EXPECT_FALSE(net.isAlive(1));  // announced, but queryably dead
}

TEST(Network, SetSeqIdOverrides) {
  Network net(2, 11);
  net.setSeqId(0, 12345);
  EXPECT_EQ(net.seqId(0), 12345u);
}

TEST(Network, AliveIdsConsistentAfterChurnStorm) {
  Network net(50, 12);
  Rng rng(13);
  for (int round = 0; round < 200; ++round) {
    if (net.aliveCount() > 1 && rng.chance(0.5))
      net.kill(net.randomAlive(rng));
    else
      net.spawn(round);
    // Invariant: aliveIds contains exactly the alive nodes, no dups.
    std::set<NodeId> unique(net.aliveIds().begin(), net.aliveIds().end());
    ASSERT_EQ(unique.size(), net.aliveIds().size());
    ASSERT_EQ(unique.size(), net.aliveCount());
    for (const NodeId id : unique) ASSERT_TRUE(net.isAlive(id));
  }
}

}  // namespace
}  // namespace vs07::sim
