#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "sim/network.hpp"

namespace vs07::sim {
namespace {

class CountingProtocol final : public CycleProtocol {
 public:
  void step(NodeId self) override { ++stepsPerNode[self]; }
  std::map<NodeId, int> stepsPerNode;
};

class CountingControl final : public Control {
 public:
  void execute(std::uint64_t cycle) override { cycles.push_back(cycle); }
  std::vector<std::uint64_t> cycles;
};

TEST(Engine, EveryAliveNodeSteppedOncePerCycle) {
  Network net(10, 1);
  Engine engine(net, 2);
  CountingProtocol protocol;
  engine.addProtocol(protocol);
  engine.run(5);
  EXPECT_EQ(engine.cycle(), 5u);
  for (NodeId id = 0; id < 10; ++id)
    EXPECT_EQ(protocol.stepsPerNode[id], 5) << "node " << id;
}

TEST(Engine, DeadNodesNotStepped) {
  Network net(6, 2);
  net.kill(3);
  Engine engine(net, 3);
  CountingProtocol protocol;
  engine.addProtocol(protocol);
  engine.run(4);
  EXPECT_EQ(protocol.stepsPerNode.count(3), 0u);
  EXPECT_EQ(protocol.stepsPerNode[0], 4);
}

TEST(Engine, MultipleProtocolsAllStep) {
  Network net(4, 3);
  Engine engine(net, 4);
  CountingProtocol a;
  CountingProtocol b;
  engine.addProtocol(a);
  engine.addProtocol(b);
  engine.run(3);
  EXPECT_EQ(a.stepsPerNode[2], 3);
  EXPECT_EQ(b.stepsPerNode[2], 3);
}

TEST(Engine, ControlsRunOncePerCycleAfterSteps) {
  Network net(3, 4);
  Engine engine(net, 5);
  CountingControl control;
  engine.addControl(control);
  engine.run(3);
  EXPECT_EQ(control.cycles, (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST(Engine, RunUntilStopsOnPredicate) {
  Network net(3, 5);
  Engine engine(net, 6);
  CountingControl control;
  engine.addControl(control);
  const auto ran =
      engine.runUntil([&] { return engine.cycle() >= 7; }, /*max=*/100);
  EXPECT_EQ(ran, 7u);
  EXPECT_EQ(engine.cycle(), 7u);
}

TEST(Engine, RunUntilHonoursMaxCycles) {
  Network net(3, 6);
  Engine engine(net, 7);
  const auto ran = engine.runUntil([] { return false; }, /*max=*/12);
  EXPECT_EQ(ran, 12u);
}

TEST(Engine, RunUntilZeroCyclesWhenAlreadyTrue) {
  Network net(3, 7);
  Engine engine(net, 8);
  const auto ran = engine.runUntil([] { return true; }, /*max=*/10);
  EXPECT_EQ(ran, 0u);
}

/// A protocol that records the order nodes were stepped in.
class OrderRecorder final : public CycleProtocol {
 public:
  void step(NodeId self) override { order.push_back(self); }
  std::vector<NodeId> order;
};

TEST(Engine, StepOrderIsShuffledBetweenCycles) {
  Network net(50, 8);
  Engine engine(net, 9);
  OrderRecorder recorder;
  engine.addProtocol(recorder);
  engine.run(2);
  ASSERT_EQ(recorder.order.size(), 100u);
  const std::vector<NodeId> first(recorder.order.begin(),
                                  recorder.order.begin() + 50);
  const std::vector<NodeId> second(recorder.order.begin() + 50,
                                   recorder.order.end());
  EXPECT_NE(first, second);  // 1/50! chance of identical shuffles
}

/// Control that kills one node per cycle; the engine must cope with the
/// alive set shrinking between cycles.
class KillerControl final : public Control {
 public:
  explicit KillerControl(Network& net) : net_(net) {}
  void execute(std::uint64_t) override {
    if (net_.aliveCount() > 1) net_.kill(net_.aliveIds().front());
  }

 private:
  Network& net_;
};

TEST(Engine, ToleratesMembershipChangesBetweenCycles) {
  Network net(5, 9);
  Engine engine(net, 10);
  CountingProtocol protocol;
  KillerControl killer(net);
  engine.addProtocol(protocol);
  engine.addControl(killer);
  engine.run(10);
  EXPECT_EQ(net.aliveCount(), 1u);
}

}  // namespace
}  // namespace vs07::sim
