#include "sim/router.hpp"

#include <gtest/gtest.h>

#include "sim/network.hpp"

namespace vs07::sim {
namespace {

net::Message makeMessage(net::MessageKind kind, std::uint8_t channel = 0) {
  net::Message m;
  m.kind = kind;
  m.channel = channel;
  m.from = 1;
  return m;
}

TEST(MessageRouter, DispatchesByKind) {
  Network net(3, 1);
  MessageRouter router(net);
  int cyclonCount = 0;
  int dataCount = 0;
  router.route(net::MessageKind::CyclonRequest,
               [&](NodeId, const net::Message&) { ++cyclonCount; });
  router.route(net::MessageKind::Data,
               [&](NodeId, const net::Message&) { ++dataCount; });
  router.deliver(0, makeMessage(net::MessageKind::CyclonRequest));
  router.deliver(0, makeMessage(net::MessageKind::Data));
  router.deliver(0, makeMessage(net::MessageKind::Data));
  EXPECT_EQ(cyclonCount, 1);
  EXPECT_EQ(dataCount, 2);
}

TEST(MessageRouter, DispatchesByChannel) {
  Network net(2, 2);
  MessageRouter router(net);
  int ring0 = 0;
  int ring1 = 0;
  router.route(
      net::MessageKind::VicinityRequest,
      [&](NodeId, const net::Message&) { ++ring0; }, /*channel=*/0);
  router.route(
      net::MessageKind::VicinityRequest,
      [&](NodeId, const net::Message&) { ++ring1; }, /*channel=*/1);
  router.deliver(0, makeMessage(net::MessageKind::VicinityRequest, 0));
  router.deliver(0, makeMessage(net::MessageKind::VicinityRequest, 1));
  router.deliver(0, makeMessage(net::MessageKind::VicinityRequest, 1));
  EXPECT_EQ(ring0, 1);
  EXPECT_EQ(ring1, 2);
}

TEST(MessageRouter, DropsTrafficToDeadNodes) {
  Network net(3, 3);
  MessageRouter router(net);
  int delivered = 0;
  router.route(net::MessageKind::Data,
               [&](NodeId, const net::Message&) { ++delivered; });
  net.kill(1);
  router.deliver(1, makeMessage(net::MessageKind::Data));
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(router.droppedDead(), 1u);
  router.deliver(2, makeMessage(net::MessageKind::Data));
  EXPECT_EQ(delivered, 1);
}

TEST(MessageRouter, UnroutedKindIsCountedNotFatal) {
  // A message for an unregistered slot is dropped and *counted*: under
  // latency models traffic can legitimately arrive after the handler's
  // owner is gone, and the integration suites assert the counter stays
  // zero in correctly wired systems.
  Network net(2, 4);
  MessageRouter router(net);
  router.deliver(0, makeMessage(net::MessageKind::Data));
  EXPECT_EQ(router.droppedUnroutable(), 1u);
  router.deliver(1, makeMessage(net::MessageKind::PullRequest));
  EXPECT_EQ(router.droppedUnroutable(), 2u);
  EXPECT_EQ(router.droppedDead(), 0u);
}

TEST(MessageRouter, UnroutedChannelCountsSeparatelyFromRoutedOne) {
  Network net(2, 6);
  MessageRouter router(net);
  int ring0 = 0;
  router.route(
      net::MessageKind::VicinityRequest,
      [&](NodeId, const net::Message&) { ++ring0; }, /*channel=*/0);
  router.deliver(0, makeMessage(net::MessageKind::VicinityRequest, 0));
  router.deliver(0, makeMessage(net::MessageKind::VicinityRequest, 3));
  EXPECT_EQ(ring0, 1);
  EXPECT_EQ(router.droppedUnroutable(), 1u);
}

TEST(MessageRouter, DeadDestinationTakesPrecedenceOverUnroutable) {
  // Traffic to a dead node is dropped as dead regardless of whether the
  // slot is registered — the dead node would not have handled it anyway.
  Network net(2, 7);
  MessageRouter router(net);
  net.kill(0);
  router.deliver(0, makeMessage(net::MessageKind::Data));
  EXPECT_EQ(router.droppedDead(), 1u);
  EXPECT_EQ(router.droppedUnroutable(), 0u);
}

TEST(MessageRouter, HandlerReceivesAddresseeAndMessage) {
  Network net(5, 5);
  MessageRouter router(net);
  NodeId seenTo = kNoNode;
  NodeId seenFrom = kNoNode;
  router.route(net::MessageKind::Data,
               [&](NodeId to, const net::Message& m) {
                 seenTo = to;
                 seenFrom = m.from;
               });
  router.deliver(4, makeMessage(net::MessageKind::Data));
  EXPECT_EQ(seenTo, 4u);
  EXPECT_EQ(seenFrom, 1u);
}

}  // namespace
}  // namespace vs07::sim
