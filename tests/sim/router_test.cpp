#include "sim/router.hpp"

#include <gtest/gtest.h>

#include "common/expect.hpp"
#include "sim/network.hpp"

namespace vs07::sim {
namespace {

net::Message makeMessage(net::MessageKind kind, std::uint8_t channel = 0) {
  net::Message m;
  m.kind = kind;
  m.channel = channel;
  m.from = 1;
  return m;
}

TEST(MessageRouter, DispatchesByKind) {
  Network net(3, 1);
  MessageRouter router(net);
  int cyclonCount = 0;
  int dataCount = 0;
  router.route(net::MessageKind::CyclonRequest,
               [&](NodeId, const net::Message&) { ++cyclonCount; });
  router.route(net::MessageKind::Data,
               [&](NodeId, const net::Message&) { ++dataCount; });
  router.deliver(0, makeMessage(net::MessageKind::CyclonRequest));
  router.deliver(0, makeMessage(net::MessageKind::Data));
  router.deliver(0, makeMessage(net::MessageKind::Data));
  EXPECT_EQ(cyclonCount, 1);
  EXPECT_EQ(dataCount, 2);
}

TEST(MessageRouter, DispatchesByChannel) {
  Network net(2, 2);
  MessageRouter router(net);
  int ring0 = 0;
  int ring1 = 0;
  router.route(
      net::MessageKind::VicinityRequest,
      [&](NodeId, const net::Message&) { ++ring0; }, /*channel=*/0);
  router.route(
      net::MessageKind::VicinityRequest,
      [&](NodeId, const net::Message&) { ++ring1; }, /*channel=*/1);
  router.deliver(0, makeMessage(net::MessageKind::VicinityRequest, 0));
  router.deliver(0, makeMessage(net::MessageKind::VicinityRequest, 1));
  router.deliver(0, makeMessage(net::MessageKind::VicinityRequest, 1));
  EXPECT_EQ(ring0, 1);
  EXPECT_EQ(ring1, 2);
}

TEST(MessageRouter, DropsTrafficToDeadNodes) {
  Network net(3, 3);
  MessageRouter router(net);
  int delivered = 0;
  router.route(net::MessageKind::Data,
               [&](NodeId, const net::Message&) { ++delivered; });
  net.kill(1);
  router.deliver(1, makeMessage(net::MessageKind::Data));
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(router.droppedDead(), 1u);
  router.deliver(2, makeMessage(net::MessageKind::Data));
  EXPECT_EQ(delivered, 1);
}

TEST(MessageRouter, UnroutedKindIsContractViolation) {
  Network net(2, 4);
  MessageRouter router(net);
  EXPECT_THROW(router.deliver(0, makeMessage(net::MessageKind::Data)),
               ContractViolation);
}

TEST(MessageRouter, HandlerReceivesAddresseeAndMessage) {
  Network net(5, 5);
  MessageRouter router(net);
  NodeId seenTo = kNoNode;
  NodeId seenFrom = kNoNode;
  router.route(net::MessageKind::Data,
               [&](NodeId to, const net::Message& m) {
                 seenTo = to;
                 seenFrom = m.from;
               });
  router.deliver(4, makeMessage(net::MessageKind::Data));
  EXPECT_EQ(seenTo, 4u);
  EXPECT_EQ(seenFrom, 1u);
}

}  // namespace
}  // namespace vs07::sim
