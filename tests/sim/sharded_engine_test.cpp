// ShardedEngine mechanics: canonical cross-shard merge order, barrier
// semantics, RNG stream discipline, drop accounting — all asserted to be
// independent of the worker count.
#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/expect.hpp"
#include "net/message.hpp"
#include "sim/network.hpp"
#include "sim/sharded_engine.hpp"

namespace vs07::sim {
namespace {

/// Records everything that happens to it, per node: deliveries as
/// (from, dataId) in arrival order, plus the first RNG draw of every
/// step. Each step sends a deterministic fan of messages; with `reply`
/// set, hop-0 messages are answered (hop 1), so every cycle exercises a
/// second delivery round. `capacity` sizes the per-node state (pass
/// spawn headroom when a control grows the population).
class RecordingProtocol final : public ShardedProtocol {
 public:
  RecordingProtocol(Network& network, std::uint32_t capacity, bool reply)
      : network_(network), reply_(reply) {
    deliveries.resize(capacity);
    draws.resize(capacity);
    sent_.resize(capacity, 0);
  }

  void onShardedAttach(std::uint32_t /*shardCount*/) {}

  void shardStep(NodeId self, ShardContext& ctx) override {
    draws[self].push_back(ctx.rng()());
    const auto n = network_.totalCreated();
    // Two destinations per step: a near one (often same shard) and a
    // strided one (usually a different shard).
    const NodeId targets[2] = {(self + 1) % n, (self * 7 + 3) % n};
    for (const NodeId to : targets) {
      if (to == self) continue;
      net::Message& msg = ctx.messageScratch();
      msg.reset();
      msg.kind = net::MessageKind::Data;
      msg.from = self;
      msg.hop = 0;
      msg.dataId = static_cast<std::uint64_t>(self) * 1'000'000 + sent_[self]++;
      ctx.transport().send(to, std::move(msg));
    }
  }

  bool shardDeliver(NodeId to, const net::Message& msg,
                    ShardContext& ctx) override {
    deliveries[to].emplace_back(msg.from, msg.dataId);
    if (reply_ && msg.hop == 0) {
      net::Message& reply = ctx.messageScratch();
      reply.reset();
      reply.kind = net::MessageKind::Data;
      reply.from = to;
      reply.hop = 1;
      reply.dataId = msg.dataId + 500'000'000ULL;
      ctx.transport().send(msg.from, std::move(reply));
    }
    return true;
  }

  std::vector<std::vector<std::pair<NodeId, std::uint64_t>>> deliveries;
  std::vector<std::vector<std::uint64_t>> draws;

 private:
  Network& network_;
  bool reply_;
  std::vector<std::uint32_t> sent_;
};

struct Run {
  std::vector<std::vector<std::pair<NodeId, std::uint64_t>>> deliveries;
  std::vector<std::vector<std::uint64_t>> draws;
  std::uint64_t messagesSent;
  std::uint64_t droppedDead;
};

Run runRecording(std::uint32_t threads, std::uint32_t nodes,
                 std::uint64_t cycles) {
  Network network(nodes, /*seed=*/7);
  ShardedEngine engine(network, /*seed=*/99, threads);
  RecordingProtocol protocol(network, nodes, /*reply=*/true);
  engine.addProtocol(protocol);
  engine.run(cycles);
  return {std::move(protocol.deliveries), std::move(protocol.draws),
          engine.messagesSent(), engine.droppedDead()};
}

TEST(ShardedEngine, DeliveryOrderIdenticalAcrossThreadCounts) {
  const auto base = runRecording(1, 97, 4);
  for (const std::uint32_t threads : {2u, 3u, 8u}) {
    const auto run = runRecording(threads, 97, 4);
    EXPECT_EQ(base.deliveries, run.deliveries) << "threads=" << threads;
    EXPECT_EQ(base.messagesSent, run.messagesSent) << "threads=" << threads;
  }
}

TEST(ShardedEngine, RngStreamsIdenticalAcrossThreadCounts) {
  const auto base = runRecording(1, 64, 3);
  for (const std::uint32_t threads : {2u, 5u}) {
    const auto run = runRecording(threads, 64, 3);
    EXPECT_EQ(base.draws, run.draws) << "threads=" << threads;
  }
}

TEST(ShardedEngine, CanonicalOrderSortsBySenderThenSequence) {
  // 16 nodes share one step batch (ids [0,16) are one stripe), so with
  // replies off the whole cycle is a single delivery round: every node's
  // inbox — gathered from 4 different source shards — must come out
  // sorted by (sender, send-sequence), i.e. by our monotone dataId.
  Network network(16, 7);
  ShardedEngine engine(network, 99, 4);
  RecordingProtocol protocol(network, 16, /*reply=*/false);
  engine.addProtocol(protocol);
  engine.run(1);
  for (const auto& log : protocol.deliveries) {
    for (std::size_t i = 1; i < log.size(); ++i) {
      const bool ordered =
          log[i - 1].first < log[i].first ||
          (log[i - 1].first == log[i].first &&
           log[i - 1].second < log[i].second);
      EXPECT_TRUE(ordered) << "out-of-order delivery pair at " << i;
    }
  }
}

TEST(ShardedEngine, MessagesToDeadNodesAreDroppedAndCounted) {
  Network network(32, 7);
  ShardedEngine engine(network, 99, 2);
  RecordingProtocol protocol(network, 32, /*reply=*/true);
  engine.addProtocol(protocol);
  network.kill(5);
  engine.run(2);
  EXPECT_GT(engine.droppedDead(), 0u);
  EXPECT_TRUE(protocol.deliveries[5].empty());
  EXPECT_EQ(engine.droppedUnroutable(), 0u);
  // Drop accounting is part of the deterministic result too.
  Network network2(32, 7);
  ShardedEngine engine2(network2, 99, 7);
  RecordingProtocol protocol2(network2, 32, /*reply=*/true);
  engine2.addProtocol(protocol2);
  network2.kill(5);
  engine2.run(2);
  EXPECT_EQ(engine.droppedDead(), engine2.droppedDead());
  EXPECT_EQ(protocol.deliveries, protocol2.deliveries);
}

/// Control that records the cycle numbers it runs at and spawns one node
/// per execution (exercising mid-run bookkeeping growth).
class SpawningControl final : public Control {
 public:
  explicit SpawningControl(Network& network) : network_(network) {}
  void execute(std::uint64_t cycle) override {
    cycles.push_back(cycle);
    network_.spawn(cycle);
  }
  std::vector<std::uint64_t> cycles;

 private:
  Network& network_;
};

TEST(ShardedEngine, ControlsRunSequentiallyAtCycleBoundaries) {
  Network network(20, 7);
  ShardedEngine engine(network, 99, 3);
  RecordingProtocol protocol(network, /*capacity=*/25, /*reply=*/true);
  engine.addProtocol(protocol);
  SpawningControl control(network);
  engine.addControl(control);
  engine.run(5);
  EXPECT_EQ(control.cycles, (std::vector<std::uint64_t>{1, 2, 3, 4, 5}));
  EXPECT_EQ(network.totalCreated(), 25u);
  EXPECT_EQ(engine.cycle(), 5u);
  // Spawned nodes step in later cycles: the first joiner (spawned at the
  // end of cycle 1) has stepped, the last (end of cycle 5) has not.
  EXPECT_FALSE(protocol.draws[20].empty());
  EXPECT_TRUE(protocol.draws[24].empty());
}

TEST(ShardedEngine, RunUntilStopsAtPredicate) {
  Network network(16, 7);
  ShardedEngine engine(network, 2, 2);
  RecordingProtocol protocol(network, 16, /*reply=*/true);
  engine.addProtocol(protocol);
  const auto ran =
      engine.runUntil([&] { return engine.cycle() >= 3; }, /*maxCycles=*/10);
  EXPECT_EQ(ran, 3u);
  EXPECT_EQ(engine.cycle(), 3u);
}

TEST(ShardedEngine, DestructionUnregistersMembershipObserver) {
  // The Network outlives the engine here; membership mutations after the
  // engine is gone must not reach its (destroyed) growth tracker.
  Network network(8, 7);
  {
    ShardedEngine engine(network, 2, 2);
    RecordingProtocol protocol(network, 8, /*reply=*/false);
    engine.addProtocol(protocol);
    engine.run(1);
  }
  network.spawn(1);  // would call through a dangling observer before the fix
  network.kill(0);
  EXPECT_EQ(network.aliveCount(), 8u);
}

TEST(ShardedEngine, ZeroThreadsIsAContractViolation) {
  Network network(4, 7);
  EXPECT_THROW(ShardedEngine(network, 2, 0), ContractViolation);
}

TEST(ShardedEngine, BatchAssignmentIsPartitionIndependent) {
  // batchOf is a pure function of the node id (never of the shard
  // layout); pin the stripe layout the determinism story depends on.
  EXPECT_EQ(ShardedEngine::batchOf(0), ShardedEngine::batchOf(15));
  EXPECT_NE(ShardedEngine::batchOf(15), ShardedEngine::batchOf(16));
  for (NodeId n = 0; n < 1024; ++n)
    EXPECT_LT(ShardedEngine::batchOf(n), ShardedEngine::kStepBatches);
}

}  // namespace
}  // namespace vs07::sim
