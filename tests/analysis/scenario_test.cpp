// ScenarioBuilder / Scenario — the experiment-facing composition root.
#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/experiment.hpp"
#include "analysis/graph_analysis.hpp"
#include "analysis/scenario.hpp"
#include "common/expect.hpp"

namespace vs07::analysis {
namespace {

using cast::Strategy;

TEST(ScenarioBuilder, BuildWarmsUpByDefault) {
  const auto scenario = Scenario::builder().nodes(150).seed(1).build();
  const auto convergence =
      ringConvergence(scenario.network(), scenario.vicinity());
  EXPECT_GE(convergence.bothAccuracy, 0.95);
  EXPECT_EQ(scenario.engine().cycle(), scenario.config().warmupCycles);
}

TEST(ScenarioBuilder, NoWarmupLeavesViewsEmpty) {
  const auto scenario =
      Scenario::builder().nodes(80).seed(2).noWarmup().build();
  EXPECT_EQ(scenario.engine().cycle(), 0u);
  const auto snapshot = scenario.snapshot(Strategy::kRandCast);
  for (const NodeId id : snapshot.aliveIds())
    EXPECT_TRUE(snapshot.rlinks(id).empty());
}

TEST(ScenarioBuilder, SameSeedSameOverlay) {
  const auto a = Scenario::builder().nodes(120).seed(7).build();
  const auto b = Scenario::builder().nodes(120).seed(7).build();
  const auto sa = a.snapshot(Strategy::kRingCast);
  const auto sb = b.snapshot(Strategy::kRingCast);
  ASSERT_EQ(sa.totalIds(), sb.totalIds());
  for (NodeId id = 0; id < sa.totalIds(); ++id) {
    EXPECT_TRUE(std::ranges::equal(sa.rlinks(id), sb.rlinks(id)));
    EXPECT_TRUE(std::ranges::equal(sa.dlinks(id), sb.dlinks(id)));
  }
}

TEST(ScenarioBuilder, ZeroRingsRejected) {
  EXPECT_THROW(Scenario::builder().nodes(20).rings(0).build(),
               ContractViolation);
}

TEST(ScenarioBuilder, InvalidKnobsRejected) {
  EXPECT_THROW(Scenario::builder().delayedTransport(5, 2), ContractViolation);
  EXPECT_THROW(Scenario::builder().lossyTransport(1.5), ContractViolation);
  EXPECT_THROW(Scenario::builder().churn(0.0), ContractViolation);
  EXPECT_THROW(
      Scenario::builder().churn(0.01).sessionChurn(sim::SessionDistribution{}),
      ContractViolation);
}

TEST(ScenarioBuilder, ChurnInstalledAtBuildReplacesNodes) {
  auto scenario =
      Scenario::builder().nodes(200).seed(3).churn(0.05).build();
  const auto createdAfterWarmup = scenario.network().totalCreated();
  EXPECT_EQ(createdAfterWarmup, 200u);  // churn starts only after warm-up
  scenario.runCycles(20);
  EXPECT_GT(scenario.network().totalCreated(), createdAfterWarmup);
  EXPECT_EQ(scenario.network().aliveCount(), 200u);  // replacement churn
}

TEST(ScenarioBuilder, SessionChurnInstalledAtBuildReplacesNodes) {
  auto scenario = Scenario::builder()
                      .nodes(150)
                      .seed(4)
                      .sessionChurn(sim::paretoForMeanLifetime(30.0))
                      .build();
  scenario.runCycles(60);
  EXPECT_GT(scenario.network().totalCreated(), 150u);
  EXPECT_EQ(scenario.network().aliveCount(), 150u);
}

TEST(Scenario, MoveKeepsWiringAlive) {
  // Scenario is a movable value type; the heap core keeps the transport's
  // this-capturing delivery sink valid across the move.
  auto built = Scenario::builder().nodes(100).seed(5).build();
  Scenario moved = std::move(built);
  moved.runCycles(5);
  auto session = moved.snapshotSession(
      {.strategy = Strategy::kRingCast, .fanout = 3});
  EXPECT_TRUE(session.publish(0).complete());
}

TEST(Scenario, PaperStaticPresetIsReadyToCast) {
  const auto scenario = Scenario::paperStatic(/*nodes=*/300, /*seed=*/6);
  const auto point =
      measureEffectiveness(scenario, Strategy::kRingCast, 3, 10, 99);
  EXPECT_EQ(point.avgMissPercent, 0.0);
  EXPECT_EQ(point.completePercent, 100.0);
}

TEST(Scenario, PaperCatastrophicPresetKillsTheFraction) {
  const auto scenario =
      Scenario::paperCatastrophic(0.10, /*nodes=*/300, /*seed=*/7);
  EXPECT_EQ(scenario.network().aliveCount(), 270u);
}

TEST(Scenario, PaperChurnPresetReachesFullTurnover) {
  const auto scenario =
      Scenario::paperChurn(/*rate=*/0.02, /*nodes=*/200, /*seed=*/8,
                           /*maxChurnCycles=*/20'000);
  EXPECT_EQ(scenario.network().initialSurvivors(), 0u);
  EXPECT_GT(scenario.churnCycles(), 0u);
  EXPECT_EQ(scenario.engine().cycle(),
            scenario.config().warmupCycles + scenario.churnCycles());
}

TEST(Scenario, RunChurnUntilFullTurnoverInstallsChurnLazily) {
  auto scenario = Scenario::builder().nodes(150).seed(9).build();
  const auto cycles = scenario.runChurnUntilFullTurnover(0.05, 10'000);
  EXPECT_LT(cycles, 10'000u);
  EXPECT_EQ(scenario.network().initialSurvivors(), 0u);
}

TEST(Scenario, SnapshotSelectsLinksPerStrategy) {
  const auto scenario =
      Scenario::builder().nodes(120).rings(2).seed(10).build();
  const auto rand = scenario.snapshot(Strategy::kRandCast);
  const auto ring = scenario.snapshot(Strategy::kRingCast);
  const auto multi = scenario.snapshot(Strategy::kMultiRing);
  for (const NodeId id : rand.aliveIds()) {
    EXPECT_TRUE(rand.dlinks(id).empty());
    EXPECT_FALSE(rand.rlinks(id).empty());
    EXPECT_LE(ring.dlinks(id).size(), 2u);
    EXPECT_GE(multi.dlinks(id).size(), ring.dlinks(id).size());
  }
}

TEST(Scenario, OneLiveSessionPerScenario) {
  auto scenario = Scenario::builder().nodes(60).seed(11).build();
  scenario.liveSession({.strategy = Strategy::kRingCast});
  EXPECT_THROW(scenario.liveSession({.strategy = Strategy::kRandCast}),
               ContractViolation);
}

}  // namespace
}  // namespace vs07::analysis
