// Scenario-level coverage of the network-condition layer: the builder
// hooks wire a NetworkModel under all simulated traffic, partitions
// block and then heal on the live dissemination path, the adversarial
// presets construct and behave, clean links keep the steady-state
// zero-allocation contract, and cell-parallel sweeps over network
// conditions are bit-identical for any thread count.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "analysis/scenario.hpp"
#include "common/alloc_probe.hpp"
#include "common/rng.hpp"
#include "common/task_pool.hpp"

namespace vs07 {
namespace {

using analysis::Scenario;
using cast::Strategy;

TEST(ScenarioNetwork, NoConditionsMeansNoModel) {
  auto scenario =
      Scenario::builder().nodes(50).warmupCycles(5).seed(3).build();
  EXPECT_EQ(scenario.networkModel(), nullptr);
  EXPECT_EQ(scenario.latencyTransport(), nullptr);
}

TEST(ScenarioNetwork, LinkLossRoutesAllTrafficThroughTheModel) {
  auto scenario = Scenario::builder()
                      .nodes(100)
                      .warmupCycles(10)
                      .seed(3)
                      .linkLoss(0.2)
                      .build();
  ASSERT_NE(scenario.networkModel(), nullptr);
  ASSERT_NE(scenario.latencyTransport(), nullptr);
  EXPECT_EQ(scenario.latencyTransport()->networkModel(),
            scenario.networkModel());
  // Warm-up gossip already crossed the lossy links.
  EXPECT_GT(scenario.networkModel()->droppedByLoss(), 0u);
  EXPECT_EQ(scenario.networkModel()->droppedByPartition(), 0u);
}

TEST(ScenarioNetwork, IdenticalLossyBuildsAreBitIdentical) {
  auto build = [] {
    return Scenario::builder()
        .nodes(100)
        .warmupCycles(12)
        .seed(17)
        .linkLoss(0.1)
        .duplication(0.05)
        .build();
  };
  auto a = build();
  auto b = build();
  EXPECT_EQ(a.networkModel()->droppedByLoss(),
            b.networkModel()->droppedByLoss());
  EXPECT_EQ(a.networkModel()->duplicated(), b.networkModel()->duplicated());
  auto& liveA = a.liveSession({.strategy = Strategy::kRingCast,
                               .fanout = 3,
                               .seed = 5,
                               .settleCycles = 2});
  auto& liveB = b.liveSession({.strategy = Strategy::kRingCast,
                               .fanout = 3,
                               .seed = 5,
                               .settleCycles = 2});
  for (int run = 0; run < 3; ++run) {
    const auto ra = liveA.publishFromRandom();
    const auto rb = liveB.publishFromRandom();
    EXPECT_EQ(ra.origin, rb.origin);
    EXPECT_EQ(ra.notified, rb.notified);
    EXPECT_EQ(ra.messagesTotal, rb.messagesTotal);
    EXPECT_EQ(ra.missed, rb.missed);
  }
}

TEST(ScenarioNetwork, DuplicationDeliversRedundantCopies) {
  auto scenario = Scenario::builder()
                      .nodes(80)
                      .warmupCycles(10)
                      .seed(4)
                      .duplication(1.0)
                      .build();
  auto& live = scenario.liveSession(
      {.strategy = Strategy::kRingCast, .fanout = 3, .settleCycles = 2});
  const auto report = live.publishFromRandom();
  EXPECT_EQ(report.notified, report.aliveTotal);  // copies never hurt
  EXPECT_GT(report.messagesRedundant, 0u);
  EXPECT_GT(scenario.networkModel()->duplicated(), 0u);
}

TEST(ScenarioNetwork, EgressCapTurnsOverloadIntoQueueingDelay) {
  // Flooding through a 4-message/tick pipe: every forward bursts ~view
  // many sends in one tick, so senders back up — yet nothing is lost,
  // the wave just stretches out in simulated time.
  auto capped = Scenario::builder()
                    .nodes(80)
                    .warmupCycles(10)
                    .seed(4)
                    .timing(sim::TimingConfig::jitteredLatency(
                        sim::LatencyModel::fixed(1)))
                    .egressCap(4)
                    .build();
  ASSERT_NE(capped.networkModel(), nullptr);
  auto& live = capped.liveSession(
      {.strategy = Strategy::kFlood, .fanout = 3, .settleCycles = 10});
  const auto report = live.publishFromRandom();
  EXPECT_GT(capped.networkModel()->queuedSends(), 0u);
  EXPECT_GT(capped.networkModel()->maxQueueDelay(), 0u);
  // Traffic is delayed, never silently dropped.
  EXPECT_EQ(capped.networkModel()->droppedByLoss(), 0u);
  EXPECT_EQ(report.notified, report.aliveTotal);
  EXPECT_GT(live.live().stats(live.lastDataId()).spreadTicks(), 0u);
}

TEST(ScenarioNetwork, PartitionBlocksWhileSplitAndHealsAfter) {
  constexpr std::uint32_t kWarmup = 30;
  constexpr std::uint32_t kSplit = 10;
  auto scenario = Scenario::builder()
                      .nodes(200)
                      .warmupCycles(kWarmup)
                      .seed(11)
                      .partitionRingSplit(2, kWarmup, kWarmup + kSplit)
                      .build();
  const auto* model = scenario.networkModel();
  ASSERT_NE(model, nullptr);
  ASSERT_NE(model->partitions(), nullptr);
  const auto& schedule = *model->partitions();

  auto& live = scenario.liveSession({.strategy = Strategy::kPushPull,
                                     .fanout = 3,
                                     .seed = 9,
                                     .settleCycles = 0});
  // Step into the blackout, then publish from side 0: the origin's own
  // sends now resolve inside the window.
  scenario.runCycles(1);
  const NodeId origin = schedule.members(0).front();
  ASSERT_TRUE(scenario.network().isAlive(origin));
  live.publish(origin);
  const std::uint64_t dataId = live.lastDataId();

  auto coverage = [&](std::uint32_t group) {
    std::uint64_t total = 0;
    std::uint64_t have = 0;
    for (const NodeId id : scenario.network().aliveIds()) {
      if (schedule.groupOf(id) != group) continue;
      ++total;
      if (live.live().hasDelivered(dataId, id)) ++have;
    }
    return 100.0 * static_cast<double>(have) / static_cast<double>(total);
  };

  // Let push + pull do their work inside the remaining split cycles.
  scenario.runCycles(kSplit - 1);
  EXPECT_GT(model->droppedByPartition(), 0u);
  EXPECT_EQ(coverage(0), 100.0) << "own side must complete during split";
  EXPECT_EQ(coverage(1), 0.0) << "cross-side leak during blackout";

  // Healed: anti-entropy pulls cross the former boundary, the first
  // successful pull re-pushes, and the dark side fills in bounded time.
  scenario.runCycles(40);
  EXPECT_EQ(coverage(0), 100.0);
  EXPECT_EQ(coverage(1), 100.0) << "pull recovery must backfill after heal";
}

TEST(ScenarioNetwork, PresetsConstructAndBehave) {
  {
    auto partitioned = Scenario::paperPartitioned(/*splitCycles=*/5,
                                                  /*nodes=*/150, /*seed=*/7);
    ASSERT_NE(partitioned.networkModel(), nullptr);
    ASSERT_NE(partitioned.networkModel()->partitions(), nullptr);
    EXPECT_EQ(partitioned.networkModel()->partitions()->groupCount(), 2u);
    partitioned.runCycles(6);  // through the split and out
    EXPECT_GT(partitioned.networkModel()->droppedByPartition(), 0u);
  }
  {
    auto wan = Scenario::lossyWan(/*lossRate=*/0.05, /*nodes=*/120,
                                  /*seed=*/7);
    ASSERT_NE(wan.networkModel(), nullptr);
    EXPECT_GT(wan.networkModel()->droppedByLoss(), 0u);
    EXPECT_GT(wan.networkModel()->reordered(), 0u);
    auto session = wan.snapshotSession(
        {.strategy = Strategy::kRingCast, .fanout = 3});
    EXPECT_GT(session.publishFromRandom().notified, 0u);
  }
  {
    auto jam = Scenario::congested(/*egressPerTick=*/1, /*nodes=*/120,
                                   /*seed=*/7);
    ASSERT_NE(jam.networkModel(), nullptr);
    EXPECT_GT(jam.networkModel()->queuedSends(), 0u);
    EXPECT_EQ(jam.networkModel()->droppedByLoss(), 0u);
  }
}

TEST(ScenarioNetwork, CleanLinksSteadyStateIsAllocationFree) {
  // The full condition chain armed at no-op rates (a 0-rate Bernoulli
  // link, 0-rate duplication and reordering), a generous egress cap,
  // and a partition schedule — every per-send query runs, yet loss-free
  // links must not cost a single steady-state allocation, exactly the
  // contract the model-less hot path keeps. (Cluster latency is armed
  // in other tests: multi-tick in-flight buffers warm the message pool
  // gradually, which is latency-path warm-up, not model overhead.)
  auto scenario = Scenario::builder()
                      .nodes(300)
                      .warmupCycles(30)
                      .seed(21)
                      .egressCap(64)
                      .partitionRingSplit(2, 35, 60)
                      .build();
  auto* model = scenario.networkModel();
  ASSERT_NE(model, nullptr);
  model->addLink(std::make_unique<sim::BernoulliLossLink>(0.0));
  model->addLink(std::make_unique<sim::DuplicateLink>(0.0));
  model->addLink(std::make_unique<sim::ReorderLink>(0.0, 3));

  // Clean phase: chain draws, partition lookups (inactive window), and
  // egress accounting run on every send — and nothing may allocate.
  scenario.runCycles(2);
  {
    AllocScope probe;
    scenario.runCycles(3);
    EXPECT_EQ(probe.allocations(), 0u)
        << "clean-link sends must not allocate in steady state";
  }
  // Split phase: drops happen; gossip's *failure handling* (VICINITY
  // ban-list growth) may allocate, which is the failure path, not the
  // clean-link contract — so only the drop accounting is asserted here.
  scenario.runCycles(10);
  EXPECT_GT(model->droppedByPartition(), 0u);
}

// The degraded_links / partition_heal cell pattern in miniature: one
// scenario per (strategy, loss) cell, seeded from the cell identity, run
// across a pool — results must be bit-identical for any thread count.
std::vector<double> sweepCells(std::uint32_t threads) {
  const std::vector<double> losses{0.0, 0.02};
  const std::vector<Strategy> strategies{Strategy::kRandCast,
                                         Strategy::kRingCast,
                                         Strategy::kPushPull};
  std::vector<double> misses(losses.size() * strategies.size(), 0.0);
  TaskPool pool(threads);
  pool.parallelFor(misses.size(), [&](std::size_t i) {
    const Strategy strategy = strategies[i / losses.size()];
    const double loss = losses[i % losses.size()];
    auto scenario = Scenario::builder()
                        .nodes(120)
                        .warmupCycles(15)
                        .seed(deriveStreamSeed(777, i, 0))
                        .linkLoss(loss)
                        .build();
    auto& live = scenario.liveSession(
        {.strategy = strategy,
         .fanout = 3,
         .seed = deriveStreamSeed(777, i, 1),
         .settleCycles = 3});
    double sum = 0.0;
    for (int run = 0; run < 3; ++run)
      sum += live.publishFromRandom().missRatioPercent();
    misses[i] = sum;
  });
  return misses;
}

TEST(ScenarioNetwork, CellSweepBitIdenticalAcrossThreadCounts) {
  const auto one = sweepCells(1);
  const auto two = sweepCells(2);
  const auto eight = sweepCells(8);
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);
}

}  // namespace
}  // namespace vs07
