#include "analysis/graph_analysis.hpp"

#include <gtest/gtest.h>

#include "analysis/scenario.hpp"
#include "cast/snapshot.hpp"
#include "overlay/graph.hpp"

namespace vs07::analysis {
namespace {

TEST(SccCount, SingleComponentRing) {
  const auto snapshot = cast::snapshotGraph(overlay::makeRing(10));
  const auto adjacency = aliveAdjacency(snapshot);
  EXPECT_EQ(stronglyConnectedComponentCount(adjacency), 1u);
}

TEST(SccCount, DirectedChainIsAllSingletons) {
  std::vector<std::vector<std::uint32_t>> adjacency(4);
  adjacency[0] = {1};
  adjacency[1] = {2};
  adjacency[2] = {3};
  EXPECT_EQ(stronglyConnectedComponentCount(adjacency), 4u);
}

TEST(SccCount, TwoCyclesBridgedOneWay) {
  // 0<->1 and 2<->3 with a one-way bridge 1->2: two SCCs.
  std::vector<std::vector<std::uint32_t>> adjacency(4);
  adjacency[0] = {1};
  adjacency[1] = {0, 2};
  adjacency[2] = {3};
  adjacency[3] = {2};
  EXPECT_EQ(stronglyConnectedComponentCount(adjacency), 2u);
}

TEST(SccCount, EmptyGraph) {
  EXPECT_EQ(stronglyConnectedComponentCount({}), 0u);
}

TEST(SccCount, DeepChainNoStackOverflow) {
  // The iterative Tarjan must handle paths far beyond thread stack depth.
  constexpr std::uint32_t kDepth = 200'000;
  std::vector<std::vector<std::uint32_t>> adjacency(kDepth);
  for (std::uint32_t i = 0; i + 1 < kDepth; ++i) adjacency[i] = {i + 1};
  adjacency[kDepth - 1] = {0};  // close the loop: one giant SCC
  EXPECT_EQ(stronglyConnectedComponentCount(adjacency), 1u);
}

TEST(AliveAdjacency, DropsDeadEndpoints) {
  auto alive = std::vector<std::uint8_t>(6, 1);
  alive[2] = 0;
  const auto snapshot =
      cast::snapshotGraph(overlay::makeRing(6), std::move(alive));
  const auto adjacency = aliveAdjacency(snapshot);
  ASSERT_EQ(adjacency.size(), 5u);  // alive nodes only
  // Node 1 (alive index 1) lost its link to dead node 2.
  std::size_t totalEdges = 0;
  for (const auto& nbrs : adjacency) totalEdges += nbrs.size();
  EXPECT_EQ(totalEdges, 12u - 4u);  // ring had 12 directed edges; 4 touch node 2
}

TEST(AliveAdjacency, LinkSelectionFilters) {
  std::vector<cast::OverlaySnapshot::NodeLinks> links(2);
  links[0].rlinks = {1};
  links[1].dlinks = {0};
  const cast::OverlaySnapshot snapshot{std::move(links), {1, 1}};
  const auto onlyR = aliveAdjacency(snapshot, {.rlinks = true, .dlinks = false});
  EXPECT_EQ(onlyR[0].size(), 1u);
  EXPECT_EQ(onlyR[1].size(), 0u);
  const auto onlyD = aliveAdjacency(snapshot, {.rlinks = false, .dlinks = true});
  EXPECT_EQ(onlyD[0].size(), 0u);
  EXPECT_EQ(onlyD[1].size(), 1u);
}

TEST(AliveIndegrees, CountsIncomingLinks) {
  std::vector<cast::OverlaySnapshot::NodeLinks> links(3);
  links[0].rlinks = {2};
  links[1].rlinks = {2};
  const cast::OverlaySnapshot snapshot{std::move(links), {1, 1, 1}};
  const auto indegrees = aliveIndegrees(snapshot);
  EXPECT_EQ(indegrees, (std::vector<std::uint32_t>{0, 0, 2}));
}

TEST(RingConvergence, PerfectAfterWarmup) {
  const auto scenario = Scenario::builder().nodes(150).seed(5).build();
  const auto convergence =
      ringConvergence(scenario.network(), scenario.vicinity());
  EXPECT_GE(convergence.bothAccuracy, 0.98);
  EXPECT_GE(convergence.successorAccuracy, convergence.bothAccuracy);
  EXPECT_GE(convergence.predecessorAccuracy, convergence.bothAccuracy);
}

TEST(RingConvergence, ZeroBeforeAnyGossip) {
  // noWarmup: views stay empty.
  const auto scenario =
      Scenario::builder().nodes(50).seed(6).noWarmup().build();
  const auto convergence =
      ringConvergence(scenario.network(), scenario.vicinity());
  EXPECT_EQ(convergence.bothAccuracy, 0.0);
}

TEST(RingConvergence, TrivialPopulations) {
  const auto scenario =
      Scenario::builder().nodes(1).seed(7).noWarmup().build();
  const auto convergence =
      ringConvergence(scenario.network(), scenario.vicinity());
  EXPECT_EQ(convergence.bothAccuracy, 1.0);  // vacuously converged
}

}  // namespace
}  // namespace vs07::analysis
