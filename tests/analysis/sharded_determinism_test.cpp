// The sharded engine's headline guarantee, asserted end-to-end: a full
// Scenario — star bootstrap, CYCLON + VICINITY warm-up, optional churn,
// frozen-overlay dissemination — produces bit-identical state and
// reports for --engine-threads 1, 2, and 8 under every timing model.
// The table itself (thread counts x timing models) comes from the
// shared conformance harness; this file only states what it measures.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/scenario.hpp"
#include "cast/strategy.hpp"
#include "harness/conformance.hpp"

namespace vs07::analysis {
namespace {

using cast::Strategy;

/// The fig06-style measurement: frozen-overlay RINGCAST dissemination at
/// a few fanouts, reduced to the fields the paper's figures plot.
struct FigRecord {
  std::vector<std::uint64_t> notified;
  std::vector<std::uint64_t> messagesTotal;
  std::vector<std::uint64_t> perHop;
  std::vector<std::uint32_t> lastHop;

  friend bool operator==(const FigRecord&, const FigRecord&) = default;
};

FigRecord figRecord(const Scenario& scenario, Strategy strategy) {
  FigRecord record;
  for (const std::uint32_t fanout : {1u, 2u, 3u}) {
    auto session = scenario.snapshotSession(
        {.strategy = strategy, .fanout = fanout, .seed = 17});
    const auto report = session.publishFromRandom();
    record.notified.push_back(report.notified);
    record.messagesTotal.push_back(report.messagesTotal);
    record.perHop.insert(record.perHop.end(),
                         report.newlyNotifiedPerHop.begin(),
                         report.newlyNotifiedPerHop.end());
    record.lastHop.push_back(report.lastHop);
  }
  return record;
}

/// Everything one static run measures: byte-level overlay state, gossip
/// traffic, in-flight storage, and the fig06-style records.
struct StaticRecord {
  std::vector<std::uint64_t> state;
  std::uint64_t messages = 0;
  std::size_t storedInFlight = 0;
  FigRecord ring;
  FigRecord rand;

  friend bool operator==(const StaticRecord&, const StaticRecord&) = default;
};

Scenario buildTimed(std::uint32_t threads, sim::TimingConfig timing) {
  auto scenario = Scenario::builder()
                      .nodes(600)
                      .seed(42)
                      .engineThreads(threads)
                      .warmupCycles(60)
                      .timing(timing)
                      .build();
  EXPECT_EQ(scenario.shardedEngine()->threadCount(), threads);
  return scenario;
}

TEST(ShardedDeterminism, OverlayAndRecordsBitIdenticalPerTimingModel) {
  harness::expectScenarioConformance(buildTimed, [](const Scenario& run) {
    return StaticRecord{harness::overlayFingerprint(run),
                        run.gossipMessagesSent(),
                        run.shardedEngine()->storedInFlight(),
                        figRecord(run, Strategy::kRingCast),
                        figRecord(run, Strategy::kRandCast)};
  });
}

TEST(ShardedDeterminism, LatencyModelLeavesTrafficInFlight) {
  // The latency row of the table must actually exercise the in-flight
  // store: a uniform(1,4) model leaves some gossip traffic crossing the
  // freeze boundary.
  const auto timed = buildTimed(
      2, sim::TimingConfig::jitteredLatency(sim::LatencyModel::uniform(1, 4)));
  EXPECT_GT(timed.shardedEngine()->storedInFlight(), 0u);
}

/// The fig11-style churn measurement: who survived, the overlay bytes,
/// dissemination over it, and the engine's dead-drop bookkeeping.
struct ChurnRecord {
  std::vector<NodeId> alive;
  std::vector<std::uint64_t> state;
  FigRecord ring;
  std::uint64_t droppedDead = 0;

  friend bool operator==(const ChurnRecord&, const ChurnRecord&) = default;
};

TEST(ShardedDeterminism, ChurnOutcomesBitIdenticalPerTimingModel) {
  harness::expectScenarioConformance(
      [](std::uint32_t threads, sim::TimingConfig timing) {
        auto scenario = Scenario::builder()
                            .nodes(400)
                            .seed(7)
                            .engineThreads(threads)
                            .warmupCycles(50)
                            .timing(timing)
                            .build();
        // Heavy churn at small scale: full turnover in a few hundred
        // cycles, exercising spawn-time bookkeeping growth and
        // dead-node drops.
        scenario.runChurnUntilFullTurnover(/*rate=*/0.01, /*maxCycles=*/2'000);
        return scenario;
      },
      [](const Scenario& run) {
        EXPECT_EQ(run.network().initialSurvivors(), 0u);
        EXPECT_GT(run.shardedEngine()->droppedDead(), 0u);
        return ChurnRecord{run.network().aliveIds(),
                           harness::overlayFingerprint(run),
                           figRecord(run, Strategy::kRingCast),
                           run.shardedEngine()->droppedDead()};
      });
}

TEST(ShardedDeterminism, SequentialAndShardedAgreeMacroscopically) {
  // Sequential-vs-sharded, per timing mode. Bit-identity is out of reach
  // by design — the sequential Engine draws timer phases and latencies
  // from shared instance RNGs in global execution order, which no
  // shard-local schedule can reproduce — so this pins the macroscopic
  // agreement the paper's §7 argument actually needs: both engines
  // self-organise an overlay whose frozen RINGCAST dissemination at F=3
  // reaches every node, with gossip volume within a few percent of each
  // other (same protocols, same per-cycle step budget, different
  // interleaving).
  for (const auto& timingCase : harness::conformanceTimings()) {
    const auto sequential = Scenario::builder()
                                .nodes(600)
                                .seed(42)
                                .warmupCycles(60)
                                .timing(timingCase.timing)
                                .build();
    const auto sharded = buildTimed(4, timingCase.timing);
    for (const Scenario* scenario : {&sequential, &sharded}) {
      auto session = scenario->snapshotSession(
          {.strategy = Strategy::kRingCast, .fanout = 3, .seed = 5});
      const auto report = session.publishFromRandom();
      EXPECT_TRUE(report.complete())
          << "mode=" << timingCase.name
          << " sharded=" << (scenario == &sharded) << " missed "
          << report.missed.size() << " of " << report.aliveTotal;
    }
    const auto seqMsgs = static_cast<double>(sequential.gossipMessagesSent());
    const auto shardMsgs = static_cast<double>(sharded.gossipMessagesSent());
    EXPECT_NEAR(shardMsgs / seqMsgs, 1.0, 0.05)
        << "mode=" << timingCase.name << " sequential=" << seqMsgs
        << " sharded=" << shardMsgs;
  }
}

TEST(ShardedDeterminism, ShardedModeBuildsAWorkingRing) {
  // Sanity beyond self-consistency: the parallel semantics must still
  // *converge* — after warm-up the frozen RINGCAST overlay at F=3
  // reaches everyone (the paper's §7.1 headline result).
  const auto scenario = buildTimed(4, sim::TimingConfig::cycleSync());
  auto session = scenario.snapshotSession(
      {.strategy = Strategy::kRingCast, .fanout = 3, .seed = 5});
  const auto report = session.publishFromRandom();
  EXPECT_TRUE(report.complete())
      << "missed " << report.missed.size() << " of " << report.aliveTotal;
}

}  // namespace
}  // namespace vs07::analysis
