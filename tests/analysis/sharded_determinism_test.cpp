// The sharded engine's headline guarantee, asserted end-to-end: a full
// Scenario — star bootstrap, CYCLON + VICINITY warm-up, optional churn,
// frozen-overlay dissemination — produces bit-identical state and
// reports for --engine-threads 1, 2, and 8.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/scenario.hpp"
#include "cast/strategy.hpp"

namespace vs07::analysis {
namespace {

using cast::Strategy;

/// Every view entry of every node, flattened in a fixed order — the
/// byte-level fingerprint of the whole overlay state.
std::vector<std::uint64_t> overlayFingerprint(const Scenario& scenario) {
  std::vector<std::uint64_t> out;
  const auto total = scenario.network().totalCreated();
  for (NodeId n = 0; n < total; ++n) {
    for (const auto& e : scenario.cyclon().view(n).entries()) {
      out.push_back(e.node);
      out.push_back(e.age);
      out.push_back(e.profile);
    }
    out.push_back(~0ULL);  // view separator
    for (const auto& e : scenario.vicinity().view(n).entries()) {
      out.push_back(e.node);
      out.push_back(e.age);
      out.push_back(e.profile);
    }
    out.push_back(~0ULL);
  }
  return out;
}

/// The fig06-style measurement: frozen-overlay RINGCAST dissemination at
/// a few fanouts, reduced to the fields the paper's figures plot.
struct FigRecord {
  std::vector<std::uint64_t> notified;
  std::vector<std::uint64_t> messagesTotal;
  std::vector<std::uint64_t> perHop;
  std::vector<std::uint32_t> lastHop;

  friend bool operator==(const FigRecord&, const FigRecord&) = default;
};

FigRecord figRecord(const Scenario& scenario, Strategy strategy) {
  FigRecord record;
  for (const std::uint32_t fanout : {1u, 2u, 3u}) {
    auto session = scenario.snapshotSession(
        {.strategy = strategy, .fanout = fanout, .seed = 17});
    const auto report = session.publishFromRandom();
    record.notified.push_back(report.notified);
    record.messagesTotal.push_back(report.messagesTotal);
    record.perHop.insert(record.perHop.end(),
                         report.newlyNotifiedPerHop.begin(),
                         report.newlyNotifiedPerHop.end());
    record.lastHop.push_back(report.lastHop);
  }
  return record;
}

Scenario buildStatic(std::uint32_t threads) {
  return Scenario::builder()
      .nodes(600)
      .seed(42)
      .engineThreads(threads)
      .warmupCycles(60)
      .build();
}

TEST(ShardedDeterminism, StaticOverlayBitIdenticalAcrossThreadCounts) {
  const auto base = buildStatic(1);
  const auto baseState = overlayFingerprint(base);
  const auto baseMsgs = base.gossipMessagesSent();
  for (const std::uint32_t threads : {2u, 8u}) {
    const auto run = buildStatic(threads);
    EXPECT_EQ(baseState, overlayFingerprint(run)) << "threads=" << threads;
    EXPECT_EQ(baseMsgs, run.gossipMessagesSent()) << "threads=" << threads;
    EXPECT_EQ(run.shardedEngine()->threadCount(), threads);
  }
}

TEST(ShardedDeterminism, Fig06StyleRecordsBitIdenticalAcrossThreadCounts) {
  const auto base = buildStatic(1);
  const auto baseRing = figRecord(base, Strategy::kRingCast);
  const auto baseRand = figRecord(base, Strategy::kRandCast);
  for (const std::uint32_t threads : {2u, 8u}) {
    const auto run = buildStatic(threads);
    EXPECT_EQ(baseRing, figRecord(run, Strategy::kRingCast))
        << "threads=" << threads;
    EXPECT_EQ(baseRand, figRecord(run, Strategy::kRandCast))
        << "threads=" << threads;
  }
}

Scenario buildChurned(std::uint32_t threads) {
  auto scenario = Scenario::builder()
                      .nodes(400)
                      .seed(7)
                      .engineThreads(threads)
                      .warmupCycles(50)
                      .build();
  // Heavy churn at small scale: full turnover in a few hundred cycles,
  // exercising spawn-time bookkeeping growth and dead-node drops.
  scenario.runChurnUntilFullTurnover(/*rate=*/0.01, /*maxCycles=*/2'000);
  return scenario;
}

TEST(ShardedDeterminism, Fig11StyleChurnBitIdenticalAcrossThreadCounts) {
  const auto base = buildChurned(1);
  const auto baseState = overlayFingerprint(base);
  const auto baseRecord = figRecord(base, Strategy::kRingCast);
  const auto baseAlive = base.network().aliveIds();
  const auto baseDropped = base.shardedEngine()->droppedDead();
  ASSERT_EQ(base.network().initialSurvivors(), 0u);
  ASSERT_GT(baseDropped, 0u);  // churn must have exercised dead drops
  for (const std::uint32_t threads : {2u, 8u}) {
    const auto run = buildChurned(threads);
    EXPECT_EQ(baseAlive, run.network().aliveIds()) << "threads=" << threads;
    EXPECT_EQ(baseState, overlayFingerprint(run)) << "threads=" << threads;
    EXPECT_EQ(baseRecord, figRecord(run, Strategy::kRingCast))
        << "threads=" << threads;
    EXPECT_EQ(baseDropped, run.shardedEngine()->droppedDead())
        << "threads=" << threads;
  }
}

// -- windowed schedule (jittered / jittered+latency timing) -------------
//
// The same end-to-end guarantee for the windowed PDES schedule: overlay
// state, fig06-style frozen-cast records and fig11-style churn outcomes
// must be bit-identical across thread counts for jittered timing with
// and without a latency model. (Like the CycleSync sharded schedule, the
// windowed schedule is its own reference — the sequential Engine draws
// timer phases and latencies from shared instance RNGs in global
// execution order, which no shard-local schedule can reproduce — so the
// sequential cross-check below is macroscopic, not bit-level.)

sim::TimingConfig jitteredTiming() { return sim::TimingConfig::jittered(); }

sim::TimingConfig latencyTiming() {
  return sim::TimingConfig::jitteredLatency(sim::LatencyModel::uniform(1, 4));
}

Scenario buildTimed(std::uint32_t threads, sim::TimingConfig timing) {
  return Scenario::builder()
      .nodes(600)
      .seed(42)
      .engineThreads(threads)
      .warmupCycles(60)
      .timing(timing)
      .build();
}

TEST(ShardedDeterminism, JitteredOverlayAndRecordsBitIdentical) {
  const auto base = buildTimed(1, jitteredTiming());
  const auto baseState = overlayFingerprint(base);
  const auto baseMsgs = base.gossipMessagesSent();
  const auto baseRing = figRecord(base, Strategy::kRingCast);
  const auto baseRand = figRecord(base, Strategy::kRandCast);
  for (const std::uint32_t threads : {2u, 8u}) {
    const auto run = buildTimed(threads, jitteredTiming());
    EXPECT_EQ(baseState, overlayFingerprint(run)) << "threads=" << threads;
    EXPECT_EQ(baseMsgs, run.gossipMessagesSent()) << "threads=" << threads;
    EXPECT_EQ(baseRing, figRecord(run, Strategy::kRingCast))
        << "threads=" << threads;
    EXPECT_EQ(baseRand, figRecord(run, Strategy::kRandCast))
        << "threads=" << threads;
  }
}

TEST(ShardedDeterminism, JitteredLatencyOverlayAndRecordsBitIdentical) {
  const auto base = buildTimed(1, latencyTiming());
  const auto baseState = overlayFingerprint(base);
  const auto baseMsgs = base.gossipMessagesSent();
  const auto baseRing = figRecord(base, Strategy::kRingCast);
  const auto baseRand = figRecord(base, Strategy::kRandCast);
  // Latency must actually have been exercised: a uniform(1,4) model
  // leaves some gossip traffic in flight across the freeze boundary.
  ASSERT_GT(base.shardedEngine()->storedInFlight(), 0u);
  for (const std::uint32_t threads : {2u, 8u}) {
    const auto run = buildTimed(threads, latencyTiming());
    EXPECT_EQ(baseState, overlayFingerprint(run)) << "threads=" << threads;
    EXPECT_EQ(baseMsgs, run.gossipMessagesSent()) << "threads=" << threads;
    EXPECT_EQ(baseRing, figRecord(run, Strategy::kRingCast))
        << "threads=" << threads;
    EXPECT_EQ(baseRand, figRecord(run, Strategy::kRandCast))
        << "threads=" << threads;
  }
}

Scenario buildTimedChurned(std::uint32_t threads, sim::TimingConfig timing) {
  auto scenario = Scenario::builder()
                      .nodes(400)
                      .seed(7)
                      .engineThreads(threads)
                      .warmupCycles(50)
                      .timing(timing)
                      .build();
  scenario.runChurnUntilFullTurnover(/*rate=*/0.01, /*maxCycles=*/2'000);
  return scenario;
}

TEST(ShardedDeterminism, WindowedChurnBitIdenticalAcrossThreadCounts) {
  for (const auto timing : {jitteredTiming(), latencyTiming()}) {
    const auto base = buildTimedChurned(1, timing);
    const auto baseState = overlayFingerprint(base);
    const auto baseRecord = figRecord(base, Strategy::kRingCast);
    const auto baseAlive = base.network().aliveIds();
    const auto baseDropped = base.shardedEngine()->droppedDead();
    ASSERT_EQ(base.network().initialSurvivors(), 0u);
    ASSERT_GT(baseDropped, 0u);
    for (const std::uint32_t threads : {2u, 8u}) {
      const auto run = buildTimedChurned(threads, timing);
      EXPECT_EQ(baseAlive, run.network().aliveIds())
          << "threads=" << threads << " mode=" << timing.modeName();
      EXPECT_EQ(baseState, overlayFingerprint(run))
          << "threads=" << threads << " mode=" << timing.modeName();
      EXPECT_EQ(baseRecord, figRecord(run, Strategy::kRingCast))
          << "threads=" << threads << " mode=" << timing.modeName();
      EXPECT_EQ(baseDropped, run.shardedEngine()->droppedDead())
          << "threads=" << threads << " mode=" << timing.modeName();
    }
  }
}

TEST(ShardedDeterminism, SequentialAndShardedAgreeMacroscopically) {
  // Sequential-vs-sharded, per timing mode. Bit-identity is out of reach
  // by design (see the comment atop the windowed section), so this pins
  // the macroscopic agreement the paper's §7 argument actually needs:
  // both engines self-organise an overlay whose frozen RINGCAST
  // dissemination at F=3 reaches every node, with gossip volume within a
  // few percent of each other (same protocols, same per-cycle step
  // budget, different interleaving).
  for (const auto timing :
       {sim::TimingConfig::cycleSync(), jitteredTiming(), latencyTiming()}) {
    const auto sequential = Scenario::builder()
                                .nodes(600)
                                .seed(42)
                                .warmupCycles(60)
                                .timing(timing)
                                .build();
    const auto sharded = buildTimed(4, timing);
    for (const Scenario* scenario : {&sequential, &sharded}) {
      auto session = scenario->snapshotSession(
          {.strategy = Strategy::kRingCast, .fanout = 3, .seed = 5});
      const auto report = session.publishFromRandom();
      EXPECT_TRUE(report.complete())
          << "mode=" << timing.modeName()
          << " sharded=" << (scenario == &sharded) << " missed "
          << report.missed.size() << " of " << report.aliveTotal;
    }
    const auto seqMsgs = static_cast<double>(sequential.gossipMessagesSent());
    const auto shardMsgs = static_cast<double>(sharded.gossipMessagesSent());
    EXPECT_NEAR(shardMsgs / seqMsgs, 1.0, 0.05)
        << "mode=" << timing.modeName() << " sequential=" << seqMsgs
        << " sharded=" << shardMsgs;
  }
}

TEST(ShardedDeterminism, ShardedModeBuildsAWorkingRing) {
  // Sanity beyond self-consistency: the parallel semantics must still
  // *converge* — after warm-up the frozen RINGCAST overlay at F=3
  // reaches everyone (the paper's §7.1 headline result).
  const auto scenario = buildStatic(4);
  auto session = scenario.snapshotSession(
      {.strategy = Strategy::kRingCast, .fanout = 3, .seed = 5});
  const auto report = session.publishFromRandom();
  EXPECT_TRUE(report.complete())
      << "missed " << report.missed.size() << " of " << report.aliveTotal;
}

}  // namespace
}  // namespace vs07::analysis
