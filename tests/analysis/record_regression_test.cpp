// Bit-identical regression pins for the bench JSON series.
//
// These tests recompute reduced-scale versions of the fig06 (static
// effectiveness) and fig11 (churn effectiveness) quick records — the same
// code path the benches drive: Scenario warm-up through the gossip hot
// path, ParallelSweep over the frozen overlays, series shaping through
// analysis/report_json — and compare the dumped JSON byte-for-byte
// against golden files captured before the message-hot-path refactor.
// Any change that disturbs rng consumption, event ordering, or the
// shuffle/merge semantics shows up here as a byte diff.
//
// Regenerating (only when a change is *supposed* to alter results):
//   VS07_REGEN_GOLDEN=1 ./analysis_record_regression_test
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/parallel_sweep.hpp"
#include "analysis/report_json.hpp"
#include "analysis/scenario.hpp"
#include "cast/strategy.hpp"
#include "common/json.hpp"

namespace vs07::analysis {
namespace {

using cast::Strategy;

std::string goldenPath(const std::string& name) {
  return std::string(VS07_TEST_DATA_DIR) + "/" + name;
}

std::string readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing golden file " << path
                         << " (regenerate with VS07_REGEN_GOLDEN=1)";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool regenRequested() {
  const char* regen = std::getenv("VS07_REGEN_GOLDEN");
  return regen != nullptr && regen[0] != '\0' && regen[0] != '0';
}

void checkAgainstGolden(const std::string& name, const std::string& bytes) {
  const auto path = goldenPath(name);
  if (regenRequested()) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << bytes;
    GTEST_SKIP() << "regenerated " << path;
  }
  const std::string golden = readFile(path);
  // Byte equality is the contract; EXPECT_EQ on the strings prints a
  // usable diff when it breaks.
  EXPECT_EQ(golden, bytes) << "series bytes diverged from " << path;
}

std::vector<std::uint32_t> fanoutAxis(std::uint32_t maxFanout) {
  std::vector<std::uint32_t> fanouts;
  for (std::uint32_t f = 1; f <= maxFanout; ++f) fanouts.push_back(f);
  return fanouts;
}

std::string effectivenessRecordBytes(const Scenario& scenario,
                                     std::uint32_t maxFanout,
                                     std::uint32_t runs,
                                     std::uint64_t seed) {
  ParallelSweep sweep({.threads = 2});
  const auto fanouts = fanoutAxis(maxFanout);
  const auto rand = sweep.sweepEffectiveness(scenario, Strategy::kRandCast,
                                             fanouts, runs, seed + 1);
  const auto ring = sweep.sweepEffectiveness(scenario, Strategy::kRingCast,
                                             fanouts, runs, seed + 2);
  Json series = Json::array();
  series.push(effectivenessSeries("randcast", rand));
  series.push(effectivenessSeries("ringcast", ring));
  return series.dump(2);
}

TEST(RecordRegression, StaticEffectivenessSeriesBitIdentical) {
  // Reduced-scale fig06: static warmed-up network, fanout sweep over
  // RANDCAST and RINGCAST.
  const auto scenario = Scenario::builder().nodes(1'200).seed(42).build();
  checkAgainstGolden(
      "fig06_static_series.golden.json",
      effectivenessRecordBytes(scenario, /*maxFanout=*/12, /*runs=*/10,
                               /*seed=*/42));
}

TEST(RecordRegression, ChurnEffectivenessSeriesBitIdentical) {
  // Reduced-scale fig11: churn until the initial population is fully
  // replaced, then the same sweep. Exercises join/kill handling, the
  // vicinity ban/timeout machinery, and dead-link traffic.
  const auto scenario =
      Scenario::paperChurn(/*rate=*/0.005, /*nodes=*/400, /*seed=*/42,
                           /*maxChurnCycles=*/20'000);
  EXPECT_EQ(scenario.network().initialSurvivors(), 0u);
  checkAgainstGolden(
      "fig11_churn_series.golden.json",
      effectivenessRecordBytes(scenario, /*maxFanout=*/8, /*runs=*/10,
                               /*seed=*/42));
}

}  // namespace
}  // namespace vs07::analysis
