// Determinism regression suite for analysis::ParallelSweep: for every
// cast::Strategy, 1, 2, and 8 threads must produce *bit-identical*
// EffectivenessPoint / ProgressStats / MissLifetimeStudy results, two
// runs at the same seed must agree, and a point's value must not depend
// on what else is in the sweep (cell streams are identity-derived, not
// schedule-derived).
#include "analysis/parallel_sweep.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>

#include "analysis/scenario.hpp"
#include "cast/strategy.hpp"

namespace vs07::analysis {
namespace {

using cast::Strategy;

constexpr Strategy kAllStrategies[] = {
    Strategy::kFlood, Strategy::kRandCast, Strategy::kRingCast,
    Strategy::kMultiRing, Strategy::kPushPull};

constexpr std::uint32_t kRuns = 40;
constexpr std::uint64_t kSeed = 99;

/// Bit-level equality: stricter than ==, catches -0.0 vs 0.0 and would
/// catch any reassociated summation.
void expectBits(double a, double b, const char* what) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a), std::bit_cast<std::uint64_t>(b))
      << what << ": " << a << " vs " << b;
}

void expectIdentical(const EffectivenessPoint& a,
                     const EffectivenessPoint& b) {
  EXPECT_EQ(a.fanout, b.fanout);
  EXPECT_EQ(a.runs, b.runs);
  EXPECT_EQ(a.totalMisses, b.totalMisses);
  expectBits(a.avgMissPercent, b.avgMissPercent, "avgMissPercent");
  expectBits(a.completePercent, b.completePercent, "completePercent");
  expectBits(a.avgMessagesTotal, b.avgMessagesTotal, "avgMessagesTotal");
  expectBits(a.avgVirgin, b.avgVirgin, "avgVirgin");
  expectBits(a.avgRedundant, b.avgRedundant, "avgRedundant");
  expectBits(a.avgToDead, b.avgToDead, "avgToDead");
  expectBits(a.avgLastHop, b.avgLastHop, "avgLastHop");
}

void expectIdentical(const ProgressStats& a, const ProgressStats& b) {
  EXPECT_EQ(a.fanout, b.fanout);
  EXPECT_EQ(a.runs, b.runs);
  ASSERT_EQ(a.meanPctRemaining.size(), b.meanPctRemaining.size());
  for (std::size_t hop = 0; hop < a.meanPctRemaining.size(); ++hop) {
    expectBits(a.meanPctRemaining[hop], b.meanPctRemaining[hop], "mean");
    expectBits(a.minPctRemaining[hop], b.minPctRemaining[hop], "min");
    expectBits(a.maxPctRemaining[hop], b.maxPctRemaining[hop], "max");
  }
}

void expectIdentical(const MissLifetimeStudy& a, const MissLifetimeStudy& b) {
  expectIdentical(a.effectiveness, b.effectiveness);
  EXPECT_EQ(a.missedLifetimes.sorted(), b.missedLifetimes.sorted());
}

/// One small warmed scenario shared by all cases (building it dominates
/// the suite's runtime). Killing a slice of the population makes misses
/// actually occur, so the lifetime histograms are non-trivial.
Scenario& scenario() {
  static Scenario shared = [] {
    auto s = Scenario::builder().nodes(256).seed(7).rings(2).build();
    s.killRandomFraction(0.10);
    return s;
  }();
  return shared;
}

TEST(ParallelSweepDeterminism, EffectivenessBitIdenticalAcrossThreadCounts) {
  for (const Strategy strategy : kAllStrategies) {
    const auto overlay = scenario().snapshot(strategy);
    ParallelSweep baseline({.threads = 1});
    const auto expected = baseline.sweepEffectiveness(
        overlay, strategy, {1, 3, 5}, kRuns, kSeed);
    for (const std::uint32_t threads : {2u, 8u}) {
      ParallelSweep sweep({.threads = threads});
      const auto actual =
          sweep.sweepEffectiveness(overlay, strategy, {1, 3, 5}, kRuns, kSeed);
      ASSERT_EQ(actual.size(), expected.size());
      for (std::size_t i = 0; i < expected.size(); ++i)
        expectIdentical(expected[i], actual[i]);
    }
  }
}

TEST(ParallelSweepDeterminism, ProgressBitIdenticalAcrossThreadCounts) {
  for (const Strategy strategy : kAllStrategies) {
    const auto overlay = scenario().snapshot(strategy);
    ParallelSweep baseline({.threads = 1});
    const auto expected =
        baseline.measureProgress(overlay, strategy, 3, kRuns, kSeed);
    for (const std::uint32_t threads : {2u, 8u}) {
      ParallelSweep sweep({.threads = threads});
      expectIdentical(expected, sweep.measureProgress(overlay, strategy, 3,
                                                      kRuns, kSeed));
    }
  }
}

TEST(ParallelSweepDeterminism, MissLifetimesBitIdenticalAcrossThreadCounts) {
  for (const Strategy strategy : kAllStrategies) {
    const auto overlay = scenario().snapshot(strategy);
    const auto& network = scenario().network();
    const auto now = scenario().engine().cycle();
    ParallelSweep baseline({.threads = 1});
    const auto expected = baseline.measureMissLifetimes(
        overlay, strategy, network, now, 2, kRuns, kSeed);
    for (const std::uint32_t threads : {2u, 8u}) {
      ParallelSweep sweep({.threads = threads});
      expectIdentical(expected,
                      sweep.measureMissLifetimes(overlay, strategy, network,
                                                 now, 2, kRuns, kSeed));
    }
  }
}

TEST(ParallelSweepDeterminism, RepeatedRunsAgreeAtSameSeed) {
  const auto overlay = scenario().snapshot(Strategy::kRingCast);
  ParallelSweep sweep({.threads = 4});
  const auto first = sweep.sweepEffectiveness(
      overlay, Strategy::kRingCast, {2, 4}, kRuns, kSeed);
  const auto second = sweep.sweepEffectiveness(
      overlay, Strategy::kRingCast, {2, 4}, kRuns, kSeed);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i)
    expectIdentical(first[i], second[i]);
}

TEST(ParallelSweepDeterminism, PointIndependentOfRestOfSweep) {
  // Cell streams derive from (seed, fanout, chunk) — the *identity* of
  // the cell — so the fanout-4 point is the same whether it is measured
  // alone, first, last, or among other fanouts.
  const auto overlay = scenario().snapshot(Strategy::kRandCast);
  ParallelSweep sweep({.threads = 3});
  const auto alone = sweep.measureEffectiveness(overlay, Strategy::kRandCast,
                                                4, kRuns, kSeed);
  const auto inSweep = sweep.sweepEffectiveness(
      overlay, Strategy::kRandCast, {2, 4, 6}, kRuns, kSeed);
  const auto reversed = sweep.sweepEffectiveness(
      overlay, Strategy::kRandCast, {6, 4}, kRuns, kSeed);
  expectIdentical(alone, inSweep[1]);
  expectIdentical(alone, reversed[1]);
}

TEST(ParallelSweepDeterminism, SequentialFreeFunctionsMatchParallel) {
  // The free functions of experiment.hpp are the one-thread face of the
  // same cell decomposition.
  const auto overlay = scenario().snapshot(Strategy::kRingCast);
  ParallelSweep sweep({.threads = 8});
  expectIdentical(
      measureEffectiveness(overlay, Strategy::kRingCast, 3, kRuns, kSeed),
      sweep.measureEffectiveness(overlay, Strategy::kRingCast, 3, kRuns,
                                 kSeed));
  expectIdentical(
      measureProgress(overlay, Strategy::kRingCast, 3, kRuns, kSeed),
      sweep.measureProgress(overlay, Strategy::kRingCast, 3, kRuns, kSeed));
}

}  // namespace
}  // namespace vs07::analysis
