#include "analysis/experiment.hpp"

#include <gtest/gtest.h>

#include "analysis/scenario.hpp"
#include "cast/snapshot.hpp"
#include "common/expect.hpp"
#include "overlay/graph.hpp"

namespace vs07::analysis {
namespace {

TEST(MeasureEffectiveness, FloodOnRingIsAlwaysComplete) {
  const auto snapshot = cast::snapshotGraph(overlay::makeRing(40));
  const cast::FloodSelector flood;
  const auto point = measureEffectiveness(snapshot, flood, 1, 20, 1);
  EXPECT_EQ(point.fanout, 1u);
  EXPECT_EQ(point.runs, 20u);
  EXPECT_EQ(point.avgMissPercent, 0.0);
  EXPECT_EQ(point.completePercent, 100.0);
  EXPECT_EQ(point.totalMisses, 0u);
  EXPECT_DOUBLE_EQ(point.avgLastHop, 20.0);  // N/2 on an even ring
}

TEST(MeasureEffectiveness, AccountsMissesOnPartitionedRing) {
  auto alive = std::vector<std::uint8_t>(20, 1);
  alive[3] = alive[10] = 0;  // partition the ring
  const auto snapshot =
      cast::snapshotGraph(overlay::makeRing(20), std::move(alive));
  const cast::FloodSelector flood;
  const auto point = measureEffectiveness(snapshot, flood, 1, 50, 2);
  EXPECT_GT(point.avgMissPercent, 0.0);
  EXPECT_EQ(point.completePercent, 0.0);
  EXPECT_GT(point.totalMisses, 0u);
  EXPECT_GT(point.avgToDead, 0.0);
}

TEST(MeasureEffectiveness, DeterministicUnderSeed) {
  const auto snapshot = cast::snapshotGraph(overlay::makeHarary(4, 60));
  const cast::FloodSelector flood;
  const auto a = measureEffectiveness(snapshot, flood, 2, 10, 7);
  const auto b = measureEffectiveness(snapshot, flood, 2, 10, 7);
  EXPECT_EQ(a.avgMessagesTotal, b.avgMessagesTotal);
  EXPECT_EQ(a.avgLastHop, b.avgLastHop);
}

TEST(MeasureEffectiveness, ZeroRunsRejected) {
  const auto snapshot = cast::snapshotGraph(overlay::makeRing(10));
  const cast::FloodSelector flood;
  EXPECT_THROW(measureEffectiveness(snapshot, flood, 1, 0, 1),
               ContractViolation);
}

TEST(SweepEffectiveness, OnePointPerFanout) {
  const auto snapshot = cast::snapshotGraph(overlay::makeRing(20));
  const cast::FloodSelector flood;
  const auto points =
      sweepEffectiveness(snapshot, flood, {1, 2, 3}, 5, 3);
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[0].fanout, 1u);
  EXPECT_EQ(points[2].fanout, 3u);
}

TEST(MeasureProgress, MonotoneMeanSeries) {
  const auto snapshot = cast::snapshotGraph(overlay::makeRing(30));
  const cast::FloodSelector flood;
  const auto stats = measureProgress(snapshot, flood, 1, 10, 4);
  ASSERT_FALSE(stats.meanPctRemaining.empty());
  EXPECT_NEAR(stats.meanPctRemaining[0], 100.0 * 29 / 30, 1e-9);
  for (std::size_t hop = 1; hop < stats.meanPctRemaining.size(); ++hop)
    EXPECT_LE(stats.meanPctRemaining[hop], stats.meanPctRemaining[hop - 1]);
  EXPECT_EQ(stats.meanPctRemaining.back(), 0.0);
  for (std::size_t hop = 0; hop < stats.meanPctRemaining.size(); ++hop) {
    // Tolerance: the mean is accumulated in floating point, so it can sit
    // an ulp away from min == max on deterministic overlays.
    EXPECT_LE(stats.minPctRemaining[hop],
              stats.meanPctRemaining[hop] + 1e-9);
    EXPECT_GE(stats.maxPctRemaining[hop],
              stats.meanPctRemaining[hop] - 1e-9);
  }
}

TEST(LifetimeHistogram, InitialPopulationSharesOneLifetime) {
  sim::Network network(30, 1);
  const auto histogram = lifetimeHistogram(network, /*nowCycle=*/12);
  EXPECT_EQ(histogram.total(), 30u);
  EXPECT_EQ(histogram.count(12), 30u);
}

TEST(LifetimeHistogram, MixedAges) {
  sim::Network network(5, 2);
  network.spawn(3);
  network.spawn(9);
  network.kill(0);
  const auto histogram = lifetimeHistogram(network, 10);
  EXPECT_EQ(histogram.total(), 6u);   // 4 originals + 2 joiners
  EXPECT_EQ(histogram.count(10), 4u);
  EXPECT_EQ(histogram.count(7), 1u);
  EXPECT_EQ(histogram.count(1), 1u);
}

TEST(MeasureMissLifetimes, NoMissesOnCompleteOverlay) {
  sim::Network network(20, 3);
  const auto snapshot = cast::snapshotGraph(overlay::makeRing(20));
  const cast::FloodSelector flood;
  const auto study = measureMissLifetimes(snapshot, flood, network,
                                          /*nowCycle=*/50, 1, 10, 5);
  EXPECT_TRUE(study.missedLifetimes.empty());
  EXPECT_EQ(study.effectiveness.completePercent, 100.0);
}

TEST(MeasureMissLifetimes, RecordsLifetimesOfMissedNodes) {
  // Partitioned ring: nodes 4..9 unreachable from the 10.. side etc.
  auto alive = std::vector<std::uint8_t>(20, 1);
  alive[3] = alive[10] = 0;
  sim::Network network(20, 4);
  // Match the network's alive view for lifetime lookups.
  network.kill(3);
  network.kill(10);
  const auto snapshot =
      cast::snapshotGraph(overlay::makeRing(20), std::move(alive));
  const cast::FloodSelector flood;
  const auto study = measureMissLifetimes(snapshot, flood, network, 7,
                                          1, 20, 6);
  EXPECT_FALSE(study.missedLifetimes.empty());
  // All original nodes have lifetime 7 at cycle 7.
  EXPECT_EQ(study.missedLifetimes.count(7), study.missedLifetimes.total());
  EXPECT_EQ(study.missedLifetimes.total(), study.effectiveness.totalMisses);
}

}  // namespace
}  // namespace vs07::analysis
