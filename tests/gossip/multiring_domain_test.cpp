#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "analysis/graph_analysis.hpp"
#include "analysis/scenario.hpp"
#include "common/expect.hpp"
#include "gossip/domain_key.hpp"
#include "gossip/multiring.hpp"

namespace vs07::gossip {
namespace {

analysis::Scenario ringsStack(std::uint32_t n, std::uint32_t rings,
                              bool warm = true) {
  auto builder = analysis::Scenario::builder().nodes(n).rings(rings).seed(31);
  if (!warm) builder.noWarmup();
  return builder.build();
}

TEST(MultiRing, RingZeroUsesPlainSequenceIds) {
  const auto stack = ringsStack(50, 2, /*warm=*/false);
  const auto& rings = stack.rings();
  for (NodeId id = 0; id < 50; ++id)
    EXPECT_EQ(rings.ring(0).profileOf(id), stack.network().seqId(id));
}

TEST(MultiRing, FurtherRingsUseIndependentOrders) {
  const auto stack = ringsStack(50, 3, /*warm=*/false);
  const auto& rings = stack.rings();
  std::uint32_t sameAsPlain = 0;
  std::set<SequenceId> ring1Profiles;
  for (NodeId id = 0; id < 50; ++id) {
    const auto p1 = rings.ring(1).profileOf(id);
    const auto p2 = rings.ring(2).profileOf(id);
    sameAsPlain += p1 == stack.network().seqId(id);
    EXPECT_NE(p1, p2);  // distinct salts => distinct profiles
    ring1Profiles.insert(p1);
  }
  EXPECT_EQ(sameAsPlain, 0u);
  EXPECT_EQ(ring1Profiles.size(), 50u);  // still collision-free
}

TEST(MultiRing, AllRingsConvergeIndependently) {
  const auto stack = ringsStack(150, 2);
  for (std::uint32_t r = 0; r < 2; ++r) {
    const auto convergence =
        analysis::ringConvergence(stack.network(), stack.rings().ring(r));
    EXPECT_GE(convergence.bothAccuracy, 0.97) << "ring " << r;
  }
}

TEST(MultiRing, NeighborSetsDifferAcrossRings) {
  const auto stack = ringsStack(150, 2);
  std::uint32_t distinctNeighbors = 0;
  for (const NodeId id : stack.network().aliveIds()) {
    const auto all = stack.rings().allRingNeighbors(id);
    ASSERT_EQ(all.size(), 2u);
    distinctNeighbors += all[0].successor != all[1].successor;
  }
  // Independent random orders: almost all nodes have different
  // successors on the two rings.
  EXPECT_GT(distinctNeighbors, 140u);
}

TEST(MultiRing, RingCountLimits) {
  auto builder = analysis::Scenario::builder().nodes(20).rings(0).seed(31);
  EXPECT_THROW(builder.build(), ContractViolation);
}

TEST(DomainKey, ReverseDomainBasics) {
  EXPECT_EQ(reverseDomain("inf.ethz.ch"), "ch.ethz.inf");
  EXPECT_EQ(reverseDomain("few.vu.nl"), "nl.vu.few");
  EXPECT_EQ(reverseDomain("single"), "single");
  EXPECT_EQ(reverseDomain(""), "");
  EXPECT_EQ(reverseDomain("a.b"), "b.a");
  EXPECT_EQ(reverseDomain("..weird..dots.."), "dots.weird");
}

TEST(DomainKey, SameDomainSharesHighBits) {
  const auto a = domainSequenceId("inf.ethz.ch", 1);
  const auto b = domainSequenceId("inf.ethz.ch", 9999);
  EXPECT_EQ(a >> 24, b >> 24);
  EXPECT_NE(a, b);
}

TEST(DomainKey, RandomBitsMasked) {
  // Only 24 low bits of `random` are used; overflow must not leak into
  // the domain prefix.
  const auto a = domainSequenceId("vu.nl", 0xFF000001);
  const auto b = domainSequenceId("vu.nl", 0x00000001);
  EXPECT_EQ(a, b);
}

TEST(DomainKey, OrdersByCountryThenOrganisation) {
  // Reversed: "ch.eth..." < "nl.vu...". Numeric order must match.
  const auto zurich = domainSequenceId("inf.ethz.ch", 500);
  const auto amsterdam = domainSequenceId("few.vu.nl", 500);
  EXPECT_LT(zurich, amsterdam);
  // Same country, different org: ethz < uzh (lexicographic).
  const auto ethz = domainSequenceId("ethz.ch", 0);
  const auto uzh = domainSequenceId("uzh.ch", 0);
  EXPECT_LT(ethz, uzh);
}

TEST(DomainKey, PrefixRoundTrip) {
  const auto id = domainSequenceId("vu.nl", 7);
  EXPECT_EQ(domainPrefixOf(id), "nl.vu");  // 5 chars + zero padding
  const auto shortId = domainSequenceId("x", 7);
  EXPECT_EQ(domainPrefixOf(shortId), "x");
}

TEST(DomainKey, ClusteringOnTheRing) {
  // 3 domains x 20 nodes: sorting by sequence id must group domains
  // contiguously (the §8 domain-ring property).
  const std::array<std::string, 3> domains{"ethz.ch", "vu.nl",
                                           "berkeley.edu"};
  std::vector<std::pair<SequenceId, std::string>> nodes;
  Rng rng(5);
  for (const auto& domain : domains)
    for (int i = 0; i < 20; ++i)
      nodes.emplace_back(
          domainSequenceId(domain, static_cast<std::uint16_t>(rng())),
          domain);
  std::sort(nodes.begin(), nodes.end());
  // Count domain changes along the sorted order: perfect grouping gives 2.
  int changes = 0;
  for (std::size_t i = 1; i < nodes.size(); ++i)
    changes += nodes[i].second != nodes[i - 1].second;
  EXPECT_EQ(changes, 2);
}

}  // namespace
}  // namespace vs07::gossip
