#include "gossip/vicinity.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/graph_analysis.hpp"
#include "analysis/scenario.hpp"
#include "gossip/cyclon.hpp"
#include "net/transport.hpp"
#include "sim/bootstrap.hpp"
#include "sim/churn.hpp"
#include "sim/engine.hpp"
#include "sim/failures.hpp"
#include "sim/network.hpp"
#include "sim/router.hpp"

namespace vs07::gossip {
namespace {

/// Full two-layer wiring: CYCLON feeding VICINITY, as the paper runs it.
struct VicinityHarness {
  explicit VicinityHarness(std::uint32_t n, std::uint64_t seed = 1,
                           Vicinity::Params vicParams = {},
                           ProfileFn profile = {})
      : network(n, seed),
        router(network),
        transport([this](NodeId to, const net::Message& m) {
          router.deliver(to, m);
        }),
        cyclon(network, transport, router, {20, 8}, seed + 1),
        vicinity(network, transport, router, cyclon, vicParams, seed + 2,
                 std::move(profile)),
        engine(network, seed + 3) {
    engine.addProtocol(cyclon);
    engine.addProtocol(vicinity);
  }

  void warmup(std::uint32_t cycles = 100) {
    sim::bootstrapStar(network, cyclon);
    engine.run(cycles);
  }

  sim::Network network;
  sim::MessageRouter router;
  net::ImmediateTransport transport;
  Cyclon cyclon;
  Vicinity vicinity;
  sim::Engine engine;
};

TEST(Vicinity, ParamsValidated) {
  sim::Network net(4, 1);
  sim::MessageRouter router(net);
  net::ImmediateTransport transport(
      [&router](NodeId to, const net::Message& m) { router.deliver(to, m); });
  Cyclon cyclon(net, transport, router, {5, 3}, 2);
  EXPECT_THROW(Vicinity(net, transport, router, cyclon, {0, 4}, 3),
               ContractViolation);
  EXPECT_THROW(Vicinity(net, transport, router, cyclon, {4, 0}, 3),
               ContractViolation);
}

TEST(Vicinity, EmptyViewMeansNoRingNeighbors) {
  VicinityHarness h(10);
  const auto ring = h.vicinity.ringNeighbors(3);
  EXPECT_EQ(ring.successor, kNoNode);
  EXPECT_EQ(ring.predecessor, kNoNode);
}

TEST(Vicinity, ConvergesToTrueRingWithinPaperWarmup) {
  VicinityHarness h(300);
  h.warmup(100);  // the paper's warm-up budget
  const auto convergence =
      analysis::ringConvergence(h.network, h.vicinity);
  EXPECT_GE(convergence.successorAccuracy, 0.99);
  EXPECT_GE(convergence.predecessorAccuracy, 0.99);
  EXPECT_GE(convergence.bothAccuracy, 0.98);
}

TEST(Vicinity, ConvergedViewsHoldTheRingBand) {
  // The converged view is a balanced band around the node (§6: "peers
  // with gradually higher and lower sequence IDs"): it must contain the
  // k nearest successors and k nearest predecessors, for k = vic/2.
  VicinityHarness h(200);
  h.warmup(100);
  const auto k = h.vicinity.params().viewLength / 2;

  // Ground truth: alive nodes sorted by sequence id.
  std::vector<NodeId> sorted(h.network.aliveIds());
  std::sort(sorted.begin(), sorted.end(), [&](NodeId a, NodeId b) {
    return h.network.seqId(a) < h.network.seqId(b);
  });
  const auto n = sorted.size();
  std::vector<std::size_t> rankOf(n);
  for (std::size_t i = 0; i < n; ++i) rankOf[sorted[i]] = i;

  std::uint32_t perfectBands = 0;
  for (const NodeId self : h.network.aliveIds()) {
    const auto& view = h.vicinity.view(self);
    bool perfect = view.size() >= 2 * k;
    for (std::size_t step = 1; perfect && step <= k; ++step) {
      const NodeId succ = sorted[(rankOf[self] + step) % n];
      const NodeId pred = sorted[(rankOf[self] + n - step) % n];
      perfect = view.contains(succ) && view.contains(pred);
    }
    perfectBands += perfect;
  }
  // Allow a few stragglers (the band's far edge refreshes lazily).
  EXPECT_GE(perfectBands, h.network.aliveCount() * 90 / 100);
}

TEST(Vicinity, RingNeighborsAreMutualAfterConvergence) {
  VicinityHarness h(150);
  h.warmup(100);
  std::uint32_t mutual = 0;
  for (const NodeId self : h.network.aliveIds()) {
    const auto ring = h.vicinity.ringNeighbors(self);
    if (ring.successor != kNoNode &&
        h.vicinity.ringNeighbors(ring.successor).predecessor == self)
      ++mutual;
  }
  EXPECT_GE(mutual, h.network.aliveCount() * 98 / 100);
}

TEST(Vicinity, SelfHealsAfterCatastrophicFailure) {
  VicinityHarness h(300);
  h.warmup(100);
  Rng rng(4);
  sim::killRandomFraction(h.network, 0.10, rng);
  // Immediately after the failure the ring is damaged...
  const auto before = analysis::ringConvergence(h.network, h.vicinity);
  EXPECT_LT(before.bothAccuracy, 0.95);
  // ...and gossip repairs it (§7.2: healing was deliberately disabled in
  // the paper's measurements, but the capability matters for real use).
  h.engine.run(60);
  const auto after = analysis::ringConvergence(h.network, h.vicinity);
  EXPECT_GE(after.bothAccuracy, 0.97);
}

TEST(Vicinity, JoinerIntegratesIntoRing) {
  VicinityHarness h(200);
  h.warmup(100);
  Rng rng(9);
  const NodeId joiner = h.network.spawn(h.engine.cycle());
  const NodeId introducer = h.network.randomAlive(rng);
  h.cyclon.onJoin(joiner, introducer);
  h.vicinity.onJoin(joiner, introducer);
  h.engine.run(30);

  // The joiner must know its true ring neighbours...
  const auto convergence = analysis::ringConvergence(h.network, h.vicinity);
  EXPECT_GE(convergence.bothAccuracy, 0.99);
  // ...and be known by them (incoming d-links).
  const auto ring = h.vicinity.ringNeighbors(joiner);
  ASSERT_NE(ring.successor, kNoNode);
  EXPECT_EQ(h.vicinity.ringNeighbors(ring.successor).predecessor, joiner);
}

TEST(Vicinity, CustomProfileOrdersTheRing) {
  // Reverse ordering: profile = ~seqId flips the ring direction.
  VicinityHarness plain(100, /*seed=*/11);
  plain.warmup(80);

  sim::Network& net = plain.network;
  // Build a second harness with inverted profiles over an identical
  // network seed; successors under inversion = predecessors under plain.
  VicinityHarness inverted(100, /*seed=*/11, Vicinity::Params{},
                           [&inv = inverted](NodeId n) -> SequenceId {
                             return ~inv.network.seqId(n);
                           });
  inverted.warmup(80);
  (void)net;

  std::uint32_t flipped = 0;
  for (const NodeId id : inverted.network.aliveIds()) {
    const auto invRing = inverted.vicinity.ringNeighbors(id);
    const auto plainRing = plain.vicinity.ringNeighbors(id);
    // Same seed => same sequence ids in both networks, so the inverted
    // successor should equal the plain predecessor for converged nodes.
    flipped += invRing.successor == plainRing.predecessor;
  }
  EXPECT_GE(flipped, 95u);
}

TEST(Vicinity, TimeoutEvictsDeadTarget) {
  VicinityHarness h(50);
  h.warmup(60);
  // Pick a node and kill its successor; within a few cycles the dead
  // entry must leave the view via the request-timeout path.
  const NodeId node = h.network.aliveIds().front();
  const NodeId victim = h.vicinity.ringNeighbors(node).successor;
  ASSERT_NE(victim, kNoNode);
  h.network.kill(victim);
  h.engine.run(30);
  EXPECT_FALSE(h.vicinity.view(node).contains(victim));
}

TEST(Vicinity, DeterministicUnderSeed) {
  auto fingerprint = [](std::uint64_t seed) {
    VicinityHarness h(80, seed);
    h.warmup(50);
    std::uint64_t hash = 0;
    for (const NodeId id : h.network.aliveIds()) {
      const auto ring = h.vicinity.ringNeighbors(id);
      hash = mix64(hash ^ ring.successor);
      hash = mix64(hash ^ ring.predecessor);
    }
    return hash;
  };
  EXPECT_EQ(fingerprint(3), fingerprint(3));
}

}  // namespace
}  // namespace vs07::gossip
