#include "gossip/peer_sampling.hpp"

#include <gtest/gtest.h>

#include <map>

namespace vs07::gossip {
namespace {

/// Minimal PeerSamplingService over fixed views, for interface tests.
class StaticSampler final : public PeerSamplingService {
 public:
  explicit StaticSampler(std::map<NodeId, View> views)
      : views_(std::move(views)) {}
  const View& view(NodeId node) const override { return views_.at(node); }

 private:
  std::map<NodeId, View> views_;
};

TEST(PeerSampling, SamplePeerFromEmptyViewIsNoNode) {
  std::map<NodeId, View> views;
  views.emplace(0, View(0, 4));
  StaticSampler sampler(std::move(views));
  Rng rng(1);
  EXPECT_EQ(sampler.samplePeer(0, rng), kNoNode);
}

TEST(PeerSampling, SamplePeerUniformOverView) {
  View v(0, 4);
  v.add({1, 0, 0});
  v.add({2, 0, 0});
  v.add({3, 0, 0});
  std::map<NodeId, View> views;
  views.emplace(0, std::move(v));
  StaticSampler sampler(std::move(views));
  Rng rng(2);
  std::map<NodeId, int> hits;
  constexpr int kDraws = 9000;
  for (int i = 0; i < kDraws; ++i) ++hits[sampler.samplePeer(0, rng)];
  for (const NodeId id : {1u, 2u, 3u}) {
    EXPECT_GT(hits[id], kDraws / 3 * 0.9);
    EXPECT_LT(hits[id], kDraws / 3 * 1.1);
  }
}

}  // namespace
}  // namespace vs07::gossip
