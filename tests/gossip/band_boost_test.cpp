// Tests for the two §7.3/§8 extensions added on top of the core protocols:
// Harary-band d-links (Vicinity::ringBand / cast::snapshotBand) and the
// joiner gossip boost (sim::joinerBoost).
#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/experiment.hpp"
#include "analysis/graph_analysis.hpp"
#include "analysis/scenario.hpp"
#include "cast/selector.hpp"
#include "cast/snapshot.hpp"
#include "common/expect.hpp"
#include "sim/churn.hpp"
#include "sim/failures.hpp"

namespace vs07 {
namespace {

analysis::Scenario smallStack(std::uint32_t n, std::uint64_t seed,
                              bool warm = true) {
  auto builder = analysis::Scenario::builder().nodes(n).seed(seed);
  if (!warm) builder.noWarmup();
  return builder.build();
}

TEST(RingBand, WidthOneEqualsRingNeighbors) {
  auto stack = smallStack(150, 41);
  for (const NodeId id : stack.network().aliveIds()) {
    const auto band = stack.vicinity().ringBand(id, 1);
    const auto ring = stack.vicinity().ringNeighbors(id);
    ASSERT_EQ(band.size(), 2u);
    EXPECT_EQ(band[0], ring.successor);
    EXPECT_EQ(band[1], ring.predecessor);
  }
}

TEST(RingBand, MatchesGroundTruthCirculant) {
  auto stack = smallStack(200, 42);
  const auto& network = stack.network();

  // Ground truth ring order.
  std::vector<NodeId> sorted(network.aliveIds());
  std::sort(sorted.begin(), sorted.end(), [&](NodeId a, NodeId b) {
    return network.seqId(a) < network.seqId(b);
  });
  const auto n = sorted.size();
  std::vector<std::size_t> rankOf(n);
  for (std::size_t i = 0; i < n; ++i) rankOf[sorted[i]] = i;

  constexpr std::uint32_t kWidth = 3;
  std::uint32_t perfect = 0;
  for (const NodeId id : network.aliveIds()) {
    const auto band = stack.vicinity().ringBand(id, kWidth);
    bool ok = band.size() == 2 * kWidth;
    for (std::uint32_t step = 1; ok && step <= kWidth; ++step) {
      const NodeId succ = sorted[(rankOf[id] + step) % n];
      const NodeId pred = sorted[(rankOf[id] + n - step) % n];
      ok = std::find(band.begin(), band.end(), succ) != band.end() &&
           std::find(band.begin(), band.end(), pred) != band.end();
    }
    perfect += ok;
  }
  EXPECT_GE(perfect, network.aliveCount() * 95 / 100);
}

TEST(RingBand, SmallViewReturnsWhatExists) {
  auto stack = smallStack(30, 43, /*warm=*/false);  // views empty
  EXPECT_TRUE(stack.vicinity().ringBand(0, 2).empty());
}

TEST(RingBand, WidthZeroRejected) {
  auto stack = smallStack(30, 44, /*warm=*/false);
  EXPECT_THROW(stack.vicinity().ringBand(0, 0), ContractViolation);
}

TEST(SnapshotBand, DlinkGraphIsStronglyConnectedAndWide) {
  auto stack = smallStack(300, 45);
  const auto snapshot =
      cast::snapshotBand(stack.network(), stack.cyclon(), stack.vicinity(), 2);
  for (const NodeId id : snapshot.aliveIds())
    EXPECT_EQ(snapshot.dlinks(id).size(), 4u);
  const auto adjacency = analysis::aliveAdjacency(
      snapshot, {.rlinks = false, .dlinks = true});
  EXPECT_EQ(analysis::stronglyConnectedComponentCount(adjacency), 1u);
}

TEST(SnapshotBand, BandReliabilityDependsOnKeepingRlinks) {
  // Two regimes, one experiment each — the hybrid design insight of §5:
  //
  //  * fanout > |d-links|: the wider band adds deterministic coverage on
  //    top of random bridges, so width 3 beats width 1;
  //  * fanout <= |d-links|: every forward is a d-link, the probabilistic
  //    component is crowded out, and a run of `width` consecutive dead
  //    nodes partitions the dissemination — width 3 gets *worse*, not
  //    better. Determinism alone is not enough (that's §3's lesson).
  auto missesAt = [](std::uint32_t width, std::uint32_t fanout) {
    auto stack = smallStack(500, 46);
    stack.killRandomFraction(0.20);
    const auto snapshot = cast::snapshotBand(stack.network(), stack.cyclon(),
                                             stack.vicinity(), width);
    const cast::RingCastSelector selector;  // hybrid rule over the band
    return analysis::measureEffectiveness(snapshot, selector, fanout, 30, 47)
        .totalMisses;
  };

  // Regime 1: r-links survive (fanout 8 > 6 d-links).
  const auto narrowHighF = missesAt(1, 8);
  const auto wideHighF = missesAt(3, 8);
  EXPECT_LE(wideHighF, narrowHighF);

  // Regime 2: determinism-only forwarding (fanout 2 <= 6 d-links).
  const auto narrowLowF = missesAt(1, 2);
  const auto wideLowF = missesAt(3, 2);
  EXPECT_GT(narrowLowF, 0u);
  EXPECT_GT(wideLowF, narrowLowF);
}

TEST(JoinerBoost, BoostedNodesStepMoreOften) {
  sim::Network network(10, 48);
  sim::Engine engine(network, 49);
  struct Counter final : sim::CycleProtocol {
    void step(NodeId self) override { ++steps[self]; }
    std::map<NodeId, int> steps;
  } counter;
  engine.addProtocol(counter);
  // Nodes join at cycle 0; boost nodes younger than 5 cycles 3x.
  engine.setStepBoost(sim::joinerBoost(network, 3, 5));
  engine.run(10);
  // Cycles 0-4 boosted (3 steps), cycles 5-9 normal: 5*3 + 5 = 20.
  EXPECT_EQ(counter.steps[0], 20);
}

TEST(JoinerBoost, AcceleratesJoinWarmup) {
  // The §7.3 claim: boosted joiners build their indegree faster. Compare
  // a fresh joiner's r-link indegree after a few cycles with and without
  // the boost.
  auto indegreeAfterJoin = [](bool boosted) {
    auto stack = smallStack(300, 50);
    if (boosted)
      stack.engine().setStepBoost(sim::joinerBoost(stack.network(), 4, 10));
    const NodeId joiner = stack.network().spawn(stack.engine().cycle());
    Rng rng(51);
    NodeId introducer = joiner;
    while (introducer == joiner)
      introducer = stack.network().randomAlive(rng);
    stack.cyclon().onJoin(joiner, introducer);
    stack.runCycles(5);
    const auto snapshot = stack.snapshotRandom();
    std::uint32_t indegree = 0;
    for (const NodeId id : snapshot.aliveIds())
      for (const NodeId link : snapshot.rlinks(id))
        indegree += link == joiner;
    return indegree;
  };
  const auto plain = indegreeAfterJoin(false);
  const auto boosted = indegreeAfterJoin(true);
  EXPECT_GT(boosted, plain);
  // With a 4x boost over 5 cycles the joiner initiates ~20 shuffles and
  // should be known by roughly that many peers.
  EXPECT_GE(boosted, 10u);
}

}  // namespace
}  // namespace vs07
