#include "gossip/cyclon.hpp"

#include <gtest/gtest.h>

#include "analysis/graph_analysis.hpp"
#include "analysis/scenario.hpp"
#include "cast/snapshot.hpp"
#include "common/stats.hpp"
#include "net/transport.hpp"
#include "sim/bootstrap.hpp"
#include "sim/churn.hpp"
#include "sim/engine.hpp"
#include "sim/failures.hpp"
#include "sim/network.hpp"
#include "sim/router.hpp"

namespace vs07::gossip {
namespace {

/// Minimal wiring: network + router + immediate transport + CYCLON only.
struct CyclonHarness {
  explicit CyclonHarness(std::uint32_t n, Cyclon::Params params = {},
                         std::uint64_t seed = 1)
      : network(n, seed),
        router(network),
        transport([this](NodeId to, const net::Message& m) {
          router.deliver(to, m);
        }),
        cyclon(network, transport, router, params, seed + 1),
        engine(network, seed + 2) {
    engine.addProtocol(cyclon);
  }

  sim::Network network;
  sim::MessageRouter router;
  net::ImmediateTransport transport;
  Cyclon cyclon;
  sim::Engine engine;
};

TEST(Cyclon, ParamsValidated) {
  sim::Network net(4, 1);
  sim::MessageRouter router(net);
  net::ImmediateTransport transport(
      [&router](NodeId to, const net::Message& m) { router.deliver(to, m); });
  EXPECT_THROW(Cyclon(net, transport, router, {0, 1}, 1), ContractViolation);
  EXPECT_THROW(Cyclon(net, transport, router, {5, 0}, 1), ContractViolation);
  EXPECT_THROW(Cyclon(net, transport, router, {5, 6}, 1), ContractViolation);
}

TEST(Cyclon, StarBootstrapGivesSingleContact) {
  CyclonHarness h(10);
  sim::bootstrapStar(h.network, h.cyclon);
  for (NodeId id = 1; id < 10; ++id) {
    ASSERT_EQ(h.cyclon.view(id).size(), 1u);
    EXPECT_EQ(h.cyclon.view(id).at(0).node, 0u);
  }
  EXPECT_TRUE(h.cyclon.view(0).empty());
}

TEST(Cyclon, ViewsFillToCapacityAfterWarmup) {
  CyclonHarness h(200, {10, 5});
  sim::bootstrapStar(h.network, h.cyclon);
  h.engine.run(50);
  for (const NodeId id : h.network.aliveIds())
    EXPECT_EQ(h.cyclon.view(id).size(), 10u) << "node " << id;
}

TEST(Cyclon, ViewEntriesCarryCorrectProfiles) {
  CyclonHarness h(50, {8, 4});
  sim::bootstrapStar(h.network, h.cyclon);
  h.engine.run(30);
  for (const NodeId id : h.network.aliveIds())
    for (const auto& e : h.cyclon.view(id).entries())
      EXPECT_EQ(e.profile, h.network.seqId(e.node));
}

TEST(Cyclon, OverlayBecomesStronglyConnected) {
  CyclonHarness h(500);
  sim::bootstrapStar(h.network, h.cyclon);
  h.engine.run(100);
  const auto snapshot = cast::snapshotRandom(h.network, h.cyclon);
  const auto adjacency = analysis::aliveAdjacency(snapshot);
  EXPECT_EQ(analysis::stronglyConnectedComponentCount(adjacency), 1u);
}

TEST(Cyclon, IndegreeConcentratesAroundViewLength) {
  CyclonHarness h(500, {20, 8});
  sim::bootstrapStar(h.network, h.cyclon);
  h.engine.run(150);
  const auto snapshot = cast::snapshotRandom(h.network, h.cyclon);
  const auto indegrees = analysis::aliveIndegrees(snapshot);
  RunningStats stats;
  for (const auto d : indegrees) stats.add(d);
  // Every link points somewhere, so mean indegree == mean view size == 20.
  EXPECT_NEAR(stats.mean(), 20.0, 0.5);
  // CYCLON's hallmark: a narrow indegree distribution (random graphs would
  // have stddev ≈ sqrt(20) ≈ 4.5; CYCLON is tighter, but allow slack).
  EXPECT_LT(stats.stddev(), 6.0);
}

TEST(Cyclon, JoinerIndegreeGrowsRoughlyOnePerCycle) {
  CyclonHarness h(300, {20, 8});
  sim::bootstrapStar(h.network, h.cyclon);
  h.engine.run(100);

  const NodeId joiner = h.network.spawn(h.engine.cycle());
  Rng rng(99);
  h.cyclon.onJoin(joiner, h.network.randomAlive(rng));

  h.engine.run(10);
  const auto snapshot = cast::snapshotRandom(h.network, h.cyclon);
  const auto& aliveIds = snapshot.aliveIds();
  std::uint32_t indegree = 0;
  for (const NodeId id : aliveIds)
    for (const NodeId link : snapshot.rlinks(id)) indegree += link == joiner;
  // After 10 cycles the joiner should be known by roughly 10 nodes
  // (§7.3: "increases by one in each of its first few cycles").
  EXPECT_GE(indegree, 5u);
  EXPECT_LE(indegree, 25u);
}

TEST(Cyclon, DeadLinksGetPurgedByGossip) {
  CyclonHarness h(300, {20, 8});
  sim::bootstrapStar(h.network, h.cyclon);
  h.engine.run(100);

  Rng rng(5);
  sim::killRandomFraction(h.network, 0.10, rng);

  auto countDeadLinks = [&] {
    std::uint64_t dead = 0;
    for (const NodeId id : h.network.aliveIds())
      for (const auto& e : h.cyclon.view(id).entries())
        dead += !h.network.isAlive(e.node);
    return dead;
  };

  const auto deadBefore = countDeadLinks();
  EXPECT_GT(deadBefore, 0u);
  h.engine.run(40);  // views refresh; each shuffle retires the oldest link
  const auto deadAfter = countDeadLinks();
  EXPECT_LT(deadAfter, deadBefore / 5);
}

TEST(Cyclon, OnKillClearsState) {
  CyclonHarness h(20, {5, 3});
  sim::bootstrapStar(h.network, h.cyclon);
  h.engine.run(10);
  EXPECT_FALSE(h.cyclon.view(7).empty());
  h.network.kill(7);
  EXPECT_TRUE(h.cyclon.view(7).empty());
}

TEST(Cyclon, DeterministicUnderSeed) {
  auto run = [](std::uint64_t seed) {
    CyclonHarness h(100, {10, 5}, seed);
    sim::bootstrapStar(h.network, h.cyclon);
    h.engine.run(30);
    std::vector<std::vector<NodeId>> views;
    for (NodeId id = 0; id < 100; ++id) {
      std::vector<NodeId> ids;
      for (const auto& e : h.cyclon.view(id).entries())
        ids.push_back(e.node);
      views.push_back(ids);
    }
    return views;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST(Cyclon, ShuffleCounterAdvances) {
  CyclonHarness h(50, {5, 3});
  sim::bootstrapStar(h.network, h.cyclon);
  h.engine.run(4);
  // Node 0 starts with an empty view and skips its first step, so the
  // count is slightly below 50*4; it must be close to it.
  EXPECT_GE(h.cyclon.shufflesInitiated(), 150u);
  EXPECT_LE(h.cyclon.shufflesInitiated(), 200u);
}

TEST(Cyclon, IsolatedNodeSkipsStep) {
  CyclonHarness h(5, {5, 3});
  // No bootstrap: all views empty; stepping must be a harmless no-op.
  h.engine.run(3);
  for (NodeId id = 0; id < 5; ++id) EXPECT_TRUE(h.cyclon.view(id).empty());
}

TEST(Cyclon, ViewsNeverContainSelfOrDuplicates) {
  // The View class enforces this by contract; run a long churn-heavy
  // scenario to probe the merge logic through every code path.
  CyclonHarness h(100, {8, 4});
  sim::bootstrapStar(h.network, h.cyclon);
  sim::ChurnControl churn(h.network, 0.05, 77);
  churn.addJoinHandler(h.cyclon);
  h.engine.addControl(churn);
  h.engine.run(100);  // throws on any invariant violation inside View
  for (const NodeId id : h.network.aliveIds()) {
    const auto& v = h.cyclon.view(id);
    for (const auto& e : v.entries()) EXPECT_NE(e.node, id);
  }
}

}  // namespace
}  // namespace vs07::gossip
