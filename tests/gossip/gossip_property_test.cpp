// Parameterized property sweeps over the gossip substrate: CYCLON view
// invariants across (view length, shuffle length) settings, and VICINITY
// ring convergence across view lengths — the "view lengths are not
// crucial" observation of §7 made testable.
#include <gtest/gtest.h>

#include <tuple>

#include "analysis/graph_analysis.hpp"
#include "cast/snapshot.hpp"
#include "common/stats.hpp"
#include "gossip/cyclon.hpp"
#include "gossip/vicinity.hpp"
#include "net/transport.hpp"
#include "sim/bootstrap.hpp"
#include "sim/churn.hpp"
#include "sim/engine.hpp"
#include "sim/network.hpp"
#include "sim/router.hpp"

namespace vs07::gossip {
namespace {

struct Wiring {
  explicit Wiring(std::uint32_t n, Cyclon::Params cyclonParams,
                  Vicinity::Params vicinityParams, std::uint64_t seed)
      : network(n, seed),
        router(network),
        transport([this](NodeId to, const net::Message& m) {
          router.deliver(to, m);
        }),
        cyclon(network, transport, router, cyclonParams, seed + 1),
        vicinity(network, transport, router, cyclon, vicinityParams,
                 seed + 2),
        engine(network, seed + 3) {
    engine.addProtocol(cyclon);
    engine.addProtocol(vicinity);
    sim::bootstrapStar(network, cyclon);
  }

  sim::Network network;
  sim::MessageRouter router;
  net::ImmediateTransport transport;
  Cyclon cyclon;
  Vicinity vicinity;
  sim::Engine engine;
};

// ---------------------------------------------------------------------
// CYCLON sweep over (viewLength, shuffleLength).

using CyclonParam = std::tuple<std::uint32_t, std::uint32_t>;

class CyclonProperties : public ::testing::TestWithParam<CyclonParam> {};

TEST_P(CyclonProperties, ViewInvariantsAndConnectivity) {
  const auto [viewLength, shuffleLength] = GetParam();
  Wiring w(250, {viewLength, shuffleLength}, {}, 17);
  w.engine.run(120);

  // Views fill to capacity and respect the bound.
  for (const NodeId id : w.network.aliveIds()) {
    const auto& view = w.cyclon.view(id);
    EXPECT_EQ(view.size(), viewLength);
    for (const auto& e : view.entries()) {
      EXPECT_NE(e.node, id);
      EXPECT_LT(e.node, w.network.totalCreated());
    }
  }

  // The r-link overlay is one strongly connected component.
  const auto snapshot = cast::snapshotRandom(w.network, w.cyclon);
  const auto adjacency = analysis::aliveAdjacency(snapshot);
  EXPECT_EQ(analysis::stronglyConnectedComponentCount(adjacency), 1u);

  // Indegree mean equals view length (conservation of links).
  const auto indegrees = analysis::aliveIndegrees(snapshot);
  RunningStats stats;
  for (const auto d : indegrees) stats.add(d);
  EXPECT_NEAR(stats.mean(), viewLength, 0.01);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CyclonProperties,
    ::testing::Values(CyclonParam{4, 2}, CyclonParam{8, 4},
                      CyclonParam{16, 8}, CyclonParam{20, 8},
                      CyclonParam{20, 20}, CyclonParam{32, 5}),
    [](const ::testing::TestParamInfo<CyclonParam>& info) {
      return "view" + std::to_string(std::get<0>(info.param)) + "_shuffle" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------
// VICINITY sweep over view lengths: §7's "the view lengths are not
// crucial for the behavior of these algorithms".

class VicinityProperties : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(VicinityProperties, RingConvergesForAnyReasonableViewLength) {
  const std::uint32_t viewLength = GetParam();
  Vicinity::Params params;
  params.viewLength = viewLength;
  params.exchangeLength = std::max(2u, viewLength / 2);
  Wiring w(200, {20, 8}, params, 23);
  w.engine.run(120);

  const auto convergence =
      analysis::ringConvergence(w.network, w.vicinity);
  EXPECT_GE(convergence.bothAccuracy, 0.97) << "view length " << viewLength;

  // Views respect the bound and hold no self entries.
  for (const NodeId id : w.network.aliveIds()) {
    const auto& view = w.vicinity.view(id);
    EXPECT_LE(view.size(), viewLength);
    for (const auto& e : view.entries()) EXPECT_NE(e.node, id);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, VicinityProperties,
                         ::testing::Values(4u, 8u, 12u, 20u, 32u),
                         [](const ::testing::TestParamInfo<std::uint32_t>&
                                info) {
                           return "vic" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------
// Churn-rate sweep: population and view invariants survive any rate.

class ChurnProperties : public ::testing::TestWithParam<double> {};

TEST_P(ChurnProperties, InvariantsSurviveChurnRate) {
  const double rate = GetParam();
  Wiring w(300, {10, 5}, {10, 5}, 31);
  w.engine.run(50);

  sim::ChurnControl churn(w.network, rate, 37);
  churn.addJoinHandler(w.cyclon);
  churn.addJoinHandler(w.vicinity);
  w.engine.addControl(churn);
  w.engine.run(100);  // View contract violations would throw.

  EXPECT_EQ(w.network.aliveCount(), 300u);
  for (const NodeId id : w.network.aliveIds()) {
    for (const auto& e : w.cyclon.view(id).entries()) EXPECT_NE(e.node, id);
    for (const auto& e : w.vicinity.view(id).entries())
      EXPECT_NE(e.node, id);
  }

  // The overlay keeps one giant strongly connected component; only the
  // youngest joiners may momentarily sit outside it (they have out-links
  // immediately but gain in-links over their first cycles — the §7.3
  // warm-up effect behind Fig. 13). This holds while the mean lifetime
  // (1/rate cycles) comfortably exceeds the ~viewLength-cycle join
  // integration time; at rate = 1/viewLength the overlay genuinely
  // degrades, so the bound is only asserted in the operating regime.
  const auto snapshot = cast::snapshotRandom(w.network, w.cyclon);
  const auto adjacency = analysis::aliveAdjacency(snapshot);
  const auto giant = analysis::largestStronglyConnectedComponent(adjacency);
  if (rate <= 0.05) {
    EXPECT_GE(giant, snapshot.aliveCount() * 90 / 100)
        << "churn rate " << rate;
    // Outside the giant component: only a handful of stragglers.
    EXPECT_LE(analysis::stronglyConnectedComponentCount(adjacency),
              1 + (snapshot.aliveCount() - giant))
        << "churn rate " << rate;
  } else {
    // Beyond the design envelope the overlay frays but never collapses
    // to dust: a substantial connected core must survive.
    EXPECT_GE(giant, snapshot.aliveCount() / 5) << "churn rate " << rate;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ChurnProperties,
                         ::testing::Values(0.002, 0.01, 0.05, 0.10),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "rate" +
                                  std::to_string(static_cast<int>(
                                      info.param * 1000));
                         });

}  // namespace
}  // namespace vs07::gossip
