#include "gossip/view.hpp"

#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "common/alloc_probe.hpp"
#include "common/expect.hpp"
#include "gossip/cyclon.hpp"
#include "gossip/vicinity.hpp"

namespace vs07::gossip {
namespace {

PeerDescriptor entry(NodeId node, std::uint32_t age = 0) {
  return {node, age, node * 1000ULL};
}

TEST(View, StartsEmpty) {
  View v(0, 5);
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.capacity(), 5u);
  EXPECT_FALSE(v.full());
  EXPECT_EQ(v.owner(), 0u);
}

TEST(View, AddAndLookup) {
  View v(0, 5);
  v.add(entry(1));
  v.add(entry(2));
  EXPECT_EQ(v.size(), 2u);
  EXPECT_TRUE(v.contains(1));
  EXPECT_TRUE(v.contains(2));
  EXPECT_FALSE(v.contains(3));
  EXPECT_NE(v.indexOf(1), View::npos);
  EXPECT_EQ(v.indexOf(9), View::npos);
}

TEST(View, RejectsSelfEntry) {
  View v(7, 5);
  EXPECT_THROW(v.add(entry(7)), ContractViolation);
}

TEST(View, RejectsDuplicates) {
  View v(0, 5);
  v.add(entry(1));
  EXPECT_THROW(v.add(entry(1)), ContractViolation);
}

TEST(View, RejectsOverflow) {
  View v(0, 2);
  v.add(entry(1));
  v.add(entry(2));
  EXPECT_TRUE(v.full());
  EXPECT_THROW(v.add(entry(3)), ContractViolation);
}

TEST(View, ZeroCapacityRejected) {
  EXPECT_THROW(View(0, 0), ContractViolation);
}

TEST(View, RemoveAtSwapsWithLast) {
  View v(0, 5);
  v.add(entry(1));
  v.add(entry(2));
  v.add(entry(3));
  v.removeAt(0);
  EXPECT_EQ(v.size(), 2u);
  EXPECT_FALSE(v.contains(1));
  EXPECT_TRUE(v.contains(2));
  EXPECT_TRUE(v.contains(3));
}

TEST(View, RemoveNode) {
  View v(0, 5);
  v.add(entry(1));
  EXPECT_TRUE(v.removeNode(1));
  EXPECT_FALSE(v.removeNode(1));
  EXPECT_TRUE(v.empty());
}

TEST(View, OldestIndexFindsMaxAge) {
  View v(0, 5);
  v.add(entry(1, 3));
  v.add(entry(2, 9));
  v.add(entry(3, 1));
  EXPECT_EQ(v.at(v.oldestIndex()).node, 2u);
}

TEST(View, OldestOnEmptyThrows) {
  View v(0, 5);
  EXPECT_THROW(v.oldestIndex(), ContractViolation);
}

TEST(View, IncrementAges) {
  View v(0, 5);
  v.add(entry(1, 0));
  v.add(entry(2, 7));
  v.incrementAges();
  EXPECT_EQ(v.at(v.indexOf(1)).age, 1u);
  EXPECT_EQ(v.at(v.indexOf(2)).age, 8u);
}

TEST(View, RandomEntriesDistinctAndExcluding) {
  View v(0, 10);
  for (NodeId id = 1; id <= 10; ++id) v.add(entry(id));
  Rng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    const auto sample = v.randomEntries(4, /*exclude=*/5, rng);
    ASSERT_EQ(sample.size(), 4u);
    std::set<NodeId> ids;
    for (const auto& e : sample) {
      EXPECT_NE(e.node, 5u);
      ids.insert(e.node);
    }
    EXPECT_EQ(ids.size(), 4u);
  }
}

TEST(View, RandomEntriesWhenAskingForTooMany) {
  View v(0, 5);
  v.add(entry(1));
  v.add(entry(2));
  Rng rng(1);
  const auto sample = v.randomEntries(10, kNoNode, rng);
  EXPECT_EQ(sample.size(), 2u);
}

TEST(View, RandomEntriesUniformCoverage) {
  View v(0, 10);
  for (NodeId id = 1; id <= 10; ++id) v.add(entry(id));
  Rng rng(7);
  std::map<NodeId, int> hits;
  constexpr int kTrials = 10'000;
  for (int trial = 0; trial < kTrials; ++trial)
    for (const auto& e : v.randomEntries(3, kNoNode, rng)) ++hits[e.node];
  // Each of 10 nodes should appear in ~3/10 of trials.
  for (NodeId id = 1; id <= 10; ++id) {
    EXPECT_GT(hits[id], kTrials * 3 / 10 * 0.85) << "node " << id;
    EXPECT_LT(hits[id], kTrials * 3 / 10 * 1.15) << "node " << id;
  }
}

TEST(View, ClearEmptiesView) {
  View v(0, 3);
  v.add(entry(1));
  v.clear();
  EXPECT_TRUE(v.empty());
  v.add(entry(2));  // still usable
  EXPECT_EQ(v.size(), 1u);
}

TEST(View, RandomEntriesIntoMatchesAllocatingPathBitForBit) {
  // The scratch-buffer variant must consume the rng identically and
  // produce the identical sample — it is what keeps the refactored hot
  // path bit-compatible with the paper-model results.
  View v(0, 20);
  for (NodeId id = 1; id <= 17; ++id) v.add(entry(id, id % 5));
  Rng rngOld(123);
  Rng rngNew(123);
  std::vector<PeerDescriptor> scratch;
  for (std::size_t count : {0u, 1u, 7u, 16u, 17u, 30u}) {
    for (const NodeId exclude : {kNoNode, NodeId{4}, NodeId{17}}) {
      const auto allocated = v.randomEntries(count, exclude, rngOld);
      v.randomEntriesInto(count, exclude, rngNew, scratch);
      EXPECT_EQ(allocated, scratch)
          << "count=" << count << " exclude=" << exclude;
      // And the two streams stay in lockstep.
      EXPECT_EQ(rngOld(), rngNew());
    }
  }
}

TEST(View, InlineStorageUpToInlineCapacity) {
  // The paper's view lengths (cyc = vic = 20) must fit the inline buffer:
  // a population's views are then one dense block, no per-view heap.
  EXPECT_TRUE(View(0, 1).storesInline());
  EXPECT_TRUE(View(0, View::kInlineCapacity).storesInline());
  EXPECT_FALSE(View(0, View::kInlineCapacity + 1).storesInline());
  EXPECT_TRUE(View(0, Cyclon::Params{}.viewLength).storesInline());
  EXPECT_TRUE(View(0, Vicinity::Params{}.viewLength).storesInline());
}

TEST(View, InlineViewLifecycleNeverAllocates) {
  AllocScope scope;
  View v(3, View::kInlineCapacity);
  for (NodeId id = 0; id < View::kInlineCapacity; ++id)
    v.add(entry(id == 3 ? 99 : id));
  EXPECT_TRUE(v.full());
  v.incrementAges();
  v.removeAt(v.oldestIndex());
  v.removeNode(7);
  v.clear();
  for (NodeId id = 100; id < 100 + View::kInlineCapacity; ++id) v.add(entry(id));
  EXPECT_EQ(scope.allocations(), 0u)
      << "inline-capacity views must never touch the allocator";
}

TEST(View, HeapFallbackAllocatesOnceAndRetainsCapacity) {
  const std::uint32_t capacity = View::kInlineCapacity + 10;
  View v(0, capacity);
  EXPECT_FALSE(v.storesInline());
  AllocScope scope;
  // Fill, churn, clear, refill: the heap block was sized at construction
  // and never grows or moves.
  for (NodeId id = 1; id <= capacity; ++id) v.add(entry(id));
  EXPECT_TRUE(v.full());
  const auto* stable = v.entries().data();
  v.clear();
  EXPECT_EQ(v.capacity(), capacity);
  for (NodeId id = 200; id < 200 + capacity; ++id) v.add(entry(id));
  EXPECT_EQ(v.entries().data(), stable) << "entry buffer moved";
  EXPECT_EQ(scope.allocations(), 0u);
}

TEST(View, CopyPreservesStorageModeAndContents) {
  View inlineView(0, 5);
  inlineView.add(entry(1, 4));
  inlineView.add(entry(2, 1));
  View inlineCopy(inlineView);
  EXPECT_TRUE(inlineCopy.storesInline());
  ASSERT_EQ(inlineCopy.size(), 2u);
  EXPECT_EQ(inlineCopy.at(0), inlineView.at(0));
  EXPECT_EQ(inlineCopy.at(1), inlineView.at(1));
  inlineCopy.removeNode(1);
  EXPECT_TRUE(inlineView.contains(1)) << "copies must not share storage";

  View heapView(0, View::kInlineCapacity + 5);
  for (NodeId id = 1; id <= 21; ++id) heapView.add(entry(id));
  View heapCopy(heapView);
  EXPECT_FALSE(heapCopy.storesInline());
  ASSERT_EQ(heapCopy.size(), heapView.size());
  for (std::size_t i = 0; i < heapView.size(); ++i)
    EXPECT_EQ(heapCopy.at(i), heapView.at(i));
  heapCopy.removeNode(1);
  EXPECT_TRUE(heapView.contains(1));

  // Assignment across storage modes.
  inlineView = heapView;
  EXPECT_FALSE(inlineView.storesInline());
  EXPECT_EQ(inlineView.size(), heapView.size());

  // Heap-to-heap with mismatched capacities: the target's smaller block
  // must be reallocated, not reused (regression: a stale capacity check
  // once wrote past the old allocation).
  View smallHeap(0, View::kInlineCapacity + 2);
  for (NodeId id = 1; id <= View::kInlineCapacity + 2; ++id)
    smallHeap.add(entry(id));
  View bigHeap(0, View::kInlineCapacity + 30);
  for (NodeId id = 1; id <= View::kInlineCapacity + 30; ++id)
    bigHeap.add(entry(id));
  smallHeap = bigHeap;
  EXPECT_FALSE(smallHeap.storesInline());
  EXPECT_EQ(smallHeap.capacity(), bigHeap.capacity());
  ASSERT_EQ(smallHeap.size(), bigHeap.size());
  for (std::size_t i = 0; i < bigHeap.size(); ++i)
    EXPECT_EQ(smallHeap.at(i), bigHeap.at(i));
  // And the capacity must be usable: fill the copy to the brim.
  while (!smallHeap.full())
    smallHeap.add(entry(static_cast<NodeId>(1000 + smallHeap.size())));
  EXPECT_EQ(smallHeap.size(), View::kInlineCapacity + 30);
  // Shrinking direction (big over small) must right-size too: a later
  // add() beyond the new capacity has to trip the full() contract.
  View donor(0, View::kInlineCapacity + 2);
  donor.add(entry(7));
  bigHeap = donor;
  EXPECT_EQ(bigHeap.capacity(), View::kInlineCapacity + 2);
  EXPECT_EQ(bigHeap.size(), 1u);
  while (!bigHeap.full())
    bigHeap.add(entry(static_cast<NodeId>(2000 + bigHeap.size())));
  EXPECT_EQ(bigHeap.size(), View::kInlineCapacity + 2);
  EXPECT_THROW(bigHeap.add(entry(3000)), ContractViolation);

  heapView = View(9, 3);
  EXPECT_TRUE(heapView.storesInline());
  EXPECT_EQ(heapView.capacity(), 3u);
  EXPECT_EQ(heapView.owner(), 9u);
}

TEST(View, MoveTransfersEntries) {
  View v(0, View::kInlineCapacity + 2);
  for (NodeId id = 1; id <= 10; ++id) v.add(entry(id));
  View moved(std::move(v));
  EXPECT_EQ(moved.size(), 10u);
  EXPECT_TRUE(moved.contains(10));
}

TEST(View, RandomEntriesIntoReusesScratchCapacity) {
  View v(0, 20);
  for (NodeId id = 1; id <= 20; ++id) v.add(entry(id));
  Rng rng(9);
  std::vector<PeerDescriptor> scratch;
  v.randomEntriesInto(8, kNoNode, rng, scratch);
  const auto* data = scratch.data();
  const auto cap = scratch.capacity();
  for (int i = 0; i < 100; ++i) v.randomEntriesInto(8, kNoNode, rng, scratch);
  EXPECT_EQ(scratch.data(), data) << "scratch buffer was reallocated";
  EXPECT_EQ(scratch.capacity(), cap);
}

}  // namespace
}  // namespace vs07::gossip
