#include "overlay/graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/expect.hpp"

namespace vs07::overlay {
namespace {

TEST(Graph, AddAndQueryEdges) {
  Graph g(4);
  g.addEdge(0, 1);
  g.addUndirected(2, 3);
  EXPECT_TRUE(g.hasEdge(0, 1));
  EXPECT_FALSE(g.hasEdge(1, 0));
  EXPECT_TRUE(g.hasEdge(2, 3));
  EXPECT_TRUE(g.hasEdge(3, 2));
  EXPECT_EQ(g.edgeCount(), 3u);
}

TEST(Graph, RejectsSelfLoopsAndParallelEdges) {
  Graph g(3);
  EXPECT_THROW(g.addEdge(1, 1), ContractViolation);
  g.addEdge(0, 1);
  EXPECT_THROW(g.addEdge(0, 1), ContractViolation);
}

TEST(Graph, OutDegrees) {
  Graph g(3);
  g.addEdge(0, 1);
  g.addEdge(0, 2);
  g.addEdge(1, 2);
  EXPECT_EQ(g.outDegrees(), (std::vector<std::uint32_t>{2, 1, 0}));
}

TEST(RandomTree, HasExactlyTreeEdges) {
  Rng rng(1);
  const auto g = makeRandomTree(100, rng);
  EXPECT_EQ(g.edgeCount(), 2u * 99u);  // N-1 undirected edges
  EXPECT_TRUE(isStronglyConnected(g));
}

TEST(RandomTree, SingleNodeIsTrivial) {
  Rng rng(2);
  const auto g = makeRandomTree(1, rng);
  EXPECT_EQ(g.edgeCount(), 0u);
  EXPECT_TRUE(isStronglyConnected(g));
}

TEST(Star, HubConnectsEveryone) {
  const auto g = makeStar(10, 4);
  EXPECT_EQ(g.edgeCount(), 2u * 9u);
  EXPECT_EQ(g.neighbors(4).size(), 9u);
  for (NodeId id = 0; id < 10; ++id)
    if (id != 4) {
      EXPECT_EQ(g.neighbors(id), std::vector<NodeId>{4});
    }
  EXPECT_TRUE(isStronglyConnected(g));
}

TEST(Ring, EveryNodeHasTwoNeighbors) {
  const auto g = makeRing(12);
  EXPECT_EQ(g.edgeCount(), 24u);
  for (NodeId id = 0; id < 12; ++id) EXPECT_EQ(g.neighbors(id).size(), 2u);
  EXPECT_TRUE(isStronglyConnected(g));
}

TEST(Ring, TooSmallRejected) {
  EXPECT_THROW(makeRing(2), ContractViolation);
}

TEST(Clique, AllPairsConnected) {
  const auto g = makeClique(6);
  EXPECT_EQ(g.edgeCount(), 30u);  // 6*5 directed
  for (NodeId a = 0; a < 6; ++a)
    for (NodeId b = 0; b < 6; ++b)
      if (a != b) {
        EXPECT_TRUE(g.hasEdge(a, b));
      }
}

TEST(Harary, EvenConnectivityIsCirculant) {
  const auto g = makeHarary(4, 20);
  for (NodeId id = 0; id < 20; ++id)
    EXPECT_EQ(g.neighbors(id).size(), 4u);
  EXPECT_TRUE(isStronglyConnected(g));
}

TEST(Harary, RingIsHararyTwo) {
  const auto harary = makeHarary(2, 15);
  const auto ring = makeRing(15);
  EXPECT_EQ(harary.edgeCount(), ring.edgeCount());
  for (NodeId id = 0; id < 15; ++id)
    EXPECT_TRUE(harary.hasEdge(id, (id + 1) % 15));
}

TEST(Harary, OddConnectivityAddsDiameters) {
  const auto g = makeHarary(3, 16);
  // Degrees are t or t+1 (Harary's minimal construction).
  for (NodeId id = 0; id < 16; ++id) {
    EXPECT_GE(g.neighbors(id).size(), 3u);
    EXPECT_LE(g.neighbors(id).size(), 4u);
  }
  EXPECT_TRUE(g.hasEdge(0, 8));
  EXPECT_TRUE(isStronglyConnected(g));
}

TEST(Harary, ParameterValidation) {
  EXPECT_THROW(makeHarary(1, 10), ContractViolation);
  EXPECT_THROW(makeHarary(10, 10), ContractViolation);
}

TEST(Harary, SurvivesUpToTMinusOneFailures) {
  // H(t, n) stays connected after any t-1 node removals. Spot-check by
  // exhaustive single and sampled double removals for t = 3.
  const std::uint32_t n = 12;
  const auto g = makeHarary(3, n);
  // Removal is simulated by skipping the removed nodes during BFS.
  auto connectedWithout = [&](std::vector<NodeId> removed) {
    std::vector<std::uint8_t> blocked(n, 0);
    for (const NodeId r : removed) blocked[r] = 1;
    NodeId start = 0;
    while (blocked[start]) ++start;
    std::vector<std::uint8_t> seen(n, 0);
    std::vector<NodeId> stack{start};
    seen[start] = 1;
    std::uint32_t count = 1;
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      for (const NodeId v : g.neighbors(u)) {
        if (blocked[v] || seen[v]) continue;
        seen[v] = 1;
        ++count;
        stack.push_back(v);
      }
    }
    return count == n - removed.size();
  };
  for (NodeId a = 0; a < n; ++a)
    for (NodeId b = a + 1; b < n; ++b)
      EXPECT_TRUE(connectedWithout({a, b}))
          << "removing " << a << "," << b << " disconnected H(3,12)";
}

TEST(StronglyConnected, DetectsDirectedBreakage) {
  Graph g(3);
  g.addEdge(0, 1);
  g.addEdge(1, 2);
  EXPECT_FALSE(isStronglyConnected(g));  // no way back to 0
  g.addEdge(2, 0);
  EXPECT_TRUE(isStronglyConnected(g));
}

TEST(StronglyConnected, DisconnectedGraph) {
  Graph g(4);
  g.addUndirected(0, 1);
  g.addUndirected(2, 3);
  EXPECT_FALSE(isStronglyConnected(g));
}

}  // namespace
}  // namespace vs07::overlay
