#include "runtime/wire.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "net/codec.hpp"

namespace vs07::runtime {
namespace {

net::Message samplePayload() {
  net::Message m;
  m.kind = net::MessageKind::Data;
  m.channel = 2;
  m.from = 7;
  m.dataId = 0x1122334455667788ULL;
  m.hop = 3;
  m.entries = {{1, 4, 0xABCD}, {9, 0, 0x4321}};
  return m;
}

std::vector<AddressEntry> sampleAnnex() {
  return {{1, {0x7F000001, 9001}}, {9, {0x0A0B0C0D, 40000}}};
}

TEST(Wire, GossipFrameRoundTrip) {
  const FrameHeader header{FrameKind::kGossip, 7, 9999};
  const net::Message payload = samplePayload();
  const auto annex = sampleAnnex();
  std::vector<std::uint8_t> bytes;
  encodeFrame(header, &payload, annex, bytes);

  net::Message decodedPayload;
  std::vector<AddressEntry> decodedAnnex;
  const DecodedFrame frame = decodeFrame(bytes, decodedPayload, decodedAnnex);
  EXPECT_EQ(frame.header.kind, FrameKind::kGossip);
  EXPECT_EQ(frame.header.sender, 7u);
  EXPECT_EQ(frame.header.senderPort, 9999);
  EXPECT_TRUE(frame.hasPayload);
  EXPECT_EQ(decodedPayload, payload);
  EXPECT_EQ(decodedAnnex, annex);
}

TEST(Wire, ControlFrameHasNoPayload) {
  const FrameHeader header{FrameKind::kHello, 3, 1234};
  std::vector<std::uint8_t> bytes;
  encodeFrame(header, nullptr, {}, bytes);

  net::Message payload;
  std::vector<AddressEntry> annex;
  const DecodedFrame frame = decodeFrame(bytes, payload, annex);
  EXPECT_EQ(frame.header.kind, FrameKind::kHello);
  EXPECT_FALSE(frame.hasPayload);
  EXPECT_TRUE(annex.empty());
}

TEST(Wire, EncodeReusesBufferCapacity) {
  const FrameHeader header{FrameKind::kWelcome, 0, 5555};
  const auto annex = sampleAnnex();
  std::vector<std::uint8_t> bytes;
  encodeFrame(header, nullptr, annex, bytes);
  const auto capacity = bytes.capacity();
  encodeFrame(header, nullptr, {}, bytes);  // smaller frame, same buffer
  EXPECT_GE(bytes.capacity(), capacity);
  net::Message payload;
  std::vector<AddressEntry> decodedAnnex;
  EXPECT_NO_THROW(decodeFrame(bytes, payload, decodedAnnex));
}

net::CodecErrorKind decodeFailure(std::span<const std::uint8_t> bytes) {
  net::Message payload;
  std::vector<AddressEntry> annex;
  try {
    (void)decodeFrame(bytes, payload, annex);
  } catch (const net::CodecError& error) {
    return error.kind();
  }
  ADD_FAILURE() << "decodeFrame unexpectedly succeeded";
  return net::CodecErrorKind::kTruncated;
}

std::vector<std::uint8_t> validFrame() {
  const FrameHeader header{FrameKind::kGossip, 7, 9999};
  const net::Message payload = samplePayload();
  const auto annex = sampleAnnex();
  std::vector<std::uint8_t> bytes;
  encodeFrame(header, &payload, annex, bytes);
  return bytes;
}

TEST(Wire, RejectsBadMagic) {
  auto bytes = validFrame();
  bytes[0] ^= 0xFF;
  EXPECT_EQ(decodeFailure(bytes), net::CodecErrorKind::kBadMagic);
}

TEST(Wire, RejectsBadVersion) {
  auto bytes = validFrame();
  bytes[2] = kFrameVersion + 1;
  EXPECT_EQ(decodeFailure(bytes), net::CodecErrorKind::kBadVersion);
}

TEST(Wire, RejectsBadKind) {
  auto bytes = validFrame();
  bytes[3] = 0;
  EXPECT_EQ(decodeFailure(bytes), net::CodecErrorKind::kBadKind);
  bytes[3] = kFrameKinds + 1;
  EXPECT_EQ(decodeFailure(bytes), net::CodecErrorKind::kBadKind);
}

TEST(Wire, RejectsOversizedPayloadLength) {
  auto bytes = validFrame();
  // u32 len lives at offset 10; claim > kMaxFramePayload.
  const std::uint32_t huge = kMaxFramePayload + 1;
  bytes[10] = static_cast<std::uint8_t>(huge);
  bytes[11] = static_cast<std::uint8_t>(huge >> 8);
  bytes[12] = static_cast<std::uint8_t>(huge >> 16);
  bytes[13] = static_cast<std::uint8_t>(huge >> 24);
  EXPECT_EQ(decodeFailure(bytes), net::CodecErrorKind::kBadLength);
}

TEST(Wire, RejectsTruncationAtEveryPrefix) {
  const auto bytes = validFrame();
  net::Message payload;
  std::vector<AddressEntry> annex;
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const std::span<const std::uint8_t> prefix(bytes.data(), cut);
    EXPECT_THROW((void)decodeFrame(prefix, payload, annex), net::CodecError)
        << "prefix length " << cut;
  }
}

TEST(Wire, RejectsTrailingBytes) {
  auto bytes = validFrame();
  bytes.push_back(0);
  EXPECT_EQ(decodeFailure(bytes), net::CodecErrorKind::kTrailing);
}

TEST(Wire, RejectsHugeAnnexCount) {
  const FrameHeader header{FrameKind::kHello, 1, 2222};
  std::vector<std::uint8_t> bytes;
  encodeFrame(header, nullptr, {}, bytes);
  // The trailing u16 annex count is the last two bytes of this frame.
  bytes[bytes.size() - 2] = 0xFF;
  bytes[bytes.size() - 1] = 0xFF;
  EXPECT_EQ(decodeFailure(bytes), net::CodecErrorKind::kBadCount);
}

// Mutation fuzz across both layers: flipped bytes of a valid frame must
// either decode (header fields within range) or throw a typed CodecError
// — never crash or hang.
TEST(Wire, MutatedFramesNeverCrash) {
  Rng rng(1337);
  const auto base = validFrame();
  net::Message payload;
  std::vector<AddressEntry> annex;
  for (int trial = 0; trial < 4000; ++trial) {
    auto bytes = base;
    const auto flips = 1 + rng.below(4);
    for (std::uint64_t f = 0; f < flips; ++f)
      bytes[rng.below(bytes.size())] ^= static_cast<std::uint8_t>(1 + rng());
    try {
      (void)decodeFrame(bytes, payload, annex);
    } catch (const net::CodecError& error) {
      EXPECT_NE(net::codecErrorKindName(error.kind()), nullptr);
    }
  }
}

// Random byte strings (not derived from a valid frame) are rejected or
// decoded, never out-of-bounds.
TEST(Wire, RandomBytesNeverCrash) {
  Rng rng(99);
  net::Message payload;
  std::vector<AddressEntry> annex;
  for (int trial = 0; trial < 3000; ++trial) {
    std::vector<std::uint8_t> bytes(rng.below(96));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng());
    try {
      (void)decodeFrame(bytes, payload, annex);
    } catch (const net::CodecError&) {
      // expected for nearly all inputs
    }
  }
}

TEST(Wire, ParseAddressAcceptsNumericAndLocalhost) {
  const PeerAddress a = parseAddress("10.1.2.3", 8080);
  EXPECT_TRUE(a.valid());
  EXPECT_EQ(a.ipv4, 0x0A010203u);
  EXPECT_EQ(a.port, 8080);
  const PeerAddress b = parseAddress("localhost", 1);
  EXPECT_EQ(b.ipv4, 0x7F000001u);
  EXPECT_FALSE(parseAddress("not-a-host", 80).valid());
  EXPECT_FALSE(parseAddress("1.2.3", 80).valid());
  EXPECT_FALSE(parseAddress("10.1.2.3", 0).valid());
}

TEST(Wire, FormatAddressRendersDottedQuad) {
  EXPECT_EQ(formatAddress({0x7F000001, 9000}), "127.0.0.1:9000");
}

TEST(Wire, PeerTableLearnsAndCounts) {
  PeerTable table(4);
  EXPECT_EQ(table.knownCount(), 0u);
  EXPECT_FALSE(table.knows(2));
  table.learn(2, {0x7F000001, 7777});
  EXPECT_TRUE(table.knows(2));
  EXPECT_EQ(table.knownCount(), 1u);
  table.learn(2, {0x7F000001, 8888});  // rebind: last writer wins
  EXPECT_EQ(table.lookup(2).port, 8888);
  EXPECT_EQ(table.knownCount(), 1u);
  table.learn(3, {0, 0});  // invalid: ignored
  EXPECT_FALSE(table.knows(3));

  std::vector<AddressEntry> out;
  table.learn(0, {0x7F000001, 1111});
  table.fillKnown(8, /*exclude=*/2, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].node, 0u);
}

}  // namespace
}  // namespace vs07::runtime
