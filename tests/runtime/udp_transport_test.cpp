// Loopback integration tests for the real-socket runtime: two (or more)
// UdpTransport instances in one process exchanging real datagrams over
// 127.0.0.1. Environments without sockets (restricted sandboxes) make
// the transport constructor throw; every test skips in that case rather
// than fail.
#include "runtime/udp_transport.hpp"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <memory>
#include <optional>
#include <stdexcept>
#include <vector>

#include "gossip/cyclon.hpp"
#include "net/delivery_sink.hpp"
#include "runtime/bootstrap.hpp"
#include "sim/network.hpp"
#include "sim/router.hpp"

namespace vs07::runtime {
namespace {

/// Collects everything a transport delivers.
class CaptureSink final : public net::DeliverySink {
 public:
  void deliver(NodeId to, net::Message&& msg) override {
    received.push_back({to, msg});
  }
  struct Item {
    NodeId to;
    net::Message msg;
  };
  std::vector<Item> received;
};

/// One in-process endpoint: transport + capture sink + address book.
struct Endpoint {
  explicit Endpoint(NodeId id, std::uint32_t nodes)
      : peers(nodes),
        transport({.selfId = id, .port = 0}, peers, sink) {}

  PeerAddress addr() const {
    return {0x7F000001, transport.listenPort()};
  }

  CaptureSink sink;
  PeerTable peers;
  UdpTransport transport;
};

/// Builds both endpoints, or nullopt when this host has no sockets.
std::optional<std::pair<std::unique_ptr<Endpoint>, std::unique_ptr<Endpoint>>>
makePair() {
  try {
    auto a = std::make_unique<Endpoint>(0, 2);
    auto b = std::make_unique<Endpoint>(1, 2);
    return std::make_pair(std::move(a), std::move(b));
  } catch (const std::runtime_error&) {
    return std::nullopt;
  }
}

#define SKIP_WITHOUT_SOCKETS(pair)                                  \
  if (!(pair)) GTEST_SKIP() << "loopback sockets unavailable here"

/// Pumps both transports until `done` or the budget runs out.
template <typename Done>
bool pumpUntil(Endpoint& a, Endpoint& b, Done done) {
  for (int i = 0; i < 500 && !done(); ++i) {
    a.transport.pump(2);
    b.transport.pump(2);
  }
  return done();
}

net::Message dataMessage(NodeId from, std::size_t entryCount) {
  net::Message m;
  m.kind = net::MessageKind::Data;
  m.from = from;
  m.dataId = 0xD00D;
  m.hop = 1;
  for (std::size_t i = 0; i < entryCount; ++i)
    m.entries.push_back({static_cast<NodeId>(i % 2), 1, i});
  return m;
}

TEST(UdpTransport, DeliversGossipOverLoopback) {
  auto pair = makePair();
  SKIP_WITHOUT_SOCKETS(pair);
  auto& [a, b] = *pair;
  a->peers.learn(1, b->addr());

  a->transport.send(1, dataMessage(0, 3));
  ASSERT_TRUE(pumpUntil(*a, *b, [&] { return !b->sink.received.empty(); }));

  const auto& item = b->sink.received.front();
  EXPECT_EQ(item.to, 1u);  // delivered as the receiving process's self
  EXPECT_EQ(item.msg.from, 0u);
  EXPECT_EQ(item.msg.dataId, 0xD00Du);
  ASSERT_EQ(item.msg.entries.size(), 3u);
  EXPECT_EQ(a->transport.datagramsSent(), 1u);
  EXPECT_EQ(b->transport.datagramsReceived(), 1u);
  EXPECT_EQ(b->transport.fallbackReceived(), 0u);
}

TEST(UdpTransport, ReceiverLearnsSenderAddressFromFrame) {
  auto pair = makePair();
  SKIP_WITHOUT_SOCKETS(pair);
  auto& [a, b] = *pair;
  a->peers.learn(1, b->addr());
  EXPECT_FALSE(b->peers.knows(0));

  a->transport.send(1, dataMessage(0, 1));
  ASSERT_TRUE(pumpUntil(*a, *b, [&] { return !b->sink.received.empty(); }));

  // The frame header carried A's listen port; the source IP came from
  // recvfrom. B can now reply without ever being configured with A.
  ASSERT_TRUE(b->peers.knows(0));
  EXPECT_EQ(b->peers.lookup(0), a->addr());
  b->transport.send(0, dataMessage(1, 1));
  ASSERT_TRUE(pumpUntil(*a, *b, [&] { return !a->sink.received.empty(); }));
}

TEST(UdpTransport, SendToUnknownAddressCountsDrop) {
  auto pair = makePair();
  SKIP_WITHOUT_SOCKETS(pair);
  auto& [a, b] = *pair;
  (void)b;
  a->transport.send(1, dataMessage(0, 1));
  EXPECT_EQ(a->transport.droppedNoAddress(), 1u);
  EXPECT_EQ(a->transport.datagramsSent(), 0u);
}

TEST(UdpTransport, HardSendErrorIsCountedNotSent) {
  // Regression: a hard sendto() failure used to count the frame as
  // *sent* (datagramsSent_ overcounted and the loss was invisible).
  // 255.255.255.255 without SO_BROADCAST fails immediately with EACCES —
  // a hard error, not EWOULDBLOCK — so the frame must land in
  // droppedSendError, not datagramsSent and not the retry queue.
  auto pair = makePair();
  SKIP_WITHOUT_SOCKETS(pair);
  auto& [a, b] = *pair;
  a->peers.learn(1, PeerAddress{0xFFFFFFFF, b->transport.listenPort()});

  a->transport.send(1, dataMessage(0, 1));
  EXPECT_EQ(a->transport.droppedSendError(), 1u);
  EXPECT_EQ(a->transport.datagramsSent(), 0u);
  EXPECT_EQ(a->transport.retryPool().inUse(), 0u);

  // The transport keeps working: re-learning a good address delivers.
  a->peers.learn(1, b->addr());
  a->transport.send(1, dataMessage(0, 1));
  ASSERT_TRUE(pumpUntil(*a, *b, [&] { return !b->sink.received.empty(); }));
  EXPECT_EQ(a->transport.datagramsSent(), 1u);
  EXPECT_EQ(a->transport.droppedSendError(), 1u);
}

TEST(UdpTransport, OversizedFrameTakesTcpFallback) {
  auto pair = makePair();
  SKIP_WITHOUT_SOCKETS(pair);
  auto& [a, b] = *pair;
  a->peers.learn(1, b->addr());

  // ~200 entries x 16 bytes each is well over the 1400-byte MTU.
  a->transport.send(1, dataMessage(0, 200));
  ASSERT_TRUE(pumpUntil(*a, *b, [&] { return !b->sink.received.empty(); }));

  EXPECT_EQ(a->transport.datagramsSent(), 0u);
  EXPECT_EQ(a->transport.fallbackSent(), 1u);
  EXPECT_EQ(b->transport.fallbackReceived(), 1u);
  EXPECT_EQ(b->sink.received.front().msg.entries.size(), 200u);
}

TEST(UdpTransport, MalformedDatagramIsCountedNotFatal) {
  auto pair = makePair();
  SKIP_WITHOUT_SOCKETS(pair);
  auto& [a, b] = *pair;
  a->peers.learn(1, b->addr());

  // A valid frame after garbage proves the transport keeps running.
  int raw = ::socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(raw, 0);
  const std::vector<std::uint8_t> garbage = {0xDE, 0xAD, 0xBE, 0xEF};
  sockaddr_in dst{};
  dst.sin_family = AF_INET;
  dst.sin_port = htons(b->transport.listenPort());
  dst.sin_addr.s_addr = htonl(0x7F000001);
  ASSERT_GT(::sendto(raw, garbage.data(), garbage.size(), 0,
                     reinterpret_cast<const sockaddr*>(&dst), sizeof(dst)),
            0);
  ::close(raw);
  a->transport.send(1, dataMessage(0, 1));
  ASSERT_TRUE(pumpUntil(*a, *b, [&] { return !b->sink.received.empty(); }));
  EXPECT_EQ(b->transport.droppedMalformed(), 1u);
}

// The full ladder over real sockets: a seed and a joiner, each with its
// own process-local protocol stack, reach kJoined and seed each other's
// CYCLON views — the in-process twin of what vs07_node does at startup.
TEST(UdpTransport, BootstrapLadderJoins) {
  struct Stack {
    Stack(NodeId id, bool isSeed, PeerAddress seedAddr)
        : network(2, sim::populationSeed(7)),
          router(network),
          peers(2),
          transport({.selfId = id, .port = 0}, peers, router),
          cyclon(network, transport, router,
                 {.viewLength = 4, .shuffleLength = 2}, 7 + id),
          bootstrap({.selfId = id, .isSeed = isSeed, .seedAddr = seedAddr},
                    transport, peers, cyclon) {}

    sim::Network network;
    sim::MessageRouter router;
    PeerTable peers;
    UdpTransport transport;
    gossip::Cyclon cyclon;
    Bootstrap bootstrap;
  };

  std::unique_ptr<Stack> seed;
  try {
    seed = std::make_unique<Stack>(0, true, PeerAddress{});
  } catch (const std::runtime_error&) {
    GTEST_SKIP() << "loopback sockets unavailable here";
  }
  Stack joiner(1, false,
               PeerAddress{0x7F000001, seed->transport.listenPort()});

  EXPECT_TRUE(seed->bootstrap.joined());   // seeds start joined
  EXPECT_FALSE(joiner.bootstrap.joined());

  std::uint64_t nowMs = 0;
  for (int i = 0; i < 500 && !joiner.bootstrap.joined(); ++i) {
    joiner.bootstrap.tick(nowMs);
    seed->bootstrap.tick(nowMs);
    joiner.transport.pump(2);
    seed->transport.pump(2);
    nowMs += 10;
  }
  ASSERT_TRUE(joiner.bootstrap.joined());
  EXPECT_EQ(seed->bootstrap.welcomed(), 1u);
  // The ladder seeded both views and both address books.
  EXPECT_TRUE(seed->cyclon.view(0).contains(1));
  EXPECT_TRUE(joiner.cyclon.view(1).contains(0));
  EXPECT_TRUE(seed->peers.knows(1));
  EXPECT_TRUE(joiner.peers.knows(0));
}

}  // namespace
}  // namespace vs07::runtime
