// Regression tests for re-entrant transport use: handlers that send new
// messages from inside a delivery callback (every forwarding protocol
// does this). An earlier DelayedTransport::tick() iterated its queue
// while handlers appended to it and then overwrote the queue, silently
// dropping everything sent during delivery.
#include <gtest/gtest.h>

#include "net/transport.hpp"

namespace vs07::net {
namespace {

Message dataMessage(std::uint64_t id) {
  Message m;
  m.kind = MessageKind::Data;
  m.from = 0;
  m.dataId = id;
  return m;
}

TEST(DelayedTransport, SendsFromDeliveryHandlerAreNotLost) {
  DelayedTransport* transportPtr = nullptr;
  std::vector<std::uint64_t> delivered;
  DelayedTransport transport(
      [&](NodeId /*to*/, const Message& m) {
        delivered.push_back(m.dataId);
        // Chain: each delivery up to id 10 sends the next message.
        if (m.dataId < 10) transportPtr->send(1, dataMessage(m.dataId + 1));
      },
      /*min=*/1, /*max=*/1);
  transportPtr = &transport;

  transport.send(1, dataMessage(1));
  for (int tick = 0; tick < 20; ++tick) transport.tick();
  ASSERT_EQ(delivered.size(), 10u);
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(delivered[i], i + 1);
}

TEST(DelayedTransport, ReentrantSendsRespectLatency) {
  DelayedTransport* transportPtr = nullptr;
  int delivered = 0;
  DelayedTransport transport(
      [&](NodeId, const Message& m) {
        ++delivered;
        if (m.dataId == 1) transportPtr->send(1, dataMessage(2));
      },
      /*min=*/2, /*max=*/2);
  transportPtr = &transport;

  transport.send(1, dataMessage(1));
  transport.tick();
  EXPECT_EQ(delivered, 0);
  transport.tick();  // message 1 delivered; message 2 queued for +2
  EXPECT_EQ(delivered, 1);
  transport.tick();
  EXPECT_EQ(delivered, 1);
  transport.tick();
  EXPECT_EQ(delivered, 2);
}

TEST(DelayedTransport, DrainHandlesReentrantChains) {
  DelayedTransport* transportPtr = nullptr;
  int delivered = 0;
  DelayedTransport transport(
      [&](NodeId, const Message& m) {
        ++delivered;
        if (m.dataId < 50) transportPtr->send(1, dataMessage(m.dataId + 1));
      },
      /*min=*/1, /*max=*/3, /*seed=*/5);
  transportPtr = &transport;
  transport.send(1, dataMessage(1));
  transport.drain();
  EXPECT_EQ(delivered, 50);
  EXPECT_EQ(transport.inFlight(), 0u);
}

}  // namespace
}  // namespace vs07::net
