#include "net/codec.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace vs07::net {
namespace {

Message sampleMessage() {
  Message m;
  m.kind = MessageKind::CyclonRequest;
  m.channel = 3;
  m.from = 42;
  m.dataId = 0xDEADBEEFCAFEBABEULL;
  m.hop = 7;
  m.entries = {{1, 10, 0x1111}, {2, 0, 0x2222}, {kNoNode, 99, 0}};
  m.flags = kFlagPullAnswer;
  m.ids = {0xAAAA, 0xBBBB, 1};
  return m;
}

TEST(Codec, RoundTripAllFields) {
  const Message original = sampleMessage();
  const auto bytes = encode(original);
  const Message decoded = decode(bytes);
  EXPECT_EQ(decoded, original);
}

TEST(Codec, RoundTripEmptyEntries) {
  Message m;
  m.kind = MessageKind::Data;
  m.from = 0;
  m.dataId = 1;
  m.hop = 0;
  EXPECT_EQ(decode(encode(m)), m);
}

TEST(Codec, RoundTripEveryKind) {
  for (const auto kind :
       {MessageKind::CyclonRequest, MessageKind::CyclonReply,
        MessageKind::VicinityRequest, MessageKind::VicinityReply,
        MessageKind::Data, MessageKind::PullRequest}) {
    Message m;
    m.kind = kind;
    m.from = 5;
    EXPECT_EQ(decode(encode(m)).kind, kind);
  }
}

TEST(Codec, TruncatedInputThrows) {
  const auto bytes = encode(sampleMessage());
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const std::span<const std::uint8_t> prefix(bytes.data(), cut);
    EXPECT_THROW(decode(prefix), CodecError) << "prefix length " << cut;
  }
}

TEST(Codec, TrailingBytesThrow) {
  auto bytes = encode(sampleMessage());
  bytes.push_back(0);
  EXPECT_THROW(decode(bytes), CodecError);
}

TEST(Codec, BadVersionThrows) {
  auto bytes = encode(sampleMessage());
  bytes[0] = 0xFF;
  EXPECT_THROW(decode(bytes), CodecError);
}

TEST(Codec, BadKindThrows) {
  auto bytes = encode(sampleMessage());
  bytes[1] = 0;  // kinds start at 1
  EXPECT_THROW(decode(bytes), CodecError);
  bytes[1] = kMessageKinds + 1;  // beyond PullRequest
  EXPECT_THROW(decode(bytes), CodecError);
}

TEST(Codec, BadChannelThrows) {
  auto bytes = encode(sampleMessage());
  bytes[2] = kMaxChannel + 1;
  EXPECT_THROW(decode(bytes), CodecError);
}

TEST(Codec, HugeCountsRejected) {
  Message m;
  m.kind = MessageKind::Data;
  auto bytes = encode(m);
  // An empty message ends with two zero u32 counts (entries, then ids);
  // forge a huge value into each in turn.
  for (const std::size_t countOffset :
       {bytes.size() - 4, bytes.size() - 8}) {
    auto forged = bytes;
    forged[countOffset] = 0xFF;
    forged[countOffset + 1] = 0xFF;
    forged[countOffset + 2] = 0xFF;
    forged[countOffset + 3] = 0x7F;
    EXPECT_THROW(decode(forged), CodecError);
  }
}

TEST(Codec, RandomBytesNeverCrash) {
  // Fuzz-style property: arbitrary byte strings either decode into a
  // message that re-encodes to the same bytes, or throw CodecError —
  // never anything else.
  Rng rng(77);
  for (int trial = 0; trial < 3000; ++trial) {
    std::vector<std::uint8_t> bytes(rng.below(64));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng());
    try {
      const Message m = decode(bytes);
      EXPECT_EQ(encode(m), bytes);
    } catch (const CodecError&) {
      // expected for malformed input
    }
  }
}

TEST(Codec, ByteOrderIsLittleEndian) {
  ByteWriter w;
  w.u32(0x01020304);
  const auto& bytes = w.bytes();
  ASSERT_EQ(bytes.size(), 4u);
  EXPECT_EQ(bytes[0], 0x04);
  EXPECT_EQ(bytes[3], 0x01);
}

TEST(Codec, ReaderPrimitivesRoundTrip) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0x89ABCDEF);
  w.u64(0x0123456789ABCDEFULL);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0x89ABCDEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_TRUE(r.exhausted());
}

TEST(Codec, ReaderPastEndThrows) {
  ByteWriter w;
  w.u8(1);
  ByteReader r(w.bytes());
  r.u8();
  EXPECT_THROW(r.u8(), CodecError);
}

CodecErrorKind kindOfFailure(std::span<const std::uint8_t> bytes) {
  try {
    (void)decode(bytes);
  } catch (const CodecError& error) {
    return error.kind();
  }
  ADD_FAILURE() << "decode unexpectedly succeeded";
  return CodecErrorKind::kTruncated;
}

TEST(Codec, ErrorKindsAreTyped) {
  const auto bytes = encode(sampleMessage());

  auto truncated = bytes;
  truncated.resize(3);
  EXPECT_EQ(kindOfFailure(truncated), CodecErrorKind::kTruncated);

  auto badVersion = bytes;
  badVersion[0] = kWireVersion + 1;
  EXPECT_EQ(kindOfFailure(badVersion), CodecErrorKind::kBadVersion);

  auto badKind = bytes;
  badKind[1] = kMessageKinds + 1;
  EXPECT_EQ(kindOfFailure(badKind), CodecErrorKind::kBadKind);

  auto badChannel = bytes;
  badChannel[2] = kMaxChannel + 1;
  EXPECT_EQ(kindOfFailure(badChannel), CodecErrorKind::kBadChannel);

  auto trailing = bytes;
  trailing.push_back(0);
  EXPECT_EQ(kindOfFailure(trailing), CodecErrorKind::kTrailing);

  Message empty;
  empty.kind = MessageKind::Data;
  auto badCount = encode(empty);
  badCount[badCount.size() - 1] = 0x7F;  // ids count -> ~2 billion
  EXPECT_EQ(kindOfFailure(badCount), CodecErrorKind::kBadCount);
}

TEST(Codec, ErrorKindNamesAreStable) {
  EXPECT_STREQ(codecErrorKindName(CodecErrorKind::kTruncated), "truncated");
  EXPECT_STREQ(codecErrorKindName(CodecErrorKind::kBadVersion),
               "bad-version");
}

TEST(Codec, EncodeIntoAppendsAfterExistingBytes) {
  const Message m = sampleMessage();
  std::vector<std::uint8_t> out = {0xAA, 0xBB};
  encodeInto(m, out);
  ASSERT_GT(out.size(), 2u);
  EXPECT_EQ(out[0], 0xAA);
  EXPECT_EQ(out[1], 0xBB);
  const std::span<const std::uint8_t> tail(out.data() + 2, out.size() - 2);
  EXPECT_EQ(decode(tail), m);
}

TEST(Codec, DecodeIntoReusesBuffersAcrossMessages) {
  Message scratch;
  const Message big = sampleMessage();
  decodeInto(encode(big), scratch);
  EXPECT_EQ(scratch, big);
  const auto entryCapacity = scratch.entries.capacity();

  Message small;
  small.kind = MessageKind::Data;
  small.from = 9;
  decodeInto(encode(small), scratch);
  EXPECT_EQ(scratch, small);
  // reset() keeps capacity: no reallocation when shrinking.
  EXPECT_GE(scratch.entries.capacity(), entryCapacity);
}

TEST(Codec, DecodeIntoThrowLeavesScratchReusable) {
  Message scratch;
  auto bytes = encode(sampleMessage());
  bytes.resize(bytes.size() - 1);
  EXPECT_THROW(decodeInto(bytes, scratch), CodecError);
  const Message m = sampleMessage();
  decodeInto(encode(m), scratch);
  EXPECT_EQ(scratch, m);
}

TEST(Codec, PatchU32Overwrites) {
  ByteWriter w;
  w.u16(7);
  const std::size_t at = w.size();
  w.u32(0);
  w.u8(3);
  w.patchU32(at, 0xCAFEF00D);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.u16(), 7);
  EXPECT_EQ(r.u32(), 0xCAFEF00Du);
  EXPECT_EQ(r.u8(), 3);
}

TEST(Codec, ExternalWriterAppendsInPlace) {
  std::vector<std::uint8_t> buf = {1};
  ByteWriter w(buf);
  w.u16(0x0302);
  EXPECT_EQ(buf, (std::vector<std::uint8_t>{1, 2, 3}));
}

TEST(Codec, BytesSpanConsumesAndBoundsChecks) {
  ByteWriter w;
  w.u32(0x04030201);
  ByteReader r(w.bytes());
  const auto span = r.bytesSpan(3);
  ASSERT_EQ(span.size(), 3u);
  EXPECT_EQ(span[0], 0x01);
  EXPECT_THROW(r.bytesSpan(2), CodecError);
  EXPECT_EQ(r.u8(), 0x04);
}

// Mutation fuzz: flip bytes of valid encodings; decode must either throw
// a typed CodecError or produce a message that re-encodes canonically.
TEST(Codec, MutatedEncodingsNeverCrash) {
  Rng rng(4242);
  const auto base = encode(sampleMessage());
  for (int trial = 0; trial < 4000; ++trial) {
    auto bytes = base;
    const auto flips = 1 + rng.below(4);
    for (std::uint64_t f = 0; f < flips; ++f)
      bytes[rng.below(bytes.size())] ^= static_cast<std::uint8_t>(1 + rng());
    try {
      const Message m = decode(bytes);
      EXPECT_EQ(encode(m), bytes);
    } catch (const CodecError& error) {
      EXPECT_NE(codecErrorKindName(error.kind()), nullptr);
    }
  }
}

// Property-style sweep: random messages of random shapes must round-trip.
TEST(Codec, RandomRoundTripSweep) {
  Rng rng(2024);
  for (int trial = 0; trial < 500; ++trial) {
    Message m;
    m.kind = static_cast<MessageKind>(1 + rng.below(kMessageKinds));
    m.channel = static_cast<std::uint8_t>(rng.below(kMaxChannel + 1));
    m.from = static_cast<NodeId>(rng());
    m.dataId = rng();
    m.hop = static_cast<std::uint32_t>(rng());
    const auto count = rng.below(40);
    for (std::uint64_t i = 0; i < count; ++i)
      m.entries.push_back({static_cast<NodeId>(rng()),
                           static_cast<std::uint32_t>(rng()), rng()});
    m.flags = static_cast<std::uint8_t>(rng.below(2));
    const auto idCount = rng.below(30);
    for (std::uint64_t i = 0; i < idCount; ++i) m.ids.push_back(rng());
    EXPECT_EQ(decode(encode(m)), m);
  }
}

}  // namespace
}  // namespace vs07::net
