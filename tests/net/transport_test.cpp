#include "net/transport.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/expect.hpp"

namespace vs07::net {
namespace {

struct Delivery {
  NodeId to;
  Message msg;
};

Message dataMessage(NodeId from, std::uint64_t id) {
  Message m;
  m.kind = MessageKind::Data;
  m.from = from;
  m.dataId = id;
  return m;
}

TEST(ImmediateTransport, DeliversSynchronously) {
  std::vector<Delivery> log;
  ImmediateTransport t(
      [&](NodeId to, const Message& m) { log.push_back({to, m}); });
  t.send(7, dataMessage(1, 100));
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].to, 7u);
  EXPECT_EQ(log[0].msg.dataId, 100u);
  EXPECT_EQ(t.sent(), 1u);
}

TEST(ImmediateTransport, NullSinkRejected) {
  EXPECT_THROW(ImmediateTransport(nullptr), ContractViolation);
}

TEST(DelayedTransport, FixedLatency) {
  std::vector<Delivery> log;
  DelayedTransport t(
      [&](NodeId to, const Message& m) { log.push_back({to, m}); },
      /*min=*/2, /*max=*/2);
  t.send(1, dataMessage(0, 5));
  EXPECT_TRUE(log.empty());
  t.tick();
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(t.inFlight(), 1u);
  t.tick();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(t.inFlight(), 0u);
}

TEST(DelayedTransport, ZeroLatencyDeliversNextTick) {
  std::vector<Delivery> log;
  DelayedTransport t(
      [&](NodeId to, const Message& m) { log.push_back({to, m}); }, 0, 0);
  t.send(1, dataMessage(0, 5));
  t.tick();
  EXPECT_EQ(log.size(), 1u);
}

TEST(DelayedTransport, FifoAmongSameDueTick) {
  std::vector<Delivery> log;
  DelayedTransport t(
      [&](NodeId to, const Message& m) { log.push_back({to, m}); }, 1, 1);
  t.send(1, dataMessage(0, 1));
  t.send(2, dataMessage(0, 2));
  t.send(3, dataMessage(0, 3));
  t.tick();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0].msg.dataId, 1u);
  EXPECT_EQ(log[1].msg.dataId, 2u);
  EXPECT_EQ(log[2].msg.dataId, 3u);
}

TEST(DelayedTransport, RandomLatencyWithinBounds) {
  int delivered = 0;
  DelayedTransport t([&](NodeId, const Message&) { ++delivered; }, 1, 5,
                     /*seed=*/7);
  for (int i = 0; i < 100; ++i) t.send(1, dataMessage(0, i));
  for (int tick = 0; tick < 5; ++tick) t.tick();
  EXPECT_EQ(delivered, 100);
}

TEST(DelayedTransport, DrainFlushesEverything) {
  int delivered = 0;
  DelayedTransport t([&](NodeId, const Message&) { ++delivered; }, 3, 9,
                     /*seed=*/11);
  for (int i = 0; i < 50; ++i) t.send(1, dataMessage(0, i));
  t.drain();
  EXPECT_EQ(delivered, 50);
  EXPECT_EQ(t.inFlight(), 0u);
}

TEST(DelayedTransport, DeliveryOrderDeterministicUnderRandomLatency) {
  // Two identically seeded transports must replay the exact same delivery
  // schedule; the min-heap's (dueTick, seq) key makes the order a pure
  // function of the latency draws.
  auto schedule = [](std::uint64_t seed) {
    std::vector<std::uint64_t> order;
    DelayedTransport t(
        [&](NodeId, const Message& m) { order.push_back(m.dataId); },
        /*min=*/1, /*max=*/7, seed);
    for (std::uint64_t i = 0; i < 200; ++i) t.send(1, dataMessage(0, i));
    t.drain();
    return order;
  };
  const auto a = schedule(42);
  const auto b = schedule(42);
  const auto c = schedule(43);
  ASSERT_EQ(a.size(), 200u);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // different draws: almost surely a different order
}

TEST(DelayedTransport, RandomLatenciesDeliverInDueOrderFifoOnTies) {
  // Reconstruct each message's due tick from the delivery tick and check
  // the heap pops strictly by (dueTick, send order).
  struct Obs {
    std::uint64_t id;
    int tick;
  };
  std::vector<Obs> observed;
  int now = 0;
  DelayedTransport t(
      [&](NodeId, const Message& m) { observed.push_back({m.dataId, now}); },
      /*min=*/1, /*max=*/5, /*seed=*/9);
  for (std::uint64_t i = 0; i < 100; ++i) t.send(1, dataMessage(0, i));
  while (t.inFlight() > 0) {
    ++now;
    t.tick();
  }
  ASSERT_EQ(observed.size(), 100u);
  for (std::size_t i = 1; i < observed.size(); ++i) {
    EXPECT_GE(observed[i].tick, observed[i - 1].tick);
    if (observed[i].tick == observed[i - 1].tick) {
      EXPECT_GT(observed[i].id, observed[i - 1].id);  // FIFO among ties
    }
  }
}

TEST(DelayedTransport, MinGreaterThanMaxRejected) {
  EXPECT_THROW(DelayedTransport([](NodeId, const Message&) {}, 5, 2),
               ContractViolation);
}

TEST(LossyTransport, ZeroLossForwardsAll) {
  int delivered = 0;
  ImmediateTransport inner([&](NodeId, const Message&) { ++delivered; });
  LossyTransport lossy(inner, 0.0);
  for (int i = 0; i < 100; ++i) lossy.send(1, dataMessage(0, i));
  EXPECT_EQ(delivered, 100);
  EXPECT_EQ(lossy.dropped(), 0u);
}

TEST(LossyTransport, FullLossDropsAll) {
  int delivered = 0;
  ImmediateTransport inner([&](NodeId, const Message&) { ++delivered; });
  LossyTransport lossy(inner, 1.0);
  for (int i = 0; i < 100; ++i) lossy.send(1, dataMessage(0, i));
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(lossy.dropped(), 100u);
}

TEST(LossyTransport, PartialLossApproximatesProbability) {
  int delivered = 0;
  ImmediateTransport inner([&](NodeId, const Message&) { ++delivered; });
  LossyTransport lossy(inner, 0.25, /*seed=*/3);
  constexpr int kSends = 20'000;
  for (int i = 0; i < kSends; ++i) lossy.send(1, dataMessage(0, i));
  EXPECT_NEAR(static_cast<double>(delivered) / kSends, 0.75, 0.02);
  EXPECT_EQ(lossy.dropped() + static_cast<std::uint64_t>(delivered),
            static_cast<std::uint64_t>(kSends));
}

TEST(LossyTransport, BadProbabilityRejected) {
  ImmediateTransport inner([](NodeId, const Message&) {});
  EXPECT_THROW(LossyTransport(inner, -0.1), ContractViolation);
  EXPECT_THROW(LossyTransport(inner, 1.1), ContractViolation);
}

TEST(Transport, SentCounterCountsAttempts) {
  ImmediateTransport inner([](NodeId, const Message&) {});
  LossyTransport lossy(inner, 1.0);
  lossy.send(1, dataMessage(0, 1));
  lossy.send(1, dataMessage(0, 2));
  EXPECT_EQ(lossy.sent(), 2u);   // attempts counted even when dropped
  EXPECT_EQ(inner.sent(), 0u);   // nothing reached the inner transport
}

TEST(LossyTransport, ForwardsByMoveNotCopy) {
  // The message delivered through Lossy -> Immediate must be the very
  // object the caller sent: same entry buffer, no copy anywhere on the
  // path.
  const PeerDescriptor* seenData = nullptr;
  std::size_t seenCount = 0;
  ImmediateTransport inner([&](NodeId, const Message& m) {
    seenData = m.entries.data();
    seenCount = m.entries.size();
  });
  LossyTransport lossy(inner, 0.0);

  Message msg;
  msg.kind = MessageKind::CyclonRequest;
  msg.from = 3;
  for (int i = 0; i < 6; ++i)
    msg.entries.push_back({static_cast<NodeId>(i + 10), 0, 0});
  const PeerDescriptor* sentData = msg.entries.data();

  lossy.send(1, std::move(msg));
  EXPECT_EQ(seenData, sentData) << "message was copied on the way down";
  EXPECT_EQ(seenCount, 6u);
}

TEST(LossyTransport, AccountingConsistentUnderMoves) {
  // sent() counts attempts on the decorator, dropped() the losses, and
  // the inner transport sees exactly the survivors — with every survivor
  // moved, never copied.
  std::uint64_t delivered = 0;
  ImmediateTransport inner([&](NodeId, const Message& m) {
    ++delivered;
    ASSERT_EQ(m.entries.size(), 2u);  // payload intact after the moves
  });
  LossyTransport lossy(inner, 0.4, /*seed=*/17);
  for (int i = 0; i < 1'000; ++i) {
    Message msg;
    msg.kind = MessageKind::CyclonReply;
    msg.from = 0;
    msg.entries.push_back({1, 0, 0});
    msg.entries.push_back({2, 0, 0});
    lossy.send(1, std::move(msg));
  }
  EXPECT_EQ(lossy.sent(), 1'000u);
  EXPECT_EQ(inner.sent(), delivered);
  EXPECT_EQ(lossy.dropped() + delivered, 1'000u);
  EXPECT_GT(lossy.dropped(), 0u);
}

TEST(DelayedTransport, RecyclesPayloadBuffersThroughThePool) {
  // Steady-state traffic through the delayed queue must stop growing the
  // pool, and senders get recycled entry buffers back via the swap.
  DelayedTransport t([](NodeId, const Message&) {}, 1, 1);
  Message scratch;
  for (int round = 0; round < 50; ++round) {
    scratch.reset();
    scratch.kind = MessageKind::VicinityRequest;
    for (int e = 0; e < 10; ++e)
      scratch.entries.push_back({static_cast<NodeId>(e + 1), 0, 0});
    t.send(1, std::move(scratch));
    t.tick();  // delivers; the slot returns to the freelist
  }
  EXPECT_EQ(t.inFlight(), 0u);
  EXPECT_EQ(t.pool().inUse(), 0u);
  EXPECT_EQ(t.pool().capacity(), 1u)
      << "one-in-flight traffic must reuse a single slot";
  EXPECT_GE(t.pool().recycledCheckIns(), 48u);
  // After the first exchange the sender's scratch owns a recycled buffer.
  EXPECT_GE(scratch.entries.capacity(), 10u);
}

}  // namespace
}  // namespace vs07::net
