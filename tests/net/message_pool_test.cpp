// MessagePool mechanics plus the end-to-end recycling invariants the
// flattened hot path relies on: slot reuse, buffer capacity retention
// across check-in/release cycles, leak-freedom (inUse returns to zero)
// under churned simulations with queued transports, and the zero
// steady-state allocation property of gossip cycles.
#include "net/message_pool.hpp"

#include <gtest/gtest.h>

#include "analysis/scenario.hpp"
#include "common/alloc_probe.hpp"
#include "net/transport.hpp"

namespace vs07::net {
namespace {

Message gossipMessage(NodeId from, std::size_t entries) {
  Message m;
  m.kind = MessageKind::CyclonRequest;
  m.from = from;
  for (std::size_t i = 0; i < entries; ++i)
    m.entries.push_back({static_cast<NodeId>(i + 1),
                         static_cast<std::uint32_t>(i), i});
  return m;
}

TEST(MessagePool, CheckInStoresPayloadAndReturnsStableSlot) {
  MessagePool pool;
  Message a = gossipMessage(1, 3);
  Message b = gossipMessage(2, 5);
  const auto slotA = pool.checkIn(/*to=*/7, a);
  const auto slotB = pool.checkIn(/*to=*/9, b);
  EXPECT_NE(slotA, slotB);
  EXPECT_EQ(pool.inUse(), 2u);
  EXPECT_EQ(pool.at(slotA).from, 1u);
  EXPECT_EQ(pool.at(slotA).entries.size(), 3u);
  EXPECT_EQ(pool.destination(slotA), 7u);
  EXPECT_EQ(pool.at(slotB).from, 2u);
  EXPECT_EQ(pool.at(slotB).entries.size(), 5u);
  EXPECT_EQ(pool.destination(slotB), 9u);
}

TEST(MessagePool, CheckInHandsRecycledBuffersBackToTheSender) {
  MessagePool pool;
  Message first = gossipMessage(1, 8);
  const auto slot = pool.checkIn(/*to=*/5, first);
  // The sender's message is left reset (fresh fields, no entries)...
  EXPECT_EQ(first.entries.size(), 0u);
  EXPECT_EQ(first.from, kNoNode);
  pool.release(slot);

  // ...and a later check-in of a fresh payload reuses the released
  // slot's buffer: the capacity the first message grew is handed back.
  Message second = gossipMessage(2, 4);
  const auto slot2 = pool.checkIn(/*to=*/6, second);
  EXPECT_EQ(slot2, slot);  // LIFO freelist reuse
  EXPECT_GE(second.entries.capacity(), 8u)
      << "recycled buffer capacity was lost";
  EXPECT_EQ(pool.recycledCheckIns(), 1u);
}

TEST(MessagePool, SteadyStateTrafficStopsGrowingThePool) {
  MessagePool pool;
  Message scratch;
  // Simulate steady-state traffic: at most 4 in flight at a time.
  MessagePool::Slot slots[4];
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 4; ++i) {
      scratch.reset();
      scratch.from = static_cast<NodeId>(i);
      for (int e = 0; e < 8; ++e) scratch.entries.push_back({});
      slots[i] = pool.checkIn(/*to=*/1, scratch);
    }
    for (int i = 0; i < 4; ++i) pool.release(slots[i]);
  }
  EXPECT_EQ(pool.inUse(), 0u);
  EXPECT_EQ(pool.capacity(), 4u) << "pool grew beyond peak concurrency";
}

TEST(MessagePool, BufferlessCheckInPreservesSlotCapacity) {
  // Data messages own no entry buffers; riding a slot warmed by gossip
  // traffic must not drain the slot's capacity into a message that is
  // about to be destroyed.
  MessagePool pool;
  Message gossip = gossipMessage(1, 8);
  const auto slot = pool.checkIn(/*to=*/2, gossip);
  pool.release(slot);

  Message data;  // transient: would die right after delivery
  data.kind = MessageKind::Data;
  data.dataId = 5;
  const auto slot2 = pool.checkIn(/*to=*/3, data);
  EXPECT_EQ(slot2, slot);
  EXPECT_EQ(pool.at(slot2).dataId, 5u);
  pool.release(slot2);

  // The warmed buffer is still in the slot for the next gossip sender.
  Message gossip2 = gossipMessage(2, 1);
  pool.checkIn(/*to=*/4, gossip2);
  EXPECT_GE(gossip2.entries.capacity(), 8u)
      << "slot capacity was destroyed by the bufferless check-in";
}

TEST(MessagePool, ReleaseOfUnusedSlotRejected) {
  MessagePool pool;
  Message m = gossipMessage(1, 1);
  const auto slot = pool.checkIn(/*to=*/2, m);
  pool.release(slot);
  EXPECT_THROW(pool.release(slot), ContractViolation);
}

TEST(MessagePool, DoubleReleaseDetectedWhileOtherSlotsAreLive) {
  // The dangerous variant: with other slots still checked in, a double
  // release would put the slot on the freelist twice and alias two later
  // in-flight messages. The per-slot live flag must catch it even though
  // inUse_ is nonzero.
  MessagePool pool;
  Message a = gossipMessage(1, 2);
  Message b = gossipMessage(2, 2);
  const auto slotA = pool.checkIn(/*to=*/7, a);
  const auto slotB = pool.checkIn(/*to=*/9, b);
  pool.release(slotA);
  EXPECT_THROW(pool.release(slotA), ContractViolation);
  EXPECT_THROW(pool.at(slotA), ContractViolation);  // stale access too
  EXPECT_EQ(pool.inUse(), 1u);
  pool.release(slotB);
  EXPECT_EQ(pool.inUse(), 0u);
}

// -- end-to-end recycling through the simulation stack -------------------

TEST(MessagePoolIntegration, ChurnedLatencyScenarioLeaksNoSlots) {
  // Latency-model traffic rides the engine's pool; churn kills nodes with
  // messages in flight (delivered to dead nodes -> dropped by the
  // router). Whatever the path, every slot must come back.
  auto scenario = analysis::Scenario::builder()
                      .nodes(150)
                      .seed(7)
                      .warmupCycles(30)
                      .timing(sim::TimingConfig::jitteredLatency(
                          sim::LatencyModel::uniform(1, 4)))
                      .churn(0.02)
                      .build();
  scenario.runCycles(50);
  const auto& engine = scenario.engine();
  // In-flight slots are exactly the scheduled-but-undelivered messages.
  EXPECT_EQ(engine.deliveryPool().inUse(), engine.pendingDeliveries());
  // The pool reaches a steady capacity: more cycles must not grow it.
  const std::size_t settled = engine.deliveryPool().capacity();
  scenario.runCycles(100);
  EXPECT_EQ(engine.deliveryPool().inUse(), engine.pendingDeliveries());
  EXPECT_LE(engine.deliveryPool().capacity(), settled + settled / 4)
      << "pool capacity kept growing under steady churned traffic";
}

TEST(MessagePoolIntegration, SteadyStateGossipCycleIsAllocationFree) {
  // The tentpole invariant: once buffers reach steady capacity, a
  // cycle-synchronous gossip cycle performs zero heap allocations.
  auto scenario = analysis::Scenario::builder()
                      .nodes(300)
                      .seed(11)
                      .warmupCycles(50)
                      .build();
  scenario.runCycles(5);  // settle every scratch buffer and queue
  const AllocScope allocs;
  scenario.runCycles(10);
  EXPECT_EQ(allocs.allocations(), 0u)
      << "steady-state gossip cycles must not touch the allocator";
}

}  // namespace
}  // namespace vs07::net
