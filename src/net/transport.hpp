// Message transports.
//
// Protocols talk only to the Transport interface; the simulator wires a
// delivery sink underneath. Three implementations:
//   * ImmediateTransport — synchronous in-process delivery (the cycle-driven
//     model of the paper: an exchange completes within a cycle).
//   * DelayedTransport — queues with integer tick latency; tick() drains.
//   * LossyTransport — decorator dropping each message with probability p.
// The paper's evaluation is hop-based and latency-free (§7: uniform delay
// does not change macroscopic behaviour); the delayed/lossy variants exist
// for tests and for the failure-injection experiments. For latency that
// interleaves with the simulation's own clock, see sim::LatencyTransport,
// which schedules deliveries on the engine's shared event queue.
//
// Hot-path contract: send() consumes the message by rvalue reference and
// never copies it. A synchronous transport hands the same object to the
// sink; a queueing transport swaps the payload into a MessagePool slot,
// leaving the caller's message holding recycled buffers — protocols keep
// one scratch Message per shape and reset()+refill it each exchange, so a
// steady-state cycle performs zero per-message heap allocations.
#pragma once

#include <cstdint>
#include <vector>

#include "common/event_queue.hpp"
#include "common/rng.hpp"
#include "net/delivery_sink.hpp"
#include "net/message.hpp"
#include "net/message_pool.hpp"

namespace vs07::net {

/// Abstract one-way message channel between simulated nodes.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Attempts delivery of msg to `to`. May drop or delay depending on the
  /// implementation. `msg.from` must already be set by the caller. The
  /// message is consumed; on return the caller's object holds either its
  /// original payload (drop paths) or recycled buffers, and must be
  /// reset() before reuse.
  virtual void send(NodeId to, Message&& msg) = 0;

  /// Messages handed to send() so far (including ones later dropped).
  std::uint64_t sent() const noexcept { return sent_; }

 protected:
  void countSend() noexcept { ++sent_; }

 private:
  std::uint64_t sent_ = 0;
};

/// Delivers synchronously, inside send(). Matches the paper's cycle model.
class ImmediateTransport final : public Transport {
 public:
  /// Hot-path wiring: deliver straight into `sink` (borrowed).
  explicit ImmediateTransport(DeliverySink& sink) : sink_(sink) {}
  /// Convenience wiring for tests: wraps `deliver` in an owned sink.
  explicit ImmediateTransport(DeliverFn deliver)
      : sink_(std::move(deliver)) {}

  void send(NodeId to, Message&& msg) override;

 private:
  SinkRef sink_;
};

/// Queues messages and delivers them `latencyTicks` calls to tick() later.
/// Per-message latency can also be randomised within [min,max] ticks.
///
/// The queue is a deterministic EventQueue keyed on (dueTick, seq) — the
/// same scheduler the simulation engine runs on, here with a private
/// clock. tick() pops only the messages actually due, and the sequence
/// tiebreak keeps delivery FIFO among messages due the same tick, so
/// randomized-latency runs stay bit-for-bit deterministic. Queued payloads
/// live in a MessagePool: events capture only a slot index (they stay
/// inside the std::function small-buffer) and delivered slots recycle
/// their entry buffers instead of freeing them.
class DelayedTransport final : public Transport {
 public:
  DelayedTransport(DeliverySink& sink, std::uint32_t minLatencyTicks,
                   std::uint32_t maxLatencyTicks, std::uint64_t seed = 1)
      : DelayedTransport(SinkRef(sink), minLatencyTicks, maxLatencyTicks,
                         seed) {}
  DelayedTransport(DeliverFn deliver, std::uint32_t minLatencyTicks,
                   std::uint32_t maxLatencyTicks, std::uint64_t seed = 1)
      : DelayedTransport(SinkRef(std::move(deliver)), minLatencyTicks,
                         maxLatencyTicks, seed) {}

  void send(NodeId to, Message&& msg) override;

  /// Advances time one tick, delivering everything that is due. Messages
  /// sent from inside a delivery handler are queued for a *later* tick
  /// (their latency counts from now), never delivered re-entrantly.
  void tick();

  /// Delivers everything still queued (used at test teardown).
  void drain();

  std::size_t inFlight() const noexcept { return queue_.size(); }

  /// The payload pool (diagnostics: capacity stops growing once traffic
  /// reaches steady state).
  const MessagePool& pool() const noexcept { return pool_; }

 private:
  DelayedTransport(SinkRef sink, std::uint32_t minLatencyTicks,
                   std::uint32_t maxLatencyTicks, std::uint64_t seed);

  void deliverSlot(MessagePool::Slot slot);

  SinkRef sink_;
  EventQueue queue_;
  MessagePool pool_;
  std::uint32_t minLatency_;
  std::uint32_t maxLatency_;
  Rng rng_;
};

/// Drops each message with probability `dropProbability`, otherwise
/// moves it into the wrapped transport. Non-owning: the inner transport
/// must outlive this decorator.
class LossyTransport final : public Transport {
 public:
  LossyTransport(Transport& inner, double dropProbability,
                 std::uint64_t seed = 1);

  void send(NodeId to, Message&& msg) override;

  std::uint64_t dropped() const noexcept { return dropped_; }

 private:
  Transport& inner_;
  double dropProbability_;
  Rng rng_;
  std::uint64_t dropped_ = 0;
};

}  // namespace vs07::net
