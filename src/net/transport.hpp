// Message transports.
//
// Protocols talk only to the Transport interface; the simulator wires a
// delivery sink underneath. Three implementations:
//   * ImmediateTransport — synchronous in-process delivery (the cycle-driven
//     model of the paper: an exchange completes within a cycle).
//   * DelayedTransport — queues with integer tick latency; tick() drains.
//   * LossyTransport — decorator dropping each message with probability p.
// The paper's evaluation is hop-based and latency-free (§7: uniform delay
// does not change macroscopic behaviour); the delayed/lossy variants exist
// for tests and for the failure-injection experiments. For latency that
// interleaves with the simulation's own clock, see sim::LatencyTransport,
// which schedules deliveries on the engine's shared event queue.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "common/event_queue.hpp"
#include "common/rng.hpp"
#include "net/message.hpp"

namespace vs07::net {

/// Receives a message addressed to `to`. Installed by the simulator.
using DeliverFn = std::function<void(NodeId to, const Message& msg)>;

/// Abstract one-way message channel between simulated nodes.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Attempts delivery of msg to `to`. May drop or delay depending on the
  /// implementation. `msg.from` must already be set by the caller.
  virtual void send(NodeId to, Message msg) = 0;

  /// Messages handed to send() so far (including ones later dropped).
  std::uint64_t sent() const noexcept { return sent_; }

 protected:
  void countSend() noexcept { ++sent_; }

 private:
  std::uint64_t sent_ = 0;
};

/// Delivers synchronously, inside send(). Matches the paper's cycle model.
class ImmediateTransport final : public Transport {
 public:
  explicit ImmediateTransport(DeliverFn deliver);
  void send(NodeId to, Message msg) override;

 private:
  DeliverFn deliver_;
};

/// Queues messages and delivers them `latencyTicks` calls to tick() later.
/// Per-message latency can also be randomised within [min,max] ticks.
///
/// The queue is a deterministic EventQueue keyed on (dueTick, seq) — the
/// same scheduler the simulation engine runs on, here with a private
/// clock. tick() pops only the messages actually due, and the sequence
/// tiebreak keeps delivery FIFO among messages due the same tick, so
/// randomized-latency runs stay bit-for-bit deterministic.
class DelayedTransport final : public Transport {
 public:
  DelayedTransport(DeliverFn deliver, std::uint32_t minLatencyTicks,
                   std::uint32_t maxLatencyTicks, std::uint64_t seed = 1);

  void send(NodeId to, Message msg) override;

  /// Advances time one tick, delivering everything that is due. Messages
  /// sent from inside a delivery handler are queued for a *later* tick
  /// (their latency counts from now), never delivered re-entrantly.
  void tick();

  /// Delivers everything still queued (used at test teardown).
  void drain();

  std::size_t inFlight() const noexcept { return queue_.size(); }

 private:
  DeliverFn deliver_;
  EventQueue queue_;
  std::uint32_t minLatency_;
  std::uint32_t maxLatency_;
  Rng rng_;
};

/// Drops each message with probability `dropProbability`, otherwise
/// forwards to the wrapped transport. Non-owning: the inner transport must
/// outlive this decorator.
class LossyTransport final : public Transport {
 public:
  LossyTransport(Transport& inner, double dropProbability,
                 std::uint64_t seed = 1);

  void send(NodeId to, Message msg) override;

  std::uint64_t dropped() const noexcept { return dropped_; }

 private:
  Transport& inner_;
  double dropProbability_;
  Rng rng_;
  std::uint64_t dropped_ = 0;
};

}  // namespace vs07::net
