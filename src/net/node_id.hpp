// Node identity types shared by every layer.
//
// A NodeId is a dense index into the simulator's node table (cheap to copy,
// hash, and use as an array index). A node's position on the RINGCAST ring
// is *not* its NodeId but a separate random 64-bit SequenceId — the paper's
// "arbitrarily chosen sequence IDs" that VICINITY sorts by.
//
// Invariant: ids are dense and never reused — the id space is
// [0, Network::totalCreated()), a churned-out id stays dead forever, and
// every layer may therefore size per-node state as a flat array indexed
// by NodeId without tombstone handling.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>

namespace vs07 {

/// Dense node index. Stable for the lifetime of a simulated node; slots
/// are reused only through explicit rebirth in the churn model, which
/// resets all per-node state.
using NodeId = std::uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();

/// Random identifier determining ring order (VICINITY profile).
using SequenceId = std::uint64_t;

/// Circular distance between two sequence ids on the 2^64 ring:
/// min(|a-b|, 2^64 - |a-b|). This is the proximity metric RINGCAST's
/// VICINITY instance optimises.
constexpr std::uint64_t ringDistance(SequenceId a, SequenceId b) noexcept {
  const std::uint64_t d = a > b ? a - b : b - a;
  // 2^64 - d computed in modular arithmetic: 0 - d.
  const std::uint64_t wrap = 0 - d;
  return d < wrap ? d : wrap;
}

/// Clockwise (increasing-id) distance from a to b on the 2^64 ring.
constexpr std::uint64_t clockwiseDistance(SequenceId a, SequenceId b) noexcept {
  return b - a;  // modular arithmetic does the wrap for us
}

}  // namespace vs07
