// MessagePool — recyclable slot storage for in-flight messages.
//
// Queued transports (DelayedTransport, sim::LatencyTransport via the
// engine) used to copy each queued Message into a heap-allocated closure;
// at a million nodes that made the allocator the hot path. The pool keeps
// a freelist of Message slots whose entry/id vectors retain their
// capacity across reuse, so a steady-state cycle checks messages in and
// out without touching the allocator at all:
//
//   * checkIn(msg) swaps the sender's payload into a pooled slot and
//     hands the slot's previously recycled buffers back to the sender's
//     scratch message (which resets and refills them next exchange);
//   * at(slot) exposes the queued message until delivery;
//   * release(slot) returns the slot — buffers intact — to the freelist.
//
// Slots live in a deque, so references and indices stay stable while the
// pool grows; indices are recycled LIFO to keep warm buffers in use.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/expect.hpp"
#include "net/message.hpp"

namespace vs07::net {

/// Freelist of recyclable Message slots (see file comment). Single
/// threaded, like the simulation it feeds.
class MessagePool {
 public:
  using Slot = std::uint32_t;

  /// Moves `msg`'s payload into a pooled slot (swap — `msg` is left
  /// holding the slot's recycled buffers, reset and reusable), records
  /// its destination, and returns the slot index, stable until
  /// release(). Destinations live in the pool because every in-flight
  /// message has one; keeping them here spares each queueing transport a
  /// parallel bookkeeping array.
  Slot checkIn(NodeId to, Message& msg) {
    Slot slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
      ++recycled_;
    } else {
      slot = static_cast<Slot>(slots_.size());
      slots_.emplace_back();
      live_.push_back(0);
      to_.push_back(kNoNode);
    }
    live_[slot] = 1;
    to_[slot] = to;
    ++inUse_;
    if (inUse_ > peakInUse_) peakInUse_ = inUse_;
    Message& stored = slots_[slot];
    stored.reset();
    stored.kind = msg.kind;
    stored.channel = msg.channel;
    stored.from = msg.from;
    stored.dataId = msg.dataId;
    stored.hop = msg.hop;
    stored.flags = msg.flags;
    // Vector buffers swap only when the sender brings capacity of its
    // own (scratch senders do; transient Data messages own none), so a
    // slot never surrenders its warmed buffer to a message that is about
    // to be destroyed.
    if (msg.entries.capacity() != 0) stored.entries.swap(msg.entries);
    if (msg.ids.capacity() != 0) stored.ids.swap(msg.ids);
    msg.reset();
    return slot;
  }

  /// The message checked into `slot` (valid until release()).
  Message& at(Slot slot) {
    VS07_EXPECT(slot < slots_.size());
    VS07_EXPECT(live_[slot]);
    return slots_[slot];
  }

  /// The destination recorded at check-in.
  NodeId destination(Slot slot) const {
    VS07_EXPECT(slot < slots_.size());
    VS07_EXPECT(live_[slot]);
    return to_[slot];
  }

  /// Returns the slot to the freelist. Its buffers keep their capacity
  /// and are handed to a future sender by the next checkIn(). A slot may
  /// be released exactly once per check-in: a double release would put
  /// the slot on the freelist twice and silently alias two later
  /// in-flight messages, so it is a contract violation.
  void release(Slot slot) {
    VS07_EXPECT(slot < slots_.size());
    VS07_EXPECT(live_[slot]);
    live_[slot] = 0;
    --inUse_;
    free_.push_back(slot);
  }

  /// Pre-creates free slots — payload buffers reserved to the given
  /// capacities — until the pool holds at least `target` slots. A fresh
  /// slot minted by checkIn() starts with cold buffers and swaps the
  /// sender's warm buffer away, so an in-flight record reached mid-cycle
  /// costs several allocations; growing to the record *with slack* at a
  /// quiet moment (cycle boundaries) keeps later records on warm slots.
  void reserveWarm(std::size_t target, std::size_t entryCapacity,
                   std::size_t idCapacity) {
    while (slots_.size() < target) {
      Message& slot = slots_.emplace_back();
      slot.entries.reserve(entryCapacity);
      slot.ids.reserve(idCapacity);
      live_.push_back(0);
      to_.push_back(kNoNode);
      free_.push_back(static_cast<Slot>(slots_.size() - 1));
    }
  }

  /// Slots currently checked in (queued messages).
  std::size_t inUse() const noexcept { return inUse_; }
  /// High-water mark of simultaneously checked-in slots.
  std::size_t peakInUse() const noexcept { return peakInUse_; }
  /// Slots ever created; stops growing once traffic reaches steady state.
  std::size_t capacity() const noexcept { return slots_.size(); }
  /// checkIn() calls served from the freelist rather than a fresh slot.
  std::uint64_t recycledCheckIns() const noexcept { return recycled_; }

 private:
  std::deque<Message> slots_;
  std::vector<Slot> free_;
  /// Per-slot checked-in flag, backing the double-release contract.
  std::vector<std::uint8_t> live_;
  /// Per-slot destination (valid while live).
  std::vector<NodeId> to_;
  std::size_t inUse_ = 0;
  std::size_t peakInUse_ = 0;
  std::uint64_t recycled_ = 0;
};

}  // namespace vs07::net
