#include "net/transport.hpp"

#include <utility>

#include "common/expect.hpp"

namespace vs07::net {

void ImmediateTransport::send(NodeId to, Message&& msg) {
  countSend();
  sink_->deliver(to, std::move(msg));
}

DelayedTransport::DelayedTransport(SinkRef sink,
                                   std::uint32_t minLatencyTicks,
                                   std::uint32_t maxLatencyTicks,
                                   std::uint64_t seed)
    : sink_(std::move(sink)),
      minLatency_(minLatencyTicks),
      maxLatency_(maxLatencyTicks),
      rng_(seed) {
  VS07_EXPECT(minLatency_ <= maxLatency_);
}

void DelayedTransport::send(NodeId to, Message&& msg) {
  countSend();
  const std::uint32_t latency =
      minLatency_ == maxLatency_
          ? minLatency_
          : minLatency_ + static_cast<std::uint32_t>(rng_.below(
                              maxLatency_ - minLatency_ + 1));
  const MessagePool::Slot slot = pool_.checkIn(to, msg);
  // The capture is two words, so the action stays in the std::function
  // small buffer — queueing a message allocates nothing in steady state.
  queue_.schedule(queue_.now() + latency, /*priority=*/0,
                  [this, slot] { deliverSlot(slot); });
}

void DelayedTransport::deliverSlot(MessagePool::Slot slot) {
  sink_->deliver(pool_.destination(slot), std::move(pool_.at(slot)));
  pool_.release(slot);
}

void DelayedTransport::tick() {
  // Handlers may send() from inside deliver_ (forwarding chains); those
  // messages join the queue directly but carry a sequence number past
  // this cutoff, so even a zero-latency re-entrant send waits for the
  // next tick — the same semantics the old snapshot-and-swap loop had.
  queue_.advanceTo(queue_.now() + 1, queue_.nextSeq());
}

void DelayedTransport::drain() {
  while (!queue_.empty()) tick();
}

LossyTransport::LossyTransport(Transport& inner, double dropProbability,
                               std::uint64_t seed)
    : inner_(inner), dropProbability_(dropProbability), rng_(seed) {
  VS07_EXPECT(dropProbability_ >= 0.0 && dropProbability_ <= 1.0);
}

void LossyTransport::send(NodeId to, Message&& msg) {
  countSend();
  if (rng_.chance(dropProbability_)) {
    ++dropped_;
    return;
  }
  inner_.send(to, std::move(msg));
}

}  // namespace vs07::net
