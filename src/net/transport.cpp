#include "net/transport.hpp"

#include <algorithm>
#include <utility>

#include "common/expect.hpp"

namespace vs07::net {

ImmediateTransport::ImmediateTransport(DeliverFn deliver)
    : deliver_(std::move(deliver)) {
  VS07_EXPECT(deliver_ != nullptr);
}

void ImmediateTransport::send(NodeId to, Message msg) {
  countSend();
  deliver_(to, msg);
}

DelayedTransport::DelayedTransport(DeliverFn deliver,
                                   std::uint32_t minLatencyTicks,
                                   std::uint32_t maxLatencyTicks,
                                   std::uint64_t seed)
    : deliver_(std::move(deliver)),
      minLatency_(minLatencyTicks),
      maxLatency_(maxLatencyTicks),
      rng_(seed) {
  VS07_EXPECT(deliver_ != nullptr);
  VS07_EXPECT(minLatency_ <= maxLatency_);
}

void DelayedTransport::send(NodeId to, Message msg) {
  countSend();
  const std::uint32_t latency =
      minLatency_ == maxLatency_
          ? minLatency_
          : minLatency_ + static_cast<std::uint32_t>(rng_.below(
                              maxLatency_ - minLatency_ + 1));
  heap_.push({now_ + latency, nextSeq_++, to, std::move(msg)});
}

void DelayedTransport::tick() {
  ++now_;
  // Handlers may send() from inside deliver_ (forwarding chains); those
  // messages join the heap directly but carry a sequence number past this
  // cutoff, so even a zero-latency re-entrant send waits for the next
  // tick — the same semantics the old snapshot-and-swap loop had.
  const std::uint64_t cutoff = nextSeq_;
  while (!heap_.empty() && heap_.top().dueTick <= now_ &&
         heap_.top().seq < cutoff) {
    // priority_queue::top() is const; the message is moved out via pop
    // order anyway, so copy-free extraction needs the const_cast idiom.
    Pending pending = std::move(const_cast<Pending&>(heap_.top()));
    heap_.pop();
    deliver_(pending.to, pending.msg);
  }
}

void DelayedTransport::drain() {
  while (!heap_.empty()) tick();
}

LossyTransport::LossyTransport(Transport& inner, double dropProbability,
                               std::uint64_t seed)
    : inner_(inner), dropProbability_(dropProbability), rng_(seed) {
  VS07_EXPECT(dropProbability_ >= 0.0 && dropProbability_ <= 1.0);
}

void LossyTransport::send(NodeId to, Message msg) {
  countSend();
  if (rng_.chance(dropProbability_)) {
    ++dropped_;
    return;
  }
  inner_.send(to, std::move(msg));
}

}  // namespace vs07::net
