#include "net/transport.hpp"

#include <algorithm>
#include <utility>

#include "common/expect.hpp"

namespace vs07::net {

ImmediateTransport::ImmediateTransport(DeliverFn deliver)
    : deliver_(std::move(deliver)) {
  VS07_EXPECT(deliver_ != nullptr);
}

void ImmediateTransport::send(NodeId to, Message msg) {
  countSend();
  deliver_(to, msg);
}

DelayedTransport::DelayedTransport(DeliverFn deliver,
                                   std::uint32_t minLatencyTicks,
                                   std::uint32_t maxLatencyTicks,
                                   std::uint64_t seed)
    : deliver_(std::move(deliver)),
      minLatency_(minLatencyTicks),
      maxLatency_(maxLatencyTicks),
      rng_(seed) {
  VS07_EXPECT(deliver_ != nullptr);
  VS07_EXPECT(minLatency_ <= maxLatency_);
}

void DelayedTransport::send(NodeId to, Message msg) {
  countSend();
  const std::uint32_t latency =
      minLatency_ == maxLatency_
          ? minLatency_
          : minLatency_ + static_cast<std::uint32_t>(rng_.below(
                              maxLatency_ - minLatency_ + 1));
  queue_.push_back({now_ + latency, to, std::move(msg)});
}

void DelayedTransport::tick() {
  ++now_;
  // Swap the queue out before delivering: handlers may send() from inside
  // deliver_ (forwarding chains), and those new messages must land on the
  // live queue_, not be lost or invalidate our iteration. Processing the
  // snapshot in order keeps FIFO among messages due the same tick.
  std::deque<Pending> current;
  current.swap(queue_);
  for (auto& pending : current) {
    if (pending.dueTick <= now_)
      deliver_(pending.to, pending.msg);
    else
      queue_.push_back(std::move(pending));
  }
}

void DelayedTransport::drain() {
  while (!queue_.empty()) tick();
}

LossyTransport::LossyTransport(Transport& inner, double dropProbability,
                               std::uint64_t seed)
    : inner_(inner), dropProbability_(dropProbability), rng_(seed) {
  VS07_EXPECT(dropProbability_ >= 0.0 && dropProbability_ <= 1.0);
}

void LossyTransport::send(NodeId to, Message msg) {
  countSend();
  if (rng_.chance(dropProbability_)) {
    ++dropped_;
    return;
  }
  inner_.send(to, std::move(msg));
}

}  // namespace vs07::net
