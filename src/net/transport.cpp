#include "net/transport.hpp"

#include <algorithm>
#include <utility>

#include "common/expect.hpp"

namespace vs07::net {

ImmediateTransport::ImmediateTransport(DeliverFn deliver)
    : deliver_(std::move(deliver)) {
  VS07_EXPECT(deliver_ != nullptr);
}

void ImmediateTransport::send(NodeId to, Message msg) {
  countSend();
  deliver_(to, msg);
}

DelayedTransport::DelayedTransport(DeliverFn deliver,
                                   std::uint32_t minLatencyTicks,
                                   std::uint32_t maxLatencyTicks,
                                   std::uint64_t seed)
    : deliver_(std::move(deliver)),
      minLatency_(minLatencyTicks),
      maxLatency_(maxLatencyTicks),
      rng_(seed) {
  VS07_EXPECT(deliver_ != nullptr);
  VS07_EXPECT(minLatency_ <= maxLatency_);
}

void DelayedTransport::send(NodeId to, Message msg) {
  countSend();
  const std::uint32_t latency =
      minLatency_ == maxLatency_
          ? minLatency_
          : minLatency_ + static_cast<std::uint32_t>(rng_.below(
                              maxLatency_ - minLatency_ + 1));
  queue_.schedule(queue_.now() + latency, /*priority=*/0,
                  [this, to, m = std::move(msg)] { deliver_(to, m); });
}

void DelayedTransport::tick() {
  // Handlers may send() from inside deliver_ (forwarding chains); those
  // messages join the queue directly but carry a sequence number past
  // this cutoff, so even a zero-latency re-entrant send waits for the
  // next tick — the same semantics the old snapshot-and-swap loop had.
  queue_.advanceTo(queue_.now() + 1, queue_.nextSeq());
}

void DelayedTransport::drain() {
  while (!queue_.empty()) tick();
}

LossyTransport::LossyTransport(Transport& inner, double dropProbability,
                               std::uint64_t seed)
    : inner_(inner), dropProbability_(dropProbability), rng_(seed) {
  VS07_EXPECT(dropProbability_ >= 0.0 && dropProbability_ <= 1.0);
}

void LossyTransport::send(NodeId to, Message msg) {
  countSend();
  if (rng_.chance(dropProbability_)) {
    ++dropped_;
    return;
  }
  inner_.send(to, std::move(msg));
}

}  // namespace vs07::net
