// Delivery-sink vocabulary: the receiving side of every transport.
//
// Split out of transport.hpp so that sim/router.hpp and sim/engine.hpp
// can name the interface without pulling in the transport stack (event
// queue, message pool, rng) — and so transport headers stay includable
// from anywhere without cycles.
#pragma once

#include <functional>
#include <memory>
#include <utility>

#include "common/expect.hpp"
#include "net/message.hpp"

namespace vs07::net {

/// Receives a message addressed to `to`. Direct interface — one virtual
/// call, no std::function box — because every simulated message crosses
/// it. sim::MessageRouter is the canonical implementation.
class DeliverySink {
 public:
  virtual ~DeliverySink() = default;

  /// Takes ownership of `msg` (the caller recycles whatever buffers are
  /// left behind). Implementations must not retain references past the
  /// call.
  virtual void deliver(NodeId to, Message&& msg) = 0;
};

/// Legacy/function-style sink, for tests and ad-hoc wiring. Keeps the
/// old `void(NodeId, const Message&)` signature.
using DeliverFn = std::function<void(NodeId to, const Message& msg)>;

/// Adapts a DeliverFn to the DeliverySink interface.
class FunctionSink final : public DeliverySink {
 public:
  explicit FunctionSink(DeliverFn fn) : fn_(std::move(fn)) {
    VS07_EXPECT(fn_ != nullptr);
  }
  void deliver(NodeId to, Message&& msg) override { fn_(to, msg); }

 private:
  DeliverFn fn_;
};

/// The one sink handle every transport holds: either a borrowed
/// DeliverySink (the hot-path wiring) or an owned FunctionSink adapting
/// a DeliverFn (the test-convenience wiring). Collapses the
/// owned-pointer/raw-pointer pair each transport used to duplicate.
class SinkRef {
 public:
  explicit SinkRef(DeliverySink& sink) : sink_(&sink) {}
  explicit SinkRef(DeliverFn fn)
      : owned_(std::make_unique<FunctionSink>(std::move(fn))),
        sink_(owned_.get()) {}

  DeliverySink& operator*() const noexcept { return *sink_; }
  DeliverySink* operator->() const noexcept { return sink_; }

 private:
  std::unique_ptr<FunctionSink> owned_;
  DeliverySink* sink_;
};

}  // namespace vs07::net
