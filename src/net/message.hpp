// Wire-level message vocabulary of the protocol suite.
//
// Everything the protocols exchange fits three shapes: a gossip view
// exchange request, its reply, and a disseminated datagram. Messages are
// value types; the transports move them, never share them.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "net/node_id.hpp"

namespace vs07::net {

/// One entry of a partial view as it travels on the wire.
struct PeerDescriptor {
  NodeId node = kNoNode;
  /// Gossip age in cycles (CYCLON freshness).
  std::uint32_t age = 0;
  /// Application profile; for RINGCAST this is the peer's SequenceId.
  SequenceId profile = 0;

  friend bool operator==(const PeerDescriptor&,
                         const PeerDescriptor&) = default;
};

/// Which protocol/phase a message belongs to.
enum class MessageKind : std::uint8_t {
  CyclonRequest = 1,
  CyclonReply = 2,
  VicinityRequest = 3,
  VicinityReply = 4,
  Data = 5,
  /// Anti-entropy digest (§8 pull extension): "here is what I have
  /// recently seen"; the receiver pushes back whatever is missing.
  PullRequest = 6,
};

/// Number of distinct MessageKind values (dense, starting at 1).
inline constexpr std::uint8_t kMessageKinds = 6;

/// Highest protocol channel supported (see Message::channel).
inline constexpr std::uint8_t kMaxChannel = 15;

/// A protocol message. Flat struct rather than a variant: the three shapes
/// share almost all fields and the simulator moves millions of these.
struct Message {
  MessageKind kind = MessageKind::Data;
  /// Protocol instance channel: distinguishes multiple instances of the
  /// same protocol (e.g. one VICINITY per ring in multi-ring RINGCAST).
  std::uint8_t channel = 0;
  NodeId from = kNoNode;
  /// View entries for gossip exchanges; empty for Data.
  std::vector<PeerDescriptor> entries;
  /// Dissemination id (unique per multicast) for Data; 0 otherwise.
  std::uint64_t dataId = 0;
  /// Hop count of a Data message (0 at the origin's send).
  std::uint32_t hop = 0;
  /// Bit flags (kFlagPullAnswer, ...).
  std::uint8_t flags = 0;
  /// Digest of recently-seen dissemination ids (PullRequest only).
  std::vector<std::uint64_t> ids;

  /// Resets every field to its default while *retaining* the heap
  /// capacity of `entries`/`ids` — the primitive behind buffer recycling:
  /// a reset message is semantically fresh but allocation-free to refill.
  void reset() noexcept {
    kind = MessageKind::Data;
    channel = 0;
    from = kNoNode;
    entries.clear();
    dataId = 0;
    hop = 0;
    flags = 0;
    ids.clear();
  }

  friend bool operator==(const Message&, const Message&) = default;
};

/// Member-wise swap: exchanges payload buffers without copying or
/// allocating. Queued transports use this to move a message into a pooled
/// slot while handing the slot's recycled buffers back to the sender's
/// scratch message.
inline void swap(Message& a, Message& b) noexcept {
  std::swap(a.kind, b.kind);
  std::swap(a.channel, b.channel);
  std::swap(a.from, b.from);
  a.entries.swap(b.entries);
  std::swap(a.dataId, b.dataId);
  std::swap(a.hop, b.hop);
  std::swap(a.flags, b.flags);
  a.ids.swap(b.ids);
}

/// Message::flags bit: this Data message answers a PullRequest (it is a
/// retransmission, not part of the original push wave).
inline constexpr std::uint8_t kFlagPullAnswer = 0x01;

/// Message::flags bit: this Data push belongs to a pull-recovery re-wave
/// — it descends from a pull answer, not from the origin's push wave —
/// so receivers keep it out of origin-wave hop accounting.
inline constexpr std::uint8_t kFlagRecoveryWave = 0x02;

/// Message::flags bit: this PullRequest carries a *windowed* digest:
/// ids[0]/ids[1] are the inclusive [lo, hi] dataId bounds of the
/// advertised buffer window and ids[2..] the ids held within it. The
/// answerer offers random useful ids inside the bounds (ids outside are
/// beyond the requester's current recovery horizon).
inline constexpr std::uint8_t kFlagWindowedDigest = 0x04;

}  // namespace vs07::net
