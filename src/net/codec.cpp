#include "net/codec.hpp"

namespace vs07::net {

const char* codecErrorKindName(CodecErrorKind kind) noexcept {
  switch (kind) {
    case CodecErrorKind::kTruncated: return "truncated";
    case CodecErrorKind::kBadVersion: return "bad-version";
    case CodecErrorKind::kBadMagic: return "bad-magic";
    case CodecErrorKind::kBadKind: return "bad-kind";
    case CodecErrorKind::kBadChannel: return "bad-channel";
    case CodecErrorKind::kBadCount: return "bad-count";
    case CodecErrorKind::kBadLength: return "bad-length";
    case CodecErrorKind::kTrailing: return "trailing";
  }
  return "unknown";
}

void ByteWriter::u8(std::uint8_t v) { buf_->push_back(v); }

void ByteWriter::u16(std::uint16_t v) {
  u8(static_cast<std::uint8_t>(v));
  u8(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::u32(std::uint32_t v) {
  u16(static_cast<std::uint16_t>(v));
  u16(static_cast<std::uint16_t>(v >> 16));
}

void ByteWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v));
  u32(static_cast<std::uint32_t>(v >> 32));
}

void ByteWriter::patchU32(std::size_t at, std::uint32_t v) {
  auto& buf = *buf_;
  for (std::size_t i = 0; i < 4; ++i)
    buf.at(at + i) = static_cast<std::uint8_t>(v >> (8 * i));
}

void ByteReader::need(std::size_t n) const {
  if (remaining() < n)
    throw CodecError(CodecErrorKind::kTruncated, "truncated message");
}

std::uint8_t ByteReader::u8() {
  need(1);
  return bytes_[pos_++];
}

std::uint16_t ByteReader::u16() {
  const auto lo = u8();
  const auto hi = u8();
  return static_cast<std::uint16_t>(lo | (hi << 8));
}

std::uint32_t ByteReader::u32() {
  const std::uint32_t lo = u16();
  const std::uint32_t hi = u16();
  return lo | (hi << 16);
}

std::uint64_t ByteReader::u64() {
  const std::uint64_t lo = u32();
  const std::uint64_t hi = u32();
  return lo | (hi << 32);
}

std::span<const std::uint8_t> ByteReader::bytesSpan(std::size_t n) {
  need(n);
  const auto out = bytes_.subspan(pos_, n);
  pos_ += n;
  return out;
}

void encodeInto(const Message& msg, std::vector<std::uint8_t>& out) {
  ByteWriter w(out);
  w.u8(kWireVersion);
  w.u8(static_cast<std::uint8_t>(msg.kind));
  w.u8(msg.channel);
  w.u32(msg.from);
  w.u64(msg.dataId);
  w.u32(msg.hop);
  w.u8(msg.flags);
  w.u32(static_cast<std::uint32_t>(msg.entries.size()));
  for (const auto& e : msg.entries) {
    w.u32(e.node);
    w.u32(e.age);
    w.u64(e.profile);
  }
  w.u32(static_cast<std::uint32_t>(msg.ids.size()));
  for (const std::uint64_t id : msg.ids) w.u64(id);
}

std::vector<std::uint8_t> encode(const Message& msg) {
  std::vector<std::uint8_t> out;
  encodeInto(msg, out);
  return out;
}

void decodeInto(std::span<const std::uint8_t> bytes, Message& out) {
  out.reset();
  ByteReader r(bytes);
  if (r.u8() != kWireVersion)
    throw CodecError(CodecErrorKind::kBadVersion, "unsupported wire version");
  const auto kind = r.u8();
  if (kind < static_cast<std::uint8_t>(MessageKind::CyclonRequest) ||
      kind > kMessageKinds)
    throw CodecError(CodecErrorKind::kBadKind, "unknown message kind");
  out.kind = static_cast<MessageKind>(kind);
  out.channel = r.u8();
  if (out.channel > kMaxChannel)
    throw CodecError(CodecErrorKind::kBadChannel, "channel out of range");
  out.from = r.u32();
  out.dataId = r.u64();
  out.hop = r.u32();
  out.flags = r.u8();
  const std::uint32_t count = r.u32();
  if (count > kMaxWireEntries)
    throw CodecError(CodecErrorKind::kBadCount, "entry count out of range");
  // Cheap structural check before reserving: the claimed entries cannot
  // outnumber the bytes left (16 bytes each), so a forged count inside
  // the cap still cannot force a large dead reservation.
  if (count > r.remaining() / 16)
    throw CodecError(CodecErrorKind::kTruncated, "truncated entry list");
  out.entries.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    PeerDescriptor e;
    e.node = r.u32();
    e.age = r.u32();
    e.profile = r.u64();
    out.entries.push_back(e);
  }
  const std::uint32_t idCount = r.u32();
  if (idCount > kMaxWireEntries)
    throw CodecError(CodecErrorKind::kBadCount, "id count out of range");
  if (idCount > r.remaining() / 8)
    throw CodecError(CodecErrorKind::kTruncated, "truncated id list");
  out.ids.reserve(idCount);
  for (std::uint32_t i = 0; i < idCount; ++i) out.ids.push_back(r.u64());
  if (!r.exhausted())
    throw CodecError(CodecErrorKind::kTrailing, "trailing bytes after message");
}

Message decode(std::span<const std::uint8_t> bytes) {
  Message msg;
  decodeInto(bytes, msg);
  return msg;
}

}  // namespace vs07::net
