#include "net/codec.hpp"

namespace vs07::net {

namespace {
// Sanity cap: a view exchange carries at most a few dozen entries; anything
// claiming more is corrupt input, not a big view.
constexpr std::uint32_t kMaxWireEntries = 1u << 16;
constexpr std::uint8_t kWireVersion = 1;
}  // namespace

void ByteWriter::u8(std::uint8_t v) { buf_.push_back(v); }

void ByteWriter::u16(std::uint16_t v) {
  u8(static_cast<std::uint8_t>(v));
  u8(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::u32(std::uint32_t v) {
  u16(static_cast<std::uint16_t>(v));
  u16(static_cast<std::uint16_t>(v >> 16));
}

void ByteWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v));
  u32(static_cast<std::uint32_t>(v >> 32));
}

void ByteReader::need(std::size_t n) const {
  if (remaining() < n) throw CodecError("truncated message");
}

std::uint8_t ByteReader::u8() {
  need(1);
  return bytes_[pos_++];
}

std::uint16_t ByteReader::u16() {
  const auto lo = u8();
  const auto hi = u8();
  return static_cast<std::uint16_t>(lo | (hi << 8));
}

std::uint32_t ByteReader::u32() {
  const std::uint32_t lo = u16();
  const std::uint32_t hi = u16();
  return lo | (hi << 16);
}

std::uint64_t ByteReader::u64() {
  const std::uint64_t lo = u32();
  const std::uint64_t hi = u32();
  return lo | (hi << 32);
}

std::vector<std::uint8_t> encode(const Message& msg) {
  ByteWriter w;
  w.u8(kWireVersion);
  w.u8(static_cast<std::uint8_t>(msg.kind));
  w.u8(msg.channel);
  w.u32(msg.from);
  w.u64(msg.dataId);
  w.u32(msg.hop);
  w.u8(msg.flags);
  w.u32(static_cast<std::uint32_t>(msg.entries.size()));
  for (const auto& e : msg.entries) {
    w.u32(e.node);
    w.u32(e.age);
    w.u64(e.profile);
  }
  w.u32(static_cast<std::uint32_t>(msg.ids.size()));
  for (const std::uint64_t id : msg.ids) w.u64(id);
  return w.take();
}

Message decode(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  if (r.u8() != kWireVersion) throw CodecError("unsupported wire version");
  Message msg;
  const auto kind = r.u8();
  if (kind < static_cast<std::uint8_t>(MessageKind::CyclonRequest) ||
      kind > kMessageKinds)
    throw CodecError("unknown message kind");
  msg.kind = static_cast<MessageKind>(kind);
  msg.channel = r.u8();
  if (msg.channel > kMaxChannel) throw CodecError("channel out of range");
  msg.from = r.u32();
  msg.dataId = r.u64();
  msg.hop = r.u32();
  msg.flags = r.u8();
  const std::uint32_t count = r.u32();
  if (count > kMaxWireEntries) throw CodecError("entry count out of range");
  msg.entries.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    PeerDescriptor e;
    e.node = r.u32();
    e.age = r.u32();
    e.profile = r.u64();
    msg.entries.push_back(e);
  }
  const std::uint32_t idCount = r.u32();
  if (idCount > kMaxWireEntries) throw CodecError("id count out of range");
  msg.ids.reserve(idCount);
  for (std::uint32_t i = 0; i < idCount; ++i) msg.ids.push_back(r.u64());
  if (!r.exhausted()) throw CodecError("trailing bytes after message");
  return msg;
}

}  // namespace vs07::net
