// Binary serialisation of protocol messages (little-endian, length-prefixed).
//
// The simulator delivers Message values in-process, but the wire format is
// implemented and tested so that the protocols have a concrete, documented
// encoding — the piece a real deployment would put on UDP.
//
// Invariants: decode(encode(m)) == m for every representable Message
// (field order and integer widths are fixed, independent of host
// endianness), and decode rejects truncated or over-long buffers with an
// exception instead of reading out of bounds — both pinned by
// tests/net/codec_test.cpp.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "net/message.hpp"

namespace vs07::net {

/// Thrown on malformed input to decode functions.
class CodecError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Append-only little-endian byte writer.
class ByteWriter {
 public:
  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);

  const std::vector<std::uint8_t>& bytes() const noexcept { return buf_; }
  std::vector<std::uint8_t> take() noexcept { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked little-endian byte reader.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> bytes) noexcept
      : bytes_(bytes) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();

  std::size_t remaining() const noexcept { return bytes_.size() - pos_; }
  bool exhausted() const noexcept { return remaining() == 0; }

 private:
  void need(std::size_t n) const;
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

/// Encodes a message into self-contained bytes.
std::vector<std::uint8_t> encode(const Message& msg);

/// Decodes bytes produced by encode(). Throws CodecError on malformed or
/// trailing input.
Message decode(std::span<const std::uint8_t> bytes);

}  // namespace vs07::net
