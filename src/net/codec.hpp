// Binary serialisation of protocol messages (little-endian, length-prefixed).
//
// The simulator delivers Message values in-process, but this wire format
// is what the real-socket runtime (src/runtime/) actually puts on UDP, so
// decode treats its input as hostile: truncated, over-long, oversized or
// bad-version buffers raise a typed CodecError instead of reading out of
// bounds or allocating unbounded memory.
//
// Invariants: decode(encode(m)) == m for every representable Message
// (field order and integer widths are fixed, independent of host
// endianness), and every malformed input is rejected with a CodecError
// whose kind() names the failure — both pinned by
// tests/net/codec_test.cpp.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "net/message.hpp"

namespace vs07::net {

/// Version byte leading every encoded Message. Bumped on any layout
/// change; decode rejects everything else (kBadVersion).
inline constexpr std::uint8_t kWireVersion = 1;

/// Sanity cap on entry/id counts: a view exchange carries at most a few
/// dozen entries; anything claiming more is corrupt input, not a big
/// view. Also bounds the memory one hostile datagram can make a decoder
/// reserve.
inline constexpr std::uint32_t kMaxWireEntries = 1u << 16;

/// What exactly a decode rejected (the typed half of CodecError).
enum class CodecErrorKind : std::uint8_t {
  kTruncated = 0,   ///< input ended before the structure did
  kBadVersion,      ///< unknown wire version byte
  kBadMagic,        ///< wrong envelope magic (runtime frames)
  kBadKind,         ///< message/frame kind outside the known range
  kBadChannel,      ///< channel above kMaxChannel
  kBadCount,        ///< entry/id/annex count above its sanity cap
  kBadLength,       ///< embedded length field inconsistent or oversized
  kTrailing,        ///< well-formed structure followed by extra bytes
};

/// Name of a kind for error messages ("truncated", "bad-version", ...).
const char* codecErrorKindName(CodecErrorKind kind) noexcept;

/// Thrown on malformed input to decode functions.
class CodecError : public std::runtime_error {
 public:
  explicit CodecError(CodecErrorKind kind, const std::string& what)
      : std::runtime_error(what), kind_(kind) {}

  CodecErrorKind kind() const noexcept { return kind_; }

 private:
  CodecErrorKind kind_;
};

/// Append-only little-endian byte writer. Owns its buffer by default; the
/// borrowing constructor appends into a caller-owned vector instead, so
/// steady-state encoders (the runtime send path) reuse one buffer across
/// frames without copies.
class ByteWriter {
 public:
  ByteWriter() : buf_(&owned_) {}
  /// Appends into `external` (not cleared). The vector must outlive the
  /// writer; take() is not available in this mode.
  explicit ByteWriter(std::vector<std::uint8_t>& external) noexcept
      : buf_(&external) {}

  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);

  /// Overwrites a previously written u32 at byte offset `at` (length
  /// back-patching for envelope framing). Requires at + 4 <= size.
  void patchU32(std::size_t at, std::uint32_t v);

  std::size_t size() const noexcept { return buf_->size(); }
  const std::vector<std::uint8_t>& bytes() const noexcept { return *buf_; }
  std::vector<std::uint8_t> take() noexcept { return std::move(owned_); }

 private:
  std::vector<std::uint8_t> owned_;
  std::vector<std::uint8_t>* buf_;
};

/// Bounds-checked little-endian byte reader.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> bytes) noexcept
      : bytes_(bytes) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();

  /// The next `n` bytes as a subspan (consumed). Throws kTruncated.
  std::span<const std::uint8_t> bytesSpan(std::size_t n);

  std::size_t remaining() const noexcept { return bytes_.size() - pos_; }
  bool exhausted() const noexcept { return remaining() == 0; }

 private:
  void need(std::size_t n) const;
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

/// Encodes a message into self-contained bytes.
std::vector<std::uint8_t> encode(const Message& msg);

/// Allocation-reusing variant: appends the encoding to `out` (not
/// cleared, so envelope headers can precede it; clear first for a bare
/// message).
void encodeInto(const Message& msg, std::vector<std::uint8_t>& out);

/// Decodes bytes produced by encode(). Throws CodecError on malformed or
/// trailing input.
Message decode(std::span<const std::uint8_t> bytes);

/// Allocation-reusing variant: decodes into `out` (reset first; entry and
/// id buffer capacity is retained). On throw `out` is valid but holds an
/// unspecified partial decode — reset() it before reuse.
void decodeInto(std::span<const std::uint8_t> bytes, Message& out);

}  // namespace vs07::net
