// Replicated content placement over frozen overlays — what searches
// look for.
//
// Ferretti's search evaluation ("Searching in Unstructured Overlays
// Using Local Knowledge and Gossip") places a catalogue of items over
// the population, each replicated on a handful of random nodes, and
// measures how reliably TTL-limited queries locate a copy as the
// replication factor varies. ContentPlacement reproduces that setup on
// top of a cast::OverlaySnapshot: items land only on alive nodes, the
// assignment is deterministic in one seed, and both directions of the
// relation (item -> holders, node -> items) are queryable in O(log)
// from compact CSR arrays.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cast/snapshot.hpp"
#include "common/expect.hpp"
#include "net/node_id.hpp"

namespace vs07::search {

/// Item ids are dense: [0, items).
using ItemId = std::uint32_t;

/// Immutable item -> holders assignment (see file comment).
class ContentPlacement {
 public:
  /// Replicates each of `items` items on min(`replication`, alive)
  /// distinct alive nodes of `overlay`, uniformly at random,
  /// deterministically in `seed`. Requires at least one alive node when
  /// items > 0.
  ContentPlacement(const cast::OverlaySnapshot& overlay, std::uint32_t items,
                   std::uint32_t replication, std::uint64_t seed);

  std::uint32_t items() const noexcept { return items_; }
  std::uint32_t replication() const noexcept { return replication_; }

  /// The nodes holding `item`, ascending by id.
  std::span<const NodeId> holders(ItemId item) const {
    VS07_EXPECT(item < items_);
    return {holderData_.data() + holderOffsets_[item],
            holderOffsets_[item + 1] - holderOffsets_[item]};
  }

  /// The items held by `node`, ascending by id (empty for non-holders
  /// and for ids outside the placement's population).
  std::span<const ItemId> itemsHeldBy(NodeId node) const {
    if (node + 1 >= itemOffsets_.size()) return {};
    return {itemData_.data() + itemOffsets_[node],
            itemOffsets_[node + 1] - itemOffsets_[node]};
  }

  /// Whether `node` holds a copy of `item` (binary search over the
  /// node's item list).
  bool holds(NodeId node, ItemId item) const;

 private:
  std::uint32_t items_ = 0;
  std::uint32_t replication_ = 0;
  // CSR item -> holders, holders ascending within an item.
  std::vector<std::uint32_t> holderOffsets_;
  std::vector<NodeId> holderData_;
  // CSR node -> items, items ascending within a node.
  std::vector<std::uint32_t> itemOffsets_;
  std::vector<ItemId> itemData_;
};

}  // namespace vs07::search
