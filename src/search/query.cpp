#include "search/query.hpp"

#include <algorithm>
#include <ostream>
#include <utility>

#include "common/expect.hpp"

namespace vs07::search {

namespace {

/// Stream lanes of the per-query rng derivation (arbitrary distinct
/// constants; see common/rng.hpp deriveStreamSeed).
constexpr std::uint64_t kPickLane = 0x7069636BULL;  // "pick": origin + item
constexpr std::uint64_t kWalkLane = 0x66777264ULL;  // "fwrd": forwarding

}  // namespace

const char* searchStrategyName(SearchStrategy strategy) noexcept {
  switch (strategy) {
    case SearchStrategy::kTtlGossip:
      return "ttlgossip";
    case SearchStrategy::kFlood:
      return "flood";
    case SearchStrategy::kRandomWalk:
      return "randomwalk";
  }
  return "unknown";
}

const std::vector<std::string>& searchStrategyChoices() {
  static const std::vector<std::string> kChoices = {"ttlgossip", "flood",
                                                    "randomwalk"};
  return kChoices;
}

std::ostream& operator<<(std::ostream& out, const SearchReport& report) {
  out << searchStrategyName(report.strategy) << "{ttl=" << report.ttl
      << " queries=" << report.queries << " resolved=" << report.resolved
      << " cacheResolved=" << report.cacheResolved
      << " messages=" << report.messagesTotal
      << " toDead=" << report.messagesToDead
      << " hopsTotal=" << report.hopsToResolveTotal
      << " learned=" << report.cacheInsertions << " perHop=[";
  for (std::size_t h = 0; h < report.resolvedPerHop.size(); ++h)
    out << (h ? " " : "") << report.resolvedPerHop[h];
  return out << "]}";
}

QuerySession::QuerySession(cast::OverlaySnapshot overlay, QueryOptions options)
    : overlay_(std::move(overlay)),
      options_(options),
      placement_(overlay_, options.items, options.replication, options.seed) {
  VS07_EXPECT(options_.ttl >= 1);
  VS07_EXPECT(options_.items >= 1);
  VS07_EXPECT(options_.replication >= 1);
  VS07_EXPECT((options_.strategy != SearchStrategy::kTtlGossip ||
               options_.fanout >= 1));
  VS07_EXPECT((options_.strategy != SearchStrategy::kRandomWalk ||
               options_.walkers >= 1));
  const std::uint32_t totalIds = overlay_.totalIds();
  visitedEpoch_.assign(totalIds, 0);
  parent_.assign(totalIds, kNoNode);
  if (options_.cacheCapacity > 0) {
    cache_.assign(static_cast<std::size_t>(totalIds) * options_.cacheCapacity,
                  CacheEntry{});
    cacheNext_.assign(totalIds, 0);
    if (options_.advertiseToNeighbours) seedAdvertisedKnowledge();
  }
}

void QuerySession::appendLinks(NodeId node, std::vector<NodeId>& out) const {
  out.clear();
  const auto r = overlay_.rlinks(node);
  const auto d = overlay_.dlinks(node);
  out.insert(out.end(), r.begin(), r.end());
  out.insert(out.end(), d.begin(), d.end());
}

NodeId QuerySession::cacheLookup(NodeId node, ItemId item) const {
  if (options_.cacheCapacity == 0) return kNoNode;
  const auto* slots = cache_.data() +
                      static_cast<std::size_t>(node) * options_.cacheCapacity;
  for (std::uint32_t i = 0; i < options_.cacheCapacity; ++i)
    if (slots[i].item == item) return slots[i].holder;
  return kNoNode;
}

bool QuerySession::cacheInsert(NodeId node, ItemId item, NodeId holder) {
  if (options_.cacheCapacity == 0) return false;
  auto* slots = cache_.data() +
                static_cast<std::size_t>(node) * options_.cacheCapacity;
  for (std::uint32_t i = 0; i < options_.cacheCapacity; ++i) {
    if (slots[i].item != item) continue;
    if (slots[i].holder == holder) return false;  // already known
    slots[i].holder = holder;
    return true;
  }
  // FIFO replacement: deterministic, no recency bookkeeping to keep
  // bit-identical across execution models.
  auto& next = cacheNext_[node];
  slots[next] = {item, holder};
  next = (next + 1) % options_.cacheCapacity;
  return true;
}

void QuerySession::seedAdvertisedKnowledge() {
  // Each node learns what its direct overlay neighbours hold — the
  // steady-state local knowledge Ferretti's nodes accumulate from the
  // gossip stream. Deterministic: alive ids ascending, links in
  // snapshot order, items ascending.
  std::vector<NodeId> links;
  for (const NodeId node : overlay_.aliveIds()) {
    appendLinks(node, links);
    for (const NodeId neighbour : links) {
      if (neighbour == kNoNode || neighbour >= overlay_.totalIds()) continue;
      for (const ItemId item : placement_.itemsHeldBy(neighbour))
        cacheInsert(node, item, neighbour);
    }
  }
}

void QuerySession::learnAlongPath(NodeId last, ItemId item, NodeId holder,
                                  SearchReport& report) {
  if (!options_.learnFromTraffic || options_.cacheCapacity == 0) return;
  // The answer retraces the query's first-visit chain; every node it
  // passes caches (item -> holder). Bounded by ttl: parents form a tree
  // rooted at the origin.
  for (NodeId node = last; node != kNoNode; node = parent_[node])
    if (node != holder && cacheInsert(node, item, holder))
      ++report.cacheInsertions;
}

std::uint64_t QuerySession::cachedEntries() const noexcept {
  std::uint64_t live = 0;
  for (const auto& entry : cache_)
    if (entry.item != kNoItem) ++live;
  return live;
}

bool QuerySession::runOne(NodeId origin, ItemId item, SearchReport& report) {
  VS07_EXPECT(overlay_.isAlive(origin));
  VS07_EXPECT(item < options_.items);
  if (report.resolvedPerHop.empty()) {
    report.strategy = options_.strategy;
    report.ttl = options_.ttl;
    report.fanout = options_.fanout;
    report.walkers = options_.walkers;
    report.items = options_.items;
    report.replication = options_.replication;
    report.resolvedPerHop.assign(options_.ttl + 1, 0);
  }

  Rng rng(deriveStreamSeed(options_.seed, kWalkLane, queriesIssued_));
  ++queriesIssued_;
  ++report.queries;
  ++epoch_;
  visitedEpoch_[origin] = epoch_;
  parent_[origin] = kNoNode;

  // Hop 0: the origin itself may hold the item or know a holder.
  if (placement_.holds(origin, item)) {
    ++report.resolved;
    ++report.resolvedPerHop[0];
    return true;
  }
  if (const NodeId known = cacheLookup(origin, item); known != kNoNode) {
    ++report.resolved;
    ++report.cacheResolved;
    ++report.resolvedPerHop[0];
    return true;
  }

  const bool hit =
      options_.strategy == SearchStrategy::kRandomWalk
          ? runWalkers(origin, item, rng, report)
          : runSpreading(origin, item,
                         options_.strategy == SearchStrategy::kFlood, rng,
                         report);
  return hit;
}

bool QuerySession::runSpreading(NodeId origin, ItemId item, bool flood,
                                Rng& rng, SearchReport& report) {
  frontier_.clear();
  frontier_.push_back(origin);
  for (std::uint32_t hop = 1; hop <= options_.ttl && !frontier_.empty();
       ++hop) {
    nextFrontier_.clear();
    for (const NodeId node : frontier_) {
      appendLinks(node, linkScratch_);
      std::size_t targets = linkScratch_.size();
      if (!flood && options_.fanout < targets) {
        // Partial Fisher–Yates: the first `fanout` slots become the
        // distinct random picks. Draw order is fixed, so the rng
        // consumption is a pure function of the frontier — with or
        // without the cache layer (it never routes).
        for (std::size_t i = 0; i < options_.fanout; ++i) {
          const std::size_t j = i + rng.below(linkScratch_.size() - i);
          std::swap(linkScratch_[i], linkScratch_[j]);
        }
        targets = options_.fanout;
      }
      for (std::size_t i = 0; i < targets; ++i) {
        const NodeId to = linkScratch_[i];
        ++report.messagesTotal;
        if (to == kNoNode || to >= overlay_.totalIds() ||
            !overlay_.isAlive(to)) {
          ++report.messagesToDead;
          continue;
        }
        if (visitedEpoch_[to] == epoch_) continue;  // redundant delivery
        visitedEpoch_[to] = epoch_;
        parent_[to] = node;
        // Resolution is checked at delivery: first a local copy, then
        // the local-knowledge cache. A resolved query stops forwarding
        // immediately (the answer short-circuits the wave).
        if (placement_.holds(to, item)) {
          ++report.resolved;
          ++report.resolvedPerHop[hop];
          report.hopsToResolveTotal += hop;
          learnAlongPath(to, item, to, report);
          return true;
        }
        if (const NodeId known = cacheLookup(to, item); known != kNoNode) {
          ++report.resolved;
          ++report.cacheResolved;
          ++report.resolvedPerHop[hop];
          report.hopsToResolveTotal += hop;
          learnAlongPath(to, item, known, report);
          return true;
        }
        nextFrontier_.push_back(to);
      }
    }
    frontier_.swap(nextFrontier_);
  }
  return false;
}

bool QuerySession::runWalkers(NodeId origin, ItemId item, Rng& rng,
                              SearchReport& report) {
  walkerPos_.assign(options_.walkers, origin);
  if (walkerPath_.size() < options_.walkers) walkerPath_.resize(options_.walkers);
  for (auto& path : walkerPath_) path.clear();
  for (std::uint32_t w = 0; w < options_.walkers; ++w)
    walkerPath_[w].push_back(origin);

  for (std::uint32_t step = 1; step <= options_.ttl; ++step) {
    bool anyActive = false;
    for (std::uint32_t w = 0; w < options_.walkers; ++w) {
      const NodeId at = walkerPos_[w];
      if (at == kNoNode) continue;  // dead-ended earlier
      appendLinks(at, linkScratch_);
      if (linkScratch_.empty()) {
        walkerPos_[w] = kNoNode;
        continue;
      }
      const NodeId to = linkScratch_[rng.below(linkScratch_.size())];
      ++report.messagesTotal;
      if (to == kNoNode || to >= overlay_.totalIds() ||
          !overlay_.isAlive(to)) {
        ++report.messagesToDead;
        walkerPos_[w] = kNoNode;  // the walk is absorbed by the dead node
        continue;
      }
      anyActive = true;
      walkerPos_[w] = to;
      walkerPath_[w].push_back(to);
      const bool direct = placement_.holds(to, item);
      const NodeId known = direct ? to : cacheLookup(to, item);
      if (known != kNoNode) {
        ++report.resolved;
        if (!direct) ++report.cacheResolved;
        ++report.resolvedPerHop[step];
        report.hopsToResolveTotal += step;
        if (options_.learnFromTraffic && options_.cacheCapacity > 0)
          for (const NodeId node : walkerPath_[w])
            if (node != known && cacheInsert(node, item, known))
              ++report.cacheInsertions;
        return true;
      }
    }
    if (!anyActive) break;
  }
  return false;
}

SearchReport QuerySession::run(std::uint32_t queries) {
  SearchReport report;
  const auto& alive = overlay_.aliveIds();
  VS07_EXPECT(!alive.empty());
  for (std::uint32_t q = 0; q < queries; ++q) {
    // Origin and item ride their own stream so adding a draw to the
    // forwarding logic never shifts workload composition.
    Rng pick(deriveStreamSeed(options_.seed, kPickLane, queriesIssued_));
    const NodeId origin = alive[pick.below(alive.size())];
    const ItemId item = static_cast<ItemId>(pick.below(options_.items));
    runOne(origin, item, report);
  }
  return report;
}

}  // namespace vs07::search
