// TTL-limited search over the gossip overlays — the query workload.
//
// The RingCast/VICINITY views were built to *push* messages; Ferretti's
// "Searching in Unstructured Overlays Using Local Knowledge and Gossip"
// shows the same structures answering *queries*: a node looking for an
// item forwards a TTL-limited request over its overlay links, and
// per-node local-knowledge caches — learned from traffic that passed by
// earlier — resolve repeat queries at a fraction of the flood cost.
//
// QuerySession reproduces that evaluation over a frozen
// cast::OverlaySnapshot with three strategies behind one SearchReport:
//
//   * kTtlGossip   — each newly reached node forwards the query to
//                    `fanout` random overlay neighbours, `ttl` hops deep
//                    (Ferretti's gossip search).
//   * kFlood       — forward to *all* overlay neighbours (Gnutella-style
//                    baseline; maximal hit rate, maximal cost).
//   * kRandomWalk  — `walkers` independent walkers each take up to `ttl`
//                    uniform-random steps (the classic low-cost
//                    baseline).
//
// Execution is hop-synchronous and purely a function of
// (overlay, options): like cast::disseminate, a query replays over the
// frozen links without touching any transport or engine clock. That is
// what makes search reports conformance-testable — any two scenarios
// whose overlays are bit-identical (e.g. the sharded engine at different
// worker counts) produce bit-identical SearchReports.
//
// The local-knowledge cache never *routes* — forwarding draws are
// identical with and without it; it only adds ways for a query to
// resolve. That asymmetry is the invariant the property suite pins:
// enabling the cache can only raise the hit rate at equal (ttl, fanout)
// budget.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "cast/snapshot.hpp"
#include "cast/strategy.hpp"
#include "common/rng.hpp"
#include "net/node_id.hpp"
#include "search/content.hpp"

namespace vs07::search {

/// The forwarding rule of a search (see file comment).
enum class SearchStrategy : std::uint8_t {
  kTtlGossip = 0,
  kFlood = 1,
  kRandomWalk = 2,
};

/// Stable lowercase name — the CLI / bench-JSON vocabulary
/// ("ttlgossip" / "flood" / "randomwalk").
const char* searchStrategyName(SearchStrategy strategy) noexcept;

/// The --search choice list, index-aligned with SearchStrategy.
const std::vector<std::string>& searchStrategyChoices();

/// Everything configurable about a query workload.
struct QueryOptions {
  SearchStrategy strategy = SearchStrategy::kTtlGossip;
  /// Which overlay snapshot analysis::Scenario freezes for the session
  /// (same vocabulary as dissemination: kRandCast = r-links only,
  /// kRingCast = r-links + ring d-links, kMultiRing = all rings).
  cast::Strategy overlay = cast::Strategy::kRingCast;
  /// Maximum forwarding depth (gossip/flood) or walk length (walkers).
  std::uint32_t ttl = 8;
  /// kTtlGossip: overlay neighbours each reached node forwards to.
  std::uint32_t fanout = 2;
  /// kRandomWalk: independent walkers launched per query.
  std::uint32_t walkers = 4;
  /// Catalogue size (items are dense ids [0, items)).
  std::uint32_t items = 64;
  /// Copies of each item placed on distinct alive nodes.
  std::uint32_t replication = 8;
  /// Local-knowledge entries per node (0 disables the cache layer).
  std::uint32_t cacheCapacity = 16;
  /// Seed caches at build time with the items each node's direct overlay
  /// neighbours hold — Ferretti's gossip-advertised local knowledge.
  bool advertiseToNeighbours = true;
  /// Nodes on a resolved query's answer path learn (item -> holder).
  bool learnFromTraffic = true;
  /// Root seed of placement, origin/item draws, and forwarding picks.
  std::uint64_t seed = 1;

  // -- presets -----------------------------------------------------------

  /// Ferretti's evaluated configuration: TTL-gossip with caches on.
  static QueryOptions ttlGossip(std::uint32_t ttl = 8,
                                std::uint32_t fanout = 2) noexcept {
    QueryOptions o;
    o.strategy = SearchStrategy::kTtlGossip;
    o.ttl = ttl;
    o.fanout = fanout;
    return o;
  }
  /// Flood baseline at the same TTL (caches off: flooding needs none).
  static QueryOptions flood(std::uint32_t ttl = 8) noexcept {
    QueryOptions o;
    o.strategy = SearchStrategy::kFlood;
    o.ttl = ttl;
    o.cacheCapacity = 0;
    return o;
  }
  /// k-random-walk baseline at the same TTL (caches off).
  static QueryOptions randomWalk(std::uint32_t walkers = 4,
                                 std::uint32_t ttl = 8) noexcept {
    QueryOptions o;
    o.strategy = SearchStrategy::kRandomWalk;
    o.walkers = walkers;
    o.ttl = ttl;
    o.cacheCapacity = 0;
    return o;
  }
};

/// Everything measured about one batch of queries. All counters are
/// integers so reports compare bit-exactly across execution models (the
/// conformance harness's contract); the rates are derived on demand.
struct SearchReport {
  SearchStrategy strategy = SearchStrategy::kTtlGossip;
  std::uint32_t ttl = 0;
  std::uint32_t fanout = 0;
  std::uint32_t walkers = 0;
  std::uint32_t items = 0;
  std::uint32_t replication = 0;

  std::uint64_t queries = 0;
  /// Queries that located a copy (directly or via a cache entry).
  std::uint64_t resolved = 0;
  /// Of `resolved`: queries whose *first* resolution came from a
  /// local-knowledge cache entry rather than a direct copy.
  std::uint64_t cacheResolved = 0;

  /// Query forwards, including redundant deliveries and messages
  /// absorbed by dead link targets (answer traffic is not counted — the
  /// cost metric of the paper is query propagation).
  std::uint64_t messagesTotal = 0;
  std::uint64_t messagesToDead = 0;

  /// Sum of the resolution hop over resolved queries (hop 0 = resolved
  /// at the origin itself).
  std::uint64_t hopsToResolveTotal = 0;
  /// resolvedPerHop[h] = queries first resolved at hop h; size ttl + 1.
  std::vector<std::uint64_t> resolvedPerHop;

  /// Cache entries written by answer-path learning while this batch ran
  /// (advertisement seeding happens once at session build and is
  /// visible through QuerySession::cachedEntries instead).
  std::uint64_t cacheInsertions = 0;

  double hitRatePercent() const noexcept {
    return queries == 0 ? 0.0
                        : 100.0 * static_cast<double>(resolved) /
                              static_cast<double>(queries);
  }
  /// Fraction of resolved queries answered by a cache entry.
  double cacheHitFraction() const noexcept {
    return resolved == 0 ? 0.0
                         : static_cast<double>(cacheResolved) /
                               static_cast<double>(resolved);
  }
  double avgHopsToResolve() const noexcept {
    return resolved == 0 ? 0.0
                         : static_cast<double>(hopsToResolveTotal) /
                               static_cast<double>(resolved);
  }
  double messagesPerQuery() const noexcept {
    return queries == 0 ? 0.0
                        : static_cast<double>(messagesTotal) /
                              static_cast<double>(queries);
  }

  friend bool operator==(const SearchReport&, const SearchReport&) = default;
};

/// Human-readable one-liner (gtest failure messages, bench logs).
std::ostream& operator<<(std::ostream& out, const SearchReport& report);

/// One query workload over one frozen overlay (see file comment).
/// Stateful: local-knowledge caches persist across run() calls, so a
/// session's report sequence is deterministic in (overlay, options) but
/// individual runs are order-sensitive — exactly like a deployed system
/// whose caches warm up under traffic.
class QuerySession {
 public:
  QuerySession(cast::OverlaySnapshot overlay, QueryOptions options);

  /// Issues `queries` searches — each from a uniform-random alive origin
  /// for a uniform-random item — and returns the aggregate report.
  /// Query i draws from its own derived rng stream, so the batch is
  /// reproducible and insensitive to how it is split across run() calls
  /// (cache state aside).
  SearchReport run(std::uint32_t queries);

  /// Issues one search for `item` from `origin` (must be alive),
  /// accumulating into `report`. Returns true if the query resolved.
  bool runOne(NodeId origin, ItemId item, SearchReport& report);

  const cast::OverlaySnapshot& overlay() const noexcept { return overlay_; }
  const ContentPlacement& placement() const noexcept { return placement_; }
  const QueryOptions& options() const noexcept { return options_; }

  /// Live cache entries across all nodes (inspection / tests).
  std::uint64_t cachedEntries() const noexcept;

 private:
  struct CacheEntry {
    ItemId item = kNoItem;
    NodeId holder = kNoNode;
  };
  static constexpr ItemId kNoItem = ~ItemId{0};

  /// The links a query forwards over (r-links ++ d-links of `node`).
  void appendLinks(NodeId node, std::vector<NodeId>& out) const;
  NodeId cacheLookup(NodeId node, ItemId item) const;
  bool cacheInsert(NodeId node, ItemId item, NodeId holder);
  void learnAlongPath(NodeId last, ItemId item, NodeId holder,
                      SearchReport& report);
  void seedAdvertisedKnowledge();

  bool runSpreading(NodeId origin, ItemId item, bool flood, Rng& rng,
                    SearchReport& report);
  bool runWalkers(NodeId origin, ItemId item, Rng& rng, SearchReport& report);

  cast::OverlaySnapshot overlay_;
  QueryOptions options_;
  ContentPlacement placement_;

  // Per-node bounded FIFO caches, flattened: node n owns slots
  // [n * cacheCapacity, (n + 1) * cacheCapacity).
  std::vector<CacheEntry> cache_;
  std::vector<std::uint32_t> cacheNext_;

  // Per-query scratch, version-stamped so a new query never clears the
  // arrays (the epoch trick the engines use).
  std::vector<std::uint32_t> visitedEpoch_;
  std::vector<NodeId> parent_;
  std::vector<NodeId> frontier_;
  std::vector<NodeId> nextFrontier_;
  std::vector<NodeId> linkScratch_;
  std::vector<NodeId> walkerPos_;
  std::vector<std::vector<NodeId>> walkerPath_;
  std::uint32_t epoch_ = 0;
  std::uint64_t queriesIssued_ = 0;
};

}  // namespace vs07::search
