#include "search/content.hpp"

#include <algorithm>

#include "common/rng.hpp"

namespace vs07::search {

ContentPlacement::ContentPlacement(const cast::OverlaySnapshot& overlay,
                                   std::uint32_t items,
                                   std::uint32_t replication,
                                   std::uint64_t seed)
    : items_(items), replication_(replication) {
  const auto& alive = overlay.aliveIds();
  VS07_EXPECT((items == 0 || !alive.empty()) &&
              "placing items needs at least one alive node");
  const std::uint32_t copies = static_cast<std::uint32_t>(
      std::min<std::size_t>(replication, alive.size()));

  holderOffsets_.assign(items_ + 1, 0);
  holderData_.reserve(static_cast<std::size_t>(items_) * copies);
  std::vector<NodeId> picked;
  picked.reserve(copies);
  for (ItemId item = 0; item < items_; ++item) {
    // Each item draws from its own derived stream, so a placement is a
    // pure function of (seed, item) — independent of catalogue size
    // changes elsewhere and cheap to reason about in property tests.
    Rng rng(deriveStreamSeed(seed, /*lane=*/0x706C6163ULL /*"plac"*/, item));
    picked.clear();
    // Rejection sampling: copies << alive in every realistic setting, so
    // the expected number of redraws is tiny and the cost stays
    // O(copies^2) instead of O(alive) per item.
    while (picked.size() < copies) {
      const NodeId candidate = alive[rng.below(alive.size())];
      if (std::find(picked.begin(), picked.end(), candidate) == picked.end())
        picked.push_back(candidate);
    }
    std::sort(picked.begin(), picked.end());
    holderOffsets_[item + 1] =
        holderOffsets_[item] + static_cast<std::uint32_t>(picked.size());
    holderData_.insert(holderData_.end(), picked.begin(), picked.end());
  }

  // Invert into node -> items with a counting pass (both CSRs stay
  // ascending: items are appended in id order).
  const std::uint32_t totalIds = overlay.totalIds();
  itemOffsets_.assign(totalIds + 1, 0);
  for (const NodeId holder : holderData_) ++itemOffsets_[holder + 1];
  for (std::uint32_t n = 0; n < totalIds; ++n)
    itemOffsets_[n + 1] += itemOffsets_[n];
  itemData_.resize(holderData_.size());
  std::vector<std::uint32_t> cursor(itemOffsets_.begin(),
                                    itemOffsets_.end() - 1);
  for (ItemId item = 0; item < items_; ++item)
    for (const NodeId holder : holders(item))
      itemData_[cursor[holder]++] = item;
}

bool ContentPlacement::holds(NodeId node, ItemId item) const {
  const auto held = itemsHeldBy(node);
  return std::binary_search(held.begin(), held.end(), item);
}

}  // namespace vs07::search
