#include "analysis/stack.hpp"

#include "sim/bootstrap.hpp"

namespace vs07::analysis {

ProtocolStack::ProtocolStack(const StackConfig& config)
    : config_(config),
      network_(config.nodes, mix64(config.seed ^ 0x6E6F646573ULL)),
      router_(network_),
      transport_([this](NodeId to, const net::Message& m) {
        router_.deliver(to, m);
      }),
      cyclon_(network_, transport_, router_, config.cyclon,
              mix64(config.seed ^ 0x6379636CULL)),
      rings_(network_, transport_, router_, cyclon_, config.vicinity,
             config.rings, mix64(config.seed ^ 0x72696E67ULL)),
      engine_(network_, mix64(config.seed ^ 0x656E67ULL)) {
  engine_.addProtocol(cyclon_);
  engine_.addProtocol(rings_);
}

void ProtocolStack::warmup() {
  sim::bootstrapStar(network_, cyclon_, /*hub=*/0);
  engine_.run(config_.warmupCycles);
}

std::uint64_t ProtocolStack::runChurnUntilFullTurnover(
    double rate, std::uint64_t maxCycles) {
  if (!churn_) {
    churn_ = std::make_unique<sim::ChurnControl>(
        network_, rate, mix64(config_.seed ^ 0x636875726EULL));
    churn_->addJoinHandler(cyclon_);
    churn_->addJoinHandler(rings_);
    engine_.addControl(*churn_);
  }
  return engine_.runUntil(
      [this] { return network_.initialSurvivors() == 0; }, maxCycles);
}

void ProtocolStack::runCycles(std::uint64_t cycles) { engine_.run(cycles); }

cast::OverlaySnapshot ProtocolStack::snapshotRandom() const {
  return cast::snapshotRandom(network_, cyclon_);
}

cast::OverlaySnapshot ProtocolStack::snapshotRing() const {
  return cast::snapshotRing(network_, cyclon_, rings_.ring(0));
}

cast::OverlaySnapshot ProtocolStack::snapshotMultiRing() const {
  return cast::snapshotMultiRing(network_, cyclon_, rings_);
}

}  // namespace vs07::analysis
