#include "analysis/experiment.hpp"

#include "analysis/parallel_sweep.hpp"
#include "analysis/scenario.hpp"
#include "common/expect.hpp"

// The free functions are the sequential face of the cell-based runner in
// analysis/parallel_sweep.cpp: every call delegates to a one-thread
// ParallelSweep, so sequential and parallel execution share one code
// path and one canonical result (bit-identical at any thread count).

namespace vs07::analysis {

EffectivenessPoint measureEffectiveness(const cast::OverlaySnapshot& overlay,
                                        const cast::TargetSelector& selector,
                                        std::uint32_t fanout,
                                        std::uint32_t runs,
                                        std::uint64_t seed) {
  return ParallelSweep().measureEffectiveness(overlay, selector, fanout,
                                              runs, seed);
}

EffectivenessPoint measureEffectiveness(const cast::OverlaySnapshot& overlay,
                                        cast::Strategy strategy,
                                        std::uint32_t fanout,
                                        std::uint32_t runs,
                                        std::uint64_t seed) {
  return measureEffectiveness(overlay, cast::selectorFor(strategy), fanout,
                              runs, seed);
}

EffectivenessPoint measureEffectiveness(const Scenario& scenario,
                                        cast::Strategy strategy,
                                        std::uint32_t fanout,
                                        std::uint32_t runs,
                                        std::uint64_t seed) {
  return measureEffectiveness(scenario.snapshot(strategy), strategy, fanout,
                              runs, seed);
}

std::vector<EffectivenessPoint> sweepEffectiveness(
    const cast::OverlaySnapshot& overlay, const cast::TargetSelector& selector,
    const std::vector<std::uint32_t>& fanouts, std::uint32_t runs,
    std::uint64_t seed) {
  return ParallelSweep().sweepEffectiveness(overlay, selector, fanouts, runs,
                                            seed);
}

std::vector<EffectivenessPoint> sweepEffectiveness(
    const cast::OverlaySnapshot& overlay, cast::Strategy strategy,
    const std::vector<std::uint32_t>& fanouts, std::uint32_t runs,
    std::uint64_t seed) {
  return sweepEffectiveness(overlay, cast::selectorFor(strategy), fanouts,
                            runs, seed);
}

std::vector<EffectivenessPoint> sweepEffectiveness(
    const Scenario& scenario, cast::Strategy strategy,
    const std::vector<std::uint32_t>& fanouts, std::uint32_t runs,
    std::uint64_t seed) {
  return sweepEffectiveness(scenario.snapshot(strategy), strategy, fanouts,
                            runs, seed);
}

ProgressStats measureProgress(const cast::OverlaySnapshot& overlay,
                              const cast::TargetSelector& selector,
                              std::uint32_t fanout, std::uint32_t runs,
                              std::uint64_t seed) {
  return ParallelSweep().measureProgress(overlay, selector, fanout, runs,
                                         seed);
}

ProgressStats measureProgress(const cast::OverlaySnapshot& overlay,
                              cast::Strategy strategy, std::uint32_t fanout,
                              std::uint32_t runs, std::uint64_t seed) {
  return measureProgress(overlay, cast::selectorFor(strategy), fanout, runs,
                         seed);
}

ProgressStats measureProgress(const Scenario& scenario,
                              cast::Strategy strategy, std::uint32_t fanout,
                              std::uint32_t runs, std::uint64_t seed) {
  return measureProgress(scenario.snapshot(strategy), strategy, fanout, runs,
                         seed);
}

CountHistogram lifetimeHistogram(const sim::Network& network,
                                 std::uint64_t nowCycle) {
  CountHistogram histogram;
  for (const NodeId id : network.aliveIds())
    histogram.add(network.lifetime(id, nowCycle));
  return histogram;
}

MissLifetimeStudy measureMissLifetimes(const cast::OverlaySnapshot& overlay,
                                       const cast::TargetSelector& selector,
                                       const sim::Network& network,
                                       std::uint64_t nowCycle,
                                       std::uint32_t fanout,
                                       std::uint32_t runs,
                                       std::uint64_t seed) {
  return ParallelSweep().measureMissLifetimes(overlay, selector, network,
                                              nowCycle, fanout, runs, seed);
}

MissLifetimeStudy measureMissLifetimes(const cast::OverlaySnapshot& overlay,
                                       cast::Strategy strategy,
                                       const sim::Network& network,
                                       std::uint64_t nowCycle,
                                       std::uint32_t fanout,
                                       std::uint32_t runs,
                                       std::uint64_t seed) {
  return measureMissLifetimes(overlay, cast::selectorFor(strategy), network,
                              nowCycle, fanout, runs, seed);
}

MissLifetimeStudy measureMissLifetimes(const Scenario& scenario,
                                       cast::Strategy strategy,
                                       std::uint32_t fanout,
                                       std::uint32_t runs,
                                       std::uint64_t seed) {
  return measureMissLifetimes(scenario.snapshot(strategy), strategy,
                              scenario.network(), scenario.engine().cycle(),
                              fanout, runs, seed);
}

}  // namespace vs07::analysis
