#include "analysis/experiment.hpp"

#include <algorithm>

#include "analysis/scenario.hpp"
#include "common/expect.hpp"
#include "common/rng.hpp"

namespace vs07::analysis {

namespace {

/// Accumulates reports into an EffectivenessPoint; `finish` divides.
class EffectivenessAccumulator {
 public:
  explicit EffectivenessAccumulator(std::uint32_t fanout) {
    point_.fanout = fanout;
  }

  void add(const cast::DeliveryReport& report) {
    ++point_.runs;
    missSum_ += report.missRatioPercent();
    completeRuns_ += report.complete() ? 1 : 0;
    totalSum_ += static_cast<double>(report.messagesTotal);
    virginSum_ += static_cast<double>(report.messagesVirgin);
    redundantSum_ += static_cast<double>(report.messagesRedundant);
    toDeadSum_ += static_cast<double>(report.messagesToDead);
    lastHopSum_ += static_cast<double>(report.lastHop);
    point_.totalMisses += report.missed.size();
  }

  EffectivenessPoint finish() {
    VS07_EXPECT(point_.runs > 0);
    const auto runs = static_cast<double>(point_.runs);
    point_.avgMissPercent = missSum_ / runs;
    point_.completePercent = 100.0 * completeRuns_ / runs;
    point_.avgMessagesTotal = totalSum_ / runs;
    point_.avgVirgin = virginSum_ / runs;
    point_.avgRedundant = redundantSum_ / runs;
    point_.avgToDead = toDeadSum_ / runs;
    point_.avgLastHop = lastHopSum_ / runs;
    return point_;
  }

 private:
  EffectivenessPoint point_;
  double missSum_ = 0.0;
  double completeRuns_ = 0.0;
  double totalSum_ = 0.0;
  double virginSum_ = 0.0;
  double redundantSum_ = 0.0;
  double toDeadSum_ = 0.0;
  double lastHopSum_ = 0.0;
};

cast::DeliveryReport runOnce(const cast::OverlaySnapshot& overlay,
                                  const cast::TargetSelector& selector,
                                  std::uint32_t fanout, Rng& rng) {
  const NodeId origin =
      overlay.aliveIds()[rng.below(overlay.aliveIds().size())];
  cast::DisseminationParams params;
  params.fanout = fanout;
  params.seed = rng();
  return cast::disseminate(overlay, selector, origin, params);
}

}  // namespace

EffectivenessPoint measureEffectiveness(const cast::OverlaySnapshot& overlay,
                                        const cast::TargetSelector& selector,
                                        std::uint32_t fanout,
                                        std::uint32_t runs,
                                        std::uint64_t seed) {
  VS07_EXPECT(runs > 0);
  VS07_EXPECT(overlay.aliveCount() > 0);
  Rng rng(seed);
  EffectivenessAccumulator acc(fanout);
  for (std::uint32_t r = 0; r < runs; ++r)
    acc.add(runOnce(overlay, selector, fanout, rng));
  return acc.finish();
}

EffectivenessPoint measureEffectiveness(const cast::OverlaySnapshot& overlay,
                                        cast::Strategy strategy,
                                        std::uint32_t fanout,
                                        std::uint32_t runs,
                                        std::uint64_t seed) {
  return measureEffectiveness(overlay, cast::selectorFor(strategy), fanout,
                              runs, seed);
}

EffectivenessPoint measureEffectiveness(const Scenario& scenario,
                                        cast::Strategy strategy,
                                        std::uint32_t fanout,
                                        std::uint32_t runs,
                                        std::uint64_t seed) {
  return measureEffectiveness(scenario.snapshot(strategy), strategy, fanout,
                              runs, seed);
}

std::vector<EffectivenessPoint> sweepEffectiveness(
    const cast::OverlaySnapshot& overlay, const cast::TargetSelector& selector,
    const std::vector<std::uint32_t>& fanouts, std::uint32_t runs,
    std::uint64_t seed) {
  std::vector<EffectivenessPoint> points;
  points.reserve(fanouts.size());
  Rng seeder(seed);
  for (const std::uint32_t fanout : fanouts)
    points.push_back(
        measureEffectiveness(overlay, selector, fanout, runs, seeder()));
  return points;
}

std::vector<EffectivenessPoint> sweepEffectiveness(
    const cast::OverlaySnapshot& overlay, cast::Strategy strategy,
    const std::vector<std::uint32_t>& fanouts, std::uint32_t runs,
    std::uint64_t seed) {
  return sweepEffectiveness(overlay, cast::selectorFor(strategy), fanouts,
                            runs, seed);
}

std::vector<EffectivenessPoint> sweepEffectiveness(
    const Scenario& scenario, cast::Strategy strategy,
    const std::vector<std::uint32_t>& fanouts, std::uint32_t runs,
    std::uint64_t seed) {
  return sweepEffectiveness(scenario.snapshot(strategy), strategy, fanouts,
                            runs, seed);
}

ProgressStats measureProgress(const cast::OverlaySnapshot& overlay,
                              const cast::TargetSelector& selector,
                              std::uint32_t fanout, std::uint32_t runs,
                              std::uint64_t seed) {
  VS07_EXPECT(runs > 0);
  ProgressStats stats;
  stats.fanout = fanout;
  stats.runs = runs;
  Rng rng(seed);

  std::vector<cast::DeliveryReport> reports;
  reports.reserve(runs);
  std::size_t maxHops = 0;
  for (std::uint32_t r = 0; r < runs; ++r) {
    reports.push_back(runOnce(overlay, selector, fanout, rng));
    maxHops = std::max(maxHops, reports.back().newlyNotifiedPerHop.size());
  }

  stats.meanPctRemaining.assign(maxHops, 0.0);
  stats.minPctRemaining.assign(maxHops, 100.0);
  stats.maxPctRemaining.assign(maxHops, 0.0);
  for (const auto& report : reports) {
    for (std::size_t hop = 0; hop < maxHops; ++hop) {
      const double pct =
          report.percentNotReachedAfterHop(static_cast<std::uint32_t>(hop));
      stats.meanPctRemaining[hop] += pct / runs;
      stats.minPctRemaining[hop] = std::min(stats.minPctRemaining[hop], pct);
      stats.maxPctRemaining[hop] = std::max(stats.maxPctRemaining[hop], pct);
    }
  }
  return stats;
}

ProgressStats measureProgress(const cast::OverlaySnapshot& overlay,
                              cast::Strategy strategy, std::uint32_t fanout,
                              std::uint32_t runs, std::uint64_t seed) {
  return measureProgress(overlay, cast::selectorFor(strategy), fanout, runs,
                         seed);
}

ProgressStats measureProgress(const Scenario& scenario,
                              cast::Strategy strategy, std::uint32_t fanout,
                              std::uint32_t runs, std::uint64_t seed) {
  return measureProgress(scenario.snapshot(strategy), strategy, fanout, runs,
                         seed);
}

CountHistogram lifetimeHistogram(const sim::Network& network,
                                 std::uint64_t nowCycle) {
  CountHistogram histogram;
  for (const NodeId id : network.aliveIds())
    histogram.add(network.lifetime(id, nowCycle));
  return histogram;
}

MissLifetimeStudy measureMissLifetimes(const cast::OverlaySnapshot& overlay,
                                       const cast::TargetSelector& selector,
                                       const sim::Network& network,
                                       std::uint64_t nowCycle,
                                       std::uint32_t fanout,
                                       std::uint32_t runs,
                                       std::uint64_t seed) {
  VS07_EXPECT(runs > 0);
  Rng rng(seed);
  EffectivenessAccumulator acc(fanout);
  MissLifetimeStudy study;
  for (std::uint32_t r = 0; r < runs; ++r) {
    const auto report = runOnce(overlay, selector, fanout, rng);
    for (const NodeId missedNode : report.missed)
      study.missedLifetimes.add(network.lifetime(missedNode, nowCycle));
    acc.add(report);
  }
  study.effectiveness = acc.finish();
  return study;
}

MissLifetimeStudy measureMissLifetimes(const cast::OverlaySnapshot& overlay,
                                       cast::Strategy strategy,
                                       const sim::Network& network,
                                       std::uint64_t nowCycle,
                                       std::uint32_t fanout,
                                       std::uint32_t runs,
                                       std::uint64_t seed) {
  return measureMissLifetimes(overlay, cast::selectorFor(strategy), network,
                              nowCycle, fanout, runs, seed);
}

MissLifetimeStudy measureMissLifetimes(const Scenario& scenario,
                                       cast::Strategy strategy,
                                       std::uint32_t fanout,
                                       std::uint32_t runs,
                                       std::uint64_t seed) {
  return measureMissLifetimes(scenario.snapshot(strategy), strategy,
                              scenario.network(), scenario.engine().cycle(),
                              fanout, runs, seed);
}

}  // namespace vs07::analysis
