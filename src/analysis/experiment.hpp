// Experiment runners shared by the figure benches and the integration
// tests: fanout sweeps of dissemination effectiveness (Figs. 6/9/11),
// per-hop progress aggregation (Figs. 7/10), message-overhead accounting
// (Fig. 8), and lifetime bookkeeping for the churn study (Figs. 12/13).
//
// Each runner has three shapes, most convenient first:
//   * (Scenario, Strategy, ...)       — snapshots the right overlay itself;
//   * (OverlaySnapshot, Strategy, ...) — for hand-built overlays (§3 graphs);
//   * (OverlaySnapshot, TargetSelector, ...) — the raw engine underneath.
//
// These free functions are the sequential face of the cell-based runner
// in analysis/parallel_sweep.hpp (they delegate to a one-thread
// ParallelSweep), so their results are bit-identical to the same sweep
// run on any number of threads.
#pragma once

#include <cstdint>
#include <vector>

#include "cast/disseminator.hpp"
#include "cast/selector.hpp"
#include "cast/snapshot.hpp"
#include "cast/strategy.hpp"
#include "common/histogram.hpp"
#include "sim/network.hpp"

namespace vs07::analysis {

class Scenario;

/// Aggregate outcome of `runs` disseminations at one fanout.
struct EffectivenessPoint {
  std::uint32_t fanout = 0;
  std::uint32_t runs = 0;
  /// Mean miss ratio (percent) — Fig. 6(a)/9-left/11-left bars.
  double avgMissPercent = 0.0;
  /// Percentage of runs reaching every alive node — Fig. 6(b)/9-right/
  /// 11-right bars.
  double completePercent = 0.0;
  /// Mean message-overhead split (Fig. 8 stacks).
  double avgMessagesTotal = 0.0;
  double avgVirgin = 0.0;
  double avgRedundant = 0.0;
  double avgToDead = 0.0;
  /// Mean hop at which the last notified node was reached.
  double avgLastHop = 0.0;
  /// All misses summed over runs (numerator for lifetime studies).
  std::uint64_t totalMisses = 0;
};

/// Runs `runs` disseminations from uniformly random alive origins and
/// aggregates them. Deterministic in `seed`.
EffectivenessPoint measureEffectiveness(const cast::OverlaySnapshot& overlay,
                                        const cast::TargetSelector& selector,
                                        std::uint32_t fanout,
                                        std::uint32_t runs,
                                        std::uint64_t seed);
EffectivenessPoint measureEffectiveness(const cast::OverlaySnapshot& overlay,
                                        cast::Strategy strategy,
                                        std::uint32_t fanout,
                                        std::uint32_t runs,
                                        std::uint64_t seed);
EffectivenessPoint measureEffectiveness(const Scenario& scenario,
                                        cast::Strategy strategy,
                                        std::uint32_t fanout,
                                        std::uint32_t runs,
                                        std::uint64_t seed);

/// measureEffectiveness over a list of fanouts (one seed stream).
std::vector<EffectivenessPoint> sweepEffectiveness(
    const cast::OverlaySnapshot& overlay, const cast::TargetSelector& selector,
    const std::vector<std::uint32_t>& fanouts, std::uint32_t runs,
    std::uint64_t seed);
std::vector<EffectivenessPoint> sweepEffectiveness(
    const cast::OverlaySnapshot& overlay, cast::Strategy strategy,
    const std::vector<std::uint32_t>& fanouts, std::uint32_t runs,
    std::uint64_t seed);
std::vector<EffectivenessPoint> sweepEffectiveness(
    const Scenario& scenario, cast::Strategy strategy,
    const std::vector<std::uint32_t>& fanouts, std::uint32_t runs,
    std::uint64_t seed);

/// Per-hop dissemination progress aggregated over runs (Figs. 7/10):
/// for each hop, the mean/min/max percentage of nodes not yet reached.
struct ProgressStats {
  std::uint32_t fanout = 0;
  std::uint32_t runs = 0;
  std::vector<double> meanPctRemaining;  ///< index = hop
  std::vector<double> minPctRemaining;
  std::vector<double> maxPctRemaining;
};

ProgressStats measureProgress(const cast::OverlaySnapshot& overlay,
                              const cast::TargetSelector& selector,
                              std::uint32_t fanout, std::uint32_t runs,
                              std::uint64_t seed);
ProgressStats measureProgress(const cast::OverlaySnapshot& overlay,
                              cast::Strategy strategy, std::uint32_t fanout,
                              std::uint32_t runs, std::uint64_t seed);
ProgressStats measureProgress(const Scenario& scenario,
                              cast::Strategy strategy, std::uint32_t fanout,
                              std::uint32_t runs, std::uint64_t seed);

/// Lifetime (in cycles) of every alive node at `nowCycle` — Fig. 12.
CountHistogram lifetimeHistogram(const sim::Network& network,
                                 std::uint64_t nowCycle);

/// Runs `runs` disseminations and histograms the lifetimes of the nodes
/// that were *not* notified — Fig. 13. Also returns the effectiveness
/// aggregate so callers get Fig. 11's numbers from the same runs.
struct MissLifetimeStudy {
  EffectivenessPoint effectiveness;
  CountHistogram missedLifetimes;
};

MissLifetimeStudy measureMissLifetimes(const cast::OverlaySnapshot& overlay,
                                       const cast::TargetSelector& selector,
                                       const sim::Network& network,
                                       std::uint64_t nowCycle,
                                       std::uint32_t fanout,
                                       std::uint32_t runs, std::uint64_t seed);
MissLifetimeStudy measureMissLifetimes(const cast::OverlaySnapshot& overlay,
                                       cast::Strategy strategy,
                                       const sim::Network& network,
                                       std::uint64_t nowCycle,
                                       std::uint32_t fanout,
                                       std::uint32_t runs, std::uint64_t seed);
/// `nowCycle` is the scenario's current engine cycle.
MissLifetimeStudy measureMissLifetimes(const Scenario& scenario,
                                       cast::Strategy strategy,
                                       std::uint32_t fanout,
                                       std::uint32_t runs, std::uint64_t seed);

}  // namespace vs07::analysis
