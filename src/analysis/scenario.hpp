// Scenario — one fully wired simulated system behind a fluent builder.
//
// A Scenario composes everything an experiment needs: the population,
// CYCLON (r-links), one-or-more VICINITY rings (d-links), the simulation
// engine, the dissemination transport (immediate / delayed / lossy), and
// an optional churn model; `build()` also runs the paper's §7 star
// bootstrap + warm-up so the returned object is ready to disseminate.
// Dissemination itself goes through cast::CastSession: snapshotSession()
// freezes the overlay for the paper's §7.1 model, liveSession() runs
// push (+ optional §8 pull) through the transport. Presets reproduce the
// paper's three evaluation settings.
//
//   auto scenario = analysis::Scenario::builder()
//                       .nodes(10'000).seed(42).build();
//   auto session = scenario.snapshotSession(
//       {.strategy = cast::Strategy::kRingCast, .fanout = 3});
//   const auto report = session.publishFromRandom();
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cast/session.hpp"
#include "cast/snapshot.hpp"
#include "cast/strategy.hpp"
#include "search/query.hpp"
#include "gossip/cyclon.hpp"
#include "gossip/multiring.hpp"
#include "gossip/vicinity.hpp"
#include "net/transport.hpp"
#include "sim/churn.hpp"
#include "sim/engine.hpp"
#include "sim/latency_transport.hpp"
#include "sim/network.hpp"
#include "sim/network_model.hpp"
#include "sim/router.hpp"
#include "sim/session_churn.hpp"
#include "sim/sharded_engine.hpp"
#include "sim/timing.hpp"

namespace vs07::analysis {

class ScenarioBuilder;

/// A ready-to-run simulated system (see file comment). Movable value
/// type; the wiring lives on the heap, so references into it (engine,
/// network, live sessions) stay valid across moves.
class Scenario {
 public:
  /// The knobs ScenarioBuilder sets (defaults = the paper's settings,
  /// except the population size which each caller chooses).
  struct Config {
    std::uint32_t nodes = 10'000;
    gossip::Cyclon::Params cyclon{};      ///< view 20 (the paper's cyc)
    gossip::Vicinity::Params vicinity{};  ///< view 20 (the paper's vic)
    /// Cycles of self-organisation from the star topology (§7: 100).
    std::uint32_t warmupCycles = 100;
    /// Number of VICINITY rings (1 = plain RINGCAST; >1 = §8 extension).
    std::uint32_t rings = 1;
    std::uint64_t seed = 42;
    /// build() runs bootstrap + warm-up unless cleared (noWarmup()).
    bool warmOnBuild = true;

    /// 0 = the classic sequential Engine. >= 1 selects the sharded
    /// engine with that many worker threads (sim/sharded_engine.hpp);
    /// results are bit-identical for any value >= 1, so determinism
    /// tests can compare 1 vs 8. Supports CycleSync (latency-free) and
    /// JitteredPeriodic timing with or without a LatencyModel (the
    /// windowed schedule); link-level network conditions and the legacy
    /// delayed/lossy transports remain sequential-only, as do live
    /// sessions.
    std::uint32_t engineThreads = 0;

    // -- timing model (engine timers + optional message latency) --------
    /// CycleSync by default (the paper's evaluation model). When
    /// timing.latency is set, *all* simulated traffic — gossip exchanges
    /// and dissemination alike — rides a LatencyTransport scheduled on
    /// the engine's event queue, so delay shapes overlay construction
    /// too, which is exactly the §7 claim worth testing.
    sim::TimingConfig timing{};

    // -- link-level network conditions (sim/network_model.hpp) ----------
    /// When any condition is set, *all* simulated traffic rides a
    /// LatencyTransport with the NetworkModel attached, so loss,
    /// partitions, duplication, reordering, cluster latency, and egress
    /// queueing are resolved per (src, dst, tick) at delivery-scheduling
    /// time — for gossip and dissemination alike.
    sim::NetworkConditions network{};

    // -- dissemination transport (legacy pumped path: gossip stays on the
    //    immediate cycle model; these shape LiveSession traffic only) ----
    bool delayedTransport = false;
    std::uint32_t minLatencyTicks = 1;
    std::uint32_t maxLatencyTicks = 1;
    /// Probability that a dissemination message is dropped (0 = none).
    double dropProbability = 0.0;

    // -- churn installed at build time (post-warm-up cycles churn) ------
    double churnRate = 0.0;       ///< per-cycle replacement fraction
    bool sessionChurn = false;    ///< heavy-tailed session-length model
    sim::SessionDistribution sessions{};

    // -- default query workload (querySession() with no arguments) ------
    search::QueryOptions query{};
  };

  static ScenarioBuilder builder();

  // -- the paper's three evaluation settings as one-call presets --------

  /// §7.1: static failure-free network, warmed up. All presets default
  /// to the paper's cycle-synchronous timing; pass a TimingConfig to
  /// re-run the same setting under jittered timers or latency delivery.
  static Scenario paperStatic(std::uint32_t nodes = 10'000,
                              std::uint64_t seed = 42,
                              sim::TimingConfig timing = {});
  /// §7.2: warmed up, then `killFraction` of the population fails at
  /// once with gossip stalled (no healing before dissemination).
  static Scenario paperCatastrophic(double killFraction,
                                    std::uint32_t nodes = 10'000,
                                    std::uint64_t seed = 42,
                                    sim::TimingConfig timing = {});
  /// §7.3: warmed up, then churned at `rate` until the entire initial
  /// population has been replaced (capped at `maxChurnCycles`); churn
  /// keeps running during subsequent cycles.
  static Scenario paperChurn(double rate = 0.002,
                             std::uint32_t nodes = 10'000,
                             std::uint64_t seed = 42,
                             std::uint64_t maxChurnCycles = 50'000,
                             sim::TimingConfig timing = {});

  // -- adversarial network presets (sim/network_model.hpp) --------------

  /// §5.1's partitioned ring as a *healing* scenario: warmed up, then
  /// the ring is split into two seq-contiguous halves for `splitCycles`
  /// cycles starting with the first post-warm-up cycle; cross-half
  /// traffic (gossip and dissemination) drops until the partition heals.
  /// Publish while split to watch per-side coverage; keep running past
  /// the window to watch recovery (kPushPull backfills the dark side).
  static Scenario paperPartitioned(std::uint32_t splitCycles = 30,
                                   std::uint32_t nodes = 10'000,
                                   std::uint64_t seed = 42,
                                   sim::TimingConfig timing = {});

  /// Lossy wide-area network: four latency clusters (intra fixed 1 tick,
  /// inter uniform 2..8), per-link Bernoulli loss, and light reordering,
  /// under jittered node timers.
  static Scenario lossyWan(double lossRate = 0.01,
                           std::uint32_t nodes = 10'000,
                           std::uint64_t seed = 42);

  /// Bandwidth-constrained network: every node may emit at most
  /// `egressPerTick` messages per tick (fixed 1-tick link latency,
  /// jittered timers); overload shows up as FIFO queueing delay, never
  /// as silent infinite capacity.
  static Scenario congested(std::uint32_t egressPerTick = 2,
                            std::uint32_t nodes = 10'000,
                            std::uint64_t seed = 42);

  Scenario(Scenario&&) noexcept;
  Scenario& operator=(Scenario&&) noexcept;
  ~Scenario();

  // -- the paper's §7 procedures ----------------------------------------

  /// Star bootstrap + warm-up cycles (already done by build() unless
  /// noWarmup() was requested).
  void warmup();

  /// Runs additional gossip cycles (under whatever churn is installed).
  void runCycles(std::uint64_t cycles);

  /// Continues gossiping under churn (per-cycle replacement `rate`) until
  /// the entire initial population has been replaced at least once (§7.3)
  /// or `maxCycles` elapse. Installs the churn control on first use.
  /// Returns cycles run in this phase.
  std::uint64_t runChurnUntilFullTurnover(double rate,
                                          std::uint64_t maxCycles);

  /// Cycles spent inside runChurnUntilFullTurnover so far.
  std::uint64_t churnCycles() const noexcept;

  // -- failure injection (§7.2; gossip is NOT stalled automatically —
  //    simply don't run cycles before snapshotting) ---------------------

  /// Kills round(fraction * alive) random nodes; returns their ids.
  std::vector<NodeId> killRandomFraction(double fraction);
  /// Kills a contiguous arc of the ring (the §5.1 adversarial case).
  std::vector<NodeId> killContiguousArc(double fraction);

  // -- access ------------------------------------------------------------

  const Config& config() const noexcept;
  const sim::TimingConfig& timing() const noexcept;
  sim::Network& network() noexcept;
  const sim::Network& network() const noexcept;
  sim::Engine& engine() noexcept;
  const sim::Engine& engine() const noexcept;
  /// Non-null when the builder chose engineThreads(n >= 1): the parallel
  /// engine all cycles run on instead of engine().
  sim::ShardedEngine* shardedEngine() noexcept;
  const sim::ShardedEngine* shardedEngine() const noexcept;
  /// Completed gossip cycles on whichever engine is active.
  std::uint64_t cyclesRun() const noexcept;
  /// Gossip messages sent so far on whichever engine is active (the
  /// sharded engine's barrier senders do not ride castTransport()).
  std::uint64_t gossipMessagesSent() const noexcept;
  sim::MessageRouter& router() noexcept;
  gossip::Cyclon& cyclon() noexcept;
  const gossip::Cyclon& cyclon() const noexcept;
  gossip::MultiRing& rings() noexcept;
  const gossip::MultiRing& rings() const noexcept;
  /// Ring 0's VICINITY instance (the RINGCAST ring).
  const gossip::Vicinity& vicinity() const;
  /// The transport dissemination traffic rides on (immediate unless the
  /// builder chose delayed/lossy; gossip always uses the cycle model).
  net::Transport& castTransport() noexcept;
  /// Non-null when the builder chose a delayed transport (tick/drain).
  net::DelayedTransport* delayedTransport() noexcept;
  /// Non-null when the timing config carries a latency model or any
  /// network condition is configured: the engine-queue transport all
  /// simulated traffic rides on.
  sim::LatencyTransport* latencyTransport() noexcept;
  /// Non-null when the builder configured link-level network conditions
  /// (loss, partitions, clusters, bandwidth, ...). Counters on the model
  /// say what the conditions did to the traffic.
  sim::NetworkModel* networkModel() noexcept;
  const sim::NetworkModel* networkModel() const noexcept;

  // -- frozen overlays ---------------------------------------------------

  /// The overlay snapshot `strategy` disseminates over: r-links only for
  /// kRandCast, + single-ring d-links for kRingCast/kPushPull/kFlood,
  /// + the union of all rings for kMultiRing.
  cast::OverlaySnapshot snapshot(cast::Strategy strategy) const;
  cast::OverlaySnapshot snapshotRandom() const;
  cast::OverlaySnapshot snapshotRing() const;
  cast::OverlaySnapshot snapshotMultiRing() const;
  /// Harary band of width `w` as d-links (§8 extension).
  cast::OverlaySnapshot snapshotBand(std::uint32_t bandWidth) const;

  // -- dissemination sessions -------------------------------------------

  /// Freezes the overlay for `options.strategy` now and returns a
  /// snapshot-path session over it (the paper's §7.1 model).
  ///
  /// Caution: the snapshot path replays dissemination hop-synchronously
  /// over the frozen links and NEVER touches the transport — configured
  /// network conditions (loss, partitions, duplication, egress caps) do
  /// not apply to its results. That is the point (it measures the
  /// overlay *structure* the conditioned gossip built), but it means a
  /// snapshot publish during a partition blackout reports full
  /// coverage; measuring what the conditions do to dissemination itself
  /// requires liveSession().
  cast::SnapshotSession snapshotSession(cast::CastOptions options = {}) const;

  /// Creates (once) the transport-driven session; the Scenario owns it.
  /// Engine cycles from now on also run its pull heartbeat.
  cast::LiveSession& liveSession(cast::CastOptions options = {});

  // -- query sessions (search/query.hpp) --------------------------------

  /// Freezes the overlay `options.overlay` selects (same snapshot
  /// vocabulary as dissemination) and returns a query session over it:
  /// replicated content placement + TTL-limited search with
  /// local-knowledge caches. Like snapshotSession, the session replays
  /// over the frozen links and never touches the transport — two
  /// scenarios with bit-identical overlays (e.g. any two
  /// --engine-threads counts) produce bit-identical SearchReports,
  /// which is the conformance harness's contract.
  search::QuerySession querySession(const search::QueryOptions& options) const;
  /// querySession with the builder-configured defaults (query() hook).
  search::QuerySession querySession() const;

 private:
  friend class ScenarioBuilder;
  struct Core;
  explicit Scenario(const Config& config);

  std::unique_ptr<Core> core_;
};

/// Fluent composer of Scenarios. Every setter returns *this; build()
/// wires the system and (by default) runs the paper's warm-up.
class ScenarioBuilder {
 public:
  ScenarioBuilder& nodes(std::uint32_t n);
  ScenarioBuilder& seed(std::uint64_t s);
  /// Run all cycles on the sharded engine with `threads` workers
  /// (bit-identical for any threads >= 1). Supports CycleSync and the
  /// jittered timing modes, including message latency (windowed
  /// execution); network conditions and the legacy delayed/lossy
  /// transports stay sequential-only.
  ScenarioBuilder& engineThreads(std::uint32_t threads);
  ScenarioBuilder& rings(std::uint32_t count);
  ScenarioBuilder& warmupCycles(std::uint32_t cycles);
  ScenarioBuilder& cyclonParams(gossip::Cyclon::Params params);
  ScenarioBuilder& vicinityParams(gossip::Vicinity::Params params);

  /// Full timing-model control (mode, ticks per cycle, latency). The
  /// presets on sim::TimingConfig cover the common cases.
  ScenarioBuilder& timing(sim::TimingConfig config);
  /// Shorthand: independent phase-shifted node timers (JitteredPeriodic).
  ScenarioBuilder& jitteredTiming(
      std::uint32_t ticksPerCycle = sim::kDefaultTicksPerCycle);
  /// Shorthand: per-message delivery latency for *all* simulated traffic
  /// through the engine queue (composes with either timing mode;
  /// mutually exclusive with delayedTransport()).
  ScenarioBuilder& latency(sim::LatencyModel model);

  // -- link-level network conditions (sim/network_model.hpp). Any of
  //    these routes *all* traffic through the engine-queue transport
  //    with a NetworkModel attached; they compose freely with each
  //    other and with either timing mode. ------------------------------

  /// Wholesale replacement of the accumulated network conditions.
  ScenarioBuilder& network(sim::NetworkConditions conditions);
  /// Per-crossing Bernoulli loss on every link.
  ScenarioBuilder& linkLoss(double lossRate);
  /// Bursty Gilbert-Elliott loss (per-directed-link Markov chains).
  ScenarioBuilder& burstLoss(
      sim::GilbertElliottLink::Params params = {});
  /// Per-crossing duplication probability.
  ScenarioBuilder& duplication(double rate);
  /// Per-crossing reordering: probability of 1..maxExtraTicks jitter.
  ScenarioBuilder& reordering(double rate, std::uint32_t maxExtraTicks = 3);
  /// Heterogeneous latency: nodes hash into `clusters` groups with
  /// separate intra/inter-cluster latency models (replaces the global
  /// latency draw for every link).
  ScenarioBuilder& clusterLatency(std::uint32_t clusters,
                                  sim::LatencyModel intra,
                                  sim::LatencyModel inter);
  /// Per-node egress bandwidth cap in messages per tick (FIFO queueing).
  ScenarioBuilder& egressCap(std::uint32_t messagesPerTick);
  /// Engages the link chain and bandwidth cap only from engine cycle
  /// `cycle` on (links are clean before it) — the §7 methodology knob:
  /// self-organise undisturbed, then degrade. Partition windows keep
  /// their own schedule; cluster latency is never gated.
  ScenarioBuilder& conditionsFromCycle(std::uint64_t cycle);
  /// Splits the ring into `groups` seq-contiguous segments, blacked out
  /// over engine cycles [startCycle, endCycle) and healed outside; a
  /// repeat call with the same grouping appends another blackout window.
  /// Windows must be ascending and non-overlapping across calls.
  /// build()'s warm-up occupies cycles [0, warmupCycles).
  ScenarioBuilder& partitionRingSplit(std::uint32_t groups,
                                      std::uint64_t startCycle,
                                      std::uint64_t endCycle);
  /// Two groups: a §5.1 contiguous ring arc of `fraction` of the
  /// population versus the rest, blacked out over [startCycle, endCycle).
  ScenarioBuilder& partitionRingArc(double fraction,
                                    std::uint64_t startCycle,
                                    std::uint64_t endCycle);

  /// Dissemination messages take a uniform-random [min,max] tick latency.
  ScenarioBuilder& delayedTransport(std::uint32_t minLatencyTicks,
                                    std::uint32_t maxLatencyTicks);
  /// Dissemination messages are dropped with probability `p` (composes
  /// with delayedTransport: drop happens before the delay queue).
  ScenarioBuilder& lossyTransport(double dropProbability);

  /// Per-cycle replacement churn (§7.3's model) from build() onwards.
  ScenarioBuilder& churn(double ratePerCycle);
  /// Heavy-tailed session-length churn instead (bounded Pareto).
  ScenarioBuilder& sessionChurn(sim::SessionDistribution distribution);

  /// Default options for Scenario::querySession() — the query() hook.
  /// QueryOptions presets (ttlGossip / flood / randomWalk) cover the
  /// common workloads.
  ScenarioBuilder& query(search::QueryOptions options);

  /// Skip the §7 bootstrap+warm-up; call Scenario::warmup() manually.
  ScenarioBuilder& noWarmup();

  Scenario build();

 private:
  Scenario::Config config_;
};

}  // namespace vs07::analysis
