// Scenario — one fully wired simulated system behind a fluent builder.
//
// A Scenario composes everything an experiment needs: the population,
// CYCLON (r-links), one-or-more VICINITY rings (d-links), the simulation
// engine, the dissemination transport (immediate / delayed / lossy), and
// an optional churn model; `build()` also runs the paper's §7 star
// bootstrap + warm-up so the returned object is ready to disseminate.
// Dissemination itself goes through cast::CastSession: snapshotSession()
// freezes the overlay for the paper's §7.1 model, liveSession() runs
// push (+ optional §8 pull) through the transport. Presets reproduce the
// paper's three evaluation settings.
//
//   auto scenario = analysis::Scenario::builder()
//                       .nodes(10'000).seed(42).build();
//   auto session = scenario.snapshotSession(
//       {.strategy = cast::Strategy::kRingCast, .fanout = 3});
//   const auto report = session.publishFromRandom();
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cast/session.hpp"
#include "cast/snapshot.hpp"
#include "cast/strategy.hpp"
#include "gossip/cyclon.hpp"
#include "gossip/multiring.hpp"
#include "gossip/vicinity.hpp"
#include "net/transport.hpp"
#include "sim/churn.hpp"
#include "sim/engine.hpp"
#include "sim/latency_transport.hpp"
#include "sim/network.hpp"
#include "sim/router.hpp"
#include "sim/session_churn.hpp"
#include "sim/timing.hpp"

namespace vs07::analysis {

class ScenarioBuilder;

/// A ready-to-run simulated system (see file comment). Movable value
/// type; the wiring lives on the heap, so references into it (engine,
/// network, live sessions) stay valid across moves.
class Scenario {
 public:
  /// The knobs ScenarioBuilder sets (defaults = the paper's settings,
  /// except the population size which each caller chooses).
  struct Config {
    std::uint32_t nodes = 10'000;
    gossip::Cyclon::Params cyclon{};      ///< view 20 (the paper's cyc)
    gossip::Vicinity::Params vicinity{};  ///< view 20 (the paper's vic)
    /// Cycles of self-organisation from the star topology (§7: 100).
    std::uint32_t warmupCycles = 100;
    /// Number of VICINITY rings (1 = plain RINGCAST; >1 = §8 extension).
    std::uint32_t rings = 1;
    std::uint64_t seed = 42;
    /// build() runs bootstrap + warm-up unless cleared (noWarmup()).
    bool warmOnBuild = true;

    // -- timing model (engine timers + optional message latency) --------
    /// CycleSync by default (the paper's evaluation model). When
    /// timing.latency is set, *all* simulated traffic — gossip exchanges
    /// and dissemination alike — rides a LatencyTransport scheduled on
    /// the engine's event queue, so delay shapes overlay construction
    /// too, which is exactly the §7 claim worth testing.
    sim::TimingConfig timing{};

    // -- dissemination transport (legacy pumped path: gossip stays on the
    //    immediate cycle model; these shape LiveSession traffic only) ----
    bool delayedTransport = false;
    std::uint32_t minLatencyTicks = 1;
    std::uint32_t maxLatencyTicks = 1;
    /// Probability that a dissemination message is dropped (0 = none).
    double dropProbability = 0.0;

    // -- churn installed at build time (post-warm-up cycles churn) ------
    double churnRate = 0.0;       ///< per-cycle replacement fraction
    bool sessionChurn = false;    ///< heavy-tailed session-length model
    sim::SessionDistribution sessions{};
  };

  static ScenarioBuilder builder();

  // -- the paper's three evaluation settings as one-call presets --------

  /// §7.1: static failure-free network, warmed up. All presets default
  /// to the paper's cycle-synchronous timing; pass a TimingConfig to
  /// re-run the same setting under jittered timers or latency delivery.
  static Scenario paperStatic(std::uint32_t nodes = 10'000,
                              std::uint64_t seed = 42,
                              sim::TimingConfig timing = {});
  /// §7.2: warmed up, then `killFraction` of the population fails at
  /// once with gossip stalled (no healing before dissemination).
  static Scenario paperCatastrophic(double killFraction,
                                    std::uint32_t nodes = 10'000,
                                    std::uint64_t seed = 42,
                                    sim::TimingConfig timing = {});
  /// §7.3: warmed up, then churned at `rate` until the entire initial
  /// population has been replaced (capped at `maxChurnCycles`); churn
  /// keeps running during subsequent cycles.
  static Scenario paperChurn(double rate = 0.002,
                             std::uint32_t nodes = 10'000,
                             std::uint64_t seed = 42,
                             std::uint64_t maxChurnCycles = 50'000,
                             sim::TimingConfig timing = {});

  Scenario(Scenario&&) noexcept;
  Scenario& operator=(Scenario&&) noexcept;
  ~Scenario();

  // -- the paper's §7 procedures ----------------------------------------

  /// Star bootstrap + warm-up cycles (already done by build() unless
  /// noWarmup() was requested).
  void warmup();

  /// Runs additional gossip cycles (under whatever churn is installed).
  void runCycles(std::uint64_t cycles);

  /// Continues gossiping under churn (per-cycle replacement `rate`) until
  /// the entire initial population has been replaced at least once (§7.3)
  /// or `maxCycles` elapse. Installs the churn control on first use.
  /// Returns cycles run in this phase.
  std::uint64_t runChurnUntilFullTurnover(double rate,
                                          std::uint64_t maxCycles);

  /// Cycles spent inside runChurnUntilFullTurnover so far.
  std::uint64_t churnCycles() const noexcept;

  // -- failure injection (§7.2; gossip is NOT stalled automatically —
  //    simply don't run cycles before snapshotting) ---------------------

  /// Kills round(fraction * alive) random nodes; returns their ids.
  std::vector<NodeId> killRandomFraction(double fraction);
  /// Kills a contiguous arc of the ring (the §5.1 adversarial case).
  std::vector<NodeId> killContiguousArc(double fraction);

  // -- access ------------------------------------------------------------

  const Config& config() const noexcept;
  const sim::TimingConfig& timing() const noexcept;
  sim::Network& network() noexcept;
  const sim::Network& network() const noexcept;
  sim::Engine& engine() noexcept;
  const sim::Engine& engine() const noexcept;
  sim::MessageRouter& router() noexcept;
  gossip::Cyclon& cyclon() noexcept;
  const gossip::Cyclon& cyclon() const noexcept;
  gossip::MultiRing& rings() noexcept;
  const gossip::MultiRing& rings() const noexcept;
  /// Ring 0's VICINITY instance (the RINGCAST ring).
  const gossip::Vicinity& vicinity() const;
  /// The transport dissemination traffic rides on (immediate unless the
  /// builder chose delayed/lossy; gossip always uses the cycle model).
  net::Transport& castTransport() noexcept;
  /// Non-null when the builder chose a delayed transport (tick/drain).
  net::DelayedTransport* delayedTransport() noexcept;
  /// Non-null when the timing config carries a latency model: the
  /// engine-queue transport all simulated traffic rides on.
  sim::LatencyTransport* latencyTransport() noexcept;

  // -- frozen overlays ---------------------------------------------------

  /// The overlay snapshot `strategy` disseminates over: r-links only for
  /// kRandCast, + single-ring d-links for kRingCast/kPushPull/kFlood,
  /// + the union of all rings for kMultiRing.
  cast::OverlaySnapshot snapshot(cast::Strategy strategy) const;
  cast::OverlaySnapshot snapshotRandom() const;
  cast::OverlaySnapshot snapshotRing() const;
  cast::OverlaySnapshot snapshotMultiRing() const;
  /// Harary band of width `w` as d-links (§8 extension).
  cast::OverlaySnapshot snapshotBand(std::uint32_t bandWidth) const;

  // -- dissemination sessions -------------------------------------------

  /// Freezes the overlay for `options.strategy` now and returns a
  /// snapshot-path session over it (the paper's §7.1 model).
  cast::SnapshotSession snapshotSession(cast::CastOptions options = {}) const;

  /// Creates (once) the transport-driven session; the Scenario owns it.
  /// Engine cycles from now on also run its pull heartbeat.
  cast::LiveSession& liveSession(cast::CastOptions options = {});

 private:
  friend class ScenarioBuilder;
  struct Core;
  explicit Scenario(const Config& config);

  std::unique_ptr<Core> core_;
};

/// Fluent composer of Scenarios. Every setter returns *this; build()
/// wires the system and (by default) runs the paper's warm-up.
class ScenarioBuilder {
 public:
  ScenarioBuilder& nodes(std::uint32_t n);
  ScenarioBuilder& seed(std::uint64_t s);
  ScenarioBuilder& rings(std::uint32_t count);
  ScenarioBuilder& warmupCycles(std::uint32_t cycles);
  ScenarioBuilder& cyclonParams(gossip::Cyclon::Params params);
  ScenarioBuilder& vicinityParams(gossip::Vicinity::Params params);

  /// Full timing-model control (mode, ticks per cycle, latency). The
  /// presets on sim::TimingConfig cover the common cases.
  ScenarioBuilder& timing(sim::TimingConfig config);
  /// Shorthand: independent phase-shifted node timers (JitteredPeriodic).
  ScenarioBuilder& jitteredTiming(
      std::uint32_t ticksPerCycle = sim::kDefaultTicksPerCycle);
  /// Shorthand: per-message delivery latency for *all* simulated traffic
  /// through the engine queue (composes with either timing mode;
  /// mutually exclusive with delayedTransport()).
  ScenarioBuilder& latency(sim::LatencyModel model);

  /// Dissemination messages take a uniform-random [min,max] tick latency.
  ScenarioBuilder& delayedTransport(std::uint32_t minLatencyTicks,
                                    std::uint32_t maxLatencyTicks);
  /// Dissemination messages are dropped with probability `p` (composes
  /// with delayedTransport: drop happens before the delay queue).
  ScenarioBuilder& lossyTransport(double dropProbability);

  /// Per-cycle replacement churn (§7.3's model) from build() onwards.
  ScenarioBuilder& churn(double ratePerCycle);
  /// Heavy-tailed session-length churn instead (bounded Pareto).
  ScenarioBuilder& sessionChurn(sim::SessionDistribution distribution);

  /// Skip the §7 bootstrap+warm-up; call Scenario::warmup() manually.
  ScenarioBuilder& noWarmup();

  Scenario build();

 private:
  Scenario::Config config_;
};

}  // namespace vs07::analysis
