// ProtocolStack — one fully wired simulated system: network, transport,
// router, CYCLON, and one-or-more VICINITY rings, with the paper's
// bootstrap and warm-up procedures. Every experiment and example builds
// on this instead of re-wiring the plumbing.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "cast/snapshot.hpp"
#include "gossip/cyclon.hpp"
#include "gossip/multiring.hpp"
#include "gossip/vicinity.hpp"
#include "net/transport.hpp"
#include "sim/churn.hpp"
#include "sim/engine.hpp"
#include "sim/network.hpp"
#include "sim/router.hpp"

namespace vs07::analysis {

/// Configuration of a ProtocolStack (defaults = the paper's settings,
/// except the population size which each caller chooses).
struct StackConfig {
  std::uint32_t nodes = 10'000;
  gossip::Cyclon::Params cyclon{};      ///< view 20 (the paper's cyc)
  gossip::Vicinity::Params vicinity{};  ///< view 20 (the paper's vic)
  /// Cycles of self-organisation from the star topology (§7: 100).
  std::uint32_t warmupCycles = 100;
  /// Number of VICINITY rings (1 = plain RINGCAST; >1 = §8 extension).
  std::uint32_t rings = 1;
  std::uint64_t seed = 42;
};

/// Owns and wires the whole simulated system.
class ProtocolStack {
 public:
  explicit ProtocolStack(const StackConfig& config);

  ProtocolStack(const ProtocolStack&) = delete;
  ProtocolStack& operator=(const ProtocolStack&) = delete;

  // -- the paper's §7 procedures ---------------------------------------

  /// Star bootstrap + `warmupCycles` cycles of self-organisation.
  void warmup();

  /// Continues gossiping under churn (per-cycle replacement `rate`) until
  /// the entire initial population has been replaced at least once (§7.3)
  /// or `maxCycles` elapse. Returns cycles run in this phase.
  std::uint64_t runChurnUntilFullTurnover(double rate,
                                          std::uint64_t maxCycles);

  /// Runs additional churn-free gossip cycles.
  void runCycles(std::uint64_t cycles);

  // -- access -----------------------------------------------------------

  sim::Network& network() noexcept { return network_; }
  const sim::Network& network() const noexcept { return network_; }
  sim::Engine& engine() noexcept { return engine_; }
  gossip::Cyclon& cyclon() noexcept { return cyclon_; }
  const gossip::Cyclon& cyclon() const noexcept { return cyclon_; }
  /// Ring 0's VICINITY instance (the RINGCAST ring).
  const gossip::Vicinity& vicinity() const { return rings_.ring(0); }
  gossip::MultiRing& rings() noexcept { return rings_; }
  const gossip::MultiRing& rings() const noexcept { return rings_; }
  const StackConfig& config() const noexcept { return config_; }

  // -- snapshots ----------------------------------------------------------

  /// r-links only (RANDCAST's overlay).
  cast::OverlaySnapshot snapshotRandom() const;
  /// r-links + single-ring d-links (RINGCAST's overlay).
  cast::OverlaySnapshot snapshotRing() const;
  /// r-links + all rings' d-links (multi-ring RINGCAST).
  cast::OverlaySnapshot snapshotMultiRing() const;

 private:
  StackConfig config_;
  sim::Network network_;
  sim::MessageRouter router_;
  net::ImmediateTransport transport_;
  gossip::Cyclon cyclon_;
  gossip::MultiRing rings_;
  sim::Engine engine_;
  std::unique_ptr<sim::ChurnControl> churn_;
};

}  // namespace vs07::analysis
