// JSON shaping of the typed experiment results — the series objects the
// BENCH_*.json records carry (schema: scripts/check_bench_json.py).
//
// Lives in analysis/ (not bench/) so the record-regression tests can pin
// the exact bytes a bench emits: the quick-scale fig06/fig11 series are
// golden-filed and recomputed bit-for-bit by the test suite, which is the
// safety net every hot-path refactor is validated against.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "analysis/experiment.hpp"
#include "common/histogram.hpp"
#include "common/json.hpp"
#include "common/table.hpp"
#include "search/query.hpp"

namespace vs07::analysis {

/// One EffectivenessPoint as an ordered JSON object.
inline Json toJson(const EffectivenessPoint& p) {
  return Json::object()
      .set("fanout", p.fanout)
      .set("runs", p.runs)
      .set("avg_miss_percent", p.avgMissPercent)
      .set("complete_percent", p.completePercent)
      .set("avg_messages_total", p.avgMessagesTotal)
      .set("avg_virgin", p.avgVirgin)
      .set("avg_redundant", p.avgRedundant)
      .set("avg_to_dead", p.avgToDead)
      .set("avg_last_hop", p.avgLastHop)
      .set("total_misses", p.totalMisses);
}

/// A labelled effectiveness sweep as a series object.
inline Json effectivenessSeries(std::string label,
                                const std::vector<EffectivenessPoint>& points) {
  Json array = Json::array();
  for (const auto& point : points) array.push(toJson(point));
  return Json::object()
      .set("label", std::move(label))
      .set("kind", "effectiveness")
      .set("points", std::move(array));
}

/// A labelled per-hop progress series.
inline Json progressSeries(std::string label, const ProgressStats& stats) {
  Json mean = Json::array();
  Json lo = Json::array();
  Json hi = Json::array();
  for (std::size_t hop = 0; hop < stats.meanPctRemaining.size(); ++hop) {
    mean.push(stats.meanPctRemaining[hop]);
    lo.push(stats.minPctRemaining[hop]);
    hi.push(stats.maxPctRemaining[hop]);
  }
  return Json::object()
      .set("label", std::move(label))
      .set("kind", "progress")
      .set("fanout", stats.fanout)
      .set("runs", stats.runs)
      .set("mean_pct_remaining", std::move(mean))
      .set("min_pct_remaining", std::move(lo))
      .set("max_pct_remaining", std::move(hi));
}

/// A labelled exact-count histogram (value/count pairs, ascending).
inline Json histogramSeries(std::string label, const CountHistogram& h) {
  Json values = Json::array();
  Json counts = Json::array();
  for (const auto& [value, count] : h.sorted()) {
    values.push(value);
    counts.push(count);
  }
  return Json::object()
      .set("label", std::move(label))
      .set("kind", "histogram")
      .set("total", h.total())
      .set("values", std::move(values))
      .set("counts", std::move(counts));
}

/// Any rendered Table as a generic series (columns + string rows), for
/// benches whose metrics do not fit the typed shapes above.
inline Json tableSeries(std::string label, const Table& table) {
  Json columns = Json::array();
  for (const auto& cell : table.header()) columns.push(cell);
  Json rows = Json::array();
  for (const auto& row : table.rowData()) {
    Json cells = Json::array();
    for (const auto& cell : row) cells.push(cell);
    rows.push(std::move(cells));
  }
  return Json::object()
      .set("label", std::move(label))
      .set("kind", "table")
      .set("columns", std::move(columns))
      .set("rows", std::move(rows));
}

/// A replication-factor sweep of one search strategy as a series object:
/// parallel arrays indexed by TTL, one series per (strategy, replication)
/// pair. Shared by bench/search_workload and the hit-rate golden test so
/// the regression pins the exact bytes the bench emits.
inline Json searchSweepSeries(std::string label,
                              const search::SearchReport& sample,
                              const std::vector<search::SearchReport>& sweep) {
  Json ttl = Json::array();
  Json hitRate = Json::array();
  Json cacheHit = Json::array();
  Json avgHops = Json::array();
  Json messages = Json::array();
  for (const auto& report : sweep) {
    ttl.push(report.ttl);
    hitRate.push(report.hitRatePercent());
    cacheHit.push(100.0 * report.cacheHitFraction());
    avgHops.push(report.avgHopsToResolve());
    messages.push(report.messagesPerQuery());
  }
  return Json::object()
      .set("label", std::move(label))
      .set("kind", "search_sweep")
      .set("strategy", search::searchStrategyName(sample.strategy))
      .set("replication", sample.replication)
      .set("queries", sample.queries)
      .set("ttl", std::move(ttl))
      .set("hit_rate_percent", std::move(hitRate))
      .set("cache_hit_percent", std::move(cacheHit))
      .set("avg_hops_to_hit", std::move(avgHops))
      .set("messages_per_query", std::move(messages));
}

}  // namespace vs07::analysis
