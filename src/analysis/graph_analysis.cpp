#include "analysis/graph_analysis.hpp"

#include <algorithm>

#include "common/expect.hpp"

namespace vs07::analysis {

std::vector<std::vector<std::uint32_t>> aliveAdjacency(
    const cast::OverlaySnapshot& snapshot, LinkSelection links) {
  const auto& aliveIds = snapshot.aliveIds();
  // Dense reindex: node id -> alive index.
  std::vector<std::uint32_t> index(snapshot.totalIds(), ~std::uint32_t{0});
  for (std::uint32_t i = 0; i < aliveIds.size(); ++i)
    index[aliveIds[i]] = i;

  std::vector<std::vector<std::uint32_t>> adjacency(aliveIds.size());
  for (std::uint32_t i = 0; i < aliveIds.size(); ++i) {
    const NodeId id = aliveIds[i];
    auto addLinks = [&](std::span<const NodeId> targets) {
      for (const NodeId t : targets) {
        if (t >= snapshot.totalIds() || !snapshot.isAlive(t)) continue;
        const std::uint32_t j = index[t];
        if (j == i) continue;
        if (std::find(adjacency[i].begin(), adjacency[i].end(), j) ==
            adjacency[i].end())
          adjacency[i].push_back(j);
      }
    };
    if (links.dlinks) addLinks(snapshot.dlinks(id));
    if (links.rlinks) addLinks(snapshot.rlinks(id));
  }
  return adjacency;
}

std::vector<std::uint32_t> stronglyConnectedComponentSizes(
    const std::vector<std::vector<std::uint32_t>>& adjacency) {
  std::vector<std::uint32_t> sizes;
  const auto n = static_cast<std::uint32_t>(adjacency.size());
  if (n == 0) return sizes;

  // Iterative Tarjan: explicit stack of (node, next-edge-index) frames.
  constexpr std::uint32_t kUnvisited = ~std::uint32_t{0};
  std::vector<std::uint32_t> indexOf(n, kUnvisited);
  std::vector<std::uint32_t> lowlink(n, 0);
  std::vector<std::uint8_t> onStack(n, 0);
  std::vector<std::uint32_t> sccStack;
  std::uint32_t nextIndex = 0;

  struct Frame {
    std::uint32_t node;
    std::uint32_t edge;
  };
  std::vector<Frame> callStack;

  for (std::uint32_t root = 0; root < n; ++root) {
    if (indexOf[root] != kUnvisited) continue;
    callStack.push_back({root, 0});
    while (!callStack.empty()) {
      auto& frame = callStack.back();
      const std::uint32_t u = frame.node;
      if (frame.edge == 0) {
        indexOf[u] = lowlink[u] = nextIndex++;
        sccStack.push_back(u);
        onStack[u] = 1;
      }
      bool descended = false;
      while (frame.edge < adjacency[u].size()) {
        const std::uint32_t v = adjacency[u][frame.edge++];
        if (indexOf[v] == kUnvisited) {
          callStack.push_back({v, 0});
          descended = true;
          break;
        }
        if (onStack[v]) lowlink[u] = std::min(lowlink[u], indexOf[v]);
      }
      if (descended) continue;
      // u is finished.
      if (lowlink[u] == indexOf[u]) {
        std::uint32_t size = 0;
        while (true) {
          const std::uint32_t w = sccStack.back();
          sccStack.pop_back();
          onStack[w] = 0;
          ++size;
          if (w == u) break;
        }
        sizes.push_back(size);
      }
      callStack.pop_back();
      if (!callStack.empty()) {
        const std::uint32_t parent = callStack.back().node;
        lowlink[parent] = std::min(lowlink[parent], lowlink[u]);
      }
    }
  }
  return sizes;
}

std::uint32_t stronglyConnectedComponentCount(
    const std::vector<std::vector<std::uint32_t>>& adjacency) {
  return static_cast<std::uint32_t>(
      stronglyConnectedComponentSizes(adjacency).size());
}

std::uint32_t largestStronglyConnectedComponent(
    const std::vector<std::vector<std::uint32_t>>& adjacency) {
  const auto sizes = stronglyConnectedComponentSizes(adjacency);
  return sizes.empty() ? 0 : *std::max_element(sizes.begin(), sizes.end());
}

std::vector<std::uint32_t> aliveIndegrees(const cast::OverlaySnapshot& snapshot,
                                          LinkSelection links) {
  const auto adjacency = aliveAdjacency(snapshot, links);
  std::vector<std::uint32_t> indegree(adjacency.size(), 0);
  for (const auto& nbrs : adjacency)
    for (const std::uint32_t j : nbrs) ++indegree[j];
  return indegree;
}

RingConvergence ringConvergence(const sim::Network& network,
                                const gossip::Vicinity& vicinity) {
  const auto& aliveIds = network.aliveIds();
  RingConvergence result;
  if (aliveIds.size() < 2) {
    result.successorAccuracy = result.predecessorAccuracy =
        result.bothAccuracy = 1.0;
    return result;
  }

  // Ground truth: alive nodes sorted by this ring's profile.
  std::vector<NodeId> sorted(aliveIds.begin(), aliveIds.end());
  std::sort(sorted.begin(), sorted.end(), [&](NodeId a, NodeId b) {
    const auto pa = vicinity.profileOf(a);
    const auto pb = vicinity.profileOf(b);
    if (pa != pb) return pa < pb;
    return a < b;
  });

  const auto n = sorted.size();
  std::uint64_t succOk = 0;
  std::uint64_t predOk = 0;
  std::uint64_t bothOk = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId self = sorted[i];
    const NodeId trueSucc = sorted[(i + 1) % n];
    const NodeId truePred = sorted[(i + n - 1) % n];
    const auto neighbors = vicinity.ringNeighbors(self);
    const bool s = neighbors.successor == trueSucc;
    const bool p = neighbors.predecessor == truePred;
    succOk += s;
    predOk += p;
    bothOk += s && p;
  }
  result.successorAccuracy = static_cast<double>(succOk) / n;
  result.predecessorAccuracy = static_cast<double>(predOk) / n;
  result.bothAccuracy = static_cast<double>(bothOk) / n;
  return result;
}

}  // namespace vs07::analysis
