// ParallelSweep — the cell-based parallel experiment runner behind the
// figure benches (and, at one thread, behind the sequential free
// functions of analysis/experiment.hpp).
//
// A sweep is split into independent (fanout, replication-chunk) cells of
// at most SweepOptions::runsPerCell disseminations each. Every cell seeds
// its own RNG from deriveStreamSeed(seed, fanout, chunk) — a splitmix
// -style derivation of the root seed and the cell's *identity*, never its
// schedule — and accumulates partial sums locally. After all cells finish
// the partials are merged in canonical (fanout, chunk) order. Two
// consequences the determinism tests pin down:
//
//   * results are bit-identical for any thread count, including 1: the
//     cell decomposition, every cell's RNG stream, and the merge order
//     are all independent of how cells are scheduled onto threads;
//   * a point's value is independent of the rest of the sweep:
//     sweepEffectiveness(..., {2, 4, 6}, ...)[1] equals the standalone
//     measureEffectiveness(..., 4, ...) at the same seed, because cell
//     seeds depend on the fanout value, not its position.
//
// Note the canonical result differs numerically from the pre-parallel
// sequential runner (one RNG walked through all runs); it is the cell
// decomposition that is canonical now, at every thread count.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "analysis/experiment.hpp"
#include "common/task_pool.hpp"

namespace vs07::analysis {

/// Knobs of the parallel runner.
struct SweepOptions {
  /// Worker lanes (including the caller); 0 = all hardware cores.
  std::uint32_t threads = 1;
  /// Replication-chunk size: runs per cell. Part of the canonical cell
  /// decomposition — changing it changes the (deterministic) results,
  /// so it defaults to a fixed constant rather than anything derived
  /// from the machine.
  std::uint32_t runsPerCell = 8;
};

/// Parallel twin of the experiment runners in analysis/experiment.hpp.
/// One instance owns a TaskPool and can run any number of sweeps; it is
/// not thread-safe itself (one sweep at a time).
class ParallelSweep {
 public:
  ParallelSweep() : ParallelSweep(SweepOptions{}) {}
  explicit ParallelSweep(SweepOptions options);
  ~ParallelSweep();

  ParallelSweep(const ParallelSweep&) = delete;
  ParallelSweep& operator=(const ParallelSweep&) = delete;

  std::uint32_t threadCount() const noexcept;

  // -- effectiveness (Figs. 6/8/9/11) -----------------------------------

  EffectivenessPoint measureEffectiveness(const cast::OverlaySnapshot& overlay,
                                          const cast::TargetSelector& selector,
                                          std::uint32_t fanout,
                                          std::uint32_t runs,
                                          std::uint64_t seed);
  EffectivenessPoint measureEffectiveness(const cast::OverlaySnapshot& overlay,
                                          cast::Strategy strategy,
                                          std::uint32_t fanout,
                                          std::uint32_t runs,
                                          std::uint64_t seed);
  EffectivenessPoint measureEffectiveness(const Scenario& scenario,
                                          cast::Strategy strategy,
                                          std::uint32_t fanout,
                                          std::uint32_t runs,
                                          std::uint64_t seed);

  /// All fanouts' cells are flattened into one parallel loop, so load
  /// balances across the whole sweep, not per point.
  std::vector<EffectivenessPoint> sweepEffectiveness(
      const cast::OverlaySnapshot& overlay,
      const cast::TargetSelector& selector,
      const std::vector<std::uint32_t>& fanouts, std::uint32_t runs,
      std::uint64_t seed);
  std::vector<EffectivenessPoint> sweepEffectiveness(
      const cast::OverlaySnapshot& overlay, cast::Strategy strategy,
      const std::vector<std::uint32_t>& fanouts, std::uint32_t runs,
      std::uint64_t seed);
  std::vector<EffectivenessPoint> sweepEffectiveness(
      const Scenario& scenario, cast::Strategy strategy,
      const std::vector<std::uint32_t>& fanouts, std::uint32_t runs,
      std::uint64_t seed);

  // -- per-hop progress (Figs. 7/10) ------------------------------------

  ProgressStats measureProgress(const cast::OverlaySnapshot& overlay,
                                const cast::TargetSelector& selector,
                                std::uint32_t fanout, std::uint32_t runs,
                                std::uint64_t seed);
  ProgressStats measureProgress(const cast::OverlaySnapshot& overlay,
                                cast::Strategy strategy, std::uint32_t fanout,
                                std::uint32_t runs, std::uint64_t seed);
  ProgressStats measureProgress(const Scenario& scenario,
                                cast::Strategy strategy, std::uint32_t fanout,
                                std::uint32_t runs, std::uint64_t seed);

  // -- miss lifetimes (Fig. 13) -----------------------------------------

  MissLifetimeStudy measureMissLifetimes(const cast::OverlaySnapshot& overlay,
                                         const cast::TargetSelector& selector,
                                         const sim::Network& network,
                                         std::uint64_t nowCycle,
                                         std::uint32_t fanout,
                                         std::uint32_t runs,
                                         std::uint64_t seed);
  MissLifetimeStudy measureMissLifetimes(const cast::OverlaySnapshot& overlay,
                                         cast::Strategy strategy,
                                         const sim::Network& network,
                                         std::uint64_t nowCycle,
                                         std::uint32_t fanout,
                                         std::uint32_t runs,
                                         std::uint64_t seed);
  MissLifetimeStudy measureMissLifetimes(const Scenario& scenario,
                                         cast::Strategy strategy,
                                         std::uint32_t fanout,
                                         std::uint32_t runs,
                                         std::uint64_t seed);

  /// The pool, for callers with their own embarrassingly-parallel loops
  /// (e.g. fig12's independent churn experiments).
  TaskPool& pool() noexcept;

 private:
  SweepOptions options_;
  std::unique_ptr<TaskPool> pool_;
};

}  // namespace vs07::analysis
