#include "analysis/parallel_sweep.hpp"

#include <algorithm>

#include "analysis/scenario.hpp"
#include "common/expect.hpp"
#include "common/rng.hpp"

namespace vs07::analysis {

namespace {

/// One dissemination from a uniformly random alive origin.
cast::DeliveryReport runOnce(const cast::OverlaySnapshot& overlay,
                             const cast::TargetSelector& selector,
                             std::uint32_t fanout, Rng& rng) {
  const NodeId origin =
      overlay.aliveIds()[rng.below(overlay.aliveIds().size())];
  cast::DisseminationParams params;
  params.fanout = fanout;
  params.seed = rng();
  return cast::disseminate(overlay, selector, origin, params);
}

/// Partial sums of one cell's runs, mergeable in canonical cell order.
/// Doubles accumulate in run order within the cell and cell order across
/// cells, so the merged totals are independent of scheduling.
struct EffectivenessPartial {
  std::uint32_t runs = 0;
  double missSum = 0.0;
  double completeRuns = 0.0;
  double totalSum = 0.0;
  double virginSum = 0.0;
  double redundantSum = 0.0;
  double toDeadSum = 0.0;
  double lastHopSum = 0.0;
  std::uint64_t totalMisses = 0;

  void add(const cast::DeliveryReport& report) {
    ++runs;
    missSum += report.missRatioPercent();
    completeRuns += report.complete() ? 1 : 0;
    totalSum += static_cast<double>(report.messagesTotal);
    virginSum += static_cast<double>(report.messagesVirgin);
    redundantSum += static_cast<double>(report.messagesRedundant);
    toDeadSum += static_cast<double>(report.messagesToDead);
    lastHopSum += static_cast<double>(report.lastHop);
    totalMisses += report.missed.size();
  }

  void merge(const EffectivenessPartial& other) {
    runs += other.runs;
    missSum += other.missSum;
    completeRuns += other.completeRuns;
    totalSum += other.totalSum;
    virginSum += other.virginSum;
    redundantSum += other.redundantSum;
    toDeadSum += other.toDeadSum;
    lastHopSum += other.lastHopSum;
    totalMisses += other.totalMisses;
  }

  EffectivenessPoint finish(std::uint32_t fanout) const {
    VS07_EXPECT(runs > 0);
    EffectivenessPoint point;
    point.fanout = fanout;
    point.runs = runs;
    point.totalMisses = totalMisses;
    const auto n = static_cast<double>(runs);
    point.avgMissPercent = missSum / n;
    point.completePercent = 100.0 * completeRuns / n;
    point.avgMessagesTotal = totalSum / n;
    point.avgVirgin = virginSum / n;
    point.avgRedundant = redundantSum / n;
    point.avgToDead = toDeadSum / n;
    point.avgLastHop = lastHopSum / n;
    return point;
  }
};

/// Per-hop partial of one cell. Arrays span the cell's own longest run;
/// beyond that every run of the cell has plateaued (a report's
/// percentNotReachedAfterHop is constant past its last hop), so reading
/// index min(hop, size-1) extends the cell to any global hop count.
struct ProgressPartial {
  std::uint32_t runs = 0;
  std::vector<double> sumPct;
  std::vector<double> minPct;
  std::vector<double> maxPct;

  void add(const cast::DeliveryReport& report) {
    ++runs;
    const std::size_t hops = report.newlyNotifiedPerHop.size();
    if (hops > sumPct.size()) {
      // Extend the arrays: every run counted so far has plateaued by the
      // old last column (a curve is constant past its final hop), so the
      // new columns start from that column's sums and extremes.
      const std::size_t oldSize = sumPct.size();
      const double lastSum = oldSize > 0 ? sumPct[oldSize - 1] : 0.0;
      const double lastMin = oldSize > 0 ? minPct[oldSize - 1] : 100.0;
      const double lastMax = oldSize > 0 ? maxPct[oldSize - 1] : 0.0;
      sumPct.resize(hops, lastSum);
      minPct.resize(hops, lastMin);
      maxPct.resize(hops, lastMax);
    }
    for (std::size_t h = 0; h < sumPct.size(); ++h) {
      const double pct =
          report.percentNotReachedAfterHop(static_cast<std::uint32_t>(h));
      sumPct[h] += pct;
      minPct[h] = std::min(minPct[h], pct);
      maxPct[h] = std::max(maxPct[h], pct);
    }
  }

  double sumAt(std::size_t hop) const {
    return sumPct[std::min(hop, sumPct.size() - 1)];
  }
  double minAt(std::size_t hop) const {
    return minPct[std::min(hop, minPct.size() - 1)];
  }
  double maxAt(std::size_t hop) const {
    return maxPct[std::min(hop, maxPct.size() - 1)];
  }
};

/// Canonical decomposition of `runs` replications into cells of at most
/// `runsPerCell` runs each.
struct CellLayout {
  std::uint32_t runsPerCell;
  std::uint32_t runs;
  std::uint32_t cells() const {
    return (runs + runsPerCell - 1) / runsPerCell;
  }
  std::uint32_t runsInCell(std::uint32_t cell) const {
    const std::uint64_t start = std::uint64_t{cell} * runsPerCell;
    return static_cast<std::uint32_t>(
        std::min<std::uint64_t>(runsPerCell, runs - start));
  }
};

}  // namespace

ParallelSweep::ParallelSweep(SweepOptions options) : options_(options) {
  VS07_EXPECT(options_.runsPerCell > 0);
  pool_ = std::make_unique<TaskPool>(options_.threads);
}

ParallelSweep::~ParallelSweep() = default;

std::uint32_t ParallelSweep::threadCount() const noexcept {
  return pool_->threadCount();
}

TaskPool& ParallelSweep::pool() noexcept { return *pool_; }

std::vector<EffectivenessPoint> ParallelSweep::sweepEffectiveness(
    const cast::OverlaySnapshot& overlay, const cast::TargetSelector& selector,
    const std::vector<std::uint32_t>& fanouts, std::uint32_t runs,
    std::uint64_t seed) {
  VS07_EXPECT(runs > 0);
  VS07_EXPECT(overlay.aliveCount() > 0);
  const CellLayout layout{options_.runsPerCell, runs};
  const std::uint32_t cellsPerFanout = layout.cells();
  const std::size_t totalCells =
      fanouts.size() * static_cast<std::size_t>(cellsPerFanout);

  std::vector<EffectivenessPartial> partials(totalCells);
  pool_->parallelFor(totalCells, [&](std::size_t cell) {
    const std::size_t fanoutIndex = cell / cellsPerFanout;
    const auto chunk = static_cast<std::uint32_t>(cell % cellsPerFanout);
    const std::uint32_t fanout = fanouts[fanoutIndex];
    Rng rng(deriveStreamSeed(seed, fanout, chunk));
    auto& partial = partials[cell];
    for (std::uint32_t r = 0; r < layout.runsInCell(chunk); ++r)
      partial.add(runOnce(overlay, selector, fanout, rng));
  });

  std::vector<EffectivenessPoint> points;
  points.reserve(fanouts.size());
  for (std::size_t f = 0; f < fanouts.size(); ++f) {
    EffectivenessPartial total;
    for (std::uint32_t chunk = 0; chunk < cellsPerFanout; ++chunk)
      total.merge(partials[f * cellsPerFanout + chunk]);
    points.push_back(total.finish(fanouts[f]));
  }
  return points;
}

EffectivenessPoint ParallelSweep::measureEffectiveness(
    const cast::OverlaySnapshot& overlay, const cast::TargetSelector& selector,
    std::uint32_t fanout, std::uint32_t runs, std::uint64_t seed) {
  return sweepEffectiveness(overlay, selector, {fanout}, runs, seed)
      .front();
}

EffectivenessPoint ParallelSweep::measureEffectiveness(
    const cast::OverlaySnapshot& overlay, cast::Strategy strategy,
    std::uint32_t fanout, std::uint32_t runs, std::uint64_t seed) {
  return measureEffectiveness(overlay, cast::selectorFor(strategy), fanout,
                              runs, seed);
}

EffectivenessPoint ParallelSweep::measureEffectiveness(
    const Scenario& scenario, cast::Strategy strategy, std::uint32_t fanout,
    std::uint32_t runs, std::uint64_t seed) {
  return measureEffectiveness(scenario.snapshot(strategy), strategy, fanout,
                              runs, seed);
}

std::vector<EffectivenessPoint> ParallelSweep::sweepEffectiveness(
    const cast::OverlaySnapshot& overlay, cast::Strategy strategy,
    const std::vector<std::uint32_t>& fanouts, std::uint32_t runs,
    std::uint64_t seed) {
  return sweepEffectiveness(overlay, cast::selectorFor(strategy), fanouts,
                            runs, seed);
}

std::vector<EffectivenessPoint> ParallelSweep::sweepEffectiveness(
    const Scenario& scenario, cast::Strategy strategy,
    const std::vector<std::uint32_t>& fanouts, std::uint32_t runs,
    std::uint64_t seed) {
  return sweepEffectiveness(scenario.snapshot(strategy), strategy, fanouts,
                            runs, seed);
}

ProgressStats ParallelSweep::measureProgress(
    const cast::OverlaySnapshot& overlay, const cast::TargetSelector& selector,
    std::uint32_t fanout, std::uint32_t runs, std::uint64_t seed) {
  VS07_EXPECT(runs > 0);
  VS07_EXPECT(overlay.aliveCount() > 0);
  const CellLayout layout{options_.runsPerCell, runs};
  const std::uint32_t cells = layout.cells();

  std::vector<ProgressPartial> partials(cells);
  pool_->parallelFor(cells, [&](std::size_t cell) {
    const auto chunk = static_cast<std::uint32_t>(cell);
    Rng rng(deriveStreamSeed(seed, fanout, chunk));
    auto& partial = partials[cell];
    for (std::uint32_t r = 0; r < layout.runsInCell(chunk); ++r)
      partial.add(runOnce(overlay, selector, fanout, rng));
  });

  std::size_t maxHops = 0;
  for (const auto& partial : partials)
    maxHops = std::max(maxHops, partial.sumPct.size());

  ProgressStats stats;
  stats.fanout = fanout;
  stats.runs = runs;
  stats.meanPctRemaining.assign(maxHops, 0.0);
  stats.minPctRemaining.assign(maxHops, 100.0);
  stats.maxPctRemaining.assign(maxHops, 0.0);
  for (std::size_t hop = 0; hop < maxHops; ++hop) {
    double sum = 0.0;
    for (const auto& partial : partials) {
      sum += partial.sumAt(hop);
      stats.minPctRemaining[hop] =
          std::min(stats.minPctRemaining[hop], partial.minAt(hop));
      stats.maxPctRemaining[hop] =
          std::max(stats.maxPctRemaining[hop], partial.maxAt(hop));
    }
    stats.meanPctRemaining[hop] = sum / runs;
  }
  return stats;
}

ProgressStats ParallelSweep::measureProgress(
    const cast::OverlaySnapshot& overlay, cast::Strategy strategy,
    std::uint32_t fanout, std::uint32_t runs, std::uint64_t seed) {
  return measureProgress(overlay, cast::selectorFor(strategy), fanout, runs,
                         seed);
}

ProgressStats ParallelSweep::measureProgress(const Scenario& scenario,
                                             cast::Strategy strategy,
                                             std::uint32_t fanout,
                                             std::uint32_t runs,
                                             std::uint64_t seed) {
  return measureProgress(scenario.snapshot(strategy), strategy, fanout, runs,
                         seed);
}

MissLifetimeStudy ParallelSweep::measureMissLifetimes(
    const cast::OverlaySnapshot& overlay, const cast::TargetSelector& selector,
    const sim::Network& network, std::uint64_t nowCycle, std::uint32_t fanout,
    std::uint32_t runs, std::uint64_t seed) {
  VS07_EXPECT(runs > 0);
  VS07_EXPECT(overlay.aliveCount() > 0);
  const CellLayout layout{options_.runsPerCell, runs};
  const std::uint32_t cells = layout.cells();

  struct Partial {
    EffectivenessPartial effectiveness;
    CountHistogram lifetimes;
  };
  std::vector<Partial> partials(cells);
  pool_->parallelFor(cells, [&](std::size_t cell) {
    const auto chunk = static_cast<std::uint32_t>(cell);
    Rng rng(deriveStreamSeed(seed, fanout, chunk));
    auto& partial = partials[cell];
    for (std::uint32_t r = 0; r < layout.runsInCell(chunk); ++r) {
      const auto report = runOnce(overlay, selector, fanout, rng);
      for (const NodeId missedNode : report.missed)
        partial.lifetimes.add(network.lifetime(missedNode, nowCycle));
      partial.effectiveness.add(report);
    }
  });

  EffectivenessPartial total;
  MissLifetimeStudy study;
  for (const auto& partial : partials) {
    total.merge(partial.effectiveness);
    study.missedLifetimes.merge(partial.lifetimes);
  }
  study.effectiveness = total.finish(fanout);
  return study;
}

MissLifetimeStudy ParallelSweep::measureMissLifetimes(
    const cast::OverlaySnapshot& overlay, cast::Strategy strategy,
    const sim::Network& network, std::uint64_t nowCycle, std::uint32_t fanout,
    std::uint32_t runs, std::uint64_t seed) {
  return measureMissLifetimes(overlay, cast::selectorFor(strategy), network,
                              nowCycle, fanout, runs, seed);
}

MissLifetimeStudy ParallelSweep::measureMissLifetimes(
    const Scenario& scenario, cast::Strategy strategy, std::uint32_t fanout,
    std::uint32_t runs, std::uint64_t seed) {
  return measureMissLifetimes(scenario.snapshot(strategy), strategy,
                              scenario.network(), scenario.engine().cycle(),
                              fanout, runs, seed);
}

}  // namespace vs07::analysis
