// Structural analysis of frozen overlays: connectivity (the §3/§5
// requirement for deterministic dissemination), degree distributions
// (CYCLON's indegree dynamics drive the churn results of §7.3), and ring
// convergence (how close VICINITY's d-links are to the true ring).
#pragma once

#include <cstdint>
#include <vector>

#include "cast/snapshot.hpp"
#include "gossip/vicinity.hpp"
#include "sim/network.hpp"

namespace vs07::analysis {

/// Which link sets of a snapshot to analyse.
struct LinkSelection {
  bool rlinks = true;
  bool dlinks = true;
};

/// Directed adjacency over the snapshot's *alive* nodes (links to dead
/// nodes dropped), with nodes reindexed densely. Index i corresponds to
/// snapshot.aliveIds()[i].
std::vector<std::vector<std::uint32_t>> aliveAdjacency(
    const cast::OverlaySnapshot& snapshot, LinkSelection links = {});

/// Sizes of all strongly connected components (iterative Tarjan),
/// unordered. Under churn the youngest joiners are momentarily sources
/// (no incoming links), so a healthy overlay is "one giant SCC plus a few
/// singletons" rather than exactly one component.
std::vector<std::uint32_t> stronglyConnectedComponentSizes(
    const std::vector<std::vector<std::uint32_t>>& adjacency);

/// Number of strongly connected components.
/// 1 means the §5 d-link requirement — strong connectivity — holds.
std::uint32_t stronglyConnectedComponentCount(
    const std::vector<std::vector<std::uint32_t>>& adjacency);

/// Size of the largest strongly connected component (0 for empty graphs).
std::uint32_t largestStronglyConnectedComponent(
    const std::vector<std::vector<std::uint32_t>>& adjacency);

/// In-degree of every alive node under the selected links (aligned with
/// snapshot.aliveIds()). A fresh joiner's r-link indegree growing by ~1
/// per cycle is the effect behind Fig. 13.
std::vector<std::uint32_t> aliveIndegrees(
    const cast::OverlaySnapshot& snapshot, LinkSelection links = {});

/// Result of comparing VICINITY's d-links against the true ring.
struct RingConvergence {
  /// Fraction of alive nodes whose successor d-link is the true alive
  /// successor by sequence id, and likewise for predecessors.
  double successorAccuracy = 0.0;
  double predecessorAccuracy = 0.0;
  /// Fraction of alive nodes with both d-links exactly right.
  double bothAccuracy = 0.0;
};

/// Measures how converged a VICINITY ring is w.r.t. the ground-truth ring
/// over the currently alive population.
RingConvergence ringConvergence(const sim::Network& network,
                                const gossip::Vicinity& vicinity);

}  // namespace vs07::analysis
