#include "analysis/scenario.hpp"

#include <utility>

#include "common/expect.hpp"
#include "sim/bootstrap.hpp"
#include "sim/failures.hpp"

namespace vs07::analysis {

namespace {

/// Ticks a delayed dissemination transport once per engine cycle, so
/// in-flight LiveSession traffic advances with simulated time.
class TransportPump final : public sim::Control {
 public:
  explicit TransportPump(net::DelayedTransport& transport)
      : transport_(transport) {}
  void execute(std::uint64_t /*cycle*/) override { transport_.tick(); }

 private:
  net::DelayedTransport& transport_;
};

}  // namespace

/// All the wiring, heap-allocated so Scenario moves cheaply and the
/// this-capturing delivery lambdas stay valid. Member order mirrors the
/// construction dependencies (and the former ProtocolStack, preserving
/// its seed derivation so results stay reproducible across the refactor).
struct Scenario::Core {
  Config config;
  sim::Network network;
  sim::MessageRouter router;
  net::ImmediateTransport transport;
  sim::Engine engine;
  /// Built when any link-level condition is configured (loss,
  /// partitions, clusters, bandwidth, ...); attached to the latency
  /// transport below.
  std::unique_ptr<sim::NetworkModel> model;
  /// Built when the timing config carries a latency model *or* network
  /// conditions exist; gossip and dissemination then both ride the
  /// engine's event queue (the only place per-link conditions can be
  /// resolved at delivery-scheduling time).
  std::unique_ptr<sim::LatencyTransport> latency;
  std::unique_ptr<net::DelayedTransport> delayed;
  std::unique_ptr<net::LossyTransport> lossy;
  gossip::Cyclon cyclon;
  gossip::MultiRing rings;
  /// Built when config.engineThreads >= 1; then *it* drives the cycles
  /// (the sequential engine above stays idle) and protocols/controls are
  /// registered here instead.
  std::unique_ptr<sim::ShardedEngine> sharded;
  std::unique_ptr<TransportPump> pump;
  std::unique_ptr<sim::ChurnControl> churn;
  std::unique_ptr<sim::SessionChurnControl> sessionChurn;
  std::unique_ptr<cast::LiveSession> live;
  Rng killRng;
  std::uint64_t churnCycles = 0;
  double installedChurnRate = 0.0;

  explicit Core(const Config& c)
      : config(c),
        network(c.nodes, sim::populationSeed(c.seed)),
        router(network),
        transport(router),  // direct sink: no std::function on the hot path
        engine(network, mix64(c.seed ^ 0x656E67ULL), c.timing),
        model(c.network.any()
                  ? std::make_unique<sim::NetworkModel>(
                        c.network, network, c.timing.ticksPerCycle,
                        mix64(c.seed ^ 0x6E65746DULL))  // "netm"
                  : nullptr),
        latency(c.timing.latency.kind == sim::LatencyModel::Kind::kNone &&
                        !model
                    ? nullptr
                    : std::make_unique<sim::LatencyTransport>(
                          engine, static_cast<net::DeliverySink&>(router),
                          c.timing.latency, mix64(c.seed ^ 0x6C6174ULL))),
        cyclon(network, gossipTransport(), router, c.cyclon,
               mix64(c.seed ^ 0x6379636CULL)),
        rings(network, gossipTransport(), router, cyclon, c.vicinity, c.rings,
              mix64(c.seed ^ 0x72696E67ULL)),
        killRng(mix64(c.seed ^ 0xFA11EDULL)) {
    if (model) latency->setNetworkModel(model.get());
    if (c.engineThreads >= 1) {
      VS07_EXPECT(!c.network.any() && !c.delayedTransport &&
                  c.dropProbability == 0.0 &&
                  "the sharded engine runs without link-level network "
                  "conditions or the legacy delayed/lossy transports");
      VS07_EXPECT((c.timing.mode == sim::TimingMode::kJitteredPeriodic ||
                   c.timing.latency.kind == sim::LatencyModel::Kind::kNone) &&
                  "sharded CycleSync is latency-free; use jittered timing "
                  "for latency models");
      sharded = std::make_unique<sim::ShardedEngine>(
          network, mix64(c.seed ^ 0x73686172ULL),  // "shar"
          c.engineThreads, c.timing);
      sharded->addProtocol(cyclon);
      sharded->addProtocol(rings);
    } else {
      engine.addProtocol(cyclon);
      engine.addProtocol(rings);
    }
    if (c.delayedTransport) {
      VS07_EXPECT(!latency &&
                  "pick one latency mechanism: timing().latency / network "
                  "conditions or delayedTransport()");
      delayed = std::make_unique<net::DelayedTransport>(
          static_cast<net::DeliverySink&>(router), c.minLatencyTicks,
          c.maxLatencyTicks, mix64(c.seed ^ 0x64656C6179ULL));
      pump = std::make_unique<TransportPump>(*delayed);
      engine.addControl(*pump);
    }
    if (c.dropProbability > 0.0) {
      net::Transport& base = delayed
                                 ? static_cast<net::Transport&>(*delayed)
                                 : (latency ? static_cast<net::Transport&>(
                                                  *latency)
                                            : transport);
      lossy = std::make_unique<net::LossyTransport>(
          base, c.dropProbability, mix64(c.seed ^ 0x6C6F7373ULL));
    }
  }

  /// The transport the gossip layers ride on: immediate (the paper's
  /// cycle model) unless the timing config asked for message latency.
  net::Transport& gossipTransport() {
    if (latency) return *latency;
    return transport;
  }

  net::Transport& castTransport() {
    if (lossy) return *lossy;
    if (delayed) return *delayed;
    if (latency) return *latency;
    return transport;
  }

  /// Cycle-boundary controls go to whichever engine actually runs.
  void addControlToActive(sim::Control& control) {
    if (sharded)
      sharded->addControl(control);
    else
      engine.addControl(control);
  }

  void runActive(std::uint64_t cycles) {
    if (sharded)
      sharded->run(cycles);
    else
      engine.run(cycles);
  }

  void installChurn(double rate) {
    VS07_EXPECT(!sessionChurn && "scenario already churns by session length");
    if (churn) {
      // Never silently keep churning at a different rate than asked for.
      VS07_EXPECT(rate == installedChurnRate &&
                  "churn already installed at a different rate");
      return;
    }
    churn = std::make_unique<sim::ChurnControl>(
        network, rate, mix64(config.seed ^ 0x636875726EULL));
    installedChurnRate = rate;
    churn->addJoinHandler(cyclon);
    churn->addJoinHandler(rings);
    addControlToActive(*churn);
  }

  void installSessionChurn(const sim::SessionDistribution& distribution) {
    VS07_EXPECT(!churn && "scenario already churns per cycle");
    if (sessionChurn) return;
    sessionChurn = std::make_unique<sim::SessionChurnControl>(
        network, distribution, mix64(config.seed ^ 0x636875726EULL));
    sessionChurn->addJoinHandler(cyclon);
    sessionChurn->addJoinHandler(rings);
    addControlToActive(*sessionChurn);
  }
};

Scenario::Scenario(const Config& config)
    : core_(std::make_unique<Core>(config)) {}

Scenario::Scenario(Scenario&&) noexcept = default;
Scenario& Scenario::operator=(Scenario&&) noexcept = default;
Scenario::~Scenario() = default;

ScenarioBuilder Scenario::builder() { return ScenarioBuilder{}; }

Scenario Scenario::paperStatic(std::uint32_t nodes, std::uint64_t seed,
                               sim::TimingConfig timing) {
  return builder().nodes(nodes).seed(seed).timing(timing).build();
}

Scenario Scenario::paperCatastrophic(double killFraction, std::uint32_t nodes,
                                     std::uint64_t seed,
                                     sim::TimingConfig timing) {
  Scenario scenario = builder().nodes(nodes).seed(seed).timing(timing).build();
  scenario.killRandomFraction(killFraction);
  return scenario;
}

Scenario Scenario::paperChurn(double rate, std::uint32_t nodes,
                              std::uint64_t seed,
                              std::uint64_t maxChurnCycles,
                              sim::TimingConfig timing) {
  Scenario scenario = builder().nodes(nodes).seed(seed).timing(timing).build();
  scenario.runChurnUntilFullTurnover(rate, maxChurnCycles);
  return scenario;
}

Scenario Scenario::paperPartitioned(std::uint32_t splitCycles,
                                    std::uint32_t nodes, std::uint64_t seed,
                                    sim::TimingConfig timing) {
  ScenarioBuilder b = builder();
  b.nodes(nodes).seed(seed).timing(timing);
  // The warm-up occupies cycles [0, warmupCycles); the blackout covers
  // the splitCycles cycles immediately after it.
  const std::uint64_t start = Config{}.warmupCycles;
  b.partitionRingSplit(2, start, start + splitCycles);
  return b.build();
}

Scenario Scenario::lossyWan(double lossRate, std::uint32_t nodes,
                            std::uint64_t seed) {
  return builder()
      .nodes(nodes)
      .seed(seed)
      .timing(sim::TimingConfig::jittered())
      .clusterLatency(4, sim::LatencyModel::fixed(1),
                      sim::LatencyModel::uniform(2, 8))
      .linkLoss(lossRate)
      .reordering(0.05, 3)
      .build();
}

Scenario Scenario::congested(std::uint32_t egressPerTick, std::uint32_t nodes,
                             std::uint64_t seed) {
  return builder()
      .nodes(nodes)
      .seed(seed)
      .timing(sim::TimingConfig::jitteredLatency(sim::LatencyModel::fixed(1)))
      .egressCap(egressPerTick)
      .build();
}

void Scenario::warmup() {
  sim::bootstrapStar(core_->network, core_->cyclon, /*hub=*/0);
  core_->runActive(core_->config.warmupCycles);
}

void Scenario::runCycles(std::uint64_t cycles) { core_->runActive(cycles); }

std::uint64_t Scenario::runChurnUntilFullTurnover(double rate,
                                                  std::uint64_t maxCycles) {
  core_->installChurn(rate);
  const auto done = [this] { return core_->network.initialSurvivors() == 0; };
  const auto ran = core_->sharded
                       ? core_->sharded->runUntil(done, maxCycles)
                       : core_->engine.runUntil(done, maxCycles);
  core_->churnCycles += ran;
  return ran;
}

std::uint64_t Scenario::churnCycles() const noexcept {
  return core_->churnCycles;
}

std::vector<NodeId> Scenario::killRandomFraction(double fraction) {
  return sim::killRandomFraction(core_->network, fraction, core_->killRng);
}

std::vector<NodeId> Scenario::killContiguousArc(double fraction) {
  return sim::killContiguousArc(core_->network, fraction, core_->killRng);
}

const Scenario::Config& Scenario::config() const noexcept {
  return core_->config;
}
const sim::TimingConfig& Scenario::timing() const noexcept {
  return core_->config.timing;
}
sim::Network& Scenario::network() noexcept { return core_->network; }
const sim::Network& Scenario::network() const noexcept {
  return core_->network;
}
sim::Engine& Scenario::engine() noexcept { return core_->engine; }
const sim::Engine& Scenario::engine() const noexcept { return core_->engine; }
sim::ShardedEngine* Scenario::shardedEngine() noexcept {
  return core_->sharded.get();
}
const sim::ShardedEngine* Scenario::shardedEngine() const noexcept {
  return core_->sharded.get();
}
std::uint64_t Scenario::cyclesRun() const noexcept {
  return core_->sharded ? core_->sharded->cycle() : core_->engine.cycle();
}
std::uint64_t Scenario::gossipMessagesSent() const noexcept {
  if (core_->sharded) return core_->sharded->messagesSent();
  return core_->gossipTransport().sent();
}
sim::MessageRouter& Scenario::router() noexcept { return core_->router; }
gossip::Cyclon& Scenario::cyclon() noexcept { return core_->cyclon; }
const gossip::Cyclon& Scenario::cyclon() const noexcept {
  return core_->cyclon;
}
gossip::MultiRing& Scenario::rings() noexcept { return core_->rings; }
const gossip::MultiRing& Scenario::rings() const noexcept {
  return core_->rings;
}
const gossip::Vicinity& Scenario::vicinity() const {
  return core_->rings.ring(0);
}
net::Transport& Scenario::castTransport() noexcept {
  return core_->castTransport();
}
net::DelayedTransport* Scenario::delayedTransport() noexcept {
  return core_->delayed.get();
}
sim::LatencyTransport* Scenario::latencyTransport() noexcept {
  return core_->latency.get();
}
sim::NetworkModel* Scenario::networkModel() noexcept {
  return core_->model.get();
}
const sim::NetworkModel* Scenario::networkModel() const noexcept {
  return core_->model.get();
}

cast::OverlaySnapshot Scenario::snapshot(cast::Strategy strategy) const {
  switch (strategy) {
    case cast::Strategy::kRandCast:
      return snapshotRandom();
    case cast::Strategy::kMultiRing:
      return snapshotMultiRing();
    case cast::Strategy::kFlood:
    case cast::Strategy::kRingCast:
    case cast::Strategy::kPushPull:
      return snapshotRing();
  }
  VS07_EXPECT(false && "unknown Strategy");
  return snapshotRing();  // unreachable
}

cast::OverlaySnapshot Scenario::snapshotRandom() const {
  return cast::snapshotRandom(core_->network, core_->cyclon);
}

cast::OverlaySnapshot Scenario::snapshotRing() const {
  return cast::snapshotRing(core_->network, core_->cyclon,
                            core_->rings.ring(0));
}

cast::OverlaySnapshot Scenario::snapshotMultiRing() const {
  return cast::snapshotMultiRing(core_->network, core_->cyclon, core_->rings);
}

cast::OverlaySnapshot Scenario::snapshotBand(std::uint32_t bandWidth) const {
  return cast::snapshotBand(core_->network, core_->cyclon,
                            core_->rings.ring(0), bandWidth);
}

cast::SnapshotSession Scenario::snapshotSession(
    cast::CastOptions options) const {
  return cast::SnapshotSession(snapshot(options.strategy), options);
}

search::QuerySession Scenario::querySession(
    const search::QueryOptions& options) const {
  return search::QuerySession(snapshot(options.overlay), options);
}

search::QuerySession Scenario::querySession() const {
  return querySession(core_->config.query);
}

cast::LiveSession& Scenario::liveSession(cast::CastOptions options) {
  VS07_EXPECT(!core_->sharded &&
              "live sessions run on the sequential engine (its tick clock "
              "and Data routes); use engineThreads(0)");
  VS07_EXPECT(!core_->live &&
              "one live session per scenario (it owns the Data routes)");
  core_->live = std::make_unique<cast::LiveSession>(
      core_->network, core_->castTransport(), core_->router, core_->engine,
      core_->cyclon, &core_->rings.ring(0), &core_->rings, options);
  return *core_->live;
}

// -- ScenarioBuilder -----------------------------------------------------

ScenarioBuilder& ScenarioBuilder::nodes(std::uint32_t n) {
  config_.nodes = n;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::seed(std::uint64_t s) {
  config_.seed = s;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::engineThreads(std::uint32_t threads) {
  VS07_EXPECT(threads <= 256);
  config_.engineThreads = threads;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::rings(std::uint32_t count) {
  config_.rings = count;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::warmupCycles(std::uint32_t cycles) {
  config_.warmupCycles = cycles;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::cyclonParams(gossip::Cyclon::Params params) {
  config_.cyclon = params;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::vicinityParams(
    gossip::Vicinity::Params params) {
  config_.vicinity = params;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::timing(sim::TimingConfig config) {
  VS07_EXPECT(config.ticksPerCycle >= 1);
  config_.timing = config;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::jitteredTiming(std::uint32_t ticksPerCycle) {
  VS07_EXPECT(ticksPerCycle >= 1);
  config_.timing.mode = sim::TimingMode::kJitteredPeriodic;
  config_.timing.ticksPerCycle = ticksPerCycle;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::latency(sim::LatencyModel model) {
  VS07_EXPECT(!config_.delayedTransport &&
              "pick one latency mechanism: latency() or delayedTransport()");
  config_.timing.latency = model;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::network(sim::NetworkConditions conditions) {
  config_.network = std::move(conditions);
  return *this;
}
ScenarioBuilder& ScenarioBuilder::linkLoss(double lossRate) {
  VS07_EXPECT(lossRate >= 0.0 && lossRate <= 1.0);
  config_.network.lossRate = lossRate;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::burstLoss(
    sim::GilbertElliottLink::Params params) {
  config_.network.burstLoss = true;
  config_.network.burst = params;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::duplication(double rate) {
  VS07_EXPECT(rate >= 0.0 && rate <= 1.0);
  config_.network.duplicateRate = rate;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::reordering(double rate,
                                             std::uint32_t maxExtraTicks) {
  VS07_EXPECT(rate >= 0.0 && rate <= 1.0);
  VS07_EXPECT(maxExtraTicks >= 1);
  config_.network.reorderRate = rate;
  config_.network.reorderMaxTicks = maxExtraTicks;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::clusterLatency(std::uint32_t clusters,
                                                 sim::LatencyModel intra,
                                                 sim::LatencyModel inter) {
  VS07_EXPECT(clusters >= 1);
  config_.network.clusterLatency = {clusters, intra, inter};
  return *this;
}
ScenarioBuilder& ScenarioBuilder::egressCap(std::uint32_t messagesPerTick) {
  VS07_EXPECT(messagesPerTick >= 1);
  config_.network.bandwidth.messagesPerTick = messagesPerTick;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::conditionsFromCycle(std::uint64_t cycle) {
  config_.network.startCycle = cycle;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::partitionRingSplit(std::uint32_t groups,
                                                     std::uint64_t startCycle,
                                                     std::uint64_t endCycle) {
  using Kind = sim::NetworkConditions::PartitionPlan::Kind;
  VS07_EXPECT(groups >= 2);
  VS07_EXPECT(startCycle < endCycle);
  auto& plan = config_.network.partition;
  VS07_EXPECT((plan.kind == Kind::kNone ||
               (plan.kind == Kind::kRingSplit && plan.groups == groups)) &&
              "one partition grouping per scenario");
  plan.kind = Kind::kRingSplit;
  plan.groups = groups;
  plan.windowsCycles.emplace_back(startCycle, endCycle);
  return *this;
}
ScenarioBuilder& ScenarioBuilder::partitionRingArc(double fraction,
                                                   std::uint64_t startCycle,
                                                   std::uint64_t endCycle) {
  using Kind = sim::NetworkConditions::PartitionPlan::Kind;
  VS07_EXPECT(fraction > 0.0 && fraction < 1.0);
  VS07_EXPECT(startCycle < endCycle);
  auto& plan = config_.network.partition;
  VS07_EXPECT((plan.kind == Kind::kNone ||
               (plan.kind == Kind::kRingArc &&
                plan.arcFraction == fraction)) &&
              "one partition grouping per scenario");
  plan.kind = Kind::kRingArc;
  plan.arcFraction = fraction;
  plan.windowsCycles.emplace_back(startCycle, endCycle);
  return *this;
}
ScenarioBuilder& ScenarioBuilder::delayedTransport(
    std::uint32_t minLatencyTicks, std::uint32_t maxLatencyTicks) {
  VS07_EXPECT(minLatencyTicks <= maxLatencyTicks);
  VS07_EXPECT(config_.timing.latency.kind == sim::LatencyModel::Kind::kNone &&
              "pick one latency mechanism: latency() or delayedTransport()");
  VS07_EXPECT(!config_.network.any() &&
              "network conditions ride the engine-queue transport; they do "
              "not compose with delayedTransport()");
  config_.delayedTransport = true;
  config_.minLatencyTicks = minLatencyTicks;
  config_.maxLatencyTicks = maxLatencyTicks;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::lossyTransport(double dropProbability) {
  VS07_EXPECT(dropProbability >= 0.0 && dropProbability <= 1.0);
  config_.dropProbability = dropProbability;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::churn(double ratePerCycle) {
  VS07_EXPECT(ratePerCycle > 0.0 && ratePerCycle < 1.0);
  VS07_EXPECT(!config_.sessionChurn && "pick one churn model");
  config_.churnRate = ratePerCycle;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::sessionChurn(
    sim::SessionDistribution distribution) {
  VS07_EXPECT(config_.churnRate == 0.0 && "pick one churn model");
  config_.sessionChurn = true;
  config_.sessions = distribution;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::query(search::QueryOptions options) {
  config_.query = options;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::noWarmup() {
  config_.warmOnBuild = false;
  return *this;
}

Scenario ScenarioBuilder::build() {
  VS07_EXPECT(config_.nodes >= 1);
  Scenario scenario(config_);
  if (config_.warmOnBuild) scenario.warmup();
  // Churn starts only after the clean §7 self-organisation phase.
  if (config_.sessionChurn)
    scenario.core_->installSessionChurn(config_.sessions);
  else if (config_.churnRate > 0.0)
    scenario.core_->installChurn(config_.churnRate);
  return scenario;
}

}  // namespace vs07::analysis
