#include "overlay/graph.hpp"

#include <algorithm>

namespace vs07::overlay {

void Graph::addEdge(NodeId a, NodeId b) {
  VS07_EXPECT(a < adj_.size() && b < adj_.size());
  VS07_EXPECT(a != b);
  VS07_EXPECT(!hasEdge(a, b));
  adj_[a].push_back(b);
}

bool Graph::hasEdge(NodeId a, NodeId b) const {
  VS07_EXPECT(a < adj_.size());
  const auto& nbrs = adj_[a];
  return std::find(nbrs.begin(), nbrs.end(), b) != nbrs.end();
}

std::uint64_t Graph::edgeCount() const noexcept {
  std::uint64_t count = 0;
  for (const auto& nbrs : adj_) count += nbrs.size();
  return count;
}

std::vector<std::uint32_t> Graph::outDegrees() const {
  std::vector<std::uint32_t> degrees(adj_.size());
  for (std::size_t i = 0; i < adj_.size(); ++i)
    degrees[i] = static_cast<std::uint32_t>(adj_[i].size());
  return degrees;
}

Graph makeRandomTree(std::uint32_t n, Rng& rng) {
  VS07_EXPECT(n >= 1);
  Graph g(n);
  for (NodeId i = 1; i < n; ++i)
    g.addUndirected(i, static_cast<NodeId>(rng.below(i)));
  return g;
}

Graph makeStar(std::uint32_t n, NodeId hub) {
  VS07_EXPECT(n >= 1 && hub < n);
  Graph g(n);
  for (NodeId i = 0; i < n; ++i)
    if (i != hub) g.addUndirected(i, hub);
  return g;
}

Graph makeRing(std::uint32_t n) {
  VS07_EXPECT(n >= 3);
  Graph g(n);
  for (NodeId i = 0; i < n; ++i) g.addUndirected(i, (i + 1) % n);
  return g;
}

Graph makeClique(std::uint32_t n) {
  VS07_EXPECT(n >= 2);
  Graph g(n);
  for (NodeId i = 0; i < n; ++i)
    for (NodeId j = i + 1; j < n; ++j) g.addUndirected(i, j);
  return g;
}

Graph makeHarary(std::uint32_t t, std::uint32_t n) {
  VS07_EXPECT(t >= 2 && t < n);
  Graph g(n);
  const std::uint32_t m = t / 2;
  // Circulant chords 1..m give connectivity 2m.
  for (NodeId i = 0; i < n; ++i)
    for (std::uint32_t k = 1; k <= m; ++k) {
      const NodeId j = (i + k) % n;
      if (!g.hasEdge(i, j)) g.addUndirected(i, j);
    }
  if (t % 2 == 1) {
    // Odd connectivity: add diameters. For even n pair i with i + n/2;
    // for odd n, Harary's construction joins node i to i + (n-1)/2 and
    // i + (n+1)/2 for the first node, approximated here by flooring —
    // connectivity is still >= t.
    const std::uint32_t half = n / 2;
    for (NodeId i = 0; i < (n + 1) / 2; ++i) {
      const NodeId j = (i + half) % n;
      if (!g.hasEdge(i, j)) g.addUndirected(i, j);
    }
  }
  return g;
}

namespace {

/// Marks every node reachable from `start` following `forward` edges
/// (or reversed edges when `forward` is false).
std::uint32_t reachableCount(const Graph& g, NodeId start, bool forward) {
  const std::uint32_t n = g.size();
  // Transpose adjacency built on demand for the reverse pass.
  std::vector<std::vector<NodeId>> reverse;
  if (!forward) {
    reverse.resize(n);
    for (NodeId a = 0; a < n; ++a)
      for (const NodeId b : g.neighbors(a)) reverse[b].push_back(a);
  }
  std::vector<std::uint8_t> seen(n, 0);
  std::vector<NodeId> stack{start};
  seen[start] = 1;
  std::uint32_t count = 1;
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    const auto& nbrs = forward ? g.neighbors(u) : reverse[u];
    for (const NodeId v : nbrs)
      if (!seen[v]) {
        seen[v] = 1;
        ++count;
        stack.push_back(v);
      }
  }
  return count;
}

}  // namespace

bool isStronglyConnected(const Graph& g) {
  if (g.size() == 0) return true;
  return reachableCount(g, 0, true) == g.size() &&
         reachableCount(g, 0, false) == g.size();
}

}  // namespace vs07::overlay
