// Static directed graphs and the deterministic overlay families of §3.
//
// The paper's taxonomy of flooding overlays: spanning trees (minimal
// messages, fragile), stars (server bottleneck), cliques (maximal cost and
// reliability), and Harary graphs H(t, n) — minimal-link graphs that stay
// connected under any t-1 failures, of which RINGCAST's bidirectional ring
// is the t = 2 member. These builders feed the §3 ablation bench and the
// flooding tests.
#pragma once

#include <cstdint>
#include <vector>

#include "common/expect.hpp"
#include "common/rng.hpp"
#include "net/node_id.hpp"

namespace vs07::overlay {

/// Adjacency-list directed graph over dense node ids [0, n).
class Graph {
 public:
  explicit Graph(std::uint32_t n) : adj_(n) {}

  std::uint32_t size() const noexcept {
    return static_cast<std::uint32_t>(adj_.size());
  }

  /// Adds the directed edge a -> b (parallel edges are a caller bug).
  void addEdge(NodeId a, NodeId b);

  /// Adds both a -> b and b -> a.
  void addUndirected(NodeId a, NodeId b) {
    addEdge(a, b);
    addEdge(b, a);
  }

  bool hasEdge(NodeId a, NodeId b) const;

  const std::vector<NodeId>& neighbors(NodeId a) const {
    VS07_EXPECT(a < adj_.size());
    return adj_[a];
  }

  /// Total directed edges.
  std::uint64_t edgeCount() const noexcept;

  /// Out-degree of every node.
  std::vector<std::uint32_t> outDegrees() const;

 private:
  std::vector<std::vector<NodeId>> adj_;
};

/// Random spanning tree: each node i>0 links to a uniform parent in [0,i).
/// N-1 undirected edges — the message-optimal §3 overlay.
Graph makeRandomTree(std::uint32_t n, Rng& rng);

/// Star: every node bidirectionally linked to `hub` — §3's server-based
/// overlay with its single point of failure and worst load skew.
Graph makeStar(std::uint32_t n, NodeId hub = 0);

/// Bidirectional ring in id order — Harary connectivity 2, RINGCAST's
/// d-link structure.
Graph makeRing(std::uint32_t n);

/// Complete graph — §3's clique: maximal reliability, impractical cost.
Graph makeClique(std::uint32_t n);

/// Harary graph H(t, n): minimal graph with connectivity t (Harary 1962).
/// For t = 2m: circulant C_n(1..m). For odd t: C_n(1..m) plus diameters
/// (requires even n for the classic construction; we pair i with
/// i + n/2 rounding as Harary does for odd n on the (n-1)/2 chords).
/// Requires 2 <= t < n.
Graph makeHarary(std::uint32_t t, std::uint32_t n);

/// True iff there is a directed path between every ordered pair — the §3
/// requirement for complete dissemination by flooding. BFS from node 0 in
/// the graph and its transpose (Kosaraju-style reachability check).
bool isStronglyConnected(const Graph& g);

}  // namespace vs07::overlay
