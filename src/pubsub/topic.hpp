// Topic-based publish/subscribe — the §8 application of the dissemination
// protocols:
//
//   "Each topic forms its own, separate dissemination overlay. Subscribers
//    join the overlay(s) of the topics of their interest. Events are
//    multicast by disseminating them in the appropriate overlay."
//
// A TopicOverlay is a private CYCLON + VICINITY stack over the subset of
// nodes subscribed to the topic. Unsubscribed nodes stop receiving topic
// traffic immediately (their gossip is dropped), and their stale view
// entries age out of the remaining subscribers' views through the normal
// CYCLON/VICINITY failure handling.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "cast/disseminator.hpp"
#include "cast/selector.hpp"
#include "cast/snapshot.hpp"
#include "gossip/cyclon.hpp"
#include "gossip/vicinity.hpp"
#include "net/transport.hpp"
#include "sim/engine.hpp"
#include "sim/network.hpp"
#include "sim/router.hpp"

namespace vs07::pubsub {

/// One topic's private dissemination overlay. Observes the host network
/// so subscribers that die at the network level are pruned from the
/// roster immediately — without this the subscriber list grows forever
/// under churn and introducer selection degrades with it.
class TopicOverlay final : public sim::CycleProtocol,
                           public sim::MembershipObserver {
 public:
  struct Params {
    gossip::Cyclon::Params cyclon{8, 4};      ///< small per-topic views
    gossip::Vicinity::Params vicinity{8, 4};  ///< channel is set internally
  };

  /// Creates the overlay over the host `network`'s id space. The topic
  /// only ever touches subscribed nodes.
  TopicOverlay(sim::Network& network, std::string name, Params params,
               std::uint64_t seed);

  TopicOverlay(const TopicOverlay&) = delete;
  TopicOverlay& operator=(const TopicOverlay&) = delete;

  const std::string& name() const noexcept { return name_; }

  /// Subscribes a node; it is introduced to one random existing
  /// subscriber (no-op if already subscribed).
  void subscribe(NodeId node);

  /// Unsubscribes a node: its topic views are cleared and other
  /// subscribers' messages to it are dropped from now on.
  void unsubscribe(NodeId node);

  bool isSubscribed(NodeId node) const {
    return subscribed_.contains(node);
  }
  std::uint32_t subscriberCount() const noexcept {
    return static_cast<std::uint32_t>(subscribed_.size());
  }

  // sim::CycleProtocol — steps the topic's protocols for subscribers only;
  // register on the host engine, or use runCycles() for standalone use.
  void step(NodeId self) override;

  // sim::MembershipObserver — network-dead subscribers leave the roster.
  void onSpawn(NodeId node) override;
  void onKill(NodeId node) override;

  /// Convenience: run `cycles` gossip cycles for this topic only.
  void runCycles(std::uint64_t cycles);

  /// Frozen overlay over the *alive subscribers* (r-links + ring d-links).
  cast::OverlaySnapshot snapshot() const;

  /// Publishes an event from `origin` (must be an alive subscriber) with
  /// the given selector semantics; returns the delivery report.
  cast::DeliveryReport publish(NodeId origin,
                               const cast::TargetSelector& selector,
                               std::uint32_t fanout, std::uint64_t seed);

  /// As above, keyed on the shared Strategy plug-point.
  cast::DeliveryReport publish(NodeId origin, cast::Strategy strategy,
                               std::uint32_t fanout, std::uint64_t seed);

 private:
  /// Removes a node from subscribed_/subscriberList_ (must be present).
  void removeFromRoster(NodeId node);

  /// Drops traffic to unsubscribed nodes (they are outside this overlay,
  /// exactly like dead nodes), then routes normally.
  struct FilterSink final : net::DeliverySink {
    explicit FilterSink(TopicOverlay& topic) : topic(topic) {}
    void deliver(NodeId to, net::Message&& msg) override;
    TopicOverlay& topic;
  };

  sim::Network& network_;
  std::string name_;
  Rng rng_;
  sim::MessageRouter router_;
  FilterSink sink_{*this};
  net::ImmediateTransport transport_;
  gossip::Cyclon cyclon_;
  gossip::Vicinity vicinity_;
  std::unordered_set<NodeId> subscribed_;
  std::vector<NodeId> subscriberList_;  // for random introducer selection
};

/// Registry of topics over one host network; step() drives all of them.
class PubSub final : public sim::CycleProtocol {
 public:
  PubSub(sim::Network& network, std::uint64_t seed);

  /// Returns the topic, creating its overlay on first use.
  TopicOverlay& topic(const std::string& name);

  /// Topics created so far.
  std::vector<std::string> topicNames() const;

  // sim::CycleProtocol — steps every topic's protocols.
  void step(NodeId self) override;

 private:
  sim::Network& network_;
  Rng seeder_;
  TopicOverlay::Params defaultParams_;
  std::vector<std::unique_ptr<TopicOverlay>> topics_;
};

}  // namespace vs07::pubsub
