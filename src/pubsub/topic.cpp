#include "pubsub/topic.hpp"

#include <algorithm>

#include "common/expect.hpp"

namespace vs07::pubsub {

void TopicOverlay::FilterSink::deliver(NodeId to, net::Message&& msg) {
  if (!topic.subscribed_.contains(to)) return;
  topic.router_.deliver(to, std::move(msg));
}

TopicOverlay::TopicOverlay(sim::Network& network, std::string name,
                           Params params, std::uint64_t seed)
    : network_(network),
      name_(std::move(name)),
      rng_(seed),
      router_(network),
      transport_(sink_),
      cyclon_(network, transport_, router_, params.cyclon, mix64(seed ^ 1)),
      vicinity_(network, transport_, router_, cyclon_, params.vicinity,
                mix64(seed ^ 2)) {
  // After cyclon_/vicinity_: they observe the network too and must see a
  // kill before the roster forgets the node ever subscribed.
  network.addObserver(*this);
}

void TopicOverlay::subscribe(NodeId node) {
  VS07_EXPECT(network_.isAlive(node));
  if (subscribed_.contains(node)) return;

  // Introducer: a random existing subscriber, if any. The membership
  // observer prunes network-dead subscribers eagerly, so every roster
  // entry is alive and one draw suffices (the old rejection sampler
  // degraded toward 8*N attempts as dead entries accumulated).
  NodeId introducer = kNoNode;
  if (!subscriberList_.empty())
    introducer = subscriberList_[rng_.below(subscriberList_.size())];

  subscribed_.insert(node);
  subscriberList_.push_back(node);
  if (introducer != kNoNode) {
    cyclon_.onJoin(node, introducer);
    vicinity_.onJoin(node, introducer);
  }
}

void TopicOverlay::unsubscribe(NodeId node) {
  if (!subscribed_.contains(node)) return;
  removeFromRoster(node);
  // Leave no trace: the node's topic views are gone; peers' links to it
  // decay through normal gossip aging.
  cyclon_.onKill(node);
  vicinity_.onKill(node);
}

void TopicOverlay::removeFromRoster(NodeId node) {
  subscribed_.erase(node);
  const auto pos =
      std::find(subscriberList_.begin(), subscriberList_.end(), node);
  VS07_ENSURE(pos != subscriberList_.end());
  *pos = subscriberList_.back();
  subscriberList_.pop_back();
}

void TopicOverlay::onSpawn(NodeId /*node*/) {}

void TopicOverlay::onKill(NodeId node) {
  if (!subscribed_.contains(node)) return;
  // The network already notified the topic's own CYCLON/VICINITY (they
  // observe it directly); only the subscriber roster needs pruning here.
  removeFromRoster(node);
}

void TopicOverlay::step(NodeId self) {
  if (!subscribed_.contains(self)) return;
  cyclon_.step(self);
  vicinity_.step(self);
}

void TopicOverlay::runCycles(std::uint64_t cycles) {
  std::vector<NodeId> order;
  for (std::uint64_t c = 0; c < cycles; ++c) {
    order = subscriberList_;
    rng_.shuffle(order);
    for (const NodeId node : order)
      if (network_.isAlive(node)) step(node);
  }
}

cast::OverlaySnapshot TopicOverlay::snapshot() const {
  std::vector<cast::OverlaySnapshot::NodeLinks> links(
      network_.totalCreated());
  std::vector<std::uint8_t> alive(network_.totalCreated(), 0);
  for (const NodeId id : subscriberList_) {
    if (!network_.isAlive(id)) continue;
    alive[id] = 1;
    auto& nodeLinks = links[id];
    for (const auto& e : cyclon_.view(id).entries())
      nodeLinks.rlinks.push_back(e.node);
    const auto ring = vicinity_.ringNeighbors(id);
    auto addDlink = [&nodeLinks](NodeId link) {
      if (link == kNoNode) return;
      if (std::find(nodeLinks.dlinks.begin(), nodeLinks.dlinks.end(),
                    link) != nodeLinks.dlinks.end())
        return;
      nodeLinks.dlinks.push_back(link);
    };
    addDlink(ring.successor);
    addDlink(ring.predecessor);
  }
  return {std::move(links), std::move(alive)};
}

cast::DeliveryReport TopicOverlay::publish(
    NodeId origin, const cast::TargetSelector& selector, std::uint32_t fanout,
    std::uint64_t seed) {
  VS07_EXPECT(isSubscribed(origin));
  VS07_EXPECT(network_.isAlive(origin));
  cast::DisseminationParams params;
  params.fanout = fanout;
  params.seed = seed;
  return cast::disseminate(snapshot(), selector, origin, params);
}

cast::DeliveryReport TopicOverlay::publish(NodeId origin,
                                           cast::Strategy strategy,
                                           std::uint32_t fanout,
                                           std::uint64_t seed) {
  auto report = publish(origin, cast::selectorFor(strategy), fanout, seed);
  report.strategy = strategy;
  return report;
}

PubSub::PubSub(sim::Network& network, std::uint64_t seed)
    : network_(network), seeder_(seed) {}

TopicOverlay& PubSub::topic(const std::string& name) {
  for (const auto& t : topics_)
    if (t->name() == name) return *t;
  topics_.push_back(std::make_unique<TopicOverlay>(
      network_, name, defaultParams_, seeder_()));
  return *topics_.back();
}

std::vector<std::string> PubSub::topicNames() const {
  std::vector<std::string> names;
  names.reserve(topics_.size());
  for (const auto& t : topics_) names.push_back(t->name());
  return names;
}

void PubSub::step(NodeId self) {
  for (auto& t : topics_) t->step(self);
}

}  // namespace vs07::pubsub
