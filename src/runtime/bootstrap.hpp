// Seed-node announce ladder — how a fresh process obtains its first
// CYCLON view over the wire.
//
// The simulator bootstraps by construction (every Cyclon instance sees
// the whole population); a real process starts knowing exactly one
// address: the seed's. Joining is a two-frame ladder:
//
//       joiner                                 seed
//         | -- HELLO (header: id + listen port) -->|  admit() into view
//         |<-- WELCOME (annex: known peers) -------|  reply with addresses
//       seedView() from annex + seed
//
// HELLO retries with exponential backoff (base doubling up to a cap)
// until a WELCOME arrives or the attempt budget is spent — UDP may drop
// either frame, and the seed may simply not be up yet when a cluster
// harness launches every process at once. Each WELCOME carries up to
// `annexLimit` known peer addresses, so late joiners start with a
// populated view instead of a star around the seed; the gossip annex
// keeps spreading addresses from there.
//
// The seed itself starts kJoined with an empty view and learns its
// peers from their HELLOs. Any joined node answers HELLO the same way,
// so the ladder also serves re-bootstrap after a restart.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gossip/cyclon.hpp"
#include "runtime/peer_table.hpp"
#include "runtime/udp_transport.hpp"
#include "runtime/wire.hpp"

namespace vs07::runtime {

class Bootstrap final : public FrameHandler {
 public:
  enum class State : std::uint8_t {
    kAnnouncing,  ///< HELLOs in flight, no WELCOME yet
    kJoined,      ///< view seeded (or this node is the seed)
    kFailed,      ///< attempt budget spent without a WELCOME
  };

  struct Config {
    NodeId selfId = 0;
    /// Seeds skip the ladder entirely and answer everyone else's.
    bool isSeed = false;
    /// Where to HELLO (ignored for seeds).
    PeerAddress seedAddr{};
    /// First retry delay; doubles per attempt up to retryCapMs.
    std::uint32_t retryBaseMs = 100;
    std::uint32_t retryCapMs = 2000;
    /// HELLOs sent before giving up (kFailed).
    std::uint32_t maxAttempts = 20;
    /// Known-peer addresses carried per WELCOME.
    std::uint32_t annexLimit = 64;
  };

  /// Registers itself as `transport`'s frame handler. All references are
  /// borrowed and must outlive the bootstrap.
  Bootstrap(const Config& config, UdpTransport& transport, PeerTable& peers,
            gossip::Cyclon& cyclon);

  /// Drives the ladder: (re)sends HELLO when its deadline passed. Call
  /// from the main loop with wall-clock milliseconds (any monotonic
  /// origin; only differences matter).
  void tick(std::uint64_t nowMs);

  /// The next moment tick() wants to run, for the poll timeout;
  /// UINT64_MAX once the ladder is settled.
  std::uint64_t nextDeadlineMs() const noexcept;

  // FrameHandler — HELLO/WELCOME dispatch from the transport.
  void onFrame(const FrameHeader& header, const PeerAddress& from,
               std::span<const AddressEntry> annex) override;

  State state() const noexcept { return state_; }
  bool joined() const noexcept { return state_ == State::kJoined; }
  bool failed() const noexcept { return state_ == State::kFailed; }
  std::uint32_t attempts() const noexcept { return attempts_; }
  /// HELLOs answered with a WELCOME (seed-side diagnostic).
  std::uint64_t welcomed() const noexcept { return welcomed_; }

 private:
  void sendHello(std::uint64_t nowMs);

  Config config_;
  UdpTransport& transport_;
  PeerTable& peers_;
  gossip::Cyclon& cyclon_;

  State state_;
  std::uint32_t attempts_ = 0;
  std::uint64_t nextAttemptMs_ = 0;  // 0 = fire at the first tick
  std::uint64_t welcomed_ = 0;
  std::vector<AddressEntry> annexScratch_;
  std::vector<NodeId> viewScratch_;
};

}  // namespace vs07::runtime
