#include "runtime/peer_table.hpp"

#include <charconv>
#include <cstdio>

namespace vs07::runtime {

PeerAddress parseAddress(const std::string& host, std::uint16_t port) {
  const std::string name = host == "localhost" ? "127.0.0.1" : host;
  std::uint32_t ipv4 = 0;
  const char* cursor = name.c_str();
  const char* end = cursor + name.size();
  for (int octet = 0; octet < 4; ++octet) {
    std::uint32_t value = 0;
    const auto result = std::from_chars(cursor, end, value);
    if (result.ec != std::errc() || value > 255) return {};
    ipv4 = (ipv4 << 8) | value;
    cursor = result.ptr;
    if (octet < 3) {
      if (cursor == end || *cursor != '.') return {};
      ++cursor;
    }
  }
  if (cursor != end) return {};
  return {ipv4, port};
}

std::string formatAddress(const PeerAddress& addr) {
  char out[32];
  std::snprintf(out, sizeof(out), "%u.%u.%u.%u:%u", (addr.ipv4 >> 24) & 0xFF,
                (addr.ipv4 >> 16) & 0xFF, (addr.ipv4 >> 8) & 0xFF,
                addr.ipv4 & 0xFF, addr.port);
  return out;
}

}  // namespace vs07::runtime
