// NodeId -> socket address resolution for the real-socket runtime.
//
// The protocol stack addresses peers by NodeId (dense ids drawn from the
// shared population seed); the wire needs IPv4/port pairs. The table
// learns addresses two ways, both driven by received traffic: every
// frame teaches the sender's own address (source IP + the listen port
// carried in the frame header), and every frame's address annex teaches
// third-party addresses for the peers referenced in its gossip entries.
// Sends to a node whose address is still unknown are counted and dropped
// — indistinguishable from a lost datagram, which the gossip layer
// already tolerates by design.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/expect.hpp"
#include "net/node_id.hpp"

namespace vs07::runtime {

/// One peer's socket address. Host byte order throughout; conversion to
/// network order happens at the sendto/recvfrom boundary only.
struct PeerAddress {
  std::uint32_t ipv4 = 0;
  std::uint16_t port = 0;

  /// Port 0 doubles as "unknown": no peer listens on port 0.
  bool valid() const noexcept { return port != 0; }

  friend bool operator==(const PeerAddress&, const PeerAddress&) = default;
};

/// Parses a dotted-quad IPv4 literal (plus the "localhost" alias) into a
/// PeerAddress. Returns an invalid address on anything else — the
/// runtime is deliberately resolver-free; harnesses pass numeric hosts.
PeerAddress parseAddress(const std::string& host, std::uint16_t port);

/// Renders "a.b.c.d:port" for logs and control-socket JSON.
std::string formatAddress(const PeerAddress& addr);

/// Dense NodeId -> PeerAddress map for a fixed population.
class PeerTable {
 public:
  explicit PeerTable(std::uint32_t nodeCount)
      : addresses_(nodeCount) {}

  std::uint32_t nodeCount() const noexcept {
    return static_cast<std::uint32_t>(addresses_.size());
  }

  /// Records (or overwrites) a peer's address. Last writer wins: a peer
  /// that rebinds is re-learned from its next frame.
  void learn(NodeId node, const PeerAddress& addr) {
    VS07_EXPECT(node < addresses_.size());
    if (!addr.valid()) return;
    if (!addresses_[node].valid()) ++known_;
    addresses_[node] = addr;
  }

  /// The peer's address; !valid() when never learned.
  const PeerAddress& lookup(NodeId node) const {
    VS07_EXPECT(node < addresses_.size());
    return addresses_[node];
  }

  bool knows(NodeId node) const { return lookup(node).valid(); }

  /// Peers with a learned address.
  std::uint32_t knownCount() const noexcept { return known_; }

  /// Appends up to `limit` known (node, address) pairs to `out`, skipping
  /// `exclude` — the WELCOME annex assembly.
  template <typename OutVec>
  void fillKnown(std::size_t limit, NodeId exclude, OutVec& out) const {
    for (NodeId node = 0; node < addresses_.size(); ++node) {
      if (out.size() >= limit) break;
      if (node == exclude || !addresses_[node].valid()) continue;
      out.push_back({node, addresses_[node]});
    }
  }

 private:
  std::vector<PeerAddress> addresses_;
  std::uint32_t known_ = 0;
};

}  // namespace vs07::runtime
