#include "runtime/control.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace vs07::runtime {

namespace {

/// A command line (or a reply backlog) beyond this is a broken client.
constexpr std::size_t kMaxLineBytes = 1 << 16;
constexpr std::size_t kMaxConns = 64;

bool wouldBlock(int error) {
  return error == EAGAIN || error == EWOULDBLOCK;
}

}  // namespace

ControlServer::ControlServer(std::uint16_t port, CommandFn onCommand)
    : onCommand_(std::move(onCommand)) {
  listenFd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listenFd_ < 0) throw std::runtime_error("socket(control) failed");
  const int one = 1;
  ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(listenFd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listenFd_, 16) != 0) {
    ::close(listenFd_);
    listenFd_ = -1;
    throw std::runtime_error("bind(control) failed: " +
                             std::string(std::strerror(errno)));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listenFd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(listenFd_);
    listenFd_ = -1;
    throw std::runtime_error("getsockname(control) failed");
  }
  port_ = ntohs(addr.sin_port);
}

ControlServer::~ControlServer() {
  for (auto& conn : conns_)
    if (conn.fd >= 0) ::close(conn.fd);
  if (listenFd_ >= 0) ::close(listenFd_);
}

void ControlServer::addPollFds(std::vector<::pollfd>& fds) const {
  fds.push_back({listenFd_, POLLIN, 0});
  for (const auto& conn : conns_)
    fds.push_back(
        {conn.fd,
         static_cast<short>(POLLIN | (conn.out.empty() ? 0 : POLLOUT)), 0});
}

std::uint32_t ControlServer::service() {
  std::uint32_t dispatched = 0;
  // Accept everything pending.
  for (;;) {
    const int fd =
        ::accept4(listenFd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) break;
    if (conns_.size() >= kMaxConns) {
      ::close(fd);
      continue;
    }
    Conn conn;
    conn.fd = fd;
    conns_.push_back(std::move(conn));
  }

  char chunk[4096];
  for (std::size_t i = 0; i < conns_.size();) {
    Conn& conn = conns_[i];
    bool dead = false;
    bool eof = false;  // read side closed; replies may still be owed
    for (;;) {
      const auto n = ::recv(conn.fd, chunk, sizeof(chunk), 0);
      if (n > 0) {
        conn.in.append(chunk, static_cast<std::size_t>(n));
        if (conn.in.size() > kMaxLineBytes) dead = true;
        continue;
      }
      if (n < 0 && wouldBlock(errno)) break;
      if (n == 0)
        eof = true;  // one-shot clients shutdown(WR) after the command
      else
        dead = true;
      break;
    }
    std::size_t eol;
    while (!dead && (eol = conn.in.find('\n')) != std::string::npos) {
      std::string line = conn.in.substr(0, eol);
      conn.in.erase(0, eol + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      conn.out += onCommand_(line);
      conn.out += '\n';
      ++dispatched;
    }
    // Flush replies.
    while (!dead && !conn.out.empty()) {
      const auto n =
          ::send(conn.fd, conn.out.data(), conn.out.size(), MSG_NOSIGNAL);
      if (n > 0) {
        conn.out.erase(0, static_cast<std::size_t>(n));
        continue;
      }
      if (n < 0 && wouldBlock(errno)) break;
      dead = true;
      break;
    }
    if (dead || (eof && conn.out.empty())) {
      ::close(conn.fd);
      conn = std::move(conns_.back());
      conns_.pop_back();
    } else {
      ++i;
    }
  }
  return dispatched;
}

}  // namespace vs07::runtime
