#include "runtime/bootstrap.hpp"

#include <algorithm>

#include "common/expect.hpp"

namespace vs07::runtime {

Bootstrap::Bootstrap(const Config& config, UdpTransport& transport,
                     PeerTable& peers, gossip::Cyclon& cyclon)
    : config_(config),
      transport_(transport),
      peers_(peers),
      cyclon_(cyclon),
      state_(config.isSeed ? State::kJoined : State::kAnnouncing) {
  VS07_EXPECT(config_.isSeed || config_.seedAddr.valid());
  VS07_EXPECT(config_.annexLimit <= kMaxAnnexEntries);
  transport_.setFrameHandler(this);
}

void Bootstrap::tick(std::uint64_t nowMs) {
  if (state_ != State::kAnnouncing || nowMs < nextAttemptMs_) return;
  if (attempts_ >= config_.maxAttempts) {
    state_ = State::kFailed;
    return;
  }
  sendHello(nowMs);
}

std::uint64_t Bootstrap::nextDeadlineMs() const noexcept {
  return state_ == State::kAnnouncing ? nextAttemptMs_ : UINT64_MAX;
}

void Bootstrap::sendHello(std::uint64_t nowMs) {
  transport_.sendControlFrame(FrameKind::kHello, config_.seedAddr, {});
  ++attempts_;
  const std::uint64_t backoff =
      std::min<std::uint64_t>(config_.retryCapMs,
                              static_cast<std::uint64_t>(config_.retryBaseMs)
                                  << std::min<std::uint32_t>(attempts_, 16));
  nextAttemptMs_ = nowMs + backoff;
}

void Bootstrap::onFrame(const FrameHeader& header, const PeerAddress& from,
                        std::span<const AddressEntry> annex) {
  switch (header.kind) {
    case FrameKind::kHello: {
      // Answer only once settled in: an announcing node has no view worth
      // sharing, and two lost processes would WELCOME each other into
      // empty overlays.
      if (state_ != State::kJoined) return;
      if (header.sender >= peers_.nodeCount() || header.sender == config_.selfId)
        return;
      cyclon_.admit(config_.selfId, header.sender);
      annexScratch_.clear();
      peers_.fillKnown(config_.annexLimit, header.sender, annexScratch_);
      transport_.sendControlFrame(FrameKind::kWelcome, from, annexScratch_);
      ++welcomed_;
      return;
    }
    case FrameKind::kWelcome: {
      if (state_ != State::kAnnouncing) return;  // duplicate from a retry
      if (header.sender >= peers_.nodeCount()) return;
      // The transport already learned every annex address; here the annex
      // (plus the welcoming node itself) becomes the initial view.
      viewScratch_.clear();
      viewScratch_.push_back(header.sender);
      for (const auto& entry : annex)
        if (entry.node < peers_.nodeCount()) viewScratch_.push_back(entry.node);
      cyclon_.seedView(config_.selfId, viewScratch_);
      state_ = State::kJoined;
      return;
    }
    case FrameKind::kGossip:
      return;  // routed to the sink by the transport, never here
  }
}

}  // namespace vs07::runtime
