// Datagram envelope around net::codec messages for the real-socket
// runtime. Layout (little-endian, all fields fixed-width):
//
//   offset  field        notes
//   0       u16 magic    0x5637 ("V7") — rejects stray datagrams early
//   2       u8  version  kFrameVersion; anything else is kBadVersion
//   3       u8  kind     FrameKind (1 GOSSIP / 2 HELLO / 3 WELCOME)
//   4       u32 sender   NodeId of the sending process
//   8       u16 port     sender's UDP listen port (its IP comes from
//                        recvfrom, so every frame teaches the receiver
//                        the sender's full address)
//   10      u32 len      payload byte count (0 = no payload)
//   14      len bytes    net::codec-encoded Message (GOSSIP frames)
//   ..      u16 count    address annex entries
//   ..      count x {u32 node, u32 ipv4, u16 port}
//
// The annex is how third-party addresses propagate: a gossip frame
// carries the addresses of the peers named in its view entries, so a
// node that learns of a peer through CYCLON can also reach it. HELLO
// and WELCOME are payload-free bootstrap frames whose annex carries the
// joiner's (HELLO) and the seed's known peers' (WELCOME) addresses.
//
// Decoding reuses net::codec's ByteReader and CodecError (typed kinds),
// so one hardened error surface covers both layers; malformed frames of
// either layer are counted and dropped by the transport, never fatal.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/codec.hpp"
#include "net/message.hpp"
#include "runtime/peer_table.hpp"

namespace vs07::runtime {

inline constexpr std::uint16_t kFrameMagic = 0x5637;  // "V7"
inline constexpr std::uint8_t kFrameVersion = 1;

/// Fixed bytes before the payload (through the len field).
inline constexpr std::size_t kFrameHeaderBytes = 14;

/// Caps mirroring net::codec's hostile-input stance: one frame can make
/// the decoder hold at most ~1 MiB of payload and a bounded annex.
inline constexpr std::uint32_t kMaxFramePayload = 1u << 20;
inline constexpr std::uint32_t kMaxAnnexEntries = 1024;

enum class FrameKind : std::uint8_t {
  kGossip = 1,   ///< carries one net::codec Message payload
  kHello = 2,    ///< joiner -> seed announce (no payload)
  kWelcome = 3,  ///< seed -> joiner admission + peer addresses
};
inline constexpr std::uint8_t kFrameKinds = 3;

/// One annex entry: a peer and where to reach it.
struct AddressEntry {
  NodeId node = kNoNode;
  PeerAddress addr{};

  friend bool operator==(const AddressEntry&, const AddressEntry&) = default;
};

/// The fixed header of every frame.
struct FrameHeader {
  FrameKind kind = FrameKind::kGossip;
  NodeId sender = kNoNode;
  std::uint16_t senderPort = 0;
};

/// Encodes header + optional payload + annex into `out` (cleared first;
/// capacity reused, so steady-state sends are allocation-free).
void encodeFrame(const FrameHeader& header, const net::Message* payload,
                 std::span<const AddressEntry> annex,
                 std::vector<std::uint8_t>& out);

/// Decodes one frame. The payload (if any) lands in `payloadScratch`
/// (reset + refilled, capacity reused) and the annex in `annex` (cleared
/// + refilled). Returns the header and whether a payload was present.
/// Throws net::CodecError (typed kind) on malformed input of either
/// layer; scratch buffers are then in an unspecified but valid state.
struct DecodedFrame {
  FrameHeader header;
  bool hasPayload = false;
};
DecodedFrame decodeFrame(std::span<const std::uint8_t> bytes,
                         net::Message& payloadScratch,
                         std::vector<AddressEntry>& annex);

}  // namespace vs07::runtime
