// Control socket — how the cluster harness talks to a running node.
//
// A tiny line protocol over TCP on a separate port: the harness sends
// one command per line ("status", "publish", "report <dataId>", "quit")
// and the node answers with exactly one line of JSON. The server is
// policy-free: it owns sockets and line framing and hands every decoded
// command to a callback that returns the reply — vs07_node supplies the
// actual command table. Connections are persistent (one per harness,
// many commands) but per-command connections work too; everything is
// nonblocking and serviced from the same poll loop as the transport.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

struct pollfd;  // <poll.h>

namespace vs07::runtime {

class ControlServer {
 public:
  /// Called once per received command line (stripped of the newline);
  /// returns the reply, sent back as one line.
  using CommandFn = std::function<std::string(const std::string& line)>;

  /// Binds a TCP listener on `port` (0 = ephemeral; see listenPort).
  /// Throws std::runtime_error when sockets are unavailable.
  ControlServer(std::uint16_t port, CommandFn onCommand);
  ~ControlServer();

  ControlServer(const ControlServer&) = delete;
  ControlServer& operator=(const ControlServer&) = delete;

  std::uint16_t listenPort() const noexcept { return port_; }

  void addPollFds(std::vector<::pollfd>& fds) const;

  /// Accepts, reads, dispatches complete lines, flushes replies. Never
  /// blocks. Returns the number of commands dispatched.
  std::uint32_t service();

 private:
  struct Conn {
    int fd = -1;
    std::string in;   // partial command line
    std::string out;  // unflushed replies
  };

  CommandFn onCommand_;
  std::uint16_t port_ = 0;
  int listenFd_ = -1;
  std::vector<Conn> conns_;
};

}  // namespace vs07::runtime
