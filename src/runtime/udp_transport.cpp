#include "runtime/udp_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>

#include "common/expect.hpp"

namespace vs07::runtime {

namespace {

/// Fallback streams above this are corrupt input, not big frames: the
/// largest legitimate frame is payload cap + header + full annex.
constexpr std::uint32_t kMaxTcpFrame =
    kMaxFramePayload + static_cast<std::uint32_t>(kFrameHeaderBytes) + 2 +
    10 * kMaxAnnexEntries;

/// Simultaneously open fallback connections per direction; beyond this,
/// new ones are refused (the sender retries nothing — large frames are
/// as droppable as datagrams).
constexpr std::size_t kMaxTcpConns = 128;

sockaddr_in toSockaddr(const PeerAddress& addr) {
  sockaddr_in out{};
  out.sin_family = AF_INET;
  out.sin_addr.s_addr = htonl(addr.ipv4);
  out.sin_port = htons(addr.port);
  return out;
}

bool wouldBlock(int error) {
  return error == EAGAIN || error == EWOULDBLOCK || error == ENOBUFS;
}

void closeIfOpen(int& fd) {
  if (fd >= 0) ::close(fd);
  fd = -1;
}

int openNonblockSocket(int type) {
  return ::socket(AF_INET, type | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
}

/// Binds a UDP socket and a TCP listener to one shared port number.
/// With port 0, retries fresh ephemeral UDP ports until the TCP side of
/// the same number is free too (collisions are rare but real).
void bindPair(std::uint16_t requestedPort, int& udpFd, int& tcpFd,
              std::uint16_t& boundPort) {
  for (int attempt = 0; attempt < 16; ++attempt) {
    udpFd = openNonblockSocket(SOCK_DGRAM);
    if (udpFd < 0) throw std::runtime_error("socket(udp) failed");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
    addr.sin_port = htons(requestedPort);
    if (::bind(udpFd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      closeIfOpen(udpFd);
      throw std::runtime_error("bind(udp) failed: " +
                               std::string(std::strerror(errno)));
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(udpFd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
      closeIfOpen(udpFd);
      throw std::runtime_error("getsockname failed");
    }
    boundPort = ntohs(addr.sin_port);

    tcpFd = openNonblockSocket(SOCK_STREAM);
    if (tcpFd < 0) {
      closeIfOpen(udpFd);
      throw std::runtime_error("socket(tcp) failed");
    }
    const int one = 1;
    ::setsockopt(tcpFd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in tcpAddr{};
    tcpAddr.sin_family = AF_INET;
    tcpAddr.sin_addr.s_addr = htonl(INADDR_ANY);
    tcpAddr.sin_port = htons(boundPort);
    if (::bind(tcpFd, reinterpret_cast<sockaddr*>(&tcpAddr),
               sizeof(tcpAddr)) == 0 &&
        ::listen(tcpFd, 16) == 0)
      return;
    // TCP side of this number is taken: only worth retrying when we get
    // to pick a fresh number.
    closeIfOpen(udpFd);
    closeIfOpen(tcpFd);
    if (requestedPort != 0)
      throw std::runtime_error("bind(tcp) failed on port " +
                               std::to_string(boundPort));
  }
  throw std::runtime_error("no shared udp+tcp port found");
}

}  // namespace

UdpTransport::UdpTransport(const Config& config, PeerTable& peers,
                           net::DeliverySink& sink)
    : selfId_(config.selfId),
      mtu_(config.mtuBytes),
      maxQueuedSends_(config.maxQueuedSends),
      peers_(peers),
      sink_(sink) {
  VS07_EXPECT(mtu_ >= 128);
  bindPair(config.port, udpFd_, tcpFd_, port_);
  recvBuf_.resize(64 * 1024);
}

UdpTransport::~UdpTransport() {
  for (auto& conn : tcpOut_) closeIfOpen(conn.fd);
  for (auto& conn : tcpIn_) closeIfOpen(conn.fd);
  closeIfOpen(udpFd_);
  closeIfOpen(tcpFd_);
}

void UdpTransport::buildAnnex(const net::Message& msg) {
  annexScratch_.clear();
  for (const auto& entry : msg.entries) {
    if (annexScratch_.size() >= kMaxAnnexEntries) break;
    if (entry.node >= peers_.nodeCount()) continue;
    const PeerAddress& addr = peers_.lookup(entry.node);
    if (addr.valid()) annexScratch_.push_back({entry.node, addr});
  }
}

void UdpTransport::send(NodeId to, net::Message&& msg) {
  countSend();
  if (to >= peers_.nodeCount() || !peers_.knows(to)) {
    ++droppedNoAddress_;
    return;
  }
  transmit(to, peers_.lookup(to), msg);
}

void UdpTransport::transmit(NodeId to, const PeerAddress& addr,
                            net::Message& msg) {
  buildAnnex(msg);
  encodeFrame({FrameKind::kGossip, selfId_, port_}, &msg, annexScratch_,
              sendBuf_);
  if (sendBuf_.size() > mtu_) {
    startFallback(addr);
    return;
  }
  switch (sendDatagram(addr)) {
    case SendOutcome::kSent:
      ++datagramsSent_;
      return;
    case SendOutcome::kFailed:
      ++droppedSendError_;
      return;
    case SendOutcome::kBlocked:
      break;
  }
  // Kernel send buffer full: park the payload in the pool and re-encode
  // once the socket drains. Beyond the cap the frame is dropped like any
  // lost datagram.
  if (retryQueue_.size() >= maxQueuedSends_) {
    ++droppedBacklog_;
    return;
  }
  retryQueue_.push_back(retryPool_.checkIn(to, msg));
}

UdpTransport::SendOutcome UdpTransport::sendDatagram(const PeerAddress& addr) {
  const sockaddr_in dest = toSockaddr(addr);
  const auto sent =
      ::sendto(udpFd_, sendBuf_.data(), sendBuf_.size(), 0,
               reinterpret_cast<const sockaddr*>(&dest), sizeof(dest));
  if (sent >= 0) return SendOutcome::kSent;
  if (wouldBlock(errno)) return SendOutcome::kBlocked;
  // Any other error (unreachable, refused) is a lost datagram: the
  // protocols treat silence as failure, but callers must not count the
  // frame as sent — it never left this host.
  return SendOutcome::kFailed;
}

void UdpTransport::sendControlFrame(FrameKind kind, const PeerAddress& to,
                                    std::span<const AddressEntry> annex) {
  VS07_EXPECT(kind != FrameKind::kGossip);
  if (!to.valid()) {
    ++droppedNoAddress_;
    return;
  }
  encodeFrame({kind, selfId_, port_}, nullptr, annex, sendBuf_);
  switch (sendDatagram(to)) {
    case SendOutcome::kSent:
      ++datagramsSent_;
      break;
    case SendOutcome::kFailed:
      ++droppedSendError_;
      break;
    case SendOutcome::kBlocked:
      // Bootstrap frames are never parked: the ladder retries them.
      break;
  }
}

void UdpTransport::startFallback(const PeerAddress& addr) {
  if (tcpOut_.size() >= kMaxTcpConns) {
    ++droppedBacklog_;
    return;
  }
  const int fd = openNonblockSocket(SOCK_STREAM);
  if (fd < 0) {
    ++droppedSendError_;  // no socket, no frame: count the loss
    return;
  }
  const sockaddr_in dest = toSockaddr(addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&dest), sizeof(dest)) !=
          0 &&
      errno != EINPROGRESS) {
    ++droppedSendError_;
    ::close(fd);
    return;
  }
  TcpOut conn;
  conn.fd = fd;
  const auto frameLen = static_cast<std::uint32_t>(sendBuf_.size());
  conn.bytes.reserve(4 + sendBuf_.size());
  for (int i = 0; i < 4; ++i)
    conn.bytes.push_back(static_cast<std::uint8_t>(frameLen >> (8 * i)));
  conn.bytes.insert(conn.bytes.end(), sendBuf_.begin(), sendBuf_.end());
  tcpOut_.push_back(std::move(conn));
}

void UdpTransport::flushRetryQueue() {
  std::size_t flushed = 0;
  for (; flushed < retryQueue_.size(); ++flushed) {
    const auto slot = retryQueue_[flushed];
    const NodeId to = retryPool_.destination(slot);
    const PeerAddress& addr = peers_.lookup(to);
    if (addr.valid()) {
      net::Message& msg = retryPool_.at(slot);
      buildAnnex(msg);
      encodeFrame({FrameKind::kGossip, selfId_, port_}, &msg, annexScratch_,
                  sendBuf_);
      const SendOutcome outcome = sendDatagram(addr);
      if (outcome == SendOutcome::kBlocked) break;  // still: keep the tail
      if (outcome == SendOutcome::kFailed) {
        ++droppedSendError_;  // hard loss: release the slot and move on
      } else {
        ++datagramsSent_;
        ++retriedSends_;
      }
    }
    retryPool_.release(slot);
  }
  retryQueue_.erase(retryQueue_.begin(),
                    retryQueue_.begin() + static_cast<std::ptrdiff_t>(flushed));
}

void UdpTransport::flushFallbacks() {
  for (std::size_t i = 0; i < tcpOut_.size();) {
    TcpOut& conn = tcpOut_[i];
    bool done = false;
    bool dead = false;
    while (conn.written < conn.bytes.size()) {
      const auto n = ::send(conn.fd, conn.bytes.data() + conn.written,
                            conn.bytes.size() - conn.written, MSG_NOSIGNAL);
      if (n > 0) {
        conn.written += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && wouldBlock(errno)) break;
      dead = true;  // refused/reset: the frame is lost, like a datagram
      break;
    }
    if (conn.written >= conn.bytes.size()) {
      done = true;
      ++fallbackSent_;
    }
    if (done || dead) {
      closeIfOpen(conn.fd);
      conn = std::move(tcpOut_.back());
      tcpOut_.pop_back();
    } else {
      ++i;
    }
  }
}

void UdpTransport::receiveDatagrams() {
  for (;;) {
    sockaddr_in from{};
    socklen_t fromLen = sizeof(from);
    const auto n =
        ::recvfrom(udpFd_, recvBuf_.data(), recvBuf_.size(), 0,
                   reinterpret_cast<sockaddr*>(&from), &fromLen);
    if (n < 0) return;  // EAGAIN or a transient error: nothing more now
    ++datagramsReceived_;
    handleFrame({recvBuf_.data(), static_cast<std::size_t>(n)},
                ntohl(from.sin_addr.s_addr));
  }
}

void UdpTransport::acceptFallbacks() {
  for (;;) {
    sockaddr_in from{};
    socklen_t fromLen = sizeof(from);
    const int fd = ::accept4(tcpFd_, reinterpret_cast<sockaddr*>(&from),
                             &fromLen, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;
    if (tcpIn_.size() >= kMaxTcpConns) {
      ::close(fd);
      continue;
    }
    TcpIn conn;
    conn.fd = fd;
    conn.bytes.reserve(4096);
    tcpIn_.push_back(std::move(conn));
  }
}

void UdpTransport::readFallbacks() {
  std::uint8_t chunk[16 * 1024];
  for (std::size_t i = 0; i < tcpIn_.size();) {
    TcpIn& conn = tcpIn_[i];
    bool closeConn = false;
    for (;;) {
      const auto n = ::recv(conn.fd, chunk, sizeof(chunk), 0);
      if (n > 0) {
        conn.bytes.insert(conn.bytes.end(), chunk, chunk + n);
        if (conn.bytes.size() > 4u + kMaxTcpFrame) {
          ++droppedMalformed_;
          closeConn = true;
        }
        continue;
      }
      if (n < 0 && wouldBlock(errno)) break;
      // EOF or error: the stream is complete (or dead) — decode if whole.
      closeConn = true;
      break;
    }
    if (!closeConn && conn.bytes.size() >= 4) {
      // Early completion check so a finished frame does not wait for EOF.
      std::uint32_t frameLen = 0;
      for (int b = 0; b < 4; ++b)
        frameLen |= static_cast<std::uint32_t>(conn.bytes[b]) << (8 * b);
      if (frameLen <= kMaxTcpFrame && conn.bytes.size() >= 4u + frameLen)
        closeConn = true;
    }
    if (closeConn) {
      if (conn.bytes.size() >= 4) {
        std::uint32_t frameLen = 0;
        for (int b = 0; b < 4; ++b)
          frameLen |= static_cast<std::uint32_t>(conn.bytes[b]) << (8 * b);
        sockaddr_in peer{};
        socklen_t peerLen = sizeof(peer);
        std::uint32_t fromIp = 0;
        if (::getpeername(conn.fd, reinterpret_cast<sockaddr*>(&peer),
                          &peerLen) == 0)
          fromIp = ntohl(peer.sin_addr.s_addr);
        if (frameLen <= kMaxTcpFrame && conn.bytes.size() == 4u + frameLen) {
          ++fallbackReceived_;
          handleFrame({conn.bytes.data() + 4, frameLen}, fromIp);
        } else {
          ++droppedMalformed_;
        }
      } else if (!conn.bytes.empty()) {
        ++droppedMalformed_;
      }
      closeIfOpen(conn.fd);
      conn = std::move(tcpIn_.back());
      tcpIn_.pop_back();
    } else {
      ++i;
    }
  }
}

void UdpTransport::handleFrame(std::span<const std::uint8_t> bytes,
                               std::uint32_t fromIp) {
  DecodedFrame frame;
  try {
    frame = decodeFrame(bytes, recvMsg_, recvAnnex_);
  } catch (const net::CodecError&) {
    ++droppedMalformed_;
    return;
  }
  const FrameHeader& header = frame.header;
  // Every frame teaches the sender's address; the annex teaches third
  // parties. Entries naming unknown-population ids are hostile or stale
  // input and ignored.
  if (header.sender < peers_.nodeCount() && header.senderPort != 0)
    peers_.learn(header.sender, {fromIp, header.senderPort});
  for (const auto& entry : recvAnnex_)
    if (entry.node < peers_.nodeCount()) peers_.learn(entry.node, entry.addr);

  if (header.kind == FrameKind::kGossip) {
    if (!frame.hasPayload) {
      ++droppedMalformed_;
      return;
    }
    ++dispatched_;
    // The router reads by const reference, so the scratch keeps its
    // buffers; decodeFrame resets it on the next frame.
    sink_.deliver(selfId_, std::move(recvMsg_));
    return;
  }
  if (frameHandler_ != nullptr) {
    ++dispatched_;
    frameHandler_->onFrame(header, {fromIp, header.senderPort}, recvAnnex_);
  }
}

void UdpTransport::addPollFds(std::vector<::pollfd>& fds) const {
  fds.push_back({udpFd_,
                 static_cast<short>(POLLIN |
                                    (retryQueue_.empty() ? 0 : POLLOUT)),
                 0});
  fds.push_back({tcpFd_, POLLIN, 0});
  for (const auto& conn : tcpOut_) fds.push_back({conn.fd, POLLOUT, 0});
  for (const auto& conn : tcpIn_) fds.push_back({conn.fd, POLLIN, 0});
}

std::uint32_t UdpTransport::service() {
  dispatched_ = 0;
  receiveDatagrams();
  acceptFallbacks();
  readFallbacks();
  flushRetryQueue();
  flushFallbacks();
  return dispatched_;
}

std::uint32_t UdpTransport::pump(int timeoutMs) {
  std::vector<::pollfd> fds;
  addPollFds(fds);
  ::poll(fds.data(), static_cast<nfds_t>(fds.size()), timeoutMs);
  return service();
}

}  // namespace vs07::runtime
