// net::Transport over real nonblocking sockets — the bridge that runs the
// unmodified gossip/cast protocol stack between actual processes.
//
// One UdpTransport owns two listening sockets bound to the same port
// number: a UDP socket carrying every frame that fits in a conservative
// datagram MTU, and a TCP listener for the fallback path (frames above
// the MTU — large pull answers, fat digests — are streamed over a
// short-lived TCP connection with a length prefix instead of relying on
// IP fragmentation). All sockets are nonblocking and serviced from a
// poll(2) loop the caller drives; the transport never blocks.
//
// Zero-alloc discipline across the syscall boundary:
//   * sends encode into one reused buffer (encodeFrame clears, capacity
//     sticks);
//   * receives decode into one scratch Message via net::decodeInto and
//     hand it to the DeliverySink by rvalue — the router reads it by
//     const reference, so the scratch keeps its buffers;
//   * datagrams refused by the kernel (EWOULDBLOCK) park their payload
//     in a net::MessagePool retry queue and are re-encoded when the
//     socket turns writable, so a send burst degrades to pooled
//     buffering, not allocation or loss.
//
// Addressing: outbound frames resolve NodeId -> address through the
// PeerTable; inbound frames teach it (sender address from recvfrom +
// the header's listen port, third parties from the address annex).
// Unresolvable destinations are counted and dropped — to the protocol
// stack that is a lost datagram, which gossip tolerates by design.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/delivery_sink.hpp"
#include "net/message.hpp"
#include "net/message_pool.hpp"
#include "net/transport.hpp"
#include "runtime/peer_table.hpp"
#include "runtime/wire.hpp"

struct pollfd;  // <poll.h>; declared here so the header stays syscall-free

namespace vs07::runtime {

/// Receives bootstrap (non-GOSSIP) frames; implemented by Bootstrap.
class FrameHandler {
 public:
  virtual ~FrameHandler() = default;
  virtual void onFrame(const FrameHeader& header, const PeerAddress& from,
                       std::span<const AddressEntry> annex) = 0;
};

class UdpTransport final : public net::Transport {
 public:
  struct Config {
    NodeId selfId = 0;
    /// UDP + TCP listen port; 0 binds an ephemeral port (see listenPort).
    std::uint16_t port = 0;
    /// Frames up to this many bytes go as one datagram; larger ones take
    /// the TCP fallback. Conservative default below typical path MTUs.
    std::uint32_t mtuBytes = 1400;
    /// Cap on datagrams parked in the EWOULDBLOCK retry queue.
    std::uint32_t maxQueuedSends = 1024;
  };

  /// Binds both sockets. Throws std::runtime_error when sockets are
  /// unavailable (sandboxes without network) — callers treat that as
  /// "runtime not supported here" (tests skip).
  UdpTransport(const Config& config, PeerTable& peers,
               net::DeliverySink& sink);
  ~UdpTransport() override;

  UdpTransport(const UdpTransport&) = delete;
  UdpTransport& operator=(const UdpTransport&) = delete;

  // net::Transport — encode and transmit one gossip frame.
  void send(NodeId to, net::Message&& msg) override;

  /// Sends a payload-free bootstrap frame (HELLO/WELCOME) to an explicit
  /// address (the joiner knows the seed only by address at first).
  void sendControlFrame(FrameKind kind, const PeerAddress& to,
                        std::span<const AddressEntry> annex);

  /// Receiver of HELLO/WELCOME frames (GOSSIP goes to the sink). May be
  /// null: such frames are then dropped.
  void setFrameHandler(FrameHandler* handler) { frameHandler_ = handler; }

  /// The resolved listen port (differs from Config::port when that was 0).
  std::uint16_t listenPort() const noexcept { return port_; }

  /// Appends this transport's pollable fds to `fds` (POLLIN always;
  /// POLLOUT where a write is parked). The caller polls, then calls
  /// service() — the transport re-checks readiness itself, so the caller
  /// never has to map entries back.
  void addPollFds(std::vector<::pollfd>& fds) const;

  /// Drains everything currently ready: receives and dispatches frames,
  /// accepts and reads fallback connections, flushes parked writes.
  /// Never blocks. Returns the number of frames dispatched.
  std::uint32_t service();

  /// poll(timeoutMs) on this transport's fds alone, then service().
  /// Convenience for tests and single-transport loops.
  std::uint32_t pump(int timeoutMs);

  // -- counters (control-socket stats surface) --------------------------
  std::uint64_t datagramsSent() const noexcept { return datagramsSent_; }
  std::uint64_t datagramsReceived() const noexcept {
    return datagramsReceived_;
  }
  std::uint64_t fallbackSent() const noexcept { return fallbackSent_; }
  std::uint64_t fallbackReceived() const noexcept { return fallbackReceived_; }
  std::uint64_t droppedNoAddress() const noexcept { return droppedNoAddress_; }
  std::uint64_t droppedMalformed() const noexcept { return droppedMalformed_; }
  std::uint64_t droppedBacklog() const noexcept { return droppedBacklog_; }
  /// Frames lost to a hard socket error (sendto unreachable/refused, or
  /// a fallback socket/connect that failed outright). These were never
  /// on the wire, so they are *not* part of datagramsSent().
  std::uint64_t droppedSendError() const noexcept { return droppedSendError_; }
  std::uint64_t retriedSends() const noexcept { return retriedSends_; }
  /// The EWOULDBLOCK retry pool (diagnostics, like the engine's).
  const net::MessagePool& retryPool() const noexcept { return retryPool_; }

 private:
  struct TcpOut {
    int fd = -1;
    std::vector<std::uint8_t> bytes;  // u32 length prefix + frame
    std::size_t written = 0;
  };
  struct TcpIn {
    int fd = -1;
    std::vector<std::uint8_t> bytes;
  };

  /// What became of one sendto() attempt of sendBuf_.
  enum class SendOutcome : std::uint8_t {
    kSent,     ///< handed to the kernel
    kBlocked,  ///< send buffer full (EWOULDBLOCK family): park and retry
    kFailed,   ///< hard error (unreachable, refused, ...): frame is lost
  };

  void buildAnnex(const net::Message& msg);
  void transmit(NodeId to, const PeerAddress& addr, net::Message& msg);
  SendOutcome sendDatagram(const PeerAddress& addr);
  void startFallback(const PeerAddress& addr);
  void flushRetryQueue();
  void flushFallbacks();
  void receiveDatagrams();
  void acceptFallbacks();
  void readFallbacks();
  /// Decodes and dispatches one frame arriving from `fromIp`.
  void handleFrame(std::span<const std::uint8_t> bytes, std::uint32_t fromIp);

  NodeId selfId_;
  std::uint16_t port_ = 0;
  std::uint32_t mtu_;
  std::uint32_t maxQueuedSends_;
  PeerTable& peers_;
  net::DeliverySink& sink_;
  FrameHandler* frameHandler_ = nullptr;

  int udpFd_ = -1;
  int tcpFd_ = -1;

  // send path scratch
  std::vector<std::uint8_t> sendBuf_;
  std::vector<AddressEntry> annexScratch_;
  net::MessagePool retryPool_;
  std::vector<net::MessagePool::Slot> retryQueue_;

  // receive path scratch
  std::vector<std::uint8_t> recvBuf_;
  net::Message recvMsg_;
  std::vector<AddressEntry> recvAnnex_;

  std::vector<TcpOut> tcpOut_;
  std::vector<TcpIn> tcpIn_;
  std::uint32_t dispatched_ = 0;  // frames dispatched by current service()

  std::uint64_t datagramsSent_ = 0;
  std::uint64_t datagramsReceived_ = 0;
  std::uint64_t fallbackSent_ = 0;
  std::uint64_t fallbackReceived_ = 0;
  std::uint64_t droppedNoAddress_ = 0;
  std::uint64_t droppedMalformed_ = 0;
  std::uint64_t droppedBacklog_ = 0;
  std::uint64_t droppedSendError_ = 0;
  std::uint64_t retriedSends_ = 0;
};

}  // namespace vs07::runtime
