#include "runtime/node_process.hpp"

#include <poll.h>

#include <algorithm>

#include "common/expect.hpp"
#include "common/rng.hpp"

namespace vs07::runtime {

namespace {

// Per-process protocol rng lanes. Unlike the sim these need not match
// any other process — real message arrival order is non-deterministic
// anyway — but deriving per (seed, selfId, lane) keeps a single node's
// choices reproducible under identical traffic.
constexpr std::uint64_t kLaneCyclon = 1;
constexpr std::uint64_t kLaneVicinity = 2;
constexpr std::uint64_t kLaneLive = 3;

cast::LiveCast::Params liveParams(const NodeProcess::Config& config) {
  cast::LiveCast::Params params;
  params.fanout = config.fanout;
  params.flood = config.strategy == cast::Strategy::kFlood;
  params.pullInterval = config.strategy == cast::Strategy::kPushPull
                            ? std::max<std::uint32_t>(1, config.pullInterval)
                            : 0;
  return params;
}

}  // namespace

NodeProcess::NodeProcess(const Config& config)
    : config_(config),
      epoch_(std::chrono::steady_clock::now()),
      network_(config.nodes, sim::populationSeed(config.seed)),
      router_(network_),
      peers_(config.nodes),
      transport_({.selfId = config.selfId, .port = config.port}, peers_,
                 router_),
      cyclon_(network_, transport_, router_,
              {.viewLength = config.viewLength,
               .shuffleLength = config.shuffleLength},
              deriveStreamSeed(config.seed, kLaneCyclon, config.selfId)),
      vicinity_(network_, transport_, router_, cyclon_,
                {.viewLength = config.viewLength},
                deriveStreamSeed(config.seed, kLaneVicinity, config.selfId)),
      live_(network_, transport_, router_, cyclon_,
            config.strategy == cast::Strategy::kRandCast ? nullptr
                                                         : &vicinity_,
            liveParams(config),
            deriveStreamSeed(config.seed, kLaneLive, config.selfId)),
      bootstrap_({.selfId = config.selfId,
                  .isSeed = config.isSeed,
                  .seedAddr = config.seedAddr},
                 transport_, peers_, cyclon_) {
  VS07_EXPECT(config_.selfId < config_.nodes);
  VS07_EXPECT(config_.cycleMs >= 1);
  live_.attachClock(*this);
  // Disjoint id spaces: concurrent publishes from different processes
  // can never collide.
  live_.setNextDataId((static_cast<std::uint64_t>(config_.selfId) + 1) << 32);
  live_.setDeliveryHook([this](NodeId node, std::uint64_t dataId,
                               std::uint32_t hop, bool viaPull) {
    if (node != config_.selfId) return;
    if (!deliveredIds_.insert(dataId).second) return;  // post-eviction re-rx
    deliveries_.push_back({dataId, hop, viaPull, nowTick()});
  });
  phaseMs_ = mix64(sim::populationSeed(config_.seed) ^ config_.selfId) %
             config_.cycleMs;
}

std::uint64_t NodeProcess::nowTick() const noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

const NodeProcess::Delivery* NodeProcess::delivery(
    std::uint64_t dataId) const {
  for (const auto& d : deliveries_)
    if (d.dataId == dataId) return &d;
  return nullptr;
}

void NodeProcess::stepCycle() {
  cyclon_.step(config_.selfId);
  vicinity_.step(config_.selfId);
  live_.step(config_.selfId);
  ++cyclesRun_;
}

void NodeProcess::service() {
  const std::uint64_t now = nowTick();
  bootstrap_.tick(now);
  if (bootstrap_.joined() && nextStepMs_ == UINT64_MAX) {
    // Ladder settled: arm the gossip timer with the node's phase offset
    // (JitteredPeriodic's wall-clock twin) after the warmup quiet time.
    nextStepMs_ = now + phaseMs_ +
                  static_cast<std::uint64_t>(config_.warmupCycles) *
                      config_.cycleMs;
  }
  if (now >= nextStepMs_) {
    stepCycle();
    nextStepMs_ += config_.cycleMs;
    // Missed cycles (a stalled process) are dropped, not burst-replayed.
    if (nextStepMs_ <= now) nextStepMs_ = now + config_.cycleMs;
  }
  transport_.service();
}

void NodeProcess::addPollFds(std::vector<::pollfd>& fds) const {
  transport_.addPollFds(fds);
}

std::uint64_t NodeProcess::nextEventMs() const {
  return std::min(bootstrap_.nextDeadlineMs(), nextStepMs_);
}

void NodeProcess::runUntil(std::uint64_t untilMs) {
  std::vector<::pollfd> fds;
  for (;;) {
    const std::uint64_t now = nowTick();
    if (now >= untilMs) return;
    const std::uint64_t deadline = std::min(untilMs, nextEventMs());
    const std::uint64_t waitMs =
        deadline <= now ? 0 : std::min<std::uint64_t>(deadline - now, 50);
    fds.clear();
    addPollFds(fds);
    ::poll(fds.data(), static_cast<nfds_t>(fds.size()), static_cast<int>(waitMs));
    service();
  }
}

}  // namespace vs07::runtime
