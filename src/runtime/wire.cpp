#include "runtime/wire.hpp"

namespace vs07::runtime {

using net::ByteReader;
using net::ByteWriter;
using net::CodecError;
using net::CodecErrorKind;

void encodeFrame(const FrameHeader& header, const net::Message* payload,
                 std::span<const AddressEntry> annex,
                 std::vector<std::uint8_t>& out) {
  VS07_EXPECT(annex.size() <= kMaxAnnexEntries);
  out.clear();
  ByteWriter w(out);
  w.u16(kFrameMagic);
  w.u8(kFrameVersion);
  w.u8(static_cast<std::uint8_t>(header.kind));
  w.u32(header.sender);
  w.u16(header.senderPort);
  const std::size_t lenAt = w.size();
  w.u32(0);  // payload length, patched below
  if (payload != nullptr) {
    net::encodeInto(*payload, out);
    w.patchU32(lenAt, static_cast<std::uint32_t>(out.size() -
                                                 kFrameHeaderBytes));
  }
  w.u16(static_cast<std::uint16_t>(annex.size()));
  for (const auto& entry : annex) {
    w.u32(entry.node);
    w.u32(entry.addr.ipv4);
    w.u16(entry.addr.port);
  }
}

DecodedFrame decodeFrame(std::span<const std::uint8_t> bytes,
                         net::Message& payloadScratch,
                         std::vector<AddressEntry>& annex) {
  annex.clear();
  ByteReader r(bytes);
  if (r.u16() != kFrameMagic)
    throw CodecError(CodecErrorKind::kBadMagic, "bad frame magic");
  if (r.u8() != kFrameVersion)
    throw CodecError(CodecErrorKind::kBadVersion, "unsupported frame version");
  DecodedFrame frame;
  const auto kind = r.u8();
  if (kind < 1 || kind > kFrameKinds)
    throw CodecError(CodecErrorKind::kBadKind, "unknown frame kind");
  frame.header.kind = static_cast<FrameKind>(kind);
  frame.header.sender = r.u32();
  frame.header.senderPort = r.u16();
  const std::uint32_t payloadLen = r.u32();
  if (payloadLen > kMaxFramePayload)
    throw CodecError(CodecErrorKind::kBadLength, "frame payload oversized");
  if (payloadLen > 0) {
    net::decodeInto(r.bytesSpan(payloadLen), payloadScratch);
    frame.hasPayload = true;
  }
  const std::uint16_t count = r.u16();
  if (count > kMaxAnnexEntries)
    throw CodecError(CodecErrorKind::kBadCount, "annex count out of range");
  annex.reserve(count);
  for (std::uint16_t i = 0; i < count; ++i) {
    AddressEntry entry;
    entry.node = r.u32();
    entry.addr.ipv4 = r.u32();
    entry.addr.port = r.u16();
    annex.push_back(entry);
  }
  if (!r.exhausted())
    throw CodecError(CodecErrorKind::kTrailing, "trailing bytes after frame");
  return frame;
}

}  // namespace vs07::runtime
