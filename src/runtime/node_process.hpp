// NodeProcess — one real node: the full sim protocol stack (CYCLON +
// VICINITY + LiveCast) driven by wall-clock timers over a UdpTransport
// instead of engine cycles over a simulated one.
//
// The cross-validation trick that makes this work: every process builds
// the *same* sim::Network population from the shared populationSeed, so
// NodeIds and ring positions (seqIds) agree across all processes and
// with the in-process simulator. Each process then drives only its own
// node's active behaviour — step(self) on its jittered wall-clock timer
// — while the rest of its protocol arrays merely receive (a shuffle
// request addressed to self mutates self's view only, exactly as in the
// sim, where the router also dispatches per destination).
//
// Timing mirrors sim/timing's JitteredPeriodic: each node gossips every
// cycleMs with a deterministic per-node phase offset inside the cycle,
// which is the paper's "independent, non-synchronized timers" (§7)
// running on actual clocks. Deliveries are stamped through the TickClock
// interface with wall milliseconds since process start.
#pragma once

#include <chrono>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "cast/live.hpp"
#include "cast/strategy.hpp"
#include "common/clock.hpp"
#include "gossip/cyclon.hpp"
#include "gossip/vicinity.hpp"
#include "runtime/bootstrap.hpp"
#include "runtime/peer_table.hpp"
#include "runtime/udp_transport.hpp"
#include "sim/network.hpp"
#include "sim/router.hpp"

namespace vs07::runtime {

class NodeProcess final : public TickClock {
 public:
  struct Config {
    NodeId selfId = 0;
    /// Population size; every process of one cluster must agree.
    std::uint32_t nodes = 16;
    /// Experiment root seed; populationSeed(seed) builds the shared
    /// population, per-node streams derive from it.
    std::uint64_t seed = 1;
    /// UDP/TCP listen port (0 = ephemeral).
    std::uint16_t port = 0;
    bool isSeed = false;
    PeerAddress seedAddr{};
    /// Wall-clock milliseconds per gossip cycle.
    std::uint32_t cycleMs = 100;
    /// Cycles to wait after joining before the first step (lets a burst
    /// of joiners finish their ladders before shuffles reference them).
    std::uint32_t warmupCycles = 0;
    cast::Strategy strategy = cast::Strategy::kRingCast;
    std::uint32_t fanout = 3;
    /// LiveCast pull heartbeat in own steps; 0 = pure push.
    std::uint32_t pullInterval = 0;
    std::uint32_t viewLength = 20;
    std::uint32_t shuffleLength = 8;
  };

  /// One delivered message as this node saw it first.
  struct Delivery {
    std::uint64_t dataId = 0;
    std::uint32_t hop = 0;
    bool viaPull = false;
    /// nowTick() at delivery (wall ms since process start).
    std::uint64_t atMs = 0;
  };

  /// Binds sockets and wires the stack; throws std::runtime_error when
  /// sockets are unavailable.
  explicit NodeProcess(const Config& config);

  // TickClock — wall milliseconds since construction.
  std::uint64_t nowTick() const noexcept override;

  /// Drives timers (bootstrap ladder, gossip cycle) and drains sockets.
  /// Call after poll(); never blocks.
  void service();

  /// Appends the transport's fds for the caller's poll loop.
  void addPollFds(std::vector<::pollfd>& fds) const;

  /// Wall ms of the next timer this process wants to fire (poll deadline;
  /// UINT64_MAX when idle).
  std::uint64_t nextEventMs() const;

  /// poll + service until `untilMs` (absolute, nowTick() scale) — the
  /// single-process loop used by tests and vs07_node between control
  /// commands.
  void runUntil(std::uint64_t untilMs);

  /// Publishes one message from this node. Ids are disjoint across
  /// processes: this process draws from (selfId+1) << 32.
  std::uint64_t publish() { return live_.publish(config_.selfId); }

  const Config& config() const noexcept { return config_; }
  NodeId selfId() const noexcept { return config_.selfId; }
  bool joined() const noexcept { return bootstrap_.joined(); }
  bool bootstrapFailed() const noexcept { return bootstrap_.failed(); }
  std::uint64_t cyclesRun() const noexcept { return cyclesRun_; }
  const std::vector<Delivery>& deliveries() const noexcept {
    return deliveries_;
  }
  /// First-sight record of `dataId`, or nullptr if not delivered here.
  const Delivery* delivery(std::uint64_t dataId) const;

  UdpTransport& transport() noexcept { return transport_; }
  const UdpTransport& transport() const noexcept { return transport_; }
  const PeerTable& peers() const noexcept { return peers_; }
  const Bootstrap& bootstrap() const noexcept { return bootstrap_; }
  cast::LiveCast& live() noexcept { return live_; }
  const gossip::Cyclon& cyclon() const noexcept { return cyclon_; }
  const gossip::Vicinity& vicinity() const noexcept { return vicinity_; }

 private:
  void stepCycle();

  Config config_;
  std::chrono::steady_clock::time_point epoch_;

  sim::Network network_;
  sim::MessageRouter router_;
  PeerTable peers_;
  UdpTransport transport_;
  gossip::Cyclon cyclon_;
  gossip::Vicinity vicinity_;
  cast::LiveCast live_;
  Bootstrap bootstrap_;

  /// Deterministic phase offset within the cycle (JitteredPeriodic's
  /// wall-clock twin), derived from the population seed and selfId.
  std::uint64_t phaseMs_ = 0;
  std::uint64_t nextStepMs_ = UINT64_MAX;  // armed when the ladder settles
  std::uint64_t cyclesRun_ = 0;

  std::vector<Delivery> deliveries_;
  std::unordered_set<std::uint64_t> deliveredIds_;
};

}  // namespace vs07::runtime
