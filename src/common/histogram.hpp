// Histograms used to regenerate the paper's distribution figures:
// Fig. 12 / Fig. 13 plot exact counts per integer lifetime on log-log axes,
// so we provide both an exact integer-count histogram and a log-binned view
// for compact textual rendering.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

namespace vs07 {

/// Exact counts keyed by non-negative integer value (sparse).
class CountHistogram {
 public:
  /// Adds `weight` observations of `value`.
  void add(std::uint64_t value, std::uint64_t weight = 1);

  /// Merges another histogram into this one.
  void merge(const CountHistogram& other);

  /// Count recorded for exactly `value` (0 if absent).
  std::uint64_t count(std::uint64_t value) const;

  /// Total number of observations.
  std::uint64_t total() const noexcept { return total_; }

  /// Largest value observed (0 if empty).
  std::uint64_t maxValue() const;

  /// All (value, count) pairs in increasing value order.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> sorted() const;

  bool empty() const noexcept { return counts_.empty(); }

 private:
  std::map<std::uint64_t, std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Canonical reduction of per-shard histograms: folds `parts` into one
/// histogram in index order. Integer counts make the merge exactly
/// associative and commutative; the fixed order is kept anyway so every
/// parallel reduction in the codebase follows one discipline.
CountHistogram mergeAll(std::span<const CountHistogram> parts);

/// One bin of a logarithmically-binned histogram.
struct LogBin {
  std::uint64_t lo = 0;  ///< inclusive lower bound
  std::uint64_t hi = 0;  ///< inclusive upper bound
  std::uint64_t count = 0;
};

/// Groups a CountHistogram into multiplicative bins (default ×2 per bin,
/// i.e. [1,1], [2,3], [4,7], ... with a dedicated bin for value 0).
/// This is how the log-log figures are rendered as text.
std::vector<LogBin> logBins(const CountHistogram& h, double factor = 2.0);

/// Renders log bins as an aligned text block, one line per bin, with a
/// proportional bar. Used by the figure benches for terminal output.
std::string renderLogBins(const std::vector<LogBin>& bins, int barWidth = 40);

}  // namespace vs07
