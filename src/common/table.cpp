#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/expect.hpp"

namespace vs07 {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  VS07_EXPECT(!header_.empty());
}

void Table::addRow(std::vector<std::string> cells) {
  VS07_EXPECT(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << "  ";
      out << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad)
        out << ' ';
    }
    out << '\n';
  };
  emit(header_);
  std::size_t lineWidth = 0;
  for (std::size_t c = 0; c < widths.size(); ++c)
    lineWidth += widths[c] + (c ? 2 : 0);
  out << std::string(lineWidth, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string Table::renderCsv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      out << row[c];
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string fmtLog(double value) {
  char buf[64];
  if (value == 0.0) return "0";
  if (value >= 0.01)
    std::snprintf(buf, sizeof buf, "%.4f", value);
  else
    std::snprintf(buf, sizeof buf, "%.3e", value);
  return buf;
}

}  // namespace vs07
