// Minimal tick-clock interface decoupling time consumers from time
// sources. The simulation engine implements it over its event-queue tick;
// the real-socket runtime implements it over wall-clock milliseconds.
// Protocol-layer code (e.g. cast::LiveCast delivery stamps) depends only
// on this interface, so the same dissemination logic runs unmodified in
// both worlds — the transport-neutral split the runtime subsystem needs.
#pragma once

#include <cstdint>

namespace vs07 {

/// A monotonically non-decreasing tick counter. What a tick *means*
/// (engine tick, millisecond, ...) is the implementation's business;
/// consumers only ever difference two readings.
class TickClock {
 public:
  virtual ~TickClock() = default;
  virtual std::uint64_t nowTick() const noexcept = 0;
};

}  // namespace vs07
