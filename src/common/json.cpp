#include "common/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/expect.hpp"

namespace vs07 {

Json::Json(double value) : type_(Type::kDouble), double_(value) {
  // JSON has no representation for NaN or infinities; refusing them here
  // keeps every emitted file parseable.
  VS07_EXPECT(std::isfinite(value));
}

Json& Json::push(Json value) {
  VS07_EXPECT(type_ == Type::kArray);
  elements_.push_back(std::move(value));
  return *this;
}

Json& Json::set(std::string key, Json value) {
  VS07_EXPECT(type_ == Type::kObject);
  for (auto& member : members_) {
    if (member.first == key) {
      member.second = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(std::move(key), std::move(value));
  return *this;
}

std::size_t Json::size() const noexcept {
  if (type_ == Type::kArray) return elements_.size();
  if (type_ == Type::kObject) return members_.size();
  return 0;
}

std::string Json::formatDouble(double value) {
  // Shortest representation that round-trips to the exact same double
  // ("0", "-0", "0.1", "1e+100", ...). to_chars never emits NaN/Inf here
  // because the constructor rejects them.
  char buffer[32];
  const auto result =
      std::to_chars(buffer, buffer + sizeof(buffer), value);
  VS07_ENSURE(result.ec == std::errc());
  return std::string(buffer, result.ptr);
}

void Json::writeString(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char escape[8];
          std::snprintf(escape, sizeof(escape), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += escape;
        } else {
          // UTF-8 bytes >= 0x80 pass through untouched.
          out += c;
        }
    }
  }
  out += '"';
}

void Json::write(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const auto newline = [&](int level) {
    if (!pretty) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent) * level, ' ');
  };
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kInt:
      out += std::to_string(int_);
      break;
    case Type::kUint:
      out += std::to_string(uint_);
      break;
    case Type::kDouble:
      out += formatDouble(double_);
      break;
    case Type::kString:
      writeString(out, string_);
      break;
    case Type::kArray: {
      if (elements_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      bool first = true;
      for (const auto& element : elements_) {
        if (!first) out += ',';
        first = false;
        newline(depth + 1);
        element.write(out, indent, depth + 1);
      }
      newline(depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      bool first = true;
      for (const auto& [key, value] : members_) {
        if (!first) out += ',';
        first = false;
        newline(depth + 1);
        writeString(out, key);
        out += pretty ? ": " : ":";
        value.write(out, indent, depth + 1);
      }
      newline(depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  return out;
}

}  // namespace vs07
