#include "common/cli.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace vs07 {

bool CliArgs::has(const std::string& name) const {
  return values_.count(name) != 0;
}

std::optional<std::string> CliArgs::get(const std::string& name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::uint64_t CliArgs::getUint(const std::string& name,
                               std::uint64_t fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  return std::stoull(*v);
}

std::int64_t CliArgs::getInt(const std::string& name,
                             std::int64_t fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  return std::stoll(*v);
}

double CliArgs::getDouble(const std::string& name, double fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  return std::stod(*v);
}

bool CliArgs::getBool(const std::string& name, bool fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  if (v->empty() || *v == "1" || *v == "true" || *v == "yes") return true;
  if (*v == "0" || *v == "false" || *v == "no") return false;
  throw std::invalid_argument("bad boolean for --" + name + ": " + *v);
}

CliParser::CliParser(std::string programDescription)
    : description_(std::move(programDescription)) {}

CliParser& CliParser::option(std::string name, std::string help,
                             bool takesValue) {
  options_.push_back({std::move(name), std::move(help), takesValue});
  return *this;
}

std::string CliParser::usage(const std::string& program) const {
  std::ostringstream out;
  out << description_ << "\n\nUsage: " << program << " [options]\n";
  for (const auto& opt : options_) {
    out << "  --" << opt.name;
    if (opt.takesValue) out << " <value>";
    out << "\n      " << opt.help << '\n';
  }
  out << "  --help\n      Show this message.\n";
  return out.str();
}

std::optional<CliArgs> CliParser::parse(int argc,
                                        const char* const* argv) const {
  CliArgs args;
  auto findOption = [&](const std::string& name) -> const Option* {
    for (const auto& opt : options_)
      if (opt.name == name) return &opt;
    return nullptr;
  };

  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token == "--help" || token == "-h") {
      std::fputs(usage(argv[0]).c_str(), stdout);
      return std::nullopt;
    }
    if (token.rfind("--", 0) != 0)
      throw std::invalid_argument("unexpected argument: " + token);
    token.erase(0, 2);

    std::string name = token;
    std::optional<std::string> inlineValue;
    if (const auto eq = token.find('='); eq != std::string::npos) {
      name = token.substr(0, eq);
      inlineValue = token.substr(eq + 1);
    }
    const Option* opt = findOption(name);
    if (!opt) throw std::invalid_argument("unknown option: --" + name);

    if (!opt->takesValue) {
      if (inlineValue)
        args.values_[name] = *inlineValue;  // allow --flag=true
      else
        args.values_[name] = "";
    } else if (inlineValue) {
      args.values_[name] = *inlineValue;
    } else {
      if (i + 1 >= argc)
        throw std::invalid_argument("missing value for --" + name);
      args.values_[name] = argv[++i];
    }
  }
  return args;
}

}  // namespace vs07
