#include "common/cli.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace vs07 {

namespace {

/// The one source of truth for boolean option literals: nullopt = not a
/// recognised boolean. An empty value (bare `--flag`) means true.
std::optional<bool> parseBool(const std::string& value) {
  if (value.empty() || value == "1" || value == "true" || value == "yes")
    return true;
  if (value == "0" || value == "false" || value == "no") return false;
  return std::nullopt;
}

/// Levenshtein distance, for "did you mean --nodes?" suggestions.
std::size_t editDistance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diagonal = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t previous = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1,
                         diagonal + (a[i - 1] == b[j - 1] ? 0 : 1)});
      diagonal = previous;
    }
  }
  return row[b.size()];
}

std::string lowered(const std::string& s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

/// The candidate `value` plausibly meant, or nullptr. Shared by the
/// unknown-option and bad-choice error paths so both speak the same
/// did-you-mean dialect. Two rules, both case-insensitive:
///   1. a unique prefix of >= 3 chars names its completion
///      (--search rand -> randomwalk), and
///   2. otherwise the closest candidate within edit distance 2
///      (a plausible typo: --search flod -> flood, FLOOD -> flood).
const std::string* closestMatch(const std::string& value,
                                const std::vector<std::string>& candidates) {
  const std::string needle = lowered(value);
  if (needle.size() >= 3) {
    const std::string* completion = nullptr;
    bool unique = true;
    for (const auto& candidate : candidates) {
      if (lowered(candidate).rfind(needle, 0) != 0) continue;
      if (completion) unique = false;
      completion = &candidate;
    }
    if (completion && unique) return completion;
  }
  const std::string* closest = nullptr;
  auto best = std::numeric_limits<std::size_t>::max();
  for (const auto& candidate : candidates) {
    const auto distance = editDistance(needle, lowered(candidate));
    if (distance < best) {
      best = distance;
      closest = &candidate;
    }
  }
  return best <= 2 ? closest : nullptr;
}

}  // namespace

bool CliArgs::has(const std::string& name) const {
  return values_.count(name) != 0;
}

std::optional<std::string> CliArgs::get(const std::string& name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

namespace {

/// Strict full-string numeric parse; anything short of a complete,
/// in-range number is an error naming the offending option.
template <typename T>
T parseNumber(const std::string& name, const std::string& value,
              const char* shape) {
  T out{};
  const char* begin = value.c_str();
  const char* end = begin + value.size();
  const auto result = std::from_chars(begin, end, out);
  if (result.ec != std::errc() || result.ptr != end)
    throw std::invalid_argument("bad " + std::string(shape) + " for --" +
                                name + ": '" + value + "'");
  return out;
}

}  // namespace

std::uint64_t CliArgs::getUint(const std::string& name,
                               std::uint64_t fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  return parseNumber<std::uint64_t>(name, *v, "non-negative integer");
}

std::uint64_t CliArgs::getPositiveUint(const std::string& name,
                                       std::uint64_t fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  const auto value =
      parseNumber<std::uint64_t>(name, *v, "positive integer");
  if (value == 0)
    throw std::invalid_argument("--" + name + " must be >= 1 (got 0)");
  return value;
}

std::int64_t CliArgs::getInt(const std::string& name,
                             std::int64_t fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  return parseNumber<std::int64_t>(name, *v, "integer");
}

double CliArgs::getDouble(const std::string& name, double fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  return parseNumber<double>(name, *v, "number");
}

bool CliArgs::getBool(const std::string& name, bool fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  const auto parsed = parseBool(*v);
  if (!parsed)
    throw std::invalid_argument("bad boolean for --" + name + ": " + *v);
  return *parsed;
}

std::size_t CliArgs::getChoice(const std::string& name,
                               const std::vector<std::string>& choices,
                               std::size_t fallbackIndex) const {
  if (choices.empty() || fallbackIndex >= choices.size())
    throw std::invalid_argument("--" + name +
                                ": fallback outside the choice list");
  const auto v = get(name);
  if (!v) return fallbackIndex;
  for (std::size_t i = 0; i < choices.size(); ++i)
    if (choices[i] == *v) return i;

  // Same contract as unknown options: a typo fails loudly with the
  // closest registered value named, never silently falls back.
  std::string message = "bad value for --" + name + ": '" + *v + "'";
  if (const auto* closest = closestMatch(*v, choices))
    message += " (did you mean '" + *closest + "'?)";
  message += "; choices:";
  for (const auto& choice : choices) message += " " + choice;
  throw std::invalid_argument(message);
}

HostPort CliArgs::getHostPort(const std::string& name,
                              const HostPort& fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  const std::string& value = *v;

  const auto bad = [&](const std::string& hint) -> std::invalid_argument {
    std::string message = "bad host:port for --" + name + ": '" + value + "'";
    if (!hint.empty()) message += " (" + hint + ")";
    return std::invalid_argument(message);
  };

  // Split on the *last* colon so a future bracketed-IPv6 host does not
  // change the grammar of the port side.
  const auto colon = value.rfind(':');
  if (colon == std::string::npos) {
    // Diagnose which half is missing: all digits reads as a lone port.
    const bool allDigits =
        !value.empty() &&
        std::all_of(value.begin(), value.end(),
                    [](unsigned char c) { return std::isdigit(c); });
    if (allDigits)
      throw bad("missing host — did you mean '127.0.0.1:" + value + "'?");
    throw bad("missing port — did you mean '" + value + ":9000'?");
  }
  const std::string host = value.substr(0, colon);
  const std::string portText = value.substr(colon + 1);
  if (host.empty()) throw bad("empty host before ':'");
  if (portText.empty())
    throw bad("empty port after ':' — did you mean '" + host + ":9000'?");

  std::uint32_t port = 0;
  const char* begin = portText.c_str();
  const char* end = begin + portText.size();
  const auto result = std::from_chars(begin, end, port);
  if (result.ec != std::errc() || result.ptr != end)
    throw bad("port '" + portText + "' is not a number");
  if (port > 65535)
    throw bad("port " + portText + " is above 65535");
  return {host, static_cast<std::uint16_t>(port)};
}

CliParser::CliParser(std::string programDescription)
    : description_(std::move(programDescription)) {}

CliParser& CliParser::option(std::string name, std::string help,
                             bool takesValue) {
  options_.push_back({std::move(name), std::move(help), takesValue});
  return *this;
}

std::string CliParser::usage(const std::string& program) const {
  std::ostringstream out;
  out << description_ << "\n\nUsage: " << program << " [options]\n";
  for (const auto& opt : options_) {
    out << "  --" << opt.name;
    if (opt.takesValue) out << " <value>";
    out << "\n      " << opt.help << '\n';
  }
  out << "  --help\n      Show this message.\n";
  return out.str();
}

std::optional<CliArgs> CliParser::parse(int argc,
                                        const char* const* argv) const {
  CliArgs args;
  auto findOption = [&](const std::string& name) -> const Option* {
    for (const auto& opt : options_)
      if (opt.name == name) return &opt;
    return nullptr;
  };

  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token == "--help" || token == "-h") {
      std::fputs(usage(argv[0]).c_str(), stdout);
      return std::nullopt;
    }
    if (token.rfind("--", 0) != 0)
      throw std::invalid_argument("unexpected argument: " + token);
    token.erase(0, 2);

    std::string name = token;
    std::optional<std::string> inlineValue;
    if (const auto eq = token.find('='); eq != std::string::npos) {
      name = token.substr(0, eq);
      inlineValue = token.substr(eq + 1);
    }
    const Option* opt = findOption(name);
    if (!opt) {
      // Typos must fail loudly, not silently run the default experiment:
      // name the closest registered option and list the alternatives.
      std::string message = "unknown option: --" + name;
      std::vector<std::string> names;
      names.reserve(options_.size());
      for (const auto& candidate : options_) names.push_back(candidate.name);
      if (const auto* closest = closestMatch(name, names))
        message += " (did you mean --" + *closest + "?)";
      message += "; run with --help to list the options";
      throw std::invalid_argument(message);
    }

    if (!opt->takesValue) {
      if (inlineValue) {
        // Allow --flag=true, but reject junk here rather than letting
        // getBool() blow up long after parsing succeeded.
        if (!parseBool(*inlineValue))
          throw std::invalid_argument("bad boolean for --" + name + ": " +
                                      *inlineValue);
        args.values_[name] = *inlineValue;
      } else {
        args.values_[name] = "";
      }
    } else if (inlineValue) {
      args.values_[name] = *inlineValue;
    } else {
      if (i + 1 >= argc)
        throw std::invalid_argument("missing value for --" + name);
      args.values_[name] = argv[++i];
    }
  }
  return args;
}

std::optional<CliArgs> CliParser::parseOrExit(
    int argc, const char* const* argv) const {
  try {
    return parse(argc, argv);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "%s: %s\n", argc > 0 ? argv[0] : "program",
                 error.what());
    std::exit(2);
  }
}

}  // namespace vs07
