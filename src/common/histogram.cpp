#include "common/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/expect.hpp"

namespace vs07 {

void CountHistogram::add(std::uint64_t value, std::uint64_t weight) {
  if (weight == 0) return;
  counts_[value] += weight;
  total_ += weight;
}

void CountHistogram::merge(const CountHistogram& other) {
  for (const auto& [value, count] : other.counts_) add(value, count);
}

CountHistogram mergeAll(std::span<const CountHistogram> parts) {
  CountHistogram out;
  for (const CountHistogram& part : parts) out.merge(part);
  return out;
}

std::uint64_t CountHistogram::count(std::uint64_t value) const {
  const auto it = counts_.find(value);
  return it == counts_.end() ? 0 : it->second;
}

std::uint64_t CountHistogram::maxValue() const {
  return counts_.empty() ? 0 : counts_.rbegin()->first;
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> CountHistogram::sorted()
    const {
  return {counts_.begin(), counts_.end()};
}

std::vector<LogBin> logBins(const CountHistogram& h, double factor) {
  VS07_EXPECT(factor > 1.0);
  std::vector<LogBin> bins;
  if (h.empty()) return bins;

  const auto pairs = h.sorted();
  // Dedicated zero bin, if present.
  std::size_t firstIndex = 0;
  if (pairs.front().first == 0) {
    bins.push_back({0, 0, pairs.front().second});
    firstIndex = 1;
  }
  if (firstIndex >= pairs.size()) return bins;

  std::uint64_t lo = 1;
  auto width = 1.0;
  std::size_t i = firstIndex;
  const std::uint64_t maxValue = pairs.back().first;
  while (lo <= maxValue) {
    const auto hi =
        lo + static_cast<std::uint64_t>(std::ceil(width)) - 1;
    LogBin bin{lo, hi, 0};
    while (i < pairs.size() && pairs[i].first <= hi) {
      bin.count += pairs[i].second;
      ++i;
    }
    bins.push_back(bin);
    lo = hi + 1;
    width *= factor;
  }
  // Trim trailing empty bins.
  while (!bins.empty() && bins.back().count == 0) bins.pop_back();
  return bins;
}

std::string renderLogBins(const std::vector<LogBin>& bins, int barWidth) {
  VS07_EXPECT(barWidth > 0);
  std::uint64_t peak = 0;
  for (const auto& bin : bins) peak = std::max(peak, bin.count);
  if (peak == 0) peak = 1;

  std::ostringstream out;
  for (const auto& bin : bins) {
    // Bar length proportional to log(count+1): matches the log-scale
    // vertical axis of the paper's figures.
    const double frac =
        std::log2(static_cast<double>(bin.count) + 1.0) /
        std::log2(static_cast<double>(peak) + 1.0);
    const int len = static_cast<int>(frac * barWidth + 0.5);
    char range[64];
    if (bin.lo == bin.hi)
      std::snprintf(range, sizeof range, "%10llu      ",
                    static_cast<unsigned long long>(bin.lo));
    else
      std::snprintf(range, sizeof range, "%6llu-%-8llu",
                    static_cast<unsigned long long>(bin.lo),
                    static_cast<unsigned long long>(bin.hi));
    out << range << ' ';
    for (int k = 0; k < len; ++k) out << '#';
    out << ' ' << bin.count << '\n';
  }
  return out.str();
}

}  // namespace vs07
