#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/expect.hpp"

namespace vs07 {

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

RunningStats mergeAll(std::span<const RunningStats> parts) noexcept {
  RunningStats out;
  for (const RunningStats& part : parts) out.merge(part);
  return out;
}

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  VS07_EXPECT(p >= 0.0 && p <= 100.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (p <= 0.0) return sorted.front();
  const auto n = static_cast<double>(sorted.size());
  const auto rank = static_cast<std::size_t>(std::ceil(p / 100.0 * n));
  return sorted[std::min(sorted.size() - 1, rank == 0 ? 0 : rank - 1)];
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  if (xs.empty()) return s;
  RunningStats rs;
  for (double x : xs) rs.add(x);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  auto rank = [&](double p) {
    const auto n = static_cast<double>(sorted.size());
    const auto r = static_cast<std::size_t>(std::ceil(p / 100.0 * n));
    return sorted[std::min(sorted.size() - 1, r == 0 ? 0 : r - 1)];
  };
  s.count = rs.count();
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = sorted.front();
  s.p50 = rank(50.0);
  s.p90 = rank(90.0);
  s.p99 = rank(99.0);
  s.max = sorted.back();
  return s;
}

double giniCoefficient(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  double cumulativeWeighted = 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    VS07_EXPECT(sorted[i] >= 0.0);
    cumulativeWeighted += static_cast<double>(i + 1) * sorted[i];
    total += sorted[i];
  }
  if (total == 0.0) return 0.0;
  const auto n = static_cast<double>(sorted.size());
  return (2.0 * cumulativeWeighted) / (n * total) - (n + 1.0) / n;
}

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

std::vector<double> toDoubles(std::span<const std::uint64_t> xs) {
  return {xs.begin(), xs.end()};
}

std::vector<double> toDoubles(std::span<const std::uint32_t> xs) {
  return {xs.begin(), xs.end()};
}

}  // namespace vs07
