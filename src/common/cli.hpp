// Minimal command-line option parsing for the bench/example binaries.
// Supports `--name=value`, `--name value`, and boolean `--flag` forms.
// Unknown options are an error so typos do not silently run the default
// experiment scale.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace vs07 {

/// A parsed "host:port" endpoint (CliArgs::getHostPort). The host part is
/// kept verbatim (name or dotted quad); resolution is the caller's job.
struct HostPort {
  std::string host;
  std::uint16_t port = 0;

  friend bool operator==(const HostPort&, const HostPort&) = default;
};

/// Parsed command line. Construct via CliParser.
class CliArgs {
 public:
  bool has(const std::string& name) const;
  /// Returns the raw string value (empty string for bare flags).
  std::optional<std::string> get(const std::string& name) const;
  /// The numeric getters parse strictly: the whole value must be a
  /// number of the requested shape ("12abc", "-5" for unsigned, "" and
  /// "1e999" all throw std::invalid_argument naming the option) so a
  /// malformed value aborts the run instead of silently truncating.
  std::uint64_t getUint(const std::string& name, std::uint64_t fallback) const;
  /// getUint that additionally rejects 0 ("--threads 0" must not spin up
  /// an experiment with no workers).
  std::uint64_t getPositiveUint(const std::string& name,
                                std::uint64_t fallback) const;
  std::int64_t getInt(const std::string& name, std::int64_t fallback) const;
  double getDouble(const std::string& name, double fallback) const;
  bool getBool(const std::string& name, bool fallback = false) const;
  /// Enumerated flag: returns the index of the option's value within
  /// `choices`, or `fallbackIndex` when the option is absent. An
  /// unrecognised value throws std::invalid_argument naming the option,
  /// listing the choices, and suggesting the closest match on a
  /// plausible typo ("did you mean 'cyclesync'?").
  std::size_t getChoice(const std::string& name,
                        const std::vector<std::string>& choices,
                        std::size_t fallbackIndex) const;
  /// "host:port" endpoint flag (e.g. --listen 127.0.0.1:9000). Malformed
  /// values throw std::invalid_argument naming the option and — in the
  /// did-you-mean spirit of the other getters — spelling out the repair
  /// for the common slips: a bare port ("9000"), a bare host
  /// ("127.0.0.1"), a trailing colon, or an out-of-range port number.
  /// The port may be 0 (bind-ephemeral convention).
  HostPort getHostPort(const std::string& name,
                       const HostPort& fallback) const;

 private:
  friend class CliParser;
  std::map<std::string, std::string> values_;
};

/// Declarative option registry + parser. Declares the accepted options up
/// front so `--help` output is generated and unknown options rejected.
class CliParser {
 public:
  explicit CliParser(std::string programDescription);

  /// Registers an option. `takesValue` distinguishes `--n 100` from
  /// boolean `--paper`.
  CliParser& option(std::string name, std::string help,
                    bool takesValue = true);

  /// Parses argv. On `--help`, prints usage and returns std::nullopt
  /// (caller should exit 0). Throws std::invalid_argument on bad input.
  std::optional<CliArgs> parse(int argc, const char* const* argv) const;

  /// parse() for main(): invalid input prints the error (including the
  /// did-you-mean suggestion) to stderr and exits with status 2 instead
  /// of unwinding into std::terminate. nullopt still means --help.
  std::optional<CliArgs> parseOrExit(int argc,
                                     const char* const* argv) const;

  /// The generated usage text.
  std::string usage(const std::string& program) const;

 private:
  struct Option {
    std::string name;
    std::string help;
    bool takesValue = true;
  };
  std::string description_;
  std::vector<Option> options_;
};

}  // namespace vs07
