// Deterministic discrete-event scheduler — the one priority structure
// behind simulated time.
//
// Events are keyed on (dueTick, priority, seq): due tick first, then an
// ordering class within the tick (the simulation engine uses delivery <
// timer < control), then a monotonically increasing sequence number that
// makes ties FIFO. Because the key is a pure function of the schedule
// calls — never of wall-clock, addresses, or container internals — two
// identically seeded simulations replay the exact same event order,
// which is what every determinism suite in this repo leans on.
//
// Used by sim::Engine as the simulation core and by net::DelayedTransport
// as its delivery queue (one scheduler implementation, two clocks). The
// parallel engine (sim::ShardedEngine) replaces the single global queue
// with one ShardDeliveryQueue per shard plus a horizon query — see below.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/expect.hpp"

namespace vs07 {

/// Deterministic (dueTick, priority, seq)-ordered event queue. Executing
/// an event may schedule further events (re-entrancy is the normal case:
/// a delivered message triggers forwards); see advanceTo for how those
/// are ordered.
class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Schedules `action` at (dueTick, priority); ties with already
  /// scheduled events break FIFO. Returns the sequence number assigned.
  std::uint64_t schedule(std::uint64_t dueTick, std::uint8_t priority,
                         Action action);

  bool empty() const noexcept { return heap_.empty(); }
  std::size_t size() const noexcept { return heap_.size(); }

  /// The current simulated tick: the largest tick ever advanced to.
  std::uint64_t now() const noexcept { return now_; }

  /// The sequence number the next schedule() call will be assigned
  /// (advanceTo cutoffs are expressed against this counter).
  std::uint64_t nextSeq() const noexcept { return nextSeq_; }

  /// Due tick of the earliest pending event. Requires !empty().
  std::uint64_t nextDueTick() const;

  /// Advances now() to `tick` and executes every event with
  /// dueTick <= tick in (dueTick, priority, seq) order. Events scheduled
  /// *during* execution join the same ordering: one due at or before
  /// `tick` still runs in this call, after the already pending events of
  /// its (dueTick, priority) class.
  void advanceTo(std::uint64_t tick);

  /// advanceTo that additionally *stops* at the first event (in pop
  /// order) whose seq >= seqCutoff, leaving it and everything behind it
  /// queued: passing nextSeq() taken *before* the call defers everything
  /// scheduled re-entrantly to a later advance — the "a zero-latency
  /// send from inside a delivery handler waits for the next tick"
  /// semantics DelayedTransport promises. Note the cutoff is a stopping
  /// point, not a filter: an *older* event due later in the pop order is
  /// deferred along with the newer one in front of it. That is exactly
  /// right for single-priority FIFO traffic (the only current use);
  /// callers mixing priorities or widely varying latencies should not
  /// combine them with a cutoff.
  void advanceTo(std::uint64_t tick, std::uint64_t seqCutoff);

  /// Executes everything still pending regardless of due tick (test
  /// teardown / transport drain); now() advances to the last executed
  /// event's due tick.
  void drainAll();

 private:
  struct Event {
    std::uint64_t dueTick;
    std::uint8_t priority;
    std::uint64_t seq;
    Action action;
  };
  /// Min-heap order on (dueTick, priority, seq).
  struct After {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.dueTick != b.dueTick) return a.dueTick > b.dueTick;
      if (a.priority != b.priority) return a.priority > b.priority;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, After> heap_;
  std::uint64_t now_ = 0;
  std::uint64_t nextSeq_ = 0;
};

/// Shard-local due-tick queue for the windowed parallel engine
/// (sim::ShardedEngine): a min-heap keyed on dueTick alone. Each shard
/// stores the in-flight messages addressed to its own nodes here; the
/// coordinator's safe horizon for the next execution window is
/// min over shards of nextDueTickOr(...) combined with the next timer
/// tick, plus the model lookahead. Within one tick the caller re-sorts
/// the popped items into its canonical (to, from, seq) delivery order,
/// so heap tie-breaking never leaks into results. The backing vector
/// keeps its capacity across pops — steady-state traffic allocates
/// nothing once the high-water mark is reached.
template <typename Item>
class ShardDeliveryQueue {
 public:
  void push(std::uint64_t dueTick, Item item) {
    heap_.push_back(Entry{dueTick, std::move(item)});
    std::push_heap(heap_.begin(), heap_.end(), After{});
  }

  bool empty() const noexcept { return heap_.empty(); }
  std::size_t size() const noexcept { return heap_.size(); }

  /// Pre-sizes the backing vector (slack over the in-flight record, so
  /// a new record reached mid-window doesn't reallocate mid-cycle).
  void reserve(std::size_t n) { heap_.reserve(n); }
  std::size_t capacity() const noexcept { return heap_.capacity(); }

  /// Due tick of the earliest pending item, or `fallback` when empty —
  /// the horizon query the coordinator runs between barriers.
  std::uint64_t nextDueTickOr(std::uint64_t fallback) const noexcept {
    return heap_.empty() ? fallback : heap_.front().dueTick;
  }

  /// Pops every item with dueTick <= tick, appending to `out` in
  /// unspecified order (callers sort into their canonical order).
  void popDueInto(std::uint64_t tick, std::vector<Item>& out) {
    while (!heap_.empty() && heap_.front().dueTick <= tick) {
      std::pop_heap(heap_.begin(), heap_.end(), After{});
      out.push_back(std::move(heap_.back().item));
      heap_.pop_back();
    }
  }

 private:
  struct Entry {
    std::uint64_t dueTick;
    Item item;
  };
  struct After {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      return a.dueTick > b.dueTick;
    }
  };
  std::vector<Entry> heap_;
};

}  // namespace vs07
