// Tiny leveled logger. Benches and examples narrate progress at Info;
// the simulation core logs nothing in hot paths (Per.1) — diagnostics go
// through reports instead.
#pragma once

#include <string>

namespace vs07 {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Sets the global threshold; messages below it are dropped.
void setLogLevel(LogLevel level) noexcept;
LogLevel logLevel() noexcept;

/// Writes one line to stderr with a level prefix if `level` passes the
/// threshold. Thread-compatible: callers serialize externally if needed
/// (the simulator is single-threaded by design).
void logLine(LogLevel level, const std::string& message);

inline void logDebug(const std::string& m) { logLine(LogLevel::Debug, m); }
inline void logInfo(const std::string& m) { logLine(LogLevel::Info, m); }
inline void logWarn(const std::string& m) { logLine(LogLevel::Warn, m); }
inline void logError(const std::string& m) { logLine(LogLevel::Error, m); }

}  // namespace vs07
