// Minimal ordered JSON writer for the machine-readable bench records
// (BENCH_*.json). Write-only by design: the library builds a value tree
// and serialises it; parsing is left to the consumers (plot scripts, the
// CI checker). Three properties the bench harness depends on:
//
//   * object keys keep insertion order, so records serialise stably and
//     diffs between runs are meaningful;
//   * doubles are formatted with std::to_chars shortest round-trip form,
//     so every emitted number parses back to the exact same double and
//     equal inputs always serialise to equal bytes;
//   * NaN/Inf are rejected at construction (JSON has no encoding for
//     them) instead of silently emitting invalid output.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace vs07 {

/// One JSON value: null, bool, integer, double, string, array, or object.
/// Objects preserve key insertion order; set() on an existing key
/// replaces the value in place without moving the key.
class Json {
 public:
  enum class Type { kNull, kBool, kInt, kUint, kDouble, kString, kArray,
                    kObject };

  Json() noexcept : type_(Type::kNull) {}
  Json(std::nullptr_t) noexcept : type_(Type::kNull) {}
  Json(bool value) noexcept : type_(Type::kBool), bool_(value) {}
  Json(int value) noexcept
      : type_(Type::kInt), int_(value) {}
  Json(long value) noexcept
      : type_(Type::kInt), int_(value) {}
  Json(long long value) noexcept
      : type_(Type::kInt), int_(value) {}
  Json(unsigned value) noexcept : type_(Type::kUint), uint_(value) {}
  Json(unsigned long value) noexcept : type_(Type::kUint), uint_(value) {}
  Json(unsigned long long value) noexcept
      : type_(Type::kUint), uint_(value) {}
  /// Rejects NaN and infinities (throws ContractViolation).
  Json(double value);
  Json(const char* value) : type_(Type::kString), string_(value) {}
  Json(std::string value) : type_(Type::kString), string_(std::move(value)) {}

  static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  Type type() const noexcept { return type_; }

  /// Appends to an array (the value must be an array). Returns *this for
  /// chaining.
  Json& push(Json value);

  /// Sets a key on an object (must be an object), preserving insertion
  /// order; an existing key is overwritten in place. Returns *this.
  Json& set(std::string key, Json value);

  /// Number of elements (array) or members (object).
  std::size_t size() const noexcept;

  /// Serialises the value. indent < 0 renders compact one-line JSON;
  /// indent >= 0 pretty-prints with that many spaces per level.
  std::string dump(int indent = -1) const;

  /// Formats one double exactly as dump() would (shortest round-trip
  /// form). Exposed so tests can pin the formatting contract directly.
  static std::string formatDouble(double value);

 private:
  void write(std::string& out, int indent, int depth) const;
  static void writeString(std::string& out, const std::string& s);

  Type type_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> elements_;
  std::vector<std::pair<std::string, Json>> members_;
};

}  // namespace vs07
