// A small persistent worker pool for embarrassingly-parallel index loops.
//
// TaskPool::parallelFor(count, fn) runs fn(0) .. fn(count-1) across the
// pool's threads (the calling thread participates too) and blocks until
// every index has finished. Scheduling is work-stealing off one atomic
// counter, so *which* thread runs an index is nondeterministic — callers
// that need reproducible results must make each index's work independent
// of execution order (e.g. analysis::ParallelSweep derives one RNG stream
// per index and merges results in canonical index order).
//
// With threadCount() == 1 the loop runs inline on the caller, no workers,
// no synchronisation — so single-threaded use has zero overhead and is
// trivially identical to the sequential program.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vs07 {

class TaskPool {
 public:
  /// Creates a pool of `threads` total lanes (including the caller's);
  /// 0 means defaultThreads(). `threads` == 1 spawns no workers.
  explicit TaskPool(std::uint32_t threads = 0);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Total lanes (worker threads + the calling thread).
  std::uint32_t threadCount() const noexcept { return threads_; }

  /// Runs fn(i) for every i in [0, count). Blocks until all complete.
  /// If any invocation throws, the first exception (in completion order)
  /// is rethrown here after the loop drains. Not reentrant: one
  /// parallelFor at a time per pool.
  void parallelFor(std::size_t count,
                   const std::function<void(std::size_t)>& fn);

  /// hardware_concurrency(), clamped to at least 1.
  static std::uint32_t defaultThreads() noexcept;

 private:
  void workerLoop();
  void drain(const std::function<void(std::size_t)>& fn, std::size_t count);

  const std::uint32_t threads_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::size_t count_ = 0;
  std::atomic<std::size_t> next_{0};
  std::size_t working_ = 0;
  std::uint64_t generation_ = 0;
  bool stop_ = false;

  std::mutex errorMutex_;
  std::exception_ptr firstError_;
};

}  // namespace vs07
