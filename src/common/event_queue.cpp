#include "common/event_queue.hpp"

#include <limits>
#include <utility>

namespace vs07 {

std::uint64_t EventQueue::schedule(std::uint64_t dueTick,
                                   std::uint8_t priority, Action action) {
  VS07_EXPECT(action != nullptr);
  const std::uint64_t seq = nextSeq_++;
  heap_.push({dueTick, priority, seq, std::move(action)});
  return seq;
}

std::uint64_t EventQueue::nextDueTick() const {
  VS07_EXPECT(!heap_.empty());
  return heap_.top().dueTick;
}

void EventQueue::advanceTo(std::uint64_t tick) {
  advanceTo(tick, std::numeric_limits<std::uint64_t>::max());
}

void EventQueue::advanceTo(std::uint64_t tick, std::uint64_t seqCutoff) {
  if (tick > now_) now_ = tick;
  while (!heap_.empty() && heap_.top().dueTick <= tick &&
         heap_.top().seq < seqCutoff) {
    // priority_queue::top() is const; the action is popped right after,
    // so copy-free extraction needs the const_cast idiom.
    Event event = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    event.action();
  }
}

void EventQueue::drainAll() {
  while (!heap_.empty()) {
    Event event = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    if (event.dueTick > now_) now_ = event.dueTick;
    event.action();
  }
}

}  // namespace vs07
