// Deterministic, seedable random number generation for simulations.
//
// All randomness in the library flows through Rng so that every experiment
// is reproducible from a single 64-bit seed. The generator is xoshiro256**
// (Blackman & Vigna), seeded via splitmix64; both are tiny, fast, and have
// no shared global state, unlike std::mt19937 whose seeding is easy to get
// wrong and whose state is large.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/expect.hpp"

namespace vs07 {

/// splitmix64 step: used for seeding and for hashing ids into profiles.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Stateless mixing of a 64-bit value (one splitmix64 round).
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  std::uint64_t s = x;
  return splitmix64(s);
}

/// Derives the seed of an independent RNG stream from a root seed and a
/// two-part stream identity (splitmix-style chained mixing). Used by the
/// parallel experiment runners: each (strategy-sweep seed, fanout,
/// replication-chunk) cell seeds its own Rng from this, so a cell's
/// stream depends only on its identity — never on which thread runs it,
/// how many threads exist, or what other cells are in flight.
///
/// For a fixed root seed, distinct (lane, index) pairs map to distinct
/// intermediate values at each chaining step (mix64 is a bijection), so
/// collisions require a cross-step coincidence — negligible over any
/// realistic grid, and pinned by the seed-derivation property test.
constexpr std::uint64_t deriveStreamSeed(std::uint64_t seed,
                                         std::uint64_t lane,
                                         std::uint64_t index = 0) noexcept {
  std::uint64_t h = seed;
  h = mix64(h ^ (0xA0761D6478BD642FULL + mix64(lane)));
  h = mix64(h ^ (0xE7037ED1A0B428DBULL + mix64(index)));
  return h;
}

/// xoshiro256** pseudo-random generator.
///
/// Satisfies std::uniform_random_bit_generator, so it composes with
/// standard <random> distributions, but the member helpers below are the
/// intended API: they are faster and bias-free.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the generator deterministically from one 64-bit value.
  explicit Rng(std::uint64_t seed = 0xC0FFEE123456789ULL) noexcept {
    reseed(seed);
  }

  /// Re-seeds in place (equivalent to constructing a fresh Rng).
  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  /// Next raw 64-bit value.
  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Requires bound > 0.
  /// Uses Lemire's multiply-shift rejection method (no modulo bias).
  std::uint64_t below(std::uint64_t bound) noexcept {
    // Contract kept as a cheap branch: bound==0 would loop forever.
    if (bound == 0) return 0;
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in the closed interval [lo, hi]. Requires lo <= hi.
  std::int64_t between(std::int64_t lo, std::int64_t hi) noexcept {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p) noexcept { return uniform() < p; }

  /// Fisher–Yates shuffle of a whole container.
  template <typename Container>
  void shuffle(Container& c) noexcept {
    const std::size_t n = c.size();
    for (std::size_t i = n; i > 1; --i) {
      const std::size_t j = below(i);
      using std::swap;
      swap(c[i - 1], c[j]);
    }
  }

  /// Selects k distinct indices uniformly from [0, n). If k >= n, returns
  /// all of [0, n) in random order. Uses a partial Fisher–Yates over an
  /// index vector: O(n) setup, fine for the small n used in views.
  std::vector<std::size_t> sampleIndices(std::size_t n, std::size_t k) {
    std::vector<std::size_t> idx(n);
    for (std::size_t i = 0; i < n; ++i) idx[i] = i;
    const std::size_t take = k < n ? k : n;
    for (std::size_t i = 0; i < take; ++i) {
      const std::size_t j = i + below(n - i);
      std::swap(idx[i], idx[j]);
    }
    idx.resize(take);
    return idx;
  }

  /// Forks an independent child stream; children of distinct draws are
  /// statistically independent of the parent and of each other.
  Rng fork() noexcept { return Rng((*this)() ^ 0x9E3779B97F4A7C15ULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace vs07
