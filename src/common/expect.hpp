// Lightweight contract checking, in the spirit of the C++ Core Guidelines'
// Expects()/Ensures() (I.6, I.8). Violations throw, so tests can assert on
// them and simulations never silently continue from a broken invariant.
#pragma once

#include <stdexcept>
#include <string>

namespace vs07 {

/// Thrown when a precondition or invariant check fails.
class ContractViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void contractFail(const char* kind, const char* expr,
                                      const char* file, int line) {
  throw ContractViolation(std::string(kind) + " failed: " + expr + " at " +
                          file + ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace vs07

/// Precondition check: argument/state requirements at function entry.
#define VS07_EXPECT(cond)                                                \
  do {                                                                   \
    if (!(cond))                                                         \
      ::vs07::detail::contractFail("precondition", #cond, __FILE__,      \
                                   __LINE__);                            \
  } while (false)

/// Postcondition / invariant check.
#define VS07_ENSURE(cond)                                                \
  do {                                                                   \
    if (!(cond))                                                         \
      ::vs07::detail::contractFail("postcondition", #cond, __FILE__,     \
                                   __LINE__);                            \
  } while (false)
