// Process resource probes for bench metadata.
#pragma once

#include <cstdint>

namespace vs07 {

/// Peak resident set size of the process in bytes (high-water mark since
/// process start), or 0 when the platform offers no probe. Every bench
/// records this next to wall-clock in its JSON metadata.
std::uint64_t peakRssBytes() noexcept;

}  // namespace vs07
