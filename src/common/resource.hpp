// Process resource probes for bench metadata and runtime node stats.
#pragma once

#include <cstdint>

namespace vs07 {

/// Peak resident set size of the process in bytes (high-water mark since
/// process start), or 0 when the platform offers no probe. On Linux this
/// reads /proc/self/status VmHWM — a true process-scoped high-water mark,
/// unaffected by when the caller started measuring — falling back to
/// getrusage(ru_maxrss) elsewhere. Every bench records this next to
/// wall-clock in its JSON metadata; vs07_node reports it over its
/// control socket.
std::uint64_t peakRssBytes() noexcept;

/// Current resident set size in bytes (Linux: /proc/self/status VmRSS),
/// or 0 when unavailable. Long-running node processes report this next
/// to the peak so steady-state footprint and startup spikes are
/// distinguishable.
std::uint64_t currentRssBytes() noexcept;

}  // namespace vs07
