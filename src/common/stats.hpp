// Small statistics toolkit used by the analysis layer and the benches:
// streaming moments (Welford), order statistics, and inequality measures
// for the paper's load-distribution claim.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace vs07 {

/// Streaming mean/variance accumulator (Welford's algorithm).
/// Numerically stable for long runs; O(1) per observation.
class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_ || n_ == 1) min_ = x;
    if (x > max_ || n_ == 1) max_ = x;
  }

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }

  /// Merges another accumulator into this one (parallel Welford). The
  /// combine is associative up to floating-point rounding — reduce
  /// per-shard accumulators in canonical (shard index) order so results
  /// never depend on thread scheduling.
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Canonical reduction of per-shard accumulators: folds `parts` into one
/// accumulator strictly in index order (((parts[0] ⊕ parts[1]) ⊕ ...)).
/// Lay per-worker results out by shard index and every run reduces them
/// through the identical floating-point expression tree, independent of
/// which thread finished first.
RunningStats mergeAll(std::span<const RunningStats> parts) noexcept;

/// Five-number-style summary of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

/// Summarises a sample (copies + sorts internally; fine for bench sizes).
Summary summarize(std::span<const double> xs);

/// Nearest-rank percentile of a sample, p in [0, 100].
/// The input need not be sorted. Returns 0 for an empty sample.
double percentile(std::span<const double> xs, double p);

/// Gini coefficient of non-negative values in [0, 1]: 0 = perfectly even
/// load, 1 = one node carries everything. Used for the load-distribution
/// claim of the paper (§2, §7).
double giniCoefficient(std::span<const double> xs);

/// Mean of a sample (0 for empty).
double mean(std::span<const double> xs);

/// Converts any integer-valued container to double for the helpers above.
std::vector<double> toDoubles(std::span<const std::uint64_t> xs);
std::vector<double> toDoubles(std::span<const std::uint32_t> xs);

}  // namespace vs07
