#include "common/log.hpp"

#include <cstdio>

namespace vs07 {

namespace {
LogLevel g_level = LogLevel::Info;

const char* prefix(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "[debug] ";
    case LogLevel::Info:  return "[info ] ";
    case LogLevel::Warn:  return "[warn ] ";
    case LogLevel::Error: return "[error] ";
    case LogLevel::Off:   return "";
  }
  return "";
}
}  // namespace

void setLogLevel(LogLevel level) noexcept { g_level = level; }
LogLevel logLevel() noexcept { return g_level; }

void logLine(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level)) return;
  std::fprintf(stderr, "%s%s\n", prefix(level), message.c_str());
}

}  // namespace vs07
