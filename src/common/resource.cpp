#include "common/resource.hpp"

#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace vs07 {

namespace {

/// Reads one "Vm...: N kB" line from /proc/self/status; 0 on any failure.
/// Process-scoped by construction: the kernel accounts these per process,
/// not per measurement window.
std::uint64_t procStatusKb(const char* key) noexcept {
#if defined(__linux__)
  std::FILE* file = std::fopen("/proc/self/status", "r");
  if (file == nullptr) return 0;
  const std::size_t keyLen = std::strlen(key);
  char line[256];
  std::uint64_t kb = 0;
  while (std::fgets(line, sizeof(line), file) != nullptr) {
    if (std::strncmp(line, key, keyLen) != 0 || line[keyLen] != ':') continue;
    unsigned long long value = 0;
    if (std::sscanf(line + keyLen + 1, "%llu", &value) == 1) kb = value;
    break;
  }
  std::fclose(file);
  return kb;
#else
  (void)key;
  return 0;
#endif
}

}  // namespace

std::uint64_t peakRssBytes() noexcept {
  if (const std::uint64_t kb = procStatusKb("VmHWM"); kb != 0)
    return kb * 1024u;
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  // macOS reports ru_maxrss in bytes.
  return static_cast<std::uint64_t>(usage.ru_maxrss);
#else
  // Linux reports ru_maxrss in kilobytes.
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024u;
#endif
#else
  return 0;
#endif
}

std::uint64_t currentRssBytes() noexcept {
  return procStatusKb("VmRSS") * 1024u;
}

}  // namespace vs07
