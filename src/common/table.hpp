// Aligned text tables and CSV emission for the figure benches.
// Each bench prints the same rows/series the corresponding paper figure
// plots; Table keeps that output readable in a terminal, and the CSV twin
// makes it trivially plottable.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace vs07 {

/// Column-aligned text table with a header row.
///
/// Usage:
///   Table t({"fanout", "miss%", "complete%"});
///   t.addRow({"2", "10.81", "0"});
///   std::cout << t.render();
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends one row; must have exactly as many cells as the header.
  void addRow(std::vector<std::string> cells);

  /// Number of data rows.
  std::size_t rows() const noexcept { return rows_.size(); }

  /// The header cells (for machine-readable re-emission, e.g. JSON).
  const std::vector<std::string>& header() const noexcept { return header_; }

  /// The data rows, in insertion order.
  const std::vector<std::vector<std::string>>& rowData() const noexcept {
    return rows_;
  }

  /// Renders with padded columns and a separator under the header.
  std::string render() const;

  /// Renders as comma-separated values (header + rows).
  std::string renderCsv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper for building rows).
std::string fmt(double value, int precision = 3);

/// Formats a double in scientific-ish compact form for log-scale figures
/// (e.g. miss ratios of 1e-4 .. 100 as the paper plots them).
std::string fmtLog(double value);

}  // namespace vs07
