// Counting-allocator hook — the measurement behind the zero-allocation
// invariant of the message hot path.
//
// Linking anything that calls allocCounters() pulls in replacement global
// operator new/delete (alloc_probe.cpp) that count every allocation with
// relaxed atomics before forwarding to malloc/free. The overhead is one
// atomic increment per call, cheap enough to leave on for benches; code
// that never references the probe links the default operators and pays
// nothing. This is deliberately a *hook*, not an allocator swap: the
// benches read deltas around measured sections (allocations/cycle in
// micro_protocols and bench/scale_sweep) and the tests pin the hot path
// at zero.
#pragma once

#include <cstdint>

namespace vs07 {

/// Snapshot of the process-wide allocation counters.
struct AllocCounters {
  std::uint64_t allocations = 0;    ///< operator new calls
  std::uint64_t deallocations = 0;  ///< operator delete calls
  std::uint64_t bytes = 0;          ///< total bytes requested
};

/// Current counter values. Referencing this function activates the
/// counting operators for the whole binary.
AllocCounters allocCounters() noexcept;

/// Delta-counter over a scope: construct before the measured section,
/// read after.
class AllocScope {
 public:
  AllocScope() noexcept : start_(allocCounters()) {}

  std::uint64_t allocations() const noexcept {
    return allocCounters().allocations - start_.allocations;
  }
  std::uint64_t deallocations() const noexcept {
    return allocCounters().deallocations - start_.deallocations;
  }
  std::uint64_t bytes() const noexcept {
    return allocCounters().bytes - start_.bytes;
  }

 private:
  AllocCounters start_;
};

}  // namespace vs07
