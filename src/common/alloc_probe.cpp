// Replacement global allocation operators, counting with relaxed atomics.
// See alloc_probe.hpp for the activation model (pulled in on reference).
#include "common/alloc_probe.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

std::atomic<std::uint64_t> gAllocations{0};
std::atomic<std::uint64_t> gDeallocations{0};
std::atomic<std::uint64_t> gBytes{0};

void* countedAlloc(std::size_t size) {
  gAllocations.fetch_add(1, std::memory_order_relaxed);
  gBytes.fetch_add(size, std::memory_order_relaxed);
  // Zero-size new must return a unique pointer; malloc(0) may return
  // nullptr, which operator new must not.
  void* p = std::malloc(size ? size : 1);
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}

void countedFree(void* p) noexcept {
  if (p == nullptr) return;
  gDeallocations.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}

void* countedAlignedAlloc(std::size_t size, std::size_t align) {
  gAllocations.fetch_add(1, std::memory_order_relaxed);
  gBytes.fetch_add(size, std::memory_order_relaxed);
  // aligned_alloc requires the size to be a multiple of the alignment.
  const std::size_t rounded = (size + align - 1) / align * align;
  void* p = std::aligned_alloc(align, rounded ? rounded : align);
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}

}  // namespace

namespace vs07 {

AllocCounters allocCounters() noexcept {
  return {gAllocations.load(std::memory_order_relaxed),
          gDeallocations.load(std::memory_order_relaxed),
          gBytes.load(std::memory_order_relaxed)};
}

}  // namespace vs07

// -- replacement operators (the complete replaceable set) ----------------

void* operator new(std::size_t size) { return countedAlloc(size); }
void* operator new[](std::size_t size) { return countedAlloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return countedAlloc(size);
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return countedAlloc(size);
  } catch (...) {
    return nullptr;
  }
}
void* operator new(std::size_t size, std::align_val_t align) {
  return countedAlignedAlloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return countedAlignedAlloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { countedFree(p); }
void operator delete[](void* p) noexcept { countedFree(p); }
void operator delete(void* p, std::size_t) noexcept { countedFree(p); }
void operator delete[](void* p, std::size_t) noexcept { countedFree(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  countedFree(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  countedFree(p);
}
void operator delete(void* p, std::align_val_t) noexcept { countedFree(p); }
void operator delete[](void* p, std::align_val_t) noexcept { countedFree(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  countedFree(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  countedFree(p);
}
