#include "common/task_pool.hpp"

#include "common/expect.hpp"

namespace vs07 {

std::uint32_t TaskPool::defaultThreads() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1u : static_cast<std::uint32_t>(n);
}

TaskPool::TaskPool(std::uint32_t threads)
    : threads_(threads == 0 ? defaultThreads() : threads) {
  workers_.reserve(threads_ - 1);
  for (std::uint32_t t = 1; t < threads_; ++t)
    workers_.emplace_back([this] { workerLoop(); });
}

TaskPool::~TaskPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void TaskPool::drain(const std::function<void(std::size_t)>& fn,
                     std::size_t count) {
  for (;;) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= count) return;
    try {
      fn(i);
    } catch (...) {
      std::lock_guard lock(errorMutex_);
      if (!firstError_) firstError_ = std::current_exception();
    }
  }
}

void TaskPool::workerLoop() {
  std::uint64_t seenGeneration = 0;
  for (;;) {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t count = 0;
    {
      std::unique_lock lock(mutex_);
      // fn_ != nullptr guards a worker that only wakes after the job has
      // already been retired by parallelFor: it must keep waiting, not
      // dereference the dangling pointer.
      wake_.wait(lock, [&] {
        return stop_ || (fn_ != nullptr && generation_ != seenGeneration);
      });
      if (stop_) return;
      seenGeneration = generation_;
      fn = fn_;
      count = count_;
      ++working_;
    }
    drain(*fn, count);
    {
      std::lock_guard lock(mutex_);
      --working_;
    }
    done_.notify_all();
  }
}

void TaskPool::parallelFor(std::size_t count,
                           const std::function<void(std::size_t)>& fn) {
  VS07_EXPECT(static_cast<bool>(fn));
  if (workers_.empty() || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  {
    std::lock_guard lock(mutex_);
    fn_ = &fn;
    count_ = count;
    next_.store(0, std::memory_order_relaxed);
    firstError_ = nullptr;
    ++generation_;
  }
  wake_.notify_all();
  drain(fn, count);
  {
    std::unique_lock lock(mutex_);
    done_.wait(lock, [&] { return working_ == 0; });
    fn_ = nullptr;
  }
  if (firstError_) std::rethrow_exception(firstError_);
}

}  // namespace vs07
