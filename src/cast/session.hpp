// CastSession — the one experiment-facing way to disseminate a message,
// regardless of execution model:
//
//   * SnapshotSession runs the paper's frozen-overlay model (§7.1): the
//     overlay is captured once, and every publish() is a deterministic
//     hop-synchronous dissemination driven by cast::disseminate.
//   * LiveSession runs through the transport against the *current*
//     protocol views, with optional anti-entropy pull recovery (§8) —
//     LiveCast under the hood.
//
// Both speak the same cast::Strategy plug-point and return the same
// DeliveryReport, so an experiment switches between the probabilistic,
// deterministic, and hybrid algorithms — and between the snapshot and
// live execution paths — without changing its measurement code. Sessions
// are normally created through analysis::Scenario, which owns the wiring.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cast/disseminator.hpp"
#include "cast/live.hpp"
#include "cast/report.hpp"
#include "cast/snapshot.hpp"
#include "cast/strategy.hpp"
#include "common/rng.hpp"
#include "net/node_id.hpp"

namespace vs07::cast {

/// Everything configurable about a dissemination session. The pull-layer
/// knobs only apply to LiveSession with Strategy::kPushPull.
struct CastOptions {
  Strategy strategy = Strategy::kRingCast;
  /// The system-wide fanout F.
  std::uint32_t fanout = 3;
  /// Root seed of the session's random choices (origins, target picks).
  std::uint64_t seed = 1;
  /// Record per-node forwarded/received counters in reports.
  bool recordLoad = false;

  // -- live-path knobs ---------------------------------------------------
  /// Engine cycles run after each publish before the report is taken
  /// (gives the pull layer time to backfill; 0 = report the push wave).
  std::uint32_t settleCycles = 0;
  /// A node issues one PullRequest every `pullInterval` of its own steps;
  /// only used by Strategy::kPushPull (push-only strategies never pull).
  std::uint32_t pullInterval = 1;
  /// Ids per pull digest (§8 knob).
  std::uint32_t digestLength = 16;
  /// Per-node message buffer capacity (§8 knob).
  std::uint32_t bufferCapacity = 64;
  /// Max messages pushed back per pull answer (§8 knob).
  std::uint32_t pullBudget = 8;
  /// Hard cap on concurrently tracked message ids (full stats + O(N)
  /// delivery bitmap); older ids retire to CompletedSummary records.
  std::uint32_t maxTrackedMessages = 1024;
  /// Eagerly retire completed messages this many ticks after they cover
  /// the population (0 = only retire under cap pressure).
  std::uint64_t completedLingerTicks = 0;
  /// Retired CompletedSummary records kept for inspection.
  std::uint32_t retainedSummaries = 1024;
  /// Windowed pull digests with random-useful answers (sustained-traffic
  /// reconciliation); false = legacy newest-`digestLength` digests.
  bool windowedPull = true;
};

/// Uniform interface over the snapshot and live dissemination paths.
class CastSession {
 public:
  explicit CastSession(CastOptions options);
  virtual ~CastSession() = default;

  /// Disseminates one message from `origin` (must be alive) and returns
  /// its report. Successive publishes draw fresh randomness from the
  /// session seed, so a sequence of publishes is deterministic in it.
  virtual DeliveryReport publish(NodeId origin) = 0;

  /// publish() from a uniformly random alive origin.
  virtual DeliveryReport publishFromRandom() = 0;

  const CastOptions& options() const noexcept { return options_; }
  Strategy strategy() const noexcept { return options_.strategy; }

 protected:
  CastOptions options_;
  Rng rng_;
};

/// Frozen-overlay dissemination (the paper's main evaluation model).
class SnapshotSession final : public CastSession {
 public:
  /// Captures nothing itself: the caller provides the frozen overlay
  /// (analysis::Scenario::snapshotSession snapshots the right links for
  /// the strategy). Strategy::kPushPull is rejected — pull recovery
  /// needs a transport, i.e. a LiveSession.
  SnapshotSession(OverlaySnapshot overlay, CastOptions options);

  DeliveryReport publish(NodeId origin) override;
  DeliveryReport publishFromRandom() override;

  const OverlaySnapshot& overlay() const noexcept { return overlay_; }

 private:
  OverlaySnapshot overlay_;
};

/// Transport-driven dissemination against live views (LiveCast), with
/// anti-entropy pull when the strategy is kPushPull.
class LiveSession final : public CastSession {
 public:
  /// Wires a LiveCast into an existing simulated system. `vicinity` and
  /// `rings` select the d-link source per the strategy (both may be null
  /// for kRandCast). Registers the pull heartbeat on `engine`. All
  /// references must outlive the session; normally constructed by
  /// analysis::Scenario::liveSession.
  LiveSession(sim::Network& network, net::Transport& transport,
              sim::MessageRouter& router, sim::Engine& engine,
              const gossip::Cyclon& cyclon, const gossip::Vicinity* vicinity,
              const gossip::MultiRing* rings, CastOptions options);

  /// Pushes a message, runs options().settleCycles engine cycles (pull
  /// backfill), and reports. Under a delayed transport the report covers
  /// whatever has been delivered so far; settle more cycles and call
  /// report() to re-measure.
  DeliveryReport publish(NodeId origin) override;
  DeliveryReport publishFromRandom() override;

  /// Re-measures a previously published message (e.g. after running more
  /// cycles); misses shrink as the pull layer backfills.
  DeliveryReport report(std::uint64_t dataId) const;

  /// The id of the most recent publish (for report()).
  std::uint64_t lastDataId() const noexcept { return lastDataId_; }

  /// The underlying live dissemination service (inspection, §8 knobs).
  LiveCast& live() noexcept { return live_; }
  const LiveCast& live() const noexcept { return live_; }

 private:
  struct Baseline {
    std::uint64_t pullRequests = 0;
    std::vector<std::uint32_t> forwards;
    std::vector<std::uint32_t> received;
  };
  DeliveryReport buildReport(std::uint64_t dataId,
                             const Baseline& baseline) const;

  sim::Network& network_;
  sim::Engine& engine_;
  LiveCast live_;
  std::unordered_map<std::uint64_t, Baseline> baselines_;
  std::uint64_t lastDataId_ = 0;
};

}  // namespace vs07::cast
