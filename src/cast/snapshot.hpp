// Frozen overlay snapshots — what disseminations run over.
//
// §7.1 establishes that gossiping speed has no macroscopic effect on
// dissemination, so the paper freezes the overlay before posting messages;
// we snapshot each node's current r-links (CYCLON view) and d-links
// (VICINITY ring neighbours) into a compact immutable structure. Snapshots
// deliberately keep links pointing at dead nodes: a message forwarded to a
// dead node is lost, which is the §7.2/§7.3 worst-case semantics.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/expect.hpp"
#include "gossip/cyclon.hpp"
#include "gossip/multiring.hpp"
#include "gossip/vicinity.hpp"
#include "net/node_id.hpp"
#include "overlay/graph.hpp"
#include "sim/network.hpp"

namespace vs07::cast {

/// Immutable per-node link sets captured at freeze time.
///
/// Links are stored in CSR form — one flat array per link kind plus a
/// per-node offset table — rather than a vector pair per node: at
/// multi-million-node scale the two vector headers and two heap chunks
/// per node would cost more than the links themselves, and the snapshot
/// phase sits on top of the warm gossip state, so it sets the peak RSS
/// of a scale run.
class OverlaySnapshot {
 public:
  /// Links of one node. d-links are listed in forwarding order; for a
  /// single ring that is {successor, predecessor}.
  struct NodeLinks {
    std::vector<NodeId> rlinks;
    std::vector<NodeId> dlinks;
  };

  class Builder;  // defined below — holds a snapshot, so needs the full type

  /// Flattens a materialised per-node link table (convenient at test /
  /// per-topic scale; the snapshot* functions below stream instead).
  OverlaySnapshot(std::vector<NodeLinks> links, std::vector<std::uint8_t> alive);

  /// Number of node ids (dense id space, dead included).
  std::uint32_t totalIds() const noexcept {
    return static_cast<std::uint32_t>(alive_.size());
  }
  bool isAlive(NodeId node) const {
    VS07_EXPECT(node < alive_.size());
    return alive_[node] != 0;
  }
  std::uint32_t aliveCount() const noexcept { return aliveCount_; }
  const std::vector<NodeId>& aliveIds() const noexcept { return aliveIds_; }

  std::span<const NodeId> rlinks(NodeId node) const {
    VS07_EXPECT(node < alive_.size());
    return {rdata_.data() + roffsets_[node],
            roffsets_[node + 1] - roffsets_[node]};
  }
  std::span<const NodeId> dlinks(NodeId node) const {
    VS07_EXPECT(node < alive_.size());
    return {ddata_.data() + doffsets_[node],
            doffsets_[node + 1] - doffsets_[node]};
  }

 private:
  friend class Builder;
  OverlaySnapshot() = default;  // Builder starts from an empty snapshot.
  void indexAlive();

  // offsets have totalIds()+1 entries; node i's links are
  // data[offsets[i] .. offsets[i+1]).
  std::vector<std::uint32_t> roffsets_;
  std::vector<std::uint32_t> doffsets_;
  std::vector<NodeId> rdata_;
  std::vector<NodeId> ddata_;
  std::vector<std::uint8_t> alive_;
  std::vector<NodeId> aliveIds_;
  std::uint32_t aliveCount_ = 0;
};

/// Streams nodes one at a time into the CSR arrays, so building a
/// snapshot never materialises a vector-of-vectors transient. Nodes
/// must be begun in ascending id order; ids never begun get empty
/// link sets.
class OverlaySnapshot::Builder {
 public:
  /// `alive.size()` must equal `totalIds`.
  Builder(std::uint32_t totalIds, std::vector<std::uint8_t> alive);

  /// Capacity hints (total links across all nodes); an upper bound is
  /// fine and keeps the flat arrays from realloc-doubling mid-build.
  void reserveRlinks(std::size_t total);
  void reserveDlinks(std::size_t total);

  /// Starts node `id`; ids must be strictly increasing across calls.
  void beginNode(NodeId id);
  void addRlink(NodeId link);
  /// Appends verbatim, preserving order, duplicates, and kNoNode —
  /// for link sets the producer already shaped (bands, static graphs).
  void addDlink(NodeId link);
  /// Skips kNoNode and links already present on the current node.
  void addUniqueDlink(NodeId link);

  OverlaySnapshot build() &&;

 private:
  OverlaySnapshot snapshot_;
  NodeId next_ = 0;  // first id not yet begun
};

/// Captures r-links from CYCLON only (RANDCAST's overlay).
OverlaySnapshot snapshotRandom(const sim::Network& network,
                               const gossip::Cyclon& cyclon);

/// Captures r-links from CYCLON and d-links {successor, predecessor} from
/// one VICINITY ring (RINGCAST's overlay).
OverlaySnapshot snapshotRing(const sim::Network& network,
                             const gossip::Cyclon& cyclon,
                             const gossip::Vicinity& vicinity);

/// Captures r-links from CYCLON and the union of ring neighbours over all
/// rings of a MultiRing (multi-ring RINGCAST, §8).
OverlaySnapshot snapshotMultiRing(const sim::Network& network,
                                  const gossip::Cyclon& cyclon,
                                  const gossip::MultiRing& rings);

/// Captures r-links from CYCLON and a Harary band as d-links: each node's
/// `bandWidth` nearest successors and predecessors on the VICINITY ring.
/// At convergence the d-link graph is H(2·bandWidth, n) — the paper's §8
/// higher-connectivity alternative to multiple rings. bandWidth = 1 is
/// exactly snapshotRing.
OverlaySnapshot snapshotBand(const sim::Network& network,
                             const gossip::Cyclon& cyclon,
                             const gossip::Vicinity& vicinity,
                             std::uint32_t bandWidth);

/// Wraps a static deterministic overlay (§3): the graph's adjacency
/// becomes d-links (flooding forwards across all of them); no r-links.
/// All nodes alive.
OverlaySnapshot snapshotGraph(const overlay::Graph& graph);

/// As snapshotGraph, but with the given alive mask (failure studies on
/// static overlays).
OverlaySnapshot snapshotGraph(const overlay::Graph& graph,
                              std::vector<std::uint8_t> alive);

}  // namespace vs07::cast
