// Frozen overlay snapshots — what disseminations run over.
//
// §7.1 establishes that gossiping speed has no macroscopic effect on
// dissemination, so the paper freezes the overlay before posting messages;
// we snapshot each node's current r-links (CYCLON view) and d-links
// (VICINITY ring neighbours) into a compact immutable structure. Snapshots
// deliberately keep links pointing at dead nodes: a message forwarded to a
// dead node is lost, which is the §7.2/§7.3 worst-case semantics.
#pragma once

#include <cstdint>
#include <vector>

#include "common/expect.hpp"
#include "gossip/cyclon.hpp"
#include "gossip/multiring.hpp"
#include "gossip/vicinity.hpp"
#include "net/node_id.hpp"
#include "overlay/graph.hpp"
#include "sim/network.hpp"

namespace vs07::cast {

/// Immutable per-node link sets captured at freeze time.
class OverlaySnapshot {
 public:
  /// Links of one node. d-links are listed in forwarding order; for a
  /// single ring that is {successor, predecessor}.
  struct NodeLinks {
    std::vector<NodeId> rlinks;
    std::vector<NodeId> dlinks;
  };

  OverlaySnapshot(std::vector<NodeLinks> links, std::vector<std::uint8_t> alive);

  /// Number of node ids (dense id space, dead included).
  std::uint32_t totalIds() const noexcept {
    return static_cast<std::uint32_t>(links_.size());
  }
  bool isAlive(NodeId node) const {
    VS07_EXPECT(node < alive_.size());
    return alive_[node] != 0;
  }
  std::uint32_t aliveCount() const noexcept { return aliveCount_; }
  const std::vector<NodeId>& aliveIds() const noexcept { return aliveIds_; }

  const std::vector<NodeId>& rlinks(NodeId node) const {
    VS07_EXPECT(node < links_.size());
    return links_[node].rlinks;
  }
  const std::vector<NodeId>& dlinks(NodeId node) const {
    VS07_EXPECT(node < links_.size());
    return links_[node].dlinks;
  }

 private:
  std::vector<NodeLinks> links_;
  std::vector<std::uint8_t> alive_;
  std::vector<NodeId> aliveIds_;
  std::uint32_t aliveCount_ = 0;
};

/// Captures r-links from CYCLON only (RANDCAST's overlay).
OverlaySnapshot snapshotRandom(const sim::Network& network,
                               const gossip::Cyclon& cyclon);

/// Captures r-links from CYCLON and d-links {successor, predecessor} from
/// one VICINITY ring (RINGCAST's overlay).
OverlaySnapshot snapshotRing(const sim::Network& network,
                             const gossip::Cyclon& cyclon,
                             const gossip::Vicinity& vicinity);

/// Captures r-links from CYCLON and the union of ring neighbours over all
/// rings of a MultiRing (multi-ring RINGCAST, §8).
OverlaySnapshot snapshotMultiRing(const sim::Network& network,
                                  const gossip::Cyclon& cyclon,
                                  const gossip::MultiRing& rings);

/// Captures r-links from CYCLON and a Harary band as d-links: each node's
/// `bandWidth` nearest successors and predecessors on the VICINITY ring.
/// At convergence the d-link graph is H(2·bandWidth, n) — the paper's §8
/// higher-connectivity alternative to multiple rings. bandWidth = 1 is
/// exactly snapshotRing.
OverlaySnapshot snapshotBand(const sim::Network& network,
                             const gossip::Cyclon& cyclon,
                             const gossip::Vicinity& vicinity,
                             std::uint32_t bandWidth);

/// Wraps a static deterministic overlay (§3): the graph's adjacency
/// becomes d-links (flooding forwards across all of them); no r-links.
/// All nodes alive.
OverlaySnapshot snapshotGraph(const overlay::Graph& graph);

/// As snapshotGraph, but with the given alive mask (failure studies on
/// static overlays).
OverlaySnapshot snapshotGraph(const overlay::Graph& graph,
                              std::vector<std::uint8_t> alive);

}  // namespace vs07::cast
