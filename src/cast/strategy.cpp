#include "cast/strategy.hpp"

#include "cast/selector.hpp"
#include "common/expect.hpp"

namespace vs07::cast {

std::string_view strategyName(Strategy strategy) noexcept {
  switch (strategy) {
    case Strategy::kFlood: return "Flood";
    case Strategy::kRandCast: return "RandCast";
    case Strategy::kRingCast: return "RingCast";
    case Strategy::kMultiRing: return "MultiRingCast";
    case Strategy::kPushPull: return "PushPull";
  }
  return "?";
}

const TargetSelector& selectorFor(Strategy strategy) {
  static const FloodSelector flood;
  static const RandCastSelector randCast;
  static const RingCastSelector ringCast;
  static const MultiRingCastSelector multiRing;
  switch (strategy) {
    case Strategy::kFlood: return flood;
    case Strategy::kRandCast: return randCast;
    case Strategy::kRingCast: return ringCast;
    case Strategy::kMultiRing: return multiRing;
    case Strategy::kPushPull: return ringCast;  // the push component
  }
  VS07_EXPECT(false && "unknown Strategy");
  return ringCast;  // unreachable
}

}  // namespace vs07::cast
