#include "cast/traffic.hpp"

#include <algorithm>
#include <cmath>

#include "common/expect.hpp"

namespace vs07::cast {

std::uint32_t samplePoisson(Rng& rng, double mean) {
  VS07_EXPECT(mean >= 0.0);
  std::uint32_t total = 0;
  while (mean > 0.0) {
    const double chunk = std::min(mean, 30.0);
    mean -= chunk;
    const double limit = std::exp(-chunk);
    double product = rng.uniform();
    while (product > limit) {
      ++total;
      product *= rng.uniform();
    }
  }
  return total;
}

TrafficSource::TrafficSource(sim::Engine& engine, sim::Network& network,
                             LiveCast& live, Params params,
                             std::uint64_t seed)
    : engine_(engine),
      network_(network),
      live_(live),
      params_(params),
      rng_(seed) {
  VS07_EXPECT(params_.messagesPerCycle >= 0.0);
  primeNextCycle();
}

void TrafficSource::execute(std::uint64_t /*cycle*/) { primeNextCycle(); }

std::uint32_t TrafficSource::drawCount() {
  if (params_.poisson) return samplePoisson(rng_, params_.messagesPerCycle);
  carry_ += params_.messagesPerCycle;
  const double whole = std::floor(carry_);
  carry_ -= whole;
  return static_cast<std::uint32_t>(whole);
}

void TrafficSource::primeNextCycle() {
  if (params_.maxMessages > 0 && scheduled_ >= params_.maxMessages) return;
  std::uint32_t count = drawCount();
  if (params_.maxMessages > 0)
    count = static_cast<std::uint32_t>(std::min<std::uint64_t>(
        count, params_.maxMessages - scheduled_));
  const std::uint64_t span = engine_.timing().ticksPerCycle;
  for (std::uint32_t k = 0; k < count; ++k) {
    // Poisson arrivals land uniformly within the cycle; the
    // deterministic schedule spaces them evenly.
    const std::uint64_t delay =
        params_.poisson ? 1 + rng_.below(span)
                        : 1 + (static_cast<std::uint64_t>(k) * span) / count;
    ++scheduled_;
    engine_.scheduleDelivery(delay, [this] { fire(); });
  }
}

void TrafficSource::fire() {
  if (network_.aliveCount() == 0) return;  // catastrophic wipe-out: skip
  const NodeId origin = network_.randomAlive(rng_);
  const std::uint64_t dataId = live_.publish(origin);
  ++published_;
  if (hook_) hook_(dataId, origin, engine_.tick());
}

}  // namespace vs07::cast
