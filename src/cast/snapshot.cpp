#include "cast/snapshot.hpp"

#include <algorithm>
#include <utility>

namespace vs07::cast {

OverlaySnapshot::OverlaySnapshot(std::vector<NodeLinks> links,
                                 std::vector<std::uint8_t> alive)
    : links_(std::move(links)), alive_(std::move(alive)) {
  VS07_EXPECT(links_.size() == alive_.size());
  for (NodeId id = 0; id < alive_.size(); ++id)
    if (alive_[id]) {
      aliveIds_.push_back(id);
      ++aliveCount_;
    }
}

namespace {

std::vector<std::uint8_t> aliveMask(const sim::Network& network) {
  std::vector<std::uint8_t> alive(network.totalCreated(), 0);
  for (const NodeId id : network.aliveIds()) alive[id] = 1;
  return alive;
}

std::vector<NodeId> viewIds(const gossip::View& view) {
  std::vector<NodeId> ids;
  ids.reserve(view.size());
  for (const auto& e : view.entries()) ids.push_back(e.node);
  return ids;
}

void addUniqueDlink(std::vector<NodeId>& dlinks, NodeId link) {
  if (link == kNoNode) return;
  if (std::find(dlinks.begin(), dlinks.end(), link) != dlinks.end()) return;
  dlinks.push_back(link);
}

}  // namespace

OverlaySnapshot snapshotRandom(const sim::Network& network,
                               const gossip::Cyclon& cyclon) {
  std::vector<OverlaySnapshot::NodeLinks> links(network.totalCreated());
  for (const NodeId id : network.aliveIds())
    links[id].rlinks = viewIds(cyclon.view(id));
  return {std::move(links), aliveMask(network)};
}

OverlaySnapshot snapshotRing(const sim::Network& network,
                             const gossip::Cyclon& cyclon,
                             const gossip::Vicinity& vicinity) {
  std::vector<OverlaySnapshot::NodeLinks> links(network.totalCreated());
  for (const NodeId id : network.aliveIds()) {
    links[id].rlinks = viewIds(cyclon.view(id));
    const auto ring = vicinity.ringNeighbors(id);
    addUniqueDlink(links[id].dlinks, ring.successor);
    addUniqueDlink(links[id].dlinks, ring.predecessor);
  }
  return {std::move(links), aliveMask(network)};
}

OverlaySnapshot snapshotMultiRing(const sim::Network& network,
                                  const gossip::Cyclon& cyclon,
                                  const gossip::MultiRing& rings) {
  std::vector<OverlaySnapshot::NodeLinks> links(network.totalCreated());
  for (const NodeId id : network.aliveIds()) {
    links[id].rlinks = viewIds(cyclon.view(id));
    for (const auto& ring : rings.allRingNeighbors(id)) {
      addUniqueDlink(links[id].dlinks, ring.successor);
      addUniqueDlink(links[id].dlinks, ring.predecessor);
    }
  }
  return {std::move(links), aliveMask(network)};
}

OverlaySnapshot snapshotBand(const sim::Network& network,
                             const gossip::Cyclon& cyclon,
                             const gossip::Vicinity& vicinity,
                             std::uint32_t bandWidth) {
  std::vector<OverlaySnapshot::NodeLinks> links(network.totalCreated());
  for (const NodeId id : network.aliveIds()) {
    links[id].rlinks = viewIds(cyclon.view(id));
    links[id].dlinks = vicinity.ringBand(id, bandWidth);
  }
  return {std::move(links), aliveMask(network)};
}

OverlaySnapshot snapshotGraph(const overlay::Graph& graph) {
  return snapshotGraph(graph, std::vector<std::uint8_t>(graph.size(), 1));
}

OverlaySnapshot snapshotGraph(const overlay::Graph& graph,
                              std::vector<std::uint8_t> alive) {
  VS07_EXPECT(alive.size() == graph.size());
  std::vector<OverlaySnapshot::NodeLinks> links(graph.size());
  for (NodeId id = 0; id < graph.size(); ++id)
    links[id].dlinks = graph.neighbors(id);
  return {std::move(links), std::move(alive)};
}

}  // namespace vs07::cast
