#include "cast/snapshot.hpp"

#include <algorithm>
#include <utility>

namespace vs07::cast {

OverlaySnapshot::Builder::Builder(std::uint32_t totalIds,
                                  std::vector<std::uint8_t> alive) {
  VS07_EXPECT(alive.size() == totalIds);
  snapshot_.alive_ = std::move(alive);
  snapshot_.roffsets_.resize(totalIds + 1, 0);
  snapshot_.doffsets_.resize(totalIds + 1, 0);
}

void OverlaySnapshot::Builder::reserveRlinks(std::size_t total) {
  snapshot_.rdata_.reserve(total);
}

void OverlaySnapshot::Builder::reserveDlinks(std::size_t total) {
  snapshot_.ddata_.reserve(total);
}

void OverlaySnapshot::Builder::beginNode(NodeId id) {
  VS07_EXPECT(id >= next_ && id < snapshot_.alive_.size());
  // Close every skipped node (empty range) and open this one.
  for (; next_ <= id; ++next_) {
    snapshot_.roffsets_[next_] =
        static_cast<std::uint32_t>(snapshot_.rdata_.size());
    snapshot_.doffsets_[next_] =
        static_cast<std::uint32_t>(snapshot_.ddata_.size());
  }
}

void OverlaySnapshot::Builder::addRlink(NodeId link) {
  VS07_EXPECT(next_ > 0);
  snapshot_.rdata_.push_back(link);
}

void OverlaySnapshot::Builder::addDlink(NodeId link) {
  VS07_EXPECT(next_ > 0);
  snapshot_.ddata_.push_back(link);
}

void OverlaySnapshot::Builder::addUniqueDlink(NodeId link) {
  VS07_EXPECT(next_ > 0);
  if (link == kNoNode) return;
  auto& data = snapshot_.ddata_;
  const auto begin = data.begin() + snapshot_.doffsets_[next_ - 1];
  if (std::find(begin, data.end(), link) != data.end()) return;
  data.push_back(link);
}

OverlaySnapshot OverlaySnapshot::Builder::build() && {
  const auto total = static_cast<NodeId>(snapshot_.alive_.size());
  for (; next_ <= total; ++next_) {
    snapshot_.roffsets_[next_] =
        static_cast<std::uint32_t>(snapshot_.rdata_.size());
    snapshot_.doffsets_[next_] =
        static_cast<std::uint32_t>(snapshot_.ddata_.size());
  }
  snapshot_.indexAlive();
  return std::move(snapshot_);
}

void OverlaySnapshot::indexAlive() {
  for (NodeId id = 0; id < alive_.size(); ++id)
    if (alive_[id]) ++aliveCount_;
  aliveIds_.reserve(aliveCount_);
  for (NodeId id = 0; id < alive_.size(); ++id)
    if (alive_[id]) aliveIds_.push_back(id);
}

OverlaySnapshot::OverlaySnapshot(std::vector<NodeLinks> links,
                                 std::vector<std::uint8_t> alive) {
  VS07_EXPECT(links.size() == alive.size());
  Builder builder(static_cast<std::uint32_t>(links.size()), std::move(alive));
  for (NodeId id = 0; id < links.size(); ++id) {
    builder.beginNode(id);
    for (const NodeId link : links[id].rlinks) builder.addRlink(link);
    for (const NodeId link : links[id].dlinks) builder.addDlink(link);
  }
  *this = std::move(builder).build();
}

namespace {

std::vector<std::uint8_t> aliveMask(const sim::Network& network) {
  std::vector<std::uint8_t> alive(network.totalCreated(), 0);
  for (const NodeId id : network.aliveIds()) alive[id] = 1;
  return alive;
}

void addViewRlinks(OverlaySnapshot::Builder& builder,
                   const gossip::View& view) {
  for (const auto& e : view.entries()) builder.addRlink(e.node);
}

std::size_t totalViewEntries(const sim::Network& network,
                             const gossip::Cyclon& cyclon) {
  std::size_t total = 0;
  for (const NodeId id : network.aliveIds()) total += cyclon.view(id).size();
  return total;
}

}  // namespace

OverlaySnapshot snapshotRandom(const sim::Network& network,
                               const gossip::Cyclon& cyclon) {
  OverlaySnapshot::Builder builder(network.totalCreated(), aliveMask(network));
  builder.reserveRlinks(totalViewEntries(network, cyclon));
  for (NodeId id = 0; id < network.totalCreated(); ++id) {
    if (!network.isAlive(id)) continue;
    builder.beginNode(id);
    addViewRlinks(builder, cyclon.view(id));
  }
  return std::move(builder).build();
}

OverlaySnapshot snapshotRing(const sim::Network& network,
                             const gossip::Cyclon& cyclon,
                             const gossip::Vicinity& vicinity) {
  OverlaySnapshot::Builder builder(network.totalCreated(), aliveMask(network));
  builder.reserveRlinks(totalViewEntries(network, cyclon));
  builder.reserveDlinks(std::size_t{2} * network.aliveCount());
  for (NodeId id = 0; id < network.totalCreated(); ++id) {
    if (!network.isAlive(id)) continue;
    builder.beginNode(id);
    addViewRlinks(builder, cyclon.view(id));
    const auto ring = vicinity.ringNeighbors(id);
    builder.addUniqueDlink(ring.successor);
    builder.addUniqueDlink(ring.predecessor);
  }
  return std::move(builder).build();
}

OverlaySnapshot snapshotMultiRing(const sim::Network& network,
                                  const gossip::Cyclon& cyclon,
                                  const gossip::MultiRing& rings) {
  OverlaySnapshot::Builder builder(network.totalCreated(), aliveMask(network));
  builder.reserveRlinks(totalViewEntries(network, cyclon));
  builder.reserveDlinks(std::size_t{2} * rings.ringCount() *
                        network.aliveCount());
  for (NodeId id = 0; id < network.totalCreated(); ++id) {
    if (!network.isAlive(id)) continue;
    builder.beginNode(id);
    addViewRlinks(builder, cyclon.view(id));
    for (const auto& ring : rings.allRingNeighbors(id)) {
      builder.addUniqueDlink(ring.successor);
      builder.addUniqueDlink(ring.predecessor);
    }
  }
  return std::move(builder).build();
}

OverlaySnapshot snapshotBand(const sim::Network& network,
                             const gossip::Cyclon& cyclon,
                             const gossip::Vicinity& vicinity,
                             std::uint32_t bandWidth) {
  OverlaySnapshot::Builder builder(network.totalCreated(), aliveMask(network));
  builder.reserveRlinks(totalViewEntries(network, cyclon));
  builder.reserveDlinks(std::size_t{2} * bandWidth * network.aliveCount());
  for (NodeId id = 0; id < network.totalCreated(); ++id) {
    if (!network.isAlive(id)) continue;
    builder.beginNode(id);
    addViewRlinks(builder, cyclon.view(id));
    for (const NodeId link : vicinity.ringBand(id, bandWidth))
      builder.addDlink(link);
  }
  return std::move(builder).build();
}

OverlaySnapshot snapshotGraph(const overlay::Graph& graph) {
  return snapshotGraph(graph, std::vector<std::uint8_t>(graph.size(), 1));
}

OverlaySnapshot snapshotGraph(const overlay::Graph& graph,
                              std::vector<std::uint8_t> alive) {
  VS07_EXPECT(alive.size() == graph.size());
  OverlaySnapshot::Builder builder(graph.size(), std::move(alive));
  for (NodeId id = 0; id < graph.size(); ++id) {
    builder.beginNode(id);
    for (const NodeId link : graph.neighbors(id)) builder.addDlink(link);
  }
  return std::move(builder).build();
}

}  // namespace vs07::cast
