#include "cast/report.hpp"

namespace vs07::cast {

double DeliveryReport::percentNotReachedAfterHop(
    std::uint32_t hop) const noexcept {
  if (aliveTotal == 0) return 0.0;
  std::uint64_t reached = 0;
  for (std::uint32_t h = 0;
       h < newlyNotifiedPerHop.size() && h <= hop; ++h)
    reached += newlyNotifiedPerHop[h];
  // Live reports measure aliveTotal *now* but the hop series at push
  // time; churn/failures in between can make reached exceed it.
  if (reached >= aliveTotal) return 0.0;
  return 100.0 * static_cast<double>(aliveTotal - reached) /
         static_cast<double>(aliveTotal);
}

}  // namespace vs07::cast
