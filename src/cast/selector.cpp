#include "cast/selector.hpp"

#include <algorithm>

namespace vs07::cast {

namespace {

bool alreadyChosen(const std::vector<NodeId>& out, NodeId candidate) {
  return std::find(out.begin(), out.end(), candidate) != out.end();
}

}  // namespace

void appendRandomTargets(std::span<const NodeId> pool, NodeId self,
                         NodeId exclude, std::size_t want, Rng& rng,
                         std::vector<NodeId>& out) {
  if (want == 0) return;
  // The pool is a node's view (≤ ~20 entries), so a copy + partial
  // shuffle is cheap and exact (every eligible subset equally likely).
  // The copy lands in a thread-local scratch: selection runs per message
  // on the hot dissemination path (and concurrently from ParallelSweep
  // workers), so per-call allocation is the one thing it must not do.
  thread_local std::vector<NodeId> eligible;
  eligible.clear();
  for (const NodeId candidate : pool) {
    if (candidate == exclude || candidate == self) continue;
    if (alreadyChosen(out, candidate)) continue;
    eligible.push_back(candidate);
  }
  const std::size_t take = std::min(want, eligible.size());
  for (std::size_t i = 0; i < take; ++i) {
    const std::size_t j = i + rng.below(eligible.size() - i);
    std::swap(eligible[i], eligible[j]);
    out.push_back(eligible[i]);
  }
}

void selectRandomTargets(std::span<const NodeId> rlinks, NodeId self,
                         NodeId receivedFrom, std::uint32_t fanout, Rng& rng,
                         std::vector<NodeId>& out) {
  out.clear();
  appendRandomTargets(rlinks, self, receivedFrom, fanout, rng, out);
}

void selectHybridTargets(std::span<const NodeId> rlinks,
                         std::span<const NodeId> dlinks, NodeId self,
                         NodeId receivedFrom, std::uint32_t fanout, Rng& rng,
                         std::vector<NodeId>& out) {
  out.clear();
  // Deterministic component: all outgoing d-links, never back to sender.
  for (const NodeId link : dlinks)
    if (link != receivedFrom && link != self && !alreadyChosen(out, link))
      out.push_back(link);
  // Probabilistic component: top up to the fanout with random r-links.
  if (out.size() < fanout)
    appendRandomTargets(rlinks, self, receivedFrom, fanout - out.size(), rng,
                        out);
}

void floodTargets(std::span<const NodeId> rlinks,
                  std::span<const NodeId> dlinks, NodeId self,
                  NodeId receivedFrom, std::vector<NodeId>& out) {
  out.clear();
  for (const NodeId link : dlinks)
    if (link != receivedFrom && link != self && !alreadyChosen(out, link))
      out.push_back(link);
  for (const NodeId link : rlinks)
    if (link != receivedFrom && link != self && !alreadyChosen(out, link))
      out.push_back(link);
}

void FloodSelector::selectTargets(const OverlaySnapshot& overlay, NodeId self,
                                  NodeId receivedFrom,
                                  std::uint32_t /*fanout*/, Rng& /*rng*/,
                                  std::vector<NodeId>& out) const {
  floodTargets(overlay.rlinks(self), overlay.dlinks(self), self, receivedFrom,
               out);
}

void RandCastSelector::selectTargets(const OverlaySnapshot& overlay,
                                     NodeId self, NodeId receivedFrom,
                                     std::uint32_t fanout, Rng& rng,
                                     std::vector<NodeId>& out) const {
  selectRandomTargets(overlay.rlinks(self), self, receivedFrom, fanout, rng,
                      out);
}

void HybridSelector::selectTargets(const OverlaySnapshot& overlay, NodeId self,
                                   NodeId receivedFrom, std::uint32_t fanout,
                                   Rng& rng, std::vector<NodeId>& out) const {
  selectHybridTargets(overlay.rlinks(self), overlay.dlinks(self), self,
                      receivedFrom, fanout, rng, out);
}

}  // namespace vs07::cast
