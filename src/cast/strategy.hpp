// The dissemination strategy plug-point shared by the snapshot and live
// paths. One enum names every forwarding rule the paper evaluates; both
// CastSession implementations (cast/session.hpp) and the experiment
// runners (analysis/experiment.hpp) key on it, so switching an experiment
// between RANDCAST and RINGCAST — or between frozen-overlay and
// transport-driven execution — is a one-word change.
#pragma once

#include <string_view>

namespace vs07::cast {

class TargetSelector;

/// The forwarding rules of the paper, §3-§8.
enum class Strategy {
  /// Deterministic flooding over every link (§3's static overlays; on
  /// the live path: every current d-link and r-link, no fanout cap).
  kFlood,
  /// Probabilistic push over F random r-links (Fig. 2).
  kRandCast,
  /// Hybrid push: both ring d-links + random top-up to F (Fig. 5).
  kRingCast,
  /// Hybrid push over the union of several rings' d-links (§8).
  kMultiRing,
  /// RINGCAST push plus anti-entropy pull recovery (§8 future work).
  /// Only meaningful on the live path; the snapshot path rejects it.
  kPushPull,
};

/// Display name used in reports and tables.
std::string_view strategyName(Strategy strategy) noexcept;

/// The frozen-overlay selector implementing `strategy`'s push rule.
/// Selectors are stateless; the returned reference is to a shared static
/// instance and stays valid forever. kPushPull maps to the RINGCAST
/// selector (its push component).
const TargetSelector& selectorFor(Strategy strategy);

/// True when the strategy's push rule uses deterministic d-links.
constexpr bool usesDlinks(Strategy strategy) noexcept {
  return strategy != Strategy::kRandCast;
}

}  // namespace vs07::cast
